//! K7: truncated-SVD algorithm baselines at a fixed problem size — the
//! timing companion to the `ablation_baselines` accuracy harness.

use criterion::{criterion_group, criterion_main, Criterion};
use psvd_core::{BrandIncrementalSvd, SerialStreamingSvd, SvdConfig};
use psvd_linalg::lanczos::{lanczos_svd, LanczosConfig};
use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
use psvd_linalg::randomized::{randomized_svd, RandomizedConfig};
use psvd_linalg::Matrix;
use std::hint::black_box;

fn dataset() -> Matrix {
    let spec: Vec<f64> = (0..40).map(|i| 8.0 * 0.8f64.powi(i)).collect();
    matrix_with_spectrum(4096, 96, &spec, &mut seeded_rng(1))
}

fn bench_baselines(c: &mut Criterion) {
    let data = dataset();
    let k = 10;
    let batch = 16;
    let mut group = c.benchmark_group("truncated_svd_baselines_4096x96_k10");
    group.sample_size(10);

    group.bench_function("levy_lindenbaum_stream", |b| {
        b.iter(|| {
            let mut s = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(1.0));
            s.fit_batched(black_box(&data), batch);
            s.singular_values().to_vec()
        });
    });
    group.bench_function("brand_stream", |b| {
        b.iter(|| {
            let mut s = BrandIncrementalSvd::new(SvdConfig::new(k).with_forget_factor(1.0));
            s.fit_batched(black_box(&data), batch);
            s.singular_values().to_vec()
        });
    });
    group.bench_function("lanczos", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(3);
            lanczos_svd(black_box(&data), &LanczosConfig::new(k), &mut rng).s
        });
    });
    group.bench_function("randomized_q2", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(4);
            randomized_svd(
                black_box(&data),
                &RandomizedConfig::new(k).with_power_iterations(2),
                &mut rng,
            )
            .s
        });
    });
    group.bench_function("oneshot_deterministic", |b| {
        b.iter(|| psvd_linalg::svd(black_box(&data)).truncated(k).s);
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
