//! K4–K5: distributed kernels — one APMOS round and one TSQR round across
//! rank counts at fixed per-rank size. On this single-core host the wall
//! times include thread serialization (the *simulated*-time scaling lives
//! in `fig1c_weak_scaling`); what these benches expose is the per-rank
//! algorithmic cost and the collective overhead of the fabric itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psvd_comm::{Communicator, World};
use psvd_core::{parallel_svd_once, ParallelStreamingSvd, SvdConfig};
use psvd_linalg::Matrix;
use std::hint::black_box;

fn local_block(rank: usize, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| (((rank * rows + i) * 7 + j * 13) as f64 * 0.01).sin())
}

fn bench_apmos(c: &mut Criterion) {
    let mut group = c.benchmark_group("apmos_round");
    group.sample_size(10);
    let rows = 512;
    let cols = 32;
    for n_ranks in [1usize, 2, 4, 8] {
        let cfg = SvdConfig::new(5).with_r1(16).with_r2(8);
        group.bench_with_input(BenchmarkId::from_parameter(n_ranks), &n_ranks, |b, &n| {
            b.iter(|| {
                let world = World::new(n);
                world.run(|comm| {
                    let local = local_block(comm.rank(), rows, cols);
                    black_box(parallel_svd_once(comm, cfg, &local))
                })
            });
        });
    }
    group.finish();
}

fn bench_tsqr(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsqr_round");
    group.sample_size(10);
    let rows = 512;
    let cols = 32;
    for n_ranks in [1usize, 2, 4, 8] {
        let cfg = SvdConfig::new(5);
        group.bench_with_input(BenchmarkId::from_parameter(n_ranks), &n_ranks, |b, &n| {
            b.iter(|| {
                let world = World::new(n);
                world.run(|comm| {
                    let local = local_block(comm.rank(), rows, cols);
                    let mut d = ParallelStreamingSvd::new(comm, cfg);
                    black_box(d.parallel_qr(&local))
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apmos, bench_tsqr);
criterion_main!(benches);
