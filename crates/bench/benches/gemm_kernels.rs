//! Criterion bench: every available micro-kernel head to head through the
//! packed engine, at one thread so the numbers are pure kernel throughput
//! (no partition effects). Three shapes: a compute-bound square, the
//! tall-skinny streaming-SVD shape (exercising the A-streaming path), and
//! a Gram-sized `AᵀB` panel product.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psvd_linalg::gemm::{kernels, packed};
use psvd_linalg::par;
use psvd_linalg::random::{gaussian_matrix, seeded_rng};

fn bench_kernels_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_kernels_square");
    group.sample_size(10);
    par::set_num_threads(1);
    for n in [256usize, 512] {
        let a = gaussian_matrix(n, n, &mut seeded_rng(1));
        let b = gaussian_matrix(n, n, &mut seeded_rng(2));
        for &kern in kernels::available() {
            group.bench_with_input(BenchmarkId::new(kern.name(), n), &n, |bench, _| {
                bench.iter(|| packed::matmul_with(kern, &a, &b));
            });
        }
    }
    par::set_num_threads(0);
    group.finish();
}

fn bench_kernels_tall_skinny(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_kernels_tall_skinny");
    group.sample_size(10);
    par::set_num_threads(1);
    let (m, k) = (65536usize, 64usize);
    let a = gaussian_matrix(m, k, &mut seeded_rng(3));
    let b = gaussian_matrix(k, k, &mut seeded_rng(4));
    for &kern in kernels::available() {
        group.bench_with_input(
            BenchmarkId::new(kern.name(), format!("{m}x{k}")),
            &m,
            |bench, _| {
                bench.iter(|| packed::matmul_with(kern, &a, &b));
            },
        );
    }
    par::set_num_threads(0);
    group.finish();
}

fn bench_kernels_panel(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_kernels_panel");
    group.sample_size(10);
    par::set_num_threads(1);
    // The projection shape of the randomized range finder: AᵀB with a
    // tall A against a modest sketch.
    let (m, k, n) = (16384usize, 96usize, 96usize);
    let a = gaussian_matrix(m, k, &mut seeded_rng(5));
    let b = gaussian_matrix(m, n, &mut seeded_rng(6));
    for &kern in kernels::available() {
        group.bench_with_input(
            BenchmarkId::new(kern.name(), format!("{k}x{m}x{n}")),
            &m,
            |bench, _| {
                bench.iter(|| packed::matmul_tn_with(kern, &a, &b));
            },
        );
    }
    par::set_num_threads(0);
    group.finish();
}

criterion_group!(
    gemm_kernels,
    bench_kernels_square,
    bench_kernels_tall_skinny,
    bench_kernels_panel
);
criterion_main!(gemm_kernels);
