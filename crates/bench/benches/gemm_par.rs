//! Criterion bench: serial reference GEMM vs the packed parallel engine,
//! on square sizes bracketing the cache hierarchy and on the tall-skinny
//! shape (`M >> N`) the streaming SVD actually runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psvd_linalg::gemm::{packed, reference};
use psvd_linalg::random::{gaussian_matrix, seeded_rng};

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_square");
    group.sample_size(10);
    for n in [256usize, 512, 1024] {
        let a = gaussian_matrix(n, n, &mut seeded_rng(1));
        let b = gaussian_matrix(n, n, &mut seeded_rng(2));
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |bench, _| {
            bench.iter(|| reference::matmul(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("packed", n), &n, |bench, _| {
            bench.iter(|| packed::matmul(&a, &b));
        });
    }
    group.finish();
}

fn bench_tall_skinny(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_tall_skinny");
    group.sample_size(10);
    // The paper's regime: a very tall snapshot block times a small core
    // factor (65536 x 64 times 64 x 64).
    let (m, k) = (65536usize, 64usize);
    let a = gaussian_matrix(m, k, &mut seeded_rng(3));
    let b = gaussian_matrix(k, k, &mut seeded_rng(4));
    group.bench_with_input(BenchmarkId::new("reference", format!("{m}x{k}")), &m, |bench, _| {
        bench.iter(|| reference::matmul(&a, &b));
    });
    group.bench_with_input(BenchmarkId::new("packed", format!("{m}x{k}")), &m, |bench, _| {
        bench.iter(|| packed::matmul(&a, &b));
    });
    // Gram matrix of the tall block: the other hot shape (AᵀA, 64 x 64 out).
    group.bench_with_input(
        BenchmarkId::new("gram_reference", format!("{m}x{k}")),
        &m,
        |bench, _| {
            bench.iter(|| reference::gram(&a));
        },
    );
    group.bench_with_input(BenchmarkId::new("gram_packed", format!("{m}x{k}")), &m, |bench, _| {
        bench.iter(|| packed::gram(&a));
    });
    group.finish();
}

criterion_group!(gemm_par, bench_square, bench_tall_skinny);
criterion_main!(gemm_par);
