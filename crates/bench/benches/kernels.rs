//! K1–K3: dense kernel benchmarks — GEMM, QR, and the three SVD paths
//! (Golub–Kahan, one-sided Jacobi, randomized). These are the inner loops
//! every driver iteration pays for, so their relative costs explain the
//! end-to-end numbers in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psvd_linalg::gemm::matmul;
use psvd_linalg::qr::thin_qr;
use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
use psvd_linalg::randomized::{randomized_svd, RandomizedConfig};
use psvd_linalg::svd::{svd_with, SvdMethod};
use psvd_linalg::Matrix;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    for n in [64usize, 128, 256] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j) as f64 * 0.01).sin());
        let b = Matrix::from_fn(n, n, |i, j| ((i + 5 * j) as f64 * 0.02).cos());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr_tall");
    group.sample_size(20);
    for (m, n) in [(512usize, 32usize), (1024, 64), (4096, 64)] {
        // Gaussian input: well-conditioned w.h.p., so the Cholesky-based
        // variant (which rejects numerically rank-deficient matrices) runs.
        let a = psvd_linalg::random::gaussian_matrix(m, n, &mut seeded_rng((m + n) as u64));
        group.bench_with_input(BenchmarkId::new("householder", format!("{m}x{n}")), &a, |b, a| {
            b.iter(|| thin_qr(black_box(a)));
        });
        group.bench_with_input(BenchmarkId::new("cholesky_qr2", format!("{m}x{n}")), &a, |b, a| {
            b.iter(|| psvd_linalg::cholesky::cholesky_qr2(black_box(a)).expect("full rank"));
        });
        group.bench_with_input(BenchmarkId::new("mgs2", format!("{m}x{n}")), &a, |b, a| {
            b.iter(|| psvd_linalg::qr::mgs_qr(black_box(a)));
        });
    }
    group.finish();
}

fn bench_svd_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd_kernels");
    group.sample_size(10);
    let spec: Vec<f64> = (0..50).map(|i| 10.0 * 0.8f64.powi(i)).collect();
    let a = matrix_with_spectrum(400, 50, &spec, &mut seeded_rng(1));
    group.bench_function("golub_kahan_400x50", |b| {
        b.iter(|| svd_with(black_box(&a), SvdMethod::GolubKahan));
    });
    group.bench_function("jacobi_400x50", |b| {
        b.iter(|| svd_with(black_box(&a), SvdMethod::Jacobi));
    });
    group.bench_function("randomized_k10_400x50", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(2);
            randomized_svd(black_box(&a), &RandomizedConfig::new(10), &mut rng)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_qr, bench_svd_kernels);
criterion_main!(benches);
