//! Criterion bench: unblocked (`nb = 1`) Householder QR vs the blocked
//! compact-WY path, on the tall-skinny shapes the TSQR driver factorizes
//! and on a square dense-SVD-sized panel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psvd_linalg::random::{gaussian_matrix, seeded_rng};
use psvd_linalg::{qr_thin_into, set_qr_block, Matrix, Workspace};

fn qr_once(a: &Matrix, ws: &mut Workspace, q: &mut Matrix, r: &mut Matrix) {
    qr_thin_into(a.view(), q, r, ws);
}

fn bench_tall_skinny(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr_tall_skinny");
    group.sample_size(10);
    for (m, n) in [(4096usize, 64usize), (16384, 128)] {
        let a = gaussian_matrix(m, n, &mut seeded_rng(5));
        let mut ws = Workspace::new();
        let (mut q, mut r) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        let id = format!("{m}x{n}");
        group.bench_with_input(BenchmarkId::new("unblocked", &id), &m, |bench, _| {
            set_qr_block(1);
            bench.iter(|| qr_once(&a, &mut ws, &mut q, &mut r));
        });
        group.bench_with_input(BenchmarkId::new("blocked", &id), &m, |bench, _| {
            set_qr_block(0); // auto panel width
            bench.iter(|| qr_once(&a, &mut ws, &mut q, &mut r));
        });
    }
    set_qr_block(0);
    group.finish();
}

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr_square");
    group.sample_size(10);
    let n = 256usize;
    let a = gaussian_matrix(n, n, &mut seeded_rng(6));
    let mut ws = Workspace::new();
    let (mut q, mut r) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
    group.bench_with_input(BenchmarkId::new("unblocked", n), &n, |bench, _| {
        set_qr_block(1);
        bench.iter(|| qr_once(&a, &mut ws, &mut q, &mut r));
    });
    group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
        set_qr_block(0);
        bench.iter(|| qr_once(&a, &mut ws, &mut q, &mut r));
    });
    set_qr_block(0);
    group.finish();
}

criterion_group!(qr_blocked, bench_tall_skinny, bench_square);
criterion_main!(qr_blocked);
