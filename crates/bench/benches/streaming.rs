//! K6: streaming-update throughput — the cost of one
//! `incorporate_data` call as a function of the tracked mode count `K` and
//! the batch width `B`. Per Levy–Lindenbaum the update is
//! `O(M (K+B)²)`, so doubling either knob should roughly quadruple the
//! combined quadratic term; the measured curves let EXPERIMENTS.md check
//! that the implementation actually honors the paper's complexity claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psvd_core::{SerialStreamingSvd, SvdConfig};
use psvd_linalg::Matrix;
use std::hint::black_box;

fn batch(m: usize, b: usize, phase: usize) -> Matrix {
    Matrix::from_fn(m, b, |i, j| (((i + phase) * 3 + j * 11) as f64 * 0.004).sin())
}

fn bench_update_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("incorporate_vs_k");
    group.sample_size(10);
    let m = 8192;
    let b = 25;
    for k in [5usize, 10, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, &k| {
            let mut svd = SerialStreamingSvd::new(SvdConfig::new(k));
            svd.initialize(&batch(m, k.max(b), 0));
            let mut phase = 1;
            bench.iter(|| {
                svd.incorporate_data(black_box(&batch(m, b, phase)));
                phase += 1;
            });
        });
    }
    group.finish();
}

fn bench_update_vs_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("incorporate_vs_batch");
    group.sample_size(10);
    let m = 8192;
    let k = 10;
    for b in [10usize, 25, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, &b| {
            let mut svd = SerialStreamingSvd::new(SvdConfig::new(k));
            svd.initialize(&batch(m, b, 0));
            let mut phase = 1;
            bench.iter(|| {
                svd.incorporate_data(black_box(&batch(m, b, phase)));
                phase += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_vs_k, bench_update_vs_batch);
criterion_main!(benches);
