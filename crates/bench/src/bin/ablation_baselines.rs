//! Ablation A5: streaming/truncated SVD algorithm baselines.
//!
//! The paper builds on Levy–Lindenbaum; the incremental-SVD literature it
//! cites (Sarwar et al.) uses Brand-style updates, and Krylov methods
//! (Golub–Kahan–Lanczos) are the classic iterative alternative when the
//! matrix fits in memory. This harness runs all four on the same tall
//! snapshot matrices and reports accuracy vs the exact truncated SVD and
//! wall time:
//!
//! - `levy-lindenbaum` — this library's streaming driver (QR of the full
//!   `M x (K+B)` stack per batch);
//! - `brand` — residual-QR incremental updates (`O(MKB + MB²)` per batch);
//! - `lanczos` — GKL bidiagonalization with full reorthogonalization;
//! - `randomized` — one-shot randomized SVD (q = 2);
//! - `one-shot` — the deterministic truncated SVD (ground truth, also timed).
//!
//! ```text
//! cargo run -p psvd-bench --release --bin ablation_baselines
//! ```

use psvd_bench::{fmt_secs, time_it, Table};
use psvd_core::{batch_truncated_svd, BrandIncrementalSvd, SerialStreamingSvd, SvdConfig};
use psvd_data::burgers::{snapshot_matrix, BurgersConfig};
use psvd_linalg::lanczos::{lanczos_svd, LanczosConfig};
use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
use psvd_linalg::randomized::{randomized_svd, RandomizedConfig};
use psvd_linalg::validate::{max_principal_angle, spectrum_error};
use psvd_linalg::Matrix;

fn compare(name: &str, data: &Matrix, k: usize, batch: usize) {
    println!("-- {name}: {} x {}, K = {k}, batch = {batch} --\n", data.rows(), data.cols());
    let ((u_ref, s_ref), t_ref) = time_it(|| batch_truncated_svd(data, k));

    let table = Table::new(&["algorithm", "time", "spectrum err", "subspace angle"]);
    let report = |name: &str, t: f64, s: &[f64], u: &Matrix| {
        table.row(&[
            name.to_string(),
            fmt_secs(t),
            format!("{:.3e}", spectrum_error(&s_ref, s)),
            format!("{:.3e}", max_principal_angle(&u_ref, u)),
        ]);
    };
    report("one-shot (exact)", t_ref, &s_ref, &u_ref);

    let (ll, t_ll) = time_it(|| {
        let mut s = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(1.0));
        s.fit_batched(data, batch);
        s
    });
    report("levy-lindenbaum", t_ll, ll.singular_values(), ll.modes());

    let (brand, t_brand) = time_it(|| {
        let mut s = BrandIncrementalSvd::new(SvdConfig::new(k).with_forget_factor(1.0));
        s.fit_batched(data, batch);
        s
    });
    report("brand", t_brand, brand.singular_values(), brand.modes());

    let (lanc, t_lanc) = time_it(|| {
        let mut rng = seeded_rng(3);
        lanczos_svd(data, &LanczosConfig::new(k), &mut rng)
    });
    report("lanczos", t_lanc, &lanc.s, &lanc.u);

    let (rand_svd, t_rand) = time_it(|| {
        let mut rng = seeded_rng(4);
        randomized_svd(data, &RandomizedConfig::new(k).with_power_iterations(2), &mut rng)
    });
    report("randomized q=2", t_rand, &rand_svd.s, &rand_svd.u);
    println!();
}

fn main() {
    println!("== A5: algorithm baselines on identical data ==\n");

    let burgers = snapshot_matrix(&BurgersConfig {
        grid_points: 4096,
        snapshots: 256,
        ..BurgersConfig::default()
    });
    compare("Burgers (physical, slow spectral decay)", &burgers, 10, 32);

    let mut rng = seeded_rng(1);
    let spec: Vec<f64> = (0..60).map(|i| 8.0 * 0.8f64.powi(i)).collect();
    let synthetic = matrix_with_spectrum(8192, 128, &spec, &mut rng);
    compare("synthetic (geometric decay)", &synthetic, 10, 16);

    println!("expected: streaming methods trade a little accuracy for batch-sized memory;");
    println!("brand undercuts levy-lindenbaum in time (residual-QR vs full-stack QR);");
    println!("lanczos and randomized are fastest but need the full matrix resident.");
}
