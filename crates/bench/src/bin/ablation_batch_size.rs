//! Ablation A4: streaming batch size `B`.
//!
//! The streaming update factorizes an `M x (K+B)` stack per batch, so the
//! per-snapshot cost and the truncation error both depend on `B`: larger
//! batches amortize the QR and lose less to per-step truncation, smaller
//! batches bound memory and latency. This harness sweeps `B` on the
//! paper's Burgers workload.
//!
//! ```text
//! cargo run -p psvd-bench --release --bin ablation_batch_size
//! ```

use psvd_bench::{fmt_secs, time_it, Table};
use psvd_core::{batch_truncated_svd, SerialStreamingSvd, SvdConfig};
use psvd_data::burgers::{snapshot_matrix, BurgersConfig};
use psvd_linalg::validate::{max_principal_angle, spectrum_error};

fn main() {
    let cfg = BurgersConfig { grid_points: 4096, snapshots: 400, ..BurgersConfig::default() };
    let data = snapshot_matrix(&cfg);
    let k = 10;
    let (u_ref, s_ref) = batch_truncated_svd(&data, k);

    println!(
        "== A4: batch-size sweep, Burgers {} x {}, K = {k}, ff = 1.0 ==\n",
        cfg.grid_points, cfg.snapshots
    );
    let table = Table::new(&[
        "batch B",
        "updates",
        "stream time",
        "per-snapshot",
        "spectrum err",
        "subspace angle",
    ]);
    for batch in [10, 25, 50, 100, 200, 400] {
        let (s, t) = time_it(|| {
            let mut s = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(1.0));
            s.fit_batched(&data, batch);
            s
        });
        table.row(&[
            batch.to_string(),
            (s.iteration() + 1).to_string(),
            fmt_secs(t),
            fmt_secs(t / cfg.snapshots as f64),
            format!("{:.3e}", spectrum_error(&s_ref, s.singular_values())),
            format!("{:.3e}", max_principal_angle(&u_ref, s.modes())),
        ]);
    }
    println!("\nB = 400 is the one-shot limit (single batch, zero streaming error).");
    println!("expected: error shrinks as B grows, but cost per snapshot GROWS (each update");
    println!("factorizes an M x (K+B) stack) — streaming is a compute win as well as a");
    println!("memory win, the O(MNK) vs O(MN^2) claim of the paper's Section 3.1.");
}
