//! Ablation A1: the forget factor `ff`.
//!
//! Two regimes, two questions:
//!
//! 1. **Stationary data** (Burgers snapshots): how much accuracy against
//!    the one-shot batch SVD does `ff < 1` cost? (`ff = 1` converges to the
//!    batch result; the paper runs `ff = 0.95`.)
//! 2. **Drifting data** (regime switch mid-stream): how fast does the
//!    tracker realign with the new dominant subspace as `ff` shrinks?
//!
//! ```text
//! cargo run -p psvd-bench --release --bin ablation_forget_factor
//! ```

use psvd_bench::Table;
use psvd_core::{batch_truncated_svd, SerialStreamingSvd, SvdConfig};
use psvd_data::burgers::{snapshot_matrix, BurgersConfig};
use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
use psvd_linalg::validate::{max_principal_angle, spectrum_error};

const FFS: [f64; 7] = [0.70, 0.80, 0.90, 0.95, 0.98, 0.99, 1.00];

fn main() {
    let k = 6;

    println!("== A1.1: stationary stream (Burgers 1024 x 160, batches of 20) ==\n");
    let data = snapshot_matrix(&BurgersConfig {
        grid_points: 1024,
        snapshots: 160,
        ..BurgersConfig::default()
    });
    let (u_ref, s_ref) = batch_truncated_svd(&data, k);
    let table = Table::new(&["ff", "spectrum err", "subspace angle (rad)"]);
    for ff in FFS {
        let mut s = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(ff));
        s.fit_batched(&data, 20);
        table.row(&[
            format!("{ff:.2}"),
            format!("{:.3e}", spectrum_error(&s_ref, s.singular_values())),
            format!("{:.4}", max_principal_angle(&u_ref, s.modes())),
        ]);
    }

    println!("\n== A1.2: regime switch (rank-3 subspace A -> rank-3 subspace B) ==\n");
    let m = 512;
    let batch = 16;
    let mut rng = seeded_rng(9);
    let regime_a = matrix_with_spectrum(m, 8 * batch, &[6.0, 4.0, 2.0], &mut rng);
    let regime_b = matrix_with_spectrum(m, 8 * batch, &[5.0, 3.0, 1.5], &mut rng);
    let (u_b, _) = batch_truncated_svd(&regime_b, 3);

    let table = Table::new(&["ff", "angle to new regime after 2 batches", "after 8 batches"]);
    for ff in FFS {
        let mut s = SerialStreamingSvd::new(SvdConfig::new(3).with_forget_factor(ff));
        s.fit_batched(&regime_a, batch);
        let mut angle2 = f64::NAN;
        for b in 0..8 {
            let chunk = regime_b.submatrix(0, m, b * batch, (b + 1) * batch);
            s.incorporate_data(&chunk);
            if b == 1 {
                angle2 = max_principal_angle(&u_b, s.modes());
            }
        }
        let angle8 = max_principal_angle(&u_b, s.modes());
        table.row(&[format!("{ff:.2}"), format!("{angle2:.4}"), format!("{angle8:.4}")]);
    }
    println!(
        "\nexpected: ff = 1 wins on stationary data; small ff realigns fastest after the switch."
    );
}
