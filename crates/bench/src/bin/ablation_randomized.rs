//! Ablation A3: the randomized inner SVD (oversampling and power
//! iterations) against the deterministic kernel.
//!
//! Section 3.3 of the paper adopts the Halko-style randomized low-rank SVD
//! for "any SVD requirement". This harness quantifies the accuracy/time
//! trade on two spectra — fast geometric decay (easy) and slow harmonic
//! decay (hard) — as oversampling `p` and power iterations `q` vary.
//!
//! ```text
//! cargo run -p psvd-bench --release --bin ablation_randomized
//! ```

use psvd_bench::{fmt_secs, time_it, Table};
use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
use psvd_linalg::randomized::{randomized_svd, RandomizedConfig};
use psvd_linalg::svd::svd;
use psvd_linalg::Matrix;

fn relative_lowrank_error(a: &Matrix, approx: &Matrix, best: f64) -> f64 {
    let err = (a - approx).frobenius_norm();
    err / best.max(1e-300)
}

fn sweep(label: &str, a: &Matrix, k: usize) {
    let (full, t_full) = time_it(|| svd(a));
    let best = {
        let trunc = full.truncated(k);
        (a - &trunc.reconstruct()).frobenius_norm()
    };
    println!(
        "-- {label}: {} x {}, K = {k}, deterministic SVD {} (error ratio 1.0 by definition) --\n",
        a.rows(),
        a.cols(),
        fmt_secs(t_full)
    );
    let table =
        Table::new(&["oversampling p", "power iters q", "error / optimal", "time", "speedup"]);
    for p in [0, 2, 5, 10, 20] {
        for q in [0, 1, 2] {
            let cfg = RandomizedConfig { rank: k, oversampling: p, power_iterations: q };
            let mut rng = seeded_rng(77);
            let (f, t) = time_it(|| randomized_svd(a, &cfg, &mut rng));
            let ratio = relative_lowrank_error(a, &f.reconstruct(), best);
            table.row(&[
                p.to_string(),
                q.to_string(),
                format!("{ratio:.4}"),
                fmt_secs(t),
                format!("{:.1}x", t_full / t.max(1e-12)),
            ]);
        }
    }
    println!();
}

fn main() {
    println!("== A3: randomized SVD quality vs oversampling / power iterations ==\n");
    let mut rng = seeded_rng(5);

    let k = 10;
    let fast: Vec<f64> = (0..60).map(|i| 10.0 * 0.5f64.powi(i)).collect();
    let a_fast = matrix_with_spectrum(1200, 120, &fast, &mut rng);
    sweep("fast geometric decay (sigma_i = 10 * 2^-i)", &a_fast, k);

    let slow: Vec<f64> = (0..120).map(|i| 10.0 / (1.0 + i as f64)).collect();
    let a_slow = matrix_with_spectrum(1200, 120, &slow, &mut rng);
    sweep("slow harmonic decay (sigma_i = 10 / (1+i))", &a_slow, k);

    println!("expected: on fast decay even q = 0 is near-optimal; on slow decay the error");
    println!("ratio without power iterations is large and q = 1..2 recovers near-optimality,");
    println!("matching Halko-Martinsson-Tropp theory.");
}
