//! Ablation A2: the APMOS truncation factors `r1` and `r2`.
//!
//! Section 3.2 of the paper: "the choices for r1 and r2 may be used to
//! balance communication costs and accuracy". This harness measures both
//! sides of that balance on a Burgers dataset distributed over 8 ranks —
//! gathered bytes (real, recorded per message) against spectrum error and
//! subspace angle relative to the untruncated run.
//!
//! ```text
//! cargo run -p psvd-bench --release --bin ablation_truncation
//! ```

use psvd_bench::Table;
use psvd_comm::{Communicator, World};
use psvd_core::{batch_truncated_svd, SvdConfig};
use psvd_data::burgers::{snapshot_matrix, BurgersConfig};
use psvd_data::partition::split_rows;
use psvd_linalg::validate::{max_principal_angle, spectrum_error};
use psvd_linalg::Matrix;

fn main() {
    let cfg = BurgersConfig { grid_points: 2048, snapshots: 128, ..BurgersConfig::default() };
    let data = snapshot_matrix(&cfg);
    let k = 6;
    let n_ranks = 8;
    let blocks = split_rows(&data, n_ranks);
    let (u_ref, s_ref) = batch_truncated_svd(&data, k);

    let run = |r1: usize, r2: usize| -> (Vec<f64>, Matrix, u64) {
        let svd_cfg = SvdConfig::new(k).with_r1(r1).with_r2(r2);
        let world = World::new(n_ranks);
        let out = world.run(|comm| {
            let mut d = psvd_core::ParallelStreamingSvd::new(comm, svd_cfg);
            let (phi, s) = d.parallel_svd(&blocks[comm.rank()]);
            (phi, s)
        });
        let modes = Matrix::vstack_all(&out.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
        (out[0].1.clone(), modes, world.stats().total_bytes())
    };

    println!(
        "== A2.1: r1 sweep (r2 = {k}, {n_ranks} ranks, Burgers {} x {}) ==\n",
        cfg.grid_points, cfg.snapshots
    );
    let table = Table::new(&["r1", "bytes gathered", "spectrum err", "subspace angle"]);
    for r1 in [2, 4, 6, 10, 20, 50, 128] {
        let (s, modes, bytes) = run(r1, k);
        table.row(&[
            r1.to_string(),
            format!("{:.1} kB", bytes as f64 / 1024.0),
            format!("{:.3e}", spectrum_error(&s_ref, &s)),
            format!(
                "{:.2e}",
                max_principal_angle(&u_ref, &modes.first_columns(k.min(modes.cols())))
            ),
        ]);
    }

    println!("\n== A2.2: r2 sweep (r1 = 50) ==\n");
    let table = Table::new(&["r2", "bytes broadcast+gathered", "spectrum err", "subspace angle"]);
    for r2 in [k, 8, 12, 20, 50] {
        let (s, modes, bytes) = run(50, r2);
        table.row(&[
            r2.to_string(),
            format!("{:.1} kB", bytes as f64 / 1024.0),
            format!("{:.3e}", spectrum_error(&s_ref, &s)),
            format!(
                "{:.2e}",
                max_principal_angle(&u_ref, &modes.first_columns(k.min(modes.cols())))
            ),
        ]);
    }
    println!("\nexpected: error falls steeply as r1 passes the effective rank, then plateaus;");
    println!("traffic grows linearly in r1. r2 only needs to cover K (paper default r2 = 5).");
}
