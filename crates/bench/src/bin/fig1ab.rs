//! Figure 1(a,b): serial vs parallel+randomized singular vectors on the
//! viscous Burgers snapshot set.
//!
//! Prints the pointwise-error summary the paper plots (and writes the raw
//! series to `fig1a.csv` / `fig1b.csv`): serial mode, parallel mode, and
//! `|serial - parallel|` over the spatial grid, for the first and second
//! left singular vectors. The paper observes "accurate results ... with a
//! low error magnitude"; the quantitative expectation here is a max
//! pointwise error orders of magnitude below the mode amplitude (~1e-2).
//!
//! ```text
//! cargo run -p psvd-bench --release --bin fig1ab           # 2048 x 200
//! cargo run -p psvd-bench --release --bin fig1ab -- --full # 16384 x 800 (paper size)
//! ```

use psvd_bench::{fmt_secs, time_it, Table};
use psvd_comm::{Communicator, World};
use psvd_core::postprocess::write_series_csv;
use psvd_core::{ParallelStreamingSvd, SerialStreamingSvd, SvdConfig};
use psvd_data::burgers::{snapshot_matrix, BurgersConfig};
use psvd_data::partition::split_rows;
use psvd_linalg::validate::{align_signs, pointwise_mode_error};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        BurgersConfig::default()
    } else {
        BurgersConfig { grid_points: 2048, snapshots: 200, ..BurgersConfig::default() }
    };
    println!(
        "== Figure 1(a,b): Burgers {} x {}, Re = {}, 4 ranks, K = 10, ff = 0.95 ==\n",
        cfg.grid_points, cfg.snapshots, cfg.reynolds
    );
    let data = snapshot_matrix(&cfg);
    let k = 10;
    let batch = cfg.snapshots / 4;
    let svd_cfg = SvdConfig::new(k).with_forget_factor(0.95).with_r1(50).with_r2(10);

    let (serial, t_serial) = time_it(|| {
        let mut s = SerialStreamingSvd::new(svd_cfg);
        s.fit_batched(&data, batch);
        s
    });

    let n_ranks = 4;
    let blocks = split_rows(&data, n_ranks);
    let world = World::new(n_ranks);
    let par_cfg = svd_cfg.with_low_rank(true).with_power_iterations(2).with_seed(1);
    let (out, t_parallel) = time_it(|| {
        world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, par_cfg);
            d.fit_batched(&blocks[comm.rank()], batch);
            (d.gather_modes(0), d.singular_values().to_vec())
        })
    });
    let par_modes = out[0].0.clone().expect("rank 0 gathers");
    let par_modes = align_signs(serial.modes(), &par_modes);

    let grid = cfg.grid();
    let table = Table::new(&["mode", "max |err|", "mean |err|", "mode amplitude", "csv"]);
    for (fig, mode) in [("fig1a", 0usize), ("fig1b", 1usize)] {
        let err = pointwise_mode_error(serial.modes(), &par_modes, mode);
        let max_err = err.iter().cloned().fold(0.0, f64::max);
        let mean_err = err.iter().sum::<f64>() / err.len() as f64;
        let amp = serial.modes().col(mode).iter().cloned().fold(0.0f64, |a, x| a.max(x.abs()));
        let path = std::path::PathBuf::from(format!("{fig}.csv"));
        write_series_csv(
            &path,
            &grid,
            &["serial", "parallel", "abs_error"],
            &[&serial.modes().col(mode), &par_modes.col(mode), &err],
        )
        .expect("write csv");
        table.row(&[
            format!("{}", mode + 1),
            format!("{max_err:.3e}"),
            format!("{mean_err:.3e}"),
            format!("{amp:.3e}"),
            path.display().to_string(),
        ]);
    }

    println!("\nsingular values (serial | parallel+randomized):");
    for (i, (s, p)) in serial.singular_values().iter().zip(&out[0].1).enumerate() {
        println!("  sigma_{i}: {s:.8e} | {p:.8e}");
    }
    println!(
        "\nwall time: serial {} | parallel(4 threads, 1 core) {}",
        fmt_secs(t_serial),
        fmt_secs(t_parallel)
    );
    println!(
        "traffic: {} messages, {:.1} kB",
        world.stats().total_messages(),
        world.stats().total_bytes() as f64 / 1024.0
    );
}
