//! Figure 1(c): weak scaling of the parallelized + randomized SVD.
//!
//! The paper fixes 1024 grid points per rank and scales to 256 nodes of
//! Theta, timing the one-shot parallel randomized SVD (no streaming). This
//! host has a single core, so — per the substitution documented in
//! `DESIGN.md` — the *algorithm and all messages run for real* over the
//! in-process fabric, while time is accounted on per-rank simulated clocks:
//!
//! - compute: analytic flop counts for each phase, converted to seconds at
//!   the host's calibrated dense-kernel rate;
//! - communication: every real message charged `alpha + bytes/bandwidth`
//!   (Theta Aries-like parameters) plus per-message endpoint overhead.
//!
//! Reported: simulated wall-clock per rank count (max over rank clocks),
//! weak-scaling efficiency `t(1)/t(N)`, and real traffic volumes, for four
//! series: the paper's randomized flat-gather configuration, a
//! deterministic rank-0 baseline, binomial-tree collectives, and two-level
//! hierarchical APMOS with √P groups (the last two are extensions that
//! probe, then remove, the rank-0 bottleneck).
//!
//! ```text
//! cargo run -p psvd-bench --release --bin fig1c_weak_scaling            # up to 64 ranks
//! cargo run -p psvd-bench --release --bin fig1c_weak_scaling -- --full  # up to 256 ranks
//! ```

use psvd_bench::{calibrate_flops_per_sec, fmt_secs, Table};
use psvd_comm::collectives::{tree_bcast, tree_gather};
use psvd_comm::{Communicator, NetworkModel, World};
use psvd_data::burgers::{snapshot_rows, BurgersConfig};
use psvd_linalg::gemm::matmul;
use psvd_linalg::randomized::low_rank_svd;
use psvd_linalg::snapshots::generate_right_vectors;
use psvd_linalg::svd::svd;
use psvd_linalg::Matrix;
use rand::SeedableRng;

/// Per-rank grid points, as in the paper.
const POINTS_PER_RANK: usize = 1024;
/// Snapshots (paper: 800; reduced so the 256-rank point runs in seconds).
const SNAPSHOTS: usize = 128;
/// APMOS local truncation (paper: 50; scaled with the snapshot count).
const R1: usize = 16;
/// Modes.
const K: usize = 10;

/// APMOS with analytic flop charging on the simulated clocks. Mirrors
/// `psvd_core::parallel::parallel_svd` phase by phase; the real kernels and
/// real messages run, and each phase also advances this rank's clock by
/// `flops / rate`.
fn apmos_timed<C: Communicator>(
    comm: &C,
    a_local: &Matrix,
    low_rank: bool,
    tree: bool,
    rate: f64,
) -> Vec<f64> {
    let (m, n) = (a_local.rows() as f64, a_local.cols() as f64);

    // Phase 1 (every rank): Gram + Jacobi eigensolve + W block.
    comm.advance((2.0 * m * n * n + 25.0 * n * n * n) / rate);
    let (v, s) = generate_right_vectors(a_local, R1);
    let wlocal = v.mul_diag(&s);

    // Phase 2: gather W at rank 0 (charged by the network model).
    let wglobal = if tree { tree_gather(comm, wlocal, 0) } else { comm.gather(wlocal, 0) };

    // Phase 3 (rank 0 only): factorize W.
    let factors = if comm.rank() == 0 {
        let w = Matrix::hstack_all(&wglobal.expect("root"));
        let cols = w.cols() as f64;
        let l = (K + 10) as f64; // sketch width of the randomized path
        let flops = if low_rank {
            // Y = W*Omega, QR(Y), Q^T W, small SVD: ~6 l n cols.
            6.0 * l * n * cols
        } else {
            // Wide input: QR-preprocess of the transpose + dense SVD of the
            // small square factor.
            2.0 * cols * n * n + 26.0 * n * n * n
        };
        comm.advance(flops / rate);
        let (x, sv) = if low_rank {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            low_rank_svd(&w, K, &mut rng)
        } else {
            let f = svd(&w);
            (f.u, f.s)
        };
        Some((x.first_columns(K), sv[..K.min(sv.len())].to_vec()))
    } else {
        None
    };

    // Phase 4: broadcast the reduced factors.
    let (x, sv) = if tree { tree_bcast(comm, factors, 0) } else { comm.bcast(factors, 0) };

    // Phase 5 (every rank): assemble the local mode slice.
    comm.advance((2.0 * m * n * K as f64) / rate);
    let inv: Vec<f64> = sv.iter().map(|v| 1.0 / v.max(1e-300)).collect();
    let _phi = matmul(a_local, &x).mul_diag(&inv);
    sv
}

/// Two-level APMOS with flop charging: group leaders re-compress their
/// group's W stack to r1 columns before forwarding (see
/// `psvd_core::hierarchical`), cutting rank-0 width from `r1·P` to
/// `r1·P/g` at the cost of a `r1·g`-wide factorization at each leader.
fn apmos_hier_timed<C: Communicator>(
    comm: &C,
    a_local: &Matrix,
    group_size: usize,
    rate: f64,
) -> Vec<f64> {
    use psvd_linalg::randomized::low_rank_svd as lrsvd;
    let (m, n) = (a_local.rows() as f64, a_local.cols() as f64);
    let rank = comm.rank();
    let size = comm.size();
    let l = (K + 10) as f64;

    comm.advance((2.0 * m * n * n + 25.0 * n * n * n) / rate);
    let (v, s) = generate_right_vectors(a_local, R1);
    let wlocal = v.mul_diag(&s);

    const TAG_L: u64 = 50;
    const TAG_R: u64 = 51;
    let leader = (rank / group_size) * group_size;
    let group_end = (leader + group_size).min(size);
    let reduced = if rank == leader {
        let mut blocks = vec![wlocal];
        for src in leader + 1..group_end {
            blocks.push(comm.recv::<Matrix>(src, TAG_L));
        }
        let stack = Matrix::hstack_all(&blocks);
        let cols = stack.cols() as f64;
        comm.advance(6.0 * l * n * cols / rate);
        let keep = R1.min(stack.rows().min(stack.cols()));
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let (x, sv) = lrsvd(&stack, keep, &mut rng);
        Some(x.first_columns(keep).mul_diag(&sv[..keep.min(sv.len())]))
    } else {
        comm.send(wlocal, leader, TAG_L);
        None
    };

    let factors = if rank == 0 {
        let mut blocks = vec![reduced.expect("root is a leader")];
        let mut src = group_size;
        while src < size {
            blocks.push(comm.recv::<Matrix>(src, TAG_R));
            src += group_size;
        }
        let stack = Matrix::hstack_all(&blocks);
        let cols = stack.cols() as f64;
        comm.advance(6.0 * l * n * cols / rate);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let (x, sv) = lrsvd(&stack, K, &mut rng);
        Some((x.first_columns(K), sv[..K.min(sv.len())].to_vec()))
    } else {
        if rank == leader {
            comm.send(reduced.expect("leader"), 0, TAG_R);
        }
        None
    };
    let (x, sv) = comm.bcast(factors, 0);

    comm.advance((2.0 * m * n * K as f64) / rate);
    let inv: Vec<f64> = sv.iter().map(|v| 1.0 / v.max(1e-300)).collect();
    let _phi = matmul(a_local, &x).mul_diag(&inv);
    sv
}

/// Which harness variant a series runs.
#[derive(Clone, Copy)]
enum Variant {
    Flat { low_rank: bool, tree: bool },
    Hierarchical,
}

fn run_scale(n_ranks: usize, variant: Variant, rate: f64) -> (f64, u64, u64) {
    let cfg = BurgersConfig {
        grid_points: POINTS_PER_RANK * n_ranks,
        snapshots: SNAPSHOTS,
        ..BurgersConfig::default()
    };
    let world = World::with_model(n_ranks, NetworkModel::theta_aries());
    let group = (n_ranks as f64).sqrt().ceil() as usize;
    let (_, clocks) = world.run_with_clocks(|comm| {
        let r0 = comm.rank() * POINTS_PER_RANK;
        let local = snapshot_rows(&cfg, r0, r0 + POINTS_PER_RANK);
        match variant {
            Variant::Flat { low_rank, tree } => apmos_timed(comm, &local, low_rank, tree, rate),
            Variant::Hierarchical => apmos_hier_timed(comm, &local, group.max(1), rate),
        }
    });
    let t = clocks.iter().cloned().fold(0.0, f64::max);
    (t, world.stats().total_messages(), world.stats().total_bytes())
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let max_ranks = if full { 256 } else { 64 };
    let rate = calibrate_flops_per_sec();
    println!("== Figure 1(c): weak scaling, {POINTS_PER_RANK} grid points/rank, {SNAPSHOTS} snapshots, K = {K}, r1 = {R1} ==");
    println!(
        "calibrated dense-kernel rate: {:.2} GF/s; network model: Theta Aries (1.2 us, 8 GB/s)\n",
        rate / 1e9
    );

    let mut ranks = vec![1usize];
    while *ranks.last().unwrap() < max_ranks {
        ranks.push(ranks.last().unwrap() * 2);
    }

    let series: [(Variant, &str); 4] = [
        (
            Variant::Flat { low_rank: true, tree: false },
            "randomized, flat gather (paper's configuration)",
        ),
        (Variant::Flat { low_rank: false, tree: false }, "deterministic, flat gather (baseline)"),
        (
            Variant::Flat { low_rank: true, tree: true },
            "randomized, binomial-tree collectives (extension)",
        ),
        (Variant::Hierarchical, "randomized, two-level APMOS with sqrt(P) groups (extension)"),
    ];
    for (variant, label) in series {
        println!("-- {label} --");
        let table = Table::new(&[
            "ranks",
            "global points",
            "sim time",
            "efficiency",
            "messages",
            "bytes moved",
        ]);
        let mut t1 = None;
        for &n in &ranks {
            let (t, msgs, bytes) = run_scale(n, variant, rate);
            let t1v = *t1.get_or_insert(t);
            table.row(&[
                n.to_string(),
                (n * POINTS_PER_RANK).to_string(),
                fmt_secs(t),
                format!("{:.3}", t1v / t),
                msgs.to_string(),
                format!("{:.1} kB", bytes as f64 / 1024.0),
            ]);
        }
        println!();
    }
    println!("ideal weak scaling = efficiency 1.0 at every rank count; the paper reports");
    println!("\"scaling is seen to follow the ideal trend appropriately\" up to 256 nodes.");
}
