//! Figure 2: coherent structures of the (synthetic) ERA5 surface-pressure
//! record.
//!
//! The paper shows maps of the first two SVD modes of 2013–2020 6-hourly
//! ERA5 pressure read through parallel NetCDF4. Here the dataset is the
//! planted-mode synthetic substitute (`DESIGN.md`), the IO path is `ncsim`
//! hyperslab reads (one file handle per rank), and — because the ground
//! truth is known — the figure's qualitative "coherent structures emerge"
//! claim becomes a measured recovery angle per mode.
//!
//! Writes `fig2_modes.csv` (each column one mode, reshape to nlat x nlon).
//!
//! ```text
//! cargo run -p psvd-bench --release --bin fig2_era5_modes            # 96x144, 2048 snaps
//! cargo run -p psvd-bench --release --bin fig2_era5_modes -- --tiny  # quick check
//! ```

use psvd_bench::{fmt_secs, time_it, Table};
use psvd_comm::{Communicator, World};
use psvd_core::postprocess::{sparkline, write_modes_csv};
use psvd_core::{ParallelStreamingSvd, SvdConfig};
use psvd_data::era5::{generate, Era5Config};
use psvd_data::ncsim::{self, NcsimReader};
use psvd_linalg::validate::max_principal_angle;
use psvd_linalg::Matrix;

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let cfg = if tiny {
        Era5Config { nlon: 36, nlat: 24, snapshots: 256, ..Era5Config::default() }
    } else {
        Era5Config::default() // 144 x 96 grid, 2048 snapshots, 4 planted modes
    };
    println!(
        "== Figure 2: synthetic ERA5 pressure, {} x {} grid, {} snapshots, noise {} ==\n",
        cfg.nlat, cfg.nlon, cfg.snapshots, cfg.noise_level
    );

    let (dataset, t_gen) = time_it(|| generate(&cfg));
    let path = std::env::temp_dir().join(format!("fig2_era5_{}.ncs", std::process::id()));
    ncsim::write(&path, "surface_pressure", &dataset.snapshots).expect("write ncsim");
    println!(
        "generated + wrote container in {} ({:.1} MB)",
        fmt_secs(t_gen),
        (dataset.snapshots.rows() * dataset.snapshots.cols() * 8) as f64 / 1e6
    );

    let n_ranks = 8;
    let k = cfg.n_modes + 4; // buffer modes beyond the structures of interest
    let svd_cfg = SvdConfig::new(k).with_forget_factor(1.0).with_r1(64).with_r2(16);
    let batch = cfg.snapshots / 8;
    let world = World::new(n_ranks);
    let path_ref = &path;
    let (out, t_run) = time_it(|| {
        world.run(|comm| {
            let mut reader = NcsimReader::open(path_ref).expect("open");
            let local = reader.read_rank_block(comm.size(), comm.rank()).expect("hyperslab");
            let mut d = ParallelStreamingSvd::new(comm, svd_cfg);
            d.fit_batched(&local, batch);
            (d.gather_modes(0), d.singular_values().to_vec())
        })
    });
    std::fs::remove_file(&path).ok();
    let modes = out[0].0.clone().expect("rank 0 gathers");
    println!(
        "distributed streaming SVD: {} ranks, {} batches, {} msgs / {:.0} kB in {}\n",
        n_ranks,
        cfg.snapshots / batch,
        world.stats().total_messages(),
        world.stats().total_bytes() as f64 / 1024.0,
        fmt_secs(t_run)
    );

    let table = Table::new(&["mode", "sigma (measured)", "sigma (planted)", "recovery angle"]);
    let scale = (cfg.snapshots as f64).sqrt();
    for j in 0..cfg.n_modes {
        let planted = Matrix::from_columns(&[dataset.true_modes.col(j)]);
        let got = Matrix::from_columns(&[modes.col(j)]);
        let angle = max_principal_angle(&planted, &got);
        table.row(&[
            format!("{}", j + 1),
            format!("{:.2}", out[0].1[j]),
            format!("{:.2}", dataset.amplitudes[j] * scale),
            format!("{angle:.4} rad"),
        ]);
    }

    println!("\nmode maps (zonal profile at the central latitude):");
    let mid = cfg.nlat / 2;
    for j in 0..2 {
        let col = modes.col(j);
        let zonal: Vec<f64> = (0..cfg.nlon).map(|x| col[mid * cfg.nlon + x]).collect();
        println!("  mode {}: {}", j + 1, sparkline(&zonal, 72));
    }
    write_modes_csv(std::path::Path::new("fig2_modes.csv"), &modes).expect("write csv");
    println!("\nwrote fig2_modes.csv (reshape each column to {} x {})", cfg.nlat, cfg.nlon);
}
