//! Kernel-scaling benchmark: GFLOP/s of the packed parallel GEMM engine
//! versus thread count and problem size, against the serial reference
//! kernels, emitting machine-readable JSON (`BENCH_gemm.json`).
//!
//! ```text
//! cargo run -p psvd-bench --release --bin gemm_scaling [-- --quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the size sweep so the run finishes in seconds (the CI
//! smoke mode used by `scripts/bench_gemm.sh`); `--out` overrides the JSON
//! path (default `BENCH_gemm.json` in the working directory). Alongside
//! timings, every (size, threads) cell is checked bitwise against the
//! single-thread result, so the JSON doubles as a determinism record.

use std::fmt::Write as _;

use psvd_bench::{time_it, Table};
use psvd_core::{SerialStreamingSvd, SvdConfig};
use psvd_linalg::gemm::{self, kernels, matmul, packed, reference};
use psvd_linalg::qr::thin_qr;
use psvd_linalg::random::{gaussian_matrix, seeded_rng};
use psvd_linalg::{alloc_stats, par, Matrix, Scalar};

struct Case {
    kind: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

struct Sample {
    kind: &'static str,
    /// Element dtype the row ran at (`"f64"` or `"f32"`).
    dtype: &'static str,
    m: usize,
    k: usize,
    n: usize,
    engine: &'static str,
    /// Micro-kernel the row ran under (`"-"` for the reference engine,
    /// which has no micro-kernel).
    kernel: &'static str,
    threads: usize,
    seconds: f64,
    gflops: f64,
    deterministic: bool,
}

fn flops(c: &Case) -> f64 {
    2.0 * c.m as f64 * c.k as f64 * c.n as f64
}

/// Best-of-`reps` wall time for `f`.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let (mut out, mut best) = time_it(&mut f);
    for _ in 1..reps {
        let (r, t) = time_it(&mut f);
        if t < best {
            best = t;
            out = r;
        }
    }
    (out, best)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_gemm.json".to_string());

    let cases: Vec<Case> = if quick {
        vec![
            Case { kind: "square", m: 128, k: 128, n: 128 },
            Case { kind: "square", m: 256, k: 256, n: 256 },
            Case { kind: "tall-skinny", m: 8192, k: 64, n: 64 },
        ]
    } else {
        vec![
            Case { kind: "square", m: 256, k: 256, n: 256 },
            Case { kind: "square", m: 512, k: 512, n: 512 },
            Case { kind: "square", m: 1024, k: 1024, n: 1024 },
            Case { kind: "tall-skinny", m: 65536, k: 64, n: 64 },
        ]
    };
    let reps = if quick { 2 } else { 3 };
    let thread_counts = [1usize, 2, 4, 8];
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Resolve the process-wide kernel and blocking up front so every row
    // below records what actually ran. `current_blocking` honours
    // `PSVD_GEMM_TUNE` (off / in-process autotune / profile file). Kernel
    // and blocking resolve per element dtype; the header and JSON report
    // the f64 pair, the per-row kernel column records each dtype's own.
    let kern = kernels::selected::<f64>();
    let (blk, blk_source) = gemm::current_blocking();
    let kernel_names: Vec<&'static str> =
        kernels::available::<f64>().iter().map(|k| k.name()).collect();
    println!(
        "== GEMM scaling: packed engine (kernel {} {}x{}, blocking MC={} KC={} NC={} [{}]) \
         vs serial reference, {hw} hw threads ==\n",
        kern.name(),
        kern.mr(),
        kern.nr(),
        blk.mc,
        blk.kc,
        blk.nc,
        blk_source.label()
    );
    let table = Table::new(&[
        "case", "dtype", "engine", "kernel", "threads", "seconds", "GFLOP/s", "bitwise",
    ]);
    let mut samples: Vec<Sample> = Vec::new();

    sweep_dtype::<f64>(&cases, reps, &thread_counts, &table, &mut samples);
    sweep_dtype::<f32>(&cases, reps, &thread_counts, &table, &mut samples);

    let mismatches = samples.iter().filter(|s| !s.deterministic).count();
    println!(
        "\ndeterminism: {} (thread counts beyond the {hw} hardware threads still \
         partition identically)",
        if mismatches == 0 { "bitwise identical across all thread counts" } else { "MISMATCH" }
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"gemm_scaling\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"hardware_threads\": {hw},");
    let _ = writeln!(
        json,
        "  \"kernel\": {{ \"name\": \"{}\", \"mr\": {}, \"nr\": {}, \"fused\": {} }},",
        kern.name(),
        kern.mr(),
        kern.nr(),
        kern.fused()
    );
    let _ = writeln!(
        json,
        "  \"kernels_available\": [{}],",
        kernel_names.iter().map(|n| format!("\"{n}\"")).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(
        json,
        "  \"blocking\": {{ \"mc\": {}, \"kc\": {}, \"nc\": {}, \"source\": \"{}\" }},",
        blk.mc,
        blk.kc,
        blk.nc,
        blk_source.label()
    );
    let _ = writeln!(json, "  \"deterministic\": {},", mismatches == 0);
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"kind\": \"{}\", \"dtype\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"engine\": \"{}\", \"kernel\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \
             \"gflops\": {:.3}, \"bitwise_match\": {} }}",
            s.kind,
            s.dtype,
            s.m,
            s.k,
            s.n,
            s.engine,
            s.kernel,
            s.threads,
            s.seconds,
            s.gflops,
            s.deterministic
        );
        json.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_gemm.json");
    println!("wrote {out_path}");

    let alloc_path = streaming_alloc_ledger(quick, &out_path);
    println!("wrote {alloc_path}");

    assert_eq!(mismatches, 0, "bitwise determinism violated — see {out_path}");
}

/// One full (reference + per-kernel + thread-sweep) pass at element
/// dtype `T`. Operands are drawn once in f64 and demoted, so the f32 rows
/// time the same logical problem; the bitwise determinism checks are per
/// (dtype, kernel, blocking) — the contract's unit.
fn sweep_dtype<T: Scalar>(
    cases: &[Case],
    reps: usize,
    thread_counts: &[usize],
    table: &Table,
    samples: &mut Vec<Sample>,
) {
    let kern = kernels::selected::<T>();
    // Semantic (not bitwise) tolerance, scaled to the dtype's epsilon so
    // the f32 rows get the same relative slack the f64 rows always had.
    let tol_scale = 1e-9 * (T::EPSILON.to_f64() / f64::EPSILON);
    for case in cases {
        let a: Matrix<T> = gaussian_matrix(case.m, case.k, &mut seeded_rng(42)).cast();
        let b: Matrix<T> = gaussian_matrix(case.k, case.n, &mut seeded_rng(43)).cast();
        let label = format!("{}x{}x{}", case.m, case.k, case.n);
        let gf = flops(case) / 1e9;
        let tol = tol_scale * case.k as f64;
        let max_abs_diff = |x: &Matrix<T>, y: &Matrix<T>| {
            let mut worst = 0.0f64;
            for (xv, yv) in x.as_slice().iter().zip(y.as_slice()) {
                worst = worst.max((*xv - *yv).abs().to_f64());
            }
            worst
        };

        par::set_num_threads(1);
        let (c_ref, t_ref) = best_of(reps, || reference::matmul(&a, &b));
        table.row(&[
            label.clone(),
            T::NAME.into(),
            "reference".into(),
            "-".into(),
            "1".into(),
            format!("{t_ref:.4}"),
            format!("{:.2}", gf / t_ref),
            "-".into(),
        ]);
        samples.push(Sample {
            kind: case.kind,
            dtype: T::NAME,
            m: case.m,
            k: case.k,
            n: case.n,
            engine: "reference",
            kernel: "-",
            threads: 1,
            seconds: t_ref,
            gflops: gf / t_ref,
            deterministic: true,
        });

        // Every available micro-kernel at one thread: the per-kernel
        // GFLOP/s record, each checked against the reference result.
        for &k in kernels::available::<T>() {
            if k.name() == kern.name() {
                continue; // the selected kernel gets the full sweep below
            }
            let (c, t) = best_of(reps, || packed::matmul_with(k, &a, &b));
            let err = max_abs_diff(&c, &c_ref);
            assert!(err < tol, "{} {} vs reference diverged: {err}", T::NAME, k.name());
            table.row(&[
                label.clone(),
                T::NAME.into(),
                "packed".into(),
                k.name().into(),
                "1".into(),
                format!("{t:.4}"),
                format!("{:.2}", gf / t),
                "ok".into(),
            ]);
            samples.push(Sample {
                kind: case.kind,
                dtype: T::NAME,
                m: case.m,
                k: case.k,
                n: case.n,
                engine: "packed",
                kernel: k.name(),
                threads: 1,
                seconds: t,
                gflops: gf / t,
                deterministic: true,
            });
        }

        // The selected kernel across the thread sweep; bitwise checks are
        // per fixed (dtype, kernel) — the determinism contract's unit.
        let mut baseline: Option<Matrix<T>> = None;
        for &threads in thread_counts {
            par::set_num_threads(threads);
            let (c, t) = best_of(reps, || packed::matmul(&a, &b));
            let deterministic = match &baseline {
                None => {
                    // Semantic cross-check against the reference kernel at
                    // the baseline thread count.
                    let err = max_abs_diff(&c, &c_ref);
                    assert!(err < tol, "{} packed vs reference diverged: {err}", T::NAME);
                    baseline = Some(c);
                    true
                }
                Some(base) => *base == c,
            };
            table.row(&[
                label.clone(),
                T::NAME.into(),
                "packed".into(),
                kern.name().into(),
                threads.to_string(),
                format!("{t:.4}"),
                format!("{:.2}", gf / t),
                if deterministic { "ok" } else { "MISMATCH" }.into(),
            ]);
            samples.push(Sample {
                kind: case.kind,
                dtype: T::NAME,
                m: case.m,
                k: case.k,
                n: case.n,
                engine: "packed",
                kernel: kern.name(),
                threads,
                seconds: t,
                gflops: gf / t,
                deterministic,
            });
        }
        par::set_num_threads(0);
    }
}

/// Allocation ledger for the streaming hot loop (`BENCH_alloc.json`):
/// Matrix bytes and allocation counts per steady-state update, comparing
/// the pre-workspace composition (`mul_diag` + `hstack` + `thin_qr` +
/// `matmul`, every intermediate a fresh matrix) against the driver's
/// workspace-fed `incorporate_data`.
fn streaming_alloc_ledger(quick: bool, gemm_out_path: &str) -> String {
    let (m, updates) = if quick { (2048usize, 10usize) } else { (16384, 30) };
    let (batch, k, ff) = (8usize, 6usize, 0.99f64);
    let warmup = 2;
    let chunks: Vec<Matrix> = (0..updates + warmup + 1)
        .map(|b| gaussian_matrix(m, batch, &mut seeded_rng(100 + b as u64)))
        .collect();

    // "Before": the allocating composition the drivers used before the
    // workspace refactor. Every update materializes the weighted modes,
    // the stack, both QR factors and the new mode matrix.
    let measure_before = || {
        let f0 = thin_qr(&chunks[0]);
        let sv0 = psvd_linalg::svd(&f0.r);
        let k0 = k.min(sv0.s.len());
        let mut modes = matmul(&f0.q, &sv0.u.first_columns(k0));
        let mut svals = sv0.s[..k0].to_vec();
        let mut window = (0u64, 0u64);
        for (b, chunk) in chunks[1..].iter().enumerate() {
            if b == warmup {
                window = alloc_stats::snapshot();
            }
            let weighted: Vec<f64> = svals.iter().map(|s| s * ff).collect();
            let stack = modes.mul_diag(&weighted).hstack(chunk);
            let f = thin_qr(&stack);
            let sv = psvd_linalg::svd(&f.r);
            let kk = k.min(sv.s.len());
            modes = matmul(&f.q, &sv.u.first_columns(kk));
            svals = sv.s[..kk].to_vec();
        }
        let (c1, b1) = alloc_stats::snapshot();
        (c1 - window.0, b1 - window.1)
    };

    // "After": the real driver, persistent buffers plus workspace arena.
    let mut driver = SerialStreamingSvd::new(SvdConfig::new(k).with_forget_factor(ff));
    driver.initialize(&chunks[0]);
    for chunk in &chunks[1..=warmup] {
        driver.incorporate_data(chunk);
    }
    driver.reset_scratch_stats();
    let (before_allocs, before_bytes) = measure_before();
    let (c0, b0) = alloc_stats::snapshot();
    for chunk in &chunks[warmup + 1..] {
        driver.incorporate_data(chunk);
    }
    let (c1, b1) = alloc_stats::snapshot();
    let (after_allocs, after_bytes) = (c1 - c0, b1 - b0);
    let ws = driver.scratch_stats();

    let n = updates as u64;
    println!(
        "\n== streaming update allocation ledger ({m} rows, batch {batch}, K = {k}) ==\n\
         before (allocating composition): {} allocs / {} bytes per update\n\
         after  (workspace-fed driver):   {} allocs / {} bytes per update \
         (workspace misses in window: {})",
        before_allocs / n,
        before_bytes / n,
        after_allocs / n,
        after_bytes / n,
        ws.misses
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"streaming_alloc\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"rows\": {m},");
    let _ = writeln!(json, "  \"batch\": {batch},");
    let _ = writeln!(json, "  \"k\": {k},");
    let _ = writeln!(json, "  \"updates\": {updates},");
    let _ = writeln!(
        json,
        "  \"before\": {{ \"allocs_per_update\": {}, \"bytes_per_update\": {} }},",
        before_allocs / n,
        before_bytes / n
    );
    let _ = writeln!(
        json,
        "  \"after\": {{ \"allocs_per_update\": {}, \"bytes_per_update\": {} }},",
        after_allocs / n,
        after_bytes / n
    );
    let _ = writeln!(
        json,
        "  \"workspace\": {{ \"takes\": {}, \"misses\": {}, \"fresh_bytes\": {} }}",
        ws.takes, ws.misses, ws.fresh_bytes
    );
    json.push_str("}\n");
    let alloc_path = std::path::Path::new(gemm_out_path)
        .with_file_name("BENCH_alloc.json")
        .to_string_lossy()
        .into_owned();
    std::fs::write(&alloc_path, json).expect("write BENCH_alloc.json");
    alloc_path
}
