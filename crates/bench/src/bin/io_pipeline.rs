//! Out-of-core IO pipeline benchmark: overlap efficiency of the ncsim v2
//! chunked reader + background prefetcher against the blocking and in-core
//! streaming paths, emitting machine-readable JSON (`BENCH_io.json`).
//!
//! ```text
//! cargo run -p psvd-bench --release --bin io_pipeline [-- --quick] [--out PATH]
//! ```
//!
//! One synthetic snapshot matrix is written to a chunked ncsim v2 file
//! (byte-shuffle + RLE codec) and streamed back through
//! [`SerialStreamingSvd::fit_source`] three ways, at 1 and 4 compute
//! threads:
//!
//! * `in_core` — [`MatrixBatchSource`] over the resident matrix; the
//!   bitwise oracle for the out-of-core legs.
//! * `blocking` — [`SnapshotPrefetcher`] at depth 0: IO + decode inline on
//!   the consumer thread, so every IO nanosecond is a compute stall
//!   (stall fraction == 1 by construction).
//! * `prefetch` — depth 2 (double buffering): a worker thread reads and
//!   decodes batch `k+1` while the driver incorporates batch `k`.
//!
//! Gated contracts (timings are informational): the prefetch legs hide IO
//! under compute (stall fraction < 0.15), the blocking legs do not
//! (> 0.90), the streamed bytes exceed 4x the resident ingest footprint
//! (panels + ring), and every out-of-core f64 run is bitwise identical
//! (singular values and modes) to the in-core run at both thread counts.

use std::fmt::Write as _;
use std::path::Path;

use psvd_bench::time_it;
use psvd_core::{SerialStreamingSvd, SvdConfig};
use psvd_data::ncsim::{write_v2, Codec, V2Options};
use psvd_data::prefetch::{IoStats, SnapshotPrefetcher};
use psvd_data::stream::MatrixBatchSource;
use psvd_linalg::{par, Matrix};

const PREFETCH_DEPTH: usize = 2;

struct Leg {
    label: &'static str,
    threads: usize,
    seconds: f64,
    stats: Option<IoStats>,
}

impl Leg {
    fn stall_fraction(&self) -> f64 {
        self.stats.map(|s| s.stall_fraction()).unwrap_or(0.0)
    }

    fn overlap_efficiency(&self) -> f64 {
        1.0 - self.stall_fraction()
    }
}

fn run_in_core(data: &Matrix, cfg: SvdConfig, batch: usize) -> (Vec<f64>, Matrix, f64) {
    let mut src = MatrixBatchSource::new(data, batch);
    let mut svd = SerialStreamingSvd::new(cfg);
    let (res, seconds) = time_it(|| svd.fit_source(&mut src));
    res.expect("in-core source cannot fail");
    (svd.singular_values().to_vec(), svd.modes().clone(), seconds)
}

fn run_out_of_core(
    path: &Path,
    cfg: SvdConfig,
    batch: usize,
    depth: usize,
) -> (Vec<f64>, Matrix, f64, IoStats) {
    let mut src =
        SnapshotPrefetcher::<f64>::open_with_depth(path, batch, depth).expect("open bench file");
    let mut svd = SerialStreamingSvd::new(cfg);
    let (res, seconds) = time_it(|| svd.fit_source(&mut src));
    res.expect("streaming the bench file failed");
    let stats = src.io_stats();
    (svd.singular_values().to_vec(), svd.modes().clone(), seconds, stats)
}

/// Run an out-of-core leg `attempts` times and keep the lowest-stall run.
/// Scheduler noise (this may share a core with CI neighbours) can only
/// *add* stall time, so the minimum is the honest overlap measurement;
/// every attempt must still reproduce the oracle bitwise.
#[allow(clippy::too_many_arguments)]
fn run_out_of_core_best(
    path: &Path,
    cfg: SvdConfig,
    batch: usize,
    depth: usize,
    attempts: usize,
    oracle: (&[f64], &Matrix),
    threads: usize,
    label: &str,
) -> (f64, IoStats) {
    let mut best: Option<(f64, IoStats)> = None;
    for _ in 0..attempts {
        let (sigma, modes, secs, stats) = run_out_of_core(path, cfg, batch, depth);
        assert!(
            sigma == oracle.0 && &modes == oracle.1,
            "{label} leg at {threads} threads is not bitwise identical to in-core"
        );
        if best.as_ref().is_none_or(|(_, b)| stats.stall_fraction() < b.stall_fraction()) {
            best = Some((secs, stats));
        }
    }
    best.expect("at least one attempt")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_io.json".to_string());

    // Compute-dominant shapes: small batches against a large row count and
    // a healthy K keep the per-batch QR + update well above the per-batch
    // read + decode cost, which is the regime out-of-core streaming targets.
    let (rows, cols, batch, k, chunk_rows) =
        if quick { (12_000, 96, 4, 20, 1024) } else { (60_000, 128, 8, 24, 4096) };
    let cfg = SvdConfig::new(k).with_forget_factor(1.0);
    let data = Matrix::from_fn(rows, cols, |i, j| {
        ((i * cols + j) as f64 * 0.137).sin() + 0.25 * ((i / 7 + 3 * j) as f64 * 0.051).cos()
    });

    let mut path = std::env::temp_dir();
    path.push(format!("psvd_bench_io_{}.ncs", std::process::id()));
    write_v2(&path, "u", &data, V2Options { chunk_rows, codec: Codec::ShuffleRle })
        .expect("write bench file");
    let file_bytes = std::fs::metadata(&path).expect("stat bench file").len();

    // The out-of-core resident ingest footprint: the caller's landing panel
    // plus the recycle ring of `depth` panels. Everything else is the K-rank
    // factorization state, which in-core runs hold too.
    let panel_bytes = (rows * batch * std::mem::size_of::<f64>()) as u64;
    let resident_ingest_bytes = panel_bytes * (PREFETCH_DEPTH as u64 + 1);
    let stream_ratio = file_bytes as f64 / resident_ingest_bytes as f64;

    println!(
        "== out-of-core IO pipeline: {rows}x{cols} snapshots, batch {batch}, K = {k}, \
         chunk_rows {chunk_rows}, shuffle-rle ==",
    );
    println!(
        "file {:.1} MB vs {:.2} MB resident ingest ({stream_ratio:.1}x out-of-core)\n",
        file_bytes as f64 / 1e6,
        resident_ingest_bytes as f64 / 1e6,
    );

    let mut legs: Vec<Leg> = Vec::new();
    let bitwise_ok = true; // every out-of-core attempt asserts bitwise equality below
    for &threads in &[1usize, 4] {
        par::set_num_threads(threads);
        let (oracle_sigma, oracle_modes, secs) = run_in_core(&data, cfg, batch);
        legs.push(Leg { label: "in_core", threads, seconds: secs, stats: None });

        for (label, depth, attempts) in
            [("blocking", 0usize, 1usize), ("prefetch", PREFETCH_DEPTH, 3)]
        {
            let (secs, stats) = run_out_of_core_best(
                &path,
                cfg,
                batch,
                depth,
                attempts,
                (&oracle_sigma, &oracle_modes),
                threads,
                label,
            );
            legs.push(Leg { label, threads, seconds: secs, stats: Some(stats) });
        }
    }

    println!(
        "{:>9}  {:>7}  {:>9}  {:>10}  {:>8}  {:>9}  {:>7}",
        "leg", "threads", "seconds", "read MB", "stall", "overlap", "recycle"
    );
    println!("{}", "-".repeat(72));
    for leg in &legs {
        let (mb, recycle) = leg
            .stats
            .map(|s| (format!("{:.1}", s.bytes_read as f64 / 1e6), s.recycle_hits.to_string()))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        let (stall, overlap) = if leg.stats.is_some() {
            (format!("{:.3}", leg.stall_fraction()), format!("{:.3}", leg.overlap_efficiency()))
        } else {
            ("-".into(), "-".into())
        };
        println!(
            "{:>9}  {:>7}  {:>9.4}  {:>10}  {:>8}  {:>9}  {:>7}",
            leg.label, leg.threads, leg.seconds, mb, stall, overlap, recycle
        );
    }
    println!(
        "\ngates: prefetch stall < 0.15, blocking stall > 0.90, stream ratio {stream_ratio:.1}x \
         >= 4x, out-of-core bitwise identical to in-core: {bitwise_ok}"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"io_pipeline\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"cols\": {cols},");
    let _ = writeln!(json, "  \"batch\": {batch},");
    let _ = writeln!(json, "  \"k\": {k},");
    let _ = writeln!(json, "  \"chunk_rows\": {chunk_rows},");
    let _ = writeln!(json, "  \"codec\": \"shuffle-rle\",");
    let _ = writeln!(json, "  \"prefetch_depth\": {PREFETCH_DEPTH},");
    let _ = writeln!(json, "  \"file_bytes\": {file_bytes},");
    let _ = writeln!(json, "  \"resident_ingest_bytes\": {resident_ingest_bytes},");
    let _ = writeln!(json, "  \"stream_ratio\": {stream_ratio:.2},");
    let _ = writeln!(json, "  \"bitwise_identical\": {bitwise_ok},");
    json.push_str("  \"results\": [\n");
    for (i, leg) in legs.iter().enumerate() {
        let s = leg.stats.unwrap_or_default();
        let _ = write!(
            json,
            "    {{ \"leg\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \"bytes_read\": {}, \
             \"chunks_prefetched\": {}, \"recycle_hits\": {}, \"stall_nanos\": {}, \
             \"io_busy_nanos\": {}, \"stall_fraction\": {:.4}, \"overlap_efficiency\": {:.4} }}",
            leg.label,
            leg.threads,
            leg.seconds,
            s.bytes_read,
            s.chunks_prefetched,
            s.recycle_hits,
            s.stall_nanos,
            s.io_busy_nanos,
            leg.stall_fraction(),
            leg.overlap_efficiency(),
        );
        json.push_str(if i + 1 < legs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_io.json");
    println!("wrote {out_path}");
    let _ = std::fs::remove_file(&path);

    assert!(stream_ratio >= 4.0, "stream ratio {stream_ratio:.2} below the 4x out-of-core floor");
    for leg in &legs {
        match leg.label {
            "prefetch" => assert!(
                leg.stall_fraction() < 0.15,
                "prefetch leg at {} threads stalled {:.3} of IO time (gate: < 0.15)",
                leg.threads,
                leg.stall_fraction()
            ),
            "blocking" => assert!(
                leg.stall_fraction() > 0.90,
                "blocking leg at {} threads reports stall {:.3}, expected ~1.0",
                leg.threads,
                leg.stall_fraction()
            ),
            _ => {}
        }
    }
}
