//! Mixed-precision streaming benchmark: wall time, wire bytes and singular
//! value accuracy of the distributed streaming SVD at each precision mode,
//! emitting machine-readable JSON (`BENCH_mixed.json`).
//!
//! ```text
//! cargo run -p psvd-bench --release --bin mixed_precision [-- --quick] [--out PATH]
//! ```
//!
//! Three legs over the same Burgers snapshot stream (paper Section 4.3):
//!
//! * `f64` — the all-double baseline; its singular values are the oracle.
//! * `mixed` — `Precision::Mixed`: every matrix payload demotes to f32 on
//!   the wire, local re-orthogonalization and factors stay f64.
//! * `f32` — the fully single-precision driver instantiation
//!   (`ParallelStreamingSvd<_, f32>`), the dtype-generic end of the design.
//!
//! Two contracts are gated (the timings are informational):
//! mixed wire bytes land in (0.40, 0.60) of the f64 leg, and every mixed
//! singular value is within `1e-5 · sigma_max` of the oracle.

use std::fmt::Write as _;

use psvd_bench::time_it;
use psvd_comm::{Communicator, World};
use psvd_core::{ParallelStreamingSvd, Precision, SerialStreamingSvd, SvdConfig};
use psvd_data::burgers::{snapshot_matrix, BurgersConfig};
use psvd_data::partition::split_rows;
use psvd_linalg::{Matrix, Scalar};

struct Leg {
    label: &'static str,
    seconds: f64,
    wire_bytes: u64,
    /// `max_j |sigma_j - oracle_j| / sigma_max`; 0 for the oracle leg.
    sigma_err: f64,
}

/// One distributed streaming run at element dtype `T`: returns the
/// singular values (identical on every rank — asserted), the wall time of
/// the `world.run` region and the total wire bytes moved.
fn run_leg<T: Scalar + psvd_comm::Payload>(
    data: &Matrix<T>,
    cfg: SvdConfig,
    ranks: usize,
    batch: usize,
) -> (Vec<f64>, f64, u64) {
    let blocks = split_rows(data, ranks);
    let world = World::new(ranks);
    let (out, seconds) = time_it(|| {
        world.run(|comm| {
            let mut d = ParallelStreamingSvd::<_, T>::new(comm, cfg);
            d.fit_batched(&blocks[comm.rank()], batch);
            let _ = d.allgather_modes();
            d.singular_values().to_vec()
        })
    });
    for (rank, s) in out.iter().enumerate() {
        assert_eq!(s, &out[0], "rank {rank} disagrees on singular values");
    }
    (out[0].iter().map(|s| s.to_f64()).collect(), seconds, world.stats().total_bytes())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_mixed.json".to_string());

    let (data_cfg, ranks, batch) = if quick {
        (BurgersConfig::small(), 4usize, 8usize)
    } else {
        (BurgersConfig { grid_points: 4096, snapshots: 256, ..BurgersConfig::default() }, 8, 16)
    };
    let k = 5;
    let cfg = SvdConfig::new(k).with_forget_factor(1.0);
    let data = snapshot_matrix(&data_cfg);
    println!(
        "== mixed-precision streaming: {}x{} Burgers snapshots, {ranks} ranks, \
         batch {batch}, K = {k} ==\n",
        data.rows(),
        data.cols()
    );

    // Serial f64 oracle, so the distributed legs are also checked against a
    // communicator-free reference (streaming order is the same stream).
    let mut serial = SerialStreamingSvd::new(cfg.with_precision(Precision::F64));
    serial.fit_batched(&data, batch);
    let sigma_max = serial.singular_values()[0];

    let (f64_sigma, f64_secs, f64_bytes) =
        run_leg::<f64>(&data, cfg.with_precision(Precision::F64), ranks, batch);
    for (s, oracle) in f64_sigma.iter().zip(serial.singular_values()) {
        assert!(
            (s - oracle).abs() <= 1e-9 * sigma_max,
            "distributed f64 drifted from the serial oracle: {s} vs {oracle}"
        );
    }

    let sigma_err = |sigma: &[f64]| -> f64 {
        sigma.iter().zip(&f64_sigma).map(|(s, o)| (s - o).abs() / sigma_max).fold(0.0f64, f64::max)
    };

    let (mixed_sigma, mixed_secs, mixed_bytes) =
        run_leg::<f64>(&data, cfg.with_precision(Precision::Mixed), ranks, batch);
    let (f32_sigma, f32_secs, f32_bytes) =
        run_leg::<f32>(&data.cast(), cfg.with_precision(Precision::F32), ranks, batch);

    let legs = [
        Leg { label: "f64", seconds: f64_secs, wire_bytes: f64_bytes, sigma_err: 0.0 },
        Leg {
            label: "mixed",
            seconds: mixed_secs,
            wire_bytes: mixed_bytes,
            sigma_err: sigma_err(&mixed_sigma),
        },
        Leg {
            label: "f32",
            seconds: f32_secs,
            wire_bytes: f32_bytes,
            sigma_err: sigma_err(&f32_sigma),
        },
    ];

    println!(
        "{:>8}  {:>9}  {:>12}  {:>10}  {:>14}",
        "mode", "seconds", "wire bytes", "vs f64", "max sigma err"
    );
    println!("{}", "-".repeat(62));
    for leg in &legs {
        println!(
            "{:>8}  {:>9.4}  {:>12}  {:>10.3}  {:>14.3e}",
            leg.label,
            leg.seconds,
            leg.wire_bytes,
            leg.wire_bytes as f64 / f64_bytes as f64,
            leg.sigma_err
        );
    }

    let wire_ratio = mixed_bytes as f64 / f64_bytes as f64;
    let mixed_err = legs[1].sigma_err;
    println!(
        "\nmixed mode: {:.1}% of f64 wire bytes, max sigma error {mixed_err:.3e} \
         (gates: ratio in (0.40, 0.60), error <= 1e-5)",
        100.0 * wire_ratio
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"mixed_precision\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"rows\": {},", data.rows());
    let _ = writeln!(json, "  \"cols\": {},", data.cols());
    let _ = writeln!(json, "  \"ranks\": {ranks},");
    let _ = writeln!(json, "  \"batch\": {batch},");
    let _ = writeln!(json, "  \"k\": {k},");
    let _ = writeln!(json, "  \"mixed_wire_ratio\": {wire_ratio:.4},");
    json.push_str("  \"results\": [\n");
    for (i, leg) in legs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"precision\": \"{}\", \"seconds\": {:.6}, \"wire_bytes\": {}, \
             \"wire_ratio_vs_f64\": {:.4}, \"max_sigma_rel_err\": {:.6e} }}",
            leg.label,
            leg.seconds,
            leg.wire_bytes,
            leg.wire_bytes as f64 / f64_bytes as f64,
            leg.sigma_err
        );
        json.push_str(if i + 1 < legs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_mixed.json");
    println!("wrote {out_path}");

    assert!(
        (0.40..0.60).contains(&wire_ratio),
        "mixed wire ratio {wire_ratio:.3} outside (0.40, 0.60)"
    );
    assert!(mixed_err <= 1e-5, "mixed sigma error {mixed_err:.3e} exceeds 1e-5 of sigma_max");
}
