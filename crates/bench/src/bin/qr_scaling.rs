//! Thin-QR scaling benchmark: the blocked compact-WY path versus the
//! unblocked reflector-at-a-time reference, across TSQR-relevant shapes
//! and thread counts, emitting machine-readable JSON (`BENCH_qr.json`).
//!
//! ```text
//! cargo run -p psvd-bench --release --bin qr_scaling [-- --quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the sweep for CI; both modes include the acceptance
//! shape 16384x128. Every blocked (shape, threads) cell is checked bitwise
//! against its single-thread run — at a fixed panel width the
//! factorization must be reproducible at any thread count — and the
//! blocked factors are cross-checked against the unblocked ones to
//! contract tolerances.

use std::fmt::Write as _;

use psvd_bench::{time_it, Table};
use psvd_linalg::norms::orthogonality_error;
use psvd_linalg::qr::{qr_block, qr_thin_into, set_qr_block};
use psvd_linalg::random::{gaussian_matrix, seeded_rng};
use psvd_linalg::{par, Matrix, Workspace};

struct Sample {
    m: usize,
    n: usize,
    engine: &'static str,
    nb: usize,
    threads: usize,
    seconds: f64,
    deterministic: bool,
}

/// Best-of-`reps` wall time for `f`.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let (mut out, mut best) = time_it(&mut f);
    for _ in 1..reps {
        let (r, t) = time_it(&mut f);
        if t < best {
            best = t;
            out = r;
        }
    }
    (out, best)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_qr.json".to_string());

    // The acceptance shape 16384x128 runs in both modes; --quick only
    // trims the satellites.
    let shapes: Vec<(usize, usize)> = if quick {
        vec![(4096, 64), (16384, 128)]
    } else {
        vec![(4096, 64), (16384, 128), (16384, 256), (65536, 64), (512, 512)]
    };
    let reps = if quick { 2 } else { 3 };
    let thread_counts = [1usize, 2, 4, 8];
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("== thin-QR scaling: blocked compact-WY vs unblocked, {hw} hw threads ==\n");
    let table = Table::new(&["shape", "engine", "nb", "threads", "seconds", "bitwise"]);
    let mut samples: Vec<Sample> = Vec::new();
    let mut speedups: Vec<(usize, usize, f64)> = Vec::new();

    for &(m, n) in &shapes {
        let a = gaussian_matrix(m, n, &mut seeded_rng(42));
        let label = format!("{m}x{n}");
        let mut ws = Workspace::new();
        let (mut q, mut r) = (Matrix::zeros(0, 0), Matrix::zeros(0, 0));
        let nb = {
            set_qr_block(0);
            qr_block(m, n)
        };

        let mut unblocked_best = f64::INFINITY;
        let mut blocked_best = f64::INFINITY;
        let mut reference: Option<(Matrix, Matrix)> = None;
        let mut baseline: Option<(Matrix, Matrix)> = None;

        for &(engine, width) in &[("unblocked", 1usize), ("blocked", nb)] {
            set_qr_block(width);
            // Warm the workspace outside the timed region.
            qr_thin_into(a.view(), &mut q, &mut r, &mut ws);
            for &threads in &thread_counts {
                par::set_num_threads(threads);
                let (_, t) = best_of(reps, || qr_thin_into(a.view(), &mut q, &mut r, &mut ws));
                let deterministic = if engine == "unblocked" {
                    unblocked_best = unblocked_best.min(t);
                    if reference.is_none() {
                        reference = Some((q.clone(), r.clone()));
                    }
                    true // the unblocked path's determinism is covered by tier-1 tests
                } else {
                    blocked_best = blocked_best.min(t);
                    match &baseline {
                        None => {
                            // Contract cross-check against the unblocked factors.
                            let (qr_ref, rr_ref) = reference.as_ref().expect("unblocked ran first");
                            let qerr = (&q - qr_ref).max_abs();
                            let rerr = (&r - rr_ref).max_abs();
                            let scale = rr_ref.max_abs().max(1.0);
                            assert!(
                                qerr < 1e-10 && rerr < 1e-10 * scale,
                                "blocked vs unblocked diverged: q {qerr:.2e}, r {rerr:.2e}"
                            );
                            assert!(
                                orthogonality_error(&q) < 1e-12,
                                "blocked Q lost orthogonality"
                            );
                            baseline = Some((q.clone(), r.clone()));
                            true
                        }
                        Some((qb, rb)) => *qb == q && *rb == r,
                    }
                };
                table.row(&[
                    label.clone(),
                    engine.into(),
                    width.to_string(),
                    threads.to_string(),
                    format!("{t:.4}"),
                    if deterministic { "ok" } else { "MISMATCH" }.into(),
                ]);
                samples.push(Sample {
                    m,
                    n,
                    engine,
                    nb: width,
                    threads,
                    seconds: t,
                    deterministic,
                });
            }
        }
        par::set_num_threads(0);
        set_qr_block(0);
        let speedup = unblocked_best / blocked_best;
        speedups.push((m, n, speedup));
        println!("  {label}: blocked (nb = {nb}) is {speedup:.2}x the unblocked path\n");
    }

    let mismatches = samples.iter().filter(|s| !s.deterministic).count();
    println!(
        "determinism: {}",
        if mismatches == 0 {
            "blocked factors bitwise identical across all thread counts at fixed nb"
        } else {
            "MISMATCH"
        }
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"qr_scaling\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"hardware_threads\": {hw},");
    let _ = writeln!(json, "  \"deterministic\": {},", mismatches == 0);
    json.push_str("  \"speedups\": [\n");
    for (i, (m, n, s)) in speedups.iter().enumerate() {
        let _ =
            write!(json, "    {{ \"m\": {m}, \"n\": {n}, \"blocked_over_unblocked\": {s:.3} }}");
        json.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"m\": {}, \"n\": {}, \"engine\": \"{}\", \"nb\": {}, \"threads\": {}, \
             \"seconds\": {:.6}, \"bitwise_match\": {} }}",
            s.m, s.n, s.engine, s.nb, s.threads, s.seconds, s.deterministic
        );
        json.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_qr.json");
    println!("wrote {out_path}");

    assert_eq!(mismatches, 0, "bitwise determinism violated — see {out_path}");
}
