//! SVD-as-a-service load bench: many concurrent tenants streaming through
//! one [`psvd_serve::SvdServer`], with eviction churn, chaos sessions, and
//! query-latency probes, emitting machine-readable JSON (`BENCH_serve.json`).
//!
//! ```text
//! cargo run -p psvd-bench --release --bin serve_load [-- --quick] [--out PATH]
//! ```
//!
//! Three phases:
//!
//! * `idle` — one committed tenant, a query storm against an otherwise
//!   idle server. Client-side exact percentiles (the server's own
//!   histogram is log2-bucketed telemetry, so the gates use wall-clock
//!   `Instant` samples).
//! * `fleet` — a fleet of tenants streamed concurrently under a resident
//!   cap of a quarter of the fleet, so the LRU sweeper must spill
//!   checkpoints while traffic is in flight. A slice of the fleet runs
//!   two-rank sessions billed to a simulated Theta/Aries network; another
//!   slice runs under seeded chaos (drops, corruption, delays, and a
//!   scheduled rank death every other round) so replay recovery is on the
//!   clock, not just in the conformance suite.
//! * `contended` — a heavy multi-rank tenant grinds large rounds on the
//!   worker pool while a light tenant's queries storm. Queries read a
//!   published `Arc` model snapshot, so their p99 must stay far below the
//!   heavy round time; if queries ever waited behind an update, p99 would
//!   jump to round scale and the gate would trip.
//!
//! Gated contracts (throughput numbers are informational, the gates are
//! not): every accepted snapshot is processed once the fleet is flushed
//! and drained; the cap forces evictions and queries force rehydrations;
//! chaos sessions absorb faults and replay dead rounds yet finish with a
//! servable model; and contended query p99 stays below half a heavy
//! round.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use psvd_bench::{fmt_secs, Table};
use psvd_comm::NetworkModel;
use psvd_core::{Precision, SvdConfig};
use psvd_linalg::Matrix;
use psvd_serve::{ChaosSpec, ServeConfig, SessionSpec, SvdServer};

/// Rows per fleet tenant.
const ROWS: usize = 24;
/// Modes per fleet tenant.
const K: usize = 2;
/// Canonical batch width per fleet tenant.
const BATCH: usize = 4;
/// Queries in the idle latency probe.
const IDLE_QUERIES: usize = 4_000;
/// Queries per contended storm attempt.
const STORM_QUERIES: usize = 20_000;

fn fleet_spec(idx: usize) -> SessionSpec {
    let base = SessionSpec::new(K, ROWS)
        .with_svd(
            SvdConfig::new(K)
                .with_r1(4)
                .with_r2(4)
                .with_precision(Precision::F64)
                .with_tree_fanout(0)
                .with_tree_depth(0),
        )
        .with_batch(BATCH);
    if idx % 8 == 3 {
        // Chaos slice: transient faults plus a scheduled death every other
        // round, so the server replays rounds under load.
        base.with_ranks(2).with_chaos(
            ChaosSpec::new(0xBE_EF00 + idx as u64)
                .with_drop_prob(0.2)
                .with_corrupt_prob(0.2)
                .with_delay_prob(0.2, 2)
                .with_death_every(2),
        )
    } else if idx.is_multiple_of(4) {
        // Simulated-network slice: bill round communication to Theta/Aries
        // clocks so the service accounts simulated seconds too.
        base.with_ranks(2).with_network(NetworkModel::theta_aries())
    } else {
        base
    }
}

fn chunk(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i as f64 * 0.83 + j as f64 * 1.91 + seed as f64) * 0.17).sin()
            + 0.4 * ((i as f64 - 1.3 * j as f64 + seed as f64 * 0.7) * 0.05).cos()
    })
}

/// Exact percentile over client-side samples (nearest-rank).
fn pctl(sorted_ns: &[u64], q: f64) -> Duration {
    assert!(!sorted_ns.is_empty(), "no latency samples collected");
    let idx = ((q * (sorted_ns.len() - 1) as f64).round() as usize).min(sorted_ns.len() - 1);
    Duration::from_nanos(sorted_ns[idx])
}

fn fmt_us(d: Duration) -> String {
    format!("{:.1} us", d.as_nanos() as f64 / 1e3)
}

struct LatencyOut {
    p50: Duration,
    p99: Duration,
    samples: usize,
}

fn summarize(mut ns: Vec<u64>) -> LatencyOut {
    ns.sort_unstable();
    LatencyOut { p50: pctl(&ns, 0.50), p99: pctl(&ns, 0.99), samples: ns.len() }
}

/// Phase 1: query latency against an idle server with one committed model.
fn idle_probe() -> LatencyOut {
    let server = SvdServer::new(ServeConfig::default().with_sessions(4).with_workers(1));
    server.open("idle", fleet_spec(1)).unwrap();
    server.submit("idle", chunk(ROWS, 2 * BATCH, 42)).unwrap();
    server.drain();
    let mut ns = Vec::with_capacity(IDLE_QUERIES);
    for _ in 0..IDLE_QUERIES {
        let t0 = Instant::now();
        let sigma = server.singular_values("idle").unwrap();
        ns.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(sigma.len(), K);
    }
    server.shutdown();
    summarize(ns)
}

struct FleetOut {
    sessions: usize,
    snapshots: u64,
    rounds: u64,
    replays: u64,
    faults_absorbed: u64,
    evictions: u64,
    rehydrations: u64,
    evicted_bytes: u64,
    wire_messages: u64,
    wire_bytes: u64,
    sim_comm_seconds: f64,
    wall_seconds: f64,
    snapshots_per_sec: f64,
}

/// Phase 2: stream a fleet of tenants under a resident cap with mixed
/// update/query traffic, then flush, drain, and audit the books.
fn fleet_load(sessions: usize, chunks_per_session: usize) -> FleetOut {
    let server = SvdServer::new(
        ServeConfig::default()
            .with_sessions(sessions / 4)
            .with_queue_depth(64)
            .with_workers(8)
            .with_round_batches(2),
    );
    let tenants: Vec<String> = (0..sessions).map(|i| format!("tenant-{i:04}")).collect();
    let t0 = Instant::now();
    for (i, t) in tenants.iter().enumerate() {
        server.open(t, fleet_spec(i)).unwrap();
    }
    for wave in 0..chunks_per_session {
        for (i, t) in tenants.iter().enumerate() {
            let cols = chunk(ROWS, BATCH, (wave * sessions + i) as u64);
            // Backpressure is part of the protocol: drain and retry.
            while let Err(psvd_serve::ServeError::QueueFull { .. }) = server.submit(t, cols.clone())
            {
                server.drain();
            }
            // Mixed traffic: sprinkle queries over earlier tenants, which
            // rehydrates any the cap sweeper already spilled.
            if wave > 0 && i % 7 == 0 {
                let sigma = server.singular_values(t).unwrap();
                assert_eq!(sigma.len(), K);
            }
        }
        server.drain();
    }
    server.flush_all();
    server.drain();
    // Query every tenant: evicted ones rehydrate on demand.
    for t in &tenants {
        let sigma = server.singular_values(t).unwrap();
        assert_eq!(sigma.len(), K, "{t}: model must be servable after the run");
    }
    let wall = t0.elapsed().as_secs_f64();
    let s = server.stats().snapshot();

    let expected = (sessions * chunks_per_session * BATCH) as u64;
    assert_eq!(s.snapshots_accepted, expected, "every submitted snapshot accepted");
    assert_eq!(
        s.snapshots_processed, s.snapshots_accepted,
        "flush_all + drain must process every accepted snapshot"
    );
    assert!(s.evictions > 0, "resident cap {}/{} produced no evictions", sessions / 4, sessions);
    assert!(s.rehydrations > 0, "queries against spilled tenants must rehydrate");
    assert!(s.faults_absorbed > 0, "chaos slice absorbed no transient faults");
    assert!(s.replays > 0, "chaos slice replayed no dead rounds");
    assert!(s.sim_comm_nanos > 0, "network slice billed no simulated time");

    for t in &tenants {
        server.close(t).unwrap();
    }
    assert_eq!(server.session_count(), 0, "fleet must drain to zero sessions");
    server.shutdown();
    FleetOut {
        sessions,
        snapshots: s.snapshots_processed,
        rounds: s.rounds,
        replays: s.replays,
        faults_absorbed: s.faults_absorbed,
        evictions: s.evictions,
        rehydrations: s.rehydrations,
        evicted_bytes: s.evicted_bytes,
        wire_messages: s.wire_messages,
        wire_bytes: s.wire_bytes,
        sim_comm_seconds: s.sim_comm_nanos as f64 / 1e9,
        wall_seconds: wall,
        snapshots_per_sec: s.snapshots_processed as f64 / wall,
    }
}

struct ContendedOut {
    heavy_round_mean: Duration,
    latency: LatencyOut,
    overlapped: u64,
}

/// Phase 3: query a light tenant while a heavy tenant owns the workers.
fn contended_probe(heavy_cols: usize) -> ContendedOut {
    let server = SvdServer::new(ServeConfig::default().with_sessions(8).with_workers(1));
    server.open("light", fleet_spec(1)).unwrap();
    server
        .open(
            "heavy",
            SessionSpec::new(8, heavy_cols * 64)
                .with_svd(SvdConfig::new(8).with_r1(16).with_r2(16))
                .with_ranks(4)
                .with_batch(heavy_cols),
        )
        .unwrap();
    server.submit("light", chunk(ROWS, 2 * BATCH, 7)).unwrap();
    server.drain();
    let baseline = server.singular_values("light").unwrap();

    // Calibrate: mean wall time of an uncontended heavy round.
    let rows = heavy_cols * 64;
    let mut round_secs = 0.0;
    for r in 0..3u64 {
        let t0 = Instant::now();
        server.submit("heavy", chunk(rows, heavy_cols, r)).unwrap();
        server.drain();
        round_secs += t0.elapsed().as_secs_f64();
    }
    let heavy_round_mean = Duration::from_secs_f64(round_secs / 3.0);

    // Storm light queries while the heavy round pins the only worker;
    // retry whole rounds in case a storm loses the race entirely.
    let mut ns = Vec::new();
    let mut overlapped = 0u64;
    for attempt in 0..5u64 {
        server.submit("heavy", chunk(rows, heavy_cols, 100 + attempt)).unwrap();
        for _ in 0..STORM_QUERIES {
            let busy = server.is_busy("heavy");
            let t0 = Instant::now();
            let sigma = server.singular_values("light").unwrap();
            let dt = t0.elapsed().as_nanos() as u64;
            assert_eq!(sigma, baseline, "heavy updates must not disturb the light tenant");
            if busy {
                overlapped += 1;
                ns.push(dt);
            }
        }
        server.drain();
        if overlapped > 100 {
            break;
        }
    }
    assert!(overlapped > 0, "no query overlapped a heavy round — contention not exercised");
    server.shutdown();
    ContendedOut { heavy_round_mean, latency: summarize(ns), overlapped }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let (sessions, chunks_per_session, heavy_cols) =
        if quick { (128, 3, 16) } else { (512, 6, 32) };

    println!(
        "serve_load: {sessions} tenants x {chunks_per_session} chunks of {BATCH}, resident cap \
         {}, heavy tenant {}x{heavy_cols} per round{}",
        sessions / 4,
        heavy_cols * 64,
        if quick { " [quick]" } else { "" }
    );

    let idle = idle_probe();
    let fleet = fleet_load(sessions, chunks_per_session);
    let contended = contended_probe(heavy_cols);

    let table = Table::new(&["phase", "sessions", "snapshots", "wall", "p50", "p99", "notes"]);
    table.row(&[
        "idle".to_string(),
        "1".to_string(),
        "-".to_string(),
        "-".to_string(),
        fmt_us(idle.p50),
        fmt_us(idle.p99),
        format!("{} queries", idle.samples),
    ]);
    table.row(&[
        "fleet".to_string(),
        fleet.sessions.to_string(),
        fleet.snapshots.to_string(),
        fmt_secs(fleet.wall_seconds),
        "-".to_string(),
        "-".to_string(),
        format!(
            "{:.0} snap/s, {} evict, {} rehydrate, {} replays, {} faults, sim {}",
            fleet.snapshots_per_sec,
            fleet.evictions,
            fleet.rehydrations,
            fleet.replays,
            fleet.faults_absorbed,
            fmt_secs(fleet.sim_comm_seconds),
        ),
    ]);
    table.row(&[
        "contended".to_string(),
        "2".to_string(),
        "-".to_string(),
        "-".to_string(),
        fmt_us(contended.latency.p50),
        fmt_us(contended.latency.p99),
        format!(
            "{} overlapped, heavy round {}",
            contended.overlapped,
            fmt_secs(contended.heavy_round_mean.as_secs_f64()),
        ),
    ]);

    // Contention gate: if queries waited behind the in-flight round, their
    // p99 would land at heavy-round scale. Half a round, floored at 2 ms,
    // absorbs scheduler noise while still catching any blocking design.
    let p99_budget = (contended.heavy_round_mean / 2).max(Duration::from_millis(2));
    println!(
        "\ngates: accepted == processed, evictions/rehydrations/replays > 0, contended query \
         p99 {} <= {} (= max(heavy round / 2, 2 ms))",
        fmt_us(contended.latency.p99),
        fmt_us(p99_budget),
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_load\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"sessions\": {sessions},");
    let _ = writeln!(json, "  \"chunks_per_session\": {chunks_per_session},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"resident_cap\": {},", sessions / 4);
    let _ = writeln!(json, "  \"network\": \"theta-aries\",");
    let _ = writeln!(json, "  \"idle\": {{");
    let _ = writeln!(json, "    \"queries\": {},", idle.samples);
    let _ = writeln!(json, "    \"p50_us\": {:.3},", idle.p50.as_nanos() as f64 / 1e3);
    let _ = writeln!(json, "    \"p99_us\": {:.3}", idle.p99.as_nanos() as f64 / 1e3);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"fleet\": {{");
    let _ = writeln!(json, "    \"snapshots_processed\": {},", fleet.snapshots);
    let _ = writeln!(json, "    \"rounds\": {},", fleet.rounds);
    let _ = writeln!(json, "    \"replays\": {},", fleet.replays);
    let _ = writeln!(json, "    \"faults_absorbed\": {},", fleet.faults_absorbed);
    let _ = writeln!(json, "    \"evictions\": {},", fleet.evictions);
    let _ = writeln!(json, "    \"rehydrations\": {},", fleet.rehydrations);
    let _ = writeln!(json, "    \"evicted_bytes\": {},", fleet.evicted_bytes);
    let _ = writeln!(json, "    \"wire_messages\": {},", fleet.wire_messages);
    let _ = writeln!(json, "    \"wire_bytes\": {},", fleet.wire_bytes);
    let _ = writeln!(json, "    \"sim_comm_seconds\": {:.9},", fleet.sim_comm_seconds);
    let _ = writeln!(json, "    \"wall_seconds\": {:.6},", fleet.wall_seconds);
    let _ = writeln!(json, "    \"snapshots_per_sec\": {:.1}", fleet.snapshots_per_sec);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"contended\": {{");
    let _ = writeln!(
        json,
        "    \"heavy_round_ms\": {:.3},",
        contended.heavy_round_mean.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "    \"overlapped_queries\": {},", contended.overlapped);
    let _ = writeln!(json, "    \"p50_us\": {:.3},", contended.latency.p50.as_nanos() as f64 / 1e3);
    let _ = writeln!(json, "    \"p99_us\": {:.3},", contended.latency.p99.as_nanos() as f64 / 1e3);
    let _ = writeln!(json, "    \"p99_budget_us\": {:.3}", p99_budget.as_nanos() as f64 / 1e3);
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");

    assert!(
        contended.latency.p99 <= p99_budget,
        "contended query p99 {:?} exceeds budget {:?} (heavy round {:?}) — queries are \
         blocking behind updates",
        contended.latency.p99,
        p99_budget,
        contended.heavy_round_mean,
    );
}
