//! Dense-SVD scaling benchmark: the level-3 rotation-accumulation path
//! versus the rotation-at-a-time direct reference on tall Golub–Kahan
//! problems, across thread counts, emitting machine-readable JSON
//! (`BENCH_svd.json`).
//!
//! ```text
//! cargo run -p psvd-bench --release --bin svd_scaling [-- --quick] [--out PATH]
//! ```
//!
//! The solver is invoked through `golub_kahan_svd` directly (not the
//! `svd()` front door) so the QR preprocessing step cannot shrink the
//! tall factor and hide the rotation-application cost being measured.
//! Every accumulated (shape, threads) cell is checked bitwise against its
//! single-thread run, the singular values are checked bitwise against the
//! direct path (the QR iteration reads only the bidiagonal, which
//! accumulation never touches), and the factors are cross-checked to the
//! ≤1e-12 contract. `--quick` trims the satellite shapes; both modes run
//! the acceptance shape 8192x256.

use std::fmt::Write as _;

use psvd_bench::{time_it, Table};
use psvd_linalg::norms::orthogonality_error;
use psvd_linalg::par;
use psvd_linalg::random::{gaussian_matrix, seeded_rng};
use psvd_linalg::rot::{rot_block, set_rot_block};
use psvd_linalg::svd::golub_kahan::golub_kahan_svd;
use psvd_linalg::svd::Svd;

struct Sample {
    m: usize,
    n: usize,
    engine: &'static str,
    nb: usize,
    threads: usize,
    seconds: f64,
    deterministic: bool,
}

/// Best-of-`reps` wall time for `f`.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let (mut out, mut best) = time_it(&mut f);
    for _ in 1..reps {
        let (r, t) = time_it(&mut f);
        if t < best {
            best = t;
            out = r;
        }
    }
    (out, best)
}

/// Factor agreement between the accumulated and direct trajectories:
/// bitwise singular values, ≤1e-12 modes, orthogonality preserved.
fn check_contract(acc: &Svd, direct: &Svd, label: &str) {
    assert_eq!(acc.s, direct.s, "{label}: singular values must be bitwise equal");
    let uerr = (&acc.u - &direct.u).max_abs();
    let verr = (&acc.vt - &direct.vt).max_abs();
    assert!(
        uerr <= 1e-12 && verr <= 1e-12,
        "{label}: factors diverged beyond contract: u {uerr:.2e}, v {verr:.2e}"
    );
    assert!(orthogonality_error(&acc.u) < 1e-10, "{label}: U lost orthogonality");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_svd.json".to_string());

    // The acceptance shape 8192x256 runs in both modes.
    let shapes: Vec<(usize, usize)> = if quick {
        vec![(2048, 128), (8192, 256)]
    } else {
        vec![(2048, 128), (8192, 256), (16384, 128)]
    };
    let reps = if quick { 2 } else { 3 };
    let thread_counts = [1usize, 2, 4, 8];
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("== dense SVD scaling: accumulated rotations vs direct, {hw} hw threads ==\n");
    let table = Table::new(&["shape", "engine", "nb", "threads", "seconds", "bitwise"]);
    let mut samples: Vec<Sample> = Vec::new();
    let mut speedups: Vec<(usize, usize, f64)> = Vec::new();

    for &(m, n) in &shapes {
        let a = gaussian_matrix(m, n, &mut seeded_rng(42));
        let label = format!("{m}x{n}");
        let nb = {
            set_rot_block(0);
            rot_block(m, n)
        };

        let mut direct_best = f64::INFINITY;
        let mut accumulated_best = f64::INFINITY;
        let mut reference: Option<Svd> = None;
        let mut baseline: Option<Svd> = None;

        for &(engine, width) in &[("direct", 1usize), ("accumulated", nb)] {
            set_rot_block(width);
            for &threads in &thread_counts {
                par::set_num_threads(threads);
                let (f, t) = best_of(reps, || golub_kahan_svd(&a));
                let deterministic = if engine == "direct" {
                    direct_best = direct_best.min(t);
                    if reference.is_none() {
                        reference = Some(f);
                    }
                    true // the direct path's determinism is covered by tier-1 tests
                } else {
                    accumulated_best = accumulated_best.min(t);
                    match &baseline {
                        None => {
                            let direct = reference.as_ref().expect("direct ran first");
                            check_contract(&f, direct, &label);
                            baseline = Some(f);
                            true
                        }
                        Some(b) => b.s == f.s && b.u == f.u && b.vt == f.vt,
                    }
                };
                table.row(&[
                    label.clone(),
                    engine.into(),
                    width.to_string(),
                    threads.to_string(),
                    format!("{t:.4}"),
                    if deterministic { "ok" } else { "MISMATCH" }.into(),
                ]);
                samples.push(Sample {
                    m,
                    n,
                    engine,
                    nb: width,
                    threads,
                    seconds: t,
                    deterministic,
                });
            }
        }
        par::set_num_threads(0);
        set_rot_block(0);
        let speedup = direct_best / accumulated_best;
        speedups.push((m, n, speedup));
        println!("  {label}: accumulated (nb = {nb}) is {speedup:.2}x the direct path\n");
    }

    let mismatches = samples.iter().filter(|s| !s.deterministic).count();
    println!(
        "determinism: {}",
        if mismatches == 0 {
            "accumulated factors bitwise identical across all thread counts at fixed nb"
        } else {
            "MISMATCH"
        }
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"svd_scaling\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"hardware_threads\": {hw},");
    let _ = writeln!(json, "  \"deterministic\": {},", mismatches == 0);
    json.push_str("  \"speedups\": [\n");
    for (i, (m, n, s)) in speedups.iter().enumerate() {
        let _ =
            write!(json, "    {{ \"m\": {m}, \"n\": {n}, \"accumulated_over_direct\": {s:.3} }}");
        json.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"m\": {}, \"n\": {}, \"engine\": \"{}\", \"nb\": {}, \"threads\": {}, \
             \"seconds\": {:.6}, \"bitwise_match\": {} }}",
            s.m, s.n, s.engine, s.nb, s.threads, s.seconds, s.deterministic
        );
        json.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_svd.json");
    println!("wrote {out_path}");

    assert_eq!(mismatches, 0, "bitwise determinism violated — see {out_path}");
    let acceptance = speedups
        .iter()
        .find(|(m, n, _)| (*m, *n) == (8192, 256))
        .map(|(_, _, s)| *s)
        .expect("acceptance shape must run");
    assert!(
        acceptance >= 3.0,
        "acceptance: 8192x256 accumulated path must be >=3x the direct path, got {acceptance:.2}x"
    );
}
