//! Merge-tree weak scaling: simulated-time crossover of hierarchical
//! APMOS over the flat rank-0 gather, swept to 4096 simulated ranks,
//! emitting machine-readable JSON (`BENCH_tree.json`).
//!
//! ```text
//! cargo run -p psvd-bench --release --bin tree_scaling [-- --quick] [--out PATH]
//! ```
//!
//! Every rank's kernels and messages run for real over the in-process
//! fabric; time is accounted on the per-rank simulated clocks (Theta
//! Aries-like alpha–beta model, analytic flop charges at a nominal
//! dense-kernel rate — the same substitution as `fig1c_weak_scaling`, see
//! DESIGN.md). Four series per world size:
//!
//! * `flat` — the paper's configuration: flat gather of every rank's
//!   `r1`-column factor at rank 0, one factorization there, flat
//!   broadcast back. Mirrors the parallel driver's flat path operation
//!   for operation, so its σ/modes are the bitwise reference.
//! * `fanout4` / `fanout16` — merge trees of uniform fanout via
//!   [`psvd_core::try_merge_tree_svd_timed`], node exchanges and the
//!   factor broadcast routed through the tree collectives.
//! * `depth2` — a two-level tree with fanout ≈ √P.
//!
//! Gated contracts (timings are informational, the gates are not):
//! flat-resolved plans reproduce the parallel driver bitwise at every
//! validated world; every tree run's σ deviation from flat stays within
//! its tracked per-level truncation bound; and at the largest world at
//! least one tree configuration beats the flat gather by >= 2x simulated
//! time.

use std::fmt::Write as _;

use psvd_bench::{fmt_secs, Table};
use psvd_comm::{Communicator, NetworkModel, World};
use psvd_core::{
    parallel_svd_once, try_merge_tree_svd, try_merge_tree_svd_timed, MergeTreePlan, Precision,
    SvdConfig,
};
use psvd_linalg::gemm::matmul_into;
use psvd_linalg::snapshots::generate_right_vectors;
use psvd_linalg::svd::svd_with;
use psvd_linalg::Matrix;

/// Rows per rank (the weak-scaling axis holds this fixed).
const ROWS: usize = 16;
/// Snapshots.
const SNAPS: usize = 24;
/// APMOS local truncation: columns each rank forwards.
const R1: usize = 4;
/// Modes (= r2: the root truncation).
const K: usize = 4;
/// Nominal dense-kernel rate for the flop->seconds conversion. Fixed, not
/// calibrated: the artifact must be reproducible across CI hosts, and the
/// gates compare simulated times that all use the same rate.
const RATE: f64 = 25e9;

fn base_cfg() -> SvdConfig {
    SvdConfig::new(K)
        .with_r1(R1)
        .with_r2(K)
        .with_forget_factor(1.0)
        .with_precision(Precision::F64)
        .with_tree_fanout(0)
        .with_tree_depth(0)
}

/// This rank's row block: a global field with ~6 modes of geometrically
/// decaying weight, so the interior `r1 = 4` truncation discards real
/// (tracked) energy.
fn local_block(rank: usize) -> Matrix {
    Matrix::from_fn(ROWS, SNAPS, |i, j| {
        let g = (rank * ROWS + i) as f64;
        (0..6)
            .map(|p| {
                0.6f64.powi(p)
                    * ((g * (p as f64 + 1.0) * 0.37 + j as f64 * (p as f64 * 1.3 + 0.41)).sin())
            })
            .sum()
    })
}

/// The paper's flat APMOS with flop charging — operation for operation
/// the parallel driver's flat path (bitwise-validated against it below),
/// plus `comm.advance` charges for the leaf, root and assembly phases.
fn flat_apmos_timed<C: Communicator>(
    comm: &C,
    cfg: SvdConfig,
    a: &Matrix,
    rate: f64,
) -> (Matrix, Vec<f64>) {
    let (m, n) = (a.rows() as f64, a.cols() as f64);
    let r1 = cfg.r1.min(a.cols());
    let (mut w, s) = generate_right_vectors(a, r1);
    for i in 0..w.rows() {
        for (v, &sv) in w.row_mut(i).iter_mut().zip(&s) {
            *v *= sv;
        }
    }
    comm.advance((2.0 * m * n * n + 25.0 * n * n * n) / rate);

    let parts = comm.gather(w, 0);
    let factors = parts.map(|ps| {
        let w = Matrix::hstack_all(&ps);
        let p = w.rows().min(w.cols());
        let r2 = cfg.r2.min(p);
        let (mn, mx) = (p as f64, w.rows().max(w.cols()) as f64);
        comm.advance((2.0 * mx * mn * mn + 26.0 * mn * mn * mn) / rate);
        let f = svd_with(&w, cfg.method);
        (f.u.first_columns(r2), f.s[..r2.min(f.s.len())].to_vec())
    });
    let (x, sv) = comm.bcast(factors, 0);

    let k = cfg.k.min(sv.iter().filter(|&&v| v > 0.0).count());
    let inv: Vec<f64> = sv[..k].iter().map(|v| 1.0 / v).collect();
    let mut phi = Matrix::zeros(0, 0);
    matmul_into(a.view(), x.block(0, x.rows(), 0, k), &mut phi);
    for i in 0..phi.rows() {
        for (v, &iv) in phi.row_mut(i).iter_mut().zip(&inv) {
            *v *= iv;
        }
    }
    comm.advance((2.0 * m * n * k as f64) / rate);
    (phi, sv[..k].to_vec())
}

struct RunOut {
    label: &'static str,
    fanouts: Vec<usize>,
    sim_seconds: f64,
    messages: u64,
    bytes: u64,
    root_recv_bytes: u64,
    sigma: Vec<f64>,
    modes: Vec<Matrix>,
    bound: f64,
}

fn run_flat(world_size: usize) -> RunOut {
    let world = World::with_model(world_size, NetworkModel::theta_aries());
    let (out, clocks) = world.run_with_clocks(|comm| {
        let a = local_block(comm.rank());
        flat_apmos_timed(comm, base_cfg(), &a, RATE)
    });
    let stats = world.stats();
    RunOut {
        label: "flat",
        fanouts: vec![world_size],
        sim_seconds: clocks.iter().cloned().fold(0.0, f64::max),
        messages: stats.total_messages(),
        bytes: stats.total_bytes(),
        root_recv_bytes: stats.recv_bytes(0),
        sigma: out[0].1.clone(),
        modes: out.into_iter().map(|(p, _)| p).collect(),
        bound: 0.0,
    }
}

fn run_tree(world_size: usize, label: &'static str, plan: &MergeTreePlan) -> RunOut {
    let world = World::with_model(world_size, NetworkModel::theta_aries());
    let (out, clocks) = world.run_with_clocks(|comm| {
        let a = local_block(comm.rank());
        let cfg = base_cfg().with_tree_collectives(true);
        try_merge_tree_svd_timed(comm, cfg, &a, plan, RATE).expect("tree run failed")
    });
    let stats = world.stats();
    let info = &out[0].2;
    RunOut {
        label,
        fanouts: info.fanouts.clone(),
        sim_seconds: clocks.iter().cloned().fold(0.0, f64::max),
        messages: stats.total_messages(),
        bytes: stats.total_bytes(),
        root_recv_bytes: stats.recv_bytes(0),
        sigma: out[0].1.clone(),
        bound: info.interior_bound(),
        modes: out.into_iter().map(|(p, _, _)| p).collect(),
    }
}

fn max_sigma_dev(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Bitwise pins at a small world: the hand-rolled flat mirror, the engine
/// under a flat (depth-1) plan, and the real parallel driver must agree
/// bit for bit on σ and every rank's mode block.
fn validate_bitwise(world_size: usize, flat: &RunOut) {
    let world = World::new(world_size);
    let driver = world.run(|comm| {
        let a = local_block(comm.rank());
        parallel_svd_once(comm, base_cfg(), &a)
    });
    assert_eq!(driver[0].1, flat.sigma, "{world_size} ranks: hand-rolled flat σ != driver σ");
    for (r, (phi, _)) in driver.iter().enumerate() {
        assert_eq!(phi, &flat.modes[r], "{world_size} ranks: flat modes diverge at rank {r}");
    }

    let plan = MergeTreePlan::flat(world_size);
    let world = World::new(world_size);
    let engine = world.run(|comm| {
        let a = local_block(comm.rank());
        try_merge_tree_svd(comm, base_cfg(), &a, &plan).expect("flat engine run")
    });
    assert_eq!(engine[0].1, flat.sigma, "{world_size} ranks: depth-1 engine σ != flat σ");
    for (r, (phi, _, _)) in engine.iter().enumerate() {
        assert_eq!(phi, &flat.modes[r], "{world_size} ranks: depth-1 engine modes at rank {r}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_tree.json".to_string());

    let worlds: &[usize] = if quick { &[16, 64, 256] } else { &[16, 64, 256, 1024, 4096] };
    let largest = *worlds.last().unwrap();

    println!(
        "== merge-tree weak scaling: {ROWS} rows/rank, {SNAPS} snapshots, r1 = {R1}, K = {K} =="
    );
    println!(
        "network model: Theta Aries (1.2 us, 8 GB/s); nominal compute rate {:.0} GF/s\n",
        RATE / 1e9
    );

    let mut rows: Vec<(usize, RunOut, f64, f64)> = Vec::new(); // (world, run, dev, speedup)
    let mut best_speedup_at_largest = 0.0f64;
    for &w in worlds {
        let flat = run_flat(w);
        if w <= 64 {
            validate_bitwise(w, &flat);
        }
        let plans = [
            ("fanout4", MergeTreePlan::uniform(4, w).expect("fanout 4")),
            ("fanout16", MergeTreePlan::uniform(16, w).expect("fanout 16")),
            ("depth2", MergeTreePlan::with_depth(2, w).expect("depth 2")),
        ];
        let flat_time = flat.sim_seconds;
        let flat_sigma = flat.sigma.clone();
        rows.push((w, flat, 0.0, 1.0));
        for (label, plan) in plans {
            let run = run_tree(w, label, &plan);
            let dev = max_sigma_dev(&run.sigma, &flat_sigma);
            assert!(
                dev <= run.bound + 1e-8,
                "{w} ranks {label}: σ deviation {dev} exceeds tracked bound {}",
                run.bound
            );
            let speedup = flat_time / run.sim_seconds;
            if w == largest {
                best_speedup_at_largest = best_speedup_at_largest.max(speedup);
            }
            rows.push((w, run, dev, speedup));
        }
    }

    let table = Table::new(&[
        "ranks",
        "series",
        "tree",
        "sim time",
        "speedup",
        "messages",
        "rank-0 recv",
        "sigma dev",
        "bound",
    ]);
    for (w, run, dev, speedup) in &rows {
        table.row(&[
            w.to_string(),
            run.label.to_string(),
            format!("{:?}", run.fanouts),
            fmt_secs(run.sim_seconds),
            format!("{speedup:.2}x"),
            run.messages.to_string(),
            format!("{:.1} kB", run.root_recv_bytes as f64 / 1024.0),
            format!("{dev:.2e}"),
            format!("{:.2e}", run.bound),
        ]);
    }
    println!(
        "\ngates: depth-1 bitwise-identical to the driver at every validated world, σ deviation \
         within the tracked bound everywhere, best tree speedup at {largest} ranks = \
         {best_speedup_at_largest:.2}x >= 2x"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"tree_scaling\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"rows_per_rank\": {ROWS},");
    let _ = writeln!(json, "  \"snapshots\": {SNAPS},");
    let _ = writeln!(json, "  \"r1\": {R1},");
    let _ = writeln!(json, "  \"k\": {K},");
    let _ = writeln!(json, "  \"compute_rate_gflops\": {:.0},", RATE / 1e9);
    let _ = writeln!(json, "  \"network\": \"theta-aries\",");
    let _ = writeln!(json, "  \"depth1_bitwise_identical\": true,");
    let _ = writeln!(json, "  \"largest_world\": {largest},");
    let _ = writeln!(json, "  \"best_speedup_at_largest\": {best_speedup_at_largest:.3},");
    json.push_str("  \"results\": [\n");
    for (i, (w, run, dev, speedup)) in rows.iter().enumerate() {
        let fanouts = run.fanouts.iter().map(|f| f.to_string()).collect::<Vec<_>>().join(", ");
        let _ = write!(
            json,
            "    {{ \"world\": {w}, \"series\": \"{}\", \"fanouts\": [{fanouts}], \
             \"sim_seconds\": {:.9}, \"speedup_vs_flat\": {speedup:.3}, \"messages\": {}, \
             \"bytes\": {}, \"root_recv_bytes\": {}, \"sigma_dev_vs_flat\": {dev:.3e}, \
             \"tracked_bound\": {:.3e} }}",
            run.label, run.sim_seconds, run.messages, run.bytes, run.root_recv_bytes, run.bound,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_tree.json");
    println!("wrote {out_path}");

    assert!(
        best_speedup_at_largest >= 2.0,
        "no tree configuration beat the flat gather by 2x at {largest} ranks \
         (best: {best_speedup_at_largest:.2}x)"
    );
}
