//! # psvd-bench
//!
//! Benchmark harness for the PyParSVD reproduction. Each `fig*` binary
//! regenerates one figure of the paper's evaluation (Section 4.3) and each
//! `ablation_*` binary sweeps one design knob called out in `DESIGN.md`;
//! `benches/` holds Criterion kernel benchmarks.
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1ab` | Fig. 1(a,b): serial vs parallel+randomized Burgers modes |
//! | `fig1c_weak_scaling` | Fig. 1(c): weak scaling to 256 ranks |
//! | `fig2_era5_modes` | Fig. 2: ERA5-style coherent structures |
//! | `ablation_forget_factor` | forget-factor sweep |
//! | `ablation_truncation` | r1/r2 accuracy-vs-traffic sweep |
//! | `ablation_randomized` | oversampling / power-iteration sweep |
//! | `ablation_batch_size` | streaming batch-size sweep |

use std::time::Instant;

/// Fixed-width table printer for harness output.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table by printing the header and remembering column widths.
    pub fn new(headers: &[&str]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(12)).collect();
        let cells: Vec<String> =
            headers.iter().zip(&widths).map(|(h, w)| format!("{h:>w$}")).collect();
        println!("{}", cells.join("  "));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        Self { widths }
    }

    /// Print one row (cells formatted by the caller).
    pub fn row(&self, cells: &[String]) {
        assert_eq!(cells.len(), self.widths.len(), "cell count mismatch");
        let padded: Vec<String> =
            cells.iter().zip(&self.widths).map(|(c, w)| format!("{c:>w$}")).collect();
        println!("{}", padded.join("  "));
    }
}

/// Wall-clock a closure, returning `(result, seconds)`.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Calibrate this host's dense-kernel throughput (flops/second) with a
/// short GEMM, used to convert analytic flop counts into simulated compute
/// seconds for the weak-scaling model.
pub fn calibrate_flops_per_sec() -> f64 {
    use psvd_linalg::gemm::matmul;
    use psvd_linalg::Matrix;
    let n = 192;
    let a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j) as f64 * 0.01).sin());
    let b = Matrix::from_fn(n, n, |i, j| ((i + 5 * j) as f64 * 0.02).cos());
    // Warm up, then measure.
    let _ = matmul(&a, &b);
    let (_, secs) = time_it(|| matmul(&a, &b));
    let flops = 2.0 * (n as f64).powi(3);
    flops / secs.max(1e-9)
}

/// Format seconds for table output (µs/ms/s autoscaling).
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.2} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_positive() {
        let rate = calibrate_flops_per_sec();
        assert!(rate > 1e6, "implausible flop rate {rate}");
    }

    #[test]
    fn fmt_secs_scales() {
        assert!(fmt_secs(2e-6).ends_with("us"));
        assert!(fmt_secs(2e-3).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
    }

    #[test]
    fn time_it_returns_result() {
        let (x, secs) = time_it(|| 41 + 1);
        assert_eq!(x, 42);
        assert!(secs >= 0.0);
    }
}
