//! Minimal flag parser for the `psvd` CLI (no external dependencies).
//!
//! Grammar: `psvd <command> [positional...] [--flag [value]]...`. Flags
//! either take one value (`--k 10`) or are boolean switches (`--low-rank`);
//! the parser records raw strings and typed accessors convert on demand.

use std::collections::BTreeMap;

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag token).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    flags: BTreeMap<String, Option<String>>,
}

/// Flags that never take a value.
const SWITCHES: &[&str] = &["low-rank", "help", "tree", "quiet"];

impl ParsedArgs {
    /// Parse `argv` (excluding the program name).
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut command = String::new();
        let mut positional = Vec::new();
        let mut flags = BTreeMap::new();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err("empty flag name '--'".into());
                }
                if SWITCHES.contains(&name) {
                    flags.insert(name.to_string(), None);
                } else {
                    let value = argv
                        .get(i + 1)
                        .filter(|v| !v.starts_with("--"))
                        .cloned()
                        .ok_or_else(|| format!("flag --{name} requires a value"))?;
                    flags.insert(name.to_string(), Some(value));
                    i += 1;
                }
            } else if command.is_empty() {
                command = tok.clone();
            } else {
                positional.push(tok.clone());
            }
            i += 1;
        }
        if command.is_empty() {
            return Err("no command given (try `psvd help`)".into());
        }
        Ok(Self { command, positional, flags })
    }

    /// Is the boolean switch present?
    pub fn switch(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A string flag value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).and_then(|v| v.as_deref())
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// A `usize` flag with a default.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: expected an integer, got '{v}'")),
        }
    }

    /// An `f64` flag with a default.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: expected a number, got '{v}'")),
        }
    }

    /// The sole positional argument, if the command requires exactly one.
    pub fn one_positional(&self, what: &str) -> Result<&str, String> {
        match self.positional.as_slice() {
            [p] => Ok(p),
            [] => Err(format!("missing {what}")),
            _ => Err(format!("expected exactly one {what}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<ParsedArgs, String> {
        let v: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&v)
    }

    #[test]
    fn command_and_positional() {
        let a = parse(&["svd", "data.ncs"]).unwrap();
        assert_eq!(a.command, "svd");
        assert_eq!(a.one_positional("input").unwrap(), "data.ncs");
    }

    #[test]
    fn value_flags_and_switches() {
        let a = parse(&["svd", "f.ncs", "--k", "10", "--low-rank", "--ff", "0.9"]).unwrap();
        assert_eq!(a.usize_or("k", 5).unwrap(), 10);
        assert!(a.switch("low-rank"));
        assert!((a.f64_or("ff", 1.0).unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(a.usize_or("ranks", 1).unwrap(), 1); // default
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse(&["svd", "--k"]).is_err());
        assert!(parse(&["svd", "--k", "--low-rank"]).is_err());
    }

    #[test]
    fn bad_number_is_error() {
        let a = parse(&["svd", "--k", "ten"]).unwrap();
        assert!(a.usize_or("k", 1).is_err());
    }

    #[test]
    fn no_command_is_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--k", "3"]).is_err());
    }

    #[test]
    fn require_reports_flag_name() {
        let a = parse(&["generate"]).unwrap();
        let err = a.require("out").unwrap_err();
        assert!(err.contains("--out"));
    }

    #[test]
    fn positional_arity_checked() {
        let a = parse(&["svd", "a.ncs", "b.ncs"]).unwrap();
        assert!(a.one_positional("input").is_err());
        let b = parse(&["svd"]).unwrap();
        assert!(b.one_positional("input").is_err());
    }
}
