//! # psvd-cli
//!
//! The `psvd` command-line tool: generate datasets, inspect `ncsim`
//! containers, and run the streaming / distributed / randomized SVD from a
//! shell. All subcommand logic lives in this library (`run`) so the test
//! suite can drive it without spawning processes.
//!
//! ```text
//! psvd generate burgers --grid 2048 --snapshots 200 --out burgers.ncs
//! psvd generate era5 --nlat 48 --nlon 72 --snapshots 512 --out era5.ncs
//! psvd info burgers.ncs
//! psvd svd burgers.ncs --k 10 --ranks 4 --batch 50 --values-out sv.csv
//! psvd validate burgers.ncs --k 6 --ranks 4
//! ```

pub mod args;

use std::path::Path;

use args::ParsedArgs;
use psvd_comm::{Communicator, World};
use psvd_core::postprocess::{write_modes_csv, write_singular_values_csv};
use psvd_core::{ParallelStreamingSvd, Precision, SerialStreamingSvd, SvdConfig};
use psvd_data::burgers::{snapshot_matrix, BurgersConfig};
use psvd_data::era5::{generate as generate_era5, Era5Config};
use psvd_data::ncsim::{self, NcsimReader};
use psvd_linalg::validate::{max_principal_angle, spectrum_error};
use psvd_linalg::Matrix;

/// Usage text.
pub const USAGE: &str = "\
psvd — streaming, distributed and randomized SVD

USAGE:
  psvd generate burgers --out FILE [--grid N] [--snapshots N] [--re X]
  psvd generate era5    --out FILE [--nlat N] [--nlon N] [--snapshots N] [--noise X]
  psvd generate wake    --out FILE [--nx N] [--ny N] [--snapshots N] [--fs HZ]
  psvd info FILE
  psvd svd FILE  [--k K] [--ranks R] [--batch B] [--ff F] [--r1 N] [--r2 N]
                 [--low-rank] [--values-out CSV] [--modes-out CSV] [--quiet]
  psvd validate FILE [--k K] [--ranks R] [--batch B]
  psvd pod  FILE [--k K] [--modes-out CSV]
  psvd dmd  FILE [--k K] [--dt X]
  psvd spod FILE [--nfft N] [--dt X] [--k K]
  psvd help

Every command also accepts --threads N to pin the linear-algebra kernel
thread count (equivalent to the PSVD_NUM_THREADS environment variable;
default: one share of the machine per communicator rank). Results are
bitwise identical for every thread count.
";

/// Run the CLI with `argv` (program name excluded). Returns the lines to
/// print and the exit code via `Ok(output)` or `Err(message)`.
pub fn run(argv: &[String]) -> Result<Vec<String>, String> {
    let parsed = ParsedArgs::parse(argv)?;
    if parsed.switch("help") || parsed.command == "help" {
        return Ok(vec![USAGE.to_string()]);
    }
    if let Some(n) = parsed.get("threads") {
        let n: usize = n
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("--threads: expected a positive integer, got '{n}'"))?;
        psvd_linalg::par::set_num_threads(n);
    }
    match parsed.command.as_str() {
        "generate" => cmd_generate(&parsed),
        "info" => cmd_info(&parsed),
        "svd" => cmd_svd(&parsed),
        "validate" => cmd_validate(&parsed),
        "pod" => cmd_pod(&parsed),
        "dmd" => cmd_dmd(&parsed),
        "spod" => cmd_spod(&parsed),
        other => Err(format!("unknown command '{other}' (try `psvd help`)")),
    }
}

fn read_input(a: &ParsedArgs) -> Result<Matrix, String> {
    let file = a.one_positional("input file")?;
    let mut reader = NcsimReader::open(Path::new(file)).map_err(|e| e.to_string())?;
    reader.read_all().map_err(|e| e.to_string())
}

fn cmd_pod(a: &ParsedArgs) -> Result<Vec<String>, String> {
    let data = read_input(a)?;
    let k = a.usize_or("k", 6)?;
    let p = psvd_core::pod::pod(&data, k);
    let total: f64 = {
        let fluct = psvd_core::pod::subtract_mean(&data, &p.mean);
        fluct.frobenius_norm().powi(2)
    };
    let mut out = vec![format!("POD, K = {k}, {} snapshots:", p.snapshots)];
    let cum = p.cumulative_energy_fraction(total);
    for (i, (s, c)) in p.singular_values.iter().zip(&cum).enumerate() {
        out.push(format!("  mode {i}: sigma = {s:.6e}, cumulative energy {:5.1}%", c * 100.0));
    }
    if let Some(path) = a.get("modes-out") {
        write_modes_csv(Path::new(path), &p.modes).map_err(|e| e.to_string())?;
        out.push(format!("wrote {path}"));
    }
    Ok(out)
}

fn cmd_dmd(a: &ParsedArgs) -> Result<Vec<String>, String> {
    let data = read_input(a)?;
    let k = a.usize_or("k", 6)?;
    let dt = a.f64_or("dt", 1.0)?;
    let d = psvd_core::dmd::dmd(&data, k, dt);
    let mut out = vec![format!("DMD, rank {} (requested {k}), dt = {dt}:", d.rank)];
    out.push(format!("{:>14} {:>12} {:>14}", "freq (cyc/t)", "growth", "|amplitude|"));
    for ((w, b), _) in d.continuous_eigenvalues().iter().zip(&d.amplitudes).zip(&d.eigenvalues) {
        out.push(format!(
            "{:>14.5} {:>12.5} {:>14.4}",
            w.im / (2.0 * std::f64::consts::PI),
            w.re,
            b.abs()
        ));
    }
    out.push(format!("reconstruction error: {:.3e}", d.reconstruction_error(&data)));
    Ok(out)
}

fn cmd_spod(a: &ParsedArgs) -> Result<Vec<String>, String> {
    let raw = read_input(a)?;
    // Standard SPOD practice: analyze fluctuations about the temporal mean
    // (otherwise a steady base flow puts all the energy in the f = 0 bin).
    let mean = psvd_core::pod::temporal_mean(&raw);
    let data = psvd_core::pod::subtract_mean(&raw, &mean);
    let nfft = a.usize_or("nfft", 64)?;
    let dt = a.f64_or("dt", 1.0)?;
    let k = a.usize_or("k", 3)?;
    let cfg = psvd_core::spod::SpodConfig::new(nfft, dt).with_n_modes(k);
    if cfg.segment_count(data.cols()) == 0 {
        return Err(format!("record too short: {} snapshots < segment length {nfft}", data.cols()));
    }
    let s = psvd_core::spod::spod(&data, &cfg);
    let mut out = vec![format!(
        "SPOD (mean-subtracted): {} segments of {nfft} snapshots, {} frequency bins:",
        s.n_segments,
        s.frequencies.len()
    )];
    out.push(format!("{:>12} {:>14} {:>14}", "freq", "energy (sum)", "lead mode share"));
    for f in &s.frequencies {
        let total: f64 = f.energies.iter().sum();
        let share = if total > 0.0 { f.energies[0] / total } else { 0.0 };
        out.push(format!("{:>12.5} {:>14.5e} {:>14.2}", f.frequency, total, share));
    }
    out.push(format!("peak frequency: {:.5}", s.peak_frequency()));
    Ok(out)
}

fn cmd_generate(a: &ParsedArgs) -> Result<Vec<String>, String> {
    let kind = a.one_positional("dataset kind (burgers|era5)")?;
    let out = a.require("out")?;
    let path = Path::new(out);
    match kind {
        "burgers" => {
            let cfg = BurgersConfig {
                grid_points: a.usize_or("grid", 2048)?,
                snapshots: a.usize_or("snapshots", 200)?,
                reynolds: a.f64_or("re", 1000.0)?,
                ..BurgersConfig::default()
            };
            let data = snapshot_matrix(&cfg);
            ncsim::write(path, "burgers_u", &data).map_err(|e| e.to_string())?;
            Ok(vec![format!(
                "wrote {} ({} x {} snapshots, Re = {})",
                out, cfg.grid_points, cfg.snapshots, cfg.reynolds
            )])
        }
        "era5" => {
            let cfg = Era5Config {
                nlat: a.usize_or("nlat", 48)?,
                nlon: a.usize_or("nlon", 72)?,
                snapshots: a.usize_or("snapshots", 512)?,
                noise_level: a.f64_or("noise", 0.1)?,
                ..Era5Config::default()
            };
            let d = generate_era5(&cfg);
            ncsim::write(path, "surface_pressure", &d.snapshots).map_err(|e| e.to_string())?;
            Ok(vec![format!(
                "wrote {} ({} x {} grid, {} snapshots, {} planted modes)",
                out, cfg.nlat, cfg.nlon, cfg.snapshots, cfg.n_modes
            )])
        }
        "wake" => {
            let cfg = psvd_data::wake::WakeConfig {
                nx: a.usize_or("nx", 96)?,
                ny: a.usize_or("ny", 48)?,
                snapshots: a.usize_or("snapshots", 256)?,
                shedding_frequency: a.f64_or("fs", 1.1)?,
                ..psvd_data::wake::WakeConfig::default()
            };
            let d = psvd_data::wake::generate(&cfg);
            ncsim::write(path, "vorticity", &d).map_err(|e| e.to_string())?;
            Ok(vec![format!(
                "wrote {} ({} x {} grid, {} snapshots, shedding at {} Hz)",
                out, cfg.nx, cfg.ny, cfg.snapshots, cfg.shedding_frequency
            )])
        }
        other => Err(format!("unknown dataset kind '{other}' (burgers|era5|wake)")),
    }
}

fn cmd_info(a: &ParsedArgs) -> Result<Vec<String>, String> {
    let file = a.one_positional("input file")?;
    let reader = NcsimReader::open(Path::new(file)).map_err(|e| e.to_string())?;
    let h = reader.header();
    let mut lines = vec![
        format!("file      : {file}"),
        format!("variable  : {}", h.name),
        format!("rows (M)  : {}", h.rows),
        format!("cols (N)  : {}", h.cols),
        format!("version   : v{}", h.version),
        format!("dtype     : {}", h.dtype.name()),
        format!("data size : {:.1} MB", (h.rows * h.cols * h.dtype.size()) as f64 / 1e6),
    ];
    if h.version >= 2 {
        lines.push(format!("chunk rows: {}", h.chunk_rows));
    }
    Ok(lines)
}

struct SvdRun {
    singular_values: Vec<f64>,
    modes: Matrix,
}

fn run_svd(file: &str, cfg: SvdConfig, ranks: usize, batch: usize) -> Result<SvdRun, String> {
    if ranks <= 1 {
        let mut reader = NcsimReader::open(Path::new(file)).map_err(|e| e.to_string())?;
        let data = reader.read_all().map_err(|e| e.to_string())?;
        let mut s = SerialStreamingSvd::new(cfg);
        s.fit_batched(&data, batch.min(data.cols()).max(1));
        Ok(SvdRun { singular_values: s.singular_values().to_vec(), modes: s.modes().clone() })
    } else {
        let world = World::new(ranks);
        let out = world.run(|comm| -> Result<_, String> {
            let mut reader = NcsimReader::open(Path::new(file)).map_err(|e| e.to_string())?;
            let local =
                reader.read_rank_block(comm.size(), comm.rank()).map_err(|e| e.to_string())?;
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.fit_batched(&local, batch.min(local.cols()).max(1));
            Ok((d.gather_modes(0), d.singular_values().to_vec()))
        });
        let mut results = Vec::new();
        for r in out {
            results.push(r?);
        }
        let modes = results[0].0.clone().expect("rank 0 gathers");
        Ok(SvdRun { singular_values: results[0].1.clone(), modes })
    }
}

fn cmd_svd(a: &ParsedArgs) -> Result<Vec<String>, String> {
    let file = a.one_positional("input file")?;
    let k = a.usize_or("k", 10)?;
    let ranks = a.usize_or("ranks", 1)?;
    let batch = a.usize_or("batch", 64)?;
    let cfg = SvdConfig::new(k)
        .with_forget_factor(a.f64_or("ff", 0.95)?)
        .with_r1(a.usize_or("r1", 50)?)
        .with_r2(a.usize_or("r2", k)?.max(k))
        .with_low_rank(a.switch("low-rank"));
    let run = run_svd(file, cfg, ranks, batch)?;

    let mut out = Vec::new();
    if !a.switch("quiet") {
        out.push(format!(
            "svd of {file}: K = {k}, {ranks} rank(s), batch = {batch}, ff = {}, {}",
            cfg.forget_factor,
            if cfg.low_rank { "randomized" } else { "deterministic" }
        ));
        for (i, s) in run.singular_values.iter().enumerate() {
            out.push(format!("  sigma_{i} = {s:.6e}"));
        }
    }
    if let Some(path) = a.get("values-out") {
        write_singular_values_csv(Path::new(path), &run.singular_values)
            .map_err(|e| e.to_string())?;
        out.push(format!("wrote {path}"));
    }
    if let Some(path) = a.get("modes-out") {
        write_modes_csv(Path::new(path), &run.modes).map_err(|e| e.to_string())?;
        out.push(format!("wrote {path}"));
    }
    Ok(out)
}

fn cmd_validate(a: &ParsedArgs) -> Result<Vec<String>, String> {
    let file = a.one_positional("input file")?;
    let k = a.usize_or("k", 6)?;
    let ranks = a.usize_or("ranks", 4)?;
    let batch = a.usize_or("batch", 64)?;
    let cfg = SvdConfig::new(k).with_forget_factor(1.0).with_r1(10_000).with_r2(10_000);

    let serial = run_svd(file, cfg, 1, batch)?;
    let parallel = run_svd(file, cfg, ranks, batch)?;
    let spec_err = spectrum_error(&serial.singular_values, &parallel.singular_values);
    let angle = max_principal_angle(&serial.modes, &parallel.modes);
    // Mixed precision demotes wire payloads to f32, so the parallel run
    // legitimately departs from the (wire-free) serial one at single
    // precision; hold it to f32-level agreement instead of f64-level.
    let (spec_tol, angle_tol) =
        if cfg.precision == Precision::Mixed { (1e-5, 1e-2) } else { (1e-6, 1e-4) };
    let ok = spec_err < spec_tol && angle < angle_tol;
    let mut out = vec![
        format!("serial vs {ranks}-rank parallel on {file} (K = {k}):"),
        format!("  spectrum error : {spec_err:.3e}"),
        format!("  subspace angle : {angle:.3e} rad"),
        format!("  verdict        : {}", if ok { "PASS" } else { "FAIL" }),
    ];
    if !ok {
        out.push(format!("  (expected spectrum error < {spec_tol:e} and angle < {angle_tol:e})"));
        return Err(out.join("\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("psvd_cli_{name}_{}", std::process::id()))
            .display()
            .to_string()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv(&["help"])).unwrap();
        assert!(out[0].contains("USAGE"));
    }

    #[test]
    fn unknown_command_fails() {
        assert!(run(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn generate_info_svd_validate_roundtrip() {
        let file = tmp("pipeline.ncs");
        // Generate a small Burgers dataset.
        let out = run(&argv(&[
            "generate",
            "burgers",
            "--out",
            &file,
            "--grid",
            "256",
            "--snapshots",
            "48",
        ]))
        .unwrap();
        assert!(out[0].contains("wrote"));

        // Inspect it.
        let info = run(&argv(&["info", &file])).unwrap();
        assert!(info.iter().any(|l| l.contains("256")));
        assert!(info.iter().any(|l| l.contains("48")));
        assert!(info.iter().any(|l| l.contains("v1")));
        assert!(info.iter().any(|l| l.contains("f64")));

        // A chunked v2 file reports its version, dtype and chunking too,
        // with the byte size scaled by the element width.
        let v2 = tmp("pipeline_v2.ncs");
        let small: Matrix<f32> = Matrix::from_fn(64, 8, |i, j| (i + j) as f32);
        ncsim::write_v2(
            Path::new(&v2),
            "u",
            &small,
            ncsim::V2Options { chunk_rows: 16, ..Default::default() },
        )
        .unwrap();
        let info = run(&argv(&["info", &v2])).unwrap();
        assert!(info.iter().any(|l| l.contains("v2")));
        assert!(info.iter().any(|l| l.contains("f32")));
        assert!(info.iter().any(|l| l.contains("chunk rows: 16")));
        assert!(info.iter().any(|l| l.contains("0.0 MB"))); // 64*8*4 bytes
        std::fs::remove_file(&v2).ok();

        // Serial SVD with CSV output.
        let sv_csv = tmp("sv.csv");
        let out = run(&argv(&["svd", &file, "--k", "4", "--ff", "1.0", "--values-out", &sv_csv]))
            .unwrap();
        assert!(out.iter().any(|l| l.contains("sigma_0")));
        let text = std::fs::read_to_string(&sv_csv).unwrap();
        assert_eq!(text.lines().count(), 5);

        // Parallel SVD matches serial (validate passes).
        let out = run(&argv(&["validate", &file, "--k", "4", "--ranks", "3"])).unwrap();
        assert!(out.iter().any(|l| l.contains("PASS")));

        std::fs::remove_file(&file).ok();
        std::fs::remove_file(&sv_csv).ok();
    }

    #[test]
    fn generate_era5_and_parallel_svd() {
        let file = tmp("era5.ncs");
        run(&argv(&[
            "generate",
            "era5",
            "--out",
            &file,
            "--nlat",
            "12",
            "--nlon",
            "18",
            "--snapshots",
            "64",
        ]))
        .unwrap();
        let modes_csv = tmp("modes.csv");
        let out = run(&argv(&[
            "svd",
            &file,
            "--k",
            "3",
            "--ranks",
            "2",
            "--batch",
            "16",
            "--ff",
            "1.0",
            "--modes-out",
            &modes_csv,
            "--quiet",
        ]))
        .unwrap();
        assert!(out.iter().any(|l| l.contains("modes")));
        let text = std::fs::read_to_string(&modes_csv).unwrap();
        assert!(text.starts_with("point,mode_0,mode_1,mode_2"));
        std::fs::remove_file(&file).ok();
        std::fs::remove_file(&modes_csv).ok();
    }

    #[test]
    fn wake_dmd_pipeline() {
        let file = tmp("wake.ncs");
        run(&argv(&[
            "generate",
            "wake",
            "--out",
            &file,
            "--nx",
            "32",
            "--ny",
            "16",
            "--snapshots",
            "128",
            "--fs",
            "1.1",
        ]))
        .unwrap();
        let out = run(&argv(&["dmd", &file, "--k", "5", "--dt", "0.05"])).unwrap();
        // The shedding frequency must appear in the eigenvalue table.
        assert!(
            out.iter().any(|l| l.contains("1.10000") || l.contains("-1.10000")),
            "shedding frequency missing from: {out:?}"
        );
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn pod_and_spod_commands() {
        let file = tmp("analysis.ncs");
        run(&argv(&[
            "generate",
            "wake",
            "--out",
            &file,
            "--nx",
            "24",
            "--ny",
            "12",
            "--snapshots",
            "192",
        ]))
        .unwrap();
        let modes_csv = tmp("pod_modes.csv");
        let pod_out = run(&argv(&["pod", &file, "--k", "4", "--modes-out", &modes_csv])).unwrap();
        assert!(pod_out.iter().any(|l| l.contains("cumulative energy")));
        assert!(std::fs::read_to_string(&modes_csv).unwrap().starts_with("point,mode_0"));

        let spod_out = run(&argv(&["spod", &file, "--nfft", "64", "--dt", "0.05"])).unwrap();
        assert!(spod_out.iter().any(|l| l.contains("peak frequency")));
        // Peak should be near the 1.1 Hz shedding (bin width 1/(64*0.05) ~ 0.31).
        let peak_line = spod_out.iter().find(|l| l.contains("peak frequency")).unwrap();
        let peak: f64 = peak_line.split(':').nth(1).unwrap().trim().parse().unwrap();
        assert!((peak - 1.1).abs() < 0.32, "peak {peak}");

        std::fs::remove_file(&file).ok();
        std::fs::remove_file(&modes_csv).ok();
    }

    #[test]
    fn spod_rejects_short_records() {
        let file = tmp("short.ncs");
        run(&argv(&["generate", "burgers", "--out", &file, "--grid", "64", "--snapshots", "16"]))
            .unwrap();
        assert!(run(&argv(&["spod", &file, "--nfft", "64"])).is_err());
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn info_on_missing_file_fails() {
        assert!(run(&argv(&["info", "/nonexistent/file.ncs"])).is_err());
    }

    #[test]
    fn threads_flag_sets_kernel_pool() {
        let file = tmp("threads.ncs");
        run(&argv(&[
            "generate",
            "burgers",
            "--out",
            &file,
            "--grid",
            "64",
            "--snapshots",
            "8",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(psvd_linalg::par::num_threads(), 2);
        psvd_linalg::par::set_num_threads(0);
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn threads_flag_rejects_garbage() {
        assert!(run(&argv(&["info", "x.ncs", "--threads", "0"])).is_err());
        assert!(run(&argv(&["info", "x.ncs", "--threads", "many"])).is_err());
    }

    #[test]
    fn generate_requires_out() {
        assert!(run(&argv(&["generate", "burgers"])).is_err());
    }
}
