//! `psvd` binary entry point; all logic lives in the library so tests can
//! drive it in-process.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match psvd_cli::run(&argv) {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
