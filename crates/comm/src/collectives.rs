//! Tree-structured collectives.
//!
//! The paper's APMOS gathers every rank's `W` block *directly* at rank 0
//! (Listing 3) — a flat gather whose root-side cost grows linearly in the
//! world size and is the main deviation from ideal weak scaling at high
//! rank counts. These binomial-tree variants move the same payloads in
//! `O(log P)` rounds, spreading the per-message endpoint overhead across
//! internal nodes. They are drop-in alternatives built purely on the
//! [`Communicator`] point-to-point primitives, so traffic recording and the
//! simulated clocks apply unchanged.

use crate::communicator::Communicator;
use crate::error::CommError;
use crate::payload::Payload;

/// Fallible binomial-tree gather (see [`tree_gather`]).
pub fn try_tree_gather<C: Communicator, T: Payload>(
    comm: &C,
    value: T,
    root: usize,
) -> Result<Option<Vec<T>>, CommError> {
    // Claim the tag before reading the world shape: a collective round
    // boundary is where fault-injected rank deaths activate, and the tree
    // must be built over the post-transition world.
    let tag = comm.next_collective_tag();
    let size = comm.size();
    let rank = comm.rank();
    let relative = (rank + size - root) % size;

    // Accumulate (original_rank, value) pairs up the tree.
    let mut acc: Vec<(usize, T)> = vec![(rank, value)];
    let mut step = 1usize;
    while step < size {
        if relative.is_multiple_of(2 * step) {
            let src_rel = relative + step;
            if src_rel < size {
                let src = (src_rel + root) % size;
                let mut received: Vec<(usize, T)> = comm.try_recv(src, tag)?;
                acc.append(&mut received);
            }
        } else {
            let dst_rel = relative - step;
            let dst = (dst_rel + root) % size;
            comm.try_send(acc, dst, tag)?;
            return Ok(None);
        }
        step *= 2;
    }
    // Root: order by original rank.
    acc.sort_by_key(|(r, _)| *r);
    debug_assert_eq!(acc.len(), size, "tree gather must collect every rank");
    Ok(Some(acc.into_iter().map(|(_, v)| v).collect()))
}

/// Binomial-tree gather: like [`Communicator::gather`] (one value per rank,
/// rank order, `Some` at root only) but in `O(log P)` rounds.
pub fn tree_gather<C: Communicator, T: Payload>(comm: &C, value: T, root: usize) -> Option<Vec<T>> {
    try_tree_gather(comm, value, root).unwrap_or_else(|e| panic!("tree_gather failed: {e}"))
}

/// Fallible binomial-tree broadcast (see [`tree_bcast`]).
pub fn try_tree_bcast<C: Communicator, T: Payload + Clone>(
    comm: &C,
    value: Option<T>,
    root: usize,
) -> Result<T, CommError> {
    // Tag first — see `try_tree_gather` on death-round transitions.
    let tag = comm.next_collective_tag();
    if comm.renumbered(root) {
        // The value-holder died at this boundary (see the flat
        // `try_bcast`): fail the round consistently on every rank.
        return Err(CommError::RankDead { rank: root });
    }
    let size = comm.size();
    let rank = comm.rank();
    let relative = (rank + size - root) % size;

    // Receive from the parent (clear the lowest set bit of `relative`).
    let (v, recv_mask) = if relative == 0 {
        let mut m = 1usize;
        while m < size {
            m <<= 1;
        }
        (value.expect("tree_bcast: root must supply a value"), m)
    } else {
        let mut mask = 1usize;
        while relative & mask == 0 {
            mask <<= 1;
        }
        let parent_rel = relative - mask;
        let parent = (parent_rel + root) % size;
        (comm.try_recv::<T>(parent, tag)?, mask)
    };

    // Forward to children: relative + m for every m below the receive bit.
    let mut m = recv_mask >> 1;
    while m > 0 {
        let child_rel = relative + m;
        if child_rel < size {
            let child = (child_rel + root) % size;
            comm.record_payload_alloc(v.byte_len());
            comm.try_send(v.clone(), child, tag)?;
        }
        m >>= 1;
    }
    Ok(v)
}

/// Binomial-tree broadcast: like [`Communicator::bcast`] but in
/// `O(log P)` rounds.
pub fn tree_bcast<C: Communicator, T: Payload + Clone>(
    comm: &C,
    value: Option<T>,
    root: usize,
) -> T {
    try_tree_bcast(comm, value, root).unwrap_or_else(|e| panic!("tree_bcast failed: {e}"))
}

/// Fallible tree allreduce (see [`tree_allreduce_sum`]).
pub fn try_tree_allreduce_sum<C: Communicator>(
    comm: &C,
    value: Vec<f64>,
) -> Result<Vec<f64>, CommError> {
    let n = value.len();
    let gathered = try_tree_gather(comm, value, 0)?;
    let summed = gathered.map(|parts| {
        let mut acc = vec![0.0; n];
        for part in parts {
            assert_eq!(part.len(), n, "tree_allreduce_sum: length mismatch");
            for (a, x) in acc.iter_mut().zip(&part) {
                *a += x;
            }
        }
        acc
    });
    try_tree_bcast(comm, summed, 0)
}

/// Tree-based allreduce (sum): tree-gather at rank 0, sum, tree-bcast.
pub fn tree_allreduce_sum<C: Communicator>(comm: &C, value: Vec<f64>) -> Vec<f64> {
    try_tree_allreduce_sum(comm, value).unwrap_or_else(|e| panic!("tree_allreduce_sum failed: {e}"))
}

/// Fallible tree allgather (see [`tree_allgather`]).
pub fn try_tree_allgather<C: Communicator, T: Payload + Clone>(
    comm: &C,
    value: T,
) -> Result<Vec<T>, CommError> {
    let gathered = try_tree_gather(comm, value, 0)?;
    try_tree_bcast(comm, gathered, 0)
}

/// Tree-based allgather: tree-gather at rank 0, tree-bcast the assembled
/// vector. Same result as [`Communicator::allgather`], `O(log P)` rounds.
pub fn tree_allgather<C: Communicator, T: Payload + Clone>(comm: &C, value: T) -> Vec<T> {
    try_tree_allgather(comm, value).unwrap_or_else(|e| panic!("tree_allgather failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkModel;
    use crate::thread_comm::World;

    #[test]
    fn tree_gather_matches_flat_gather() {
        for size in [1usize, 2, 3, 4, 5, 7, 8, 9, 16] {
            let w = World::new(size);
            let out = w.run(|c| tree_gather(c, c.rank() as f64 * 2.0, 0));
            let expected: Vec<f64> = (0..size).map(|r| r as f64 * 2.0).collect();
            assert_eq!(out[0], Some(expected), "size {size}");
            assert!(out[1..].iter().all(Option::is_none));
        }
    }

    #[test]
    fn tree_gather_nonzero_root() {
        let w = World::new(6);
        let out = w.run(|c| tree_gather(c, c.rank(), 4));
        assert_eq!(out[4], Some(vec![0, 1, 2, 3, 4, 5]));
        for (r, o) in out.iter().enumerate() {
            assert_eq!(o.is_some(), r == 4);
        }
    }

    #[test]
    fn tree_bcast_matches_flat_bcast() {
        for size in [1usize, 2, 3, 5, 8, 13] {
            let w = World::new(size);
            let out = w.run(|c| {
                let v = if c.rank() == 0 { Some(vec![1.5, 2.5]) } else { None };
                tree_bcast(c, v, 0)
            });
            for v in out {
                assert_eq!(v, vec![1.5, 2.5], "size {size}");
            }
        }
    }

    #[test]
    fn tree_bcast_nonzero_root() {
        let w = World::new(7);
        let out = w.run(|c| {
            let v = if c.rank() == 3 { Some(c.rank() as f64) } else { None };
            tree_bcast(c, v, 3)
        });
        for v in out {
            assert_eq!(v, 3.0);
        }
    }

    #[test]
    fn tree_allreduce_sums() {
        let w = World::new(9);
        let out = w.run(|c| tree_allreduce_sum(c, vec![c.rank() as f64, 1.0]));
        for v in out {
            assert_eq!(v, vec![36.0, 9.0]);
        }
    }

    #[test]
    fn tree_allgather_matches_flat_allgather() {
        for size in [1usize, 2, 3, 5, 8, 11] {
            let w = World::new(size);
            let out = w.run(|c| {
                let tree = tree_allgather(c, c.rank() as f64 + 0.5);
                let flat = c.allgather(c.rank() as f64 + 0.5);
                (tree, flat)
            });
            for (tree, flat) in out {
                assert_eq!(tree, flat, "size {size}");
            }
        }
    }

    #[test]
    fn tree_and_flat_interleave_safely() {
        // Collective tag sequencing must keep tree and flat rounds separate.
        let w = World::new(4);
        let out = w.run(|c| {
            let a = tree_gather(c, c.rank(), 0);
            let b = c.gather(c.rank() * 10, 0);
            let d = tree_bcast(c, a.map(|v| v.len()), 0);
            (b, d)
        });
        assert_eq!(out[0].0, Some(vec![0, 10, 20, 30]));
        for (_, d) in out {
            assert_eq!(d, 4);
        }
    }

    #[test]
    fn tree_gather_reduces_root_overhead_at_scale() {
        // With per-message endpoint overhead only, the flat gather charges
        // the root O(P) overheads; the tree charges O(log P).
        let model = NetworkModel { latency: 0.0, bandwidth: f64::INFINITY, overhead: 1e-6 };
        let size = 32;

        let flat = World::with_model(size, model);
        let (_, flat_clocks) = flat.run_with_clocks(|c| {
            c.gather(0.0f64, 0);
        });
        let tree = World::with_model(size, model);
        let (_, tree_clocks) = tree.run_with_clocks(|c| {
            tree_gather(c, 0.0f64, 0);
        });
        assert!(
            tree_clocks[0] < flat_clocks[0] / 2.0,
            "tree root clock {} should beat flat {}",
            tree_clocks[0],
            flat_clocks[0]
        );
    }

    #[test]
    fn tree_collectives_payload_volume() {
        // The tree moves each value ~once (plus pair envelope framing):
        // total messages = P - 1 for gather, same as flat; what changes is
        // *who* handles them.
        let size = 8;
        let w = World::new(size);
        w.run(|c| {
            tree_gather(c, vec![0.0f64; 100], 0);
        });
        assert_eq!(w.stats().total_messages() as usize, size - 1);
    }
}
