//! The [`Communicator`] trait: MPI-flavored point-to-point and collective
//! operations, plus a per-rank simulated clock.
//!
//! The collectives are provided as default methods built on `send`/`recv`,
//! mirroring how the paper's listings use mpi4py: `gather` concentrates at a
//! root (the APMOS `W` assembly), `bcast` fans the reduced factors back out,
//! and `send`/`recv` carry the TSQR `Q` blocks. SPMD discipline applies: all
//! ranks must call collectives in the same order.
//!
//! Every operation also exists in a fallible `try_*` form returning
//! [`CommError`]. The collectives are implemented once, in the fallible
//! form; the infallible classics are thin unwrapping wrappers, so reliable
//! backends ([`SelfComm`], [`ThreadComm`](crate::thread_comm::ThreadComm))
//! pay nothing and fault-injecting backends
//! ([`FaultComm`](crate::fault::FaultComm)) surface failures without a
//! parallel code path.

use crate::error::CommError;
use crate::payload::Payload;

/// Tag space reserved for collective operations; user tags must stay below.
pub const COLLECTIVE_TAG_BASE: u64 = 1 << 32;

/// An MPI-like communicator over a fixed-size world of ranks.
pub trait Communicator {
    /// This rank's index, `0 <= rank < size`.
    fn rank(&self) -> usize;

    /// Number of ranks in the world.
    fn size(&self) -> usize;

    /// Point-to-point send. Non-blocking buffered semantics (like
    /// `MPI_Bsend`): never blocks on the receiver.
    fn send<T: Payload>(&self, value: T, dest: usize, tag: u64);

    /// Blocking receive matching `(source, tag)`. Out-of-order messages from
    /// the same source are buffered until their tag is requested.
    fn recv<T: Payload>(&self, source: usize, tag: u64) -> T;

    /// Next tag for an internal collective round (must advance identically
    /// on every rank).
    fn next_collective_tag(&self) -> u64;

    /// Did the collective boundary opened by the *most recent*
    /// [`Communicator::next_collective_tag`] change which rank occupies
    /// `index`? Reliable fixed-world backends never renumber; a
    /// fault-injecting backend whose rank deaths shrink the world answers
    /// `true` when a death at that boundary shifted `index`'s occupant.
    /// Every rank answers identically (the schedule is shared), so
    /// collectives can fail a doomed round consistently instead of
    /// deadlocking on a root whose pre-boundary state died with its rank.
    fn renumbered(&self, _index: usize) -> bool {
        false
    }

    /// Simulated clock (seconds). Zero for communicators without a model.
    fn now(&self) -> f64 {
        0.0
    }

    /// Advance the simulated clock by `secs` of modeled compute.
    fn advance(&self, _secs: f64) {}

    /// Raise the simulated clock to at least `t`.
    fn set_now(&self, _t: f64) {}

    /// Record that a collective had to materialize a fresh copy of a payload
    /// (e.g. the per-destination clones a broadcast root makes). Backends
    /// with counters ([`TrafficStats`](crate::stats::TrafficStats)) charge
    /// this rank's allocation ledger; the default is a no-op.
    fn record_payload_alloc(&self, _bytes: usize) {}

    /// Fallible point-to-point send. Reliable backends never fail; a
    /// fault-injecting backend may consume (lose) the payload and report
    /// why. Transient failures recover by re-sending an identical copy.
    fn try_send<T: Payload>(&self, value: T, dest: usize, tag: u64) -> Result<(), CommError> {
        self.send(value, dest, tag);
        Ok(())
    }

    /// Fallible blocking receive. Reliable backends never fail.
    fn try_recv<T: Payload>(&self, source: usize, tag: u64) -> Result<T, CommError> {
        Ok(self.recv(source, tag))
    }

    /// Ranks of the *initial* world that have died (physical numbering).
    /// Empty for backends without a fault model.
    fn failed_ranks(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Fallible gather (see [`Communicator::gather`]).
    fn try_gather<T: Payload>(&self, value: T, root: usize) -> Result<Option<Vec<T>>, CommError> {
        let tag = self.next_collective_tag();
        if self.rank() == root {
            let mut slots: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            slots[root] = Some(value);
            for (src, slot) in slots.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.try_recv(src, tag)?);
                }
            }
            Ok(Some(slots.into_iter().map(|s| s.expect("gather slot unfilled")).collect()))
        } else {
            self.try_send(value, root, tag)?;
            Ok(None)
        }
    }

    /// Fallible broadcast (see [`Communicator::bcast`]).
    fn try_bcast<T: Payload + Clone>(&self, value: Option<T>, root: usize) -> Result<T, CommError> {
        let tag = self.next_collective_tag();
        if self.renumbered(root) {
            // The rank that computed the broadcast value died at this very
            // boundary and a survivor was renumbered into the root slot
            // without the value. Every rank reaches this same conclusion
            // from the shared schedule, so the whole round fails cleanly
            // instead of the new root panicking / its peers blocking.
            return Err(CommError::RankDead { rank: root });
        }
        if self.rank() == root {
            let v = value.expect("bcast: root must supply a value");
            for dst in 0..self.size() {
                if dst != root {
                    // The fan-out copy is the only allocation a broadcast
                    // makes; charge it so zero-copy audits see it.
                    self.record_payload_alloc(v.byte_len());
                    self.try_send(v.clone(), dst, tag)?;
                }
            }
            Ok(v)
        } else {
            self.try_recv(root, tag)
        }
    }

    /// Fallible scatter (see [`Communicator::scatter`]).
    fn try_scatter<T: Payload>(&self, values: Option<Vec<T>>, root: usize) -> Result<T, CommError> {
        let tag = self.next_collective_tag();
        if self.renumbered(root) {
            // Same hazard as `try_bcast`: the values were computed by a
            // rank that died at this boundary.
            return Err(CommError::RankDead { rank: root });
        }
        if self.rank() == root {
            let values = values.expect("scatter: root must supply values");
            assert_eq!(values.len(), self.size(), "scatter: need one value per rank");
            // One reverse pass: sends go out in descending rank order and
            // the root's own slot is moved out, never cloned.
            let mut own = None;
            for (dst, v) in values.into_iter().enumerate().rev() {
                if dst == root {
                    own = Some(v);
                } else {
                    self.try_send(v, dst, tag)?;
                }
            }
            Ok(own.expect("scatter: missing root slot"))
        } else {
            self.try_recv(root, tag)
        }
    }

    /// Fallible allgather (see [`Communicator::allgather`]).
    fn try_allgather<T: Payload + Clone>(&self, value: T) -> Result<Vec<T>, CommError> {
        let gathered = self.try_gather(value, 0)?;
        self.try_bcast(gathered, 0)
    }

    /// Fallible elementwise-sum allreduce (see
    /// [`Communicator::allreduce_sum`]).
    fn try_allreduce_sum(&self, value: Vec<f64>) -> Result<Vec<f64>, CommError> {
        let n = value.len();
        let gathered = self.try_gather(value, 0)?;
        let summed = gathered.map(|parts| {
            let mut acc = vec![0.0; n];
            for part in parts {
                assert_eq!(part.len(), n, "allreduce_sum: length mismatch across ranks");
                for (a, x) in acc.iter_mut().zip(&part) {
                    *a += x;
                }
            }
            acc
        });
        self.try_bcast(summed, 0)
    }

    /// Fallible max allreduce (see [`Communicator::allreduce_max`]).
    fn try_allreduce_max(&self, value: f64) -> Result<f64, CommError> {
        let gathered = self.try_gather(value, 0)?;
        let m = gathered.map(|v| v.into_iter().fold(f64::NEG_INFINITY, f64::max));
        self.try_bcast(m, 0)
    }

    /// Fallible barrier (see [`Communicator::barrier`]).
    fn try_barrier(&self) -> Result<(), CommError> {
        let t = self.try_allreduce_max(self.now())?;
        self.set_now(t);
        Ok(())
    }

    /// Gather one value per rank at `root` (rank order). Returns `Some(all)`
    /// at the root, `None` elsewhere.
    fn gather<T: Payload>(&self, value: T, root: usize) -> Option<Vec<T>> {
        self.try_gather(value, root).unwrap_or_else(|e| panic!("gather failed: {e}"))
    }

    /// Broadcast from `root`. `value` must be `Some` at the root and is
    /// ignored elsewhere (mirroring mpi4py's `comm.bcast(x, root)`).
    fn bcast<T: Payload + Clone>(&self, value: Option<T>, root: usize) -> T {
        self.try_bcast(value, root).unwrap_or_else(|e| panic!("bcast failed: {e}"))
    }

    /// Scatter one value to each rank from `root`. `values` must be `Some`
    /// with length `size` at the root.
    fn scatter<T: Payload>(&self, values: Option<Vec<T>>, root: usize) -> T {
        self.try_scatter(values, root).unwrap_or_else(|e| panic!("scatter failed: {e}"))
    }

    /// All ranks obtain every rank's value (gather at 0, then broadcast).
    fn allgather<T: Payload + Clone>(&self, value: T) -> Vec<T> {
        self.try_allgather(value).unwrap_or_else(|e| panic!("allgather failed: {e}"))
    }

    /// Elementwise sum across ranks, result everywhere.
    fn allreduce_sum(&self, value: Vec<f64>) -> Vec<f64> {
        self.try_allreduce_sum(value).unwrap_or_else(|e| panic!("allreduce_sum failed: {e}"))
    }

    /// Maximum of a scalar across ranks, result everywhere.
    fn allreduce_max(&self, value: f64) -> f64 {
        self.try_allreduce_max(value).unwrap_or_else(|e| panic!("allreduce_max failed: {e}"))
    }

    /// Barrier: returns once every rank has entered. Also synchronizes
    /// simulated clocks to the global maximum, like a real barrier would.
    fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| panic!("barrier failed: {e}"));
    }
}

/// Trivial single-rank communicator; collectives degenerate to identity.
/// Self-sends are buffered and matched by tag, so rank-0-only code paths
/// that send to themselves still work.
pub struct SelfComm {
    pending: std::cell::RefCell<Vec<(u64, Box<dyn std::any::Any + Send>)>>,
    seq: std::cell::Cell<u64>,
}

impl SelfComm {
    /// Create a single-rank world.
    pub fn new() -> Self {
        Self { pending: std::cell::RefCell::new(Vec::new()), seq: std::cell::Cell::new(0) }
    }
}

impl Default for SelfComm {
    fn default() -> Self {
        Self::new()
    }
}

impl Communicator for SelfComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn send<T: Payload>(&self, value: T, dest: usize, tag: u64) {
        assert_eq!(dest, 0, "SelfComm: only rank 0 exists");
        self.pending.borrow_mut().push((tag, Box::new(value)));
    }

    fn recv<T: Payload>(&self, source: usize, tag: u64) -> T {
        assert_eq!(source, 0, "SelfComm: only rank 0 exists");
        let mut pending = self.pending.borrow_mut();
        let idx = pending
            .iter()
            .position(|(t, _)| *t == tag)
            .unwrap_or_else(|| panic!("SelfComm: no buffered message with tag {tag}"));
        let (_, payload) = pending.remove(idx);
        *payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("SelfComm: payload type mismatch for tag {tag}"))
    }

    fn next_collective_tag(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        COLLECTIVE_TAG_BASE + s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selfcomm_identity_collectives() {
        let c = SelfComm::new();
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        assert_eq!(c.gather(5.0f64, 0), Some(vec![5.0]));
        assert_eq!(c.bcast(Some(vec![1.0, 2.0]), 0), vec![1.0, 2.0]);
        assert_eq!(c.allgather(3.0f64), vec![3.0]);
        assert_eq!(c.allreduce_sum(vec![1.0, 2.0]), vec![1.0, 2.0]);
        assert_eq!(c.allreduce_max(9.0), 9.0);
        c.barrier();
    }

    #[test]
    fn selfcomm_self_send_roundtrip() {
        let c = SelfComm::new();
        c.send(vec![1.0, 2.0, 3.0], 0, 7);
        c.send(4.0f64, 0, 8);
        // Out-of-order receive by tag.
        let x: f64 = c.recv(0, 8);
        assert_eq!(x, 4.0);
        let v: Vec<f64> = c.recv(0, 7);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "payload type mismatch")]
    fn selfcomm_type_mismatch_panics() {
        let c = SelfComm::new();
        c.send(1.0f64, 0, 1);
        let _: Vec<f64> = c.recv(0, 1);
    }

    #[test]
    #[should_panic(expected = "no buffered message")]
    fn selfcomm_missing_message_panics() {
        let c = SelfComm::new();
        let _: f64 = c.recv(0, 42);
    }

    #[test]
    fn selfcomm_scatter() {
        let c = SelfComm::new();
        assert_eq!(c.scatter(Some(vec![11.0f64]), 0), 11.0);
    }
}
