//! Communication failures.
//!
//! The reproduction's fault model mirrors what the paper's MPI deployment
//! on Theta had to survive: lost messages, payloads mangled in flight, and
//! ranks dying mid-collective. [`CommError`] classifies every failure a
//! communicator can report through the `try_*` operations; transient
//! failures ([`CommError::is_transient`]) are retryable — the payload can
//! be re-sent or re-delivered and the operation completes bit-identically
//! — while permanent ones mean the world itself changed shape.

use std::fmt;

/// How a payload was mangled in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptionKind {
    /// The delivered payload is shorter than the sender's framing said.
    Truncated,
    /// The delivered payload has the right length but a failed checksum.
    BitFlip,
}

impl fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionKind::Truncated => write!(f, "truncated"),
            CorruptionKind::BitFlip => write!(f, "bit-flipped"),
        }
    }
}

/// A failed communication operation.
#[derive(Clone, Debug, PartialEq)]
pub enum CommError {
    /// The message never left this rank (send-side loss). Transient: the
    /// payload was consumed, but re-sending an identical copy recovers.
    Dropped {
        /// Destination rank (in the sender's current numbering).
        dest: usize,
        /// Message tag.
        tag: u64,
    },
    /// The delivered payload failed validation and was discarded.
    /// Transient: the sender's copy is intact, so retransmission recovers.
    Corrupted {
        /// Source rank (in the receiver's current numbering).
        source: usize,
        /// Message tag.
        tag: u64,
        /// How the payload was mangled.
        kind: CorruptionKind,
        /// Wire size the framing promised.
        expected_bytes: usize,
        /// Wire size (or valid prefix) actually delivered.
        got_bytes: usize,
    },
    /// A rank is gone for good. Permanent: no retry can bring it back; the
    /// survivors must continue on a shrunken world.
    RankDead {
        /// The dead rank's id in the *initial* (physical) numbering.
        rank: usize,
    },
    /// A bounded-retry policy ran out of attempts on a transient fault.
    RetriesExhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// The failure the final attempt saw.
        last: Box<CommError>,
    },
}

impl CommError {
    /// True when retrying the operation (with an identical payload) can
    /// succeed: drops and corruptions are transient, dead ranks and
    /// exhausted retry budgets are not.
    pub fn is_transient(&self) -> bool {
        matches!(self, CommError::Dropped { .. } | CommError::Corrupted { .. })
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Dropped { dest, tag } => {
                write!(f, "message to rank {dest} (tag {tag}) was dropped")
            }
            CommError::Corrupted { source, tag, kind, expected_bytes, got_bytes } => write!(
                f,
                "payload from rank {source} (tag {tag}) {kind}: expected {expected_bytes} \
                 bytes, got {got_bytes}"
            ),
            CommError::RankDead { rank } => write!(f, "rank {rank} is dead"),
            CommError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last failure: {last}")
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(CommError::Dropped { dest: 1, tag: 7 }.is_transient());
        assert!(CommError::Corrupted {
            source: 0,
            tag: 1,
            kind: CorruptionKind::Truncated,
            expected_bytes: 80,
            got_bytes: 72,
        }
        .is_transient());
        assert!(!CommError::RankDead { rank: 2 }.is_transient());
        let exhausted = CommError::RetriesExhausted {
            attempts: 4,
            last: Box::new(CommError::Dropped { dest: 0, tag: 0 }),
        };
        assert!(!exhausted.is_transient());
    }

    #[test]
    fn display_is_informative() {
        let e = CommError::Corrupted {
            source: 3,
            tag: 9,
            kind: CorruptionKind::BitFlip,
            expected_bytes: 100,
            got_bytes: 100,
        };
        let msg = e.to_string();
        assert!(msg.contains("rank 3") && msg.contains("bit-flipped"), "{msg}");
        let r = CommError::RetriesExhausted { attempts: 3, last: Box::new(e) };
        assert!(r.to_string().contains("3 attempts"));
    }
}
