//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] is a pure function from `(rank, op index, attempt)` to a
//! fault decision, derived from a seed by counter-based hashing — no shared
//! RNG state, no dependence on thread scheduling. Wrapping any
//! [`Communicator`] in a [`FaultComm`] replays the plan bit-reproducibly:
//! two runs with the same plan perform exactly the same drops, delays,
//! corruptions and rank deaths, at any `PSVD_NUM_THREADS`, because the
//! kernel worker pool never touches the communicator and each rank's
//! operation counter advances in SPMD program order.
//!
//! Fault model:
//!
//! - **Drop** (send-side, transient): the payload is lost before it reaches
//!   the fabric. Recovery re-sends an identical copy.
//! - **Delay-reorder** (send-side, benign): the message is held back and
//!   released after a later operation, exercising the receivers'
//!   out-of-order tag buffering. Values are unchanged.
//! - **Truncation / corruption** (receive-side, transient): the wire copy
//!   fails validation and is discarded; the modeled retransmission delivers
//!   the sender's intact payload. No extra payload allocation is charged —
//!   the wrapper keeps the one delivered copy.
//! - **Rank death** (permanent): at the start of collective round `k` the
//!   victim's every operation returns [`CommError::RankDead`] and the
//!   survivors transparently renumber into a dense `0..alive` world, so
//!   SPMD drivers continue degraded without code changes.
//!
//! Transient faults are absorbed inside [`FaultComm`] by a bounded
//! exponential-backoff [`RetryPolicy`]; the backoff is charged to the
//! *simulated* clock ([`Communicator::advance`]), never slept, so replays
//! stay deterministic and fast. Only permanent failures surface through
//! the `try_*` operations.

use std::cell::{Cell, RefCell};

use crate::communicator::Communicator;
use crate::error::{CommError, CorruptionKind};
use crate::payload::Payload;

/// One injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Lose a sent payload (transient; send-side).
    Drop,
    /// Hold a sent message back until `release_after_ops` further
    /// operations have run on the sender (reorder; send-side).
    Delay {
        /// Operations after which the message is released. A collective
        /// round or a receive releases everything pending regardless — a
        /// rank never blocks while holding undelivered messages.
        release_after_ops: u64,
    },
    /// Deliver a short payload that fails length validation (transient;
    /// receive-side).
    Truncate,
    /// Deliver a bit-flipped payload that fails checksum validation
    /// (transient; receive-side).
    Corrupt,
}

impl FaultKind {
    fn applies_to_send(self) -> bool {
        matches!(self, FaultKind::Drop | FaultKind::Delay { .. })
    }
}

/// An explicit per-operation fault table entry.
#[derive(Clone, Copy, Debug)]
pub struct FaultEntry {
    /// Victim rank (initial/physical numbering).
    pub rank: usize,
    /// The rank-local operation index (0-based; sends and receives share
    /// one counter per rank).
    pub op: u64,
    /// What to inject.
    pub kind: FaultKind,
    /// How many leading attempts of the operation fault before it is let
    /// through. `u32::MAX` makes the fault persistent (exhausts any
    /// bounded retry policy).
    pub attempts: u32,
}

/// A scheduled permanent rank failure.
#[derive(Clone, Copy, Debug)]
pub struct RankDeath {
    /// Victim rank (initial/physical numbering).
    pub rank: usize,
    /// Collective round (1-based: the `k`-th collective any rank starts)
    /// at whose entry the rank dies.
    pub at_round: u64,
}

/// Bounded retry with exponential backoff for transient faults.
///
/// The backoff is charged to the communicator's simulated clock
/// ([`Communicator::advance`]) so modeled timings reflect the recovery
/// cost without real sleeping.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per logical operation (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated seconds.
    pub base_backoff: f64,
    /// Multiplier applied per further retry.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, base_backoff: 1e-6, backoff_factor: 2.0 }
    }
}

impl RetryPolicy {
    /// Simulated seconds to back off before retry number `attempt`
    /// (1-based).
    pub fn backoff(&self, attempt: u32) -> f64 {
        self.base_backoff * self.backoff_factor.powi(attempt.saturating_sub(1) as i32)
    }
}

/// Counters of injected faults and recoveries, per [`FaultComm`] instance
/// (one rank).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultStats {
    /// Sends whose payload was dropped at least once.
    pub drops: u64,
    /// Sends held back for reordering.
    pub delays: u64,
    /// Receives that saw a truncated payload.
    pub truncations: u64,
    /// Receives that saw a bit-flipped payload.
    pub corruptions: u64,
    /// Retry attempts performed (all transient kinds).
    pub retries: u64,
    /// Simulated seconds spent backing off.
    pub backoff_secs: f64,
}

/// Which side of a point-to-point operation a fault decision is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    Send,
    Recv,
}

/// A seeded, deterministic fault schedule shared by every rank of a world.
///
/// Fault decisions are a pure function of `(seed, rank, op, attempt)`
/// via counter-based hashing, so a plan replays identically regardless of
/// thread interleaving. Probabilistic faults hit only the first
/// `faulty_attempts` attempts of an operation (default 1), guaranteeing
/// that any [`RetryPolicy`] with more attempts recovers; explicit
/// [`FaultEntry`] rows override the probabilistic layer per operation.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    drop_prob: f64,
    delay_prob: f64,
    delay_ops: u64,
    corrupt_prob: f64,
    faulty_attempts: u32,
    entries: Vec<FaultEntry>,
    deaths: Vec<RankDeath>,
}

impl FaultPlan {
    /// A fault-free plan with the given seed. Compose faults with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        Self { seed, faulty_attempts: 1, ..Self::default() }
    }

    /// The seed — together with the builder parameters it fully identifies
    /// the schedule, so a failing run is reproduced by rebuilding the same
    /// plan (the `Debug` form prints every field).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The sub-seed for an independent fault stream derived from a master
    /// seed — e.g. one schedule per `(tenant session, update round)` in a
    /// long-lived service. Pure counter-based mixing, so derived streams
    /// replay identically and stay uncorrelated across `stream`/`round`
    /// (`FaultPlan::new(derive_seed(s, a, b))` rebuilds any schedule from
    /// its three coordinates).
    pub fn derive_seed(seed: u64, stream: u64, round: u64) -> u64 {
        hash4(seed, stream, round, 0x5E55_10D0_5EED_0001)
    }

    /// A fault-free plan on the `(stream, round)` sub-seed of this plan's
    /// seed; compose faults with the `with_*` builders as usual.
    pub fn derive(&self, stream: u64, round: u64) -> FaultPlan {
        FaultPlan::new(Self::derive_seed(self.seed, stream, round))
    }

    /// Builder: probability that a send's payload is dropped.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability must be in [0,1]");
        self.drop_prob = p;
        self
    }

    /// Builder: probability that a send is delayed, released after
    /// `release_after_ops` further operations.
    pub fn with_delay_prob(mut self, p: f64, release_after_ops: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "delay probability must be in [0,1]");
        self.delay_prob = p;
        self.delay_ops = release_after_ops;
        self
    }

    /// Builder: probability that a receive sees a mangled payload (split
    /// evenly between truncation and bit-flip by a hash bit).
    pub fn with_corrupt_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "corrupt probability must be in [0,1]");
        self.corrupt_prob = p;
        self
    }

    /// Builder: how many leading attempts of each operation the
    /// probabilistic faults hit (default 1 — one transient fault, then the
    /// retry goes through).
    pub fn with_faulty_attempts(mut self, n: u32) -> Self {
        self.faulty_attempts = n;
        self
    }

    /// Builder: add an explicit per-operation fault.
    pub fn with_entry(mut self, entry: FaultEntry) -> Self {
        self.entries.push(entry);
        self
    }

    /// Builder: kill `rank` at the entry of collective round `at_round`
    /// (1-based).
    pub fn with_death(mut self, rank: usize, at_round: u64) -> Self {
        assert!(at_round >= 1, "rounds are 1-based; death at round 0 never fires");
        self.deaths.push(RankDeath { rank, at_round });
        self
    }

    /// The scheduled deaths.
    pub fn deaths(&self) -> &[RankDeath] {
        &self.deaths
    }

    /// The fault decision for attempt `attempt` (0-based) of operation
    /// `op` on `rank`.
    fn fault_for(&self, rank: usize, op: u64, attempt: u32, class: OpClass) -> Option<FaultKind> {
        // Explicit table rows override the probabilistic layer entirely.
        for e in &self.entries {
            if e.rank == rank && e.op == op && e.kind.applies_to_send() == (class == OpClass::Send)
            {
                return (attempt < e.attempts).then_some(e.kind);
            }
        }
        if attempt >= self.faulty_attempts {
            return None;
        }
        let h = hash4(self.seed, rank as u64, op, (attempt as u64) << 1 | class as u64);
        let u = unit(h);
        match class {
            OpClass::Send => {
                if u < self.drop_prob {
                    Some(FaultKind::Drop)
                } else if u < self.drop_prob + self.delay_prob {
                    Some(FaultKind::Delay { release_after_ops: self.delay_ops })
                } else {
                    None
                }
            }
            OpClass::Recv => (u < self.corrupt_prob).then(|| {
                // An independent hash bit picks the corruption flavor.
                if hash4(self.seed ^ 0x9E37_79B9, rank as u64, op, attempt as u64) & 1 == 0 {
                    FaultKind::Truncate
                } else {
                    FaultKind::Corrupt
                }
            }),
        }
    }
}

/// SplitMix64 over a 4-word counter: the standard stateless generator for
/// reproducible per-event decisions.
fn hash4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(d.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A send held back by a delay fault.
struct DelayedSend<C> {
    release_at_op: u64,
    deliver: Box<dyn FnOnce(&C)>,
}

/// A [`Communicator`] wrapper that replays a [`FaultPlan`] over any inner
/// transport.
///
/// Transient faults (drops, delays, corruptions) are recovered internally
/// by the [`RetryPolicy`], so the classic infallible operations behave
/// exactly as on the reliable transport — bit-identically, since retries
/// re-deliver the original payloads. Permanent failures (rank death,
/// retry exhaustion) surface through the `try_*` operations; after a
/// death, `rank()`/`size()` renumber the survivors densely so collectives
/// keep working on the shrunken world.
pub struct FaultComm<'a, C: Communicator> {
    inner: &'a C,
    plan: FaultPlan,
    policy: RetryPolicy,
    /// This rank's id in the initial (physical) numbering.
    phys_rank: usize,
    initial_size: usize,
    /// Physical ranks that have died (kept consistent across ranks by the
    /// shared plan's round schedule).
    dead: RefCell<Vec<bool>>,
    my_death: Cell<bool>,
    /// Rank-local operation counter (sends and receives).
    op: Cell<u64>,
    /// Collective rounds started (1-based after the first).
    round: Cell<u64>,
    /// If deaths fired at the most recent collective boundary, the lowest
    /// dense index whose occupant changed (`None` when the boundary was
    /// death-free). Backs [`Communicator::renumbered`].
    shifted_from: Cell<Option<usize>>,
    delayed: RefCell<Vec<DelayedSend<C>>>,
    stats: RefCell<FaultStats>,
}

impl<'a, C: Communicator> FaultComm<'a, C> {
    /// Wrap `inner`, replaying `plan` under the default [`RetryPolicy`].
    pub fn new(inner: &'a C, plan: FaultPlan) -> Self {
        Self::with_policy(inner, plan, RetryPolicy::default())
    }

    /// Wrap `inner` with an explicit retry policy.
    pub fn with_policy(inner: &'a C, plan: FaultPlan, policy: RetryPolicy) -> Self {
        let size = inner.size();
        for d in plan.deaths() {
            assert!(d.rank < size, "death schedule names rank {} of a {size}-rank world", d.rank);
        }
        assert!(policy.max_attempts >= 1, "retry policy needs at least one attempt");
        Self {
            inner,
            plan,
            policy,
            phys_rank: inner.rank(),
            initial_size: size,
            dead: RefCell::new(vec![false; size]),
            my_death: Cell::new(false),
            op: Cell::new(0),
            round: Cell::new(0),
            shifted_from: Cell::new(None),
            delayed: RefCell::new(Vec::new()),
            stats: RefCell::new(FaultStats::default()),
        }
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The retry policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Injection/recovery counters for this rank.
    pub fn stats(&self) -> FaultStats {
        *self.stats.borrow()
    }

    /// World size before any deaths.
    pub fn initial_size(&self) -> usize {
        self.initial_size
    }

    /// True once this rank's scheduled death has fired.
    pub fn is_dead(&self) -> bool {
        self.my_death.get()
    }

    /// Release every delayed message immediately.
    pub fn flush_delayed(&self) {
        let pending = std::mem::take(&mut *self.delayed.borrow_mut());
        for d in pending {
            (d.deliver)(self.inner);
        }
    }

    /// Release delayed messages whose hold has expired.
    fn flush_due(&self) {
        let now = self.op.get();
        // Drain in FIFO order among the due, preserving channel order.
        let mut pending = self.delayed.borrow_mut();
        if pending.iter().all(|d| d.release_at_op > now) {
            return;
        }
        let held = std::mem::take(&mut *pending);
        drop(pending);
        for d in held {
            if d.release_at_op <= now {
                (d.deliver)(self.inner);
            } else {
                self.delayed.borrow_mut().push(d);
            }
        }
    }

    /// Claim the next rank-local operation index.
    fn bump_op(&self) -> u64 {
        let o = self.op.get();
        self.op.set(o + 1);
        o
    }

    /// Physical rank for a current (virtual) rank id.
    fn phys_of(&self, virt: usize) -> usize {
        let dead = self.dead.borrow();
        let mut seen = 0;
        for (p, &d) in dead.iter().enumerate() {
            if !d {
                if seen == virt {
                    return p;
                }
                seen += 1;
            }
        }
        panic!("virtual rank {virt} out of range ({seen} ranks alive)");
    }

    /// Charge one backoff interval to the simulated clock.
    fn back_off(&self, attempt: u32) {
        let b = self.policy.backoff(attempt);
        let mut stats = self.stats.borrow_mut();
        stats.retries += 1;
        stats.backoff_secs += b;
        drop(stats);
        self.inner.advance(b);
    }

    fn dead_guard(&self) -> Result<(), CommError> {
        if self.my_death.get() {
            Err(CommError::RankDead { rank: self.phys_rank })
        } else {
            Ok(())
        }
    }
}

impl<C: Communicator> Drop for FaultComm<'_, C> {
    fn drop(&mut self) {
        // Never strand a delayed message: the inner channels outlive this
        // wrapper within the rank closure.
        self.flush_delayed();
    }
}

impl<C: Communicator> Communicator for FaultComm<'_, C> {
    fn rank(&self) -> usize {
        // Virtual id: position among the surviving ranks.
        self.dead.borrow()[..self.phys_rank].iter().filter(|&&d| !d).count()
    }

    fn size(&self) -> usize {
        self.dead.borrow().iter().filter(|&&d| !d).count()
    }

    fn send<T: Payload>(&self, value: T, dest: usize, tag: u64) {
        self.try_send(value, dest, tag).unwrap_or_else(|e| panic!("send failed: {e}"));
    }

    fn recv<T: Payload>(&self, source: usize, tag: u64) -> T {
        self.try_recv(source, tag).unwrap_or_else(|e| panic!("recv failed: {e}"))
    }

    fn try_send<T: Payload>(&self, value: T, dest: usize, tag: u64) -> Result<(), CommError> {
        self.dead_guard()?;
        self.flush_due();
        let op = self.bump_op();
        let phys_dest = self.phys_of(dest);
        let mut attempt = 0u32;
        loop {
            match self.plan.fault_for(self.phys_rank, op, attempt, OpClass::Send) {
                None => {
                    self.inner.send(value, phys_dest, tag);
                    return Ok(());
                }
                Some(FaultKind::Delay { release_after_ops }) => {
                    self.stats.borrow_mut().delays += 1;
                    self.delayed.borrow_mut().push(DelayedSend {
                        release_at_op: op + release_after_ops,
                        deliver: Box::new(move |inner: &C| inner.send(value, phys_dest, tag)),
                    });
                    return Ok(());
                }
                Some(FaultKind::Drop) => {
                    self.stats.borrow_mut().drops += 1;
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        return Err(CommError::RetriesExhausted {
                            attempts: attempt,
                            last: Box::new(CommError::Dropped { dest, tag }),
                        });
                    }
                    self.back_off(attempt);
                }
                Some(k) => unreachable!("receive-side fault {k:?} scheduled for a send"),
            }
        }
    }

    fn try_recv<T: Payload>(&self, source: usize, tag: u64) -> Result<T, CommError> {
        self.dead_guard()?;
        // Release everything held before a potentially-blocking receive: a
        // rank must never wait on a peer while sitting on undelivered
        // messages that peer may itself be waiting for (deadlock).
        self.flush_delayed();
        let op = self.bump_op();
        let phys_src = self.phys_of(source);
        let mut attempt = 0u32;
        // The intact wire copy: pulled off the channel once; a validation
        // failure discards only the modeled mangled view, so the retry
        // ("retransmission") re-delivers this copy without new allocation.
        let mut delivered: Option<T> = None;
        loop {
            match self.plan.fault_for(self.phys_rank, op, attempt, OpClass::Recv) {
                None => {
                    return Ok(match delivered.take() {
                        Some(v) => v,
                        None => self.inner.recv(phys_src, tag),
                    })
                }
                Some(kind @ (FaultKind::Truncate | FaultKind::Corrupt)) => {
                    if delivered.is_none() {
                        delivered = Some(self.inner.recv(phys_src, tag));
                    }
                    let expected = delivered.as_ref().map_or(0, Payload::byte_len);
                    let (ckind, got) = match kind {
                        FaultKind::Truncate => {
                            self.stats.borrow_mut().truncations += 1;
                            (CorruptionKind::Truncated, expected.saturating_sub(8))
                        }
                        _ => {
                            self.stats.borrow_mut().corruptions += 1;
                            (CorruptionKind::BitFlip, expected)
                        }
                    };
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        return Err(CommError::RetriesExhausted {
                            attempts: attempt,
                            last: Box::new(CommError::Corrupted {
                                source,
                                tag,
                                kind: ckind,
                                expected_bytes: expected,
                                got_bytes: got,
                            }),
                        });
                    }
                    self.back_off(attempt);
                }
                Some(k) => unreachable!("send-side fault {k:?} scheduled for a receive"),
            }
        }
    }

    fn next_collective_tag(&self) -> u64 {
        // Collective rounds are global synchronization points in SPMD
        // order: release every delayed message and apply scheduled deaths,
        // so all ranks agree on the world's shape for the round.
        self.flush_delayed();
        let r = self.round.get() + 1;
        self.round.set(r);
        // Dense indices are computed against the pre-boundary world, so
        // `renumbered` can answer for state captured before this boundary.
        let mut shifted: Option<usize> = None;
        {
            let dead = self.dead.borrow();
            for d in self.plan.deaths() {
                if d.at_round == r && !dead[d.rank] {
                    let idx = (0..d.rank).filter(|&p| !dead[p]).count();
                    shifted = Some(shifted.map_or(idx, |s| s.min(idx)));
                }
            }
        }
        self.shifted_from.set(shifted);
        for d in self.plan.deaths() {
            if d.at_round == r {
                self.dead.borrow_mut()[d.rank] = true;
                if d.rank == self.phys_rank {
                    self.my_death.set(true);
                }
            }
        }
        self.inner.next_collective_tag()
    }

    fn renumbered(&self, index: usize) -> bool {
        self.shifted_from.get().is_some_and(|from| index >= from)
    }

    fn failed_ranks(&self) -> Vec<usize> {
        self.dead.borrow().iter().enumerate().filter_map(|(r, &d)| d.then_some(r)).collect()
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn advance(&self, secs: f64) {
        self.inner.advance(secs);
    }

    fn set_now(&self, t: f64) {
        self.inner.set_now(t);
    }

    fn record_payload_alloc(&self, bytes: usize) {
        self.inner.record_payload_alloc(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::SelfComm;
    use crate::thread_comm::World;

    #[test]
    fn fault_free_plan_is_transparent() {
        let w = World::new(3);
        let out = w.run(|c| {
            let fc = FaultComm::new(c, FaultPlan::new(1));
            let all = fc.allgather(fc.rank() as f64);
            (all, fc.stats())
        });
        for (all, stats) in out {
            assert_eq!(all, vec![0.0, 1.0, 2.0]);
            assert_eq!(stats, FaultStats::default());
        }
    }

    #[test]
    fn plan_decisions_are_deterministic() {
        let plan = FaultPlan::new(42).with_drop_prob(0.3).with_corrupt_prob(0.2);
        for op in 0..64u64 {
            for rank in 0..4usize {
                for class in [OpClass::Send, OpClass::Recv] {
                    let a = plan.fault_for(rank, op, 0, class);
                    let b = plan.fault_for(rank, op, 0, class);
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn probabilistic_faults_respect_attempt_budget() {
        let plan = FaultPlan::new(7).with_drop_prob(1.0);
        // Attempt 0 always faults, attempt 1 never (faulty_attempts = 1).
        assert_eq!(plan.fault_for(0, 0, 0, OpClass::Send), Some(FaultKind::Drop));
        assert_eq!(plan.fault_for(0, 0, 1, OpClass::Send), None);
    }

    #[test]
    fn dropped_sends_recover_bitwise() {
        let run = |plan: FaultPlan| {
            let w = World::new(4);
            let out = w.run(|c| {
                let fc = FaultComm::new(c, plan.clone());
                let g = fc.gather(vec![fc.rank() as f64 + 0.25; 8], 0);
                let b = fc.bcast(g, 0);
                (b, fc.stats())
            });
            out
        };
        let clean = run(FaultPlan::new(5));
        let faulty = run(FaultPlan::new(5).with_drop_prob(1.0));
        for ((cv, cs), (fv, fs)) in clean.iter().zip(&faulty) {
            assert_eq!(cv, fv, "retried payloads must be identical");
            assert_eq!(cs.drops, 0);
            assert!(fs.drops > 0 || fs.retries == 0);
        }
        // Someone dropped and retried.
        assert!(faulty.iter().any(|(_, s)| s.drops > 0 && s.retries > 0));
    }

    #[test]
    fn corrupted_receives_recover_bitwise() {
        let run = |p: f64| {
            let w = World::new(3);
            w.run(|c| {
                let fc = FaultComm::new(c, FaultPlan::new(11).with_corrupt_prob(p));
                let s = fc.allreduce_sum(vec![fc.rank() as f64, 1.0]);
                (s, fc.stats())
            })
        };
        let clean = run(0.0);
        let faulty = run(1.0);
        for ((cv, _), (fv, _)) in clean.iter().zip(&faulty) {
            assert_eq!(cv, fv);
        }
        let total: u64 = faulty.iter().map(|(_, s)| s.truncations + s.corruptions).sum();
        assert!(total > 0, "corruption plan must have injected something");
    }

    #[test]
    fn delayed_sends_reorder_but_preserve_values() {
        let w = World::new(2);
        let out = w.run(|c| {
            let fc = FaultComm::new(c, FaultPlan::new(3).with_delay_prob(1.0, 1));
            if fc.rank() == 0 {
                fc.send(10.0f64, 1, 1);
                fc.send(20.0f64, 1, 2);
                fc.flush_delayed();
                (0.0, fc.stats())
            } else {
                let b: f64 = fc.recv(0, 2);
                let a: f64 = fc.recv(0, 1);
                (a + 2.0 * b, fc.stats())
            }
        });
        assert_eq!(out[1].0, 50.0);
        assert!(out[0].1.delays > 0);
    }

    #[test]
    fn persistent_fault_exhausts_retries() {
        let c = SelfComm::new();
        let plan = FaultPlan::new(0).with_entry(FaultEntry {
            rank: 0,
            op: 0,
            kind: FaultKind::Drop,
            attempts: u32::MAX,
        });
        let fc = FaultComm::new(&c, plan);
        let err = fc.try_send(1.0f64, 0, 7).unwrap_err();
        match err {
            CommError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, RetryPolicy::default().max_attempts);
                assert_eq!(*last, CommError::Dropped { dest: 0, tag: 7 });
            }
            other => panic!("expected exhaustion, got {other}"),
        }
    }

    #[test]
    fn backoff_charges_simulated_clock() {
        let w = World::with_model(2, crate::model::NetworkModel::free());
        let (out, clocks) = w.run_with_clocks(|c| {
            let fc = FaultComm::new(c, FaultPlan::new(9).with_drop_prob(1.0));
            if fc.rank() == 0 {
                fc.send(vec![1.0f64; 4], 1, 1);
            } else {
                let _: Vec<f64> = fc.recv(0, 1);
            }
            fc.stats().backoff_secs
        });
        assert!(out[0] > 0.0, "sender must have backed off");
        assert!(clocks[0] >= out[0], "backoff must be on the simulated clock");
    }

    #[test]
    fn root_death_at_bcast_boundary_fails_every_rank() {
        // Rank 0 dies exactly at the second bcast's boundary: the survivor
        // renumbered into the root slot has no value to broadcast, so the
        // whole round must fail with the same permanent error on every
        // rank — not panic on the new root or deadlock its peers.
        let plan = FaultPlan::new(21).with_death(0, 2);
        let w = World::new(3);
        let out = w.run(|c| {
            let fc = FaultComm::new(c, plan.clone());
            let supply = |v: f64| if fc.rank() == 0 { Some(v) } else { None };
            let first = fc.try_bcast(supply(7.0), 0);
            let second = fc.try_bcast(supply(9.0), 0);
            (first, second)
        });
        for (rank, (first, second)) in out.iter().enumerate() {
            assert_eq!(*first, Ok(7.0), "rank {rank}: pre-death bcast works");
            assert_eq!(
                *second,
                Err(CommError::RankDead { rank: 0 }),
                "rank {rank}: doomed round fails consistently"
            );
        }
    }

    #[test]
    fn nonroot_death_at_bcast_boundary_spares_the_round() {
        // Killing the last rank does not renumber the root: the surviving
        // ranks complete the broadcast on the shrunken world.
        let plan = FaultPlan::new(22).with_death(2, 2);
        let w = World::new(3);
        let out = w.run(|c| {
            let fc = FaultComm::new(c, plan.clone());
            let supply = |v: f64| if fc.rank() == 0 { Some(v) } else { None };
            let first = fc.try_bcast(supply(7.0), 0);
            let second = fc.try_bcast(supply(9.0), 0);
            (first, second)
        });
        assert_eq!(out[0].1, Ok(9.0));
        assert_eq!(out[1].1, Ok(9.0));
        assert_eq!(out[2].1, Err(CommError::RankDead { rank: 2 }), "the victim itself errors");
        assert_eq!(out[2].0, Ok(7.0));
    }

    #[test]
    fn rank_death_shrinks_world_consistently() {
        // An allgather is two collective rounds (gather + bcast); dying at
        // round 3 is the boundary between the first and second allgather.
        let plan = FaultPlan::new(13).with_death(1, 3);
        let w = World::new(3);
        let out = w.run(|c| {
            let fc = FaultComm::new(c, plan.clone());
            // Rounds 1-2: everyone participates.
            let first = fc.try_allgather(fc.rank() as f64).map(|v| v.len());
            // Rounds 3+: rank 1 is dead; survivors renumber to 0..2.
            let second = fc.try_allgather(fc.rank() as f64).map(|v| v.len());
            (first, second, fc.size(), fc.failed_ranks())
        });
        assert_eq!(out[0].0, Ok(3));
        assert_eq!(out[1].0, Ok(3));
        assert_eq!(out[2].0, Ok(3));
        // The victim errors permanently; survivors see a 2-rank world.
        assert_eq!(out[1].1, Err(CommError::RankDead { rank: 1 }));
        assert_eq!(out[0].1, Ok(2));
        assert_eq!(out[2].1, Ok(2));
        assert_eq!(out[0].2, 2);
        assert_eq!(out[0].3, vec![1]);
    }

    #[test]
    fn survivors_renumber_densely() {
        let plan = FaultPlan::new(17).with_death(0, 1);
        let w = World::new(3);
        let out = w.run(|c| {
            let fc = FaultComm::new(c, plan.clone());
            let r = fc.try_allgather(c.rank() as f64);
            (fc.rank(), fc.size(), r)
        });
        // Physical 1 and 2 become virtual 0 and 1.
        assert_eq!(out[1].0, 0);
        assert_eq!(out[2].0, 1);
        assert_eq!(out[1].1, 2);
        assert_eq!(out[1].2, Ok(vec![1.0, 2.0]));
        assert!(out[0].2.is_err());
    }

    #[test]
    fn replay_is_deterministic() {
        let plan =
            FaultPlan::new(99).with_drop_prob(0.4).with_corrupt_prob(0.3).with_delay_prob(0.2, 2);
        let run = || {
            let w = World::new(4);
            w.run(|c| {
                let fc = FaultComm::new(c, plan.clone());
                let mut acc = Vec::new();
                for _ in 0..5 {
                    acc = fc.allreduce_sum(vec![fc.rank() as f64, acc.len() as f64]);
                }
                (acc, fc.stats())
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same plan, same seed: the replay must be bitwise identical");
    }

    #[test]
    fn explicit_entry_overrides_probabilistic_layer() {
        let plan = FaultPlan::new(21).with_entry(FaultEntry {
            rank: 0,
            op: 0,
            kind: FaultKind::Drop,
            attempts: 2,
        });
        assert_eq!(plan.fault_for(0, 0, 0, OpClass::Send), Some(FaultKind::Drop));
        assert_eq!(plan.fault_for(0, 0, 1, OpClass::Send), Some(FaultKind::Drop));
        assert_eq!(plan.fault_for(0, 0, 2, OpClass::Send), None);
        assert_eq!(plan.fault_for(0, 1, 0, OpClass::Send), None);
        assert_eq!(plan.fault_for(1, 0, 0, OpClass::Send), None);
    }
}
