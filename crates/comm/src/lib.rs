//! # psvd-comm
//!
//! In-process message-passing substrate standing in for MPI (Rust MPI
//! bindings being thin, per the reproduction plan in `DESIGN.md`). A
//! [`World`] spawns one thread per rank; each thread drives an SPMD closure
//! through a [`Communicator`] offering the exact operations the paper's
//! listings use (`gather`, `bcast`, `send`, `recv`), plus:
//!
//! - **traffic recording** ([`TrafficStats`]): every message's byte volume is
//!   counted per rank, so benchmarks can report real communication volumes;
//! - **simulated clocks** ([`NetworkModel`]): per-rank clocks charged with an
//!   alpha–beta–overhead cost per message, which lets the weak-scaling
//!   harness model Theta-scale runs from a single host;
//! - **deterministic fault injection** ([`FaultComm`] replaying a seeded
//!   [`FaultPlan`]): drops, delay-reorders, payload corruption and rank
//!   death, recovered by a bounded-backoff [`RetryPolicy`] or surfaced as
//!   [`CommError`] through the fallible `try_*` operations.
//!
//! ```
//! use psvd_comm::{Communicator, World};
//!
//! let world = World::new(4);
//! let sums = world.run(|comm| comm.allreduce_sum(vec![comm.rank() as f64]));
//! assert!(sums.iter().all(|v| v == &vec![6.0]));
//! ```

pub mod collectives;
pub mod communicator;
pub mod error;
pub mod fault;
pub mod model;
pub mod payload;
pub mod stats;
pub mod thread_comm;

pub use collectives::{
    tree_allgather, tree_allreduce_sum, tree_bcast, tree_gather, try_tree_allgather,
    try_tree_allreduce_sum, try_tree_bcast, try_tree_gather,
};
pub use communicator::{Communicator, SelfComm};
pub use error::{CommError, CorruptionKind};
pub use fault::{FaultComm, FaultEntry, FaultKind, FaultPlan, FaultStats, RankDeath, RetryPolicy};
pub use model::NetworkModel;
pub use payload::Payload;
pub use stats::TrafficStats;
pub use thread_comm::{ThreadComm, World};
