//! Alpha–beta network cost model for simulated time.
//!
//! The host running this reproduction cannot stand in for 256 Theta nodes,
//! so the weak-scaling experiment (Figure 1c) runs the *real* algorithm over
//! the in-process substrate and charges each message with a classic
//! `alpha + bytes/bandwidth` cost on a per-rank simulated clock. Per-message
//! endpoint `overhead` models CPU time at the sender/receiver, which is what
//! makes the rank-0 gather concentration visible in the simulated timings.

/// Per-message cost parameters, all in seconds (and bytes/second).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Wire latency per message (alpha).
    pub latency: f64,
    /// Bandwidth in bytes per second (1/beta).
    pub bandwidth: f64,
    /// CPU overhead charged at each endpoint per message (LogP `o`).
    pub overhead: f64,
}

impl NetworkModel {
    /// Time on the wire for one message of `bytes`.
    pub fn transit_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Parameters in the ballpark of Theta's Cray Aries dragonfly fabric:
    /// ~1.2 us MPI latency, ~8 GB/s per-node injection bandwidth, ~0.5 us
    /// per-message CPU overhead.
    pub fn theta_aries() -> Self {
        Self { latency: 1.2e-6, bandwidth: 8e9, overhead: 0.5e-6 }
    }

    /// A deliberately slow network (10 us / 100 MB/s) for tests and for
    /// making communication effects visible at small scale.
    pub fn slow_ethernet() -> Self {
        Self { latency: 10e-6, bandwidth: 100e6, overhead: 2e-6 }
    }

    /// A zero-cost network: simulated clocks only advance through
    /// explicitly charged compute.
    pub fn free() -> Self {
        Self { latency: 0.0, bandwidth: f64::INFINITY, overhead: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transit_time_combines_terms() {
        let m = NetworkModel { latency: 1e-6, bandwidth: 1e9, overhead: 0.0 };
        // 1000 bytes at 1 GB/s = 1 us; plus 1 us latency.
        assert!((m.transit_time(1000) - 2e-6).abs() < 1e-12);
    }

    #[test]
    fn free_network_is_free() {
        let m = NetworkModel::free();
        assert_eq!(m.transit_time(1 << 30), 0.0);
    }

    #[test]
    fn theta_faster_than_ethernet() {
        let bytes = 1 << 20;
        assert!(
            NetworkModel::theta_aries().transit_time(bytes)
                < NetworkModel::slow_ethernet().transit_time(bytes)
        );
    }
}
