//! Message payloads.
//!
//! Every value that travels between ranks implements [`Payload`], which the
//! traffic recorder uses to charge byte volumes (the sizes a real MPI
//! implementation would put on the wire for contiguous element buffers).
//! Matrix payloads are dtype-aware: an `f32` matrix is charged exactly
//! half the data bytes of its `f64` counterpart (`size_of::<T>()` per
//! element) — this is the accounting behind the mixed-precision mode's
//! ~2x wire reduction.

use psvd_linalg::{Matrix, Scalar};

/// A value that can be shipped between ranks.
pub trait Payload: Send + 'static {
    /// Wire size in bytes (payload only, headers excluded).
    fn byte_len(&self) -> usize;
}

impl Payload for () {
    fn byte_len(&self) -> usize {
        0
    }
}

impl Payload for f64 {
    fn byte_len(&self) -> usize {
        8
    }
}

impl Payload for f32 {
    fn byte_len(&self) -> usize {
        4
    }
}

impl Payload for u64 {
    fn byte_len(&self) -> usize {
        8
    }
}

impl Payload for usize {
    fn byte_len(&self) -> usize {
        8
    }
}

impl Payload for bool {
    fn byte_len(&self) -> usize {
        1
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn byte_len(&self) -> usize {
        self.iter().map(Payload::byte_len).sum()
    }
}

impl<T: Scalar> Payload for Matrix<T> {
    fn byte_len(&self) -> usize {
        // Dims header + contiguous data, as an MPI derived type would ship.
        16 + std::mem::size_of::<T>() * self.rows() * self.cols()
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn byte_len(&self) -> usize {
        self.0.byte_len() + self.1.byte_len()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn byte_len(&self) -> usize {
        self.0.byte_len() + self.1.byte_len() + self.2.byte_len()
    }
}

impl<T: Payload> Payload for Option<T> {
    fn byte_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Payload::byte_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(().byte_len(), 0);
        assert_eq!(1.5f64.byte_len(), 8);
        assert_eq!(3usize.byte_len(), 8);
        assert_eq!(true.byte_len(), 1);
    }

    #[test]
    fn vector_and_matrix_sizes() {
        assert_eq!(vec![0.0f64; 10].byte_len(), 80);
        assert_eq!(Matrix::<f64>::zeros(3, 4).byte_len(), 16 + 96);
    }

    #[test]
    fn matrix_wire_size_is_dtype_aware() {
        // f32 data bytes are exactly half of f64's for the same shape;
        // only the 16-byte dims header is dtype-independent.
        let wide = Matrix::<f64>::zeros(7, 9);
        let narrow = Matrix::<f32>::zeros(7, 9);
        assert_eq!(wide.byte_len(), 16 + 8 * 63);
        assert_eq!(narrow.byte_len(), 16 + 4 * 63);
        assert_eq!(narrow.byte_len() - 16, (wide.byte_len() - 16) / 2);
        assert_eq!(1.0f32.byte_len(), 4);
        assert_eq!(vec![0.0f32; 10].byte_len(), 40);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1.0f64, vec![0.0f64; 2]).byte_len(), 24);
        assert_eq!(Some(2.0f64).byte_len(), 9);
        assert_eq!(None::<f64>.byte_len(), 1);
    }
}
