//! Traffic recording.
//!
//! Every point-to-point message is recorded per sending and receiving rank.
//! The weak-scaling harness (Figure 1c) reads these counters to charge the
//! alpha–beta network model, and the truncation ablation reports them as the
//! communication-volume axis.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-rank message/byte counters, shared across all ranks of a world.
#[derive(Debug)]
pub struct TrafficStats {
    sent_messages: Vec<AtomicU64>,
    sent_bytes: Vec<AtomicU64>,
    recv_messages: Vec<AtomicU64>,
    recv_bytes: Vec<AtomicU64>,
    alloc_count: Vec<AtomicU64>,
    alloc_bytes: Vec<AtomicU64>,
}

impl TrafficStats {
    /// Fresh counters for a world of `size` ranks.
    pub fn new(size: usize) -> Self {
        let mk = || (0..size).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        Self {
            sent_messages: mk(),
            sent_bytes: mk(),
            recv_messages: mk(),
            recv_bytes: mk(),
            alloc_count: mk(),
            alloc_bytes: mk(),
        }
    }

    /// Number of ranks the counters cover.
    pub fn size(&self) -> usize {
        self.sent_messages.len()
    }

    pub(crate) fn record_send(&self, rank: usize, bytes: usize) {
        self.sent_messages[rank].fetch_add(1, Ordering::Relaxed);
        self.sent_bytes[rank].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_recv(&self, rank: usize, bytes: usize) {
        self.recv_messages[rank].fetch_add(1, Ordering::Relaxed);
        self.recv_bytes[rank].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_payload_alloc(&self, rank: usize, bytes: usize) {
        self.alloc_count[rank].fetch_add(1, Ordering::Relaxed);
        self.alloc_bytes[rank].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Messages sent by `rank`.
    pub fn sent_messages(&self, rank: usize) -> u64 {
        self.sent_messages[rank].load(Ordering::Relaxed)
    }

    /// Bytes sent by `rank`.
    pub fn sent_bytes(&self, rank: usize) -> u64 {
        self.sent_bytes[rank].load(Ordering::Relaxed)
    }

    /// Messages received by `rank`.
    pub fn recv_messages(&self, rank: usize) -> u64 {
        self.recv_messages[rank].load(Ordering::Relaxed)
    }

    /// Bytes received by `rank`.
    pub fn recv_bytes(&self, rank: usize) -> u64 {
        self.recv_bytes[rank].load(Ordering::Relaxed)
    }

    /// Payload copies materialized by collectives at `rank` (fan-out
    /// clones a broadcast root makes, and similar).
    pub fn alloc_count(&self, rank: usize) -> u64 {
        self.alloc_count[rank].load(Ordering::Relaxed)
    }

    /// Bytes of payload copies materialized by collectives at `rank`.
    pub fn alloc_bytes(&self, rank: usize) -> u64 {
        self.alloc_bytes[rank].load(Ordering::Relaxed)
    }

    /// Total payload copies across all ranks.
    pub fn total_alloc_count(&self) -> u64 {
        self.alloc_count.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total bytes of payload copies across all ranks.
    pub fn total_alloc_bytes(&self) -> u64 {
        self.alloc_bytes.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total messages across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.sent_messages.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total bytes across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The largest per-rank (messages, bytes) send load — the bottleneck
    /// rank's traffic, which dominates simulated time at rank 0 for
    /// gather/broadcast-heavy algorithms like APMOS.
    pub fn max_rank_load(&self) -> (u64, u64) {
        let m = self.sent_messages.iter().map(|c| c.load(Ordering::Relaxed)).max().unwrap_or(0);
        let b = self.sent_bytes.iter().map(|c| c.load(Ordering::Relaxed)).max().unwrap_or(0);
        (m, b)
    }

    /// Reset all counters.
    pub fn reset(&self) {
        for v in [
            &self.sent_messages,
            &self.sent_bytes,
            &self.recv_messages,
            &self.recv_bytes,
            &self.alloc_count,
            &self.alloc_bytes,
        ] {
            for c in v {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = TrafficStats::new(2);
        s.record_send(0, 100);
        s.record_send(0, 50);
        s.record_recv(1, 150);
        assert_eq!(s.sent_messages(0), 2);
        assert_eq!(s.sent_bytes(0), 150);
        assert_eq!(s.recv_messages(1), 1);
        assert_eq!(s.recv_bytes(1), 150);
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_bytes(), 150);
    }

    #[test]
    fn reset_clears() {
        let s = TrafficStats::new(1);
        s.record_send(0, 10);
        s.record_payload_alloc(0, 64);
        s.reset();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.recv_messages(0), 0);
        assert_eq!(s.total_alloc_count(), 0);
        assert_eq!(s.total_alloc_bytes(), 0);
    }

    #[test]
    fn payload_allocs_tracked_per_rank() {
        let s = TrafficStats::new(2);
        s.record_payload_alloc(0, 100);
        s.record_payload_alloc(0, 40);
        s.record_payload_alloc(1, 7);
        assert_eq!(s.alloc_count(0), 2);
        assert_eq!(s.alloc_bytes(0), 140);
        assert_eq!(s.alloc_count(1), 1);
        assert_eq!(s.total_alloc_count(), 3);
        assert_eq!(s.total_alloc_bytes(), 147);
    }

    #[test]
    fn max_rank_load_finds_bottleneck() {
        let s = TrafficStats::new(3);
        s.record_send(0, 10);
        s.record_send(1, 100);
        s.record_send(1, 100);
        assert_eq!(s.max_rank_load(), (2, 200));
    }
}
