//! Multi-rank in-process world: one OS thread per rank, crossbeam channels
//! as the fabric, per-message traffic recording, and optional simulated
//! clocks driven by a [`NetworkModel`].

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::communicator::{Communicator, COLLECTIVE_TAG_BASE};
use crate::model::NetworkModel;
use crate::payload::Payload;
use crate::stats::TrafficStats;

struct Envelope {
    src: usize,
    tag: u64,
    bytes: usize,
    /// Sender's simulated clock at departure.
    depart: f64,
    payload: Box<dyn Any + Send>,
}

/// The per-rank endpoint of a [`World`]: owns its single inbox and a shared
/// table of senders toward every peer. Not `Sync` — each rank thread owns
/// exactly one.
///
/// The fabric is one MPMC inbox channel per rank (envelopes carry their
/// source), not a `P x P` channel matrix: worlds of thousands of simulated
/// ranks — the regime the merge-tree weak-scaling sweep probes — cost
/// `O(P)` channels and `O(P)` sender handles total instead of `O(P^2)`.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    /// senders[dst]: channel into rank `dst`'s inbox, shared by all ranks.
    senders: Arc<Vec<Sender<Envelope>>>,
    /// Our inbox for messages from every peer.
    inbox: Receiver<Envelope>,
    /// Buffered envelopes whose `(source, tag)` nobody has asked for yet.
    pending: RefCell<VecDeque<Envelope>>,
    stats: Arc<TrafficStats>,
    model: Option<NetworkModel>,
    clock: Cell<f64>,
    coll_seq: Cell<u64>,
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send<T: Payload>(&self, value: T, dest: usize, tag: u64) {
        assert!(dest < self.size, "send: destination {dest} out of range");
        let bytes = value.byte_len();
        self.stats.record_send(self.rank, bytes);
        if let Some(m) = &self.model {
            // Sender CPU overhead per message.
            self.clock.set(self.clock.get() + m.overhead);
        }
        let env = Envelope {
            src: self.rank,
            tag,
            bytes,
            depart: self.clock.get(),
            payload: Box::new(value),
        };
        self.senders[dest].send(env).expect("send: peer world torn down");
    }

    fn recv<T: Payload>(&self, source: usize, tag: u64) -> T {
        assert!(source < self.size, "recv: source {source} out of range");
        let env = self.wait_for(source, tag);
        self.stats.record_recv(self.rank, env.bytes);
        if let Some(m) = &self.model {
            let arrival = env.depart + m.transit_time(env.bytes);
            // Receiver waits for arrival, then pays per-message CPU overhead.
            self.clock.set(self.clock.get().max(arrival) + m.overhead);
        }
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!("recv: payload type mismatch from rank {source} tag {tag} at rank {}", self.rank)
        })
    }

    fn next_collective_tag(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        COLLECTIVE_TAG_BASE + s
    }

    fn record_payload_alloc(&self, bytes: usize) {
        self.stats.record_payload_alloc(self.rank, bytes);
    }

    fn now(&self) -> f64 {
        self.clock.get()
    }

    fn advance(&self, secs: f64) {
        debug_assert!(secs >= 0.0, "advance: negative time");
        self.clock.set(self.clock.get() + secs);
    }

    fn set_now(&self, t: f64) {
        if t > self.clock.get() {
            self.clock.set(t);
        }
    }
}

impl ThreadComm {
    fn wait_for(&self, source: usize, tag: u64) -> Envelope {
        // First drain anything already buffered for this (source, tag).
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|e| e.src == source && e.tag == tag) {
                return pending.remove(pos).expect("position was valid");
            }
        }
        loop {
            let env = self
                .inbox
                .recv()
                .unwrap_or_else(|_| panic!("recv: world torn down under rank {}", self.rank));
            if env.src == source && env.tag == tag {
                return env;
            }
            self.pending.borrow_mut().push_back(env);
        }
    }

    /// Charge the simulated clock for `flops` floating point operations at
    /// `flops_per_sec` (the drivers know the flop counts of their kernels).
    pub fn charge_flops(&self, flops: f64, flops_per_sec: f64) {
        if flops_per_sec > 0.0 {
            self.advance(flops / flops_per_sec);
        }
    }
}

/// A fixed-size world from which rank closures are spawned.
pub struct World {
    size: usize,
    stats: Arc<TrafficStats>,
    model: Option<NetworkModel>,
}

impl World {
    /// A world of `size` ranks without a network model (clocks stay at 0).
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world must have at least one rank");
        Self { size, stats: Arc::new(TrafficStats::new(size)), model: None }
    }

    /// A world of `size` ranks whose simulated clocks follow `model`.
    pub fn with_model(size: usize, model: NetworkModel) -> Self {
        assert!(size > 0, "world must have at least one rank");
        Self { size, stats: Arc::new(TrafficStats::new(size)), model: Some(model) }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic counters, valid after (and during) `run`.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Run the SPMD closure on every rank, returning results in rank order.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&ThreadComm) -> R + Sync,
        R: Send,
    {
        self.run_with_clocks(f).0
    }

    /// As [`World::run`], additionally returning each rank's final simulated
    /// clock (seconds). The weak-scaling harness reports `max(clocks)`.
    pub fn run_with_clocks<F, R>(&self, f: F) -> (Vec<R>, Vec<f64>)
    where
        F: Fn(&ThreadComm) -> R + Sync,
        R: Send,
    {
        let size = self.size;
        // One inbox per rank; every rank shares the sender table. Envelopes
        // carry their source, so the matching logic is unchanged while the
        // fabric stays O(P) — thousand-rank simulated worlds are cheap.
        let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(size);
        let mut inboxes: Vec<Receiver<Envelope>> = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            inboxes.push(rx);
        }
        let senders = Arc::new(senders);

        let mut comms: Vec<ThreadComm> = Vec::with_capacity(size);
        for (rank, inbox) in inboxes.into_iter().enumerate() {
            comms.push(ThreadComm {
                rank,
                size,
                senders: Arc::clone(&senders),
                inbox,
                pending: RefCell::new(VecDeque::new()),
                stats: Arc::clone(&self.stats),
                model: self.model,
                clock: Cell::new(0.0),
                coll_seq: Cell::new(0),
            });
        }
        drop(senders);

        let f = &f;
        // Tell the linalg worker pool how many rank threads are live so its
        // automatic thread count shares the machine instead of
        // oversubscribing (each rank gets ~available_parallelism / size
        // GEMM threads). This is a best-effort global heuristic: worlds
        // running concurrently overwrite each other's registration, which
        // only shifts the performance split, never results.
        psvd_linalg::par::set_comm_ranks(size);
        // Large simulated worlds spawn thousands of mostly-blocked threads;
        // a trimmed stack keeps the reservation footprint proportional to
        // the world size instead of the default 8 MB per thread. 2 MB is
        // still generous for the rank closures (deep recursion lives in the
        // linalg pool, not here).
        let stack = if size > 64 { 512 * 1024 } else { 2 * 1024 * 1024 };
        let mut out: Vec<Option<(R, f64)>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    std::thread::Builder::new()
                        .stack_size(stack)
                        .spawn_scoped(scope, move || {
                            let r = f(&comm);
                            (r, comm.now())
                        })
                        .expect("spawn rank thread")
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("rank thread panicked"));
            }
        });
        psvd_linalg::par::set_comm_ranks(1);
        let (results, clocks): (Vec<R>, Vec<f64>) =
            out.into_iter().map(|s| s.expect("rank result missing")).unzip();
        (results, clocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_have_identity() {
        let w = World::new(4);
        let ids = w.run(|c| (c.rank(), c.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_ring() {
        let w = World::new(3);
        let sums = w.run(|c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(c.rank() as f64, next, 1);
            let from_prev: f64 = c.recv(prev, 1);
            from_prev
        });
        assert_eq!(sums, vec![2.0, 0.0, 1.0]);
    }

    #[test]
    fn out_of_order_tags_buffered() {
        let w = World::new(2);
        let got = w.run(|c| {
            if c.rank() == 0 {
                c.send(1.0f64, 1, 10);
                c.send(2.0f64, 1, 20);
                Vec::new()
            } else {
                // Receive in reverse tag order.
                let b: f64 = c.recv(0, 20);
                let a: f64 = c.recv(0, 10);
                vec![a, b]
            }
        });
        assert_eq!(got[1], vec![1.0, 2.0]);
    }

    #[test]
    fn gather_orders_by_rank() {
        let w = World::new(4);
        let out = w.run(|c| c.gather(c.rank() as f64 * 10.0, 0));
        assert_eq!(out[0], Some(vec![0.0, 10.0, 20.0, 30.0]));
        assert!(out[1..].iter().all(Option::is_none));
    }

    #[test]
    fn gather_at_nonzero_root() {
        let w = World::new(3);
        let out = w.run(|c| c.gather(c.rank(), 2));
        assert_eq!(out[2], Some(vec![0, 1, 2]));
        assert!(out[0].is_none() && out[1].is_none());
    }

    #[test]
    fn bcast_from_root() {
        let w = World::new(4);
        let out = w.run(|c| {
            let v = if c.rank() == 1 { Some(vec![3.0, 4.0]) } else { None };
            c.bcast(v, 1)
        });
        for v in out {
            assert_eq!(v, vec![3.0, 4.0]);
        }
    }

    #[test]
    fn scatter_distributes() {
        let w = World::new(3);
        let out = w.run(|c| {
            let v = if c.rank() == 0 {
                Some(vec![vec![0.0], vec![1.0, 1.0], vec![2.0, 2.0, 2.0]])
            } else {
                None
            };
            c.scatter(v, 0)
        });
        assert_eq!(out[0], vec![0.0]);
        assert_eq!(out[1], vec![1.0, 1.0]);
        assert_eq!(out[2], vec![2.0; 3]);
    }

    #[test]
    fn allgather_everywhere() {
        let w = World::new(3);
        let out = w.run(|c| c.allgather(c.rank() as f64));
        for v in out {
            assert_eq!(v, vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn allreduce_sum_correct() {
        let w = World::new(4);
        let out = w.run(|c| c.allreduce_sum(vec![c.rank() as f64, 1.0]));
        for v in out {
            assert_eq!(v, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn gather_moves_root_contribution_without_copy() {
        // gather and scatter move payloads; only bcast's fan-out clones
        // should show up in the allocation ledger.
        let w = World::new(4);
        w.run(|c| {
            let g = c.gather(vec![0.0f64; 50], 0);
            let _ = c.scatter(g, 0);
        });
        assert_eq!(w.stats().total_alloc_count(), 0);
        assert_eq!(w.stats().total_alloc_bytes(), 0);
    }

    #[test]
    fn bcast_allocs_charged_to_root() {
        let w = World::new(4);
        w.run(|c| {
            let v = if c.rank() == 1 { Some(vec![0.0f64; 100]) } else { None };
            c.bcast(v, 1);
        });
        // Root clones once per non-root destination.
        assert_eq!(w.stats().alloc_count(1), 3);
        assert_eq!(w.stats().alloc_bytes(1), 3 * 800);
        for r in [0, 2, 3] {
            assert_eq!(w.stats().alloc_count(r), 0);
        }
    }

    #[test]
    fn stats_count_messages() {
        let w = World::new(2);
        w.run(|c| {
            if c.rank() == 0 {
                c.send(vec![0.0f64; 100], 1, 1);
            } else {
                let _: Vec<f64> = c.recv(0, 1);
            }
        });
        assert_eq!(w.stats().sent_messages(0), 1);
        assert_eq!(w.stats().sent_bytes(0), 800);
        assert_eq!(w.stats().recv_bytes(1), 800);
        assert_eq!(w.stats().total_messages(), 1);
    }

    #[test]
    fn simulated_clock_charges_transit() {
        let model = NetworkModel { latency: 1e-3, bandwidth: 1e6, overhead: 0.0 };
        let w = World::with_model(2, model);
        let (_, clocks) = w.run_with_clocks(|c| {
            if c.rank() == 0 {
                c.send(vec![0.0f64; 125], 1, 1); // 1000 bytes -> 1 ms transit
            } else {
                let _: Vec<f64> = c.recv(0, 1);
            }
        });
        // Receiver clock = latency + bytes/bw = 1 ms + 1 ms = 2 ms.
        assert!((clocks[1] - 2e-3).abs() < 1e-12, "clock {}", clocks[1]);
        assert_eq!(clocks[0], 0.0);
    }

    #[test]
    fn overhead_charges_rank0_gather_bottleneck() {
        let model = NetworkModel { latency: 0.0, bandwidth: f64::INFINITY, overhead: 1e-6 };
        let size = 8;
        let w = World::with_model(size, model);
        let (_, clocks) = w.run_with_clocks(|c| {
            c.gather(0.0f64, 0);
        });
        // Root pays (size-1) per-message receive overheads on top of the
        // first sender's departure overhead (arrival = 1 us): size total.
        assert!((clocks[0] - size as f64 * 1e-6).abs() < 1e-15, "root {}", clocks[0]);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let w = World::with_model(3, NetworkModel::free());
        let (_, clocks) = w.run_with_clocks(|c| {
            c.advance(c.rank() as f64); // rank r has clock r
            c.barrier();
            assert!(c.now() >= 2.0, "clock after barrier {}", c.now());
        });
        for t in clocks {
            assert!(t >= 2.0);
        }
    }

    #[test]
    fn compute_charging() {
        let w = World::with_model(1, NetworkModel::free());
        let (_, clocks) = w.run_with_clocks(|c| {
            c.charge_flops(2e9, 1e9); // 2 gigaflops at 1 GF/s = 2 s
        });
        assert!((clocks[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_payload_roundtrip() {
        use psvd_linalg::Matrix;
        let w = World::new(2);
        let out = w.run(|c| {
            if c.rank() == 0 {
                c.send(Matrix::from_fn(3, 2, |i, j| (i + j) as f64), 1, 5);
                Matrix::zeros(0, 0)
            } else {
                c.recv::<Matrix>(0, 5)
            }
        });
        assert_eq!(out[1], Matrix::from_fn(3, 2, |i, j| (i + j) as f64));
    }

    #[test]
    fn large_world_smoke() {
        let w = World::new(16);
        let out = w.run(|c| c.allreduce_sum(vec![1.0]));
        for v in out {
            assert_eq!(v, vec![16.0]);
        }
    }
}
