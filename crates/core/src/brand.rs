//! Brand's incremental SVD — a baseline streaming algorithm.
//!
//! Matthew Brand's rank-K update (used by the recommender-system literature
//! the paper cites, e.g. Sarwar et al.) maintains the thin factorization
//! and absorbs a batch `C` by factorizing only the *residual* of `C`
//! against the current basis:
//!
//! ```text
//! L = Uᵀ C                (projection, K x B)
//! H = C − U L             (residual)
//! H = J R                 (thin QR, J: M x B)
//! Q = [ ff·diag(S)  L ]   ((K+B) x (K+B))
//!     [     0       R ]
//! Q = U' S' V'ᵀ           (small SVD)
//! U ← [U  J] U'           (truncate to K)
//! ```
//!
//! Versus Levy–Lindenbaum (which re-QRs the full `M x (K+B)` stack), Brand
//! QRs only the `M x B` residual — cheaper per update (`O(MKB + MB²)` vs
//! `O(M(K+B)²)`) at the cost of relying on `U` staying numerically
//! orthonormal across updates. The `ablation_baselines` bench quantifies
//! both sides; this implementation re-orthonormalizes `U` every
//! `REORTH_EVERY` updates to bound drift.

use psvd_linalg::gemm::{matmul_into, matmul_tn_into};
use psvd_linalg::qr::qr_thin_into;
use psvd_linalg::svd::svd_with;
use psvd_linalg::workspace::{Workspace, WorkspaceStats};
use psvd_linalg::Matrix;

use crate::config::SvdConfig;

/// Re-orthonormalize the basis every this many updates.
const REORTH_EVERY: usize = 32;

/// Brand-style incremental truncated SVD.
///
/// As with the Levy–Lindenbaum drivers, the per-update temporaries — the
/// projection, residual, its QR factors, the stacked basis and the next
/// mode matrix — live in per-instance buffers, so steady-state updates
/// allocate only the small `O((K+B)²)` core SVD factors.
pub struct BrandIncrementalSvd {
    cfg: SvdConfig,
    modes: Matrix,
    singular_values: Vec<f64>,
    iteration: usize,
    snapshots_seen: usize,
    /// Scratch arena feeding the QR kernel.
    ws: Workspace,
    /// Projection `L = Uᵀ C` and its second-pass correction.
    proj: Matrix,
    proj2: Matrix,
    /// Residual `H = C − U L` and the re-projection product `U L₂`.
    resid: Matrix,
    corr: Matrix,
    /// Thin-QR factors of the residual (reused by the re-orth pass).
    jq: Matrix,
    jr: Matrix,
    /// Kept residual directions and the stacked `[U | J]` basis.
    jkeep: Matrix,
    basis: Matrix,
    /// Small core matrix the update SVDs.
    qcore: Matrix,
    /// Buffer the next mode matrix is formed in before swapping in.
    next_modes: Matrix,
}

impl BrandIncrementalSvd {
    /// New tracker; feed the first batch to `initialize`.
    pub fn new(cfg: SvdConfig) -> Self {
        let cfg = cfg.validated();
        Self {
            cfg,
            modes: Matrix::zeros(0, 0),
            singular_values: Vec::new(),
            iteration: 0,
            snapshots_seen: 0,
            ws: Workspace::new(),
            proj: Matrix::zeros(0, 0),
            proj2: Matrix::zeros(0, 0),
            resid: Matrix::zeros(0, 0),
            corr: Matrix::zeros(0, 0),
            jq: Matrix::zeros(0, 0),
            jr: Matrix::zeros(0, 0),
            jkeep: Matrix::zeros(0, 0),
            basis: Matrix::zeros(0, 0),
            qcore: Matrix::zeros(0, 0),
            next_modes: Matrix::zeros(0, 0),
        }
    }

    /// True once initialized.
    pub fn is_initialized(&self) -> bool {
        self.snapshots_seen > 0
    }

    /// Current modes (`M x K`).
    pub fn modes(&self) -> &Matrix {
        &self.modes
    }

    /// Current singular values.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Updates performed (excluding init).
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Snapshots ingested.
    pub fn snapshots_seen(&self) -> usize {
        self.snapshots_seen
    }

    /// Allocation accounting for the internal scratch arena (see
    /// [`crate::serial::SerialStreamingSvd::scratch_stats`]).
    pub fn scratch_stats(&self) -> WorkspaceStats {
        self.ws.stats()
    }

    /// Reset the scratch-arena counters.
    pub fn reset_scratch_stats(&mut self) {
        self.ws.reset_stats();
    }

    /// Ingest the first batch (thin SVD of it).
    pub fn initialize(&mut self, a0: &Matrix) -> &mut Self {
        assert!(!self.is_initialized(), "initialize called twice");
        assert!(a0.cols() > 0, "first batch is empty");
        let f = svd_with(a0, self.cfg.method);
        let k = self.cfg.k.min(f.s.len());
        self.modes = f.u.first_columns(k);
        self.singular_values = f.s[..k].to_vec();
        self.snapshots_seen = a0.cols();
        self
    }

    /// Ingest one batch by the Brand update.
    pub fn incorporate_data(&mut self, c: &Matrix) -> &mut Self {
        assert!(self.is_initialized(), "incorporate_data before initialize");
        assert_eq!(c.rows(), self.modes.rows(), "batch row count changed mid-stream");
        if c.cols() == 0 {
            return self;
        }
        self.iteration += 1;
        let k = self.modes.cols();
        let b = c.cols();
        let m = self.modes.rows();

        // Projection and residual, all in persistent buffers. The
        // projection is applied twice ("twice is enough"): a single pass
        // leaves an O(eps·kappa) component of C in span(U) inside H, which
        // the QR would then amplify into spurious basis directions.
        matmul_tn_into(self.modes.view(), c.view(), &mut self.proj); // K x B
        matmul_into(self.modes.view(), self.proj.view(), &mut self.resid);
        for i in 0..m {
            for (r, &x) in self.resid.row_mut(i).iter_mut().zip(c.row(i)) {
                *r = x - *r; // H = C − U L
            }
        }
        matmul_tn_into(self.modes.view(), self.resid.view(), &mut self.proj2);
        matmul_into(self.modes.view(), self.proj2.view(), &mut self.corr);
        for i in 0..m {
            for (r, &x) in self.resid.row_mut(i).iter_mut().zip(self.corr.row(i)) {
                *r -= x;
            }
        }
        for i in 0..k {
            for (l, &l2) in self.proj.row_mut(i).iter_mut().zip(self.proj2.row(i)) {
                *l += l2;
            }
        }
        // Orthogonalize the residual block; wide batches ride the blocked
        // compact-WY QR path and its packed-GEMM trailing updates (see
        // `PSVD_QR_BLOCK` in DESIGN.md).
        qr_thin_into(self.resid.view(), &mut self.jq, &mut self.jr, &mut self.ws);

        // Keep only residual directions that carry real energy: when a
        // batch lies (numerically) inside span(U), the QR of the ~zero
        // residual produces arbitrary directions NOT orthogonal to U, and
        // absorbing them would corrupt the factorization. Threshold on the
        // canonical (non-negative) R diagonal.
        let scale = self.singular_values.first().copied().unwrap_or(0.0).max(c.frobenius_norm());
        let tol = 1e-10 * scale.max(f64::MIN_POSITIVE);
        let keep: Vec<usize> = (0..b).filter(|&j| self.jr[(j, j)] > tol).collect();
        let kept = keep.len();
        self.jkeep.reshape_for_overwrite(m, kept);
        for i in 0..m {
            for (jj, &jcol) in keep.iter().enumerate() {
                self.jkeep[(i, jj)] = self.jq[(i, jcol)];
            }
        }

        // Small core matrix Q: (k + kept) x (k + b).
        let ff = self.cfg.forget_factor;
        self.qcore.reshape_zeroed(k + kept, k + b);
        for i in 0..k {
            self.qcore[(i, i)] = ff * self.singular_values[i];
        }
        for i in 0..k {
            for j in 0..b {
                self.qcore[(i, k + j)] = self.proj[(i, j)];
            }
        }
        for (row, &i) in keep.iter().enumerate() {
            for j in 0..b {
                self.qcore[(k + row, k + j)] = self.jr[(i, j)];
            }
        }

        let f = svd_with(&self.qcore, self.cfg.method);
        let k_new = self.cfg.k.min(f.s.len());

        // U <- [U J_keep] U'[:, :k_new].
        self.modes.hstack_into(&self.jkeep, &mut self.basis); // M x (K+kept)
        matmul_into(self.basis.view(), f.u.block(0, f.u.rows(), 0, k_new), &mut self.next_modes);
        std::mem::swap(&mut self.modes, &mut self.next_modes);
        self.singular_values.clear();
        self.singular_values.extend_from_slice(&f.s[..k_new]);
        self.snapshots_seen += b;

        // Periodic re-orthonormalization bounds drift of the long product.
        if self.iteration.is_multiple_of(REORTH_EVERY) {
            qr_thin_into(self.modes.view(), &mut self.jq, &mut self.jr, &mut self.ws);
            // Fold the (near-identity) R back into the singular values via
            // an SVD of R·diag(S), scaling R's columns in place.
            for i in 0..self.jr.rows() {
                for (x, &s) in self.jr.row_mut(i).iter_mut().zip(&self.singular_values) {
                    *x *= s;
                }
            }
            let f = svd_with(&self.jr, self.cfg.method);
            matmul_into(self.jq.view(), f.u.view(), &mut self.next_modes);
            std::mem::swap(&mut self.modes, &mut self.next_modes);
            self.singular_values = f.s;
        }
        self
    }

    /// Stream a whole matrix in `batch`-column chunks.
    pub fn fit_batched(&mut self, data: &Matrix, batch: usize) -> &mut Self {
        assert!(batch > 0, "batch size must be positive");
        let n = data.cols();
        let mut c0 = 0;
        while c0 < n {
            let c1 = (c0 + batch).min(n);
            let chunk = data.submatrix(0, data.rows(), c0, c1);
            if self.is_initialized() {
                self.incorporate_data(&chunk);
            } else {
                self.initialize(&chunk);
            }
            c0 = c1;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{batch_truncated_svd, SerialStreamingSvd};
    use psvd_linalg::norms::orthogonality_error;
    use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
    use psvd_linalg::validate::{max_principal_angle, spectrum_error};

    fn decaying(m: usize, n: usize, seed: u64) -> Matrix {
        let spec: Vec<f64> = (0..n.min(m)).map(|i| 6.0 * 0.7f64.powi(i as i32)).collect();
        matrix_with_spectrum(m, n, &spec, &mut seeded_rng(seed))
    }

    #[test]
    fn exact_on_low_rank_stream() {
        let mut rng = seeded_rng(1);
        let a = matrix_with_spectrum(60, 32, &[5.0, 2.0, 1.0], &mut rng);
        let mut b = BrandIncrementalSvd::new(SvdConfig::new(5).with_forget_factor(1.0));
        b.fit_batched(&a, 8);
        let (u_ref, s_ref) = batch_truncated_svd(&a, 3);
        assert!(spectrum_error(&s_ref, &b.singular_values()[..3]) < 1e-8);
        assert!(max_principal_angle(&u_ref, &b.modes().first_columns(3)) < 1e-5);
    }

    #[test]
    fn tracks_batch_svd_on_decaying_spectrum() {
        let a = decaying(80, 40, 2);
        let mut b = BrandIncrementalSvd::new(SvdConfig::new(6).with_forget_factor(1.0));
        b.fit_batched(&a, 10);
        let (_, s_ref) = batch_truncated_svd(&a, 6);
        for (got, want) in b.singular_values()[..3].iter().zip(&s_ref[..3]) {
            assert!((got - want).abs() / want < 0.05, "sigma {got} vs {want}");
        }
    }

    #[test]
    fn agrees_with_levy_lindenbaum() {
        // Same truncation schedule, same data, same ff: the two streaming
        // algorithms are algebraically equivalent and should agree closely.
        let a = decaying(50, 30, 3);
        let cfg = SvdConfig::new(4).with_forget_factor(0.95);
        let mut brand = BrandIncrementalSvd::new(cfg);
        brand.fit_batched(&a, 6);
        let mut ll = SerialStreamingSvd::new(cfg);
        ll.fit_batched(&a, 6);
        assert!(spectrum_error(ll.singular_values(), brand.singular_values()) < 1e-6);
        assert!(max_principal_angle(ll.modes(), brand.modes()) < 1e-4);
    }

    #[test]
    fn basis_stays_orthonormal_over_many_updates() {
        let m = 40;
        let mut b = BrandIncrementalSvd::new(SvdConfig::new(4).with_forget_factor(0.99));
        let mk = |seed: u64| decaying(m, 6, seed);
        b.initialize(&mk(100));
        for i in 0..100 {
            b.incorporate_data(&mk(i));
            assert!(
                orthogonality_error(b.modes()) < 1e-8,
                "drift after {} updates: {}",
                i + 1,
                orthogonality_error(b.modes())
            );
        }
    }

    #[test]
    fn bookkeeping() {
        let a = decaying(30, 17, 4);
        let mut b = BrandIncrementalSvd::new(SvdConfig::new(3));
        b.fit_batched(&a, 5);
        assert_eq!(b.snapshots_seen(), 17);
        assert_eq!(b.iteration(), 3);
    }

    #[test]
    #[should_panic(expected = "before initialize")]
    fn update_before_init_panics() {
        let mut b = BrandIncrementalSvd::new(SvdConfig::new(2));
        b.incorporate_data(&Matrix::identity(4));
    }
}
