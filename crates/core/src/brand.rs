//! Brand's incremental SVD — a baseline streaming algorithm.
//!
//! Matthew Brand's rank-K update (used by the recommender-system literature
//! the paper cites, e.g. Sarwar et al.) maintains the thin factorization
//! and absorbs a batch `C` by factorizing only the *residual* of `C`
//! against the current basis:
//!
//! ```text
//! L = Uᵀ C                (projection, K x B)
//! H = C − U L             (residual)
//! H = J R                 (thin QR, J: M x B)
//! Q = [ ff·diag(S)  L ]   ((K+B) x (K+B))
//!     [     0       R ]
//! Q = U' S' V'ᵀ           (small SVD)
//! U ← [U  J] U'           (truncate to K)
//! ```
//!
//! Versus Levy–Lindenbaum (which re-QRs the full `M x (K+B)` stack), Brand
//! QRs only the `M x B` residual — cheaper per update (`O(MKB + MB²)` vs
//! `O(M(K+B)²)`) at the cost of relying on `U` staying numerically
//! orthonormal across updates. The `ablation_baselines` bench quantifies
//! both sides; this implementation re-orthonormalizes `U` every
//! `REORTH_EVERY` updates to bound drift.

use psvd_linalg::gemm::{matmul, matmul_tn};
use psvd_linalg::qr::thin_qr;
use psvd_linalg::svd::svd_with;
use psvd_linalg::Matrix;

use crate::config::SvdConfig;

/// Re-orthonormalize the basis every this many updates.
const REORTH_EVERY: usize = 32;

/// Brand-style incremental truncated SVD.
pub struct BrandIncrementalSvd {
    cfg: SvdConfig,
    modes: Matrix,
    singular_values: Vec<f64>,
    iteration: usize,
    snapshots_seen: usize,
}

impl BrandIncrementalSvd {
    /// New tracker; feed the first batch to `initialize`.
    pub fn new(cfg: SvdConfig) -> Self {
        let cfg = cfg.validated();
        Self {
            cfg,
            modes: Matrix::zeros(0, 0),
            singular_values: Vec::new(),
            iteration: 0,
            snapshots_seen: 0,
        }
    }

    /// True once initialized.
    pub fn is_initialized(&self) -> bool {
        self.snapshots_seen > 0
    }

    /// Current modes (`M x K`).
    pub fn modes(&self) -> &Matrix {
        &self.modes
    }

    /// Current singular values.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Updates performed (excluding init).
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Snapshots ingested.
    pub fn snapshots_seen(&self) -> usize {
        self.snapshots_seen
    }

    /// Ingest the first batch (thin SVD of it).
    pub fn initialize(&mut self, a0: &Matrix) -> &mut Self {
        assert!(!self.is_initialized(), "initialize called twice");
        assert!(a0.cols() > 0, "first batch is empty");
        let f = svd_with(a0, self.cfg.method);
        let k = self.cfg.k.min(f.s.len());
        self.modes = f.u.first_columns(k);
        self.singular_values = f.s[..k].to_vec();
        self.snapshots_seen = a0.cols();
        self
    }

    /// Ingest one batch by the Brand update.
    pub fn incorporate_data(&mut self, c: &Matrix) -> &mut Self {
        assert!(self.is_initialized(), "incorporate_data before initialize");
        assert_eq!(c.rows(), self.modes.rows(), "batch row count changed mid-stream");
        if c.cols() == 0 {
            return self;
        }
        self.iteration += 1;
        let k = self.modes.cols();
        let b = c.cols();

        // Projection and residual. The projection is applied twice
        // ("twice is enough"): a single pass leaves an O(eps·kappa)
        // component of C in span(U) inside H, which the QR would then
        // amplify into spurious basis directions.
        let mut l = matmul_tn(&self.modes, c); // K x B
        let mut h = c - &matmul(&self.modes, &l);
        let l2 = matmul_tn(&self.modes, &h);
        h = &h - &matmul(&self.modes, &l2);
        for i in 0..k {
            for j in 0..b {
                l[(i, j)] += l2[(i, j)];
            }
        }
        let hqr = thin_qr(&h); // J: M x B, R: B x B

        // Keep only residual directions that carry real energy: when a
        // batch lies (numerically) inside span(U), the QR of the ~zero
        // residual produces arbitrary directions NOT orthogonal to U, and
        // absorbing them would corrupt the factorization. Threshold on the
        // canonical (non-negative) R diagonal.
        let scale = self
            .singular_values
            .first()
            .copied()
            .unwrap_or(0.0)
            .max(c.frobenius_norm());
        let tol = 1e-10 * scale.max(f64::MIN_POSITIVE);
        let keep: Vec<usize> = (0..b).filter(|&j| hqr.r[(j, j)] > tol).collect();
        let j_keep = hqr.q.select_columns(&keep);
        let kept = keep.len();

        // Small core matrix Q: (k + kept) x (k + b).
        let ff = self.cfg.forget_factor;
        let mut q = Matrix::zeros(k + kept, k + b);
        for i in 0..k {
            q[(i, i)] = ff * self.singular_values[i];
        }
        for i in 0..k {
            for j in 0..b {
                q[(i, k + j)] = l[(i, j)];
            }
        }
        for (row, &i) in keep.iter().enumerate() {
            for j in 0..b {
                q[(k + row, k + j)] = hqr.r[(i, j)];
            }
        }

        let f = svd_with(&q, self.cfg.method);
        let k_new = self.cfg.k.min(f.s.len());

        // U <- [U J_keep] U'[:, :k_new].
        let basis = self.modes.hstack(&j_keep); // M x (K+kept)
        self.modes = matmul(&basis, &f.u.first_columns(k_new));
        self.singular_values = f.s[..k_new].to_vec();
        self.snapshots_seen += b;

        // Periodic re-orthonormalization bounds drift of the long product.
        if self.iteration.is_multiple_of(REORTH_EVERY) {
            let qr = thin_qr(&self.modes);
            // Fold the (near-identity) R back into the singular values via
            // an SVD of R·diag(S).
            let rs = qr.r.mul_diag(&self.singular_values);
            let f = svd_with(&rs, self.cfg.method);
            self.modes = matmul(&qr.q, &f.u);
            self.singular_values = f.s;
        }
        self
    }

    /// Stream a whole matrix in `batch`-column chunks.
    pub fn fit_batched(&mut self, data: &Matrix, batch: usize) -> &mut Self {
        assert!(batch > 0, "batch size must be positive");
        let n = data.cols();
        let mut c0 = 0;
        while c0 < n {
            let c1 = (c0 + batch).min(n);
            let chunk = data.submatrix(0, data.rows(), c0, c1);
            if self.is_initialized() {
                self.incorporate_data(&chunk);
            } else {
                self.initialize(&chunk);
            }
            c0 = c1;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{batch_truncated_svd, SerialStreamingSvd};
    use psvd_linalg::norms::orthogonality_error;
    use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
    use psvd_linalg::validate::{max_principal_angle, spectrum_error};

    fn decaying(m: usize, n: usize, seed: u64) -> Matrix {
        let spec: Vec<f64> = (0..n.min(m)).map(|i| 6.0 * 0.7f64.powi(i as i32)).collect();
        matrix_with_spectrum(m, n, &spec, &mut seeded_rng(seed))
    }

    #[test]
    fn exact_on_low_rank_stream() {
        let mut rng = seeded_rng(1);
        let a = matrix_with_spectrum(60, 32, &[5.0, 2.0, 1.0], &mut rng);
        let mut b = BrandIncrementalSvd::new(SvdConfig::new(5).with_forget_factor(1.0));
        b.fit_batched(&a, 8);
        let (u_ref, s_ref) = batch_truncated_svd(&a, 3);
        assert!(spectrum_error(&s_ref, &b.singular_values()[..3]) < 1e-8);
        assert!(max_principal_angle(&u_ref, &b.modes().first_columns(3)) < 1e-5);
    }

    #[test]
    fn tracks_batch_svd_on_decaying_spectrum() {
        let a = decaying(80, 40, 2);
        let mut b = BrandIncrementalSvd::new(SvdConfig::new(6).with_forget_factor(1.0));
        b.fit_batched(&a, 10);
        let (_, s_ref) = batch_truncated_svd(&a, 6);
        for (got, want) in b.singular_values()[..3].iter().zip(&s_ref[..3]) {
            assert!((got - want).abs() / want < 0.05, "sigma {got} vs {want}");
        }
    }

    #[test]
    fn agrees_with_levy_lindenbaum() {
        // Same truncation schedule, same data, same ff: the two streaming
        // algorithms are algebraically equivalent and should agree closely.
        let a = decaying(50, 30, 3);
        let cfg = SvdConfig::new(4).with_forget_factor(0.95);
        let mut brand = BrandIncrementalSvd::new(cfg);
        brand.fit_batched(&a, 6);
        let mut ll = SerialStreamingSvd::new(cfg);
        ll.fit_batched(&a, 6);
        assert!(spectrum_error(ll.singular_values(), brand.singular_values()) < 1e-6);
        assert!(max_principal_angle(ll.modes(), brand.modes()) < 1e-4);
    }

    #[test]
    fn basis_stays_orthonormal_over_many_updates() {
        let m = 40;
        let mut b = BrandIncrementalSvd::new(SvdConfig::new(4).with_forget_factor(0.99));
        let mk = |seed: u64| decaying(m, 6, seed);
        b.initialize(&mk(100));
        for i in 0..100 {
            b.incorporate_data(&mk(i));
            assert!(
                orthogonality_error(b.modes()) < 1e-8,
                "drift after {} updates: {}",
                i + 1,
                orthogonality_error(b.modes())
            );
        }
    }

    #[test]
    fn bookkeeping() {
        let a = decaying(30, 17, 4);
        let mut b = BrandIncrementalSvd::new(SvdConfig::new(3));
        b.fit_batched(&a, 5);
        assert_eq!(b.snapshots_seen(), 17);
        assert_eq!(b.iteration(), 3);
    }

    #[test]
    #[should_panic(expected = "before initialize")]
    fn update_before_init_panics() {
        let mut b = BrandIncrementalSvd::new(SvdConfig::new(2));
        b.incorporate_data(&Matrix::identity(4));
    }
}
