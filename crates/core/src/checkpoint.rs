//! Checkpoint / restart for the streaming drivers.
//!
//! Streaming jobs run for the lifetime of a simulation; on HPC systems that
//! lifetime is chopped into scheduler allocations. A checkpoint captures
//! the entire algorithmic state of a tracker — modes, singular values,
//! counters — so a follow-up job resumes the stream bit-exactly. The format
//! is a small self-describing little-endian binary (one file per rank for
//! the distributed driver, as each rank owns only its row block).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use psvd_linalg::Matrix;

use crate::config::SvdConfig;
use crate::serial::SerialStreamingSvd;

const MAGIC: &[u8; 8] = b"PSVDCKP1";

/// A serializable snapshot of a streaming tracker's state.
#[derive(Clone, Debug, PartialEq)]
pub struct SvdCheckpoint {
    /// Tracked modes (`M x K'`).
    pub modes: Matrix,
    /// Singular values (length `K'`).
    pub singular_values: Vec<f64>,
    /// Streaming updates performed.
    pub iteration: usize,
    /// Snapshots ingested.
    pub snapshots_seen: usize,
}

impl SvdCheckpoint {
    /// Exact size of the [`SvdCheckpoint::to_bytes`] encoding, without
    /// encoding — what an eviction ledger charges for spilling this state.
    pub fn byte_len(&self) -> usize {
        let (m, k) = self.modes.shape();
        48 + 8 * (m * k + self.singular_values.len())
    }

    /// Encode to bytes (self-describing, little-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let (m, k) = self.modes.shape();
        let mut out = Vec::with_capacity(self.byte_len());
        out.extend_from_slice(MAGIC);
        for v in [
            m as u64,
            k as u64,
            self.singular_values.len() as u64,
            self.iteration as u64,
            self.snapshots_seen as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &x in self.modes.as_slice() {
            out.extend_from_slice(&x.to_le_bytes());
        }
        for &x in &self.singular_values {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }

    /// Decode from bytes written by [`SvdCheckpoint::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if data.len() < 48 || &data[..8] != MAGIC {
            return Err(bad("not a PSVD checkpoint"));
        }
        let mut u64s = [0u64; 5];
        for (i, v) in u64s.iter_mut().enumerate() {
            let off = 8 + i * 8;
            *v = u64::from_le_bytes(data[off..off + 8].try_into().expect("sized"));
        }
        let [m, k, ns, iteration, snapshots_seen] = u64s.map(|v| v as usize);
        // Checked arithmetic: corrupted dimension fields must produce a
        // clean error, not an overflow panic.
        let need = m
            .checked_mul(k)
            .and_then(|mk| mk.checked_add(ns))
            .and_then(|n| n.checked_mul(8))
            .and_then(|b| b.checked_add(48))
            .ok_or_else(|| bad("checkpoint dimensions overflow"))?;
        if data.len() != need {
            return Err(bad("checkpoint length mismatch"));
        }
        let mut floats = Vec::with_capacity(m * k + ns);
        for i in 0..(m * k + ns) {
            let off = 48 + i * 8;
            floats.push(f64::from_le_bytes(data[off..off + 8].try_into().expect("sized")));
        }
        let sv = floats.split_off(m * k);
        Ok(Self {
            modes: Matrix::from_vec(m, k, floats),
            singular_values: sv,
            iteration,
            snapshots_seen,
        })
    }

    /// Stack per-rank distributed checkpoints (rank order) into the
    /// equivalent global checkpoint, e.g. to hand a degraded run's
    /// surviving row blocks to the serial driver as the restart oracle.
    /// All parts must come from the same streaming step.
    pub fn vstack(parts: Vec<SvdCheckpoint>) -> SvdCheckpoint {
        assert!(!parts.is_empty(), "vstack of no checkpoints");
        for p in &parts[1..] {
            assert_eq!(p.singular_values, parts[0].singular_values, "mixed-step checkpoints");
            assert_eq!(p.iteration, parts[0].iteration, "mixed-step checkpoints");
            assert_eq!(p.snapshots_seen, parts[0].snapshots_seen, "mixed-step checkpoints");
        }
        let singular_values = parts[0].singular_values.clone();
        let iteration = parts[0].iteration;
        let snapshots_seen = parts[0].snapshots_seen;
        let modes = Matrix::vstack_owned(parts.into_iter().map(|p| p.modes).collect());
        SvdCheckpoint { modes, singular_values, iteration, snapshots_seen }
    }

    /// Write to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&self.to_bytes())?;
        out.flush()
    }

    /// Read from a file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut data = Vec::new();
        BufReader::new(File::open(path)?).read_to_end(&mut data)?;
        Self::from_bytes(&data)
    }
}

impl SerialStreamingSvd {
    /// Capture the current state (must be initialized).
    pub fn checkpoint(&self) -> SvdCheckpoint {
        assert!(self.is_initialized(), "checkpoint of an uninitialized tracker");
        SvdCheckpoint {
            modes: self.modes().clone(),
            singular_values: self.singular_values().to_vec(),
            iteration: self.iteration(),
            snapshots_seen: self.snapshots_seen(),
        }
    }

    /// Rebuild a tracker from a checkpoint; further `incorporate_data`
    /// calls continue the stream exactly where it stopped.
    pub fn restore(cfg: SvdConfig, ckpt: SvdCheckpoint) -> Self {
        let mut s = SerialStreamingSvd::new(cfg);
        s.restore_state(ckpt.modes, ckpt.singular_values, ckpt.iteration, ckpt.snapshots_seen);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};

    fn tracker_after(n_batches: usize) -> (SerialStreamingSvd, Matrix) {
        let mut rng = seeded_rng(11);
        let spec: Vec<f64> = (0..12).map(|i| 4.0 * 0.7f64.powi(i)).collect();
        let data = matrix_with_spectrum(60, 48, &spec, &mut rng);
        let mut s = SerialStreamingSvd::new(SvdConfig::new(5).with_forget_factor(0.95));
        for b in 0..n_batches {
            let chunk = data.submatrix(0, 60, b * 8, (b + 1) * 8);
            if s.is_initialized() {
                s.incorporate_data(&chunk);
            } else {
                s.initialize(&chunk);
            }
        }
        (s, data)
    }

    #[test]
    fn bytes_roundtrip() {
        let (s, _) = tracker_after(3);
        let ckpt = s.checkpoint();
        let encoded = ckpt.to_bytes();
        assert_eq!(encoded.len(), ckpt.byte_len());
        let back = SvdCheckpoint::from_bytes(&encoded).unwrap();
        assert_eq!(ckpt, back);
    }

    #[test]
    fn file_roundtrip() {
        let (s, _) = tracker_after(2);
        let path = std::env::temp_dir().join(format!("psvd_ckpt_{}.bin", std::process::id()));
        let ckpt = s.checkpoint();
        ckpt.save(&path).unwrap();
        let back = SvdCheckpoint::load(&path).unwrap();
        assert_eq!(ckpt, back);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_is_bit_exact() {
        // Run 6 batches straight vs 3 batches + checkpoint + restore + 3:
        // final states must be identical.
        let (straight, data) = tracker_after(6);
        let (half, _) = tracker_after(3);
        let cfg = *half.config();
        let mut resumed = SerialStreamingSvd::restore(cfg, half.checkpoint());
        for b in 3..6 {
            resumed.incorporate_data(&data.submatrix(0, 60, b * 8, (b + 1) * 8));
        }
        assert_eq!(straight.modes(), resumed.modes());
        assert_eq!(straight.singular_values(), resumed.singular_values());
        assert_eq!(straight.iteration(), resumed.iteration());
        assert_eq!(straight.snapshots_seen(), resumed.snapshots_seen());
    }

    #[test]
    fn corrupted_data_rejected() {
        let (s, _) = tracker_after(1);
        let mut bytes = s.checkpoint().to_bytes();
        bytes[0] = b'X';
        assert!(SvdCheckpoint::from_bytes(&bytes).is_err());
        let mut truncated = s.checkpoint().to_bytes();
        truncated.pop();
        assert!(SvdCheckpoint::from_bytes(&truncated).is_err());
    }

    #[test]
    fn vstack_reassembles_rank_blocks() {
        let (s, _) = tracker_after(2);
        let global = s.checkpoint();
        let (m, k) = global.modes.shape();
        let part = |r0: usize, r1: usize| SvdCheckpoint {
            modes: global.modes.submatrix(r0, r1, 0, k),
            singular_values: global.singular_values.clone(),
            iteration: global.iteration,
            snapshots_seen: global.snapshots_seen,
        };
        let back = SvdCheckpoint::vstack(vec![part(0, 25), part(25, m)]);
        assert_eq!(back, global);
    }

    #[test]
    #[should_panic(expected = "mixed-step")]
    fn vstack_rejects_mixed_steps() {
        let (s, _) = tracker_after(2);
        let a = s.checkpoint();
        let mut b = a.clone();
        b.iteration += 1;
        let _ = SvdCheckpoint::vstack(vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "uninitialized")]
    fn checkpoint_before_init_panics() {
        let s = SerialStreamingSvd::new(SvdConfig::new(2));
        let _ = s.checkpoint();
    }
}
