//! Configuration shared by the serial and parallel drivers.

use psvd_linalg::SvdMethod;

/// Parameters of the streaming / distributed / randomized SVD.
///
/// Defaults follow the paper: `forget_factor = 0.95`, `r1 = 50`
/// local right-vector columns, `r2 = K` retained global columns, and
/// deterministic inner SVDs unless `low_rank` is set.
#[derive(Clone, Copy, Debug)]
pub struct SvdConfig {
    /// Number of leading modes `K` to track.
    pub k: usize,
    /// Forget factor `ff ∈ (0, 1]`; `1.0` weighs all batches equally.
    pub forget_factor: f64,
    /// APMOS local truncation: columns of `Vⁱ`/`Σⁱ` communicated to rank 0.
    pub r1: usize,
    /// APMOS global truncation: columns of `X`/`Λ` broadcast back.
    pub r2: usize,
    /// Use the randomized low-rank SVD for the rank-0 factorizations.
    pub low_rank: bool,
    /// Oversampling for the randomized path.
    pub oversampling: usize,
    /// Power iterations for the randomized path.
    pub power_iterations: usize,
    /// Seed for the randomized path (advanced deterministically per call).
    pub seed: u64,
    /// Dense SVD kernel for the deterministic path.
    pub method: SvdMethod,
    /// Use binomial-tree collectives for the APMOS gather/broadcast
    /// instead of the paper's flat rank-0 pattern.
    pub tree_collectives: bool,
    /// Continue on a shrunken world after a permanent rank failure (the
    /// dead rank's row block is excised and the run reports a
    /// `DegradedInfo`) instead of erroring out of the fallible driver
    /// operations.
    pub allow_degraded: bool,
}

impl SvdConfig {
    /// Paper defaults for `K` modes.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            forget_factor: 0.95,
            r1: 50,
            r2: k,
            low_rank: false,
            oversampling: 10,
            power_iterations: 1,
            seed: 0,
            method: SvdMethod::default(),
            tree_collectives: false,
            allow_degraded: false,
        }
    }

    /// Builder: forget factor.
    pub fn with_forget_factor(mut self, ff: f64) -> Self {
        self.forget_factor = ff;
        self
    }

    /// Builder: local truncation `r1`.
    pub fn with_r1(mut self, r1: usize) -> Self {
        self.r1 = r1;
        self
    }

    /// Builder: global truncation `r2`.
    pub fn with_r2(mut self, r2: usize) -> Self {
        self.r2 = r2;
        self
    }

    /// Builder: enable the randomized inner SVD.
    pub fn with_low_rank(mut self, low_rank: bool) -> Self {
        self.low_rank = low_rank;
        self
    }

    /// Builder: randomized-path seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: dense kernel.
    pub fn with_method(mut self, method: SvdMethod) -> Self {
        self.method = method;
        self
    }

    /// Builder: binomial-tree collectives for the distributed driver.
    pub fn with_tree_collectives(mut self, tree: bool) -> Self {
        self.tree_collectives = tree;
        self
    }

    /// Builder: survive permanent rank failures on the shrunken world.
    pub fn with_allow_degraded(mut self, allow: bool) -> Self {
        self.allow_degraded = allow;
        self
    }

    /// Builder: oversampling for the randomized path.
    pub fn with_oversampling(mut self, p: usize) -> Self {
        self.oversampling = p;
        self
    }

    /// Builder: power iterations for the randomized path.
    pub fn with_power_iterations(mut self, q: usize) -> Self {
        self.power_iterations = q;
        self
    }

    /// Panics if the configuration is unusable; returns `self` otherwise.
    pub fn validated(self) -> Self {
        assert!(self.k > 0, "K must be positive");
        assert!(
            self.forget_factor > 0.0 && self.forget_factor <= 1.0,
            "forget factor must be in (0, 1], got {}",
            self.forget_factor
        );
        assert!(self.r1 >= 1, "r1 must be positive");
        assert!(
            self.r2 >= self.k,
            "r2 ({}) must be at least K ({}): the driver reconstructs K modes from r2 columns",
            self.r2,
            self.k
        );
        self
    }

    /// The randomized-range-finder configuration for rank `rank`.
    pub fn randomized(&self, rank: usize) -> psvd_linalg::RandomizedConfig {
        psvd_linalg::RandomizedConfig {
            rank,
            oversampling: self.oversampling,
            power_iterations: self.power_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SvdConfig::new(10);
        assert_eq!(c.k, 10);
        assert_eq!(c.forget_factor, 0.95);
        assert_eq!(c.r1, 50);
        assert_eq!(c.r2, 10);
        assert!(!c.low_rank);
    }

    #[test]
    fn builders_compose() {
        let c = SvdConfig::new(5)
            .with_forget_factor(1.0)
            .with_r1(20)
            .with_r2(8)
            .with_low_rank(true)
            .with_seed(99)
            .with_oversampling(4)
            .with_power_iterations(2);
        assert_eq!(c.forget_factor, 1.0);
        assert_eq!(c.r1, 20);
        assert_eq!(c.r2, 8);
        assert!(c.low_rank);
        assert_eq!(c.seed, 99);
        assert_eq!(c.oversampling, 4);
        assert_eq!(c.power_iterations, 2);
    }

    #[test]
    #[should_panic(expected = "forget factor")]
    fn bad_forget_factor_rejected() {
        let _ = SvdConfig::new(3).with_forget_factor(1.5).validated();
    }

    #[test]
    #[should_panic(expected = "r2")]
    fn r2_below_k_rejected() {
        let _ = SvdConfig::new(10).with_r2(3).validated();
    }

    #[test]
    fn randomized_config_inherits() {
        let c = SvdConfig::new(4).with_oversampling(7).with_power_iterations(3);
        let r = c.randomized(4);
        assert_eq!(r.rank, 4);
        assert_eq!(r.oversampling, 7);
        assert_eq!(r.power_iterations, 3);
    }
}
