//! Configuration shared by the serial and parallel drivers.

use psvd_linalg::SvdMethod;

/// Arithmetic / wire precision for a streaming run.
///
/// The element dtype of a driver is a compile-time choice (the `T`
/// parameter of [`crate::SerialStreamingSvd`] /
/// [`crate::ParallelStreamingSvd`], default `f64`); this enum selects the
/// *policy* layered on top:
///
/// - `F64` / `F32`: run everything at the driver's native dtype. The two
///   variants exist so entry points that construct drivers from the
///   environment (benches, the conformance harness) can pick the
///   instantiation; inside a driver both behave identically.
/// - `Mixed`: keep all local factorization arithmetic at the native
///   dtype (f64 re-orthogonalization, f64 final factors) but demote
///   every matrix payload crossing the communicator to `f32`, halving
///   APMOS gather / TSQR gather+scatter wire bytes, and run the
///   randomized inner SVDs with an f32 range finder
///   ([`psvd_linalg::randomized::mixed_randomized_svd`]). Singular
///   values stay within ~`ε_f32 · σ₁` of the all-f64 run (the
///   conformance suite pins 1e-5 relative); results remain bitwise
///   deterministic across thread counts and collective shapes.
///
/// `SvdConfig::new` seeds this from `PSVD_PRECISION` (`f64`, `f32`,
/// `mixed`; unset means `f64`), so a whole test or bench process can be
/// flipped from the environment; `with_precision` overrides per config.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Precision {
    /// Native f64 everywhere (the default).
    #[default]
    F64,
    /// Native f32 everywhere (honored by dtype-choosing entry points).
    F32,
    /// Native-precision math with f32 wire payloads and f32 range finding.
    Mixed,
}

impl Precision {
    /// Read `PSVD_PRECISION` (`f64` | `f32` | `mixed`, case-insensitive);
    /// unset or empty means [`Precision::F64`]. Panics on other values.
    pub fn from_env() -> Self {
        match std::env::var("PSVD_PRECISION") {
            Err(_) => Precision::F64,
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "" | "f64" => Precision::F64,
                "f32" => Precision::F32,
                "mixed" => Precision::Mixed,
                other => panic!("PSVD_PRECISION must be f64, f32 or mixed, got {other:?}"),
            },
        }
    }
}

/// Read a numeric tree knob from the environment: unset, empty or `0`
/// mean "not configured" (`None`). Panics on non-numeric values so typos
/// fail loudly rather than silently running flat.
fn env_tree_knob(name: &str) -> Option<usize> {
    match std::env::var(name) {
        Err(_) => None,
        Ok(v) if v.is_empty() => None,
        Ok(v) => match v.parse::<usize>() {
            Ok(0) => None,
            Ok(n) => Some(n),
            Err(_) => panic!("{name} must be a non-negative integer, got {v:?}"),
        },
    }
}

/// Parameters of the streaming / distributed / randomized SVD.
///
/// Defaults follow the paper: `forget_factor = 0.95`, `r1 = 50`
/// local right-vector columns, `r2 = K` retained global columns, and
/// deterministic inner SVDs unless `low_rank` is set.
#[derive(Clone, Copy, Debug)]
pub struct SvdConfig {
    /// Number of leading modes `K` to track.
    pub k: usize,
    /// Forget factor `ff ∈ (0, 1]`; `1.0` weighs all batches equally.
    pub forget_factor: f64,
    /// APMOS local truncation: columns of `Vⁱ`/`Σⁱ` communicated to rank 0.
    pub r1: usize,
    /// APMOS global truncation: columns of `X`/`Λ` broadcast back.
    pub r2: usize,
    /// Use the randomized low-rank SVD for the rank-0 factorizations.
    pub low_rank: bool,
    /// Oversampling for the randomized path.
    pub oversampling: usize,
    /// Power iterations for the randomized path.
    pub power_iterations: usize,
    /// Seed for the randomized path (advanced deterministically per call).
    pub seed: u64,
    /// Dense SVD kernel for the deterministic path.
    pub method: SvdMethod,
    /// Use binomial-tree collectives for the APMOS gather/broadcast
    /// instead of the paper's flat rank-0 pattern.
    pub tree_collectives: bool,
    /// Continue on a shrunken world after a permanent rank failure (the
    /// dead rank's row block is excised and the run reports a
    /// `DegradedInfo`) instead of erroring out of the fallible driver
    /// operations.
    pub allow_degraded: bool,
    /// Arithmetic / wire precision policy (see [`Precision`]).
    pub precision: Precision,
    /// Merge-tree fanout: children per interior merge node in the
    /// hierarchical APMOS exchange. `None` (with `tree_depth` also `None`)
    /// keeps the flat rank-0 gather; see
    /// [`crate::MergeTreePlan::resolve`].
    pub tree_fanout: Option<usize>,
    /// Merge-tree depth: number of merge levels. Fanout per level is
    /// derived as roughly the `depth`-th root of the world size.
    pub tree_depth: Option<usize>,
}

impl SvdConfig {
    /// Paper defaults for `K` modes.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            forget_factor: 0.95,
            r1: 50,
            r2: k,
            low_rank: false,
            oversampling: 10,
            power_iterations: 1,
            seed: 0,
            method: SvdMethod::default(),
            tree_collectives: false,
            allow_degraded: false,
            precision: Precision::from_env(),
            tree_fanout: env_tree_knob("PSVD_TREE_FANOUT"),
            tree_depth: env_tree_knob("PSVD_TREE_DEPTH"),
        }
    }

    /// Builder: forget factor.
    pub fn with_forget_factor(mut self, ff: f64) -> Self {
        self.forget_factor = ff;
        self
    }

    /// Builder: local truncation `r1`.
    pub fn with_r1(mut self, r1: usize) -> Self {
        self.r1 = r1;
        self
    }

    /// Builder: global truncation `r2`.
    pub fn with_r2(mut self, r2: usize) -> Self {
        self.r2 = r2;
        self
    }

    /// Builder: enable the randomized inner SVD.
    pub fn with_low_rank(mut self, low_rank: bool) -> Self {
        self.low_rank = low_rank;
        self
    }

    /// Builder: randomized-path seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: dense kernel.
    pub fn with_method(mut self, method: SvdMethod) -> Self {
        self.method = method;
        self
    }

    /// Builder: binomial-tree collectives for the distributed driver.
    pub fn with_tree_collectives(mut self, tree: bool) -> Self {
        self.tree_collectives = tree;
        self
    }

    /// Builder: survive permanent rank failures on the shrunken world.
    pub fn with_allow_degraded(mut self, allow: bool) -> Self {
        self.allow_degraded = allow;
        self
    }

    /// Builder: precision policy (overrides the `PSVD_PRECISION` seed).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Builder: merge-tree fanout (overrides the `PSVD_TREE_FANOUT` seed).
    /// `0` clears the knob back to "unset".
    pub fn with_tree_fanout(mut self, fanout: usize) -> Self {
        self.tree_fanout = if fanout == 0 { None } else { Some(fanout) };
        self
    }

    /// Builder: merge-tree depth (overrides the `PSVD_TREE_DEPTH` seed).
    /// `0` clears the knob back to "unset".
    pub fn with_tree_depth(mut self, depth: usize) -> Self {
        self.tree_depth = if depth == 0 { None } else { Some(depth) };
        self
    }

    /// Builder: oversampling for the randomized path.
    pub fn with_oversampling(mut self, p: usize) -> Self {
        self.oversampling = p;
        self
    }

    /// Builder: power iterations for the randomized path.
    pub fn with_power_iterations(mut self, q: usize) -> Self {
        self.power_iterations = q;
        self
    }

    /// Panics if the configuration is unusable; returns `self` otherwise.
    pub fn validated(self) -> Self {
        assert!(self.k > 0, "K must be positive");
        assert!(
            self.forget_factor > 0.0 && self.forget_factor <= 1.0,
            "forget factor must be in (0, 1], got {}",
            self.forget_factor
        );
        assert!(self.r1 >= 1, "r1 must be positive");
        assert!(
            self.r2 >= self.k,
            "r2 ({}) must be at least K ({}): the driver reconstructs K modes from r2 columns",
            self.r2,
            self.k
        );
        self
    }

    /// The randomized-range-finder configuration for rank `rank`.
    pub fn randomized(&self, rank: usize) -> psvd_linalg::RandomizedConfig {
        psvd_linalg::RandomizedConfig {
            rank,
            oversampling: self.oversampling,
            power_iterations: self.power_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SvdConfig::new(10);
        assert_eq!(c.k, 10);
        assert_eq!(c.forget_factor, 0.95);
        assert_eq!(c.r1, 50);
        assert_eq!(c.r2, 10);
        assert!(!c.low_rank);
    }

    #[test]
    fn builders_compose() {
        let c = SvdConfig::new(5)
            .with_forget_factor(1.0)
            .with_r1(20)
            .with_r2(8)
            .with_low_rank(true)
            .with_seed(99)
            .with_oversampling(4)
            .with_power_iterations(2);
        assert_eq!(c.forget_factor, 1.0);
        assert_eq!(c.r1, 20);
        assert_eq!(c.r2, 8);
        assert!(c.low_rank);
        assert_eq!(c.seed, 99);
        assert_eq!(c.oversampling, 4);
        assert_eq!(c.power_iterations, 2);
    }

    #[test]
    #[should_panic(expected = "forget factor")]
    fn bad_forget_factor_rejected() {
        let _ = SvdConfig::new(3).with_forget_factor(1.5).validated();
    }

    #[test]
    #[should_panic(expected = "r2")]
    fn r2_below_k_rejected() {
        let _ = SvdConfig::new(10).with_r2(3).validated();
    }

    #[test]
    fn precision_builder_overrides_default() {
        let c = SvdConfig::new(3);
        // Whatever the environment seeded, the builder wins.
        let m = c.with_precision(Precision::Mixed);
        assert_eq!(m.precision, Precision::Mixed);
        let back = m.with_precision(Precision::F64);
        assert_eq!(back.precision, Precision::F64);
        assert_eq!(Precision::default(), Precision::F64);
    }

    #[test]
    fn tree_builders_set_and_clear() {
        let c = SvdConfig::new(3).with_tree_fanout(4).with_tree_depth(2);
        assert_eq!(c.tree_fanout, Some(4));
        assert_eq!(c.tree_depth, Some(2));
        let cleared = c.with_tree_fanout(0).with_tree_depth(0);
        assert_eq!(cleared.tree_fanout, None);
        assert_eq!(cleared.tree_depth, None);
    }

    #[test]
    fn randomized_config_inherits() {
        let c = SvdConfig::new(4).with_oversampling(7).with_power_iterations(3);
        let r = c.randomized(4);
        assert_eq!(r.rank, 4);
        assert_eq!(r.oversampling, 7);
        assert_eq!(r.power_iterations, 3);
    }
}
