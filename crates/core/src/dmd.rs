//! Dynamic mode decomposition (exact DMD, Tu et al. / Schmid).
//!
//! Section 2 of the paper lists DMD among the SVD-based data-driven methods
//! the library is meant to serve. This module implements it on top of the
//! workspace's own SVD and nonsymmetric eigensolver: given snapshots of a
//! (near-)linear process `x_{k+1} ≈ A x_k`, DMD finds the dominant
//! eigenvalues and spatial modes of `A` without ever forming it:
//!
//! ```text
//! X = [x_0 .. x_{N-2}],  Y = [x_1 .. x_{N-1}]
//! X = U Σ Vᵀ             (rank-r truncated SVD)
//! Ã = Uᵀ Y V Σ⁻¹         (r x r compression of A)
//! Ã W = W Λ              (general eigendecomposition)
//! Φ = Y V Σ⁻¹ W Λ⁻¹      (exact DMD modes)
//! ```

use psvd_linalg::cmatrix::CMatrix;
use psvd_linalg::complex::Complex;
use psvd_linalg::eig_general::general_eig;
use psvd_linalg::gemm::{matmul, matmul_tn};
use psvd_linalg::Matrix;

/// The result of a DMD analysis.
pub struct Dmd {
    /// Discrete-time eigenvalues `λ_i` (one step of `dt`).
    pub eigenvalues: Vec<Complex>,
    /// DMD modes as columns (complex, unit norm).
    pub modes: CMatrix,
    /// Mode amplitudes from projecting the first snapshot.
    pub amplitudes: Vec<Complex>,
    /// Sampling interval.
    pub dt: f64,
    /// Truncation rank used.
    pub rank: usize,
}

impl Dmd {
    /// Continuous-time eigenvalues `ω_i = ln(λ_i) / dt`.
    pub fn continuous_eigenvalues(&self) -> Vec<Complex> {
        self.eigenvalues.iter().map(|&l| l.ln().scale(1.0 / self.dt)).collect()
    }

    /// Oscillation frequencies in cycles per unit time (`Im ω / 2π`).
    pub fn frequencies(&self) -> Vec<f64> {
        self.continuous_eigenvalues().iter().map(|w| w.im / (2.0 * std::f64::consts::PI)).collect()
    }

    /// Exponential growth rates (`Re ω`).
    pub fn growth_rates(&self) -> Vec<f64> {
        self.continuous_eigenvalues().iter().map(|w| w.re).collect()
    }

    /// Reconstruct snapshot `k` (real part of `Φ diag(b) λ^k`).
    pub fn reconstruct_snapshot(&self, k: usize) -> Vec<f64> {
        let m = self.modes.rows();
        let mut out = vec![0.0; m];
        for (j, (&lambda, &b)) in self.eigenvalues.iter().zip(&self.amplitudes).enumerate() {
            // λ^k via polar form (stable for large k).
            let lk = Complex::from_polar(lambda.abs().powi(k as i32), lambda.arg() * k as f64);
            let coeff = b * lk;
            for (i, o) in out.iter_mut().enumerate() {
                *o += (self.modes[(i, j)] * coeff).re;
            }
        }
        out
    }

    /// Relative Frobenius error of reconstructing all `n` snapshots.
    pub fn reconstruction_error(&self, data: &Matrix) -> f64 {
        let mut err2 = 0.0;
        for k in 0..data.cols() {
            let rec = self.reconstruct_snapshot(k);
            for i in 0..data.rows() {
                let d = rec[i] - data[(i, k)];
                err2 += d * d;
            }
        }
        err2.sqrt() / data.frobenius_norm().max(f64::MIN_POSITIVE)
    }
}

/// Exact DMD of a snapshot sequence sampled every `dt`, truncated to rank
/// `r` (clamped to the data's numerical rank).
pub fn dmd(data: &Matrix, r: usize, dt: f64) -> Dmd {
    assert!(data.cols() >= 2, "DMD needs at least two snapshots");
    assert!(r >= 1, "rank must be positive");
    let n = data.cols();
    let x = data.submatrix(0, data.rows(), 0, n - 1);
    let y = data.submatrix(0, data.rows(), 1, n);

    // Rank-r SVD of X; clamp r to the numerical rank so sigma-inversion
    // stays stable.
    let f = psvd_linalg::svd(&x);
    let num_rank = f.rank(1e-12).max(1);
    let r = r.min(num_rank);
    let u = f.u.first_columns(r);
    let s = &f.s[..r];
    let v = f.vt.row_block(0, r).transpose(); // (N-1) x r

    // Ã = Uᵀ Y V Σ⁻¹.
    let yv = matmul(&y, &v); // M x r
    let inv_s: Vec<f64> = s.iter().map(|&x| 1.0 / x).collect();
    let yvs = yv.mul_diag(&inv_s);
    let a_tilde = matmul_tn(&u, &yvs); // r x r

    let eig = general_eig(&a_tilde);

    // Exact modes: Φ = (Y V Σ⁻¹) W Λ⁻¹, normalized per column.
    let yvs_c = CMatrix::from_real(&yvs);
    let mut phi = yvs_c.matmul(&eig.vectors);
    for (j, &lambda) in eig.values.iter().enumerate() {
        // Divide by λ (projected-mode fallback when λ ≈ 0).
        if lambda.abs() > 1e-12 {
            let inv = lambda.recip();
            for i in 0..phi.rows() {
                phi[(i, j)] *= inv;
            }
        }
        let norm = phi.col_iter(j).map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm > 0.0 {
            for i in 0..phi.rows() {
                phi[(i, j)] = phi[(i, j)].scale(1.0 / norm);
            }
        }
    }

    // Amplitudes: least squares Φ b = x_0 via the normal equations
    // (Φ*Φ) b = Φ* x_0 — Φ has few columns, so this is safe.
    let x0: Vec<Complex> = (0..data.rows()).map(|i| Complex::real(data[(i, 0)])).collect();
    let phistar = phi.adjoint();
    let gram = phistar.matmul(&phi);
    let rhs = phistar.matvec(&x0);
    let amplitudes = gram.lu_solve(&rhs).unwrap_or_else(|| vec![Complex::ZERO; r]);

    Dmd { eigenvalues: eig.values, modes: phi, amplitudes, dt, rank: r }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Snapshots of x(t) = Σ_j e^{sigma_j t} (v_j cos(omega_j t) +
    /// w_j sin(omega_j t)): each oscillating component spans a genuine 2-D
    /// invariant subspace (two distinct spatial patterns), as required for
    /// a linear map to produce it with a complex eigenvalue pair.
    fn oscillating_data(
        m: usize,
        n: usize,
        dt: f64,
        params: &[(f64, f64)], // (growth sigma, angular frequency omega)
    ) -> Matrix {
        let pattern =
            |j: usize, i: usize| ((i as f64 * (j + 1) as f64 * 0.07) + 0.3 * j as f64).sin();
        Matrix::from_fn(m, n, |i, k| {
            let t = k as f64 * dt;
            params
                .iter()
                .enumerate()
                .map(|(j, &(sig, om))| {
                    let v = pattern(2 * j, i);
                    let w = pattern(2 * j + 1, i);
                    (sig * t).exp() * (v * (om * t).cos() + w * (om * t).sin())
                })
                .sum()
        })
    }

    #[test]
    fn recovers_oscillation_frequencies() {
        let dt = 0.05;
        let data = oscillating_data(120, 100, dt, &[(0.0, 3.0), (0.0, 7.0)]);
        let d = dmd(&data, 4, dt);
        let mut freqs: Vec<f64> = d.continuous_eigenvalues().iter().map(|w| w.im.abs()).collect();
        freqs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        freqs.dedup_by(|a, b| (*a - *b).abs() < 0.1);
        assert!(freqs.iter().any(|&f| (f - 3.0).abs() < 0.05), "omega = 3 missing: {freqs:?}");
        assert!(freqs.iter().any(|&f| (f - 7.0).abs() < 0.05), "omega = 7 missing: {freqs:?}");
    }

    #[test]
    fn recovers_growth_and_decay() {
        let dt = 0.02;
        let data = oscillating_data(80, 120, dt, &[(-0.5, 4.0), (0.3, 9.0)]);
        let d = dmd(&data, 4, dt);
        let rates: Vec<(f64, f64)> =
            d.continuous_eigenvalues().iter().map(|w| (w.re, w.im.abs())).collect();
        // Find the mode near omega = 4: must decay at ~-0.5.
        let decay = rates.iter().find(|(_, om)| (om - 4.0).abs() < 0.2).expect("omega 4 found");
        assert!((decay.0 - -0.5).abs() < 0.05, "decay rate {} vs -0.5", decay.0);
        let growth = rates.iter().find(|(_, om)| (om - 9.0).abs() < 0.2).expect("omega 9 found");
        assert!((growth.0 - 0.3).abs() < 0.05, "growth rate {} vs 0.3", growth.0);
    }

    #[test]
    fn eigenvalues_on_unit_circle_for_undamped() {
        let dt = 0.1;
        let data = oscillating_data(60, 80, dt, &[(0.0, 2.0)]);
        let d = dmd(&data, 2, dt);
        for z in &d.eigenvalues {
            assert!((z.abs() - 1.0).abs() < 1e-6, "|lambda| = {}", z.abs());
        }
    }

    #[test]
    fn reconstruction_is_accurate() {
        let dt = 0.05;
        let data = oscillating_data(60, 60, dt, &[(0.0, 3.0), (-0.2, 6.0)]);
        let d = dmd(&data, 4, dt);
        let err = d.reconstruction_error(&data);
        assert!(err < 1e-6, "reconstruction error {err}");
    }

    #[test]
    fn rank_clamped_to_numerical_rank() {
        // Pure single-frequency signal: rank 2 (conjugate pair).
        let dt = 0.05;
        let data = oscillating_data(40, 50, dt, &[(0.0, 5.0)]);
        let d = dmd(&data, 10, dt);
        assert!(d.rank <= 3, "numerical rank should clamp the request: {}", d.rank);
    }

    #[test]
    fn frequencies_accessor_in_cycles() {
        let dt = 0.05;
        let om = 2.0 * std::f64::consts::PI; // 1 cycle per unit time
        let data = oscillating_data(50, 80, dt, &[(0.0, om)]);
        let d = dmd(&data, 2, dt);
        let has_unit = d.frequencies().iter().any(|&f| (f.abs() - 1.0).abs() < 0.01);
        assert!(has_unit, "frequencies: {:?}", d.frequencies());
    }

    #[test]
    #[should_panic(expected = "at least two snapshots")]
    fn too_few_snapshots_panics() {
        let _ = dmd(&Matrix::zeros(5, 1), 2, 0.1);
    }
}
