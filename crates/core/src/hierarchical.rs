//! Hierarchical APMOS over arbitrary-depth merge trees — the general
//! attack on the rank-0 bottleneck the weak-scaling experiment exposes.
//!
//! In flat APMOS, rank 0 factorizes `W` with `r1 · N_ranks` columns, so its
//! compute (and its per-message receive overhead) grows linearly with the
//! world size no matter how the gather is routed. A [`MergeTreePlan`]
//! generalizes the old fixed two-level leader scheme: at each level,
//! groups of `fanout` active ranks concatenate their `U·diag(σ)` factors
//! at a group leader, which re-orthogonalizes the stack (blocked thin QR
//! and a small SVD of `R` for tall stacks) and truncates back to `r1` columns
//! before forwarding upward. With fanout `g` the root sees `r1 · g`
//! columns regardless of the world size, and every level costs `O(g)`
//! messages per leader — the per-rank simulated clocks of the
//! `tree_scaling` bench show exactly where the flat gather saturates.
//!
//! The re-compression is sound for the same reason APMOS itself is: the
//! Gram identity `W_group W_groupᵀ = Σ_{i∈group} AⁱᵀAⁱ` means the group's
//! SVD-truncated `X̃Λ̃` carries the leading energy of the group's share of
//! the global covariance — it is exactly the `r1` truncation applied once
//! more, per level.
//!
//! # Error-bound accounting
//!
//! Each interior merge replaces the group stack `S` by its rank-`r1`
//! truncation; by the Eckart–Young theorem the discarded part has
//! Frobenius norm `e = sqrt(‖S‖_F² − Σ_kept σ²)`, and by Weyl's
//! inequality every singular value of the final (root) stack moves by at
//! most the sum of the `e`'s over all merges. [`TreeMergeInfo`] carries
//! the per-level sums up the tree with the factors, so every rank can
//! report the tracked upper bound `interior_bound()` on the σ deviation
//! from the flat gather — the property tests pin that the observed
//! deviation stays below it.
//!
//! A depth-1 plan *is* the flat path: one level whose single "merge" is
//! the rank-0 gather, factorized once to `r2` — bitwise identical to
//! [`crate::parallel::parallel_svd_once`] (pinned by the equivalence
//! tests and the bench).

use psvd_comm::{CommError, Communicator, Payload};
use psvd_linalg::gemm::matmul_into;
use psvd_linalg::qr::qr_thin_into;
use psvd_linalg::randomized::{low_rank_svd, mixed_low_rank_svd};
use psvd_linalg::snapshots::generate_right_vectors;
use psvd_linalg::svd::svd_with;
use psvd_linalg::workspace::Workspace;
use psvd_linalg::{Matrix, Scalar};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{Precision, SvdConfig};

/// Why a merge-tree plan could not be built from the requested shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A fanout of zero ranks per merge is meaningless.
    ZeroFanout,
    /// A depth of zero levels is meaningless.
    ZeroDepth,
    /// Fanout 1 never reduces the active set: the tree cannot terminate.
    FanoutOne {
        /// World size the plan was requested for.
        world: usize,
    },
    /// An explicit level list whose capacity does not cover the world.
    TooShallow {
        /// World size the plan was requested for.
        world: usize,
        /// Product of the requested fanouts.
        capacity: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ZeroFanout => write!(f, "merge-tree fanout must be positive"),
            PlanError::ZeroDepth => write!(f, "merge-tree depth must be positive"),
            PlanError::FanoutOne { world } => {
                write!(f, "merge-tree fanout 1 cannot reduce a world of {world} ranks")
            }
            PlanError::TooShallow { world, capacity } => {
                write!(f, "merge-tree capacity {capacity} does not cover {world} ranks")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Failure of a merge-tree SVD: either the plan was unusable for the
/// world, or a collective exchange failed permanently.
#[derive(Debug)]
pub enum TreeSvdError {
    /// The plan could not be built (bad fanout/depth for this world).
    Plan(PlanError),
    /// A send/receive/broadcast in the tree failed permanently.
    Comm(CommError),
}

impl std::fmt::Display for TreeSvdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeSvdError::Plan(e) => write!(f, "merge-tree plan rejected: {e}"),
            TreeSvdError::Comm(e) => write!(f, "merge-tree exchange failed: {e}"),
        }
    }
}

impl std::error::Error for TreeSvdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TreeSvdError::Plan(e) => Some(e),
            TreeSvdError::Comm(e) => Some(e),
        }
    }
}

impl From<PlanError> for TreeSvdError {
    fn from(e: PlanError) -> Self {
        TreeSvdError::Plan(e)
    }
}

impl From<CommError> for TreeSvdError {
    fn from(e: CommError) -> Self {
        TreeSvdError::Comm(e)
    }
}

/// The shape of a hierarchical merge: children per interior node, leaf
/// level first. Rank `r` is active at level `l` iff `r` is a multiple of
/// the level stride `fanouts[0]·…·fanouts[l-1]`; groups are `fanout`
/// consecutive active ranks, merging into their lowest member. The last
/// level always lands everything at rank 0, which factorizes the final
/// stack to `r2` exactly as the flat path does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeTreePlan {
    fanouts: Vec<usize>,
}

impl MergeTreePlan {
    /// The flat rank-0 gather: one level spanning the whole world.
    pub fn flat(world: usize) -> Self {
        Self { fanouts: vec![world.max(1)] }
    }

    /// Uniform fanout, as many levels as it takes to reach one rank.
    /// `fanout >= world` (or a world of one) degenerates to [`Self::flat`].
    pub fn uniform(fanout: usize, world: usize) -> Result<Self, PlanError> {
        if fanout == 0 {
            return Err(PlanError::ZeroFanout);
        }
        if world <= 1 || fanout >= world {
            return Ok(Self::flat(world));
        }
        if fanout == 1 {
            return Err(PlanError::FanoutOne { world });
        }
        let mut fanouts = Vec::new();
        let mut remaining = world;
        while remaining > 1 {
            fanouts.push(fanout.min(remaining));
            remaining = remaining.div_ceil(fanout);
        }
        Ok(Self { fanouts })
    }

    /// A tree of (at most) `depth` levels: the fanout is the smallest
    /// integer whose `depth`-th power covers the world, so all levels
    /// carry roughly `world^(1/depth)` children. Small worlds may need
    /// fewer levels than requested.
    pub fn with_depth(depth: usize, world: usize) -> Result<Self, PlanError> {
        if depth == 0 {
            return Err(PlanError::ZeroDepth);
        }
        if depth == 1 || world <= 2 {
            return Ok(Self::flat(world));
        }
        let mut fanout = (world as f64).powf(1.0 / depth as f64).ceil() as usize;
        fanout = fanout.max(2);
        // Guard the floating-point root against off-by-one: grow until the
        // capacity covers the world.
        while fanout.checked_pow(depth as u32).map(|c| c < world).unwrap_or(false) {
            fanout += 1;
        }
        let plan = Self::uniform(fanout, world)?;
        Ok(plan.capped(depth, world))
    }

    /// An explicit per-level fanout list (leaf level first). The product
    /// of the fanouts must cover the world.
    pub fn explicit(fanouts: Vec<usize>, world: usize) -> Result<Self, PlanError> {
        if fanouts.is_empty() {
            return Err(PlanError::ZeroDepth);
        }
        if fanouts.contains(&0) {
            return Err(PlanError::ZeroFanout);
        }
        if world > 1 && fanouts.contains(&1) {
            return Err(PlanError::FanoutOne { world });
        }
        let capacity = fanouts.iter().try_fold(1usize, |c, &f| c.checked_mul(f));
        match capacity {
            Some(c) if c < world => Err(PlanError::TooShallow { world, capacity: c }),
            _ => Ok(Self { fanouts }),
        }
    }

    /// The old two-level leader scheme: groups of `group_size` ranks
    /// merge at leaders, leaders merge at rank 0. `group_size == 1` or
    /// `>= world` degenerate to the flat gather; `0` is rejected.
    pub fn two_level(group_size: usize, world: usize) -> Result<Self, PlanError> {
        if group_size == 0 {
            return Err(PlanError::ZeroFanout);
        }
        if group_size == 1 || group_size >= world || world <= 1 {
            return Ok(Self::flat(world));
        }
        Ok(Self { fanouts: vec![group_size, world.div_ceil(group_size)] })
    }

    /// Resolve the plan a configuration asks for: an explicit
    /// `tree_fanout` wins (optionally capped by `tree_depth`), a bare
    /// `tree_depth` derives its fanout from the world size, and neither
    /// knob keeps the flat gather — the backward-compatible default.
    pub fn resolve(cfg: &SvdConfig, world: usize) -> Result<Self, PlanError> {
        match (cfg.tree_fanout, cfg.tree_depth) {
            (None, None) => Ok(Self::flat(world)),
            (Some(f), None) => Self::uniform(f, world),
            (None, Some(d)) => Self::with_depth(d, world),
            (Some(f), Some(d)) => {
                if d == 0 {
                    return Err(PlanError::ZeroDepth);
                }
                Ok(Self::uniform(f, world)?.capped(d, world))
            }
        }
    }

    /// A world-size heuristic: flat while the root's `O(P)` costs are
    /// trivial, then fanout ≈ √P two-level trees, capped at fanout 16 so
    /// very large worlds grow deeper instead of wider.
    pub fn auto(world: usize) -> Self {
        if world <= 8 {
            return Self::flat(world);
        }
        let fanout = ((world as f64).sqrt().ceil() as usize).clamp(2, 16);
        Self::uniform(fanout, world).expect("fanout >= 2 is always valid")
    }

    /// Collapse everything past `depth - 1` levels into one final level so
    /// the plan has at most `depth` levels.
    fn capped(self, depth: usize, world: usize) -> Self {
        if self.fanouts.len() <= depth {
            return self;
        }
        let mut fanouts: Vec<usize> = self.fanouts[..depth - 1].to_vec();
        let mut remaining = world;
        for &f in &fanouts {
            remaining = remaining.div_ceil(f);
        }
        fanouts.push(remaining.max(1));
        Self { fanouts }
    }

    /// Number of merge levels (1 = the flat gather).
    pub fn depth(&self) -> usize {
        self.fanouts.len()
    }

    /// Children per interior node, leaf level first.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// True when this plan is the flat rank-0 gather.
    pub fn is_flat(&self) -> bool {
        self.fanouts.len() == 1
    }
}

/// Diagnostics of a merge-tree round, reported on every rank alongside
/// the `DegradedInfo`-style driver state (see
/// [`crate::ParallelStreamingSvd::tree_merge_info`]).
#[derive(Clone, Debug, PartialEq)]
pub struct TreeMergeInfo {
    /// The executed plan's fanouts, leaf level first.
    pub fanouts: Vec<usize>,
    /// Sum over that level's merges of the discarded-σ Frobenius energy
    /// `sqrt(‖stack‖_F² − Σ_kept σ²)`; one entry per *interior* level
    /// (`depth − 1` entries, empty for the flat plan).
    pub per_level_bound: Vec<f64>,
    /// Discarded-σ energy of the root's final `r2` truncation — the
    /// truncation the flat path performs too.
    pub root_tail: f64,
    /// Interior merges performed across the whole tree.
    pub merges: u64,
}

impl TreeMergeInfo {
    /// Number of levels in the executed plan.
    pub fn depth(&self) -> usize {
        self.fanouts.len()
    }

    /// Tracked upper bound (Weyl + Eckart–Young, see module docs) on how
    /// far any singular value can sit from the flat gather's result.
    pub fn interior_bound(&self) -> f64 {
        // fold from +0.0: the std float `Sum` identity is -0.0, which would
        // leak a negative zero for depth-1 (no interior levels) trees.
        self.per_level_bound.iter().fold(0.0, |acc, b| acc + b)
    }

    /// Bound on the deviation from the *untruncated* factorization:
    /// interior merges plus the shared root truncation.
    pub fn total_bound(&self) -> f64 {
        self.interior_bound() + self.root_tail
    }
}

/// Frobenius energy of the part a rank-`keep` truncation discards:
/// `sqrt(max(0, ‖w‖_F² − Σ_{j<keep} σ_j²))`. Exact for the deterministic
/// SVD (`‖w‖_F² = Σ σ²`); for the randomized path it additionally counts
/// whatever energy the sketch missed, so the bound stays an upper bound.
fn tail_energy<T: Scalar>(w: &Matrix<T>, s: &[T], keep: usize) -> f64 {
    let total: f64 = w
        .as_slice()
        .iter()
        .map(|v| {
            let x = v.to_f64();
            x * x
        })
        .sum();
    let kept: f64 = s
        .iter()
        .take(keep)
        .map(|v| {
            let x = v.to_f64();
            x * x
        })
        .sum();
    (total - kept).max(0.0).sqrt()
}

/// Interior-node factorization of a group stack. Tall stacks go through
/// the blocked thin QR (packed-GEMM trailing updates, scratch from `ws`)
/// followed by the small square SVD of `R`; wide stacks hand straight to
/// the dense SVD, which blocks internally via the transposed QR. The
/// randomized path mirrors the old two-level scheme's per-merge seeding
/// so results do not depend on how many merges a rank happened to host.
fn interior_factorize<T: Scalar>(
    stack: &Matrix<T>,
    keep: usize,
    cfg: &SvdConfig,
    ws: &mut Workspace,
    q: &mut Matrix<T>,
    r: &mut Matrix<T>,
) -> (Matrix<T>, Vec<T>) {
    if cfg.low_rank {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(stack.cols() as u64));
        if cfg.precision == Precision::Mixed {
            let (x, s) = mixed_low_rank_svd(&stack.cast::<f64>(), keep, &mut rng);
            return (x.cast(), s.into_iter().map(T::from_f64).collect());
        }
        return low_rank_svd(stack, keep, &mut rng);
    }
    if stack.rows() >= stack.cols() {
        qr_thin_into(stack.view(), q, r, ws);
        let f = svd_with(r, cfg.method);
        let mut x = Matrix::zeros(0, 0);
        matmul_into(q.view(), f.u.view(), &mut x);
        (x, f.s)
    } else {
        let f = svd_with(stack, cfg.method);
        (f.u, f.s)
    }
}

/// Rank 0's final factorization — identical to the flat driver's inner
/// SVD, including its use of the caller's stateful RNG for the
/// randomized path, so a depth-1 plan reproduces the flat result bitwise.
fn root_factorize<T: Scalar>(
    w: &Matrix<T>,
    rank: usize,
    cfg: &SvdConfig,
    rng: &mut StdRng,
) -> (Matrix<T>, Vec<T>) {
    if cfg.low_rank {
        if cfg.precision == Precision::Mixed {
            let (x, s) = mixed_low_rank_svd(&w.cast::<f64>(), rank, rng);
            (x.cast(), s.into_iter().map(T::from_f64).collect())
        } else {
            low_rank_svd(w, rank, rng)
        }
    } else {
        let f = svd_with(w, cfg.method);
        (f.u, f.s)
    }
}

/// Charge the simulated clock for a factorization of a `rows x cols`
/// stack (formulas shared with the weak-scaling bench: deterministic
/// `2·max·min² + 26·min³`, randomized `6·(keep+10)·rows·cols`).
fn charge_factorize<C: Communicator>(
    comm: &C,
    cfg: &SvdConfig,
    rows: usize,
    cols: usize,
    keep: usize,
    rate: f64,
) {
    let mn = rows.min(cols) as f64;
    let mx = rows.max(cols) as f64;
    let flops = if cfg.low_rank {
        6.0 * (keep + 10) as f64 * rows as f64 * cols as f64
    } else {
        2.0 * mx * mn * mn + 26.0 * mn * mn * mn
    };
    comm.advance(flops / rate);
}

fn send_factor<C: Communicator, T: Scalar>(
    comm: &C,
    mixed: bool,
    fac: Matrix<T>,
    bounds: &[f64],
    merges: u64,
    dest: usize,
    tag: u64,
) -> Result<(), CommError> {
    if mixed {
        comm.try_send((fac.cast::<f32>(), bounds.to_vec(), merges), dest, tag)
    } else {
        comm.try_send((fac, bounds.to_vec(), merges), dest, tag)
    }
}

fn recv_factor<C: Communicator, T: Scalar>(
    comm: &C,
    mixed: bool,
    src: usize,
    tag: u64,
) -> Result<(Matrix<T>, Vec<f64>, u64), CommError> {
    if mixed {
        let (m, b, c) = comm.try_recv::<(Matrix<f32>, Vec<f64>, u64)>(src, tag)?;
        Ok((m.cast::<T>(), b, c))
    } else {
        comm.try_recv::<(Matrix<T>, Vec<f64>, u64)>(src, tag)
    }
}

/// Distributed SVD over a merge tree, writing this rank's block of the
/// `K` leading global left singular vectors into `phi` and returning the
/// singular values (identical on all ranks) plus the executed tree's
/// diagnostics (identical on all ranks — they ride the final broadcast).
///
/// `rng` feeds the root's randomized factorization exactly as the flat
/// driver's instance RNG does; `ws` backs the interior merges' QR
/// scratch; `compute_rate` (flop/s), when set, charges modeled local
/// compute to the communicator's simulated clock so weak-scaling sweeps
/// see compute and communication on one axis.
#[allow(clippy::too_many_arguments)]
pub fn try_merge_tree_svd_into<C: Communicator, T: Scalar + Payload>(
    comm: &C,
    cfg: SvdConfig,
    a_local: &Matrix<T>,
    plan: &MergeTreePlan,
    rng: &mut StdRng,
    ws: &mut Workspace,
    compute_rate: Option<f64>,
    phi: &mut Matrix<T>,
) -> Result<(Vec<T>, TreeMergeInfo), TreeSvdError> {
    let cfg = cfg.validated();
    let n = a_local.cols();
    assert!(n > 0, "merge_tree_svd: empty snapshot set");
    let mixed = cfg.precision == Precision::Mixed;
    let depth = plan.depth();

    // Claim every level's collective tag up front, identically on all
    // ranks: collective-round boundaries are where injected rank deaths
    // activate, so claiming before any exchange pins the world shape for
    // the whole tree walk — survivors renumber *here*, then agree on the
    // group structure below.
    let level_tags: Vec<u64> = (0..depth).map(|_| comm.next_collective_tag()).collect();
    let rank = comm.rank();
    let size = comm.size();

    // Leaf: local right vectors truncated to r1, scaled in place to
    // Wᵢ = Ṽⁱ (Σ̃ⁱ)ᵀ — the same factor flat APMOS gathers.
    let r1 = cfg.r1.min(n);
    let (mut fac, slocal) = generate_right_vectors(a_local, r1);
    for i in 0..fac.rows() {
        for (v, &s) in fac.row_mut(i).iter_mut().zip(&slocal) {
            *v *= s;
        }
    }
    if let Some(rate) = compute_rate {
        let (m, nn) = (a_local.rows() as f64, n as f64);
        comm.advance((2.0 * m * nn * nn + 25.0 * nn * nn * nn) / rate);
    }

    let mut bounds = vec![0.0f64; depth.saturating_sub(1)];
    let mut merges: u64 = 0;
    // QR factor buffers reused across levels; the kernels' transients come
    // from `ws`, so repeated merges are allocation-free once warm.
    let mut qbuf = Matrix::zeros(0, 0);
    let mut rbuf = Matrix::zeros(0, 0);

    let mut stride = 1usize;
    for (l, &f) in plan.fanouts().iter().enumerate() {
        let next_stride = stride.saturating_mul(f);
        let last = l + 1 == depth;
        if mixed {
            // Normalize this level's contribution to wire precision, root
            // block included — exactly what the flat gather's symmetric
            // demote/promote does, keeping depth-1 bitwise-pinned to flat.
            fac = fac.cast::<f32>().cast();
        }
        if rank.is_multiple_of(next_stride) {
            // Leader: collect the group's factors in rank order.
            let mut blocks = vec![std::mem::replace(&mut fac, Matrix::zeros(0, 0))];
            for j in 1..f {
                let src = match j.checked_mul(stride).and_then(|o| rank.checked_add(o)) {
                    Some(s) if s < size => s,
                    _ => break,
                };
                let (child, child_bounds, child_merges) =
                    recv_factor::<C, T>(comm, mixed, src, level_tags[l])?;
                for (b, cb) in bounds.iter_mut().zip(&child_bounds) {
                    *b += cb;
                }
                merges += child_merges;
                blocks.push(child);
            }
            if last || blocks.len() > 1 {
                let stack = Matrix::hstack_all(&blocks);
                drop(blocks);
                if last {
                    // Root level: factorize the final stack to r2 — the
                    // truncation the flat path performs too.
                    fac = stack;
                } else {
                    let keep = r1.min(stack.rows().min(stack.cols()));
                    if let Some(rate) = compute_rate {
                        charge_factorize(comm, &cfg, stack.rows(), stack.cols(), keep, rate);
                    }
                    let (x, s) = interior_factorize(&stack, keep, &cfg, ws, &mut qbuf, &mut rbuf);
                    bounds[l] += tail_energy(&stack, &s, keep.min(s.len()));
                    merges += 1;
                    // Re-compressed group factor: X̃ · diag(σ̃), scaled in
                    // place on the truncated copy.
                    let kk = keep.min(s.len());
                    let mut xk = x.first_columns(kk);
                    for i in 0..xk.rows() {
                        for (v, &sv) in xk.row_mut(i).iter_mut().zip(&s[..kk]) {
                            *v *= sv;
                        }
                    }
                    fac = xk;
                }
            } else {
                // Singleton group (ragged edge of the world): forward the
                // factor unchanged — nothing to merge, nothing discarded.
                fac = blocks.pop().expect("own block present");
            }
        } else {
            let leader = rank - (rank % next_stride);
            let owned = std::mem::replace(&mut fac, Matrix::zeros(0, 0));
            send_factor(comm, mixed, owned, &bounds, merges, leader, level_tags[l])?;
            break;
        }
        stride = next_stride;
    }

    // Rank 0 factorizes the root stack and truncates to r2; the factors
    // fan back out over the configured collective shape, the diagnostics
    // ride a second (tiny) broadcast so every rank reports the same bound.
    let (factors, tail) = if rank == 0 {
        let w = fac;
        let p = w.rows().min(w.cols());
        let r2 = cfg.r2.min(p);
        if let Some(rate) = compute_rate {
            charge_factorize(comm, &cfg, w.rows(), w.cols(), r2, rate);
        }
        let (x, s) = root_factorize(&w, r2, &cfg, rng);
        let tail = tail_energy(&w, &s, r2.min(s.len()));
        (Some((x.first_columns(r2), s[..r2.min(s.len())].to_vec())), tail)
    } else {
        (None, 0.0)
    };
    let (x, s) = crate::parallel::bcast_factors(comm, cfg.tree_collectives, mixed, factors, 0)?;
    let info_payload = if rank == 0 { Some((bounds, tail, merges)) } else { None };
    let (per_level_bound, root_tail, merges) = if cfg.tree_collectives {
        psvd_comm::collectives::try_tree_bcast(comm, info_payload, 0)?
    } else {
        comm.try_bcast(info_payload, 0)?
    };

    // Local slice of the global modes: Ũⁱ_j = (1/Λ̃_j) Aⁱ X̃_j.
    let k = cfg.k.min(s.iter().filter(|&&v| v > T::ZERO).count());
    let inv_s: Vec<T> = s[..k].iter().map(|&v| T::ONE / v).collect();
    matmul_into(a_local.view(), x.block(0, x.rows(), 0, k), phi);
    for i in 0..phi.rows() {
        for (v, &is) in phi.row_mut(i).iter_mut().zip(&inv_s) {
            *v *= is;
        }
    }
    if let Some(rate) = compute_rate {
        let (m, nn, kk) = (a_local.rows() as f64, n as f64, k as f64);
        comm.advance(2.0 * m * nn * kk / rate);
    }

    let info = TreeMergeInfo { fanouts: plan.fanouts.clone(), per_level_bound, root_tail, merges };
    Ok((s[..k].to_vec(), info))
}

/// One-shot merge-tree SVD with a fresh RNG/workspace (the convenience
/// entry point mirroring [`crate::parallel::parallel_svd_once`]).
pub fn try_merge_tree_svd<C: Communicator, T: Scalar + Payload>(
    comm: &C,
    cfg: SvdConfig,
    a_local: &Matrix<T>,
    plan: &MergeTreePlan,
) -> Result<(Matrix<T>, Vec<T>, TreeMergeInfo), TreeSvdError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ws = Workspace::new();
    let mut phi = Matrix::zeros(0, 0);
    let (s, info) =
        try_merge_tree_svd_into(comm, cfg, a_local, plan, &mut rng, &mut ws, None, &mut phi)?;
    Ok((phi, s, info))
}

/// As [`try_merge_tree_svd`], additionally charging modeled local compute
/// at `compute_rate` flop/s to the communicator's simulated clock — the
/// entry point of the `tree_scaling` weak-scaling bench.
pub fn try_merge_tree_svd_timed<C: Communicator, T: Scalar + Payload>(
    comm: &C,
    cfg: SvdConfig,
    a_local: &Matrix<T>,
    plan: &MergeTreePlan,
    compute_rate: f64,
) -> Result<(Matrix<T>, Vec<T>, TreeMergeInfo), TreeSvdError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ws = Workspace::new();
    let mut phi = Matrix::zeros(0, 0);
    let (s, info) = try_merge_tree_svd_into(
        comm,
        cfg,
        a_local,
        plan,
        &mut rng,
        &mut ws,
        Some(compute_rate),
        &mut phi,
    )?;
    Ok((phi, s, info))
}

/// Panicking convenience wrapper over [`try_merge_tree_svd`].
pub fn merge_tree_svd<C: Communicator, T: Scalar + Payload>(
    comm: &C,
    cfg: SvdConfig,
    a_local: &Matrix<T>,
    plan: &MergeTreePlan,
) -> (Matrix<T>, Vec<T>, TreeMergeInfo) {
    try_merge_tree_svd(comm, cfg, a_local, plan)
        .unwrap_or_else(|e| panic!("merge_tree_svd failed: {e}"))
}

/// Two-level distributed SVD (the original hierarchical API): groups of
/// `group_size` ranks share one leader; `group_size == 1` or `>= size`
/// degenerate to flat APMOS. Returns a typed error for unusable group
/// sizes (zero) or failed exchanges instead of panicking.
pub fn try_hierarchical_parallel_svd<C: Communicator, T: Scalar + Payload>(
    comm: &C,
    cfg: SvdConfig,
    a_local: &Matrix<T>,
    group_size: usize,
) -> Result<(Matrix<T>, Vec<T>), TreeSvdError> {
    let plan = MergeTreePlan::two_level(group_size, comm.size())?;
    let (phi, s, _info) = try_merge_tree_svd(comm, cfg, a_local, &plan)?;
    Ok((phi, s))
}

/// Panicking convenience wrapper over [`try_hierarchical_parallel_svd`].
pub fn hierarchical_parallel_svd<C: Communicator, T: Scalar + Payload>(
    comm: &C,
    cfg: SvdConfig,
    a_local: &Matrix<T>,
    group_size: usize,
) -> (Matrix<T>, Vec<T>) {
    try_hierarchical_parallel_svd(comm, cfg, a_local, group_size)
        .unwrap_or_else(|e| panic!("hierarchical_parallel_svd failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psvd_comm::World;
    use psvd_data::partition::split_rows;
    use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
    use psvd_linalg::validate::{max_principal_angle, spectrum_error};

    use crate::serial::batch_truncated_svd;

    fn decaying(m: usize, n: usize, seed: u64) -> Matrix {
        let spec: Vec<f64> = (0..n.min(m)).map(|i| 8.0 * 0.6f64.powi(i as i32)).collect();
        matrix_with_spectrum(m, n, &spec, &mut seeded_rng(seed))
    }

    fn run_hier(a: &Matrix, n_ranks: usize, group: usize, cfg: SvdConfig) -> (Matrix, Vec<f64>) {
        let blocks = split_rows(a, n_ranks);
        let world = World::new(n_ranks);
        let out =
            world.run(|comm| hierarchical_parallel_svd(comm, cfg, &blocks[comm.rank()], group));
        let modes = Matrix::vstack_all(&out.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
        (modes, out[0].1.clone())
    }

    #[test]
    fn exact_without_truncation() {
        let a = decaying(96, 10, 1);
        let k = 4;
        let cfg = SvdConfig::new(k).with_r1(10).with_r2(10).with_forget_factor(1.0);
        let (modes, s) = run_hier(&a, 8, 4, cfg);
        let (u_ref, s_ref) = batch_truncated_svd(&a, k);
        assert!(spectrum_error(&s_ref, &s) < 1e-8, "{s_ref:?} vs {s:?}");
        assert!(max_principal_angle(&u_ref, &modes) < 1e-6);
    }

    #[test]
    fn group_sizes_degenerate_consistently() {
        // group = 1 and group >= size both collapse to the flat plan and
        // must match the reference.
        let a = decaying(64, 12, 2);
        let k = 3;
        let cfg = SvdConfig::new(k).with_r1(12).with_r2(12);
        let (_, s_ref) = batch_truncated_svd(&a, k);
        for group in [1usize, 2, 4, 8, 100] {
            let (_, s) = run_hier(&a, 4, group, cfg);
            assert!(spectrum_error(&s_ref, &s) < 1e-7, "group {group}: {s:?} vs {s_ref:?}");
        }
    }

    #[test]
    fn truncated_still_accurate_on_decaying_spectrum() {
        let a = decaying(120, 24, 3);
        let k = 4;
        let cfg = SvdConfig::new(k).with_r1(8).with_r2(8);
        let (_, s) = run_hier(&a, 6, 3, cfg);
        let (_, s_ref) = batch_truncated_svd(&a, k);
        for (got, want) in s.iter().zip(&s_ref) {
            assert!((got - want).abs() / want < 0.02, "sigma {got} vs {want}");
        }
    }

    #[test]
    fn matches_flat_apmos() {
        let a = decaying(80, 16, 4);
        let k = 3;
        let cfg = SvdConfig::new(k).with_r1(10).with_r2(8);
        let (hier_modes, hier_s) = run_hier(&a, 8, 2, cfg);

        let blocks = split_rows(&a, 8);
        let world = World::new(8);
        let flat =
            world.run(|comm| crate::parallel::parallel_svd_once(comm, cfg, &blocks[comm.rank()]));
        let flat_modes =
            Matrix::vstack_all(&flat.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
        assert!(spectrum_error(&flat[0].1, &hier_s) < 1e-4);
        assert!(max_principal_angle(&flat_modes, &hier_modes) < 1e-3);
    }

    #[test]
    fn rank0_receives_less_with_groups() {
        // The whole point: rank 0's receive volume shrinks when leaders
        // pre-compress.
        let a = decaying(128, 32, 5);
        let cfg = SvdConfig::new(3).with_r1(16).with_r2(8);
        let recv_bytes = |group: usize| {
            let blocks = split_rows(&a, 8);
            let world = World::new(8);
            world.run(|comm| {
                let _ = hierarchical_parallel_svd(comm, cfg, &blocks[comm.rank()], group);
            });
            world.stats().recv_bytes(0)
        };
        let flat_like = recv_bytes(1); // flat plan: every rank sends raw
        let grouped = recv_bytes(4); // two leaders forward to rank 0
                                     // Rank 0 is itself a leader (receives its own group's raw blocks),
                                     // so the reduction is (g-1 raw + 1 compressed) vs (P-1 raw): with
                                     // P = 8, g = 4 that is 4/7 ≈ 0.57 of the flat volume.
        assert!(
            grouped * 3 < flat_like * 2,
            "grouping must cut rank-0 volume: {grouped} vs {flat_like}"
        );
    }

    #[test]
    fn uneven_group_sizes_work() {
        // 7 ranks with group size 3: groups {0,1,2}, {3,4,5}, {6}.
        let a = decaying(70, 10, 6);
        let cfg = SvdConfig::new(3).with_r1(10).with_r2(10);
        let (_, s) = run_hier(&a, 7, 3, cfg);
        let (_, s_ref) = batch_truncated_svd(&a, 3);
        assert!(spectrum_error(&s_ref, &s) < 1e-7);
    }

    // ---- plan construction -------------------------------------------

    #[test]
    fn plan_uniform_shapes() {
        assert_eq!(MergeTreePlan::uniform(2, 9).unwrap().fanouts(), &[2, 2, 2, 2]);
        assert_eq!(MergeTreePlan::uniform(4, 5).unwrap().fanouts(), &[4, 2]);
        assert_eq!(MergeTreePlan::uniform(3, 27).unwrap().fanouts(), &[3, 3, 3]);
        assert!(MergeTreePlan::uniform(4, 4).unwrap().is_flat());
        assert!(MergeTreePlan::uniform(8, 3).unwrap().is_flat());
        assert!(MergeTreePlan::uniform(1, 1).unwrap().is_flat());
    }

    #[test]
    fn plan_rejects_degenerate_shapes() {
        assert_eq!(MergeTreePlan::uniform(0, 8), Err(PlanError::ZeroFanout));
        assert_eq!(MergeTreePlan::uniform(1, 8), Err(PlanError::FanoutOne { world: 8 }));
        assert_eq!(MergeTreePlan::with_depth(0, 8), Err(PlanError::ZeroDepth));
        assert_eq!(MergeTreePlan::two_level(0, 8), Err(PlanError::ZeroFanout));
        assert_eq!(MergeTreePlan::explicit(vec![], 4), Err(PlanError::ZeroDepth));
        assert_eq!(MergeTreePlan::explicit(vec![2, 0], 4), Err(PlanError::ZeroFanout));
        assert_eq!(
            MergeTreePlan::explicit(vec![2, 2], 5),
            Err(PlanError::TooShallow { world: 5, capacity: 4 })
        );
    }

    #[test]
    fn plan_with_depth_covers_world() {
        for world in [2usize, 5, 9, 16, 100, 4096] {
            for depth in 1..=4 {
                let plan = MergeTreePlan::with_depth(depth, world).unwrap();
                assert!(plan.depth() <= depth.max(1), "world {world} depth {depth}");
                let capacity: usize = plan.fanouts().iter().product();
                assert!(capacity >= world, "world {world} depth {depth}: {plan:?}");
            }
        }
    }

    #[test]
    fn plan_resolution_precedence() {
        let world = 64;
        let flat = SvdConfig::new(2).with_tree_fanout(0).with_tree_depth(0);
        assert!(MergeTreePlan::resolve(&flat, world).unwrap().is_flat());
        let fan = flat.with_tree_fanout(4);
        assert_eq!(MergeTreePlan::resolve(&fan, world).unwrap().fanouts(), &[4, 4, 4]);
        let dep = flat.with_tree_depth(2);
        assert_eq!(MergeTreePlan::resolve(&dep, world).unwrap().fanouts(), &[8, 8]);
        let both = flat.with_tree_fanout(4).with_tree_depth(2);
        assert_eq!(MergeTreePlan::resolve(&both, world).unwrap().fanouts(), &[4, 16]);
    }

    #[test]
    fn plan_auto_heuristic() {
        assert!(MergeTreePlan::auto(1).is_flat());
        assert!(MergeTreePlan::auto(8).is_flat());
        assert_eq!(MergeTreePlan::auto(64).fanouts(), &[8, 8]);
        let big = MergeTreePlan::auto(4096);
        assert!(big.fanouts().iter().all(|&f| f <= 16), "{big:?}");
        let capacity: usize = big.fanouts().iter().product();
        assert!(capacity >= 4096);
    }

    // ---- satellite: typed errors + degenerate worlds ------------------

    #[test]
    fn zero_group_size_is_a_typed_error_not_a_panic() {
        let a = decaying(12, 6, 7);
        let world = World::new(1);
        let out = world.run(|comm| {
            let cfg = SvdConfig::new(2).with_r1(6).with_r2(6);
            try_hierarchical_parallel_svd(comm, cfg, &a, 0).map(|_| ())
        });
        match &out[0] {
            Err(TreeSvdError::Plan(PlanError::ZeroFanout)) => {}
            other => panic!("expected ZeroFanout, got {other:?}"),
        }
    }

    #[test]
    fn world_of_one_works_at_any_group_size() {
        let a = decaying(24, 8, 8);
        let (_, s_ref) = batch_truncated_svd(&a, 3);
        for group in [1usize, 2, 17] {
            let world = World::new(1);
            let cfg = SvdConfig::new(3).with_r1(8).with_r2(8);
            let out = world.run(|comm| {
                try_hierarchical_parallel_svd(comm, cfg, &a, group).expect("degenerate world")
            });
            assert!(spectrum_error(&s_ref, &out[0].1) < 1e-8, "group {group}");
        }
    }

    #[test]
    fn prime_worlds_with_ragged_groups_work() {
        for (ranks, group) in [(5usize, 2usize), (5, 3), (7, 2), (7, 4)] {
            let a = decaying(8 * ranks, 10, 9 + ranks as u64);
            let cfg = SvdConfig::new(3).with_r1(10).with_r2(10);
            let (_, s) = run_hier(&a, ranks, group, cfg);
            let (_, s_ref) = batch_truncated_svd(&a, 3);
            assert!(
                spectrum_error(&s_ref, &s) < 1e-7,
                "ranks {ranks} group {group}: {s:?} vs {s_ref:?}"
            );
        }
    }

    #[test]
    fn merge_info_reports_tree_shape_on_all_ranks() {
        let a = decaying(72, 12, 10);
        let blocks = split_rows(&a, 6);
        let plan = MergeTreePlan::uniform(2, 6).unwrap();
        let cfg = SvdConfig::new(3).with_r1(4).with_r2(4);
        let world = World::new(6);
        let out = world.run(|comm| {
            let (_, _, info) = merge_tree_svd(comm, cfg, &blocks[comm.rank()], &plan);
            info
        });
        for info in &out {
            assert_eq!(info, &out[0], "diagnostics must agree on every rank");
        }
        assert_eq!(out[0].fanouts, vec![2, 2, 2]);
        assert_eq!(out[0].per_level_bound.len(), 2);
        // 6 ranks, fanout 2: 3 merges at level 0, {0,2,4} -> 1 merge at
        // level 1 ({0,2} merge; 4 forwards singleton... rank 4 pairs with 0
        // at level 1), then {0,4} at level 2.
        assert!(out[0].merges >= 4, "expected >= 4 interior merges, got {}", out[0].merges);
        assert!(out[0].interior_bound() >= 0.0);
    }
}
