//! Hierarchical (two-level) APMOS — an extension attacking the rank-0
//! bottleneck the weak-scaling experiment exposes.
//!
//! In flat APMOS, rank 0 factorizes `W` with `r1 · N_ranks` columns, so its
//! compute grows linearly with the world size no matter how the gather is
//! routed. The two-level variant inserts *group leaders*: each leader
//! gathers its group's `W` blocks, factorizes the `N x (r1·g)` stack, and
//! forwards only `r1` re-compressed columns upward. Rank 0 then sees
//! `r1 · (N_ranks / g)` columns; with `g ≈ √N_ranks`, both levels cost
//! `O(√N_ranks)` instead of `O(N_ranks)`.
//!
//! The re-compression is sound for the same reason APMOS itself is: the
//! Gram identity `W_group W_groupᵀ = Σ_{i∈group} AⁱᵀAⁱ` means the group's
//! SVD-truncated `X̃Λ̃` carries the leading energy of the group's share of
//! the global covariance — it is exactly the `r1` truncation applied once
//! more, at the group level.

use psvd_comm::Communicator;
use psvd_linalg::gemm::matmul_into;
use psvd_linalg::randomized::low_rank_svd;
use psvd_linalg::snapshots::generate_right_vectors;
use psvd_linalg::svd::svd_with;
use psvd_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::SvdConfig;

const TAG_TO_LEADER: u64 = 40;
const TAG_TO_ROOT: u64 = 41;

/// Two-level distributed SVD. `group_size` ranks share one leader
/// (`group_size = 1` or `>= size` degenerate to flat APMOS shapes).
/// Returns this rank's block of the `K` leading global left singular
/// vectors and the singular values (identical on all ranks).
pub fn hierarchical_parallel_svd<C: Communicator>(
    comm: &C,
    cfg: SvdConfig,
    a_local: &Matrix,
    group_size: usize,
) -> (Matrix, Vec<f64>) {
    let cfg = cfg.validated();
    assert!(group_size >= 1, "group size must be positive");
    let n = a_local.cols();
    assert!(n > 0, "empty snapshot set");
    let rank = comm.rank();
    let size = comm.size();
    let r1 = cfg.r1.min(n);

    // Stage 1 (every rank): local right vectors, truncated to r1.
    // Wᵢ = Ṽⁱ (Σ̃ⁱ)ᵀ is a column scaling, done in place since Ṽⁱ is moved
    // into the gather anyway.
    let (mut wlocal, slocal) = generate_right_vectors(a_local, r1);
    for i in 0..wlocal.rows() {
        for (v, &s) in wlocal.row_mut(i).iter_mut().zip(&slocal) {
            *v *= s;
        }
    }

    // Stage 2: gather within the group at the leader and re-compress.
    let leader = (rank / group_size) * group_size;
    let group_end = (leader + group_size).min(size);
    let reduced = if rank == leader {
        let mut blocks = vec![wlocal];
        for src in leader + 1..group_end {
            blocks.push(comm.recv::<Matrix>(src, TAG_TO_LEADER));
        }
        let stack = Matrix::hstack_all(&blocks);
        // Group-level truncation back to r1 columns: X̃ Λ̃, again scaled in
        // place on the truncated copy.
        let keep = r1.min(stack.rows().min(stack.cols()));
        let (x, s) = factorize(&stack, keep, &cfg);
        let mut xk = x.first_columns(keep);
        for i in 0..xk.rows() {
            for (v, &s) in xk.row_mut(i).iter_mut().zip(&s[..keep.min(s.len())]) {
                *v *= s;
            }
        }
        Some(xk)
    } else {
        comm.send(wlocal, leader, TAG_TO_LEADER);
        None
    };

    // Stage 3: leaders forward to rank 0; rank 0 factorizes the reduced
    // stack and truncates to r2.
    let factors = if rank == 0 {
        let mut blocks = vec![reduced.expect("rank 0 is a leader")];
        let mut src = group_size;
        while src < size {
            blocks.push(comm.recv::<Matrix>(src, TAG_TO_ROOT));
            src += group_size;
        }
        let stack = Matrix::hstack_all(&blocks);
        let p = stack.rows().min(stack.cols());
        let r2 = cfg.r2.min(p);
        let (x, s) = factorize(&stack, r2, &cfg);
        Some((x.first_columns(r2), s[..r2.min(s.len())].to_vec()))
    } else {
        if rank == leader {
            comm.send(reduced.expect("leader has the reduction"), 0, TAG_TO_ROOT);
        }
        None
    };
    let (x, s) = comm.bcast(factors, 0);

    // Stage 4 (every rank): assemble the local mode slice directly from a
    // view of the truncated factor, scaling in place.
    let k = cfg.k.min(s.iter().filter(|&&v| v > 0.0).count());
    let inv_s: Vec<f64> = s[..k].iter().map(|&v| 1.0 / v).collect();
    let mut phi = Matrix::zeros(0, 0);
    matmul_into(a_local.view(), x.block(0, x.rows(), 0, k), &mut phi);
    for i in 0..phi.rows() {
        for (v, &is) in phi.row_mut(i).iter_mut().zip(&inv_s) {
            *v *= is;
        }
    }
    (phi, s[..k].to_vec())
}

fn factorize(w: &Matrix, rank_hint: usize, cfg: &SvdConfig) -> (Matrix, Vec<f64>) {
    if cfg.low_rank {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(w.cols() as u64));
        low_rank_svd(w, rank_hint, &mut rng)
    } else {
        let f = svd_with(w, cfg.method);
        (f.u, f.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psvd_comm::World;
    use psvd_data::partition::split_rows;
    use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
    use psvd_linalg::validate::{max_principal_angle, spectrum_error};

    use crate::serial::batch_truncated_svd;

    fn decaying(m: usize, n: usize, seed: u64) -> Matrix {
        let spec: Vec<f64> = (0..n.min(m)).map(|i| 8.0 * 0.6f64.powi(i as i32)).collect();
        matrix_with_spectrum(m, n, &spec, &mut seeded_rng(seed))
    }

    fn run_hier(a: &Matrix, n_ranks: usize, group: usize, cfg: SvdConfig) -> (Matrix, Vec<f64>) {
        let blocks = split_rows(a, n_ranks);
        let world = World::new(n_ranks);
        let out =
            world.run(|comm| hierarchical_parallel_svd(comm, cfg, &blocks[comm.rank()], group));
        let modes = Matrix::vstack_all(&out.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
        (modes, out[0].1.clone())
    }

    #[test]
    fn exact_without_truncation() {
        let a = decaying(96, 10, 1);
        let k = 4;
        let cfg = SvdConfig::new(k).with_r1(10).with_r2(10).with_forget_factor(1.0);
        let (modes, s) = run_hier(&a, 8, 4, cfg);
        let (u_ref, s_ref) = batch_truncated_svd(&a, k);
        assert!(spectrum_error(&s_ref, &s) < 1e-8, "{s_ref:?} vs {s:?}");
        assert!(max_principal_angle(&u_ref, &modes) < 1e-6);
    }

    #[test]
    fn group_sizes_degenerate_consistently() {
        // group = 1 (leaders forward untouched... still re-compress to r1,
        // a no-op at width r1) and group >= size (single leader = rank 0)
        // must both match the reference.
        let a = decaying(64, 12, 2);
        let k = 3;
        let cfg = SvdConfig::new(k).with_r1(12).with_r2(12);
        let (_, s_ref) = batch_truncated_svd(&a, k);
        for group in [1usize, 2, 4, 8, 100] {
            let (_, s) = run_hier(&a, 4, group, cfg);
            assert!(spectrum_error(&s_ref, &s) < 1e-7, "group {group}: {s:?} vs {s_ref:?}");
        }
    }

    #[test]
    fn truncated_still_accurate_on_decaying_spectrum() {
        let a = decaying(120, 24, 3);
        let k = 4;
        let cfg = SvdConfig::new(k).with_r1(8).with_r2(8);
        let (_, s) = run_hier(&a, 6, 3, cfg);
        let (_, s_ref) = batch_truncated_svd(&a, k);
        for (got, want) in s.iter().zip(&s_ref) {
            assert!((got - want).abs() / want < 0.02, "sigma {got} vs {want}");
        }
    }

    #[test]
    fn matches_flat_apmos() {
        let a = decaying(80, 16, 4);
        let k = 3;
        let cfg = SvdConfig::new(k).with_r1(10).with_r2(8);
        let (hier_modes, hier_s) = run_hier(&a, 8, 2, cfg);

        let blocks = split_rows(&a, 8);
        let world = World::new(8);
        let flat =
            world.run(|comm| crate::parallel::parallel_svd_once(comm, cfg, &blocks[comm.rank()]));
        let flat_modes =
            Matrix::vstack_all(&flat.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
        assert!(spectrum_error(&flat[0].1, &hier_s) < 1e-4);
        assert!(max_principal_angle(&flat_modes, &hier_modes) < 1e-3);
    }

    #[test]
    fn rank0_receives_less_with_groups() {
        // The whole point: rank 0's receive volume shrinks when leaders
        // pre-compress.
        let a = decaying(128, 32, 5);
        let cfg = SvdConfig::new(3).with_r1(16).with_r2(8);
        let recv_bytes = |group: usize| {
            let blocks = split_rows(&a, 8);
            let world = World::new(8);
            world.run(|comm| {
                let _ = hierarchical_parallel_svd(comm, cfg, &blocks[comm.rank()], group);
            });
            world.stats().recv_bytes(0)
        };
        let flat_like = recv_bytes(1); // every rank is its own leader
        let grouped = recv_bytes(4); // two leaders forward to rank 0
                                     // Rank 0 is itself a leader (receives its own group's raw blocks),
                                     // so the reduction is (g-1 raw + 1 compressed) vs (P-1 raw): with
                                     // P = 8, g = 4 that is 4/7 ≈ 0.57 of the flat volume.
        assert!(
            grouped * 3 < flat_like * 2,
            "grouping must cut rank-0 volume: {grouped} vs {flat_like}"
        );
    }

    #[test]
    fn uneven_group_sizes_work() {
        // 7 ranks with group size 3: groups {0,1,2}, {3,4,5}, {6}.
        let a = decaying(70, 10, 6);
        let cfg = SvdConfig::new(3).with_r1(10).with_r2(10);
        let (_, s) = run_hier(&a, 7, 3, cfg);
        let (_, s_ref) = batch_truncated_svd(&a, 3);
        assert!(spectrum_error(&s_ref, &s) < 1e-7);
    }
}
