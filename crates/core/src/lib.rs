//! # psvd-core
//!
//! The streaming, distributed and randomized SVD library — a Rust
//! reproduction of PyParSVD (Maulik & Mengaldo, SC 2021).
//!
//! Three building blocks compose (paper Section 3):
//!
//! 1. **Streaming** ([`serial::SerialStreamingSvd`]): Levy–Lindenbaum
//!    batch-wise updates of the `K` leading left singular vectors with a
//!    forget factor.
//! 2. **Distributed** ([`parallel::ParallelStreamingSvd`]): APMOS for the
//!    one-shot distributed SVD and TSQR for the distributed QR inside the
//!    streaming loop, over any [`psvd_comm::Communicator`].
//! 3. **Randomized**: rank-0 inner factorizations may use the randomized
//!    low-rank SVD (`SvdConfig::with_low_rank(true)`).
//!
//! ```
//! use psvd_core::{SerialStreamingSvd, SvdConfig};
//! use psvd_linalg::Matrix;
//!
//! let data = Matrix::from_fn(200, 40, |i, j| ((i + 3 * j) as f64 * 0.05).sin());
//! let mut svd = SerialStreamingSvd::new(SvdConfig::new(5).with_forget_factor(1.0));
//! svd.fit_batched(&data, 10); // four streaming batches of 10 snapshots
//! assert_eq!(svd.modes().shape(), (200, 5));
//! assert!(svd.singular_values().windows(2).all(|w| w[0] >= w[1]));
//! ```

pub mod brand;
pub mod checkpoint;
pub mod config;
pub mod dmd;
pub mod hierarchical;
pub mod parallel;
pub mod pod;
pub mod postprocess;
pub mod serial;
pub mod spod;
pub mod streaming_dmd;

pub use brand::BrandIncrementalSvd;
pub use checkpoint::SvdCheckpoint;
pub use config::{Precision, SvdConfig};
pub use dmd::{dmd, Dmd};
pub use hierarchical::{
    hierarchical_parallel_svd, merge_tree_svd, try_hierarchical_parallel_svd, try_merge_tree_svd,
    try_merge_tree_svd_into, try_merge_tree_svd_timed, MergeTreePlan, PlanError, TreeMergeInfo,
    TreeSvdError,
};
pub use parallel::{parallel_svd_once, DegradedInfo, IngestError, ParallelStreamingSvd};
pub use pod::{pod, Pod, StreamingPod};
pub use serial::{batch_truncated_svd, SerialStreamingSvd};
pub use spod::{spod, Spod, SpodConfig};
pub use streaming_dmd::StreamingDmd;
