//! Distributed streaming SVD (Listings 2–4 of the paper).
//!
//! Each rank owns a row block `Aⁱ` (`Mᵢ x N`) of the global snapshot
//! matrix. Two collective kernels do all the work:
//!
//! - [`ParallelStreamingSvd::parallel_svd`] — APMOS (Algorithm 2): local
//!   right vectors by the method of snapshots, truncated to `r1` columns,
//!   gathered at rank 0 into `W = [Ṽ¹Σ̃¹, …]`, factorized there, and the
//!   `r2`-truncated `(X̃, Λ̃)` broadcast back so each rank assembles its slice
//!   of the global left singular vectors `Ũⁱ_j = (1/Λ̃_j) Aⁱ X̃_j`;
//! - [`ParallelStreamingSvd::parallel_qr`] — TSQR (Benson et al.): local
//!   thin QR, R-blocks stacked and re-factorized at rank 0, global Q blocks
//!   scattered back, plus the SVD of the final `R` for the streaming update.
//!
//! The streaming driver (Listing 2) is the Levy–Lindenbaum loop of
//! [`crate::serial`] with both kernels swapped in. Rank 0's inner SVDs may
//! be randomized (`low_rank`), which is the paper's third building block.
//!
//! The paper's Listing 4 negates `qglobal`/`rfinal` ("trick for
//! consistency"); our QR canonicalizes to a non-negative `R` diagonal
//! instead, which achieves cross-rank consistency without the sign hack.
//!
//! Dense products (`matmul`, QR, the rank-0 SVDs) go through
//! `psvd_linalg::gemm`, whose packed engine threads large problems on the
//! shared worker pool. `World::run` registers its rank count with
//! `psvd_linalg::par`, so each rank's kernels default to an equal share of
//! the machine rather than oversubscribing it; results are bitwise
//! identical for any kernel thread count (see DESIGN.md, "Threading
//! model").

use psvd_comm::collectives::{tree_bcast, tree_gather};
use psvd_comm::Communicator;
use psvd_linalg::gemm::matmul;
use psvd_linalg::qr::thin_qr;
use psvd_linalg::randomized::low_rank_svd;
use psvd_linalg::snapshots::generate_right_vectors;
use psvd_linalg::svd::svd_with;
use psvd_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::SvdConfig;

/// Tag base for the TSQR Q-block scatter (the paper uses `tag = rank + 10`).
const TAG_QR_SCATTER: u64 = 10;

/// Distributed streaming truncated SVD over a row-partitioned snapshot
/// stream. One instance lives on each rank, driven in SPMD style.
pub struct ParallelStreamingSvd<'a, C: Communicator> {
    comm: &'a C,
    cfg: SvdConfig,
    ulocal: Matrix,
    singular_values: Vec<f64>,
    iteration: usize,
    snapshots_seen: usize,
    rng: StdRng,
}

impl<'a, C: Communicator> ParallelStreamingSvd<'a, C> {
    /// New driver on this rank.
    pub fn new(comm: &'a C, cfg: SvdConfig) -> Self {
        let cfg = cfg.validated();
        Self {
            comm,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            ulocal: Matrix::zeros(0, 0),
            singular_values: Vec::new(),
            iteration: 0,
            snapshots_seen: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SvdConfig {
        &self.cfg
    }

    /// The communicator driving this rank.
    pub fn comm(&self) -> &C {
        self.comm
    }

    /// True once `initialize` has run.
    pub fn is_initialized(&self) -> bool {
        self.snapshots_seen > 0
    }

    /// Number of streaming updates performed so far (excluding init).
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Total snapshots ingested.
    pub fn snapshots_seen(&self) -> usize {
        self.snapshots_seen
    }

    /// This rank's rows of the current global modes (`Mᵢ x K`).
    pub fn local_modes(&self) -> &Matrix {
        &self.ulocal
    }

    /// Current estimate of the leading singular values (identical on all
    /// ranks).
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// APMOS distributed SVD (Listing 3): returns this rank's block of the
    /// `K` leading global left singular vectors and the singular values.
    pub fn parallel_svd(&mut self, a_local: &Matrix) -> (Matrix, Vec<f64>) {
        let n = a_local.cols();
        assert!(n > 0, "parallel_svd: empty snapshot set");
        let r1 = self.cfg.r1.min(n);

        // Local right vectors by the method of snapshots, truncated to r1.
        let (vlocal, slocal) = generate_right_vectors(a_local, r1);
        // Wᵢ = Ṽⁱ (Σ̃ⁱ)ᵀ — a column scaling, since Σ̃ is diagonal.
        let wlocal = vlocal.mul_diag(&slocal);

        // Gather W at rank 0 and factorize there.
        let wglobal = if self.cfg.tree_collectives {
            tree_gather(self.comm, wlocal, 0)
        } else {
            self.comm.gather(wlocal, 0)
        };
        let factors = if self.comm.rank() == 0 {
            let w = Matrix::hstack_all(&wglobal.expect("rank 0 gathers"));
            let p = w.rows().min(w.cols());
            let r2 = self.cfg.r2.min(p);
            let (x, s) = if self.cfg.low_rank {
                low_rank_svd(&w, r2, &mut self.rng)
            } else {
                let f = svd_with(&w, self.cfg.method);
                (f.u, f.s)
            };
            Some((x.first_columns(r2), s[..r2.min(s.len())].to_vec()))
        } else {
            None
        };
        let (x, s) = if self.cfg.tree_collectives {
            tree_bcast(self.comm, factors, 0)
        } else {
            self.comm.bcast(factors, 0)
        };

        // Local slice of the global modes: Ũⁱ_j = (1/Λ̃_j) Aⁱ X̃_j.
        let k = self.cfg.k.min(s.iter().filter(|&&v| v > 0.0).count());
        let inv_s: Vec<f64> = s[..k].iter().map(|&v| 1.0 / v).collect();
        let phi = matmul(a_local, &x.first_columns(k)).mul_diag(&inv_s);
        (phi, s[..k].to_vec())
    }

    /// TSQR (Listing 4): factorizes the row-distributed matrix as
    /// `A = Q R`, returning `(Q_local, U_R, s_R)` where `U_R Σ_R V_Rᵀ` is
    /// the SVD of the final `R` (step I2/2 of the Levy–Lindenbaum loop).
    pub fn parallel_qr(&mut self, a_local: &Matrix) -> (Matrix, Matrix, Vec<f64>) {
        let n = a_local.cols();
        assert!(
            a_local.rows() >= n,
            "parallel_qr: local block must be tall ({} rows < {} cols); \
             use more snapshots per rank or fewer ranks",
            a_local.rows(),
            n
        );
        let rank = self.comm.rank();
        let size = self.comm.size();

        // Local thin QR; R is n x n because the block is tall.
        let local = thin_qr(a_local);

        // Gather the R factors, stack, and re-factorize at rank 0.
        let r_global = if self.cfg.tree_collectives {
            tree_gather(self.comm, local.r, 0)
        } else {
            self.comm.gather(local.r, 0)
        };
        let (qglobal_block, rfinal) = if rank == 0 {
            let stack = Matrix::vstack_all(&r_global.expect("rank 0 gathers"));
            let global = thin_qr(&stack);
            // Scatter each rank's n-row block of the stacked Q.
            for dst in 1..size {
                let block = global.q.row_block(dst * n, (dst + 1) * n);
                self.comm.send(block, dst, TAG_QR_SCATTER + dst as u64);
            }
            (global.q.row_block(0, n), Some(global.r))
        } else {
            (self.comm.recv::<Matrix>(0, TAG_QR_SCATTER + rank as u64), None)
        };
        let qlocal = matmul(&local.q, &qglobal_block);

        // SVD of the small final R at rank 0 (randomized if configured),
        // broadcast to everyone.
        let factors = if rank == 0 {
            let rfinal = rfinal.expect("rank 0 kept R");
            let (unew, snew) = if self.cfg.low_rank {
                low_rank_svd(&rfinal, self.cfg.k.min(n), &mut self.rng)
            } else {
                let f = svd_with(&rfinal, self.cfg.method);
                (f.u, f.s)
            };
            Some((unew, snew))
        } else {
            None
        };
        let (unew, snew) = if self.cfg.tree_collectives {
            tree_bcast(self.comm, factors, 0)
        } else {
            self.comm.bcast(factors, 0)
        };
        (qlocal, unew, snew)
    }

    /// Ingest the first local batch `A0ⁱ` (`Mᵢ x B`) — Listing 2's
    /// `initialize`: one APMOS pass.
    pub fn initialize(&mut self, a_local: &Matrix) -> &mut Self {
        assert!(!self.is_initialized(), "initialize called twice");
        let (ulocal, s) = self.parallel_svd(a_local);
        self.ulocal = ulocal;
        self.singular_values = s;
        self.snapshots_seen = a_local.cols();
        self
    }

    /// Ingest a further local batch — Listing 2's `incorporate_data`:
    /// stack `ff·U·D` with the new data, TSQR, small SVD, truncate to `K`.
    pub fn incorporate_data(&mut self, a_local: &Matrix) -> &mut Self {
        assert!(self.is_initialized(), "incorporate_data before initialize");
        assert_eq!(a_local.rows(), self.ulocal.rows(), "batch row count changed mid-stream");
        if a_local.cols() == 0 {
            return self;
        }
        self.iteration += 1;

        let weighted: Vec<f64> =
            self.singular_values.iter().map(|s| s * self.cfg.forget_factor).collect();
        let ll = self.ulocal.mul_diag(&weighted).hstack(a_local);

        let (qlocal, unew, snew) = self.parallel_qr(&ll);
        let k = self.cfg.k.min(snew.len());
        self.ulocal = matmul(&qlocal, &unew.first_columns(k));
        self.singular_values = snew[..k].to_vec();
        self.snapshots_seen += a_local.cols();
        self
    }

    /// Stream this rank's row block of an entire dataset in `batch`-column
    /// chunks.
    pub fn fit_batched(&mut self, a_local: &Matrix, batch: usize) -> &mut Self {
        assert!(batch > 0, "batch size must be positive");
        let n = a_local.cols();
        let mut c0 = 0;
        while c0 < n {
            let c1 = (c0 + batch).min(n);
            let chunk = a_local.submatrix(0, a_local.rows(), c0, c1);
            if self.is_initialized() {
                self.incorporate_data(&chunk);
            } else {
                self.initialize(&chunk);
            }
            c0 = c1;
        }
        self
    }

    /// Capture this rank's state for checkpointing (one checkpoint file
    /// per rank; pair with [`ParallelStreamingSvd::restore`]).
    pub fn checkpoint(&self) -> crate::checkpoint::SvdCheckpoint {
        assert!(self.is_initialized(), "checkpoint of an uninitialized tracker");
        crate::checkpoint::SvdCheckpoint {
            modes: self.ulocal.clone(),
            singular_values: self.singular_values.clone(),
            iteration: self.iteration,
            snapshots_seen: self.snapshots_seen,
        }
    }

    /// Rebuild this rank's tracker from its checkpoint; the stream resumes
    /// bit-exactly (all ranks must restore from the same streaming step).
    pub fn restore(comm: &'a C, cfg: SvdConfig, ckpt: crate::checkpoint::SvdCheckpoint) -> Self {
        assert!(ckpt.snapshots_seen > 0, "restored state must be initialized");
        assert_eq!(
            ckpt.modes.cols(),
            ckpt.singular_values.len(),
            "inconsistent checkpoint"
        );
        let mut d = Self::new(comm, cfg);
        d.ulocal = ckpt.modes;
        d.singular_values = ckpt.singular_values;
        d.iteration = ckpt.iteration;
        d.snapshots_seen = ckpt.snapshots_seen;
        d
    }

    /// Gather the distributed modes into the global `M x K` matrix at
    /// `root` (rank order = row order). Returns `Some` at the root.
    pub fn gather_modes(&self, root: usize) -> Option<Matrix> {
        let blocks = self.comm.gather(self.ulocal.clone(), root);
        blocks.map(|b| Matrix::vstack_all(&b))
    }
}

/// One-shot distributed (optionally randomized) SVD without streaming —
/// the configuration the paper's weak-scaling experiment times.
pub fn parallel_svd_once<C: Communicator>(
    comm: &C,
    cfg: SvdConfig,
    a_local: &Matrix,
) -> (Matrix, Vec<f64>) {
    let mut driver = ParallelStreamingSvd::new(comm, cfg);
    driver.parallel_svd(a_local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psvd_comm::World;
    use psvd_data::partition::split_rows;
    use psvd_linalg::norms::orthogonality_error;
    use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
    use psvd_linalg::validate::{max_principal_angle, spectrum_error};

    use crate::serial::{batch_truncated_svd, SerialStreamingSvd};

    fn decaying_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let spec: Vec<f64> = (0..n.min(m)).map(|i| 8.0 * 0.6f64.powi(i as i32)).collect();
        matrix_with_spectrum(m, n, &spec, &mut seeded_rng(seed))
    }

    #[test]
    fn apmos_exact_without_truncation() {
        // r1 = N, full SVD at rank 0: APMOS is algebraically exact because
        // W Wᵀ = Σᵢ AⁱᵀAⁱ = AᵀA.
        let a = decaying_matrix(96, 12, 1);
        let k = 5;
        let cfg = SvdConfig::new(k).with_r1(12).with_r2(12).with_forget_factor(1.0);
        let world = World::new(4);
        let blocks = split_rows(&a, 4);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            let (phi, s) = d.parallel_svd(&blocks[comm.rank()]);
            (phi, s)
        });
        let global_u = Matrix::vstack_all(&out.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
        let (u_ref, s_ref) = batch_truncated_svd(&a, k);
        assert!(spectrum_error(&s_ref, &out[0].1) < 1e-9, "sigma mismatch");
        assert!(max_principal_angle(&u_ref, &global_u) < 1e-7);
        assert!(orthogonality_error(&global_u) < 1e-8);
        // All ranks agree on singular values.
        for (_, s) in &out {
            assert_eq!(s, &out[0].1);
        }
    }

    #[test]
    fn apmos_truncated_still_accurate_on_decaying_spectrum() {
        let a = decaying_matrix(80, 24, 2);
        let k = 4;
        let cfg = SvdConfig::new(k).with_r1(10).with_r2(8);
        let world = World::new(4);
        let blocks = split_rows(&a, 4);
        let out = world.run(|comm| {
            parallel_svd_once(comm, cfg, &blocks[comm.rank()])
        });
        let (_, s_ref) = batch_truncated_svd(&a, k);
        for (got, want) in out[0].1.iter().zip(&s_ref) {
            assert!((got - want).abs() / want < 0.02, "sigma {got} vs {want}");
        }
    }

    #[test]
    fn tsqr_factorizes_distributed_matrix() {
        let a = decaying_matrix(64, 8, 3);
        let cfg = SvdConfig::new(4).with_forget_factor(1.0);
        let world = World::new(4);
        let blocks = split_rows(&a, 4);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.parallel_qr(&blocks[comm.rank()])
        });
        // Stacked local Qs form the global Q.
        let q = Matrix::vstack_all(&out.iter().map(|(q, _, _)| q.clone()).collect::<Vec<_>>());
        assert!(orthogonality_error(&q) < 1e-10, "global Q not orthonormal");
        // SVD of R gives the singular values of A.
        let f_ref = psvd_linalg::svd(&a);
        assert!(spectrum_error(&f_ref.s, &out[0].2) < 1e-10);
        // Q * (U_R Σ V_Rᵀ reconstruction through the returned factors):
        // A = Q R and R = U_R Σ V_Rᵀ, so Q·U_R spans A's left space.
        let qu = matmul(&q, &out[0].1);
        assert!(max_principal_angle(&f_ref.u.first_columns(4), &qu.first_columns(4)) < 1e-7);
    }

    #[test]
    fn parallel_streaming_matches_serial_streaming() {
        // Identical math, distributed: the parallel driver must track the
        // serial one to round-off-level agreement at every step.
        let a = decaying_matrix(72, 30, 4);
        let k = 5;
        let batch = 6;
        let cfg = SvdConfig::new(k).with_forget_factor(0.95).with_r1(30).with_r2(30);

        let mut serial = SerialStreamingSvd::new(cfg);
        serial.fit_batched(&a, batch);

        let world = World::new(3);
        let blocks = split_rows(&a, 3);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.fit_batched(&blocks[comm.rank()], batch);
            (d.gather_modes(0), d.singular_values().to_vec())
        });
        assert!(
            spectrum_error(serial.singular_values(), &out[0].1) < 1e-6,
            "serial {:?} vs parallel {:?}",
            serial.singular_values(),
            out[0].1
        );
        let par_modes = out[0].0.as_ref().expect("root gathered");
        assert!(max_principal_angle(serial.modes(), par_modes) < 1e-5);
    }

    #[test]
    fn single_rank_parallel_equals_serial() {
        let a = decaying_matrix(40, 16, 5);
        let cfg = SvdConfig::new(3).with_forget_factor(1.0).with_r1(16).with_r2(16);
        let mut serial = SerialStreamingSvd::new(cfg);
        serial.fit_batched(&a, 4);

        let world = World::new(1);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.fit_batched(&a, 4);
            (d.gather_modes(0).unwrap(), d.singular_values().to_vec())
        });
        assert!(spectrum_error(serial.singular_values(), &out[0].1) < 1e-8);
        assert!(max_principal_angle(serial.modes(), &out[0].0) < 1e-6);
    }

    #[test]
    fn gather_modes_assembles_in_rank_order() {
        let a = decaying_matrix(60, 10, 6);
        let cfg = SvdConfig::new(2).with_forget_factor(1.0).with_r1(10).with_r2(10);
        let world = World::new(4);
        let blocks = split_rows(&a, 4);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.initialize(&blocks[comm.rank()]);
            (comm.rank(), d.gather_modes(2), d.local_modes().clone())
        });
        // Only rank 2 gets the assembly.
        for (rank, gathered, _) in &out {
            assert_eq!(gathered.is_some(), *rank == 2);
        }
        let assembled = out[2].1.as_ref().unwrap();
        let manual =
            Matrix::vstack_all(&out.iter().map(|(_, _, l)| l.clone()).collect::<Vec<_>>());
        assert_eq!(assembled, &manual);
    }

    #[test]
    fn randomized_parallel_path_tracks_leading_modes() {
        let a = decaying_matrix(80, 20, 7);
        let k = 3;
        let cfg = SvdConfig::new(k)
            .with_forget_factor(1.0)
            .with_r1(20)
            .with_r2(10)
            .with_low_rank(true)
            .with_power_iterations(2)
            .with_seed(42);
        let world = World::new(2);
        let blocks = split_rows(&a, 2);
        let out = world.run(|comm| parallel_svd_once(comm, cfg, &blocks[comm.rank()]));
        let (_, s_ref) = batch_truncated_svd(&a, k);
        for (got, want) in out[0].1.iter().zip(&s_ref) {
            assert!((got - want).abs() / want < 0.05, "sigma {got} vs {want}");
        }
    }

    #[test]
    fn traffic_shrinks_with_r1() {
        // The whole point of r1: it caps the gathered volume.
        let a = decaying_matrix(64, 32, 8);
        let count_bytes = |r1: usize| {
            let cfg = SvdConfig::new(2).with_r1(r1).with_r2(4);
            let world = World::new(4);
            let blocks = split_rows(&a, 4);
            world.run(|comm| {
                let _ = parallel_svd_once(comm, cfg, &blocks[comm.rank()]);
            });
            world.stats().total_bytes()
        };
        let big = count_bytes(32);
        let small = count_bytes(4);
        assert!(small < big, "r1=4 traffic {small} should undercut r1=32 traffic {big}");
    }

    #[test]
    fn tree_collectives_give_identical_results() {
        // The deterministic path must produce bit-identical factorizations
        // whether the gather/broadcast run flat or as binomial trees.
        let a = decaying_matrix(72, 24, 9);
        let base = SvdConfig::new(4).with_forget_factor(0.95).with_r1(12).with_r2(8);
        let run = |cfg: SvdConfig| {
            let blocks = split_rows(&a, 5);
            let world = World::new(5);
            world.run(|comm| {
                let mut d = ParallelStreamingSvd::new(comm, cfg);
                d.fit_batched(&blocks[comm.rank()], 8);
                (d.gather_modes(0), d.singular_values().to_vec())
            })
        };
        let flat = run(base);
        let tree = run(base.with_tree_collectives(true));
        assert_eq!(flat[0].1, tree[0].1, "singular values must be bit-identical");
        assert_eq!(flat[0].0, tree[0].0, "modes must be bit-identical");
    }

    #[test]
    // The tall-block assertion fires inside the rank thread; the harness
    // surfaces it as a join failure on the spawning thread.
    #[should_panic(expected = "rank thread panicked")]
    fn tsqr_rejects_short_blocks() {
        let cfg = SvdConfig::new(2);
        let world = World::new(1);
        world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            let wide = Matrix::zeros(3, 8);
            let _ = d.parallel_qr(&wide);
        });
    }
}
