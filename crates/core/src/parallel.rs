//! Distributed streaming SVD (Listings 2–4 of the paper).
//!
//! Each rank owns a row block `Aⁱ` (`Mᵢ x N`) of the global snapshot
//! matrix. Two collective kernels do all the work:
//!
//! - [`ParallelStreamingSvd::parallel_svd`] — APMOS (Algorithm 2): local
//!   right vectors by the method of snapshots, truncated to `r1` columns,
//!   gathered at rank 0 into `W = [Ṽ¹Σ̃¹, …]`, factorized there, and the
//!   `r2`-truncated `(X̃, Λ̃)` broadcast back so each rank assembles its slice
//!   of the global left singular vectors `Ũⁱ_j = (1/Λ̃_j) Aⁱ X̃_j`;
//! - [`ParallelStreamingSvd::parallel_qr`] — TSQR (Benson et al.): local
//!   thin QR, R-blocks stacked and re-factorized at rank 0, global Q blocks
//!   scattered back, plus the SVD of the final `R` for the streaming update.
//!
//! The streaming driver (Listing 2) is the Levy–Lindenbaum loop of
//! [`crate::serial`] with both kernels swapped in. Rank 0's inner SVDs may
//! be randomized (`low_rank`), which is the paper's third building block.
//!
//! The paper's Listing 4 negates `qglobal`/`rfinal` ("trick for
//! consistency"); our QR canonicalizes to a non-negative `R` diagonal
//! instead, which achieves cross-rank consistency without the sign hack.
//!
//! Dense products (`matmul`, QR, the rank-0 SVDs) go through
//! `psvd_linalg::gemm`, whose packed engine threads large problems on the
//! shared worker pool. `World::run` registers its rank count with
//! `psvd_linalg::par`, so each rank's kernels default to an equal share of
//! the machine rather than oversubscribing it; results are bitwise
//! identical for any kernel thread count (see DESIGN.md, "Threading
//! model").

use std::io;

use psvd_comm::collectives::{tree_allgather, tree_gather, try_tree_bcast, try_tree_gather};
use psvd_comm::{CommError, Communicator, Payload};
use psvd_data::stream::SnapshotSource;
use psvd_linalg::gemm::matmul_into;
use psvd_linalg::qr::qr_thin_into;
use psvd_linalg::randomized::{low_rank_svd, mixed_low_rank_svd};
use psvd_linalg::snapshots::generate_right_vectors;
use psvd_linalg::svd::svd_with;
use psvd_linalg::workspace::{Workspace, WorkspaceStats};
use psvd_linalg::{Matrix, Scalar};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{Precision, SvdConfig};
use crate::hierarchical::{try_merge_tree_svd_into, MergeTreePlan, TreeMergeInfo, TreeSvdError};

/// Gather `m` at `root`. In mixed-precision mode every block is demoted
/// to `f32` *before* entering the collective (so root and non-root
/// contributions are charged — and rounded — identically) and promoted
/// back on receipt; otherwise blocks travel at the native dtype. The
/// demotion happens ahead of the tree/flat split, so both collective
/// shapes move bit-identical payloads.
pub(crate) fn gather_blocks<C: Communicator, T: Scalar>(
    comm: &C,
    tree: bool,
    mixed: bool,
    m: Matrix<T>,
    root: usize,
) -> Result<Option<Vec<Matrix<T>>>, CommError> {
    if mixed {
        let demoted = m.cast::<f32>();
        let parts = if tree {
            try_tree_gather(comm, demoted, root)?
        } else {
            comm.try_gather(demoted, root)?
        };
        Ok(parts.map(|ps| ps.into_iter().map(|p| p.cast::<T>()).collect()))
    } else if tree {
        try_tree_gather(comm, m, root)
    } else {
        comm.try_gather(m, root)
    }
}

/// Broadcast the `(factor matrix, singular values)` pair from `root`. In
/// mixed-precision mode the matrix travels as `f32` and the singular
/// values as `f64` (they are `K` numbers — demoting them would halve
/// nothing and cost the σ accuracy contract); every rank, root included,
/// consumes the promoted wire copy so all ranks hold bit-identical
/// factors.
pub(crate) fn bcast_factors<C: Communicator, T: Scalar + Payload>(
    comm: &C,
    tree: bool,
    mixed: bool,
    factors: Option<(Matrix<T>, Vec<T>)>,
    root: usize,
) -> Result<(Matrix<T>, Vec<T>), CommError> {
    if mixed {
        let demoted = factors
            .map(|(x, s)| (x.cast::<f32>(), s.iter().map(|v| v.to_f64()).collect::<Vec<f64>>()));
        let (x, s) = if tree {
            try_tree_bcast(comm, demoted, root)?
        } else {
            comm.try_bcast(demoted, root)?
        };
        Ok((x.cast::<T>(), s.into_iter().map(T::from_f64).collect()))
    } else if tree {
        try_tree_bcast(comm, factors, root)
    } else {
        comm.try_bcast(factors, root)
    }
}

/// Tag base for the TSQR Q-block scatter (the paper uses `tag = rank + 10`).
const TAG_QR_SCATTER: u64 = 10;

/// Failure of a pull-based ingestion round
/// ([`ParallelStreamingSvd::try_fit_source`]): either the snapshot source
/// failed to produce a batch (disk/decode) or the collective round on a
/// delivered batch failed permanently.
#[derive(Debug)]
pub enum IngestError {
    /// The snapshot source failed (out-of-core read / decode).
    Io(io::Error),
    /// A collective round failed permanently.
    Comm(CommError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "snapshot source failed: {e}"),
            IngestError::Comm(e) => write!(f, "collective round failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Comm(e) => Some(e),
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<CommError> for IngestError {
    fn from(e: CommError) -> Self {
        IngestError::Comm(e)
    }
}

/// Report of a run that survived permanent rank failures.
///
/// When `cfg.allow_degraded` is set and the communicator's world shrinks
/// (a fault-injection rank death, in production a failed node), the driver
/// keeps streaming on the survivors: the dead rank's row block simply
/// drops out of the global factorization, every collective renumbers onto
/// the shrunken world, and this record describes what was lost.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradedInfo {
    /// World size when the driver was built.
    pub initial_ranks: usize,
    /// World size now.
    pub surviving_ranks: usize,
    /// Dead ranks, in the initial (physical) numbering.
    pub failed_ranks: Vec<usize>,
    /// Driver iteration count when the (latest) failure was detected.
    pub detected_at_iteration: usize,
}

/// Distributed streaming truncated SVD over a row-partitioned snapshot
/// stream. One instance lives on each rank, driven in SPMD style.
///
/// Like the serial driver, every `O(Mᵢ)` per-batch temporary lives in
/// per-instance buffers reused across updates; after warm-up a streaming
/// round's only allocations are the small `O(n²)` factors that transfer
/// ownership through the communicator (gathered `R` blocks, scattered `Q`
/// blocks, broadcast SVD factors) — those are inherent to message passing
/// and are accounted by the communicator's traffic statistics.
///
/// Generic over the element dtype `T` (default `f64`); in mixed-precision
/// mode (`cfg.precision == Mixed`) every matrix crossing the communicator
/// is demoted to `f32` on the wire and promoted back on receipt, and the
/// root's randomized inner SVDs run the f32-sketch / f64-re-orthogonalize
/// pipeline — see DESIGN.md, "Scalar genericity & mixed precision".
pub struct ParallelStreamingSvd<'a, C: Communicator, T: Scalar = f64> {
    comm: &'a C,
    cfg: SvdConfig,
    ulocal: Matrix<T>,
    singular_values: Vec<T>,
    iteration: usize,
    snapshots_seen: usize,
    rng: StdRng,
    /// Scratch arena feeding the QR kernels.
    ws: Workspace,
    /// Persistent `[ff·U·D | A_i]` stack buffer.
    stack: Matrix<T>,
    /// Persistent local thin-QR `Q` factor (TSQR step 1).
    qr_q: Matrix<T>,
    /// Persistent global `Q`/`R` factors of the stacked R re-QR (root only).
    qr_gq: Matrix<T>,
    qr_gr: Matrix<T>,
    /// Persistent `Q_local · block` product buffer.
    qlocal: Matrix<T>,
    /// Buffer the next mode block is formed in before swapping into place.
    next_ulocal: Matrix<T>,
    /// Down-weighted singular values `ff · s`.
    weighted: Vec<T>,
    /// Persistent landing buffer for pull-based ingestion (`fit_source`).
    ingest: Matrix<T>,
    /// World size at construction.
    initial_world: usize,
    /// World size as of the last completed operation.
    world_size: usize,
    /// Set once the run has survived a rank failure.
    degraded: Option<DegradedInfo>,
    /// Diagnostics of the latest hierarchical APMOS round (`None` until a
    /// non-flat merge-tree plan has executed).
    tree_info: Option<TreeMergeInfo>,
}

impl<'a, C: Communicator, T: Scalar + Payload> ParallelStreamingSvd<'a, C, T> {
    /// New driver on this rank.
    pub fn new(comm: &'a C, cfg: SvdConfig) -> Self {
        let cfg = cfg.validated();
        let size = comm.size();
        // Surface an unusable tree configuration here, like `validated()`
        // does for the numeric knobs, rather than mid-stream.
        MergeTreePlan::resolve(&cfg, size)
            .unwrap_or_else(|e| panic!("merge-tree configuration rejected: {e}"));
        Self {
            comm,
            initial_world: size,
            world_size: size,
            degraded: None,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            ulocal: Matrix::zeros(0, 0),
            singular_values: Vec::new(),
            iteration: 0,
            snapshots_seen: 0,
            ws: Workspace::new(),
            stack: Matrix::zeros(0, 0),
            qr_q: Matrix::zeros(0, 0),
            qr_gq: Matrix::zeros(0, 0),
            qr_gr: Matrix::zeros(0, 0),
            qlocal: Matrix::zeros(0, 0),
            next_ulocal: Matrix::zeros(0, 0),
            weighted: Vec::new(),
            ingest: Matrix::zeros(0, 0),
            tree_info: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SvdConfig {
        &self.cfg
    }

    /// The communicator driving this rank.
    pub fn comm(&self) -> &C {
        self.comm
    }

    /// True once `initialize` has run.
    pub fn is_initialized(&self) -> bool {
        self.snapshots_seen > 0
    }

    /// Number of streaming updates performed so far (excluding init).
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Total snapshots ingested.
    pub fn snapshots_seen(&self) -> usize {
        self.snapshots_seen
    }

    /// This rank's rows of the current global modes (`Mᵢ x K`).
    pub fn local_modes(&self) -> &Matrix<T> {
        &self.ulocal
    }

    /// Current estimate of the leading singular values (identical on all
    /// ranks).
    pub fn singular_values(&self) -> &[T] {
        &self.singular_values
    }

    /// Consume the tracker, handing out this rank's modes and the singular
    /// values without copying them.
    pub fn into_modes(self) -> (Matrix<T>, Vec<T>) {
        (self.ulocal, self.singular_values)
    }

    /// Allocation accounting for the internal scratch arena (see
    /// [`crate::serial::SerialStreamingSvd::scratch_stats`]).
    pub fn scratch_stats(&self) -> WorkspaceStats {
        self.ws.stats()
    }

    /// Reset the scratch-arena counters.
    pub fn reset_scratch_stats(&mut self) {
        self.ws.reset_stats();
    }

    /// `Some` once the run has survived a permanent rank failure (requires
    /// `cfg.allow_degraded`).
    pub fn degraded(&self) -> Option<&DegradedInfo> {
        self.degraded.as_ref()
    }

    /// Diagnostics of the latest hierarchical APMOS round: executed tree
    /// shape and the tracked truncation-error bound. `None` while the
    /// resolved plan is the flat gather (the backward-compatible default).
    pub fn tree_merge_info(&self) -> Option<&TreeMergeInfo> {
        self.tree_info.as_ref()
    }

    /// Reconcile the tracked world size with the communicator's. A shrink
    /// means some rank died since the last operation: record it if the
    /// configuration tolerates degraded runs, error out otherwise. Called
    /// before and after every fallible driver operation, so a failure is
    /// reported at the latest by the next call after the collective round
    /// in which it happened.
    fn note_world(&mut self) -> Result<(), CommError> {
        let alive = self.comm.size();
        if alive < self.world_size {
            let failed = self.comm.failed_ranks();
            if !self.cfg.allow_degraded {
                let rank = failed.first().copied().unwrap_or(usize::MAX);
                return Err(CommError::RankDead { rank });
            }
            self.world_size = alive;
            match &mut self.degraded {
                Some(info) => {
                    info.surviving_ranks = alive;
                    info.failed_ranks = failed;
                }
                None => {
                    self.degraded = Some(DegradedInfo {
                        initial_ranks: self.initial_world,
                        surviving_ranks: alive,
                        failed_ranks: failed,
                        detected_at_iteration: self.iteration,
                    });
                }
            }
        }
        Ok(())
    }

    /// APMOS distributed SVD (Listing 3): returns this rank's block of the
    /// `K` leading global left singular vectors and the singular values.
    pub fn parallel_svd(&mut self, a_local: &Matrix<T>) -> (Matrix<T>, Vec<T>) {
        let mut phi = Matrix::zeros(0, 0);
        let s = self.parallel_svd_into(a_local, &mut phi);
        (phi, s)
    }

    /// APMOS round writing this rank's mode block into `phi` (reused
    /// across calls — warm buffers make the local assembly allocation-free;
    /// the gathered/broadcast factors inherently transfer ownership).
    fn parallel_svd_into(&mut self, a_local: &Matrix<T>, phi: &mut Matrix<T>) -> Vec<T> {
        self.try_parallel_svd_into(a_local, phi)
            .unwrap_or_else(|e| panic!("parallel_svd failed: {e}"))
    }

    /// Fallible APMOS round: surfaces permanent communication failures
    /// (dead ranks, exhausted retries) instead of panicking.
    fn try_parallel_svd_into(
        &mut self,
        a_local: &Matrix<T>,
        phi: &mut Matrix<T>,
    ) -> Result<Vec<T>, CommError> {
        let n = a_local.cols();
        assert!(n > 0, "parallel_svd: empty snapshot set");

        // Hierarchical exchange: re-resolve the plan against the *current*
        // world (a degraded run may have shrunk below the tree threshold)
        // and hand the round to the merge-tree engine. The flat plan stays
        // on the inline path below — bit-for-bit and byte-for-byte the
        // same exchange as before the tree engine existed.
        let plan = MergeTreePlan::resolve(&self.cfg, self.comm.size())
            .unwrap_or_else(|e| panic!("merge-tree configuration rejected: {e}"));
        if !plan.is_flat() {
            let result = try_merge_tree_svd_into(
                self.comm,
                self.cfg,
                a_local,
                &plan,
                &mut self.rng,
                &mut self.ws,
                None,
                phi,
            );
            return match result {
                Ok((s, info)) => {
                    self.tree_info = Some(info);
                    Ok(s)
                }
                Err(TreeSvdError::Comm(e)) => Err(e),
                Err(TreeSvdError::Plan(e)) => {
                    unreachable!("plan errors surface at resolve time: {e}")
                }
            };
        }

        let r1 = self.cfg.r1.min(n);
        let mixed = self.cfg.precision == Precision::Mixed;

        // Local right vectors by the method of snapshots, truncated to r1.
        let (mut wlocal, slocal) = generate_right_vectors(a_local, r1);
        // Wᵢ = Ṽⁱ (Σ̃ⁱ)ᵀ — a column scaling, since Σ̃ is diagonal; done in
        // place since Ṽⁱ is moved into the gather anyway.
        for i in 0..wlocal.rows() {
            for (v, &s) in wlocal.row_mut(i).iter_mut().zip(&slocal) {
                *v *= s;
            }
        }

        // Gather W at rank 0 and factorize there.
        let wglobal = gather_blocks(self.comm, self.cfg.tree_collectives, mixed, wlocal, 0)?;
        // Root-ness = who holds the gathered blocks (see `qr_round` on
        // death-round transitions).
        let factors = if let Some(parts) = wglobal {
            let w = Matrix::hstack_all(&parts);
            let p = w.rows().min(w.cols());
            let r2 = self.cfg.r2.min(p);
            let (x, s) = self.small_factorize(&w, r2);
            Some((x.first_columns(r2), s[..r2.min(s.len())].to_vec()))
        } else {
            None
        };
        let (x, s) = bcast_factors(self.comm, self.cfg.tree_collectives, mixed, factors, 0)?;

        // Local slice of the global modes: Ũⁱ_j = (1/Λ̃_j) Aⁱ X̃_j.
        let k = self.cfg.k.min(s.iter().filter(|&&v| v > T::ZERO).count());
        let inv_s: Vec<T> = s[..k].iter().map(|&v| T::ONE / v).collect();
        matmul_into(a_local.view(), x.block(0, x.rows(), 0, k), phi);
        for i in 0..phi.rows() {
            for (v, &is) in phi.row_mut(i).iter_mut().zip(&inv_s) {
                *v *= is;
            }
        }
        Ok(s[..k].to_vec())
    }

    /// Rank 0's inner SVD of a small gathered factor: randomized when
    /// `low_rank` (through the mixed f32-sketch pipeline in mixed mode),
    /// dense otherwise.
    fn small_factorize(&mut self, w: &Matrix<T>, rank: usize) -> (Matrix<T>, Vec<T>) {
        if self.cfg.low_rank {
            if self.cfg.precision == Precision::Mixed {
                let (x, s) = mixed_low_rank_svd(&w.cast::<f64>(), rank, &mut self.rng);
                (x.cast(), s.into_iter().map(T::from_f64).collect())
            } else {
                low_rank_svd(w, rank, &mut self.rng)
            }
        } else {
            let f = svd_with(w, self.cfg.method);
            (f.u, f.s)
        }
    }

    /// TSQR (Listing 4): factorizes the row-distributed matrix as
    /// `A = Q R`, returning `(Q_local, U_R, s_R)` where `U_R Σ_R V_Rᵀ` is
    /// the SVD of the final `R` (step I2/2 of the Levy–Lindenbaum loop).
    pub fn parallel_qr(&mut self, a_local: &Matrix<T>) -> (Matrix<T>, Matrix<T>, Vec<T>) {
        let mut qlocal = Matrix::zeros(0, 0);
        let (unew, snew) = self.parallel_qr_into(a_local, &mut qlocal);
        (qlocal, unew, snew)
    }

    /// TSQR round writing `Q_local` into a caller-owned buffer. Local `Q`,
    /// the root's stacked-R re-QR factors and the QR scratch persist on the
    /// instance; only the `O(n²)` matrices whose ownership moves through
    /// the communicator are freshly allocated.
    ///
    /// Both QR stages route through `qr_thin_into`, which dispatches to
    /// the blocked compact-WY factorization for wide-enough panels (see
    /// `PSVD_QR_BLOCK` in DESIGN.md): the tall local stage gets the
    /// packed-GEMM trailing updates, while the small `pn x n` root stage
    /// stays on the unblocked reference path with its serial reflector
    /// fallback — no thread-pool handoff for a factorization that takes
    /// microseconds.
    fn parallel_qr_into(
        &mut self,
        a_local: &Matrix<T>,
        qlocal: &mut Matrix<T>,
    ) -> (Matrix<T>, Vec<T>) {
        self.try_parallel_qr_into(a_local, qlocal)
            .unwrap_or_else(|e| panic!("parallel_qr failed: {e}"))
    }

    /// Fallible TSQR round: surfaces permanent communication failures
    /// instead of panicking. The persistent factor buffers are restored on
    /// every exit path, so an errored round leaves the instance reusable.
    fn try_parallel_qr_into(
        &mut self,
        a_local: &Matrix<T>,
        qlocal: &mut Matrix<T>,
    ) -> Result<(Matrix<T>, Vec<T>), CommError> {
        // Take the persistent buffers out of self so the communicator and
        // RNG can be borrowed freely in the body; restored before
        // propagating either outcome.
        let mut local_q = std::mem::replace(&mut self.qr_q, Matrix::zeros(0, 0));
        let mut gq = std::mem::replace(&mut self.qr_gq, Matrix::zeros(0, 0));
        let mut gr = std::mem::replace(&mut self.qr_gr, Matrix::zeros(0, 0));
        let result = self.qr_round(a_local, qlocal, &mut local_q, &mut gq, &mut gr);
        self.qr_q = local_q;
        self.qr_gq = gq;
        self.qr_gr = gr;
        result
    }

    /// The TSQR round proper, operating on buffers held by the caller.
    fn qr_round(
        &mut self,
        a_local: &Matrix<T>,
        qlocal: &mut Matrix<T>,
        local_q: &mut Matrix<T>,
        gq: &mut Matrix<T>,
        gr: &mut Matrix<T>,
    ) -> Result<(Matrix<T>, Vec<T>), CommError> {
        let mixed = self.cfg.precision == Precision::Mixed;
        let n = a_local.cols();
        assert!(
            a_local.rows() >= n,
            "parallel_qr: local block must be tall ({} rows < {} cols); \
             use more snapshots per rank or fewer ranks",
            a_local.rows(),
            n
        );
        // Local thin QR; R is n x n because the block is tall. R is moved
        // into the gather, so it is built in a fresh matrix.
        let mut local_r = Matrix::zeros(0, 0);
        qr_thin_into(a_local.view(), local_q, &mut local_r, &mut self.ws);

        // Gather the R factors, stack (reusing their storage), and
        // re-factorize at rank 0. The world shape is read only after the
        // gather: its collective round boundary is where injected rank
        // deaths activate, and the scatter below must address the
        // post-transition world (root-ness = who holds the gathered Rs).
        let r_global = gather_blocks(self.comm, self.cfg.tree_collectives, mixed, local_r, 0)?;
        let rank = self.comm.rank();
        let size = self.comm.size();
        let have_rfinal = if let Some(parts) = r_global {
            let stack = Matrix::vstack_owned(parts);
            qr_thin_into(stack.view(), gq, gr, &mut self.ws);
            // Scatter each rank's n-row block of the stacked Q; rank 0's
            // own block is consumed as a view, never copied. Mixed mode
            // demotes the scattered blocks to f32 on the wire.
            for dst in 1..size {
                let block = gq.block(dst * n, (dst + 1) * n, 0, n);
                if mixed {
                    let demoted: Matrix<f32> = block.to_matrix().cast();
                    self.comm.try_send(demoted, dst, TAG_QR_SCATTER + dst as u64)?;
                } else {
                    self.comm.try_send(block.to_matrix(), dst, TAG_QR_SCATTER + dst as u64)?;
                }
            }
            matmul_into(local_q.view(), gq.block(0, n, 0, n), qlocal);
            true
        } else {
            if mixed {
                let block = self.comm.try_recv::<Matrix<f32>>(0, TAG_QR_SCATTER + rank as u64)?;
                let promoted: Matrix<T> = block.cast();
                matmul_into(local_q.view(), promoted.view(), qlocal);
            } else {
                let block = self.comm.try_recv::<Matrix<T>>(0, TAG_QR_SCATTER + rank as u64)?;
                matmul_into(local_q.view(), block.view(), qlocal);
            }
            false
        };

        // SVD of the small final R at rank 0 (randomized if configured),
        // broadcast to everyone.
        let factors = if have_rfinal {
            let rank_cap = self.cfg.k.min(n);
            let (unew, snew) = if self.cfg.low_rank {
                if mixed {
                    let (x, s) = mixed_low_rank_svd(&gr.cast::<f64>(), rank_cap, &mut self.rng);
                    (x.cast(), s.into_iter().map(T::from_f64).collect())
                } else {
                    low_rank_svd(gr, rank_cap, &mut self.rng)
                }
            } else {
                let f = svd_with(gr, self.cfg.method);
                (f.u, f.s)
            };
            Some((unew, snew))
        } else {
            None
        };
        bcast_factors(self.comm, self.cfg.tree_collectives, mixed, factors, 0)
    }

    /// Ingest the first local batch `A0ⁱ` (`Mᵢ x B`) — Listing 2's
    /// `initialize`: one APMOS pass.
    pub fn initialize(&mut self, a_local: &Matrix<T>) -> &mut Self {
        self.try_initialize(a_local).unwrap_or_else(|e| panic!("initialize failed: {e}"))
    }

    /// Fallible [`ParallelStreamingSvd::initialize`]: permanent
    /// communication failures surface as [`CommError`]. With
    /// `cfg.allow_degraded` a surviving rank records the shrink in
    /// [`ParallelStreamingSvd::degraded`] and keeps going.
    pub fn try_initialize(&mut self, a_local: &Matrix<T>) -> Result<&mut Self, CommError> {
        assert!(!self.is_initialized(), "initialize called twice");
        self.note_world()?;
        let mut phi = std::mem::replace(&mut self.next_ulocal, Matrix::zeros(0, 0));
        let s = self.try_parallel_svd_into(a_local, &mut phi);
        self.next_ulocal = phi;
        let s = s?;
        std::mem::swap(&mut self.ulocal, &mut self.next_ulocal);
        self.singular_values = s;
        self.snapshots_seen = a_local.cols();
        self.note_world()?;
        Ok(self)
    }

    /// Ingest a further local batch — Listing 2's `incorporate_data`:
    /// stack `ff·U·D` with the new data, TSQR, small SVD, truncate to `K`.
    pub fn incorporate_data(&mut self, a_local: &Matrix<T>) -> &mut Self {
        self.try_incorporate_data(a_local)
            .unwrap_or_else(|e| panic!("incorporate_data failed: {e}"))
    }

    /// Fallible [`ParallelStreamingSvd::incorporate_data`] (see
    /// [`ParallelStreamingSvd::try_initialize`] for the failure contract).
    /// An errored update leaves the previous factorization intact.
    pub fn try_incorporate_data(&mut self, a_local: &Matrix<T>) -> Result<&mut Self, CommError> {
        assert!(self.is_initialized(), "incorporate_data before initialize");
        assert_eq!(a_local.rows(), self.ulocal.rows(), "batch row count changed mid-stream");
        if a_local.cols() == 0 {
            return Ok(self);
        }
        self.note_world()?;
        self.iteration += 1;

        // Build [ff * U_{i-1} D_{i-1} | A_i] row by row in the persistent
        // stack buffer — same multiplies as mul_diag + hstack, no
        // transient matrices.
        let (m, k0) = self.ulocal.shape();
        let ff = T::from_f64(self.cfg.forget_factor);
        self.weighted.clear();
        self.weighted.extend(self.singular_values.iter().map(|s| *s * ff));
        self.stack.reshape_for_overwrite(m, k0 + a_local.cols());
        for i in 0..m {
            let dst = self.stack.row_mut(i);
            for ((d, &u), &w) in dst[..k0].iter_mut().zip(self.ulocal.row(i)).zip(&self.weighted) {
                *d = u * w;
            }
            dst[k0..].copy_from_slice(a_local.row(i));
        }

        let stack = std::mem::replace(&mut self.stack, Matrix::zeros(0, 0));
        let mut qlocal = std::mem::replace(&mut self.qlocal, Matrix::zeros(0, 0));
        let round = self.try_parallel_qr_into(&stack, &mut qlocal);
        self.stack = stack;
        let (unew, snew) = match round {
            Ok(f) => f,
            Err(e) => {
                // Leave the previous factorization (and counters) intact.
                self.qlocal = qlocal;
                self.iteration -= 1;
                return Err(e);
            }
        };
        let k = self.cfg.k.min(snew.len());
        matmul_into(qlocal.view(), unew.block(0, unew.rows(), 0, k), &mut self.next_ulocal);
        std::mem::swap(&mut self.ulocal, &mut self.next_ulocal);
        self.qlocal = qlocal;
        self.singular_values.clear();
        self.singular_values.extend_from_slice(&snew[..k]);
        self.snapshots_seen += a_local.cols();
        self.note_world()?;
        Ok(self)
    }

    /// Stream this rank's row block of an entire dataset in `batch`-column
    /// chunks.
    pub fn fit_batched(&mut self, a_local: &Matrix<T>, batch: usize) -> &mut Self {
        self.try_fit_batched(a_local, batch).unwrap_or_else(|e| panic!("fit_batched failed: {e}"))
    }

    /// Fallible [`ParallelStreamingSvd::fit_batched`]: stops at the first
    /// batch whose collective round fails permanently.
    pub fn try_fit_batched(
        &mut self,
        a_local: &Matrix<T>,
        batch: usize,
    ) -> Result<&mut Self, CommError> {
        assert!(batch > 0, "batch size must be positive");
        let n = a_local.cols();
        let mut c0 = 0;
        while c0 < n {
            let c1 = (c0 + batch).min(n);
            let chunk = a_local.submatrix(0, a_local.rows(), c0, c1);
            if self.is_initialized() {
                self.try_incorporate_data(&chunk)?;
            } else {
                self.try_initialize(&chunk)?;
            }
            c0 = c1;
        }
        Ok(self)
    }

    /// Stream every batch a [`SnapshotSource`] yields — the pull-based
    /// ingestion path of a distributed run. Each rank drives its own
    /// source over its own row hyperslab (with a
    /// [`psvd_data::prefetch::SnapshotPrefetcher`], its own file handle
    /// and reader thread — the MPI-IO independent-access pattern), so
    /// batch `k+1`'s IO and decode overlap batch `k`'s collective update.
    /// Panics on failure; see [`ParallelStreamingSvd::try_fit_source`].
    pub fn fit_source<S: SnapshotSource<T>>(&mut self, source: &mut S) -> &mut Self {
        self.try_fit_source(source).unwrap_or_else(|e| panic!("fit_source failed: {e}"))
    }

    /// Fallible [`ParallelStreamingSvd::fit_source`]: IO failures surface
    /// as [`IngestError::Io`], permanent collective failures as
    /// [`IngestError::Comm`]; either way the last successful update's
    /// factorization stays intact. All ranks must fail or succeed
    /// together for the SPMD stream to stay consistent — an IO error is
    /// local to this rank, so callers tolerating per-rank faults should
    /// pair this with `cfg.allow_degraded`.
    pub fn try_fit_source<S: SnapshotSource<T>>(
        &mut self,
        source: &mut S,
    ) -> Result<&mut Self, IngestError> {
        let mut ingest = std::mem::replace(&mut self.ingest, Matrix::zeros(0, 0));
        let result = (|| {
            while source.next_batch_into(&mut ingest)? {
                if self.is_initialized() {
                    self.try_incorporate_data(&ingest)?;
                } else {
                    self.try_initialize(&ingest)?;
                }
            }
            Ok(())
        })();
        self.ingest = ingest;
        result.map(|()| self)
    }

    /// Gather the distributed modes into the global `M x K` matrix at
    /// `root` (rank order = row order). Returns `Some` at the root. Copies
    /// this rank's block into the gather; when the tracker is finished,
    /// [`ParallelStreamingSvd::into_gathered_modes`] moves it instead.
    pub fn gather_modes(&self, root: usize) -> Option<Matrix<T>> {
        if self.cfg.precision == Precision::Mixed {
            let demoted = self.ulocal.cast::<f32>();
            let blocks = if self.cfg.tree_collectives {
                tree_gather(self.comm, demoted, root)
            } else {
                self.comm.gather(demoted, root)
            };
            return blocks.map(|b| Matrix::vstack_owned(b.iter().map(|p| p.cast::<T>()).collect()));
        }
        let blocks = if self.cfg.tree_collectives {
            tree_gather(self.comm, self.ulocal.clone(), root)
        } else {
            self.comm.gather(self.ulocal.clone(), root)
        };
        blocks.map(|b| Matrix::vstack_all(&b))
    }

    /// Consume the tracker and gather the distributed modes at `root`,
    /// moving this rank's block into the collective (no snapshot copy) and
    /// assembling the result by reusing the gathered storage.
    pub fn into_gathered_modes(self, root: usize) -> Option<Matrix<T>> {
        if self.cfg.precision == Precision::Mixed {
            return self.gather_modes(root);
        }
        let blocks = if self.cfg.tree_collectives {
            tree_gather(self.comm, self.ulocal, root)
        } else {
            self.comm.gather(self.ulocal, root)
        };
        blocks.map(Matrix::vstack_owned)
    }

    /// Gather the distributed modes into the global `M x K` matrix on
    /// *every* rank — [`ParallelStreamingSvd::gather_modes`] followed by a
    /// broadcast, both tree-structured when `cfg.tree_collectives` is set
    /// so no stage funnels flat through rank 0.
    pub fn allgather_modes(&self) -> Matrix<T> {
        if self.cfg.precision == Precision::Mixed {
            let demoted = self.ulocal.cast::<f32>();
            let blocks = if self.cfg.tree_collectives {
                tree_allgather(self.comm, demoted)
            } else {
                self.comm.allgather(demoted)
            };
            return Matrix::vstack_owned(blocks.iter().map(|p| p.cast::<T>()).collect());
        }
        let blocks = if self.cfg.tree_collectives {
            tree_allgather(self.comm, self.ulocal.clone())
        } else {
            self.comm.allgather(self.ulocal.clone())
        };
        Matrix::vstack_owned(blocks)
    }
}

/// Checkpointing is defined on the `f64` instantiation only — the
/// on-disk [`crate::checkpoint::SvdCheckpoint`] format is fixed at
/// double precision.
impl<'a, C: Communicator> ParallelStreamingSvd<'a, C> {
    /// Capture this rank's state for checkpointing (one checkpoint file
    /// per rank; pair with [`ParallelStreamingSvd::restore`]). Copies the
    /// mode block — use [`ParallelStreamingSvd::into_checkpoint`] when the
    /// tracker is done streaming.
    pub fn checkpoint(&self) -> crate::checkpoint::SvdCheckpoint {
        assert!(self.is_initialized(), "checkpoint of an uninitialized tracker");
        crate::checkpoint::SvdCheckpoint {
            modes: self.ulocal.clone(),
            singular_values: self.singular_values.clone(),
            iteration: self.iteration,
            snapshots_seen: self.snapshots_seen,
        }
    }

    /// Consume the tracker into its checkpoint without copying the modes.
    pub fn into_checkpoint(self) -> crate::checkpoint::SvdCheckpoint {
        assert!(self.is_initialized(), "checkpoint of an uninitialized tracker");
        crate::checkpoint::SvdCheckpoint {
            modes: self.ulocal,
            singular_values: self.singular_values,
            iteration: self.iteration,
            snapshots_seen: self.snapshots_seen,
        }
    }

    /// Rebuild this rank's tracker from its checkpoint; the stream resumes
    /// bit-exactly (all ranks must restore from the same streaming step).
    pub fn restore(comm: &'a C, cfg: SvdConfig, ckpt: crate::checkpoint::SvdCheckpoint) -> Self {
        assert!(ckpt.snapshots_seen > 0, "restored state must be initialized");
        assert_eq!(ckpt.modes.cols(), ckpt.singular_values.len(), "inconsistent checkpoint");
        let mut d = Self::new(comm, cfg);
        d.ulocal = ckpt.modes;
        d.singular_values = ckpt.singular_values;
        d.iteration = ckpt.iteration;
        d.snapshots_seen = ckpt.snapshots_seen;
        d
    }
}

/// One-shot distributed (optionally randomized) SVD without streaming —
/// the configuration the paper's weak-scaling experiment times.
pub fn parallel_svd_once<C: Communicator, T: Scalar + Payload>(
    comm: &C,
    cfg: SvdConfig,
    a_local: &Matrix<T>,
) -> (Matrix<T>, Vec<T>) {
    let mut driver = ParallelStreamingSvd::new(comm, cfg);
    driver.parallel_svd(a_local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psvd_comm::World;
    use psvd_data::partition::split_rows;
    use psvd_linalg::gemm::matmul;
    use psvd_linalg::norms::orthogonality_error;
    use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
    use psvd_linalg::validate::{max_principal_angle, spectrum_error};

    use crate::serial::{batch_truncated_svd, SerialStreamingSvd};

    fn decaying_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let spec: Vec<f64> = (0..n.min(m)).map(|i| 8.0 * 0.6f64.powi(i as i32)).collect();
        matrix_with_spectrum(m, n, &spec, &mut seeded_rng(seed))
    }

    #[test]
    fn apmos_exact_without_truncation() {
        // r1 = N, full SVD at rank 0: APMOS is algebraically exact because
        // W Wᵀ = Σᵢ AⁱᵀAⁱ = AᵀA.
        let a = decaying_matrix(96, 12, 1);
        let k = 5;
        let cfg = SvdConfig::new(k)
            .with_r1(12)
            .with_r2(12)
            .with_forget_factor(1.0)
            .with_precision(Precision::F64);
        let world = World::new(4);
        let blocks = split_rows(&a, 4);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            let (phi, s) = d.parallel_svd(&blocks[comm.rank()]);
            (phi, s)
        });
        let global_u = Matrix::vstack_all(&out.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
        let (u_ref, s_ref) = batch_truncated_svd(&a, k);
        assert!(spectrum_error(&s_ref, &out[0].1) < 1e-9, "sigma mismatch");
        assert!(max_principal_angle(&u_ref, &global_u) < 1e-7);
        assert!(orthogonality_error(&global_u) < 1e-8);
        // All ranks agree on singular values.
        for (_, s) in &out {
            assert_eq!(s, &out[0].1);
        }
    }

    #[test]
    fn apmos_truncated_still_accurate_on_decaying_spectrum() {
        let a = decaying_matrix(80, 24, 2);
        let k = 4;
        let cfg = SvdConfig::new(k).with_r1(10).with_r2(8);
        let world = World::new(4);
        let blocks = split_rows(&a, 4);
        let out = world.run(|comm| parallel_svd_once(comm, cfg, &blocks[comm.rank()]));
        let (_, s_ref) = batch_truncated_svd(&a, k);
        for (got, want) in out[0].1.iter().zip(&s_ref) {
            assert!((got - want).abs() / want < 0.02, "sigma {got} vs {want}");
        }
    }

    #[test]
    fn tsqr_factorizes_distributed_matrix() {
        let a = decaying_matrix(64, 8, 3);
        let cfg = SvdConfig::new(4).with_forget_factor(1.0).with_precision(Precision::F64);
        let world = World::new(4);
        let blocks = split_rows(&a, 4);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.parallel_qr(&blocks[comm.rank()])
        });
        // Stacked local Qs form the global Q.
        let q = Matrix::vstack_all(&out.iter().map(|(q, _, _)| q.clone()).collect::<Vec<_>>());
        assert!(orthogonality_error(&q) < 1e-10, "global Q not orthonormal");
        // SVD of R gives the singular values of A.
        let f_ref = psvd_linalg::svd(&a);
        assert!(spectrum_error(&f_ref.s, &out[0].2) < 1e-10);
        // Q * (U_R Σ V_Rᵀ reconstruction through the returned factors):
        // A = Q R and R = U_R Σ V_Rᵀ, so Q·U_R spans A's left space.
        let qu = matmul(&q, &out[0].1);
        assert!(max_principal_angle(&f_ref.u.first_columns(4), &qu.first_columns(4)) < 1e-7);
    }

    #[test]
    fn parallel_streaming_matches_serial_streaming() {
        // Identical math, distributed: the parallel driver must track the
        // serial one to round-off-level agreement at every step.
        let a = decaying_matrix(72, 30, 4);
        let k = 5;
        let batch = 6;
        let cfg = SvdConfig::new(k)
            .with_forget_factor(0.95)
            .with_r1(30)
            .with_r2(30)
            .with_precision(Precision::F64);

        let mut serial = SerialStreamingSvd::new(cfg);
        serial.fit_batched(&a, batch);

        let world = World::new(3);
        let blocks = split_rows(&a, 3);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.fit_batched(&blocks[comm.rank()], batch);
            let s = d.singular_values().to_vec();
            (d.into_gathered_modes(0), s)
        });
        assert!(
            spectrum_error(serial.singular_values(), &out[0].1) < 1e-6,
            "serial {:?} vs parallel {:?}",
            serial.singular_values(),
            out[0].1
        );
        let par_modes = out[0].0.as_ref().expect("root gathered");
        assert!(max_principal_angle(serial.modes(), par_modes) < 1e-5);
    }

    #[test]
    fn single_rank_parallel_equals_serial() {
        let a = decaying_matrix(40, 16, 5);
        let cfg = SvdConfig::new(3)
            .with_forget_factor(1.0)
            .with_r1(16)
            .with_r2(16)
            .with_precision(Precision::F64);
        let mut serial = SerialStreamingSvd::new(cfg);
        serial.fit_batched(&a, 4);

        let world = World::new(1);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.fit_batched(&a, 4);
            let s = d.singular_values().to_vec();
            (d.into_gathered_modes(0).unwrap(), s)
        });
        assert!(spectrum_error(serial.singular_values(), &out[0].1) < 1e-8);
        assert!(max_principal_angle(serial.modes(), &out[0].0) < 1e-6);
    }

    #[test]
    fn gather_modes_assembles_in_rank_order() {
        let a = decaying_matrix(60, 10, 6);
        let cfg = SvdConfig::new(2)
            .with_forget_factor(1.0)
            .with_r1(10)
            .with_r2(10)
            .with_precision(Precision::F64);
        let world = World::new(4);
        let blocks = split_rows(&a, 4);
        let out = world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.initialize(&blocks[comm.rank()]);
            let gathered = d.gather_modes(2);
            (comm.rank(), gathered, d.into_modes().0)
        });
        // Only rank 2 gets the assembly.
        for (rank, gathered, _) in &out {
            assert_eq!(gathered.is_some(), *rank == 2);
        }
        let assembled = out[2].1.as_ref().unwrap();
        let manual = Matrix::vstack_owned(out.iter().map(|(_, _, l)| l.clone()).collect());
        assert_eq!(assembled, &manual);
    }

    #[test]
    fn steady_state_updates_reuse_scratch() {
        // After one warm-up update, every further same-shape TSQR round
        // must be served entirely from the per-instance workspace.
        let a = decaying_matrix(60, 30, 10);
        let cfg = SvdConfig::new(4).with_forget_factor(0.99).with_r1(6).with_r2(6);
        let world = World::new(3);
        let blocks = split_rows(&a, 3);
        let stats = world.run(|comm| {
            let b = &blocks[comm.rank()];
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            d.initialize(&b.submatrix(0, b.rows(), 0, 6));
            d.incorporate_data(&b.submatrix(0, b.rows(), 6, 12)); // warm-up
            d.reset_scratch_stats();
            for c0 in (12..30).step_by(6) {
                d.incorporate_data(&b.submatrix(0, b.rows(), c0, c0 + 6));
            }
            d.scratch_stats()
        });
        for s in &stats {
            assert!(s.takes > 0, "updates must route QR scratch through the workspace");
            assert_eq!(s.misses, 0, "steady-state TSQR rounds must not miss the workspace");
            assert_eq!(s.fresh_bytes, 0);
        }
    }

    #[test]
    fn randomized_parallel_path_tracks_leading_modes() {
        let a = decaying_matrix(80, 20, 7);
        let k = 3;
        let cfg = SvdConfig::new(k)
            .with_forget_factor(1.0)
            .with_r1(20)
            .with_r2(10)
            .with_low_rank(true)
            .with_power_iterations(2)
            .with_seed(42);
        let world = World::new(2);
        let blocks = split_rows(&a, 2);
        let out = world.run(|comm| parallel_svd_once(comm, cfg, &blocks[comm.rank()]));
        let (_, s_ref) = batch_truncated_svd(&a, k);
        for (got, want) in out[0].1.iter().zip(&s_ref) {
            assert!((got - want).abs() / want < 0.05, "sigma {got} vs {want}");
        }
    }

    #[test]
    fn traffic_shrinks_with_r1() {
        // The whole point of r1: it caps the gathered volume.
        let a = decaying_matrix(64, 32, 8);
        let count_bytes = |r1: usize| {
            let cfg = SvdConfig::new(2).with_r1(r1).with_r2(4);
            let world = World::new(4);
            let blocks = split_rows(&a, 4);
            world.run(|comm| {
                let _ = parallel_svd_once(comm, cfg, &blocks[comm.rank()]);
            });
            world.stats().total_bytes()
        };
        let big = count_bytes(32);
        let small = count_bytes(4);
        assert!(small < big, "r1=4 traffic {small} should undercut r1=32 traffic {big}");
    }

    #[test]
    fn tree_collectives_give_identical_results() {
        // The deterministic path must produce bit-identical factorizations
        // whether the gather/broadcast run flat or as binomial trees.
        let a = decaying_matrix(72, 24, 9);
        let base = SvdConfig::new(4).with_forget_factor(0.95).with_r1(12).with_r2(8);
        let run = |cfg: SvdConfig| {
            let blocks = split_rows(&a, 5);
            let world = World::new(5);
            world.run(|comm| {
                let mut d = ParallelStreamingSvd::new(comm, cfg);
                d.fit_batched(&blocks[comm.rank()], 8);
                (d.gather_modes(0), d.singular_values().to_vec())
            })
        };
        let flat = run(base);
        let tree = run(base.with_tree_collectives(true));
        assert_eq!(flat[0].1, tree[0].1, "singular values must be bit-identical");
        assert_eq!(flat[0].0, tree[0].0, "modes must be bit-identical");
    }

    #[test]
    fn allgather_modes_matches_root_gather_on_every_rank() {
        let a = decaying_matrix(64, 12, 11);
        let base = SvdConfig::new(3).with_forget_factor(1.0).with_r1(8).with_r2(6);
        for tree in [false, true] {
            let cfg = base.with_tree_collectives(tree);
            let blocks = split_rows(&a, 4);
            let world = World::new(4);
            let out = world.run(|comm| {
                let mut d = ParallelStreamingSvd::new(comm, cfg);
                d.fit_batched(&blocks[comm.rank()], 6);
                let everywhere = d.allgather_modes();
                (everywhere, d.gather_modes(0))
            });
            let root_copy = out[0].1.as_ref().unwrap();
            for (rank, (everywhere, _)) in out.iter().enumerate() {
                assert_eq!(everywhere, root_copy, "rank {rank} (tree={tree}) diverged");
            }
        }
    }

    #[test]
    // The tall-block assertion fires inside the rank thread; the harness
    // surfaces it as a join failure on the spawning thread.
    #[should_panic(expected = "rank thread panicked")]
    fn tsqr_rejects_short_blocks() {
        let cfg = SvdConfig::new(2);
        let world = World::new(1);
        world.run(|comm| {
            let mut d = ParallelStreamingSvd::new(comm, cfg);
            let wide = Matrix::<f64>::zeros(3, 8);
            let _ = d.parallel_qr(&wide);
        });
    }
}
