//! Proper orthogonal decomposition on top of the streaming SVD.
//!
//! Section 2 of the paper presents POD (= PCA = KLT on fluctuation data) as
//! the flagship application: subtract the temporal mean, factorize the
//! fluctuation matrix, read energies off the squared singular values. This
//! module packages that workflow — including a *streaming* mean estimate so
//! the POD can run batch-by-batch like everything else in the library.
//!
//! The tall `M x K` products here (`matmul`, `matmul_tn` for coefficients
//! and reconstruction) dispatch to `psvd_linalg`'s packed parallel GEMM
//! above the size threshold; `PSVD_NUM_THREADS` tunes them without
//! changing a single output bit.

use psvd_linalg::gemm::{matmul, matmul_tn};
use psvd_linalg::Matrix;

use crate::config::SvdConfig;
use crate::serial::SerialStreamingSvd;

/// Result of a POD analysis.
pub struct Pod {
    /// Temporal mean field (`M`).
    pub mean: Vec<f64>,
    /// POD modes (`M x K`), orthonormal, by decreasing energy.
    pub modes: Matrix,
    /// Singular values of the fluctuation matrix.
    pub singular_values: Vec<f64>,
    /// Snapshots analyzed.
    pub snapshots: usize,
}

impl Pod {
    /// Energy (variance) captured by mode `j`: `σ_j² / (N−1)`.
    pub fn mode_energy(&self, j: usize) -> f64 {
        let denom = (self.snapshots.max(2) - 1) as f64;
        self.singular_values[j].powi(2) / denom
    }

    /// Cumulative energy fractions, one entry per mode (monotone, the last
    /// ≤ 1 with equality when K captures everything).
    pub fn cumulative_energy_fraction(&self, total_energy: f64) -> Vec<f64> {
        let mut acc = 0.0;
        self.singular_values
            .iter()
            .map(|s| {
                acc += s * s;
                acc / total_energy.max(f64::MIN_POSITIVE)
            })
            .collect()
    }

    /// Modal coefficients of (already mean-subtracted) snapshots:
    /// `a = modesᵀ · fluctuations` (`K x N`).
    pub fn coefficients(&self, fluctuations: &Matrix) -> Matrix {
        matmul_tn(&self.modes, fluctuations)
    }

    /// Project snapshots onto the modes and reconstruct, adding the mean
    /// back: the rank-K approximation POD exists to provide.
    pub fn reconstruct(&self, snapshots: &Matrix) -> Matrix {
        let fluct = subtract_mean(snapshots, &self.mean);
        let coeffs = self.coefficients(&fluct);
        let mut rec = matmul(&self.modes, &coeffs);
        for i in 0..rec.rows() {
            let mu = self.mean[i];
            for j in 0..rec.cols() {
                rec[(i, j)] += mu;
            }
        }
        rec
    }

    /// Relative Frobenius reconstruction error on a snapshot set.
    pub fn reconstruction_error(&self, snapshots: &Matrix) -> f64 {
        let rec = self.reconstruct(snapshots);
        (snapshots - &rec).frobenius_norm() / snapshots.frobenius_norm().max(1e-300)
    }
}

/// Subtract a mean field from every column.
pub fn subtract_mean(snapshots: &Matrix, mean: &[f64]) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    subtract_mean_into(snapshots, mean, &mut out);
    out
}

/// Subtract a mean field from every column, writing into `out` (reused
/// across batches by [`StreamingPod`] — allocation-free once warm).
pub fn subtract_mean_into(snapshots: &Matrix, mean: &[f64], out: &mut Matrix) {
    assert_eq!(snapshots.rows(), mean.len(), "mean length must match rows");
    out.reshape_for_overwrite(snapshots.rows(), snapshots.cols());
    for (i, &mu) in mean.iter().enumerate() {
        for (o, &x) in out.row_mut(i).iter_mut().zip(snapshots.row(i)) {
            *o = x - mu;
        }
    }
}

/// Temporal mean of the columns.
pub fn temporal_mean(snapshots: &Matrix) -> Vec<f64> {
    let n = snapshots.cols().max(1) as f64;
    (0..snapshots.rows()).map(|i| snapshots.row(i).iter().sum::<f64>() / n).collect()
}

/// One-shot POD of a full snapshot matrix.
///
/// The dense SVD QR-preprocesses tall snapshot stacks and bidiagonalizes
/// through the blocked compact-WY layer, so the heavy lifting lands on the
/// packed GEMM engine (see "Blocked factorization" in DESIGN.md).
pub fn pod(snapshots: &Matrix, k: usize) -> Pod {
    let mean = temporal_mean(snapshots);
    let fluct = subtract_mean(snapshots, &mean);
    let f = psvd_linalg::svd(&fluct).truncated(k);
    Pod { mean, modes: f.u, singular_values: f.s, snapshots: snapshots.cols() }
}

/// Streaming POD: consumes batches, maintaining a running mean and a
/// streaming SVD of the (approximately) mean-subtracted fluctuations.
///
/// The mean is estimated incrementally, so early batches are centered with
/// a cruder mean than later ones — the standard trade of single-pass
/// streaming PCA. With a final pass disabled, expect the mean-related error
/// to shrink as `1/√N`.
pub struct StreamingPod {
    svd: SerialStreamingSvd,
    mean: Vec<f64>,
    count: usize,
    /// Persistent centered-batch buffer — reused across `ingest` calls.
    fluct: Matrix,
}

impl StreamingPod {
    /// New streaming POD tracking `cfg.k` modes.
    pub fn new(cfg: SvdConfig) -> Self {
        Self {
            svd: SerialStreamingSvd::new(cfg),
            mean: Vec::new(),
            count: 0,
            fluct: Matrix::zeros(0, 0),
        }
    }

    /// Ingest one batch of raw (not centered) snapshots.
    pub fn ingest(&mut self, batch: &Matrix) -> &mut Self {
        if batch.cols() == 0 {
            return self;
        }
        // Update the running mean.
        if self.mean.is_empty() {
            self.mean = vec![0.0; batch.rows()];
        }
        assert_eq!(self.mean.len(), batch.rows(), "row count changed mid-stream");
        let new_count = self.count + batch.cols();
        let batch_mean = temporal_mean(batch);
        let w_old = self.count as f64 / new_count as f64;
        let w_new = batch.cols() as f64 / new_count as f64;
        for (m, b) in self.mean.iter_mut().zip(&batch_mean) {
            *m = *m * w_old + b * w_new;
        }
        self.count = new_count;

        // Center with the current mean estimate (into the persistent
        // buffer) and stream.
        subtract_mean_into(batch, &self.mean, &mut self.fluct);
        if self.svd.is_initialized() {
            self.svd.incorporate_data(&self.fluct);
        } else {
            self.svd.initialize(&self.fluct);
        }
        self
    }

    /// Finish, returning the POD. Moves the tracked modes out of the
    /// streaming SVD — no final copy.
    pub fn finalize(self) -> Pod {
        let (modes, singular_values) = self.svd.into_modes();
        Pod { mean: self.mean, modes, singular_values, snapshots: self.count }
    }
}

/// Distributed POD: each rank holds a row block of the snapshots; the
/// temporal mean is local (row-wise, no communication needed), and the
/// fluctuation SVD runs through APMOS. Returns this rank's block of the
/// modes inside the [`Pod`] (gather with
/// [`crate::parallel::ParallelStreamingSvd::gather_modes`]-style collectives
/// if the global matrix is wanted).
pub fn distributed_pod<C: psvd_comm::Communicator>(
    comm: &C,
    local_snapshots: &Matrix,
    cfg: SvdConfig,
) -> Pod {
    let mean = temporal_mean(local_snapshots);
    let fluct = subtract_mean(local_snapshots, &mean);
    let mut driver = crate::parallel::ParallelStreamingSvd::new(comm, cfg);
    let (modes, s) = driver.parallel_svd(&fluct);
    Pod { mean, modes, singular_values: s, snapshots: local_snapshots.cols() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psvd_linalg::norms::orthogonality_error;
    use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
    use psvd_linalg::validate::max_principal_angle;

    /// Snapshots = mean + low-rank fluctuations.
    fn dataset(m: usize, n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = seeded_rng(seed);
        let fluct = matrix_with_spectrum(m, n, &[5.0, 2.0, 1.0], &mut rng);
        let mean: Vec<f64> = (0..m).map(|i| 3.0 + (i as f64 * 0.1).sin()).collect();
        let mut snaps = fluct;
        for i in 0..m {
            for j in 0..n {
                snaps[(i, j)] += mean[i];
            }
        }
        (snaps, mean)
    }

    #[test]
    fn mean_is_recovered() {
        let (snaps, _) = dataset(40, 30, 1);
        let p = pod(&snaps, 3);
        let direct = temporal_mean(&snaps);
        for (a, b) in p.mean.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn modes_orthonormal_and_energies_descending() {
        let (snaps, _) = dataset(50, 24, 2);
        let p = pod(&snaps, 3);
        assert!(orthogonality_error(&p.modes) < 1e-10);
        assert!(p.mode_energy(0) >= p.mode_energy(1));
        assert!(p.mode_energy(1) >= p.mode_energy(2));
    }

    #[test]
    fn rank_k_reconstruction_is_near_exact_for_rank_k_data() {
        let (snaps, _) = dataset(40, 20, 3);
        let p = pod(&snaps, 3); // fluctuations have exact rank 3
        assert!(p.reconstruction_error(&snaps) < 1e-10);
    }

    #[test]
    fn truncation_degrades_gracefully() {
        let (snaps, _) = dataset(40, 20, 4);
        let p1 = pod(&snaps, 1);
        let p2 = pod(&snaps, 2);
        let p3 = pod(&snaps, 3);
        let e1 = p1.reconstruction_error(&snaps);
        let e2 = p2.reconstruction_error(&snaps);
        let e3 = p3.reconstruction_error(&snaps);
        assert!(e1 > e2 && e2 > e3, "more modes, less error: {e1} {e2} {e3}");
    }

    #[test]
    fn cumulative_energy_reaches_one_for_full_rank() {
        let (snaps, _) = dataset(30, 15, 5);
        let mean = temporal_mean(&snaps);
        let fluct = subtract_mean(&snaps, &mean);
        let total: f64 = {
            let f = psvd_linalg::svd(&fluct);
            f.s.iter().map(|s| s * s).sum()
        };
        let p = pod(&snaps, 15);
        let cum = p.cumulative_energy_fraction(total);
        assert!((cum.last().unwrap() - 1.0).abs() < 1e-10);
        for w in cum.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn coefficients_reproduce_fluctuations() {
        let (snaps, _) = dataset(30, 12, 6);
        let p = pod(&snaps, 3);
        let fluct = subtract_mean(&snaps, &p.mean);
        let coeffs = p.coefficients(&fluct);
        assert_eq!(coeffs.shape(), (3, 12));
        let rec = matmul(&p.modes, &coeffs);
        assert!((&rec - &fluct).frobenius_norm() / fluct.frobenius_norm() < 1e-9);
    }

    #[test]
    fn streaming_pod_approaches_batch_pod() {
        let (snaps, _) = dataset(60, 64, 7);
        let batch_pod = pod(&snaps, 3);
        let mut sp = StreamingPod::new(SvdConfig::new(3).with_forget_factor(1.0));
        for c0 in (0..64).step_by(16) {
            sp.ingest(&snaps.submatrix(0, 60, c0, c0 + 16));
        }
        let stream_pod = sp.finalize();
        assert_eq!(stream_pod.snapshots, 64);
        // Mean is exact (weighted running mean over equal batches).
        for (a, b) in stream_pod.mean.iter().zip(&batch_pod.mean) {
            assert!((a - b).abs() < 1e-10);
        }
        // Modes agree to streaming tolerance.
        let angle = max_principal_angle(&batch_pod.modes, &stream_pod.modes);
        assert!(angle < 0.15, "streaming POD should track batch POD, angle = {angle}");
    }

    #[test]
    fn streaming_pod_empty_batch_noop() {
        let mut sp = StreamingPod::new(SvdConfig::new(2));
        sp.ingest(&Matrix::zeros(10, 0));
        assert_eq!(sp.count, 0);
    }
}
