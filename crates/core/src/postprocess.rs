//! Postprocessing: CSV/report emission and terminal plots.
//!
//! PyParSVD ships a `postprocessing` module that plots singular values and
//! modes; in a terminal-first Rust reproduction the equivalents are CSV
//! writers (consumable by any plotting tool) and compact ASCII sparklines
//! for quick inspection in logs and example output.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use psvd_linalg::Matrix;

/// Write singular values as `index,value` CSV.
pub fn write_singular_values_csv(path: &Path, s: &[f64]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "index,singular_value")?;
    for (i, v) in s.iter().enumerate() {
        writeln!(out, "{i},{v:.17e}")?;
    }
    out.flush()
}

/// Write modes (columns of `u`) as CSV: `point,mode_0,mode_1,...`.
pub fn write_modes_csv(path: &Path, u: &Matrix) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    let header: Vec<String> = (0..u.cols()).map(|j| format!("mode_{j}")).collect();
    writeln!(out, "point,{}", header.join(","))?;
    for i in 0..u.rows() {
        let row: Vec<String> = u.row(i).iter().map(|v| format!("{v:.17e}")).collect();
        writeln!(out, "{i},{}", row.join(","))?;
    }
    out.flush()
}

/// Write an `x, series...` table (the Figure-1(a,b) format: grid coordinate,
/// serial mode, parallel mode, pointwise error).
pub fn write_series_csv(
    path: &Path,
    x: &[f64],
    names: &[&str],
    series: &[&[f64]],
) -> io::Result<()> {
    assert_eq!(names.len(), series.len(), "one name per series");
    for s in series {
        assert_eq!(s.len(), x.len(), "series length must match x");
    }
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "x,{}", names.join(","))?;
    for (i, xv) in x.iter().enumerate() {
        let row: Vec<String> = series.iter().map(|s| format!("{:.17e}", s[i])).collect();
        writeln!(out, "{xv:.17e},{}", row.join(","))?;
    }
    out.flush()
}

/// Write a mode (one column of `u`, reshaped to `nrows x ncols`) as a
/// binary PGM grayscale image — the Figure-2-style map output. Values are
/// linearly mapped to [0, 255] over the mode's own range (diverging fields
/// center near mid-gray since modes are roughly symmetric about zero).
pub fn write_mode_pgm(
    path: &Path,
    u: &Matrix,
    mode: usize,
    nrows: usize,
    ncols: usize,
) -> io::Result<()> {
    assert!(mode < u.cols(), "mode index out of range");
    assert_eq!(nrows * ncols, u.rows(), "grid shape must match mode length");
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in u.col_iter(mode) {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut out = BufWriter::new(File::create(path)?);
    write!(out, "P5\n{ncols} {nrows}\n255\n")?;
    let pixels: Vec<u8> = u
        .col_iter(mode)
        .map(|v| (((v - lo) / span) * 255.0).round().clamp(0.0, 255.0) as u8)
        .collect();
    out.write_all(&pixels)?;
    out.flush()
}

/// A one-line unicode sparkline of a series (resampled to `width` cells).
pub fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut out = String::with_capacity(width * 3);
    for c in 0..width {
        // Average the bucket of values mapped to this cell.
        let start = c * values.len() / width;
        let end = (((c + 1) * values.len()) / width).max(start + 1).min(values.len());
        let avg: f64 = values[start..end].iter().sum::<f64>() / (end - start) as f64;
        let level = (((avg - lo) / span) * 7.0).round().clamp(0.0, 7.0) as usize;
        out.push(BARS[level]);
    }
    out
}

/// A multi-line summary of a factorization: spectrum sparkline plus the
/// values, and one sparkline per mode.
pub fn summarize(s: &[f64], modes: &Matrix, max_modes: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "singular values ({}): {}", s.len(), sparkline(s, 32));
    let shown: Vec<String> = s.iter().take(8).map(|v| format!("{v:.4e}")).collect();
    let _ = writeln!(out, "  leading: [{}]", shown.join(", "));
    let mut col = Vec::with_capacity(modes.rows());
    for j in 0..modes.cols().min(max_modes) {
        col.clear();
        col.extend(modes.col_iter(j));
        let _ = writeln!(out, "mode {j}: {}", sparkline(&col, 48));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("psvd_post_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn singular_values_csv_roundtrip() {
        let path = tmp("sv");
        write_singular_values_csv(&path, &[3.0, 1.5, 0.25]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "index,singular_value");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0,3."));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn modes_csv_has_header_and_rows() {
        let path = tmp("modes");
        let u = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        write_modes_csv(&path, &u).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("point,mode_0,mode_1\n"));
        assert_eq!(text.lines().count(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn series_csv_validates_lengths() {
        let path = tmp("series");
        let x = [0.0, 0.5, 1.0];
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        write_series_csv(&path, &x, &["serial", "parallel"], &[&a, &b]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("x,serial,parallel\n"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "series length")]
    fn series_csv_rejects_ragged() {
        let path = tmp("ragged");
        let _ = write_series_csv(&path, &[0.0, 1.0], &["a"], &[&[1.0]]);
    }

    #[test]
    fn pgm_writer_emits_valid_header_and_pixels() {
        let path = tmp("pgm");
        // 3x4 grid, mode 0 is a ramp: min -> 0, max -> 255.
        let u = Matrix::from_fn(12, 1, |i, _| i as f64);
        write_mode_pgm(&path, &u, 0, 3, 4).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header = b"P5\n4 3\n255\n";
        assert_eq!(&bytes[..header.len()], header);
        let pixels = &bytes[header.len()..];
        assert_eq!(pixels.len(), 12);
        assert_eq!(pixels[0], 0);
        assert_eq!(pixels[11], 255);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "grid shape")]
    fn pgm_rejects_shape_mismatch() {
        let u = Matrix::zeros(10, 1);
        let _ = write_mode_pgm(&tmp("pgm_bad"), &u, 0, 3, 4);
    }

    #[test]
    fn sparkline_shape() {
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
        assert_eq!(line.chars().count(), 4);
        // Monotone input -> non-decreasing bars.
        let levels: Vec<u32> = line.chars().map(|c| c as u32).collect();
        assert!(levels.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sparkline_handles_constant_and_empty() {
        assert_eq!(sparkline(&[], 10), "");
        let flat = sparkline(&[5.0; 16], 8);
        assert_eq!(flat.chars().count(), 8);
    }

    #[test]
    fn summarize_mentions_modes() {
        let u = Matrix::from_fn(10, 3, |i, j| ((i * (j + 1)) as f64).sin());
        let text = summarize(&[2.0, 1.0, 0.5], &u, 2);
        assert!(text.contains("singular values (3)"));
        assert!(text.contains("mode 0"));
        assert!(text.contains("mode 1"));
        assert!(!text.contains("mode 2"));
    }
}
