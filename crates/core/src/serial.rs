//! Serial streaming SVD — Levy & Lindenbaum's sequential Karhunen–Loève
//! basis extraction (Algorithm 1 / Listing 1 of the paper).
//!
//! The `K` leading left singular vectors are updated batch by batch:
//!
//! 1. `initialize(A0)`: thin QR of the first batch, SVD of the small `R`,
//!    keep `K` columns of `Q·U'`.
//! 2. `incorporate_data(Ai)`: stack the down-weighted current factorization
//!    `ff · U·diag(s)` with the new batch, thin-QR the stack, SVD the small
//!    triangular factor, keep `K` columns.
//!
//! Cost per batch is `O(M (K+B)²)` with `O(M K)` memory — never `O(M N)`.
//!
//! Divergence from the paper's Listing 1, documented per `DESIGN.md`: the
//! listing sorts `argsort(dtildei)[::-1]` but our SVD kernels already return
//! descending singular values, so no re-sorting is needed.
//!
//! "Serial" refers to the streaming algorithm, not the arithmetic: the
//! `O(M (K+B)²)` per-batch work (thin QR and the `matmul` forming `Q·U'`)
//! runs on `psvd_linalg`'s threaded kernels when the batch is large enough
//! to pay for dispatch, with bitwise-identical results at any thread
//! count.

use psvd_data::stream::SnapshotSource;
use psvd_linalg::gemm::matmul_into;
use psvd_linalg::qr::qr_thin_into;
use psvd_linalg::randomized::{mixed_randomized_svd, randomized_svd};
use psvd_linalg::svd::svd_with;
use psvd_linalg::workspace::{Workspace, WorkspaceStats};
use psvd_linalg::{Matrix, Scalar, Svd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;

use crate::config::{Precision, SvdConfig};

/// Streaming truncated SVD of a (conceptually unbounded) snapshot stream.
///
/// Every per-batch temporary — the `[ff·U·D | A_i]` stack, the thin-QR
/// factors and the updated mode matrix — lives in per-instance buffers
/// reused across updates, so a steady-state `incorporate_data` call
/// performs no transient matrix allocations (the `O((K+B)²)` core SVD
/// still allocates its small factors; see DESIGN.md). Verified via
/// [`SerialStreamingSvd::scratch_stats`].
///
/// Generic over the element dtype `T` (default `f64`): every buffer,
/// factorization and product runs at `T`'s precision, and the
/// per-dtype determinism contract of the underlying kernels carries
/// through — the stream is bitwise reproducible at any thread count for
/// a fixed dtype. `cfg.precision == Mixed` additionally swaps the
/// randomized inner SVD for the f32-range-finder /
/// f64-re-orthogonalization pipeline.
pub struct SerialStreamingSvd<T: Scalar = f64> {
    cfg: SvdConfig,
    modes: Matrix<T>,
    singular_values: Vec<T>,
    iteration: usize,
    snapshots_seen: usize,
    rng: StdRng,
    /// Scratch arena feeding the QR kernel.
    ws: Workspace,
    /// Persistent `[ff·U·D | A_i]` stack buffer.
    stack: Matrix<T>,
    /// Persistent thin-QR factor buffers.
    qbuf: Matrix<T>,
    rbuf: Matrix<T>,
    /// Buffer the next mode matrix is formed in before swapping into place.
    next_modes: Matrix<T>,
    /// Down-weighted singular values `ff · s`.
    weighted: Vec<T>,
    /// Persistent landing buffer for pull-based ingestion (`fit_source`).
    ingest: Matrix<T>,
}

impl<T: Scalar> SerialStreamingSvd<T> {
    /// New driver; call [`SerialStreamingSvd::initialize`] with the first
    /// batch before incorporating further data.
    pub fn new(cfg: SvdConfig) -> Self {
        let cfg = cfg.validated();
        Self {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            modes: Matrix::zeros(0, 0),
            singular_values: Vec::new(),
            iteration: 0,
            snapshots_seen: 0,
            ws: Workspace::new(),
            stack: Matrix::zeros(0, 0),
            qbuf: Matrix::zeros(0, 0),
            rbuf: Matrix::zeros(0, 0),
            next_modes: Matrix::zeros(0, 0),
            weighted: Vec::new(),
            ingest: Matrix::zeros(0, 0),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SvdConfig {
        &self.cfg
    }

    /// True once `initialize` has run.
    pub fn is_initialized(&self) -> bool {
        self.snapshots_seen > 0
    }

    /// Number of streaming updates performed so far (excluding init).
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Total snapshots ingested.
    pub fn snapshots_seen(&self) -> usize {
        self.snapshots_seen
    }

    /// Current estimate of the `K` leading left singular vectors (`M x K`,
    /// fewer columns if fewer snapshots have been seen).
    pub fn modes(&self) -> &Matrix<T> {
        &self.modes
    }

    /// Current estimate of the `K` leading singular values.
    pub fn singular_values(&self) -> &[T] {
        &self.singular_values
    }

    /// Consume the tracker, handing out the modes and singular values
    /// without copying them.
    pub fn into_modes(self) -> (Matrix<T>, Vec<T>) {
        (self.modes, self.singular_values)
    }

    /// Allocation accounting for the internal scratch arena: after the
    /// first update has warmed the buffers, further same-shape updates
    /// report zero additional misses and zero fresh bytes.
    pub fn scratch_stats(&self) -> WorkspaceStats {
        self.ws.stats()
    }

    /// Reset the scratch-arena counters (e.g. after warm-up, before
    /// measuring a steady-state window).
    pub fn reset_scratch_stats(&mut self) {
        self.ws.reset_stats();
    }

    fn small_svd(&mut self, a: &Matrix<T>) -> Svd<T> {
        if self.cfg.low_rank {
            let rank = self.cfg.k.min(a.rows().min(a.cols()));
            if self.cfg.precision == Precision::Mixed {
                // f32 range finding, f64 re-orthogonalization and factors,
                // narrowed back to the driver dtype (exact when T = f64).
                let f = mixed_randomized_svd(
                    &a.cast::<f64>(),
                    &self.cfg.randomized(rank),
                    &mut self.rng,
                );
                Svd {
                    u: f.u.cast(),
                    s: f.s.iter().map(|&x| T::from_f64(x)).collect(),
                    vt: f.vt.cast(),
                }
            } else {
                randomized_svd(a, &self.cfg.randomized(rank), &mut self.rng)
            }
        } else {
            svd_with(a, self.cfg.method)
        }
    }

    /// SVD the small triangular factor sitting in `rbuf`, then form the
    /// next mode matrix `Q · U'_K` in the spare buffer and swap it in.
    /// All temporaries besides the `O((K+B)²)` SVD factors are reused.
    fn finish_update(&mut self) {
        let rbuf = std::mem::replace(&mut self.rbuf, Matrix::zeros(0, 0));
        let f = self.small_svd(&rbuf);
        self.rbuf = rbuf;
        let k = self.cfg.k.min(f.s.len());
        matmul_into(self.qbuf.view(), f.u.block(0, f.u.rows(), 0, k), &mut self.next_modes);
        std::mem::swap(&mut self.modes, &mut self.next_modes);
        self.singular_values.clear();
        self.singular_values.extend_from_slice(&f.s[..k]);
    }

    /// Ingest the first batch `A0` (`M x B`).
    pub fn initialize(&mut self, a0: &Matrix<T>) -> &mut Self {
        assert!(!self.is_initialized(), "initialize called twice");
        assert!(a0.cols() > 0, "first batch is empty");
        qr_thin_into(a0.view(), &mut self.qbuf, &mut self.rbuf, &mut self.ws);
        self.finish_update();
        self.snapshots_seen = a0.cols();
        self
    }

    /// Ingest a further batch `Ai` (`M x B`), down-weighting history by the
    /// forget factor.
    pub fn incorporate_data(&mut self, ai: &Matrix<T>) -> &mut Self {
        assert!(self.is_initialized(), "incorporate_data before initialize");
        assert_eq!(ai.rows(), self.modes.rows(), "batch row count changed mid-stream");
        if ai.cols() == 0 {
            return self;
        }
        self.iteration += 1;

        // Build [ff * U_{i-1} D_{i-1} | A_i] row by row in the persistent
        // stack buffer — the same multiplies as mul_diag + hstack, without
        // materializing either intermediate.
        let (m, k0) = self.modes.shape();
        let ff = T::from_f64(self.cfg.forget_factor);
        self.weighted.clear();
        self.weighted.extend(self.singular_values.iter().map(|s| *s * ff));
        self.stack.reshape_for_overwrite(m, k0 + ai.cols());
        for i in 0..m {
            let dst = self.stack.row_mut(i);
            for ((d, &u), &w) in dst[..k0].iter_mut().zip(self.modes.row(i)).zip(&self.weighted) {
                *d = u * w;
            }
            dst[k0..].copy_from_slice(ai.row(i));
        }

        // Thin QR of the stack, SVD of the small triangular factor. The QR
        // dispatches to the blocked compact-WY path once `k0 + B` crosses
        // the panel threshold (see `PSVD_QR_BLOCK` in DESIGN.md), so the
        // per-batch factorization cost is dominated by packed GEMM.
        qr_thin_into(self.stack.view(), &mut self.qbuf, &mut self.rbuf, &mut self.ws);
        self.finish_update();
        self.snapshots_seen += ai.cols();
        self
    }

    /// Modal coefficients of a snapshot: `c = Uᵀ x` (length = mode count).
    pub fn project(&self, snapshot: &[T]) -> Vec<T> {
        assert!(self.is_initialized(), "project before initialize");
        assert_eq!(snapshot.len(), self.modes.rows(), "snapshot length mismatch");
        psvd_linalg::gemm::matvec_t(&self.modes, snapshot)
    }

    /// Reconstruct a snapshot from modal coefficients: `x ≈ U c`.
    pub fn reconstruct(&self, coefficients: &[T]) -> Vec<T> {
        assert!(self.is_initialized(), "reconstruct before initialize");
        psvd_linalg::gemm::matvec(&self.modes, coefficients)
    }

    /// How much of a snapshot the tracked subspace misses:
    /// `‖x − U Uᵀ x‖₂ / ‖x‖₂` — the online novelty signal (near zero for
    /// data resembling history, jumping on regime change).
    pub fn residual_fraction(&self, snapshot: &[T]) -> f64 {
        let coeffs = self.project(snapshot);
        let rec = self.reconstruct(&coeffs);
        let mut num = T::ZERO;
        let mut den = T::ZERO;
        for (x, r) in snapshot.iter().zip(&rec) {
            num += (*x - *r) * (*x - *r);
            den += *x * *x;
        }
        (num / den.max(T::MIN_POSITIVE)).sqrt().to_f64()
    }

    /// Overwrite the tracker's state (used by checkpoint restore).
    pub(crate) fn restore_state(
        &mut self,
        modes: Matrix<T>,
        singular_values: Vec<T>,
        iteration: usize,
        snapshots_seen: usize,
    ) {
        assert!(snapshots_seen > 0, "restored state must be initialized");
        assert_eq!(modes.cols(), singular_values.len(), "inconsistent checkpoint");
        self.modes = modes;
        self.singular_values = singular_values;
        self.iteration = iteration;
        self.snapshots_seen = snapshots_seen;
    }

    /// Stream an entire matrix in `batch`-column chunks: `initialize` on the
    /// first, `incorporate_data` on the rest.
    pub fn fit_batched(&mut self, data: &Matrix<T>, batch: usize) -> &mut Self {
        assert!(batch > 0, "batch size must be positive");
        let n = data.cols();
        let mut c0 = 0;
        while c0 < n {
            let c1 = (c0 + batch).min(n);
            let chunk = data.submatrix(0, data.rows(), c0, c1);
            if self.is_initialized() {
                self.incorporate_data(&chunk);
            } else {
                self.initialize(&chunk);
            }
            c0 = c1;
        }
        self
    }

    /// Stream every batch a [`SnapshotSource`] yields — the pull-based
    /// ingestion path. With a
    /// [`psvd_data::prefetch::SnapshotPrefetcher`] source, batch `k+1`'s
    /// IO and decode run on the prefetch thread while this loop is inside
    /// `incorporate_data` on batch `k`; with an in-core
    /// [`psvd_data::stream::MatrixBatchSource`] it reduces to
    /// [`SerialStreamingSvd::fit_batched`]. Batches land in one persistent
    /// buffer, so the steady-state loop keeps its zero transient O(M)
    /// allocation guarantee. IO failures surface as [`io::Error`] with the
    /// last successful update's factorization intact.
    pub fn fit_source<S: SnapshotSource<T>>(&mut self, source: &mut S) -> io::Result<&mut Self> {
        let mut ingest = std::mem::replace(&mut self.ingest, Matrix::zeros(0, 0));
        let result = (|| {
            while source.next_batch_into(&mut ingest)? {
                if self.is_initialized() {
                    self.incorporate_data(&ingest);
                } else {
                    self.initialize(&ingest);
                }
            }
            Ok(())
        })();
        self.ingest = ingest;
        result.map(|()| self)
    }
}

/// One-shot K-truncated SVD of the full matrix — the reference the
/// streaming result converges to when `ff = 1`.
pub fn batch_truncated_svd<T: Scalar>(data: &Matrix<T>, k: usize) -> (Matrix<T>, Vec<T>) {
    let f = psvd_linalg::svd(data).truncated(k);
    (f.u, f.s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psvd_linalg::norms::orthogonality_error;
    use psvd_linalg::random::{matrix_with_spectrum, seeded_rng};
    use psvd_linalg::validate::{max_principal_angle, spectrum_error};

    fn config_exact(k: usize) -> SvdConfig {
        SvdConfig::new(k).with_forget_factor(1.0)
    }

    #[test]
    fn initialize_matches_batch_svd() {
        let mut rng = seeded_rng(1);
        let a = matrix_with_spectrum(60, 12, &[8.0, 4.0, 2.0, 1.0, 0.5], &mut rng);
        let mut s = SerialStreamingSvd::new(config_exact(5));
        s.initialize(&a);
        let (u_ref, s_ref) = batch_truncated_svd(&a, 5);
        assert!(spectrum_error(&s_ref, s.singular_values()) < 1e-10);
        assert!(max_principal_angle(&u_ref, s.modes()) < 1e-6);
    }

    #[test]
    fn exact_recovery_for_low_rank_stream() {
        // Rank <= K data: streaming with ff = 1 is EXACT regardless of
        // batching, because no truncation ever discards energy.
        let mut rng = seeded_rng(2);
        let a = matrix_with_spectrum(80, 40, &[5.0, 3.0, 1.0], &mut rng);
        let mut s = SerialStreamingSvd::new(config_exact(5));
        s.fit_batched(&a, 8);
        let (u_ref, s_ref) = batch_truncated_svd(&a, 3);
        assert!(spectrum_error(&s_ref, &s.singular_values()[..3]) < 1e-9);
        assert!(max_principal_angle(&u_ref, &s.modes().first_columns(3)) < 1e-6);
        assert_eq!(s.snapshots_seen(), 40);
        assert_eq!(s.iteration(), 4);
    }

    #[test]
    fn near_recovery_for_decaying_spectrum() {
        // General data with a decaying spectrum: streaming is approximate
        // but the leading triplets should agree to a few percent.
        let mut rng = seeded_rng(3);
        let spec: Vec<f64> = (0..30).map(|i| 4.0 * 0.7f64.powi(i)).collect();
        let a = matrix_with_spectrum(100, 30, &spec, &mut rng);
        let mut s = SerialStreamingSvd::new(config_exact(8));
        s.fit_batched(&a, 6);
        let (_, s_ref) = batch_truncated_svd(&a, 8);
        for (got, want) in s.singular_values()[..4].iter().zip(&s_ref[..4]) {
            assert!((got - want).abs() / want < 0.05, "sigma {got} vs {want}");
        }
    }

    #[test]
    fn modes_stay_orthonormal() {
        let mut rng = seeded_rng(4);
        let a = matrix_with_spectrum(50, 24, &[5.0, 2.5, 1.2, 0.6, 0.3, 0.1], &mut rng);
        let mut s = SerialStreamingSvd::new(SvdConfig::new(4));
        s.fit_batched(&a, 6);
        assert!(orthogonality_error(s.modes()) < 1e-10);
        for w in s.singular_values().windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn forget_factor_discounts_history() {
        // Feed two phases with disjoint dominant subspaces; with small ff,
        // the final modes should align with the *recent* phase.
        let mut rng = seeded_rng(5);
        let m = 60;
        let phase1 = {
            let col: Vec<f64> = (0..m).map(|i| ((i as f64) * 0.1).sin()).collect();
            Matrix::from_fn(m, 20, |i, j| col[i] * (1.0 + 0.01 * j as f64))
        };
        let phase2 = matrix_with_spectrum(m, 20, &[3.0], &mut rng);
        let mut s = SerialStreamingSvd::new(SvdConfig::new(1).with_forget_factor(0.3));
        s.initialize(&phase1);
        for _ in 0..5 {
            s.incorporate_data(&phase2);
        }
        let (u2, _) = batch_truncated_svd(&phase2, 1);
        let angle = max_principal_angle(&u2, s.modes());
        assert!(angle < 0.05, "recent phase should dominate, angle = {angle}");
    }

    #[test]
    fn ff_one_beats_small_ff_on_stationary_data() {
        let mut rng = seeded_rng(6);
        let spec: Vec<f64> = (0..20).map(|i| 3.0 * 0.8f64.powi(i)).collect();
        let a = matrix_with_spectrum(80, 40, &spec, &mut rng);
        let (u_ref, _) = batch_truncated_svd(&a, 4);
        let angle = |ff: f64| {
            let mut s = SerialStreamingSvd::new(SvdConfig::new(4).with_forget_factor(ff));
            s.fit_batched(&a, 8);
            max_principal_angle(&u_ref, s.modes())
        };
        assert!(angle(1.0) <= angle(0.5) + 1e-9);
    }

    #[test]
    fn randomized_path_tracks_leading_modes() {
        let mut rng = seeded_rng(7);
        let spec = [10.0, 6.0, 3.0, 0.01, 0.005];
        let a = matrix_with_spectrum(70, 30, &spec, &mut rng);
        let mut s = SerialStreamingSvd::new(
            config_exact(3).with_low_rank(true).with_seed(1).with_power_iterations(2),
        );
        s.fit_batched(&a, 10);
        let (_, s_ref) = batch_truncated_svd(&a, 3);
        for (got, want) in s.singular_values().iter().zip(&s_ref) {
            assert!((got - want).abs() / want < 0.05, "sigma {got} vs {want}");
        }
    }

    #[test]
    fn uneven_final_batch_handled() {
        let mut rng = seeded_rng(8);
        let a = matrix_with_spectrum(40, 17, &[2.0, 1.0], &mut rng);
        let mut s = SerialStreamingSvd::new(config_exact(2));
        s.fit_batched(&a, 5); // batches of 5,5,5,2
        assert_eq!(s.snapshots_seen(), 17);
        let (_, s_ref) = batch_truncated_svd(&a, 2);
        assert!(spectrum_error(&s_ref, s.singular_values()) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "initialize called twice")]
    fn double_initialize_panics() {
        let a = Matrix::<f64>::identity(4);
        let mut s = SerialStreamingSvd::new(SvdConfig::new(2));
        s.initialize(&a);
        s.initialize(&a);
    }

    #[test]
    #[should_panic(expected = "before initialize")]
    fn incorporate_before_initialize_panics() {
        let a = Matrix::<f64>::identity(4);
        let mut s = SerialStreamingSvd::new(SvdConfig::new(2));
        s.incorporate_data(&a);
    }

    #[test]
    fn k_larger_than_data_clamps() {
        let a = Matrix::<f64>::identity(3);
        let mut s = SerialStreamingSvd::new(SvdConfig::new(10).with_forget_factor(1.0));
        s.initialize(&a);
        assert_eq!(s.modes().cols(), 3);
        assert_eq!(s.singular_values().len(), 3);
    }

    #[test]
    fn projection_roundtrip_in_subspace() {
        let mut rng = seeded_rng(10);
        let a = matrix_with_spectrum(40, 20, &[5.0, 2.0, 1.0], &mut rng);
        let mut s = SerialStreamingSvd::new(config_exact(3));
        s.fit_batched(&a, 5);
        // A column of the training data lies in the tracked rank-3 space.
        let x = a.col(7);
        let rec = s.reconstruct(&s.project(&x));
        let err: f64 = x.iter().zip(&rec).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 1e-7 * norm, "in-subspace snapshot must reconstruct: {err}");
        assert!(s.residual_fraction(&x) < 1e-7);
    }

    #[test]
    fn residual_flags_novel_directions() {
        let mut rng = seeded_rng(11);
        let a = matrix_with_spectrum(50, 20, &[4.0, 2.0], &mut rng);
        let mut s = SerialStreamingSvd::new(config_exact(2));
        s.fit_batched(&a, 10);
        // A random vector is mostly outside a 2-D subspace of R^50.
        let novel: Vec<f64> = (0..50).map(|i| ((i * 13 + 1) as f64 * 0.7).sin()).collect();
        assert!(
            s.residual_fraction(&novel) > 0.5,
            "novel input should leave a large residual: {}",
            s.residual_fraction(&novel)
        );
    }

    #[test]
    fn fit_source_is_bitwise_fit_batched() {
        use psvd_data::stream::MatrixBatchSource;
        let mut rng = seeded_rng(12);
        let a = matrix_with_spectrum(64, 28, &[6.0, 3.0, 1.5, 0.7], &mut rng);
        let mut by_slice = SerialStreamingSvd::new(config_exact(4));
        by_slice.fit_batched(&a, 5);
        let mut by_source = SerialStreamingSvd::new(config_exact(4));
        by_source.fit_source(&mut MatrixBatchSource::new(&a, 5)).unwrap();
        assert_eq!(by_slice.singular_values(), by_source.singular_values());
        assert_eq!(by_slice.modes(), by_source.modes());
        assert_eq!(by_source.snapshots_seen(), 28);
    }

    #[test]
    fn empty_update_is_noop() {
        let a = Matrix::<f64>::identity(4);
        let mut s = SerialStreamingSvd::new(SvdConfig::new(2));
        s.initialize(&a);
        let before = s.modes().clone();
        s.incorporate_data(&Matrix::zeros(4, 0));
        assert_eq!(s.modes(), &before);
        assert_eq!(s.iteration(), 0);
    }
}
