//! Spectral proper orthogonal decomposition (SPOD; Towne, Schmidt &
//! Colonius 2018), the frequency-resolved POD variant the paper's authors
//! ship in the companion PySPOD package and cite throughout.
//!
//! Welch-style estimation: the snapshot record is split into overlapping,
//! windowed segments; each grid point's segment is FFT'd in time; at every
//! frequency the segment realizations form a small snapshot matrix whose
//! SVD yields the SPOD modes and the modal energy spectrum.

use psvd_linalg::cmatrix::CMatrix;
use psvd_linalg::complex::Complex;
use psvd_linalg::fft::{fft, fft_frequencies};
use psvd_linalg::Matrix;

/// SPOD estimation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SpodConfig {
    /// Snapshots per segment (FFT length).
    pub segment_length: usize,
    /// Overlap between consecutive segments, in snapshots.
    pub overlap: usize,
    /// Sampling interval of the snapshots.
    pub dt: f64,
    /// Number of SPOD modes retained per frequency.
    pub n_modes: usize,
}

impl SpodConfig {
    /// Standard Welch setup: 50% overlap, Hamming window.
    pub fn new(segment_length: usize, dt: f64) -> Self {
        Self { segment_length, overlap: segment_length / 2, dt, n_modes: 3 }
    }

    /// Builder: modes per frequency.
    pub fn with_n_modes(mut self, k: usize) -> Self {
        self.n_modes = k;
        self
    }

    /// Builder: segment overlap.
    pub fn with_overlap(mut self, overlap: usize) -> Self {
        self.overlap = overlap;
        self
    }

    /// Number of segments available from `n` snapshots.
    pub fn segment_count(&self, n: usize) -> usize {
        if n < self.segment_length {
            return 0;
        }
        let hop = self.segment_length - self.overlap;
        (n - self.segment_length) / hop + 1
    }
}

/// Per-frequency SPOD output.
pub struct SpodFrequency {
    /// Physical frequency (cycles per unit time, non-negative).
    pub frequency: f64,
    /// Modal energies (descending).
    pub energies: Vec<f64>,
    /// SPOD modes as columns (complex, orthonormal).
    pub modes: CMatrix,
}

/// Full SPOD result: one entry per non-negative frequency bin.
pub struct Spod {
    /// Per-frequency decompositions, ascending frequency.
    pub frequencies: Vec<SpodFrequency>,
    /// Number of Welch segments used.
    pub n_segments: usize,
}

impl Spod {
    /// Total energy at each frequency (sum of modal energies) — the SPOD
    /// spectrum one plots to find peaks.
    pub fn spectrum(&self) -> Vec<(f64, f64)> {
        self.frequencies.iter().map(|f| (f.frequency, f.energies.iter().sum())).collect()
    }

    /// The frequency bin with the most energy.
    pub fn peak_frequency(&self) -> f64 {
        self.spectrum()
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite energies"))
            .map(|(f, _)| f)
            .unwrap_or(0.0)
    }
}

/// Hamming window of length `n`, normalized to unit mean square.
fn hamming(n: usize) -> Vec<f64> {
    let raw: Vec<f64> = (0..n)
        .map(|i| 0.54 - 0.46 * (2.0 * std::f64::consts::PI * i as f64 / (n - 1) as f64).cos())
        .collect();
    let ms = raw.iter().map(|w| w * w).sum::<f64>() / n as f64;
    let scale = 1.0 / ms.sqrt();
    raw.into_iter().map(|w| w * scale).collect()
}

/// Compute the SPOD of a snapshot matrix (`M x N`, columns = time).
pub fn spod(data: &Matrix, cfg: &SpodConfig) -> Spod {
    let (m, n) = data.shape();
    let nfft = cfg.segment_length;
    assert!(nfft >= 4, "segment length too short");
    assert!(cfg.overlap < nfft, "overlap must be smaller than the segment");
    let n_seg = cfg.segment_count(n);
    assert!(n_seg >= 1, "record too short for even one segment ({n} < {nfft})");
    let hop = nfft - cfg.overlap;
    let window = hamming(nfft);

    // Q[freq][dof][segment]: build per-frequency realization matrices by
    // FFT-ing each grid point's windowed segment.
    let n_freq = nfft / 2 + 1; // one-sided
    let mut qf: Vec<CMatrix> = (0..n_freq).map(|_| CMatrix::zeros(m, n_seg)).collect();
    let mut series: Vec<Complex> = vec![Complex::ZERO; nfft];
    for seg in 0..n_seg {
        let start = seg * hop;
        for dof in 0..m {
            for t in 0..nfft {
                series[t] = Complex::real(data[(dof, start + t)] * window[t]);
            }
            let spec = fft(&series);
            for (f, q) in qf.iter_mut().enumerate() {
                q[(dof, seg)] = spec[f].scale(1.0 / nfft as f64);
            }
        }
    }

    // Per frequency: SVD of Q_f / sqrt(n_seg) via the Hermitian method of
    // snapshots on the small n_seg x n_seg cross-spectral density matrix.
    let freqs = fft_frequencies(nfft, cfg.dt);
    let frequencies = qf
        .into_iter()
        .enumerate()
        .map(|(fi, q)| {
            let (energies, modes) = hermitian_snapshot_svd(&q, cfg.n_modes, n_seg);
            SpodFrequency { frequency: freqs[fi].abs(), energies, modes }
        })
        .collect();
    Spod { frequencies, n_segments: n_seg }
}

/// Leading singular pairs of a complex tall matrix `Q` (`M x S`, `M >> S`)
/// via the eigendecomposition of the small Hermitian `Q*Q`.
fn hermitian_snapshot_svd(q: &CMatrix, k: usize, n_seg: usize) -> (Vec<f64>, CMatrix) {
    let s = q.cols();
    let k = k.min(s);
    // Small Hermitian cross-spectral matrix C = Q* Q / n_seg.
    let c = q.adjoint().matmul(q).scaled(Complex::real(1.0 / n_seg as f64));
    // Hermitian eigen via the real embedding [[Re, -Im], [Im, Re]]: its
    // eigenvalues are those of C doubled in multiplicity.
    let re = c.real_part();
    let im = c.imag_part();
    let mut embed = Matrix::zeros(2 * s, 2 * s);
    for i in 0..s {
        for j in 0..s {
            embed[(i, j)] = re[(i, j)];
            embed[(i, j + s)] = -im[(i, j)];
            embed[(i + s, j)] = im[(i, j)];
            embed[(i + s, j + s)] = re[(i, j)];
        }
    }
    let eig = psvd_linalg::eig::sym_eig(&embed);
    // Take every second eigenvalue (doubled multiplicities) and rebuild the
    // complex eigenvectors from the embedding halves.
    let mut energies = Vec::with_capacity(k);
    let mut theta = CMatrix::zeros(s, k);
    let mut out_col = 0;
    let mut idx = 0;
    while out_col < k && idx < 2 * s {
        let lam = eig.values[idx].max(0.0);
        let v = eig.vectors.col(idx);
        energies.push(lam);
        for i in 0..s {
            theta[(i, out_col)] = Complex::new(v[i], v[i + s]);
        }
        // Normalize the complex vector (the embedding halves give norm 1
        // already, but guard round-off).
        let norm = (0..s).map(|i| theta[(i, out_col)].norm_sqr()).sum::<f64>().sqrt();
        if norm > 0.0 {
            for i in 0..s {
                theta[(i, out_col)] = theta[(i, out_col)].scale(1.0 / norm);
            }
        }
        out_col += 1;
        idx += 2; // skip the duplicate
    }
    energies.truncate(out_col);

    // Lift to spatial modes: Φ = Q Θ Λ^{-1/2} / sqrt(n_seg).
    let mut phi = q.matmul(&theta);
    for (j, &lam) in energies.iter().enumerate() {
        let scale = if lam > 1e-300 { 1.0 / (lam * n_seg as f64).sqrt() } else { 0.0 };
        for i in 0..phi.rows() {
            phi[(i, j)] = phi[(i, j)].scale(scale);
        }
    }
    (energies, phi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Traveling wave u(x, t) = a cos(kx - omega t) + noise-free.
    fn traveling_wave(m: usize, n: usize, dt: f64, omega: f64, amp: f64) -> Matrix {
        Matrix::from_fn(m, n, |i, t| {
            let x = i as f64 / m as f64 * 2.0 * std::f64::consts::PI;
            amp * (3.0 * x - omega * t as f64 * dt).cos()
        })
    }

    #[test]
    fn peak_at_planted_frequency() {
        let dt = 0.1;
        let omega = 2.0 * std::f64::consts::PI * 1.25; // 1.25 cycles/unit
        let data = traveling_wave(64, 512, dt, omega, 2.0);
        let s = spod(&data, &SpodConfig::new(64, dt));
        let peak = s.peak_frequency();
        // Bin resolution df = 1/(64*0.1) = 0.15625.
        assert!((peak - 1.25).abs() < 0.16, "peak at {peak}, expected 1.25");
    }

    #[test]
    fn spectrum_energy_concentrated() {
        let dt = 0.1;
        let omega = 2.0 * std::f64::consts::PI * 1.25;
        let data = traveling_wave(48, 512, dt, omega, 1.0);
        let s = spod(&data, &SpodConfig::new(64, dt));
        let spec = s.spectrum();
        let total: f64 = spec.iter().map(|(_, e)| e).sum();
        let peak_e =
            spec.iter().filter(|(f, _)| (f - 1.25).abs() < 0.32).map(|(_, e)| e).sum::<f64>();
        assert!(peak_e > 0.8 * total, "energy near peak {peak_e} of {total}");
    }

    #[test]
    fn traveling_wave_needs_one_complex_mode() {
        // A traveling wave is a SINGLE complex SPOD mode (unlike real POD,
        // which needs two): the first modal energy dominates the second.
        let dt = 0.1;
        let omega = 2.0 * std::f64::consts::PI * 1.25;
        let data = traveling_wave(48, 768, dt, omega, 1.0);
        let s = spod(&data, &SpodConfig::new(64, dt).with_n_modes(2));
        let peak_bin = s
            .frequencies
            .iter()
            .max_by(|a, b| {
                a.energies.iter().sum::<f64>().partial_cmp(&b.energies.iter().sum::<f64>()).unwrap()
            })
            .unwrap();
        assert!(
            peak_bin.energies[0] > 10.0 * peak_bin.energies[1].max(1e-12),
            "first mode should dominate: {:?}",
            peak_bin.energies
        );
    }

    #[test]
    fn segment_counting() {
        let cfg = SpodConfig { segment_length: 64, overlap: 32, dt: 1.0, n_modes: 1 };
        assert_eq!(cfg.segment_count(64), 1);
        assert_eq!(cfg.segment_count(96), 2);
        assert_eq!(cfg.segment_count(128), 3);
        assert_eq!(cfg.segment_count(63), 0);
    }

    #[test]
    fn energies_descending_nonnegative() {
        let dt = 0.05;
        let data = Matrix::from_fn(32, 300, |i, t| {
            ((i + t) as f64 * 0.17).sin() + 0.5 * ((i * 2 + 3 * t) as f64 * 0.31).cos()
        });
        let s = spod(&data, &SpodConfig::new(32, dt).with_n_modes(3));
        for f in &s.frequencies {
            for w in f.energies.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
            for &e in &f.energies {
                assert!(e >= 0.0);
            }
        }
    }

    #[test]
    fn modes_orthonormal_at_peak() {
        let dt = 0.1;
        let data = Matrix::from_fn(40, 400, |i, t| {
            let x = i as f64 * 0.2;
            (2.0 * x - 0.9 * t as f64 * dt).cos() + 0.3 * (x + 2.2 * t as f64 * dt).sin()
        });
        let s = spod(&data, &SpodConfig::new(64, dt).with_n_modes(2));
        let peak = &s.frequencies[3];
        // Hermitian orthonormality of mode columns where energy is nonzero.
        let phi = &peak.modes;
        for a in 0..phi.cols() {
            if peak.energies[a] < 1e-10 {
                continue;
            }
            for b in 0..phi.cols() {
                if peak.energies[b] < 1e-10 {
                    continue;
                }
                let dot = psvd_linalg::cmatrix::cvec_dot(&phi.col(a), &phi.col(b));
                let target = if a == b { 1.0 } else { 0.0 };
                assert!((dot.abs() - target).abs() < 1e-6, "<phi_{a}, phi_{b}> = {dot:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "record too short")]
    fn short_record_panics() {
        let data = Matrix::zeros(8, 16);
        let _ = spod(&data, &SpodConfig::new(64, 0.1));
    }
}
