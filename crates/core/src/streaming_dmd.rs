//! Streaming DMD (Hemati, Williams & Rowley 2014).
//!
//! Online variant of [`crate::dmd`]: snapshot *pairs* `(x, y = F(x))`
//! arrive one at a time; the method maintains a rank-limited orthonormal
//! basis `Q` (grown Gram–Schmidt style, compressed by POD when it exceeds
//! the budget) plus the small projected matrices
//!
//! ```text
//! A = Σ (Qᵀy)(Qᵀx)ᵀ,   G = Σ (Qᵀx)(Qᵀx)ᵀ
//! ```
//!
//! from which the projected operator `Ã = A G⁺` and its eigenvalues/modes
//! are available at any time — the streaming analogue of the DMD the paper
//! lists among the SVD's data-driven applications, and a natural companion
//! to the streaming SVD this library is built around.
//!
//! Per-pair work is dominated by `matvec`/`matvec_t` against the tall
//! basis `Q`; those route through `psvd_linalg::gemm`, which partitions
//! output rows (never reductions) across the kernel thread pool, so
//! streaming results are bitwise independent of the thread count.

use psvd_linalg::cmatrix::CMatrix;
use psvd_linalg::complex::Complex;
use psvd_linalg::eig_general::general_eig;
use psvd_linalg::gemm::{matmul, matmul_tn, matvec, matvec_t};
use psvd_linalg::pinv::pseudoinverse;
use psvd_linalg::Matrix;

/// Online DMD over a stream of snapshot pairs.
pub struct StreamingDmd {
    /// Basis budget (maximum retained basis vectors).
    max_rank: usize,
    /// Sampling interval.
    dt: f64,
    /// Orthonormal basis `Q` (`M x r`, grows then saturates at the budget).
    basis: Matrix,
    /// Projected cross matrix `A = Σ ỹ x̃ᵀ`.
    a: Matrix,
    /// Projected Gram matrix `G = Σ x̃ x̃ᵀ`.
    g: Matrix,
    /// Pairs ingested.
    pairs_seen: usize,
}

/// Threshold for admitting a new basis direction: the component of the
/// incoming snapshot orthogonal to the current basis must exceed this
/// fraction of the snapshot's norm.
const ADMIT_FRACTION: f64 = 1e-8;

impl StreamingDmd {
    /// New tracker with a basis budget of `max_rank` and sampling step `dt`.
    pub fn new(max_rank: usize, dt: f64) -> Self {
        assert!(max_rank >= 2, "DMD needs at least a 2-dimensional basis");
        Self {
            max_rank,
            dt,
            basis: Matrix::zeros(0, 0),
            a: Matrix::zeros(0, 0),
            g: Matrix::zeros(0, 0),
            pairs_seen: 0,
        }
    }

    /// Pairs ingested so far.
    pub fn pairs_seen(&self) -> usize {
        self.pairs_seen
    }

    /// Current basis rank.
    pub fn rank(&self) -> usize {
        self.basis.cols()
    }

    /// Ingest one snapshot pair `(x, y)` with `y = F(x)`.
    pub fn ingest(&mut self, x: &[f64], y: &[f64]) -> &mut Self {
        assert_eq!(x.len(), y.len(), "pair lengths differ");
        if self.basis.rows() == 0 {
            self.basis = Matrix::zeros(x.len(), 0);
        }
        assert_eq!(x.len(), self.basis.rows(), "snapshot length changed mid-stream");

        // Grow the basis with whichever parts of x and y it misses.
        for v in [x, y] {
            self.maybe_admit(v);
        }

        // Accumulate the projected statistics.
        let xt = matvec_t(&self.basis, x);
        let yt = matvec_t(&self.basis, y);
        let r = self.rank();
        for i in 0..r {
            for j in 0..r {
                self.a[(i, j)] += yt[i] * xt[j];
                self.g[(i, j)] += xt[i] * xt[j];
            }
        }
        self.pairs_seen += 1;

        // Compress by POD of the Gram statistics when over budget.
        if self.rank() > self.max_rank {
            self.compress();
        }
        self
    }

    fn maybe_admit(&mut self, v: &[f64]) {
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            return;
        }
        // Orthogonal residual of v against the basis (two passes).
        let mut e = v.to_vec();
        for _ in 0..2 {
            let c = matvec_t(&self.basis, &e);
            let proj = matvec(&self.basis, &c);
            for (ei, pi) in e.iter_mut().zip(&proj) {
                *ei -= pi;
            }
        }
        let rnorm = e.iter().map(|x| x * x).sum::<f64>().sqrt();
        if rnorm > ADMIT_FRACTION * norm {
            for x in &mut e {
                *x /= rnorm;
            }
            // Append the new direction; the projected matrices get a zero
            // row and column.
            let r = self.rank();
            self.basis = self.basis.hstack(&Matrix::from_columns(&[e]));
            let mut a = Matrix::zeros(r + 1, r + 1);
            let mut g = Matrix::zeros(r + 1, r + 1);
            for i in 0..r {
                for j in 0..r {
                    a[(i, j)] = self.a[(i, j)];
                    g[(i, j)] = self.g[(i, j)];
                }
            }
            self.a = a;
            self.g = g;
        }
    }

    fn compress(&mut self) {
        // POD of the accumulated input statistics: eigenvectors of G.
        let eig = psvd_linalg::eig::sym_eig(&self.g);
        let keep = self.max_rank;
        let t = eig.vectors.first_columns(keep); // r x keep, orthonormal
        self.basis = matmul(&self.basis, &t);
        self.a = matmul_tn(&t, &matmul(&self.a, &t));
        self.g = matmul_tn(&t, &matmul(&self.g, &t));
    }

    /// Current DMD eigenvalues (discrete-time) and modes, from
    /// `Ã = A G⁺` projected back through the basis.
    pub fn eigen(&self) -> (Vec<Complex>, CMatrix) {
        assert!(self.pairs_seen >= 2, "need at least two pairs");
        let a_tilde = matmul(&self.a, &pseudoinverse(&self.g));
        let eig = general_eig(&a_tilde);
        let modes = CMatrix::from_real(&self.basis).matmul(&eig.vectors);
        (eig.values, modes)
    }

    /// Continuous-time eigenvalues `ln(λ)/dt`.
    pub fn continuous_eigenvalues(&self) -> Vec<Complex> {
        self.eigen().0.iter().map(|l| l.ln().scale(1.0 / self.dt)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pairs from a linear oscillator field with two frequencies.
    fn pair_stream(m: usize, n: usize, dt: f64) -> Vec<(Vec<f64>, Vec<f64>)> {
        let snapshot = |t: f64| -> Vec<f64> {
            (0..m)
                .map(|i| {
                    let v1 = ((i as f64 * 0.11) + 0.2).sin();
                    let w1 = ((i as f64 * 0.23) + 0.5).cos();
                    let v2 = ((i as f64 * 0.37) + 0.9).sin();
                    let w2 = ((i as f64 * 0.53) + 1.4).cos();
                    v1 * (3.0 * t).cos()
                        + w1 * (3.0 * t).sin()
                        + 0.5 * (v2 * (8.0 * t).cos() + w2 * (8.0 * t).sin())
                })
                .collect()
        };
        (0..n).map(|k| (snapshot(k as f64 * dt), snapshot((k + 1) as f64 * dt))).collect()
    }

    #[test]
    fn recovers_frequencies_online() {
        let dt = 0.04;
        let mut sdmd = StreamingDmd::new(6, dt);
        for (x, y) in pair_stream(60, 150, dt) {
            sdmd.ingest(&x, &y);
        }
        assert_eq!(sdmd.pairs_seen(), 150);
        let freqs: Vec<f64> = sdmd.continuous_eigenvalues().iter().map(|w| w.im.abs()).collect();
        assert!(freqs.iter().any(|&f| (f - 3.0).abs() < 0.05), "omega = 3 missing from {freqs:?}");
        assert!(freqs.iter().any(|&f| (f - 8.0).abs() < 0.05), "omega = 8 missing from {freqs:?}");
    }

    #[test]
    fn basis_respects_budget() {
        let dt = 0.04;
        let mut sdmd = StreamingDmd::new(4, dt);
        for (x, y) in pair_stream(40, 60, dt) {
            sdmd.ingest(&x, &y);
            assert!(sdmd.rank() <= 5, "budget 4 (+1 transient) exceeded: {}", sdmd.rank());
        }
        assert!(sdmd.rank() <= 4);
    }

    #[test]
    fn matches_batch_dmd() {
        let dt = 0.05;
        let pairs = pair_stream(50, 120, dt);
        let mut sdmd = StreamingDmd::new(6, dt);
        for (x, y) in &pairs {
            sdmd.ingest(x, y);
        }
        // Batch DMD on the same data (first elements + final y).
        let mut cols: Vec<Vec<f64>> = pairs.iter().map(|(x, _)| x.clone()).collect();
        cols.push(pairs.last().unwrap().1.clone());
        let data = Matrix::from_columns(&cols);
        let batch = crate::dmd::dmd(&data, 4, dt);

        let mut sf: Vec<f64> = sdmd.continuous_eigenvalues().iter().map(|w| w.im).collect();
        // Keep only the four dominant (nonzero-ish) streaming eigenvalues
        // by matching each batch frequency.
        for bw in batch.continuous_eigenvalues() {
            let found = sf.iter().any(|&s| (s - bw.im).abs() < 0.05);
            assert!(found, "batch eigenvalue {bw:?} not tracked online: {sf:?}");
        }
        sf.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }

    #[test]
    fn ignores_duplicate_directions() {
        // Feeding the same pair repeatedly must not grow the basis.
        let x: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3 + 0.1).sin()).collect();
        let mut sdmd = StreamingDmd::new(5, 0.1);
        for _ in 0..10 {
            sdmd.ingest(&x, &y);
        }
        assert_eq!(sdmd.rank(), 2, "only two independent directions exist");
    }

    #[test]
    #[should_panic(expected = "at least two pairs")]
    fn eigen_needs_data() {
        let sdmd = StreamingDmd::new(4, 0.1);
        let _ = sdmd.eigen();
    }
}
