//! Viscous Burgers equation data generator (Section 4.3 of the paper).
//!
//! The paper's first experiment builds its snapshot matrix directly from the
//! closed-form solution of the viscous Burgers equation (Eq. 13):
//!
//! ```text
//! u(x,t) = (x/(t+1)) / (1 + sqrt((t+1)/t0) * exp(Re * x^2 / (4t+4)))
//! t0 = exp(Re/8),  Re = 1/nu
//! ```
//!
//! on `x ∈ [0, L]`, `t ∈ [0, t_f]` with `L = 1`, `t_f = 2`, `Re = 1000`, a
//! 16384-point grid and 800 snapshots.

use psvd_linalg::Matrix;

/// Parameters of the Burgers snapshot set.
#[derive(Clone, Copy, Debug)]
pub struct BurgersConfig {
    /// Number of spatial grid points `M`.
    pub grid_points: usize,
    /// Number of snapshots `N`.
    pub snapshots: usize,
    /// Reynolds number `Re = 1/nu`.
    pub reynolds: f64,
    /// Domain length `L`.
    pub length: f64,
    /// Final time `t_f`.
    pub final_time: f64,
}

impl Default for BurgersConfig {
    /// The paper's configuration: 16384 grid points, 800 snapshots,
    /// `Re = 1000`, `L = 1`, `t_f = 2`.
    fn default() -> Self {
        Self { grid_points: 16384, snapshots: 800, reynolds: 1000.0, length: 1.0, final_time: 2.0 }
    }
}

impl BurgersConfig {
    /// A scaled-down configuration for tests and quick demos.
    pub fn small() -> Self {
        Self { grid_points: 512, snapshots: 64, ..Self::default() }
    }

    /// The spatial grid (uniform, endpoint-inclusive).
    pub fn grid(&self) -> Vec<f64> {
        let m = self.grid_points;
        (0..m).map(|i| self.length * i as f64 / (m - 1) as f64).collect()
    }

    /// The snapshot times (uniform over `[0, t_f]`).
    pub fn times(&self) -> Vec<f64> {
        let n = self.snapshots;
        (0..n).map(|j| self.final_time * j as f64 / (n - 1).max(1) as f64).collect()
    }
}

/// The analytical solution `u(x, t)` of Eq. (13).
pub fn analytical_solution(x: f64, t: f64, reynolds: f64) -> f64 {
    let t0 = (reynolds / 8.0).exp();
    let num = x / (t + 1.0);
    let den = 1.0 + ((t + 1.0) / t0).sqrt() * (reynolds * x * x / (4.0 * t + 4.0)).exp();
    num / den
}

/// The initial condition `u(x, 0)`.
pub fn initial_condition(x: f64, reynolds: f64) -> f64 {
    analytical_solution(x, 0.0, reynolds)
}

/// The full `M x N` snapshot matrix: column `j` is the solution at time
/// `t_j` sampled on the spatial grid.
pub fn snapshot_matrix(cfg: &BurgersConfig) -> Matrix {
    let grid = cfg.grid();
    let times = cfg.times();
    Matrix::from_fn(cfg.grid_points, cfg.snapshots, |i, j| {
        analytical_solution(grid[i], times[j], cfg.reynolds)
    })
}

/// The rows `[r0, r1)` of the snapshot matrix, generated without building
/// the global matrix — this is what each rank of a distributed run does.
pub fn snapshot_rows(cfg: &BurgersConfig, r0: usize, r1: usize) -> Matrix {
    assert!(r0 <= r1 && r1 <= cfg.grid_points, "row range out of bounds");
    let grid = cfg.grid();
    let times = cfg.times();
    Matrix::from_fn(r1 - r0, cfg.snapshots, |i, j| {
        analytical_solution(grid[r0 + i], times[j], cfg.reynolds)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_conditions_hold() {
        // u(0, t) = 0 for all t; u(L, t) ~ 0 (exponentially suppressed).
        for &t in &[0.0, 0.5, 1.0, 2.0] {
            assert_eq!(analytical_solution(0.0, t, 1000.0), 0.0);
            assert!(analytical_solution(1.0, t, 1000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn solution_is_finite_everywhere() {
        let cfg = BurgersConfig::small();
        let a = snapshot_matrix(&cfg);
        assert!(a.all_finite());
        assert!(a.frobenius_norm() > 0.0);
    }

    #[test]
    fn solution_decays_in_time() {
        // The viscous solution's energy decays monotonically-ish; check
        // first vs last snapshot energy.
        let cfg = BurgersConfig::small();
        let a = snapshot_matrix(&cfg);
        let e0 = a.col_norm(0);
        let e_last = a.col_norm(cfg.snapshots - 1);
        assert!(e_last < e0, "energy should decay: {e0} -> {e_last}");
    }

    #[test]
    fn snapshot_rows_matches_full() {
        let cfg = BurgersConfig { grid_points: 64, snapshots: 10, ..BurgersConfig::default() };
        let full = snapshot_matrix(&cfg);
        let rows = snapshot_rows(&cfg, 16, 48);
        assert_eq!(rows, full.row_block(16, 48));
    }

    #[test]
    fn grid_and_times_cover_domain() {
        let cfg = BurgersConfig::small();
        let g = cfg.grid();
        assert_eq!(g[0], 0.0);
        assert!((g[g.len() - 1] - cfg.length).abs() < 1e-15);
        let t = cfg.times();
        assert_eq!(t[0], 0.0);
        assert!((t[t.len() - 1] - cfg.final_time).abs() < 1e-15);
    }

    #[test]
    fn initial_condition_matches_t0() {
        for &x in &[0.1, 0.3, 0.5] {
            assert_eq!(initial_condition(x, 1000.0), analytical_solution(x, 0.0, 1000.0));
        }
    }

    #[test]
    fn default_matches_paper() {
        let cfg = BurgersConfig::default();
        assert_eq!(cfg.grid_points, 16384);
        assert_eq!(cfg.snapshots, 800);
        assert_eq!(cfg.reynolds, 1000.0);
    }

    #[test]
    fn low_rank_structure_present() {
        // Advecting fronts give Burgers a slowly (but steadily) decaying KL
        // spectrum; check an order of magnitude of decay over ten modes and
        // monotonicity, rather than rapid low-rankness.
        let cfg = BurgersConfig { grid_points: 256, snapshots: 40, ..BurgersConfig::default() };
        let a = snapshot_matrix(&cfg);
        let f = psvd_linalg::svd(&a);
        assert!(f.s[9] < 0.05 * f.s[0], "spectrum should decay: {:?}", &f.s[..10]);
        assert!(f.s.windows(2).all(|w| w[0] >= w[1]));
    }
}
