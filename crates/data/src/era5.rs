//! Synthetic global surface-pressure fields standing in for ERA5.
//!
//! The paper's science demonstration (Figure 2) extracts the two leading
//! coherent structures from eight years of 6-hourly ERA5 surface pressure.
//! That dataset is not redistributable here, so this module generates a
//! spatiotemporal field with the same character — and, crucially, with
//! *known planted modes*, which upgrades the paper's qualitative eyeball
//! check into a quantitative subspace-recovery test:
//!
//! - planted spatial patterns: zonal-wavenumber structures modulated by
//!   latitudinal envelopes (wavenumber-1 "seasonal see-saw", wavenumber-2
//!   standing wave, a polar-annular-mode-like pattern, ...);
//! - temporal coefficients: sinusoids at separated frequencies (annual,
//!   semi-annual, ...) so they are nearly orthogonal over the record;
//! - AR(1) red noise on top, with configurable amplitude.
//!
//! Amplitudes are well separated, so the leading POD/SVD modes of the data
//! must align with the planted patterns up to sign.

use psvd_linalg::qr::thin_qr;
use psvd_linalg::random::{seeded_rng, StandardNormal};
use psvd_linalg::Matrix;
use rand::distributions::Distribution;
use rand::Rng;

/// Configuration of the synthetic ERA5-like dataset.
#[derive(Clone, Copy, Debug)]
pub struct Era5Config {
    /// Longitudes (grid columns).
    pub nlon: usize,
    /// Latitudes (grid rows).
    pub nlat: usize,
    /// Number of snapshots (6-hourly samples in the paper).
    pub snapshots: usize,
    /// Number of planted coherent modes.
    pub n_modes: usize,
    /// Std-dev of the AR(1) noise relative to the weakest planted mode.
    pub noise_level: f64,
    /// AR(1) autocorrelation of the noise.
    pub noise_ar: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Era5Config {
    /// A laptop-scale default: 144 x 96 grid (2.5 degree), 2048 snapshots.
    fn default() -> Self {
        Self {
            nlon: 144,
            nlat: 96,
            snapshots: 2048,
            n_modes: 4,
            noise_level: 0.1,
            noise_ar: 0.8,
            seed: 2013,
        }
    }
}

impl Era5Config {
    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self { nlon: 24, nlat: 16, snapshots: 128, ..Self::default() }
    }

    /// Spatial degrees of freedom `M = nlat * nlon`.
    pub fn dof(&self) -> usize {
        self.nlat * self.nlon
    }
}

/// The generated dataset: snapshots plus the planted ground truth.
pub struct Era5Data {
    /// `M x N` anomaly snapshot matrix (mean already zero by construction).
    pub snapshots: Matrix,
    /// `M x n_modes` orthonormal planted spatial modes, strongest first.
    pub true_modes: Matrix,
    /// Mode amplitudes (descending), the planted "singular values" up to
    /// the temporal normalization.
    pub amplitudes: Vec<f64>,
    /// Configuration used.
    pub config: Era5Config,
}

/// Planted spatial pattern `k` evaluated at `(lat_idx, lon_idx)`.
///
/// Wavenumber `k+1` in longitude, with alternating symmetric/antisymmetric
/// latitudinal envelopes — crude caricatures of the annular modes and
/// stationary waves that dominate real surface-pressure variability.
fn spatial_pattern(k: usize, nlat: usize, nlon: usize, i: usize, j: usize) -> f64 {
    let lat = std::f64::consts::PI * (i as f64 / (nlat - 1) as f64 - 0.5); // -pi/2 .. pi/2
    let lon = 2.0 * std::f64::consts::PI * j as f64 / nlon as f64;
    let wavenumber = (k + 1) as f64;
    let zonal = (wavenumber * lon).cos();
    let envelope = if k.is_multiple_of(2) {
        lat.cos() // symmetric about the equator
    } else {
        (2.0 * lat).sin() // antisymmetric (hemispheric see-saw)
    };
    zonal * envelope
}

/// Temporal coefficient of mode `k` at snapshot `t` out of `n`:
/// separated harmonics over the record, normalized to unit RMS.
fn temporal_coefficient(k: usize, t: usize, n: usize) -> f64 {
    let cycles = 2.0 + 3.0 * k as f64; // 2, 5, 8, ... cycles over the record
    let phase = 2.0 * std::f64::consts::PI * cycles * t as f64 / n as f64;
    std::f64::consts::SQRT_2 * (phase + 0.3 * k as f64).sin()
}

/// Generate the dataset.
pub fn generate(cfg: &Era5Config) -> Era5Data {
    assert!(cfg.n_modes >= 1, "need at least one planted mode");
    let m = cfg.dof();
    let n = cfg.snapshots;

    // Raw planted patterns as columns, then orthonormalized so that
    // "recover the planted subspace" is exactly testable.
    let raw = Matrix::from_fn(m, cfg.n_modes, |idx, k| {
        let i = idx / cfg.nlon;
        let j = idx % cfg.nlon;
        spatial_pattern(k, cfg.nlat, cfg.nlon, i, j)
    });
    let true_modes = thin_qr(&raw).q;

    // Amplitudes decay geometrically: sigma_k = 10 * 2^{-k} (hPa-ish scale).
    let amplitudes: Vec<f64> = (0..cfg.n_modes).map(|k| 10.0 * 0.5f64.powi(k as i32)).collect();

    let mut snapshots = Matrix::zeros(m, n);
    for t in 0..n {
        for k in 0..cfg.n_modes {
            let a = amplitudes[k] * temporal_coefficient(k, t, n);
            for idx in 0..m {
                snapshots[(idx, t)] += a * true_modes[(idx, k)];
            }
        }
    }

    // AR(1) red noise, independent per grid point.
    if cfg.noise_level > 0.0 {
        let mut rng = seeded_rng(cfg.seed);
        let sigma_noise = cfg.noise_level * amplitudes[cfg.n_modes - 1];
        let innovation = sigma_noise * (1.0 - cfg.noise_ar * cfg.noise_ar).sqrt();
        let normal = StandardNormal;
        for idx in 0..m {
            let mut state = sigma_noise * normal.sample(&mut rng);
            for t in 0..n {
                snapshots[(idx, t)] += state;
                state = cfg.noise_ar * state + innovation * normal.sample(&mut rng);
            }
        }
    }

    Era5Data { snapshots, true_modes, amplitudes, config: *cfg }
}

/// Generate only the rows `[r0, r1)` of the snapshot matrix (what one rank
/// of a distributed run would hold). Noise streams are per-grid-point, so
/// the block exactly matches the corresponding rows of a full generation.
pub fn generate_rows(cfg: &Era5Config, r0: usize, r1: usize) -> Matrix {
    assert!(r0 <= r1 && r1 <= cfg.dof(), "row range out of bounds");
    let n = cfg.snapshots;

    // The orthonormalization of planted patterns is global, so build the
    // full mode matrix (cheap: M x n_modes) and slice.
    let m = cfg.dof();
    let raw = Matrix::from_fn(m, cfg.n_modes, |idx, k| {
        let i = idx / cfg.nlon;
        let j = idx % cfg.nlon;
        spatial_pattern(k, cfg.nlat, cfg.nlon, i, j)
    });
    let modes = thin_qr(&raw).q;
    let amplitudes: Vec<f64> = (0..cfg.n_modes).map(|k| 10.0 * 0.5f64.powi(k as i32)).collect();

    let mut block = Matrix::zeros(r1 - r0, n);
    for t in 0..n {
        for k in 0..cfg.n_modes {
            let a = amplitudes[k] * temporal_coefficient(k, t, n);
            for (bi, idx) in (r0..r1).enumerate() {
                block[(bi, t)] += a * modes[(idx, k)];
            }
        }
    }
    if cfg.noise_level > 0.0 {
        let mut rng = seeded_rng(cfg.seed);
        let sigma_noise = cfg.noise_level * amplitudes[cfg.n_modes - 1];
        let innovation = sigma_noise * (1.0 - cfg.noise_ar * cfg.noise_ar).sqrt();
        let normal = StandardNormal;
        for idx in 0..m {
            // Advance the per-point stream even for rows outside the block so
            // the RNG stays aligned with a full generation.
            let mut state = sigma_noise * normal.sample(&mut rng);
            if idx >= r0 && idx < r1 {
                for t in 0..n {
                    block[(idx - r0, t)] += state;
                    state = cfg.noise_ar * state + innovation * normal.sample(&mut rng);
                }
            } else {
                for _ in 0..n {
                    state = cfg.noise_ar * state + innovation * rng.sample(StandardNormal);
                }
            }
        }
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use psvd_linalg::norms::orthogonality_error;
    use psvd_linalg::validate::max_principal_angle;

    #[test]
    fn planted_modes_orthonormal() {
        let d = generate(&Era5Config::tiny());
        assert!(orthogonality_error(&d.true_modes) < 1e-12);
    }

    #[test]
    fn svd_recovers_planted_subspace() {
        let cfg = Era5Config { noise_level: 0.02, ..Era5Config::tiny() };
        let d = generate(&cfg);
        let f = psvd_linalg::svd(&d.snapshots);
        let leading = f.u.first_columns(cfg.n_modes);
        let angle = max_principal_angle(&leading, &d.true_modes);
        assert!(angle < 0.1, "planted subspace should be recovered, angle = {angle}");
    }

    #[test]
    fn amplitudes_order_singular_values() {
        let cfg = Era5Config { noise_level: 0.0, ..Era5Config::tiny() };
        let d = generate(&cfg);
        let f = psvd_linalg::svd(&d.snapshots);
        // With unit-RMS temporal coefficients, sigma_k ~ amplitude_k * sqrt(N).
        let scale = (cfg.snapshots as f64).sqrt();
        for k in 0..cfg.n_modes {
            let expected = d.amplitudes[k] * scale;
            let got = f.s[k];
            assert!(
                (got - expected).abs() / expected < 0.2,
                "sigma_{k}: got {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn noiseless_rank_equals_n_modes() {
        let cfg = Era5Config { noise_level: 0.0, ..Era5Config::tiny() };
        let d = generate(&cfg);
        let f = psvd_linalg::svd(&d.snapshots);
        assert!(f.s[cfg.n_modes] < 1e-9 * f.s[0], "tail should vanish: {:?}", &f.s[..6]);
    }

    #[test]
    fn generation_is_reproducible() {
        let cfg = Era5Config::tiny();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.snapshots, b.snapshots);
    }

    #[test]
    fn row_block_matches_full_generation() {
        let cfg = Era5Config { snapshots: 16, ..Era5Config::tiny() };
        let full = generate(&cfg);
        let block = generate_rows(&cfg, 50, 120);
        let expected = full.snapshots.row_block(50, 120);
        assert!(
            (&block - &expected).max_abs() < 1e-12,
            "row-block generation must match the slice of a full generation"
        );
    }

    #[test]
    fn noise_level_scales_residual() {
        let quiet = generate(&Era5Config { noise_level: 0.01, ..Era5Config::tiny() });
        let loud = generate(&Era5Config { noise_level: 0.5, ..Era5Config::tiny() });
        // Project out planted modes; the residual should grow with noise.
        let resid = |d: &Era5Data| {
            let proj = psvd_linalg::gemm::matmul(
                &d.true_modes,
                &psvd_linalg::gemm::matmul_tn(&d.true_modes, &d.snapshots),
            );
            (&d.snapshots - &proj).frobenius_norm()
        };
        assert!(resid(&loud) > 5.0 * resid(&quiet));
    }
}
