//! # psvd-data
//!
//! Workload generators and IO for the PyParSVD reproduction:
//!
//! - [`burgers`]: the paper's viscous Burgers analytical snapshot set;
//! - [`era5`]: a synthetic global-pressure dataset with *planted* coherent
//!   structures, substituting for the non-redistributable ERA5 record;
//! - [`stream`]: column-batch adapters feeding the streaming SVD;
//! - [`partition`]: balanced row-block domain decomposition;
//! - [`ncsim`]: a chunked binary container (v1 flat slab, v2 chunked +
//!   dtype + codec) with per-rank hyperslab reads, standing in for
//!   NetCDF4 parallel IO;
//! - [`prefetch`]: the background reader that overlaps out-of-core IO and
//!   decode with the SVD update.

pub mod burgers;
pub mod era5;
pub mod ncsim;
pub mod partition;
pub mod prefetch;
pub mod solver;
pub mod stream;
pub mod wake;

pub use burgers::{snapshot_matrix, BurgersConfig};
pub use era5::{generate as generate_era5, Era5Config, Era5Data};
pub use partition::{block_range, split_rows};
pub use prefetch::{IoStats, SnapshotPrefetcher};
pub use stream::{column_batches, BatchGenerator, MatrixBatchSource, SnapshotSource};
