//! `ncsim`: a minimal chunked scientific-data container with hyperslab
//! reads, standing in for the paper's NetCDF4 parallel-IO path.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  : 8 bytes  = b"NCSIM\x01\0\0"
//! name   : u32 length + UTF-8 bytes (variable name)
//! rows   : u64   (spatial degrees of freedom, M)
//! cols   : u64   (snapshots, N)
//! data   : rows * cols f64, row-major
//! ```
//!
//! Row-major storage makes a rank's row block a single contiguous extent,
//! so per-rank hyperslab reads ([`NcsimReader::read_rows`]) are one seek +
//! one sequential read — the access pattern parallel NetCDF performs for a
//! domain-decomposed field. Each rank opens its own reader (its own file
//! handle), exactly like MPI-IO with independent access.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};
use psvd_linalg::Matrix;

const MAGIC: &[u8; 8] = b"NCSIM\x01\0\0";

/// Parsed header of an ncsim file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NcsimHeader {
    /// Variable name.
    pub name: String,
    /// Spatial degrees of freedom (matrix rows).
    pub rows: usize,
    /// Snapshots (matrix columns).
    pub cols: usize,
}

impl NcsimHeader {
    fn encoded_len(&self) -> u64 {
        (8 + 4 + self.name.len() + 8 + 8) as u64
    }
}

/// Write a full matrix as an ncsim file.
pub fn write(path: &Path, name: &str, data: &Matrix) -> io::Result<()> {
    let mut w = NcsimWriter::create(path, name, data.rows(), data.cols())?;
    for i in 0..data.rows() {
        w.write_row(data.row(i))?;
    }
    w.finish()
}

/// Incremental row-wise writer, for producing files larger than memory.
pub struct NcsimWriter {
    out: BufWriter<File>,
    rows: usize,
    cols: usize,
    written_rows: usize,
}

impl NcsimWriter {
    /// Create the file and write the header; rows are appended with
    /// [`NcsimWriter::write_row`] and the file sealed by
    /// [`NcsimWriter::finish`].
    pub fn create(path: &Path, name: &str, rows: usize, cols: usize) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        let mut header = BytesMut::with_capacity(64 + name.len());
        header.put_slice(MAGIC);
        header.put_u32_le(name.len() as u32);
        header.put_slice(name.as_bytes());
        header.put_u64_le(rows as u64);
        header.put_u64_le(cols as u64);
        out.write_all(&header)?;
        Ok(Self { out, rows, cols, written_rows: 0 })
    }

    /// Append one row (must have exactly `cols` values).
    pub fn write_row(&mut self, row: &[f64]) -> io::Result<()> {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        assert!(self.written_rows < self.rows, "too many rows written");
        let mut buf = BytesMut::with_capacity(8 * row.len());
        for &v in row {
            buf.put_f64_le(v);
        }
        self.out.write_all(&buf)?;
        self.written_rows += 1;
        Ok(())
    }

    /// Flush and verify all declared rows were written.
    pub fn finish(mut self) -> io::Result<()> {
        if self.written_rows != self.rows {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("declared {} rows but wrote {}", self.rows, self.written_rows),
            ));
        }
        self.out.flush()
    }
}

/// Reader with hyperslab (row-range) access.
pub struct NcsimReader {
    file: BufReader<File>,
    header: NcsimHeader,
    data_offset: u64,
}

impl NcsimReader {
    /// Open and parse the header.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an ncsim file"));
        }
        let mut len4 = [0u8; 4];
        file.read_exact(&mut len4)?;
        let name_len = (&len4[..]).get_u32_le() as usize;
        if name_len > 4096 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "unreasonable name length"));
        }
        let mut name_bytes = vec![0u8; name_len];
        file.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "name not UTF-8"))?;
        let mut dims = [0u8; 16];
        file.read_exact(&mut dims)?;
        let mut cursor = &dims[..];
        let rows = cursor.get_u64_le() as usize;
        let cols = cursor.get_u64_le() as usize;
        // Reject dimension fields that cannot describe a real file: the
        // declared payload must fit in the file (guards both corruption and
        // the multiply overflows it would otherwise cause downstream).
        let payload = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "dimensions overflow"))?;
        let header = NcsimHeader { name, rows, cols };
        let data_offset = header.encoded_len();
        let actual = file.get_ref().metadata()?.len();
        if actual < data_offset + payload as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file too short for declared {rows}x{cols} payload ({actual} bytes)"),
            ));
        }
        Ok(Self { file, header, data_offset })
    }

    /// The parsed header.
    pub fn header(&self) -> &NcsimHeader {
        &self.header
    }

    /// Total rows (spatial DOF).
    pub fn rows(&self) -> usize {
        self.header.rows
    }

    /// Total columns (snapshots).
    pub fn cols(&self) -> usize {
        self.header.cols
    }

    /// Read rows `[r0, r1)` — one seek plus one contiguous read.
    pub fn read_rows(&mut self, r0: usize, r1: usize) -> io::Result<Matrix> {
        if r0 > r1 || r1 > self.header.rows {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "row range out of bounds"));
        }
        let cols = self.header.cols;
        let offset = self.data_offset + (r0 * cols * 8) as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        let count = (r1 - r0) * cols;
        let mut raw = vec![0u8; count * 8];
        self.file.read_exact(&mut raw)?;
        let mut data = Vec::with_capacity(count);
        let mut cursor = &raw[..];
        for _ in 0..count {
            data.push(cursor.get_f64_le());
        }
        Ok(Matrix::from_vec(r1 - r0, cols, data))
    }

    /// Read the whole variable.
    pub fn read_all(&mut self) -> io::Result<Matrix> {
        self.read_rows(0, self.header.rows)
    }

    /// Read the balanced row block owned by `rank` of `n_ranks` (the
    /// per-rank hyperslab of a distributed run).
    pub fn read_rank_block(&mut self, n_ranks: usize, rank: usize) -> io::Result<Matrix> {
        let (r0, r1) = crate::partition::block_range(self.header.rows, n_ranks, rank);
        self.read_rows(r0, r1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("psvd_ncsim_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_full() {
        let path = tmpfile("roundtrip");
        let a = Matrix::from_fn(13, 7, |i, j| (i as f64 * 0.5) - j as f64);
        write(&path, "pressure", &a).unwrap();
        let mut r = NcsimReader::open(&path).unwrap();
        assert_eq!(r.header().name, "pressure");
        assert_eq!(r.rows(), 13);
        assert_eq!(r.cols(), 7);
        assert_eq!(r.read_all().unwrap(), a);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hyperslab_matches_slice() {
        let path = tmpfile("hyperslab");
        let a = Matrix::from_fn(20, 5, |i, j| ((i * 5 + j) as f64).cos());
        write(&path, "v", &a).unwrap();
        let mut r = NcsimReader::open(&path).unwrap();
        assert_eq!(r.read_rows(3, 11).unwrap(), a.row_block(3, 11));
        // Second read after seek-back also works.
        assert_eq!(r.read_rows(0, 2).unwrap(), a.row_block(0, 2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rank_blocks_tile_file() {
        let path = tmpfile("rankblocks");
        let a = Matrix::from_fn(17, 4, |i, j| (i + j) as f64);
        write(&path, "v", &a).unwrap();
        let mut blocks = Vec::new();
        for rank in 0..4 {
            let mut r = NcsimReader::open(&path).unwrap();
            blocks.push(r.read_rank_block(4, rank).unwrap());
        }
        assert_eq!(Matrix::vstack_all(&blocks), a);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmpfile("badmagic");
        std::fs::write(&path, b"NOTNCSIMxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(NcsimReader::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let path = tmpfile("oob");
        write(&path, "v", &Matrix::zeros(3, 3)).unwrap();
        let mut r = NcsimReader::open(&path).unwrap();
        assert!(r.read_rows(2, 5).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn incremental_writer_must_complete() {
        let path = tmpfile("incomplete");
        let mut w = NcsimWriter::create(&path, "v", 3, 2).unwrap();
        w.write_row(&[1.0, 2.0]).unwrap();
        assert!(w.finish().is_err(), "finish must fail when rows are missing");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_name_ok() {
        let path = tmpfile("noname");
        write(&path, "", &Matrix::zeros(1, 1)).unwrap();
        let r = NcsimReader::open(&path).unwrap();
        assert_eq!(r.header().name, "");
        std::fs::remove_file(&path).unwrap();
    }
}
