//! The v2 column-segment codec: byte shuffle + run-length encoding.
//!
//! Floating-point fields from smooth solvers vary slowly, so consecutive
//! values of one column share their sign/exponent/high-mantissa bytes.
//! Interleaved in memory those repeats are 8 (or 4) bytes apart and no
//! byte-level RLE can see them; *shuffling* the segment — writing all
//! byte-0s, then all byte-1s, … — turns each byte plane into a long run
//! of near-constant bytes that a PackBits-style RLE collapses. Both
//! stages are dependency-free, exactly invertible (NaN payloads and
//! signed zeros included), and cheap enough to run on the prefetcher's
//! reader thread without becoming the bottleneck.
//!
//! A segment never grows on disk: [`encode_segment`] compares the encoded
//! length against raw and falls back to storing the segment verbatim,
//! recording the choice in a one-byte tag. The codec is therefore purely
//! an optimization — readers handle both tags regardless of what the
//! file-level codec field says the writer *attempted*.

use std::io;

/// Segment tag: payload is the raw little-endian element bytes.
pub const SEG_RAW: u8 = 0;
/// Segment tag: payload is RLE(shuffle(bytes)).
pub const SEG_SHUFFLE_RLE: u8 = 1;

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("ncsim codec: {msg}"))
}

/// Byte-shuffle `src` (a whole number of `elem`-byte values) into `out`:
/// `out[p*n + i] = src[i*elem + p]` for byte plane `p` of value `i`.
pub fn shuffle(src: &[u8], elem: usize, out: &mut Vec<u8>) {
    debug_assert_eq!(src.len() % elem, 0);
    let n = src.len() / elem;
    out.clear();
    out.resize(src.len(), 0);
    for p in 0..elem {
        let plane = &mut out[p * n..(p + 1) * n];
        for (i, dst) in plane.iter_mut().enumerate() {
            *dst = src[i * elem + p];
        }
    }
}

/// Exact inverse of [`shuffle`].
pub fn unshuffle(src: &[u8], elem: usize, out: &mut Vec<u8>) {
    debug_assert_eq!(src.len() % elem, 0);
    let n = src.len() / elem;
    out.clear();
    out.resize(src.len(), 0);
    for p in 0..elem {
        let plane = &src[p * n..(p + 1) * n];
        for (i, &b) in plane.iter().enumerate() {
            out[i * elem + p] = b;
        }
    }
}

/// Longest run the repeat token can express.
const MAX_RUN: usize = 130;
/// Longest literal stretch one control byte can cover.
const MAX_LIT: usize = 128;
/// Shortest run worth a repeat token (a 2-run costs the same as 2 literals).
const MIN_RUN: usize = 3;

fn flush_literals(src: &[u8], mut s: usize, e: usize, out: &mut Vec<u8>) {
    while s < e {
        let len = (e - s).min(MAX_LIT);
        out.push((len - 1) as u8);
        out.extend_from_slice(&src[s..s + len]);
        s += len;
    }
}

/// PackBits-style run-length encoding, appended to `out`.
///
/// Token stream: control byte `c < 0x80` → `c + 1` literal bytes follow;
/// `c >= 0x80` → the next byte repeats `c - 0x80 + 3` times (3..=130).
pub fn rle_encode(src: &[u8], out: &mut Vec<u8>) {
    let n = src.len();
    let mut i = 0;
    let mut lit_start = 0;
    while i < n {
        let b = src[i];
        let mut run = 1;
        while i + run < n && run < MAX_RUN && src[i + run] == b {
            run += 1;
        }
        if run >= MIN_RUN {
            flush_literals(src, lit_start, i, out);
            out.push(0x80 + (run - MIN_RUN) as u8);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(src, lit_start, n, out);
}

/// Decode an RLE stream into exactly `expected` bytes (cleared `out`).
/// Any overrun, underrun or truncated token is a typed corruption error.
pub fn rle_decode(src: &[u8], expected: usize, out: &mut Vec<u8>) -> io::Result<()> {
    out.clear();
    out.reserve(expected);
    let mut i = 0;
    while i < src.len() {
        let c = src[i];
        i += 1;
        if c < 0x80 {
            let len = c as usize + 1;
            if i + len > src.len() {
                return Err(corrupt("literal token overruns the segment"));
            }
            out.extend_from_slice(&src[i..i + len]);
            i += len;
        } else {
            if i >= src.len() {
                return Err(corrupt("repeat token missing its byte"));
            }
            let len = (c - 0x80) as usize + MIN_RUN;
            let b = src[i];
            i += 1;
            out.extend(std::iter::repeat_n(b, len));
        }
        if out.len() > expected {
            return Err(corrupt("decoded segment longer than declared"));
        }
    }
    if out.len() != expected {
        return Err(corrupt("decoded segment shorter than declared"));
    }
    Ok(())
}

/// Encode one column segment (`raw` = little-endian element bytes),
/// appending `[tag][payload]` to `out` and returning the appended length.
/// With `try_compress` the shuffle+RLE form is attempted and kept only if
/// strictly smaller than raw; `shuf`/`rle` are caller scratch, reused
/// across segments.
pub fn encode_segment(
    raw: &[u8],
    elem: usize,
    try_compress: bool,
    shuf: &mut Vec<u8>,
    rle: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> usize {
    if try_compress {
        shuffle(raw, elem, shuf);
        rle.clear();
        rle_encode(shuf, rle);
        if rle.len() < raw.len() {
            out.push(SEG_SHUFFLE_RLE);
            out.extend_from_slice(rle);
            return 1 + rle.len();
        }
    }
    out.push(SEG_RAW);
    out.extend_from_slice(raw);
    1 + raw.len()
}

/// Decode one `[tag][payload]` segment into exactly `expected` raw bytes
/// (cleared `out`); `shuf` is scratch for the shuffled plane.
pub fn decode_segment(
    enc: &[u8],
    elem: usize,
    expected: usize,
    shuf: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> io::Result<()> {
    let (&tag, payload) = enc.split_first().ok_or_else(|| corrupt("empty segment"))?;
    match tag {
        SEG_RAW => {
            if payload.len() != expected {
                return Err(corrupt("raw segment length mismatch"));
            }
            out.clear();
            out.extend_from_slice(payload);
            Ok(())
        }
        SEG_SHUFFLE_RLE => {
            rle_decode(payload, expected, shuf)?;
            unshuffle(shuf, elem, out);
            Ok(())
        }
        _ => Err(corrupt("unknown segment tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_rle(data: &[u8]) {
        let mut enc = Vec::new();
        rle_encode(data, &mut enc);
        let mut dec = Vec::new();
        rle_decode(&enc, data.len(), &mut dec).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn rle_round_trips_edge_patterns() {
        roundtrip_rle(&[]);
        roundtrip_rle(&[7]);
        roundtrip_rle(&[1, 2, 3, 4, 5]);
        roundtrip_rle(&[0; 1000]);
        roundtrip_rle(&[9; 130]);
        roundtrip_rle(&[9; 131]); // one byte past the max run token
        let mixed: Vec<u8> =
            (0..997u32).map(|i| if i % 7 < 4 { 42 } else { (i % 251) as u8 }).collect();
        roundtrip_rle(&mixed);
        let lits: Vec<u8> = (0..300u32).map(|i| (i % 256) as u8).collect();
        roundtrip_rle(&lits); // > 128 literals forces multiple literal tokens
    }

    #[test]
    fn rle_compresses_runs() {
        let mut enc = Vec::new();
        rle_encode(&[0u8; 4096], &mut enc);
        assert!(enc.len() < 80, "4096 zeros should collapse, got {} bytes", enc.len());
    }

    #[test]
    fn rle_rejects_corrupt_streams() {
        let mut out = Vec::new();
        // Literal token promising more bytes than present.
        assert!(rle_decode(&[5, 1, 2], 6, &mut out).is_err());
        // Repeat token with no byte.
        assert!(rle_decode(&[0x85], 8, &mut out).is_err());
        // Correct stream, wrong declared length.
        let mut enc = Vec::new();
        rle_encode(&[1, 2, 3, 4], &mut enc);
        assert!(rle_decode(&enc, 3, &mut out).is_err());
        assert!(rle_decode(&enc, 5, &mut out).is_err());
    }

    #[test]
    fn shuffle_is_invertible() {
        for elem in [4usize, 8] {
            let src: Vec<u8> = (0..(elem * 37) as u32).map(|i| (i * 31 % 256) as u8).collect();
            let mut shuf = Vec::new();
            let mut back = Vec::new();
            shuffle(&src, elem, &mut shuf);
            unshuffle(&shuf, elem, &mut back);
            assert_eq!(back, src);
        }
    }

    #[test]
    fn segment_round_trips_and_never_grows_much() {
        // Smooth data: compresses. Random-ish data: falls back to raw
        // (1 tag byte of overhead, no growth of the payload).
        let smooth: Vec<u8> = {
            let mut v = Vec::new();
            for i in 0..256 {
                (1000.0 + (i as f64) * 0.125).put_le_bytes_helper(&mut v);
            }
            v
        };
        let noisy: Vec<u8> =
            (0..2048u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        for (raw, should_shrink) in [(&smooth, true), (&noisy, false)] {
            let (mut shuf, mut rle, mut out, mut dec) =
                (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            let len = encode_segment(raw, 8, true, &mut shuf, &mut rle, &mut out);
            assert_eq!(len, out.len());
            assert!(len <= raw.len() + 1, "segment must never grow past tag overhead");
            if should_shrink {
                assert!(len < raw.len(), "smooth data should compress: {len} vs {}", raw.len());
            }
            decode_segment(&out, 8, raw.len(), &mut shuf, &mut dec).unwrap();
            assert_eq!(&dec, raw);
        }
    }

    #[test]
    fn segment_decoder_rejects_garbage() {
        let (mut shuf, mut out) = (Vec::new(), Vec::new());
        assert!(decode_segment(&[], 8, 8, &mut shuf, &mut out).is_err());
        assert!(decode_segment(&[99, 1, 2], 8, 8, &mut shuf, &mut out).is_err());
        assert!(decode_segment(&[SEG_RAW, 1, 2], 8, 8, &mut shuf, &mut out).is_err());
    }

    trait PutLe {
        fn put_le_bytes_helper(self, out: &mut Vec<u8>);
    }
    impl PutLe for f64 {
        fn put_le_bytes_helper(self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.to_le_bytes());
        }
    }
}
