//! `ncsim`: a minimal chunked scientific-data container with hyperslab
//! reads, standing in for the paper's NetCDF4 parallel-IO path.
//!
//! Two on-disk versions are supported. **v1** is the original flat slab
//! (always f64, row-major, no chunking):
//!
//! ```text
//! magic  : 8 bytes  = b"NCSIM\x01\0\0"
//! name   : u32 length + UTF-8 bytes (variable name)
//! rows   : u64   (spatial degrees of freedom, M)
//! cols   : u64   (snapshots, N)
//! data   : rows * cols f64, row-major
//! ```
//!
//! **v2** adds row-panel chunking, a dtype field (f64/f32) and an optional
//! dependency-free codec (byte-shuffle + RLE, see [`codec`]):
//!
//! ```text
//! magic      : 8 bytes  = b"NCSIM\x02\0\0"
//! name       : u32 length + UTF-8 bytes
//! rows       : u64
//! cols       : u64
//! dtype      : u8   (0 = f64, 1 = f32)
//! codec      : u8   (0 = raw, 1 = byte-shuffle + RLE)
//! chunk_rows : u64  (rows per panel; last panel may be shorter)
//! chunk_lens : ceil(rows / chunk_rows) x u64  (byte length of each chunk,
//!              written as zeros at create and patched by `finish`)
//! chunks     : concatenated row panels
//! ```
//!
//! Each chunk holds rows `[ci*chunk_rows, min(rows, (ci+1)*chunk_rows))`
//! stored **column-major within the panel**:
//!
//! ```text
//! seg_lens : cols x u32           (encoded byte length of each segment)
//! segments : cols segments, column order; segment = tag byte + payload
//! ```
//!
//! The column-segment layout is what makes v2 streamable: the driver
//! consumes *column batches* (B snapshots at a time), and columns
//! `[c0, c1)` of a chunk are one contiguous byte range — so a batch read
//! costs one seek + one sequential read per chunk regardless of how the
//! codec changed segment sizes, with no N/B read amplification. Row-major
//! v1 keeps the complementary property for per-rank *row* blocks
//! ([`NcsimReader::read_rows`]): one seek + one read, the access pattern
//! parallel NetCDF performs for a domain-decomposed field. Each rank opens
//! its own reader (its own file handle), exactly like MPI-IO with
//! independent access.
//!
//! All reader entry points return typed [`io::Error`]s — corrupt magic,
//! unknown versions, truncated files, out-of-range requests and dtype
//! mismatches are errors, never panics, so a bad file cannot take down a
//! long streaming run.

pub mod codec;

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::mem;
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};
use psvd_linalg::{Matrix, Scalar};

const MAGIC_V1: &[u8; 8] = b"NCSIM\x01\0\0";
const MAGIC_V2: &[u8; 8] = b"NCSIM\x02\0\0";

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn bad_input(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg.into())
}

/// Element type of an ncsim variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dtype {
    /// IEEE binary64.
    F64,
    /// IEEE binary32.
    F32,
}

impl Dtype {
    /// On-disk tag byte.
    pub fn tag(self) -> u8 {
        match self {
            Dtype::F64 => 0,
            Dtype::F32 => 1,
        }
    }

    /// Parse an on-disk tag byte.
    pub fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(Dtype::F64),
            1 => Some(Dtype::F32),
            _ => None,
        }
    }

    /// Element size in bytes.
    pub fn size(self) -> usize {
        match self {
            Dtype::F64 => 8,
            Dtype::F32 => 4,
        }
    }

    /// Stable lowercase label ("f64" / "f32").
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F64 => "f64",
            Dtype::F32 => "f32",
        }
    }

    /// The dtype corresponding to a [`Scalar`] element type.
    pub fn of<T: Scalar>() -> Self {
        match T::NAME {
            "f64" => Dtype::F64,
            "f32" => Dtype::F32,
            other => unreachable!("Scalar is sealed; unknown dtype {other}"),
        }
    }
}

/// Chunk-payload codec of a v2 file. Purely an optimization: decoders
/// accept both segment tags regardless of this field, which only records
/// what the writer *attempted* per segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Codec {
    /// Raw little-endian element bytes.
    Raw,
    /// Byte-shuffle + PackBits RLE per column segment, with automatic
    /// raw fallback for segments that do not shrink.
    ShuffleRle,
}

impl Codec {
    /// On-disk tag byte.
    pub fn tag(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::ShuffleRle => 1,
        }
    }

    /// Parse an on-disk tag byte.
    pub fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(Codec::Raw),
            1 => Some(Codec::ShuffleRle),
            _ => None,
        }
    }
}

/// The default row-panel height: `PSVD_CHUNK_ROWS` if set to a positive
/// integer, else 1024 (8 KiB/column at f64 — big enough to amortize seek
/// cost, small enough that a panel of a few thousand columns fits cache-
/// friendly in the prefetch ring).
pub fn default_chunk_rows() -> usize {
    std::env::var("PSVD_CHUNK_ROWS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(1024)
}

/// Writer-side options for the v2 format.
#[derive(Clone, Copy, Debug)]
pub struct V2Options {
    /// Rows per panel; `0` means [`default_chunk_rows`] (the writer also
    /// clamps to the matrix height so tiny files get one panel).
    pub chunk_rows: usize,
    /// Segment codec to attempt.
    pub codec: Codec,
}

impl Default for V2Options {
    fn default() -> Self {
        Self { chunk_rows: 0, codec: Codec::Raw }
    }
}

/// Parsed header of an ncsim file (either version).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NcsimHeader {
    /// Variable name.
    pub name: String,
    /// Spatial degrees of freedom (matrix rows).
    pub rows: usize,
    /// Snapshots (matrix columns).
    pub cols: usize,
    /// Container version (1 or 2).
    pub version: u8,
    /// Element type (always [`Dtype::F64`] for v1).
    pub dtype: Dtype,
    /// Codec the writer attempted (always [`Codec::Raw`] for v1).
    pub codec: Codec,
    /// Rows per chunk panel; `0` for the unchunked v1 slab.
    pub chunk_rows: usize,
}

impl NcsimHeader {
    /// Payload bytes the header declares, with overflow checked.
    fn payload_bytes(&self) -> io::Result<u64> {
        self.rows
            .checked_mul(self.cols)
            .and_then(|n| n.checked_mul(self.dtype.size()))
            .map(|n| n as u64)
            .ok_or_else(|| bad_data("dimensions overflow"))
    }
}

// ---------------------------------------------------------------------------
// v1 writer (+ satellite fixes: bulk slab writes, checked size guard)
// ---------------------------------------------------------------------------

/// Write a full matrix as an ncsim v1 file (always f64 — the
/// backward-compatible format every pre-v2 tool reads).
pub fn write(path: &Path, name: &str, data: &Matrix) -> io::Result<()> {
    let mut w = NcsimWriter::create(path, name, data.rows(), data.cols())?;
    w.write_rows(data.as_slice())?;
    w.finish()
}

/// Write a full matrix as an ncsim v2 file at the element type of the
/// matrix, with the given chunking/codec options.
pub fn write_v2<T: Scalar>(
    path: &Path,
    name: &str,
    data: &Matrix<T>,
    opts: V2Options,
) -> io::Result<()> {
    let mut w = NcsimV2Writer::<T>::create(path, name, data.rows(), data.cols(), opts)?;
    w.write_rows(data.as_slice())?;
    w.finish()
}

/// Encoded slab size per `write_all` call: large enough to amortize the
/// syscall, small enough to stay resident in L2.
const WRITE_SLAB_BYTES: usize = 1 << 20;

/// Incremental row-wise v1 writer, for producing files larger than memory.
pub struct NcsimWriter {
    out: BufWriter<File>,
    rows: usize,
    cols: usize,
    written_rows: usize,
    slab: Vec<u8>,
}

impl NcsimWriter {
    /// Create the file and write the header; rows are appended with
    /// [`NcsimWriter::write_row`] / [`NcsimWriter::write_rows`] and the
    /// file sealed by [`NcsimWriter::finish`].
    pub fn create(path: &Path, name: &str, rows: usize, cols: usize) -> io::Result<Self> {
        // Refuse dimensions whose payload size cannot be represented —
        // every downstream offset computation relies on this product.
        rows.checked_mul(cols)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| bad_input(format!("{rows} x {cols} f64 payload overflows")))?;
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        let mut header = BytesMut::with_capacity(64 + name.len());
        header.put_slice(MAGIC_V1);
        header.put_u32_le(name.len() as u32);
        header.put_slice(name.as_bytes());
        header.put_u64_le(rows as u64);
        header.put_u64_le(cols as u64);
        out.write_all(&header)?;
        Ok(Self { out, rows, cols, written_rows: 0, slab: Vec::new() })
    }

    /// Append one row (must have exactly `cols` values).
    pub fn write_row(&mut self, row: &[f64]) -> io::Result<()> {
        if row.len() != self.cols {
            return Err(bad_input(format!(
                "row has {} values, file declares {} columns",
                row.len(),
                self.cols
            )));
        }
        if self.written_rows >= self.rows {
            return Err(bad_input(format!(
                "file declares {} rows, all already written",
                self.rows
            )));
        }
        self.encode_slab(row)?;
        self.written_rows += 1;
        Ok(())
    }

    /// Append a row-major slab of whole rows in one call (`data.len()`
    /// must be a multiple of `cols`). This is the bulk path: values are
    /// encoded into ~1 MiB slabs and handed to the OS in large writes
    /// instead of one syscall-sized buffer per row.
    pub fn write_rows(&mut self, data: &[f64]) -> io::Result<()> {
        if self.cols == 0 {
            return if data.is_empty() {
                Ok(())
            } else {
                Err(bad_input("write_rows on a zero-column file expects no data"))
            };
        }
        if !data.len().is_multiple_of(self.cols) {
            return Err(bad_input(format!(
                "slab of {} values is not a whole number of {}-column rows",
                data.len(),
                self.cols
            )));
        }
        let nrows = data.len() / self.cols;
        if self.written_rows + nrows > self.rows {
            return Err(bad_input(format!(
                "slab of {nrows} rows exceeds the {} declared (already wrote {})",
                self.rows, self.written_rows
            )));
        }
        self.encode_slab(data)?;
        self.written_rows += nrows;
        Ok(())
    }

    fn encode_slab(&mut self, values: &[f64]) -> io::Result<()> {
        for block in values.chunks(WRITE_SLAB_BYTES / 8) {
            self.slab.clear();
            self.slab.reserve(block.len() * 8);
            for &v in block {
                self.slab.extend_from_slice(&v.to_le_bytes());
            }
            self.out.write_all(&self.slab)?;
        }
        Ok(())
    }

    /// Flush and verify all declared rows were written.
    pub fn finish(mut self) -> io::Result<()> {
        if self.written_rows != self.rows {
            return Err(bad_data(format!(
                "declared {} rows but wrote {}",
                self.rows, self.written_rows
            )));
        }
        self.out.flush()
    }
}

// ---------------------------------------------------------------------------
// v2 writer
// ---------------------------------------------------------------------------

/// Incremental row-wise v2 writer: rows are buffered into panels of
/// `chunk_rows`, each panel transposed to column segments, encoded, and
/// written with its seg-length table; `finish` seeks back and patches the
/// chunk-length table written as zeros at create time.
pub struct NcsimV2Writer<T: Scalar> {
    out: BufWriter<File>,
    rows: usize,
    cols: usize,
    chunk_rows: usize,
    codec: Codec,
    table_pos: u64,
    n_chunks: usize,
    chunk_lens: Vec<u64>,
    pending: Vec<T>,
    pending_rows: usize,
    written_rows: usize,
    // Scratch reused across chunks so steady-state writes allocate nothing.
    colbuf: Vec<u8>,
    shuf: Vec<u8>,
    rle: Vec<u8>,
    body: Vec<u8>,
    seg_table: Vec<u8>,
}

impl<T: Scalar> NcsimV2Writer<T> {
    /// Create the file and write the v2 header plus a zeroed chunk-length
    /// table (patched by [`NcsimV2Writer::finish`]).
    pub fn create(
        path: &Path,
        name: &str,
        rows: usize,
        cols: usize,
        opts: V2Options,
    ) -> io::Result<Self> {
        let elem = mem::size_of::<T>();
        rows.checked_mul(cols)
            .and_then(|n| n.checked_mul(elem))
            .ok_or_else(|| bad_input(format!("{rows} x {cols} {} payload overflows", T::NAME)))?;
        let chunk_rows = if opts.chunk_rows == 0 { default_chunk_rows() } else { opts.chunk_rows };
        // One panel suffices for short matrices; clamping also keeps the
        // per-segment u32 length guard tight.
        let chunk_rows = chunk_rows.min(rows.max(1));
        // A raw segment is chunk_rows * elem bytes + 1 tag byte and the
        // codec never grows a segment past that, so this guard makes every
        // seg_lens entry representable.
        if chunk_rows.checked_mul(elem).is_none_or(|b| b + 1 > u32::MAX as usize) {
            return Err(bad_input(format!("chunk_rows {chunk_rows} segment exceeds u32 bytes")));
        }
        cols.checked_mul(4).ok_or_else(|| bad_input("seg table size overflows"))?;
        let n_chunks = if rows == 0 { 0 } else { rows.div_ceil(chunk_rows) };

        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        let mut header = BytesMut::with_capacity(64 + name.len());
        header.put_slice(MAGIC_V2);
        header.put_u32_le(name.len() as u32);
        header.put_slice(name.as_bytes());
        header.put_u64_le(rows as u64);
        header.put_u64_le(cols as u64);
        header.put_u8(Dtype::of::<T>().tag());
        header.put_u8(opts.codec.tag());
        header.put_u64_le(chunk_rows as u64);
        let table_pos = header.len() as u64;
        out.write_all(&header)?;
        out.write_all(&vec![0u8; n_chunks * 8])?;
        Ok(Self {
            out,
            rows,
            cols,
            chunk_rows,
            codec: opts.codec,
            table_pos,
            n_chunks,
            chunk_lens: Vec::with_capacity(n_chunks),
            pending: Vec::with_capacity(chunk_rows.saturating_mul(cols).min(1 << 24)),
            pending_rows: 0,
            written_rows: 0,
            colbuf: Vec::new(),
            shuf: Vec::new(),
            rle: Vec::new(),
            body: Vec::new(),
            seg_table: Vec::new(),
        })
    }

    /// Append one row (must have exactly `cols` values).
    pub fn write_row(&mut self, row: &[T]) -> io::Result<()> {
        if row.len() != self.cols {
            return Err(bad_input(format!(
                "row has {} values, file declares {} columns",
                row.len(),
                self.cols
            )));
        }
        if self.written_rows + self.pending_rows >= self.rows {
            return Err(bad_input(format!(
                "file declares {} rows, all already written",
                self.rows
            )));
        }
        self.pending.extend_from_slice(row);
        self.pending_rows += 1;
        if self.pending_rows == self.chunk_rows {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Append a row-major slab of whole rows (`data.len()` must be a
    /// multiple of `cols`), flushing completed panels as it goes.
    pub fn write_rows(&mut self, data: &[T]) -> io::Result<()> {
        if self.cols == 0 {
            return if data.is_empty() {
                Ok(())
            } else {
                Err(bad_input("write_rows on a zero-column file expects no data"))
            };
        }
        if !data.len().is_multiple_of(self.cols) {
            return Err(bad_input(format!(
                "slab of {} values is not a whole number of {}-column rows",
                data.len(),
                self.cols
            )));
        }
        let nrows = data.len() / self.cols;
        if self.written_rows + self.pending_rows + nrows > self.rows {
            return Err(bad_input(format!(
                "slab of {nrows} rows exceeds the {} declared (already have {})",
                self.rows,
                self.written_rows + self.pending_rows
            )));
        }
        let mut off = 0;
        let mut left = nrows;
        while left > 0 {
            let take = (self.chunk_rows - self.pending_rows).min(left);
            self.pending.extend_from_slice(&data[off..off + take * self.cols]);
            self.pending_rows += take;
            off += take * self.cols;
            left -= take;
            if self.pending_rows == self.chunk_rows {
                self.flush_chunk()?;
            }
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        let nrows = self.pending_rows;
        debug_assert!(nrows > 0);
        let elem = mem::size_of::<T>();
        let try_compress = self.codec == Codec::ShuffleRle;
        self.body.clear();
        self.seg_table.clear();
        for j in 0..self.cols {
            self.colbuf.clear();
            for i in 0..nrows {
                self.pending[i * self.cols + j].put_le_bytes(&mut self.colbuf);
            }
            let len = codec::encode_segment(
                &self.colbuf,
                elem,
                try_compress,
                &mut self.shuf,
                &mut self.rle,
                &mut self.body,
            );
            debug_assert!(len <= nrows * elem + 1);
            self.seg_table.extend_from_slice(&(len as u32).to_le_bytes());
        }
        self.out.write_all(&self.seg_table)?;
        self.out.write_all(&self.body)?;
        self.chunk_lens.push((self.seg_table.len() + self.body.len()) as u64);
        self.written_rows += nrows;
        self.pending.clear();
        self.pending_rows = 0;
        Ok(())
    }

    /// Flush the final partial panel, verify all declared rows were
    /// written, and patch the chunk-length table.
    pub fn finish(mut self) -> io::Result<()> {
        if self.pending_rows > 0 {
            self.flush_chunk()?;
        }
        if self.written_rows != self.rows {
            return Err(bad_data(format!(
                "declared {} rows but wrote {}",
                self.rows, self.written_rows
            )));
        }
        debug_assert_eq!(self.chunk_lens.len(), self.n_chunks);
        self.out.seek(SeekFrom::Start(self.table_pos))?;
        let mut table = BytesMut::with_capacity(self.chunk_lens.len() * 8);
        for &len in &self.chunk_lens {
            table.put_u64_le(len);
        }
        self.out.write_all(&table)?;
        self.out.flush()
    }
}

// ---------------------------------------------------------------------------
// reader
// ---------------------------------------------------------------------------

enum Layout {
    V1 {
        data_offset: u64,
    },
    V2 {
        /// Absolute file offset of each chunk's seg-length table.
        chunk_offsets: Vec<u64>,
        chunk_lens: Vec<u64>,
        /// Lazily-built per-chunk cumulative segment offsets
        /// (`cum[j]` = byte offset of column `j`'s segment within the
        /// chunk body; `cum[cols]` = body length). Cached after first
        /// touch so steady-state batch reads re-read no metadata.
        seg_tables: Vec<Option<Vec<u64>>>,
    },
}

/// Reader with hyperslab (row-range and column-range) access for both
/// container versions.
pub struct NcsimReader {
    file: BufReader<File>,
    header: NcsimHeader,
    layout: Layout,
    bytes_read: u64,
    chunks_touched: u64,
    // Scratch reused across reads (taken/restored around inner calls).
    chunkbuf: Vec<u8>,
    colraw: Vec<u8>,
    shuf: Vec<u8>,
}

impl NcsimReader {
    /// Open and parse the header of a v1 or v2 file. Unknown `NCSIM`
    /// versions and non-ncsim files produce typed `InvalidData` errors.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = BufReader::new(File::open(path)?);
        let file_len = file.get_ref().metadata()?.len();
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic).map_err(|_| bad_data("file too short for ncsim magic"))?;
        if &magic[..5] != b"NCSIM" || magic[6] != 0 || magic[7] != 0 {
            return Err(bad_data("not an ncsim file"));
        }
        let version = magic[5];
        if version != 1 && version != 2 {
            return Err(bad_data(format!(
                "unsupported ncsim version {version} (this build reads v1 and v2)"
            )));
        }

        let mut len4 = [0u8; 4];
        file.read_exact(&mut len4).map_err(|_| bad_data("truncated header"))?;
        let name_len = (&len4[..]).get_u32_le() as usize;
        if name_len > 4096 {
            return Err(bad_data("unreasonable name length"));
        }
        let mut name_bytes = vec![0u8; name_len];
        file.read_exact(&mut name_bytes).map_err(|_| bad_data("truncated header"))?;
        let name = String::from_utf8(name_bytes).map_err(|_| bad_data("name not UTF-8"))?;
        let mut dims = [0u8; 16];
        file.read_exact(&mut dims).map_err(|_| bad_data("truncated header"))?;
        let mut cursor = &dims[..];
        let rows = cursor.get_u64_le() as usize;
        let cols = cursor.get_u64_le() as usize;

        if version == 1 {
            let header = NcsimHeader {
                name,
                rows,
                cols,
                version,
                dtype: Dtype::F64,
                codec: Codec::Raw,
                chunk_rows: 0,
            };
            // Reject dimension fields that cannot describe a real file: the
            // declared payload must fit in the file (guards both corruption
            // and the multiply overflows it would otherwise cause below).
            let payload = header.payload_bytes()?;
            let data_offset = (8 + 4 + header.name.len() + 8 + 8) as u64;
            if file_len < data_offset + payload {
                return Err(bad_data(format!(
                    "file too short for declared {rows}x{cols} payload ({file_len} bytes)"
                )));
            }
            return Ok(Self {
                file,
                header,
                layout: Layout::V1 { data_offset },
                bytes_read: 0,
                chunks_touched: 0,
                chunkbuf: Vec::new(),
                colraw: Vec::new(),
                shuf: Vec::new(),
            });
        }

        // --- v2 ---
        let mut tail = [0u8; 10];
        file.read_exact(&mut tail).map_err(|_| bad_data("truncated v2 header"))?;
        let mut cursor = &tail[..];
        let dtype_tag = cursor.get_u8();
        let codec_tag = cursor.get_u8();
        let chunk_rows = cursor.get_u64_le() as usize;
        let dtype = Dtype::from_tag(dtype_tag)
            .ok_or_else(|| bad_data(format!("unknown dtype tag {dtype_tag}")))?;
        let file_codec = Codec::from_tag(codec_tag)
            .ok_or_else(|| bad_data(format!("unknown codec tag {codec_tag}")))?;
        if rows > 0 && chunk_rows == 0 {
            return Err(bad_data("zero chunk_rows with nonzero rows"));
        }
        let header =
            NcsimHeader { name, rows, cols, version, dtype, codec: file_codec, chunk_rows };
        header.payload_bytes()?; // overflow guard on declared dimensions
        let n_chunks = if rows == 0 { 0 } else { rows.div_ceil(chunk_rows) };
        let table_bytes =
            n_chunks.checked_mul(8).ok_or_else(|| bad_data("chunk table size overflows"))?;
        let mut table = vec![0u8; table_bytes];
        file.read_exact(&mut table).map_err(|_| bad_data("truncated chunk table"))?;
        let mut cursor = &table[..];
        let seg_table_bytes =
            cols.checked_mul(4).ok_or_else(|| bad_data("seg table overflows"))? as u64;
        let data_start =
            (8 + 4 + header.name.len() + 8 + 8 + 1 + 1 + 8) as u64 + table_bytes as u64;
        let mut chunk_offsets = Vec::with_capacity(n_chunks);
        let mut chunk_lens = Vec::with_capacity(n_chunks);
        let mut off = data_start;
        for ci in 0..n_chunks {
            let len = cursor.get_u64_le();
            // Every segment carries at least a tag byte, so a chunk can
            // never be shorter than its seg table plus one byte per column.
            if len < seg_table_bytes + cols as u64 {
                return Err(bad_data(format!("chunk {ci} shorter than its segment table")));
            }
            chunk_offsets.push(off);
            off = off.checked_add(len).ok_or_else(|| bad_data("chunk offsets overflow"))?;
            chunk_lens.push(len);
        }
        if off > file_len {
            return Err(bad_data(format!(
                "file too short for declared chunks (need {off} bytes, have {file_len})"
            )));
        }
        Ok(Self {
            file,
            header,
            layout: Layout::V2 { chunk_offsets, chunk_lens, seg_tables: vec![None; n_chunks] },
            bytes_read: 0,
            chunks_touched: 0,
            chunkbuf: Vec::new(),
            colraw: Vec::new(),
            shuf: Vec::new(),
        })
    }

    /// The parsed header.
    pub fn header(&self) -> &NcsimHeader {
        &self.header
    }

    /// Total rows (spatial DOF).
    pub fn rows(&self) -> usize {
        self.header.rows
    }

    /// Total columns (snapshots).
    pub fn cols(&self) -> usize {
        self.header.cols
    }

    /// Payload bytes read so far (data + chunk metadata, not the header).
    pub fn io_bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Chunks touched by reads so far (v1 slab reads count as one chunk).
    pub fn io_chunks_touched(&self) -> u64 {
        self.chunks_touched
    }

    fn require_dtype<T: Scalar>(&self) -> io::Result<()> {
        if self.header.dtype != Dtype::of::<T>() {
            return Err(bad_input(format!(
                "file holds {} data, requested {}",
                self.header.dtype.name(),
                T::NAME
            )));
        }
        Ok(())
    }

    /// Read the hyperslab rows `[r0, r1)` x cols `[c0, c1)` into `dst`,
    /// reshaping it to `(r1-r0) x (c1-c0)` without reallocating when
    /// capacity suffices — the zero-transient-allocation entry point the
    /// prefetcher and drivers use. `T` must match the file dtype.
    pub fn read_block_into<T: Scalar>(
        &mut self,
        r0: usize,
        r1: usize,
        c0: usize,
        c1: usize,
        dst: &mut Matrix<T>,
    ) -> io::Result<()> {
        if r0 > r1 || r1 > self.header.rows {
            return Err(bad_input(format!(
                "row range {r0}..{r1} out of bounds for {} rows",
                self.header.rows
            )));
        }
        if c0 > c1 || c1 > self.header.cols {
            return Err(bad_input(format!(
                "col range {c0}..{c1} out of bounds for {} cols",
                self.header.cols
            )));
        }
        self.require_dtype::<T>()?;
        dst.reshape_for_overwrite(r1 - r0, c1 - c0);
        if r1 == r0 || c1 == c0 {
            return Ok(());
        }
        // Scratch is taken out of `self` so the inner helpers can borrow
        // the remaining fields disjointly, then restored (even on error).
        let mut chunkbuf = mem::take(&mut self.chunkbuf);
        let mut colraw = mem::take(&mut self.colraw);
        let mut shuf = mem::take(&mut self.shuf);
        let res = match &self.layout {
            Layout::V1 { .. } => self.v1_block_into(r0, r1, c0, c1, dst, &mut chunkbuf),
            Layout::V2 { .. } => {
                self.v2_block_into(r0, r1, c0, c1, dst, &mut chunkbuf, &mut colraw, &mut shuf)
            }
        };
        self.chunkbuf = chunkbuf;
        self.colraw = colraw;
        self.shuf = shuf;
        res
    }

    /// Read rows `[r0, r1)` (all columns) into `dst`.
    pub fn read_rows_into<T: Scalar>(
        &mut self,
        r0: usize,
        r1: usize,
        dst: &mut Matrix<T>,
    ) -> io::Result<()> {
        let cols = self.header.cols;
        self.read_block_into(r0, r1, 0, cols, dst)
    }

    /// Read columns `[c0, c1)` (all rows) into `dst` — the column-batch
    /// access pattern of the streaming drivers.
    pub fn read_cols_into<T: Scalar>(
        &mut self,
        c0: usize,
        c1: usize,
        dst: &mut Matrix<T>,
    ) -> io::Result<()> {
        let rows = self.header.rows;
        self.read_block_into(0, rows, c0, c1, dst)
    }

    /// Read rows `[r0, r1)` as a fresh matrix at the file's element type.
    pub fn read_rows_as<T: Scalar>(&mut self, r0: usize, r1: usize) -> io::Result<Matrix<T>> {
        let mut m = Matrix::zeros(0, 0);
        self.read_rows_into(r0, r1, &mut m)?;
        Ok(m)
    }

    /// Read rows `[r0, r1)` — on a v1 slab this is one seek plus one
    /// contiguous read. (f64 back-compat entry point; use
    /// [`NcsimReader::read_rows_as`] for f32 files.)
    pub fn read_rows(&mut self, r0: usize, r1: usize) -> io::Result<Matrix> {
        self.read_rows_as::<f64>(r0, r1)
    }

    /// Read the whole variable.
    pub fn read_all(&mut self) -> io::Result<Matrix> {
        self.read_rows(0, self.header.rows)
    }

    /// Read the balanced row block owned by `rank` of `n_ranks` (the
    /// per-rank hyperslab of a distributed run).
    pub fn read_rank_block(&mut self, n_ranks: usize, rank: usize) -> io::Result<Matrix> {
        let (r0, r1) = crate::partition::block_range(self.header.rows, n_ranks, rank);
        self.read_rows(r0, r1)
    }

    fn v1_block_into<T: Scalar>(
        &mut self,
        r0: usize,
        r1: usize,
        c0: usize,
        c1: usize,
        dst: &mut Matrix<T>,
        chunkbuf: &mut Vec<u8>,
    ) -> io::Result<()> {
        let Layout::V1 { data_offset } = self.layout else { unreachable!() };
        let elem = mem::size_of::<T>();
        let cols = self.header.cols;
        let seek_to = |r: usize, c: usize| -> io::Result<u64> {
            r.checked_mul(cols)
                .and_then(|x| x.checked_add(c))
                .and_then(|x| x.checked_mul(elem))
                .map(|x| data_offset + x as u64)
                .ok_or_else(|| bad_data("offset overflow"))
        };
        if c0 == 0 && c1 == cols {
            // Full-width: one contiguous read straight into dst.
            self.file.seek(SeekFrom::Start(seek_to(r0, 0)?))?;
            let nbytes = (r1 - r0) * cols * elem;
            chunkbuf.clear();
            chunkbuf.resize(nbytes, 0);
            self.file
                .read_exact(chunkbuf)
                .map_err(|_| bad_data("file truncated inside payload"))?;
            self.bytes_read += nbytes as u64;
            self.chunks_touched += 1;
            for (out, src) in dst.as_mut_slice().iter_mut().zip(chunkbuf.chunks_exact(elem)) {
                *out = T::get_le_bytes(src);
            }
        } else {
            // Sub-width: one read per row (v1 has no column chunking; the
            // v2 layout exists precisely to make this pattern cheap).
            let width = (c1 - c0) * elem;
            chunkbuf.clear();
            chunkbuf.resize(width, 0);
            for r in r0..r1 {
                self.file.seek(SeekFrom::Start(seek_to(r, c0)?))?;
                self.file
                    .read_exact(chunkbuf)
                    .map_err(|_| bad_data("file truncated inside payload"))?;
                for (out, src) in dst.row_mut(r - r0).iter_mut().zip(chunkbuf.chunks_exact(elem)) {
                    *out = T::get_le_bytes(src);
                }
            }
            self.bytes_read += ((r1 - r0) * width) as u64;
            self.chunks_touched += 1;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn v2_block_into<T: Scalar>(
        &mut self,
        r0: usize,
        r1: usize,
        c0: usize,
        c1: usize,
        dst: &mut Matrix<T>,
        chunkbuf: &mut Vec<u8>,
        colraw: &mut Vec<u8>,
        shuf: &mut Vec<u8>,
    ) -> io::Result<()> {
        let Self { file, layout, header, bytes_read, chunks_touched, .. } = self;
        let Layout::V2 { chunk_offsets, chunk_lens, seg_tables } = layout else { unreachable!() };
        let elem = mem::size_of::<T>();
        let cols = header.cols;
        let chunk_rows = header.chunk_rows;
        let seg_table_bytes = (cols * 4) as u64;
        let ci0 = r0 / chunk_rows;
        let ci1 = (r1 - 1) / chunk_rows;
        for ci in ci0..=ci1 {
            if seg_tables[ci].is_none() {
                let cum = load_seg_table(file, chunk_offsets[ci], chunk_lens[ci], cols, ci)?;
                *bytes_read += seg_table_bytes;
                seg_tables[ci] = Some(cum);
            }
            let cum = seg_tables[ci].as_ref().unwrap();
            // Columns [c0, c1) of this chunk are contiguous on disk: one
            // seek + one read regardless of per-segment encoded sizes.
            let start = chunk_offsets[ci] + seg_table_bytes + cum[c0];
            let nbytes = (cum[c1] - cum[c0]) as usize;
            chunkbuf.clear();
            chunkbuf.resize(nbytes, 0);
            file.seek(SeekFrom::Start(start))?;
            file.read_exact(chunkbuf)
                .map_err(|_| bad_data(format!("file truncated inside chunk {ci}")))?;
            *bytes_read += nbytes as u64;
            *chunks_touched += 1;

            let cr0 = ci * chunk_rows;
            let cr1 = ((ci + 1) * chunk_rows).min(header.rows);
            let nrows = cr1 - cr0;
            let rr0 = r0.max(cr0);
            let rr1 = r1.min(cr1);
            for (jj, j) in (c0..c1).enumerate() {
                let s = (cum[j] - cum[c0]) as usize;
                let e = (cum[j + 1] - cum[c0]) as usize;
                codec::decode_segment(&chunkbuf[s..e], elem, nrows * elem, shuf, colraw)?;
                for r in rr0..rr1 {
                    dst.row_mut(r - r0)[jj] = T::get_le_bytes(&colraw[(r - cr0) * elem..]);
                }
            }
        }
        Ok(())
    }
}

/// Read and validate one chunk's segment-length table, returning the
/// cumulative offsets (`cum[j]` = start of column `j`'s segment in the
/// chunk body, `cum[cols]` = body length).
fn load_seg_table(
    file: &mut BufReader<File>,
    chunk_offset: u64,
    chunk_len: u64,
    cols: usize,
    ci: usize,
) -> io::Result<Vec<u64>> {
    file.seek(SeekFrom::Start(chunk_offset))?;
    let mut raw = vec![0u8; cols * 4];
    file.read_exact(&mut raw)
        .map_err(|_| bad_data(format!("file truncated in chunk {ci} segment table")))?;
    let mut cum = Vec::with_capacity(cols + 1);
    cum.push(0u64);
    let mut cursor = &raw[..];
    let mut total = 0u64;
    for j in 0..cols {
        let len = cursor.get_u32_le() as u64;
        if len == 0 {
            return Err(bad_data(format!("chunk {ci} column {j} has a zero-length segment")));
        }
        total = total
            .checked_add(len)
            .ok_or_else(|| bad_data(format!("chunk {ci} segment lengths overflow")))?;
        cum.push(total);
    }
    let body_len = chunk_len
        .checked_sub((cols * 4) as u64)
        .ok_or_else(|| bad_data(format!("chunk {ci} shorter than its segment table")))?;
    if total != body_len {
        return Err(bad_data(format!(
            "chunk {ci} segment lengths sum to {total}, chunk body is {body_len}"
        )));
    }
    Ok(cum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("psvd_ncsim_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_full() {
        let path = tmpfile("roundtrip");
        let a = Matrix::from_fn(13, 7, |i, j| (i as f64 * 0.5) - j as f64);
        write(&path, "pressure", &a).unwrap();
        let mut r = NcsimReader::open(&path).unwrap();
        assert_eq!(r.header().name, "pressure");
        assert_eq!(r.header().version, 1);
        assert_eq!(r.header().dtype, Dtype::F64);
        assert_eq!(r.rows(), 13);
        assert_eq!(r.cols(), 7);
        assert_eq!(r.read_all().unwrap(), a);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hyperslab_matches_slice() {
        let path = tmpfile("hyperslab");
        let a = Matrix::from_fn(20, 5, |i, j| ((i * 5 + j) as f64).cos());
        write(&path, "v", &a).unwrap();
        let mut r = NcsimReader::open(&path).unwrap();
        assert_eq!(r.read_rows(3, 11).unwrap(), a.row_block(3, 11));
        // Second read after seek-back also works.
        assert_eq!(r.read_rows(0, 2).unwrap(), a.row_block(0, 2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rank_blocks_tile_file() {
        let path = tmpfile("rankblocks");
        let a = Matrix::from_fn(17, 4, |i, j| (i + j) as f64);
        write(&path, "v", &a).unwrap();
        let mut blocks = Vec::new();
        for rank in 0..4 {
            let mut r = NcsimReader::open(&path).unwrap();
            blocks.push(r.read_rank_block(4, rank).unwrap());
        }
        assert_eq!(Matrix::vstack_all(&blocks), a);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmpfile("badmagic");
        std::fs::write(&path, b"NOTNCSIMxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(NcsimReader::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_version_rejected_gracefully() {
        let path = tmpfile("badversion");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"NCSIM\x03\0\0");
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &bytes).unwrap();
        let err = match NcsimReader::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("unknown version must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"), "got: {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let path = tmpfile("oob");
        write(&path, "v", &Matrix::zeros(3, 3)).unwrap();
        let mut r = NcsimReader::open(&path).unwrap();
        assert!(r.read_rows(2, 5).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn incremental_writer_must_complete() {
        let path = tmpfile("incomplete");
        let mut w = NcsimWriter::create(&path, "v", 3, 2).unwrap();
        w.write_row(&[1.0, 2.0]).unwrap();
        assert!(w.finish().is_err(), "finish must fail when rows are missing");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_name_ok() {
        let path = tmpfile("noname");
        write(&path, "", &Matrix::zeros(1, 1)).unwrap();
        let r = NcsimReader::open(&path).unwrap();
        assert_eq!(r.header().name, "");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_overflowing_dimensions() {
        let path = tmpfile("overflow");
        assert!(NcsimWriter::create(&path, "v", usize::MAX / 4, usize::MAX / 4).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_slab_rejects_ragged_and_excess_rows() {
        let path = tmpfile("slabguards");
        let mut w = NcsimWriter::create(&path, "v", 2, 3).unwrap();
        assert!(w.write_rows(&[1.0; 4]).is_err(), "4 values is not whole 3-col rows");
        assert!(w.write_rows(&[1.0; 9]).is_err(), "3 rows exceeds the 2 declared");
        w.write_rows(&[1.0; 6]).unwrap();
        w.finish().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    fn v2_roundtrip_case<T: Scalar>(tag: &str, chunk_rows: usize, codec: Codec) {
        let path = tmpfile(&format!("v2rt_{tag}_{chunk_rows}_{:?}", codec.tag()));
        let a: Matrix<T> =
            Matrix::from_fn(23, 6, |i, j| T::from_f64(((i * 6 + j) as f64 * 0.37).sin()));
        write_v2(&path, "field", &a, V2Options { chunk_rows, codec }).unwrap();
        let mut r = NcsimReader::open(&path).unwrap();
        assert_eq!(r.header().version, 2);
        assert_eq!(r.header().dtype, Dtype::of::<T>());
        let back: Matrix<T> = r.read_rows_as(0, 23).unwrap();
        assert_eq!(back, a);
        // Hyperslabs in both dimensions match in-core slicing.
        let mut blk = Matrix::zeros(0, 0);
        r.read_block_into(5, 14, 2, 5, &mut blk).unwrap();
        assert_eq!(blk, a.submatrix(5, 14, 2, 5));
        r.read_cols_into(1, 4, &mut blk).unwrap();
        assert_eq!(blk, a.submatrix(0, 23, 1, 4));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_roundtrips_all_chunkings_and_codecs() {
        for chunk_rows in [1, 4, 7, 23, 100] {
            v2_roundtrip_case::<f64>("f64", chunk_rows, Codec::Raw);
            v2_roundtrip_case::<f64>("f64", chunk_rows, Codec::ShuffleRle);
            v2_roundtrip_case::<f32>("f32", chunk_rows, Codec::Raw);
            v2_roundtrip_case::<f32>("f32", chunk_rows, Codec::ShuffleRle);
        }
    }

    #[test]
    fn v2_dtype_mismatch_is_typed_error() {
        let path = tmpfile("dtypemismatch");
        let a: Matrix<f32> = Matrix::from_fn(8, 3, |i, j| (i + j) as f32);
        write_v2(&path, "v", &a, V2Options::default()).unwrap();
        let mut r = NcsimReader::open(&path).unwrap();
        let err = r.read_rows(0, 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let ok: Matrix<f32> = r.read_rows_as(0, 8).unwrap();
        assert_eq!(ok, a);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_read_into_works_generically() {
        let path = tmpfile("v1generic");
        let a = Matrix::from_fn(10, 4, |i, j| (i * 4 + j) as f64);
        write(&path, "v", &a).unwrap();
        let mut r = NcsimReader::open(&path).unwrap();
        let mut dst: Matrix<f64> = Matrix::zeros(0, 0);
        r.read_cols_into(1, 3, &mut dst).unwrap();
        assert_eq!(dst, a.submatrix(0, 10, 1, 3));
        // f32 request against an f64 file is a typed error, not a cast.
        let mut wrong: Matrix<f32> = Matrix::zeros(0, 0);
        assert!(r.read_cols_into(1, 3, &mut wrong).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_truncated_file_rejected() {
        let path = tmpfile("v2trunc");
        let a = Matrix::from_fn(50, 4, |i, j| (i * 4 + j) as f64);
        write_v2(&path, "v", &a, V2Options { chunk_rows: 16, codec: Codec::Raw }).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();
        assert!(NcsimReader::open(&path).is_err(), "truncated chunks must be caught at open");
        // Truncation inside the chunk table is also caught.
        std::fs::write(&path, &bytes[..60]).unwrap();
        assert!(NcsimReader::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_incremental_writer_must_complete() {
        let path = tmpfile("v2incomplete");
        let mut w = NcsimV2Writer::<f64>::create(&path, "v", 5, 2, V2Options::default()).unwrap();
        w.write_row(&[1.0, 2.0]).unwrap();
        assert!(w.finish().is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_io_counters_track_reads() {
        let path = tmpfile("v2counters");
        let a = Matrix::from_fn(64, 8, |i, j| (i * 8 + j) as f64);
        write_v2(&path, "v", &a, V2Options { chunk_rows: 16, codec: Codec::Raw }).unwrap();
        let mut r = NcsimReader::open(&path).unwrap();
        assert_eq!(r.io_bytes_read(), 0);
        let mut dst = Matrix::zeros(0, 0);
        r.read_cols_into::<f64>(0, 4, &mut dst).unwrap();
        assert_eq!(r.io_chunks_touched(), 4, "64 rows / 16-row chunks");
        assert!(r.io_bytes_read() >= (64 * 4 * 8) as u64);
        std::fs::remove_file(&path).unwrap();
    }
}
