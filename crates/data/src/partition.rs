//! Row-block domain decomposition.
//!
//! APMOS assumes each rank holds a contiguous block of grid points (matrix
//! rows). These helpers produce balanced blocks: the first `m % n_ranks`
//! ranks receive one extra row.

use psvd_linalg::{Matrix, Scalar};

/// Half-open row range `[start, end)` owned by `rank` out of `n_ranks` when
/// distributing `m` rows. Balanced: sizes differ by at most one.
pub fn block_range(m: usize, n_ranks: usize, rank: usize) -> (usize, usize) {
    assert!(n_ranks > 0, "need at least one rank");
    assert!(rank < n_ranks, "rank {rank} out of range for {n_ranks} ranks");
    let base = m / n_ranks;
    let extra = m % n_ranks;
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    (start, start + len)
}

/// Number of rows owned by `rank`.
pub fn block_len(m: usize, n_ranks: usize, rank: usize) -> usize {
    let (a, b) = block_range(m, n_ranks, rank);
    b - a
}

/// Split a matrix into per-rank row blocks (cloned). Generic over the
/// element dtype so f32 and mixed-precision pipelines partition the same
/// way f64 ones do.
pub fn split_rows<T: Scalar>(a: &Matrix<T>, n_ranks: usize) -> Vec<Matrix<T>> {
    (0..n_ranks)
        .map(|r| {
            let (start, end) = block_range(a.rows(), n_ranks, r);
            a.row_block(start, end)
        })
        .collect()
}

/// Reassemble per-rank row blocks into the global matrix.
pub fn join_rows<T: Scalar>(blocks: &[Matrix<T>]) -> Matrix<T> {
    Matrix::vstack_all(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_exactly() {
        for m in [0, 1, 7, 100, 101, 103] {
            for n in [1, 2, 3, 4, 7, 16] {
                let mut covered = 0;
                let mut prev_end = 0;
                for r in 0..n {
                    let (s, e) = block_range(m, n, r);
                    assert_eq!(s, prev_end, "blocks must be contiguous");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, m, "m={m} n={n}");
                assert_eq!(prev_end, m);
            }
        }
    }

    #[test]
    fn balance_within_one() {
        for m in [10, 11, 99] {
            for n in [3, 4, 7] {
                let lens: Vec<usize> = (0..n).map(|r| block_len(m, n, r)).collect();
                let mx = *lens.iter().max().unwrap();
                let mn = *lens.iter().min().unwrap();
                assert!(mx - mn <= 1, "m={m} n={n} lens={lens:?}");
            }
        }
    }

    #[test]
    fn split_join_roundtrip() {
        let a = Matrix::from_fn(23, 5, |i, j| (i * 5 + j) as f64);
        for n in [1, 2, 4, 5] {
            let blocks = split_rows(&a, n);
            assert_eq!(blocks.len(), n);
            assert_eq!(join_rows(&blocks), a);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        block_range(10, 2, 2);
    }
}
