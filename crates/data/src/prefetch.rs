//! Background snapshot prefetching: overlap disk IO + decode with compute.
//!
//! A [`SnapshotPrefetcher`] streams the column batches of one `ncsim`
//! variable (optionally restricted to a row hyperslab, the per-rank
//! pattern of a distributed run). With `depth > 0` it spawns one reader
//! thread that owns its own [`NcsimReader`] — its own file handle, the
//! MPI-IO independent-access analogue — and runs the whole IO + codec
//! decode for batch `k+1` while the caller's SVD update is busy
//! incorporating batch `k`.
//!
//! ## Buffer-recycling protocol
//!
//! Exactly `depth` batch panels (`Matrix<T>`) circulate between the
//! consumer and the worker through a pair of channels:
//!
//! ```text
//!            full panels (decoded batch k+1, k+2, ...)
//!   worker  ────────────────────────────────────────▶  consumer
//!     ▲                                                   │ copy into
//!     │            empty panels (recycled)                ▼ caller's dst
//!     └────────────────────────────────────────────── tx_empty
//! ```
//!
//! The worker *blocks* waiting for an empty panel before reading, so it
//! can never run more than `depth` batches ahead — the ring itself is the
//! backpressure, independent of channel buffering. Panels are allocated
//! once (first touch) and reused for the rest of the stream; the consumer
//! copies each panel into the caller-provided matrix, preserving the
//! drivers' zero-transient-O(M)-allocation steady state.
//!
//! `depth == 0` is the synchronous fallback (`PSVD_PREFETCH_DEPTH=0`):
//! the same API, but every batch is read inline — by construction its
//! compute-stall time equals its IO time, which is what the
//! overlap-efficiency bench compares against.
//!
//! ## Determinism
//!
//! The codec is lossless and decode order is fixed, so the bytes landing
//! in `dst` are identical whether they arrive through the prefetcher, the
//! synchronous path, or an in-core [`MatrixBatchSource`]
//! (`crate::stream`): f64 out-of-core results are bitwise identical to
//! in-core results at any thread count.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender};
use psvd_linalg::{Matrix, Scalar};

use crate::ncsim::{Dtype, NcsimReader};
use crate::stream::SnapshotSource;

/// The prefetch depth: `PSVD_PREFETCH_DEPTH` if set (0 = synchronous),
/// else 2 (classic double buffering).
pub fn default_depth() -> usize {
    std::env::var("PSVD_PREFETCH_DEPTH")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(2)
}

/// Counters describing one prefetcher's IO pipeline, snapshot via
/// [`SnapshotPrefetcher::io_stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct IoStats {
    /// Payload + chunk-metadata bytes read from disk.
    pub bytes_read: u64,
    /// Batches fetched ahead by the worker thread (0 in synchronous mode).
    pub chunks_prefetched: u64,
    /// Panels successfully returned to the recycle ring.
    pub recycle_hits: u64,
    /// Nanoseconds the consumer spent waiting for data (compute stall).
    pub stall_nanos: u64,
    /// Nanoseconds of wall time spent inside read + decode.
    pub io_busy_nanos: u64,
    /// Batches delivered to the consumer.
    pub batches: u64,
}

impl IoStats {
    /// Fraction of IO + decode time the consumer actually waited for:
    /// ~1.0 for the blocking path (every IO nanosecond is a stall), → 0
    /// when prefetch fully hides IO under compute.
    pub fn stall_fraction(&self) -> f64 {
        if self.io_busy_nanos == 0 {
            0.0
        } else {
            self.stall_nanos as f64 / self.io_busy_nanos as f64
        }
    }
}

#[derive(Default)]
struct SharedStats {
    bytes_read: AtomicU64,
    chunks_prefetched: AtomicU64,
    recycle_hits: AtomicU64,
    stall_nanos: AtomicU64,
    io_busy_nanos: AtomicU64,
    batches: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> IoStats {
        IoStats {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            chunks_prefetched: self.chunks_prefetched.load(Ordering::Relaxed),
            recycle_hits: self.recycle_hits.load(Ordering::Relaxed),
            stall_nanos: self.stall_nanos.load(Ordering::Relaxed),
            io_busy_nanos: self.io_busy_nanos.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }
}

enum Mode<T: Scalar> {
    /// `depth == 0`: read inline on the consumer thread.
    Sync { reader: Box<NcsimReader>, bytes_seen: u64 },
    /// `depth > 0`: a worker thread with its own reader/file handle.
    Async {
        rx_full: Option<Receiver<io::Result<Matrix<T>>>>,
        tx_empty: Option<Sender<Matrix<T>>>,
        worker: Option<JoinHandle<()>>,
    },
}

/// A pull-based out-of-core [`SnapshotSource`] over one ncsim file.
pub struct SnapshotPrefetcher<T: Scalar> {
    r0: usize,
    r1: usize,
    cols: usize,
    batch: usize,
    next_col: usize,
    done: bool,
    mode: Mode<T>,
    stats: Arc<SharedStats>,
}

impl<T: Scalar> SnapshotPrefetcher<T> {
    /// Stream all rows in `batch`-column batches at the default depth.
    pub fn open(path: &Path, batch: usize) -> io::Result<Self> {
        Self::open_with_depth(path, batch, default_depth())
    }

    /// Stream all rows at an explicit depth (`0` = synchronous).
    pub fn open_with_depth(path: &Path, batch: usize, depth: usize) -> io::Result<Self> {
        let rows = NcsimReader::open(path)?.rows();
        Self::open_rows_with_depth(path, 0, rows, batch, depth)
    }

    /// Stream the row hyperslab `[r0, r1)` — a rank's block — at the
    /// default depth. Each rank gets its own reader thread and file handle.
    pub fn open_rows(path: &Path, r0: usize, r1: usize, batch: usize) -> io::Result<Self> {
        Self::open_rows_with_depth(path, r0, r1, batch, default_depth())
    }

    /// Fully explicit constructor.
    pub fn open_rows_with_depth(
        path: &Path,
        r0: usize,
        r1: usize,
        batch: usize,
        depth: usize,
    ) -> io::Result<Self> {
        if batch == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "batch size must be positive"));
        }
        let reader = NcsimReader::open(path)?;
        if r0 > r1 || r1 > reader.rows() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("row range {r0}..{r1} out of bounds for {} rows", reader.rows()),
            ));
        }
        // Surface dtype mismatches at construction, not from the worker.
        if reader.header().dtype != Dtype::of::<T>() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("file holds {} data, requested {}", reader.header().dtype.name(), T::NAME),
            ));
        }
        let cols = reader.cols();
        let stats = Arc::new(SharedStats::default());
        let mode = if depth == 0 {
            Mode::Sync { reader: Box::new(reader), bytes_seen: 0 }
        } else {
            // A 1-deep ring still serializes IO with the copy-out; two
            // panels is the minimum that actually double-buffers.
            let depth = depth.max(2);
            let (tx_full, rx_full) = crossbeam::channel::bounded(depth);
            let (tx_empty, rx_empty) = crossbeam::channel::bounded(depth);
            for _ in 0..depth {
                // Lazily sized: first reshape in the worker allocates.
                let _ = tx_empty.send(Matrix::<T>::zeros(0, 0));
            }
            let st = Arc::clone(&stats);
            let worker = std::thread::Builder::new()
                .name("psvd-prefetch".into())
                .spawn(move || worker_loop::<T>(reader, r0, r1, cols, batch, rx_empty, tx_full, st))
                .map_err(|e| io::Error::other(format!("spawning prefetch thread: {e}")))?;
            Mode::Async { rx_full: Some(rx_full), tx_empty: Some(tx_empty), worker: Some(worker) }
        };
        Ok(Self { r0, r1, cols, batch, next_col: 0, done: false, mode, stats })
    }

    /// Rows of each delivered batch (`r1 - r0`).
    pub fn rows(&self) -> usize {
        self.r1 - self.r0
    }

    /// Total snapshot columns in the file.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total batches this source will yield.
    pub fn total_batches(&self) -> usize {
        self.cols.div_ceil(self.batch)
    }

    /// Snapshot of the pipeline counters.
    pub fn io_stats(&self) -> IoStats {
        self.stats.snapshot()
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<T: Scalar>(
    mut reader: NcsimReader,
    r0: usize,
    r1: usize,
    cols: usize,
    batch: usize,
    rx_empty: Receiver<Matrix<T>>,
    tx_full: Sender<io::Result<Matrix<T>>>,
    stats: Arc<SharedStats>,
) {
    let mut bytes_seen = 0u64;
    let mut c0 = 0usize;
    while c0 < cols {
        let c1 = (c0 + batch).min(cols);
        // Blocking on an empty panel *is* the backpressure: the worker can
        // never be more than `depth` batches ahead of the consumer. Err
        // means the consumer hung up; just exit.
        let Ok(mut panel) = rx_empty.recv() else { return };
        let t0 = Instant::now();
        let res = reader.read_block_into(r0, r1, c0, c1, &mut panel);
        stats.io_busy_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let now = reader.io_bytes_read();
        stats.bytes_read.fetch_add(now - bytes_seen, Ordering::Relaxed);
        bytes_seen = now;
        match res {
            Ok(()) => {
                stats.chunks_prefetched.fetch_add(1, Ordering::Relaxed);
                if tx_full.send(Ok(panel)).is_err() {
                    return;
                }
            }
            Err(e) => {
                let _ = tx_full.send(Err(e));
                return;
            }
        }
        c0 = c1;
    }
}

impl<T: Scalar> SnapshotSource<T> for SnapshotPrefetcher<T> {
    fn next_batch_into(&mut self, dst: &mut Matrix<T>) -> io::Result<bool> {
        if self.done || self.next_col >= self.cols {
            self.done = true;
            return Ok(false);
        }
        let c0 = self.next_col;
        let c1 = (c0 + self.batch).min(self.cols);
        match &mut self.mode {
            Mode::Sync { reader, bytes_seen } => {
                let t0 = Instant::now();
                let res = reader.read_block_into(self.r0, self.r1, c0, c1, dst);
                let dt = t0.elapsed().as_nanos() as u64;
                // Inline IO: every nanosecond of it is a consumer stall.
                self.stats.io_busy_nanos.fetch_add(dt, Ordering::Relaxed);
                self.stats.stall_nanos.fetch_add(dt, Ordering::Relaxed);
                let now = reader.io_bytes_read();
                self.stats.bytes_read.fetch_add(now - *bytes_seen, Ordering::Relaxed);
                *bytes_seen = now;
                if let Err(e) = res {
                    self.done = true;
                    return Err(e);
                }
            }
            Mode::Async { rx_full, tx_empty, .. } => {
                let rx = rx_full.as_ref().expect("receiver lives until drop");
                let t0 = Instant::now();
                let msg = rx.recv();
                self.stats.stall_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                match msg {
                    Ok(Ok(panel)) => {
                        dst.reshape_for_overwrite(panel.rows(), panel.cols());
                        dst.as_mut_slice().copy_from_slice(panel.as_slice());
                        let tx = tx_empty.as_ref().expect("sender lives until drop");
                        if tx.send(panel).is_ok() {
                            self.stats.recycle_hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Ok(Err(e)) => {
                        self.done = true;
                        return Err(e);
                    }
                    Err(_) => {
                        // Worker gone without delivering this batch.
                        self.done = true;
                        return Err(io::Error::other("prefetch worker exited early"));
                    }
                }
            }
        }
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.next_col = c1;
        Ok(true)
    }

    fn batches_hint(&self) -> Option<usize> {
        Some(self.total_batches())
    }
}

impl<T: Scalar> Drop for SnapshotPrefetcher<T> {
    fn drop(&mut self) {
        if let Mode::Async { rx_full, tx_empty, worker } = &mut self.mode {
            // Hang up both ends; the worker's next ring recv/send fails
            // and it exits, then join to avoid leaking the thread.
            tx_empty.take();
            rx_full.take();
            if let Some(h) = worker.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ncsim::{write_v2, Codec, V2Options};
    use crate::stream::MatrixBatchSource;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("psvd_prefetch_test_{name}_{}", std::process::id()));
        p
    }

    fn collect<T: Scalar, S: SnapshotSource<T>>(src: &mut S) -> Vec<Matrix<T>> {
        let mut out = Vec::new();
        let mut dst = Matrix::zeros(0, 0);
        while src.next_batch_into(&mut dst).unwrap() {
            out.push(dst.clone());
        }
        out
    }

    #[test]
    fn prefetched_batches_match_in_core_bitwise() {
        let path = tmpfile("bitwise");
        let a = Matrix::from_fn(200, 23, |i, j| ((i * 23 + j) as f64 * 0.317).sin());
        write_v2(&path, "v", &a, V2Options { chunk_rows: 64, codec: Codec::ShuffleRle }).unwrap();
        let expect = collect(&mut MatrixBatchSource::new(&a, 5));
        for depth in [0usize, 2, 4] {
            let mut pf = SnapshotPrefetcher::<f64>::open_with_depth(&path, 5, depth).unwrap();
            assert_eq!(pf.total_batches(), 5);
            let got = collect(&mut pf);
            assert_eq!(got, expect, "depth {depth} must be bitwise identical");
            let st = pf.io_stats();
            assert_eq!(st.batches, 5);
            assert!(st.bytes_read > 0);
            if depth == 0 {
                assert_eq!(st.chunks_prefetched, 0);
                assert_eq!(st.stall_nanos, st.io_busy_nanos, "sync mode stalls for all IO");
            } else {
                assert_eq!(st.chunks_prefetched, 5);
                // Once the worker has read the last batch it hangs up the
                // ring, so up to `depth` tail recycles may miss — but the
                // steady-state ones must land.
                assert!(
                    st.recycle_hits >= 5u64.saturating_sub(depth as u64),
                    "recycle_hits {} too low for depth {depth}",
                    st.recycle_hits
                );
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn row_hyperslabs_tile_like_ranks() {
        let path = tmpfile("ranks");
        let a = Matrix::from_fn(57, 9, |i, j| (i * 9 + j) as f64);
        write_v2(&path, "v", &a, V2Options { chunk_rows: 10, codec: Codec::Raw }).unwrap();
        // Each "rank" opens its own prefetcher (own file handle, own
        // worker); their stacked batches reproduce the full matrix.
        for (r0, r1) in [(0usize, 20usize), (20, 41), (41, 57)] {
            let mut pf = SnapshotPrefetcher::<f64>::open_rows(&path, r0, r1, 4).unwrap();
            let got = Matrix::hstack_all(&collect(&mut pf));
            assert_eq!(got, a.row_block(r0, r1));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn f32_files_stream_natively() {
        let path = tmpfile("f32");
        let a: Matrix<f32> = Matrix::from_fn(40, 6, |i, j| (i as f32) - 0.5 * j as f32);
        write_v2(&path, "v", &a, V2Options { chunk_rows: 16, codec: Codec::ShuffleRle }).unwrap();
        let mut pf = SnapshotPrefetcher::<f32>::open(&path, 2).unwrap();
        assert_eq!(Matrix::hstack_all(&collect(&mut pf)), a);
        // And the dtype mismatch is caught at open, not at first read.
        assert!(SnapshotPrefetcher::<f64>::open(&path, 2).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_files_stream_through_the_same_api() {
        let path = tmpfile("v1");
        let a = Matrix::from_fn(30, 7, |i, j| ((i + j) as f64).cos());
        crate::ncsim::write(&path, "v", &a).unwrap();
        let mut pf = SnapshotPrefetcher::<f64>::open(&path, 3).unwrap();
        assert_eq!(Matrix::hstack_all(&collect(&mut pf)), a);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dropping_mid_stream_joins_worker() {
        let path = tmpfile("dropmid");
        let a = Matrix::from_fn(100, 40, |i, j| (i + j) as f64);
        write_v2(&path, "v", &a, V2Options::default()).unwrap();
        let mut pf = SnapshotPrefetcher::<f64>::open_with_depth(&path, 2, 3).unwrap();
        let mut dst = Matrix::zeros(0, 0);
        assert!(pf.next_batch_into(&mut dst).unwrap());
        drop(pf); // must not deadlock or leak the worker
        std::fs::remove_file(&path).unwrap();
    }
}
