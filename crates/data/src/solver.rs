//! Finite-difference viscous Burgers solver.
//!
//! The paper generates its snapshots from the analytical solution
//! (Eq. 13), but its motivating use case is *in-situ* analysis: the SVD
//! consuming data as a simulation produces it. This module provides that
//! producer — an explicit finite-difference solver for
//! `u_t + u u_x = nu u_xx` with homogeneous Dirichlet boundaries:
//!
//! - first-order upwind advection + central diffusion (robust at the
//!   sharp-front Reynolds numbers the paper uses);
//! - a serial [`BurgersSolver`] for single-address-space runs;
//! - a halo-based [`step_with_halos`] kernel so a domain-decomposed run
//!   can advance each rank's block after exchanging one boundary value
//!   per side (see `examples/insitu_streaming.rs`).

use crate::burgers::{analytical_solution, BurgersConfig};

/// One explicit update of a block of grid values, given halo values from
/// the neighbouring blocks (or boundaries).
///
/// `u` is this block's current values; `left`/`right` are the values just
/// outside the block. Returns the updated block.
pub fn step_with_halos(u: &[f64], left: f64, right: f64, nu: f64, dx: f64, dt: f64) -> Vec<f64> {
    let n = u.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let um = if i == 0 { left } else { u[i - 1] };
        let up = if i + 1 == n { right } else { u[i + 1] };
        let ui = u[i];
        // Upwind advection (flow is rightward for u > 0).
        let adv = if ui >= 0.0 { ui * (ui - um) / dx } else { ui * (up - ui) / dx };
        let diff = nu * (up - 2.0 * ui + um) / (dx * dx);
        out.push(ui + dt * (diff - adv));
    }
    out
}

/// Largest stable explicit time step for grid spacing `dx`, viscosity
/// `nu`, and velocity scale `umax` (diffusion + CFL limits, with a 0.8
/// safety factor).
pub fn stable_dt(dx: f64, nu: f64, umax: f64) -> f64 {
    let diff_limit = dx * dx / (2.0 * nu.max(1e-300));
    let cfl_limit = dx / umax.max(1e-12);
    0.8 * diff_limit.min(cfl_limit)
}

/// Serial explicit solver on the unit-style domain of [`BurgersConfig`].
pub struct BurgersSolver {
    nu: f64,
    dx: f64,
    time: f64,
    u: Vec<f64>,
}

impl BurgersSolver {
    /// Initialize from the analytical solution at `t = 0`.
    pub fn new(cfg: &BurgersConfig) -> Self {
        let grid = cfg.grid();
        let nu = 1.0 / cfg.reynolds;
        let dx = cfg.length / (cfg.grid_points - 1) as f64;
        let u = grid.iter().map(|&x| analytical_solution(x, 0.0, cfg.reynolds)).collect();
        Self { nu, dx, time: 0.0, u }
    }

    /// Current solution values (including the boundary points).
    pub fn state(&self) -> &[f64] {
        &self.u
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Grid spacing.
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// A stable time step for the current state.
    pub fn stable_dt(&self) -> f64 {
        let umax = self.u.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        stable_dt(self.dx, self.nu, umax.max(1e-6))
    }

    /// Advance one explicit step of size `dt`. Boundary values stay zero
    /// (homogeneous Dirichlet).
    pub fn step(&mut self, dt: f64) {
        let n = self.u.len();
        // Interior update via the halo kernel (halos = boundary zeros).
        let interior =
            step_with_halos(&self.u[1..n - 1], self.u[0], self.u[n - 1], self.nu, self.dx, dt);
        self.u[1..n - 1].copy_from_slice(&interior);
        self.u[0] = 0.0;
        self.u[n - 1] = 0.0;
        self.time += dt;
    }

    /// Advance to time `t` with automatically chosen stable steps.
    pub fn advance_to(&mut self, t: f64) {
        while self.time < t - 1e-12 {
            let dt = self.stable_dt().min(t - self.time);
            self.step(dt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burgers::analytical_solution;

    fn test_cfg() -> BurgersConfig {
        BurgersConfig {
            grid_points: 512,
            snapshots: 8,
            reynolds: 200.0,
            ..BurgersConfig::default()
        }
    }

    #[test]
    fn initial_condition_matches_analytic() {
        let cfg = test_cfg();
        let s = BurgersSolver::new(&cfg);
        let grid = cfg.grid();
        for (i, &x) in grid.iter().enumerate() {
            assert!((s.state()[i] - analytical_solution(x, 0.0, cfg.reynolds)).abs() < 1e-14);
        }
    }

    #[test]
    fn tracks_analytical_solution() {
        // Advance to t = 0.5 and compare with Eq. (13): the first-order
        // scheme on a 512 grid should stay within a few percent in L2.
        let cfg = test_cfg();
        let mut s = BurgersSolver::new(&cfg);
        s.advance_to(0.5);
        let grid = cfg.grid();
        let mut err2 = 0.0;
        let mut ref2 = 0.0;
        for (i, &x) in grid.iter().enumerate() {
            let exact = analytical_solution(x, 0.5, cfg.reynolds);
            err2 += (s.state()[i] - exact).powi(2);
            ref2 += exact * exact;
        }
        let rel = (err2 / ref2.max(1e-300)).sqrt();
        assert!(rel < 0.05, "relative L2 error {rel}");
    }

    #[test]
    fn boundaries_stay_pinned() {
        let cfg = test_cfg();
        let mut s = BurgersSolver::new(&cfg);
        s.advance_to(0.2);
        assert_eq!(s.state()[0], 0.0);
        assert_eq!(*s.state().last().unwrap(), 0.0);
    }

    #[test]
    fn solution_stays_bounded_and_finite() {
        // Explicit scheme at the stable dt must not blow up; Burgers with
        // these ICs has max |u| <= max |u0|-ish (viscosity dissipates).
        let cfg = test_cfg();
        let mut s = BurgersSolver::new(&cfg);
        let u0max = s.state().iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        s.advance_to(1.0);
        for &x in s.state() {
            assert!(x.is_finite());
            assert!(x.abs() <= 1.5 * u0max + 1e-9);
        }
    }

    #[test]
    fn halo_stepping_matches_serial() {
        // Splitting the domain into blocks and stepping with exchanged
        // halos must reproduce the monolithic update exactly.
        let cfg = test_cfg();
        let s = BurgersSolver::new(&cfg);
        let u = s.state().to_vec();
        let n = u.len();
        let dt = s.stable_dt();
        let nu = 1.0 / cfg.reynolds;
        let dx = s.dx();

        // Monolithic interior update.
        let mono = step_with_halos(&u[1..n - 1], u[0], u[n - 1], nu, dx, dt);

        // Two blocks with a halo exchange at the split.
        let split = n / 2;
        let left_block = step_with_halos(&u[1..split], u[0], u[split], nu, dx, dt);
        let right_block = step_with_halos(&u[split..n - 1], u[split - 1], u[n - 1], nu, dx, dt);
        let stitched: Vec<f64> = left_block.into_iter().chain(right_block).collect();
        assert_eq!(mono.len(), stitched.len());
        for (a, b) in mono.iter().zip(&stitched) {
            assert_eq!(a, b, "halo stepping must be bit-exact");
        }
    }

    #[test]
    fn stable_dt_respects_both_limits() {
        // Diffusion-limited when nu large, CFL-limited when u large.
        let d1 = stable_dt(0.01, 1.0, 0.1); // diffusion: 5e-5 vs cfl: 0.1
        assert!((d1 - 0.8 * 5e-5).abs() < 1e-12);
        let d2 = stable_dt(0.01, 1e-9, 2.0); // cfl: 5e-3
        assert!((d2 - 0.8 * 5e-3).abs() < 1e-12);
    }
}
