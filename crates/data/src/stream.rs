//! Streaming batch access to snapshot data.
//!
//! The streaming SVD consumes data in column batches (`B` snapshots at a
//! time). These adapters slice an existing matrix into batches or generate
//! batches lazily from a column closure, so the full `M x N` matrix never
//! needs to exist in memory — the whole point of the streaming algorithm.

use psvd_linalg::Matrix;

/// Iterate over column batches of `a`, each `batch` columns wide (the last
/// batch may be narrower). Panics if `batch == 0`.
pub fn column_batches(a: &Matrix, batch: usize) -> impl Iterator<Item = Matrix> + '_ {
    assert!(batch > 0, "batch size must be positive");
    let n = a.cols();
    (0..n.div_ceil(batch)).map(move |b| {
        let c0 = b * batch;
        let c1 = (c0 + batch).min(n);
        a.submatrix(0, a.rows(), c0, c1)
    })
}

/// Lazily generates column batches from a per-column closure, never holding
/// more than one batch in memory.
pub struct BatchGenerator<F> {
    rows: usize,
    total_cols: usize,
    batch: usize,
    next_col: usize,
    column_fn: F,
}

impl<F: FnMut(usize) -> Vec<f64>> BatchGenerator<F> {
    /// `column_fn(j)` must return column `j` (length `rows`).
    pub fn new(rows: usize, total_cols: usize, batch: usize, column_fn: F) -> Self {
        assert!(batch > 0, "batch size must be positive");
        Self { rows, total_cols, batch, next_col: 0, column_fn }
    }

    /// Number of batches this generator will yield in total.
    pub fn batch_count(&self) -> usize {
        self.total_cols.div_ceil(self.batch)
    }
}

impl<F: FnMut(usize) -> Vec<f64>> Iterator for BatchGenerator<F> {
    type Item = Matrix;

    fn next(&mut self) -> Option<Matrix> {
        if self.next_col >= self.total_cols {
            return None;
        }
        let c0 = self.next_col;
        let c1 = (c0 + self.batch).min(self.total_cols);
        let mut m = Matrix::zeros(self.rows, c1 - c0);
        for (jj, j) in (c0..c1).enumerate() {
            let col = (self.column_fn)(j);
            assert_eq!(col.len(), self.rows, "column {j} has wrong length");
            m.set_col(jj, &col);
        }
        self.next_col = c1;
        Some(m)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.total_cols - self.next_col).div_ceil(self.batch);
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_matrix() {
        let a = Matrix::from_fn(4, 10, |i, j| (i * 10 + j) as f64);
        let batches: Vec<Matrix> = column_batches(&a, 3).collect();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0].cols(), 3);
        assert_eq!(batches[3].cols(), 1);
        assert_eq!(Matrix::hstack_all(&batches), a);
    }

    #[test]
    fn exact_division_has_no_runt() {
        let a = Matrix::from_fn(2, 8, |_, j| j as f64);
        let batches: Vec<Matrix> = column_batches(&a, 4).collect();
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|b| b.cols() == 4));
    }

    #[test]
    fn generator_matches_slicing() {
        let a = Matrix::from_fn(5, 7, |i, j| ((i * 7 + j) as f64).sin());
        let from_slices: Vec<Matrix> = column_batches(&a, 2).collect();
        let gen = BatchGenerator::new(5, 7, 2, |j| a.col(j));
        let from_gen: Vec<Matrix> = gen.collect();
        assert_eq!(from_slices, from_gen);
    }

    #[test]
    fn generator_size_hint() {
        let gen = BatchGenerator::new(3, 10, 4, |j| vec![j as f64; 3]);
        assert_eq!(gen.batch_count(), 3);
        assert_eq!(gen.size_hint(), (3, Some(3)));
        assert_eq!(gen.count(), 3);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = column_batches(&a, 0);
    }
}
