//! Streaming batch access to snapshot data.
//!
//! The streaming SVD consumes data in column batches (`B` snapshots at a
//! time). These adapters slice an existing matrix into batches or generate
//! batches lazily from a column closure, so the full `M x N` matrix never
//! needs to exist in memory — the whole point of the streaming algorithm.
//!
//! [`SnapshotSource`] is the pull-based contract uniting all ingestion
//! paths: in-core slicing ([`MatrixBatchSource`]), synthetic generation
//! ([`BatchGenerator`]) and the out-of-core prefetcher
//! ([`crate::prefetch::SnapshotPrefetcher`]). Batches land in a
//! caller-provided [`Matrix`], so the steady-state driver loop keeps its
//! zero transient O(M) allocation guarantee no matter where data comes
//! from.

use std::io;
use std::marker::PhantomData;

use psvd_linalg::{Matrix, Scalar};

/// A pull-based producer of column batches.
///
/// Implementations fill the caller's `dst` (reshaping it to
/// `rows x batch_cols`, which reuses its allocation once warmed up) and
/// return `Ok(true)`, or return `Ok(false)` at end of stream leaving
/// `dst` untouched. IO-backed sources report failures as [`io::Error`]s;
/// in-memory sources never fail.
pub trait SnapshotSource<T: Scalar> {
    /// Fill `dst` with the next batch; `Ok(false)` when exhausted.
    fn next_batch_into(&mut self, dst: &mut Matrix<T>) -> io::Result<bool>;

    /// Total number of batches this source will yield, if known.
    fn batches_hint(&self) -> Option<usize> {
        None
    }
}

/// Iterate over column batches of `a`, each `batch` columns wide (the last
/// batch may be narrower). Panics if `batch == 0`.
pub fn column_batches<T: Scalar>(
    a: &Matrix<T>,
    batch: usize,
) -> impl Iterator<Item = Matrix<T>> + '_ {
    assert!(batch > 0, "batch size must be positive");
    let n = a.cols();
    (0..n.div_ceil(batch)).map(move |b| {
        let c0 = b * batch;
        let c1 = (c0 + batch).min(n);
        a.submatrix(0, a.rows(), c0, c1)
    })
}

/// In-core [`SnapshotSource`]: column batches copied out of a borrowed
/// matrix into the caller's buffer (the reference ingestion path the
/// out-of-core runs are checked bitwise against).
pub struct MatrixBatchSource<'a, T: Scalar> {
    a: &'a Matrix<T>,
    batch: usize,
    next_col: usize,
}

impl<'a, T: Scalar> MatrixBatchSource<'a, T> {
    /// Batches of `batch` columns over `a`. Panics if `batch == 0`.
    pub fn new(a: &'a Matrix<T>, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        Self { a, batch, next_col: 0 }
    }
}

impl<T: Scalar> SnapshotSource<T> for MatrixBatchSource<'_, T> {
    fn next_batch_into(&mut self, dst: &mut Matrix<T>) -> io::Result<bool> {
        if self.next_col >= self.a.cols() {
            return Ok(false);
        }
        let c0 = self.next_col;
        let c1 = (c0 + self.batch).min(self.a.cols());
        dst.reshape_for_overwrite(self.a.rows(), c1 - c0);
        for i in 0..self.a.rows() {
            dst.row_mut(i).copy_from_slice(&self.a.row(i)[c0..c1]);
        }
        self.next_col = c1;
        Ok(true)
    }

    fn batches_hint(&self) -> Option<usize> {
        Some(self.a.cols().div_ceil(self.batch))
    }
}

/// Lazily generates column batches from a per-column closure, never holding
/// more than one batch in memory.
pub struct BatchGenerator<T, F> {
    rows: usize,
    total_cols: usize,
    batch: usize,
    next_col: usize,
    column_fn: F,
    _elem: PhantomData<T>,
}

impl<T: Scalar, F: FnMut(usize) -> Vec<T>> BatchGenerator<T, F> {
    /// `column_fn(j)` must return column `j` (length `rows`).
    pub fn new(rows: usize, total_cols: usize, batch: usize, column_fn: F) -> Self {
        assert!(batch > 0, "batch size must be positive");
        Self { rows, total_cols, batch, next_col: 0, column_fn, _elem: PhantomData }
    }

    /// Number of batches this generator will yield in total.
    pub fn batch_count(&self) -> usize {
        self.total_cols.div_ceil(self.batch)
    }

    fn fill(&mut self, dst: &mut Matrix<T>) -> bool {
        if self.next_col >= self.total_cols {
            return false;
        }
        let c0 = self.next_col;
        let c1 = (c0 + self.batch).min(self.total_cols);
        dst.reshape_for_overwrite(self.rows, c1 - c0);
        for (jj, j) in (c0..c1).enumerate() {
            let col = (self.column_fn)(j);
            assert_eq!(col.len(), self.rows, "column {j} has wrong length");
            for (i, &v) in col.iter().enumerate() {
                dst.row_mut(i)[jj] = v;
            }
        }
        self.next_col = c1;
        true
    }
}

impl<T: Scalar, F: FnMut(usize) -> Vec<T>> Iterator for BatchGenerator<T, F> {
    type Item = Matrix<T>;

    fn next(&mut self) -> Option<Matrix<T>> {
        let mut m = Matrix::zeros(0, 0);
        if self.fill(&mut m) {
            Some(m)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.total_cols - self.next_col).div_ceil(self.batch);
        (left, Some(left))
    }
}

impl<T: Scalar, F: FnMut(usize) -> Vec<T>> SnapshotSource<T> for BatchGenerator<T, F> {
    fn next_batch_into(&mut self, dst: &mut Matrix<T>) -> io::Result<bool> {
        Ok(self.fill(dst))
    }

    fn batches_hint(&self) -> Option<usize> {
        Some(self.batch_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_matrix() {
        let a = Matrix::from_fn(4, 10, |i, j| (i * 10 + j) as f64);
        let batches: Vec<Matrix> = column_batches(&a, 3).collect();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0].cols(), 3);
        assert_eq!(batches[3].cols(), 1);
        assert_eq!(Matrix::hstack_all(&batches), a);
    }

    #[test]
    fn exact_division_has_no_runt() {
        let a = Matrix::from_fn(2, 8, |_, j| j as f64);
        let batches: Vec<Matrix> = column_batches(&a, 4).collect();
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|b| b.cols() == 4));
    }

    #[test]
    fn f32_batches_stream_without_conversion() {
        let a: Matrix<f32> = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f32);
        let batches: Vec<Matrix<f32>> = column_batches(&a, 2).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(Matrix::hstack_all(&batches), a);
    }

    #[test]
    fn generator_matches_slicing() {
        let a = Matrix::from_fn(5, 7, |i, j| ((i * 7 + j) as f64).sin());
        let from_slices: Vec<Matrix> = column_batches(&a, 2).collect();
        let gen = BatchGenerator::new(5, 7, 2, |j| a.col(j));
        let from_gen: Vec<Matrix> = gen.collect();
        assert_eq!(from_slices, from_gen);
    }

    #[test]
    fn generator_size_hint() {
        let gen = BatchGenerator::new(3, 10, 4, |j| vec![j as f64; 3]);
        assert_eq!(gen.batch_count(), 3);
        assert_eq!(gen.size_hint(), (3, Some(3)));
        assert_eq!(gen.count(), 3);
    }

    #[test]
    fn matrix_source_matches_slicing_and_reuses_dst() {
        let a = Matrix::from_fn(6, 9, |i, j| ((i * 9 + j) as f64).cos());
        let expect: Vec<Matrix> = column_batches(&a, 4).collect();
        let mut src = MatrixBatchSource::new(&a, 4);
        assert_eq!(src.batches_hint(), Some(3));
        let mut dst = Matrix::zeros(6, 4); // warmed to the widest batch
        for e in &expect {
            assert!(src.next_batch_into(&mut dst).unwrap());
            assert_eq!(&dst, e);
        }
        assert!(!src.next_batch_into(&mut dst).unwrap());
    }

    #[test]
    fn generator_as_source_matches_iterator() {
        let a = Matrix::from_fn(5, 7, |i, j| ((i * 7 + j) as f64).sin());
        let expect: Vec<Matrix> = BatchGenerator::new(5, 7, 3, |j| a.col(j)).collect();
        let mut src = BatchGenerator::new(5, 7, 3, |j| a.col(j));
        let mut dst = Matrix::zeros(0, 0);
        for e in &expect {
            assert!(src.next_batch_into(&mut dst).unwrap());
            assert_eq!(&dst, e);
        }
        assert!(!src.next_batch_into(&mut dst).unwrap());
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics() {
        let a: Matrix<f64> = Matrix::zeros(2, 2);
        let _ = column_batches(&a, 0);
    }
}
