//! Synthetic cylinder-wake dataset — the canonical DMD benchmark flow.
//!
//! A von Kármán vortex street behind a bluff body is *the* standard test
//! for modal decompositions (Schmid's original DMD paper uses one). This
//! generator produces a 2-D vorticity-like field with the wake's defining
//! features, all with known ground truth:
//!
//! - a steady base flow (recirculation bubble behind the body);
//! - a fundamental shedding mode: counter-rotating vortices advecting
//!   downstream at a set frequency `f_s` (a traveling wave in `x`,
//!   enveloped in `y`);
//! - its first harmonic at `2 f_s` with half the wavelength, as in real
//!   wakes;
//! - optional transient growth `e^{sigma t}` to emulate the instability's
//!   saturation phase.

use psvd_linalg::Matrix;

/// Configuration of the synthetic wake.
#[derive(Clone, Copy, Debug)]
pub struct WakeConfig {
    /// Streamwise grid points.
    pub nx: usize,
    /// Cross-stream grid points.
    pub ny: usize,
    /// Snapshots.
    pub snapshots: usize,
    /// Sampling interval.
    pub dt: f64,
    /// Fundamental shedding frequency (cycles per unit time).
    pub shedding_frequency: f64,
    /// Amplitude of the fundamental relative to the base flow.
    pub fundamental_amplitude: f64,
    /// Amplitude of the first harmonic.
    pub harmonic_amplitude: f64,
    /// Exponential growth rate of the oscillatory part (0 = saturated).
    pub growth_rate: f64,
}

impl Default for WakeConfig {
    fn default() -> Self {
        Self {
            nx: 96,
            ny: 48,
            snapshots: 256,
            dt: 0.05,
            shedding_frequency: 1.1,
            fundamental_amplitude: 1.0,
            harmonic_amplitude: 0.35,
            growth_rate: 0.0,
        }
    }
}

impl WakeConfig {
    /// Spatial degrees of freedom.
    pub fn dof(&self) -> usize {
        self.nx * self.ny
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self { nx: 32, ny: 16, snapshots: 128, ..Self::default() }
    }
}

/// Evaluate the base flow at normalized coordinates.
fn base_flow(xn: f64, yn: f64) -> f64 {
    // Recirculation bubble: negative vorticity lobe decaying downstream.
    let lobe = (-((xn - 0.15) * 6.0).powi(2)).exp();
    lobe * (-(yn * 3.0).powi(2)).exp() * yn.signum() * -2.0
}

/// Shedding-mode envelope: grows from the body, decays cross-stream.
fn envelope(xn: f64, yn: f64, tightness: f64) -> f64 {
    let stream = (1.0 - (-xn * 4.0).exp()).max(0.0);
    stream * (-(yn * tightness).powi(2)).exp()
}

/// Generate the `(dof x snapshots)` wake snapshot matrix. Row index maps to
/// `(iy * nx + ix)`.
pub fn generate(cfg: &WakeConfig) -> Matrix {
    let tau = 2.0 * std::f64::consts::PI;
    let omega = tau * cfg.shedding_frequency;
    let k1 = tau * 1.5; // fundamental streamwise wavenumber
    let k2 = 2.0 * k1; // harmonic: half wavelength
    Matrix::from_fn(cfg.dof(), cfg.snapshots, |idx, t| {
        let iy = idx / cfg.nx;
        let ix = idx % cfg.nx;
        let xn = ix as f64 / cfg.nx as f64; // 0..1 downstream
        let yn = iy as f64 / cfg.ny as f64 * 2.0 - 1.0; // -1..1 cross-stream
        let time = t as f64 * cfg.dt;
        let growth = (cfg.growth_rate * time).exp();

        let fundamental = cfg.fundamental_amplitude
            * envelope(xn, yn, 2.0)
            * (k1 * xn - omega * time).sin()
            * growth;
        // Harmonic rides the centerline (symmetric), frequency doubled.
        let harmonic = cfg.harmonic_amplitude
            * envelope(xn, yn, 3.5)
            * (k2 * xn - 2.0 * omega * time).cos()
            * growth;
        base_flow(xn, yn) + fundamental + harmonic
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_finiteness() {
        let cfg = WakeConfig::tiny();
        let d = generate(&cfg);
        assert_eq!(d.shape(), (cfg.dof(), cfg.snapshots));
        assert!(d.all_finite());
    }

    #[test]
    fn mean_field_is_the_base_flow() {
        // Oscillatory parts average out over full periods.
        let cfg = WakeConfig { snapshots: 400, ..WakeConfig::tiny() };
        let d = generate(&cfg);
        // Compare temporal mean against t-averaged truth at a probe point.
        let idx = (cfg.ny / 4) * cfg.nx + cfg.nx / 4;
        let mean: f64 = d.row(idx).iter().sum::<f64>() / cfg.snapshots as f64;
        let xn = (cfg.nx / 4) as f64 / cfg.nx as f64;
        let yn = (cfg.ny / 4) as f64 / cfg.ny as f64 * 2.0 - 1.0;
        let expected = base_flow(xn, yn);
        assert!((mean - expected).abs() < 0.05, "mean {mean} vs base {expected}");
    }

    #[test]
    fn spectrum_shows_two_oscillatory_pairs() {
        // Mean + fundamental pair + harmonic pair = 5-ish dominant modes.
        let cfg = WakeConfig::tiny();
        let d = generate(&cfg);
        let f = psvd_linalg::svd(&d);
        assert!(f.s[4] > 1e3 * f.s[5].max(1e-300), "rank ~5 expected: {:?}", &f.s[..7]);
    }

    #[test]
    fn growth_rate_inflates_late_snapshots() {
        let grown = generate(&WakeConfig { growth_rate: 0.2, ..WakeConfig::tiny() });
        let flat = generate(&WakeConfig { growth_rate: 0.0, ..WakeConfig::tiny() });
        let last = grown.col(127);
        let last_flat = flat.col(127);
        let e_grown: f64 = last.iter().map(|x| x * x).sum();
        let e_flat: f64 = last_flat.iter().map(|x| x * x).sum();
        assert!(e_grown > 2.0 * e_flat);
    }

    #[test]
    fn dmd_recovers_shedding_frequency_and_harmonic() {
        // The end-to-end property this generator exists to certify.
        let cfg = WakeConfig::tiny();
        let d = generate(&cfg);
        let result = psvd_core::dmd::dmd(&d, 5, cfg.dt);
        let freqs: Vec<f64> = result.frequencies().iter().map(|f| f.abs()).collect();
        let f_s = cfg.shedding_frequency;
        assert!(
            freqs.iter().any(|&f| (f - f_s).abs() < 0.02),
            "fundamental {f_s} not found in {freqs:?}"
        );
        assert!(
            freqs.iter().any(|&f| (f - 2.0 * f_s).abs() < 0.04),
            "harmonic {} not found in {freqs:?}",
            2.0 * f_s
        );
        assert!(
            freqs.iter().any(|&f| f.abs() < 1e-6),
            "steady base-flow mode (f = 0) not found in {freqs:?}"
        );
    }

    #[test]
    fn dmd_measures_planted_growth_rate() {
        let cfg = WakeConfig { growth_rate: 0.15, ..WakeConfig::tiny() };
        let d = generate(&cfg);
        let result = psvd_core::dmd::dmd(&d, 5, cfg.dt);
        // The fundamental's continuous eigenvalue must carry Re ~ 0.15.
        let target = result
            .continuous_eigenvalues()
            .iter()
            .find(|w| {
                (w.im.abs() / (2.0 * std::f64::consts::PI) - cfg.shedding_frequency).abs() < 0.05
            })
            .copied()
            .expect("fundamental found");
        assert!((target.re - 0.15).abs() < 0.01, "growth {} vs planted 0.15", target.re);
    }
}
