//! Cholesky factorization and CholeskyQR2.
//!
//! CholeskyQR2 is the modern bandwidth-optimal competitor to Householder
//! TSQR for tall-skinny factorizations: form the Gram matrix, Cholesky it,
//! triangular-solve for `Q`, and repeat once ("2") to recover the
//! orthogonality the squared condition number of the first pass loses. Two
//! passes over `A`, one reduction each — on distributed hardware this is
//! two allreduces instead of TSQR's tree of QR factorizations.

use crate::gemm::gram;
use crate::matrix::Matrix;
use crate::qr::QrFactors;

/// Cholesky factor `L` (lower triangular, `A = L Lᵀ`) of a symmetric
/// positive-definite matrix, or `None` if a pivot is non-positive.
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "cholesky: matrix must be square");
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[(i, i)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solve `X R = A` for `X`, with `R` upper triangular (`R = Lᵀ`): one
/// forward substitution per row of `A`.
fn solve_right_upper(a: &Matrix, r: &Matrix) -> Matrix {
    let (m, n) = a.shape();
    assert_eq!(r.shape(), (n, n), "triangular factor shape mismatch");
    let mut x = a.clone();
    for i in 0..m {
        for j in 0..n {
            let mut acc = x[(i, j)];
            for k in 0..j {
                acc -= x[(i, k)] * r[(k, j)];
            }
            x[(i, j)] = acc / r[(j, j)];
        }
    }
    x
}

/// CholeskyQR2: thin QR of a tall full-rank matrix via two Gram–Cholesky
/// passes. Returns `None` when the Gram matrix is numerically indefinite
/// (rank-deficient input — fall back to Householder).
pub fn cholesky_qr2(a: &Matrix) -> Option<QrFactors> {
    let (m, n) = a.shape();
    assert!(m >= n, "cholesky_qr2 requires a tall matrix");
    // Pass 1.
    let l1 = cholesky(&gram(a))?;
    let r1 = l1.transpose();
    let q1 = solve_right_upper(a, &r1);
    // Pass 2 restores orthogonality lost to cond(A)^2.
    let l2 = cholesky(&gram(&q1))?;
    let r2 = l2.transpose();
    let q = solve_right_upper(&q1, &r2);
    let r = crate::gemm::matmul(&r2, &r1);
    Some(QrFactors { q, r })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::orthogonality_error;
    use crate::qr::{reconstruction_error, thin_qr};
    use crate::random::{gaussian_matrix, matrix_with_spectrum, seeded_rng};

    #[test]
    fn cholesky_reconstructs_spd() {
        let b = gaussian_matrix(20, 6, &mut seeded_rng(1));
        let a = gram(&b); // SPD w.h.p.
        let l = cholesky(&a).expect("SPD");
        let rec = matmul(&l, &l.transpose());
        assert!((&rec - &a).max_abs() < 1e-10);
        // Lower triangular.
        for i in 0..6 {
            for j in i + 1..6 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_diag(&[1.0, -1.0]);
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn choleskyqr2_matches_householder() {
        let a = gaussian_matrix(60, 10, &mut seeded_rng(2));
        let f = cholesky_qr2(&a).expect("full rank");
        assert!(reconstruction_error(&a, &f) < 1e-12);
        assert!(orthogonality_error(&f.q) < 1e-13, "CholQR2 must restore orthogonality");
        // Canonical R diagonal is positive by construction (Cholesky).
        let h = thin_qr(&a);
        assert!((&f.r - &h.r).max_abs() < 1e-9 * h.r.max_abs());
    }

    #[test]
    fn choleskyqr2_moderately_ill_conditioned() {
        // cond ~ 1e5: single-pass CholeskyQR would lose ~1e-6 of
        // orthogonality (eps * cond^2 overflows single precision budgets);
        // the second pass repairs it.
        let spec: Vec<f64> = (0..8).map(|i| 10f64.powf(-(5.0 * i as f64 / 7.0))).collect();
        let a = matrix_with_spectrum(50, 8, &spec, &mut seeded_rng(3));
        let f = cholesky_qr2(&a).expect("numerically full rank");
        assert!(orthogonality_error(&f.q) < 1e-12);
        assert!(reconstruction_error(&a, &f) < 1e-10);
    }

    #[test]
    fn choleskyqr2_detects_rank_deficiency() {
        let c: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let a = Matrix::from_columns(&[c.clone(), c.clone()]);
        assert!(cholesky_qr2(&a).is_none(), "exactly repeated columns must be rejected");
    }

    #[test]
    fn triangular_solve_contract() {
        let r = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 3.0]]);
        let a = Matrix::from_rows(&[vec![4.0, 8.0], vec![2.0, 10.0]]);
        let x = solve_right_upper(&a, &r);
        assert!((&matmul(&x, &r) - &a).max_abs() < 1e-12);
    }
}
