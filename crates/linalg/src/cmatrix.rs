//! Dense complex matrices — the minimum needed by the general eigensolver
//! and DMD: construction from real matrices, products, LU solves, and
//! column utilities.

use crate::complex::Complex;
use crate::matrix::Matrix;
use std::ops::{Index, IndexMut};

/// A dense row-major complex matrix.
#[derive(Clone, PartialEq, Debug)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![Complex::ZERO; rows * cols] }
    }

    /// Identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Promote a real matrix.
    pub fn from_real(a: &Matrix) -> Self {
        Self::from_fn(a.rows(), a.cols(), |i, j| Complex::real(a[(i, j)]))
    }

    /// Build from complex columns.
    pub fn from_columns(cols: &[Vec<Complex>]) -> Self {
        let ncols = cols.len();
        let nrows = cols.first().map_or(0, Vec::len);
        let mut m = Self::zeros(nrows, ncols);
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), nrows, "ragged column");
            for (i, &v) in c.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Copy column `j`. Allocates; prefer
    /// [`col_iter`](CMatrix::col_iter) in hot paths.
    pub fn col(&self, j: usize) -> Vec<Complex> {
        self.col_iter(j).collect()
    }

    /// Iterate over column `j` without allocating.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = Complex> + '_ {
        debug_assert!(j < self.cols);
        (0..self.rows).map(move |i| self[(i, j)])
    }

    /// The real parts as a real matrix.
    pub fn real_part(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)].re)
    }

    /// The imaginary parts as a real matrix.
    pub fn imag_part(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)].im)
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Matrix product.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "cmatmul: dimension mismatch");
        let mut c = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == Complex::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = aik * rhs[(k, j)];
                    c[(i, j)] += v;
                }
            }
        }
        c
    }

    /// Matrix-vector product.
    pub fn matvec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(self.cols, x.len(), "cmatvec: dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = Complex::ZERO;
                for j in 0..self.cols {
                    acc += self[(i, j)] * x[j];
                }
                acc
            })
            .collect()
    }

    /// Scale every entry.
    pub fn scaled(&self, s: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Max entry magnitude.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |a, z| a.max(z.abs()))
    }

    /// Solve `self * x = b` by LU with partial pivoting (square only).
    /// Returns `None` when a pivot is exactly zero (singular to working
    /// precision at that step).
    pub fn lu_solve(&self, b: &[Complex]) -> Option<Vec<Complex>> {
        let n = self.rows;
        assert_eq!(n, self.cols, "lu_solve: matrix must be square");
        assert_eq!(n, b.len(), "lu_solve: rhs length mismatch");
        let mut a = self.clone();
        let mut x = b.to_vec();
        // Elimination with partial pivoting.
        for k in 0..n {
            // Pivot row.
            let mut p = k;
            let mut best = a[(k, k)].abs();
            for i in k + 1..n {
                let mag = a[(i, k)].abs();
                if mag > best {
                    best = mag;
                    p = i;
                }
            }
            if best == 0.0 {
                return None;
            }
            if p != k {
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = tmp;
                }
                x.swap(k, p);
            }
            let pivot = a[(k, k)];
            for i in k + 1..n {
                let factor = a[(i, k)] / pivot;
                if factor == Complex::ZERO {
                    continue;
                }
                for j in k..n {
                    let v = factor * a[(k, j)];
                    a[(i, j)] -= v;
                }
                let v = factor * x[k];
                x[i] -= v;
            }
        }
        // Back-substitution.
        for k in (0..n).rev() {
            let mut acc = x[k];
            for j in k + 1..n {
                acc -= a[(k, j)] * x[j];
            }
            x[k] = acc / a[(k, k)];
        }
        Some(x)
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Euclidean norm of a complex vector.
pub fn cvec_norm(v: &[Complex]) -> f64 {
    v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Hermitian inner product `⟨a, b⟩ = Σ conj(a_i) b_i`.
pub fn cvec_dot(a: &[Complex], b: &[Complex]) -> Complex {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).fold(Complex::ZERO, |acc, (x, y)| acc + x.conj() * *y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gaussian_matrix, seeded_rng};

    fn random_cmatrix(n: usize, seed: u64) -> CMatrix {
        let re = gaussian_matrix(n, n, &mut seeded_rng(seed));
        let im = gaussian_matrix(n, n, &mut seeded_rng(seed + 1000));
        CMatrix::from_fn(n, n, |i, j| Complex::new(re[(i, j)], im[(i, j)]))
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_cmatrix(5, 1);
        let i = CMatrix::identity(5);
        assert!((a.matmul(&i).max_abs() - a.max_abs()).abs() < 1e-14);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn adjoint_involution_and_product_rule() {
        let a = random_cmatrix(4, 2);
        let b = random_cmatrix(4, 3);
        assert_eq!(a.adjoint().adjoint(), a);
        // (AB)* = B* A*.
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        let mut err = 0.0f64;
        for i in 0..4 {
            for j in 0..4 {
                err = err.max((lhs[(i, j)] - rhs[(i, j)]).abs());
            }
        }
        assert!(err < 1e-12);
    }

    #[test]
    fn lu_solve_roundtrip() {
        let a = random_cmatrix(8, 4);
        let x_true: Vec<Complex> =
            (0..8).map(|i| Complex::new((i as f64).sin(), (i as f64).cos())).collect();
        let b = a.matvec(&x_true);
        let x = a.lu_solve(&b).expect("nonsingular");
        for (got, want) in x.iter().zip(&x_true) {
            assert!((*got - *want).abs() < 1e-10, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn lu_detects_singular() {
        let mut a = CMatrix::zeros(3, 3);
        a[(0, 0)] = Complex::ONE;
        a[(1, 1)] = Complex::ONE;
        // Row 2 is zero -> singular.
        assert!(a.lu_solve(&[Complex::ONE; 3]).is_none());
    }

    #[test]
    fn real_promotion_roundtrip() {
        let a = gaussian_matrix(4, 3, &mut seeded_rng(9));
        let c = CMatrix::from_real(&a);
        assert_eq!(c.real_part(), a);
        assert_eq!(c.imag_part().max_abs(), 0.0);
    }

    #[test]
    fn vector_helpers() {
        let a = vec![Complex::new(3.0, 4.0)];
        assert!((cvec_norm(&a) - 5.0).abs() < 1e-14);
        let b = vec![Complex::new(1.0, 0.0)];
        // <a, b> = conj(3+4i) * 1 = 3 - 4i.
        assert!((cvec_dot(&a, &b) - Complex::new(3.0, -4.0)).abs() < 1e-14);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = random_cmatrix(5, 7);
        let x: Vec<Complex> = (0..5).map(|i| Complex::new(i as f64, -1.0)).collect();
        let y = a.matvec(&x);
        let xm = CMatrix::from_columns(&[x]);
        let ym = a.matmul(&xm);
        for i in 0..5 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-13);
        }
    }
}
