//! Minimal complex arithmetic (no external crates).
//!
//! Supports the FFT, the general eigensolver, and DMD's complex
//! eigenvalues/modes. Only what those callers need — this is not a general
//! complex-analysis library.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` parts.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real value.
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Magnitude `|z|` (hypot, overflow-safe).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (atan2).
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `e^{i theta}` on the unit circle.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// Complex exponential.
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Natural logarithm (principal branch).
    pub fn ln(self) -> Self {
        Self { re: self.abs().ln(), im: self.arg() }
    }

    /// Reciprocal.
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self { re: self.re / d, im: -self.im / d }
    }

    /// Square root (principal branch).
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }

    /// True when both parts are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        // Smith's algorithm for robustness against over/underflow.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex { re: (self.re + self.im * r) / d, im: (self.im - self.re * r) / d }
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex { re: (self.re * r + self.im) / d, im: (self.im * r - self.re) / d }
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6e}+{:.6e}i", self.re, self.im)
        } else {
            write!(f, "{:.6e}-{:.6e}i", self.re, -self.im)
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0)); // (1+2i)(3-i) = 3-i+6i+2 = 5+5i
        assert!(close(a / b, a * b.recip(), 1e-14));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(0.7, -1.3);
        let b = Complex::new(-2.4, 0.9);
        assert!(close((a * b) / b, a, 1e-13));
        // Smith's algorithm branches: both orderings of |re| vs |im|.
        let c = Complex::new(1e-8, 5.0);
        assert!(close((a * c) / c, a, 1e-12));
    }

    #[test]
    fn conjugate_and_modulus() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert!(close(a * a.conj(), Complex::real(25.0), 1e-14));
    }

    #[test]
    fn polar_and_exp() {
        let i = Complex::I;
        // Euler: e^{i pi} = -1.
        let e = (i.scale(std::f64::consts::PI)).exp();
        assert!(close(e, Complex::real(-1.0), 1e-14));
        let z = Complex::from_polar(2.0, 0.5);
        assert!((z.abs() - 2.0).abs() < 1e-14);
        assert!((z.arg() - 0.5).abs() < 1e-14);
    }

    #[test]
    fn ln_inverts_exp() {
        let z = Complex::new(0.3, 1.2);
        assert!(close(z.exp().ln(), z, 1e-13));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[Complex::new(2.0, 3.0), Complex::new(-1.0, 0.5), Complex::real(-4.0)] {
            let s = z.sqrt();
            assert!(close(s * s, z, 1e-12), "sqrt({z:?})² = {:?}", s * s);
        }
        // Principal branch: sqrt(-4) = 2i.
        assert!(close(Complex::real(-4.0).sqrt(), Complex::new(0.0, 2.0), 1e-14));
    }

    #[test]
    fn assign_ops() {
        let mut a = Complex::new(1.0, 1.0);
        a += Complex::ONE;
        a -= Complex::I;
        a *= Complex::new(2.0, 0.0);
        assert_eq!(a, Complex::new(4.0, 0.0));
    }
}
