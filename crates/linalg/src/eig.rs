//! Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//!
//! Used by the method-of-snapshots path of APMOS: the right singular vectors
//! of a tall local block `A` are the eigenvectors of the (small) Gram matrix
//! `AᵀA`, and the singular values are the square roots of its eigenvalues.
//! Jacobi is slow asymptotically but extremely robust and accurate on the
//! small (`N x N`, `N` = snapshot count) matrices that appear here.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Eigendecomposition of a symmetric matrix: `a = V diag(λ) Vᵀ`,
/// eigenvalues sorted in descending order.
#[derive(Clone, Debug)]
pub struct SymEig<T: Scalar = f64> {
    /// Eigenvalues, descending.
    pub values: Vec<T>,
    /// Eigenvectors as columns, in the same order as `values`.
    pub vectors: Matrix<T>,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// The input must be symmetric; only its upper triangle is trusted (the
/// matrix is symmetrized internally to guard against round-off asymmetry
/// from Gram-matrix accumulation). Panics if `a` is not square.
pub fn sym_eig<T: Scalar>(a: &Matrix<T>) -> SymEig<T> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "sym_eig: matrix must be square");
    if n == 0 {
        return SymEig { values: Vec::new(), vectors: Matrix::zeros(0, 0) };
    }

    // Work on a symmetrized copy.
    let half = T::from_f64(0.5);
    let mut m = Matrix::from_fn(n, n, |i, j| half * (a[(i, j)] + a[(j, i)]));
    let mut v = Matrix::identity(n);

    // Convergence threshold scaled to the dtype's epsilon; the factor is
    // exactly 1e-15 at f64 (the pre-generic value, preserving bits) and
    // the epsilon-ratio-scaled equivalent (~5.4e-7) at f32.
    let scale = m.max_abs().max(T::from_f64(1e-300));
    let tol = T::from_f64(1e-15 * (T::EPSILON.to_f64() / f64::EPSILON)) * scale;

    for _sweep in 0..MAX_SWEEPS {
        let mut off: T = T::ZERO;
        for i in 0..n {
            for j in i + 1..n {
                off = off.max(m[(i, j)].abs());
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol * T::from_f64(1e-2) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic Jacobi rotation: choose t = tan(theta) stably.
                let theta = (aqq - app) / (T::from_f64(2.0) * apq);
                let t = if theta >= T::ZERO {
                    T::ONE / (theta + (T::ONE + theta * theta).sqrt())
                } else {
                    T::ONE / (theta - (T::ONE + theta * theta).sqrt())
                };
                let c = T::ONE / (T::ONE + t * t).sqrt();
                let s = t * c;

                // Update M = Jᵀ M J on rows/cols p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors V = V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract, sort descending, and canonicalize vector signs (largest-|entry|
    // component positive) so results are deterministic.
    let mut pairs: Vec<(T, Vec<T>)> = (0..n).map(|i| (m[(i, i)], v.col(i))).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN eigenvalue"));
    let values: Vec<T> = pairs.iter().map(|p| p.0).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (j, (_, col)) in pairs.iter().enumerate() {
        let mut col = col.clone();
        let pivot = col
            .iter()
            .cloned()
            .fold(
                (T::ZERO, T::ZERO),
                |(mx, val), x| if x.abs() > mx { (x.abs(), x) } else { (mx, val) },
            )
            .1;
        if pivot < T::ZERO {
            for x in &mut col {
                *x = -*x;
            }
        }
        vectors.set_col(j, &col);
    }
    SymEig { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gram, matmul};
    use crate::norms::orthogonality_error;

    #[test]
    fn eig_of_diagonal() {
        let a = Matrix::from_diag(&[1.0, 5.0, 3.0]);
        let e = sym_eig(&a);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eig_reconstructs() {
        let n = 12;
        let b = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) as f64).sin());
        let a = Matrix::from_fn(n, n, |i, j| 0.5 * (b[(i, j)] + b[(j, i)]));
        let e = sym_eig(&a);
        let lam = Matrix::from_diag(&e.values);
        let rec = matmul(&matmul(&e.vectors, &lam), &e.vectors.transpose());
        assert!((&rec - &a).max_abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let n = 15;
        let g = gram(&Matrix::from_fn(40, n, |i, j| ((i + j * j) as f64 * 0.1).cos()));
        let e = sym_eig(&g);
        assert!(orthogonality_error(&e.vectors) < 1e-11);
    }

    #[test]
    fn eigenvalues_descending_and_gram_nonnegative() {
        let g = gram(&Matrix::from_fn(30, 8, |i, j| ((i * 3 + j) as f64 * 0.37).sin()));
        let e = sym_eig(&g);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        for &v in &e.values {
            assert!(v >= -1e-10, "Gram eigenvalue should be nonnegative, got {v}");
        }
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = sym_eig(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-13);
        assert!((e.values[1] - 1.0).abs() < 1e-13);
        // Leading eigenvector proportional to [1, 1]/sqrt(2).
        let x = e.vectors.col(0);
        assert!((x[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((x[0] - x[1]).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let e = sym_eig(&Matrix::<f64>::zeros(0, 0));
        assert!(e.values.is_empty());
        let e1 = sym_eig(&Matrix::from_diag(&[7.0]));
        assert_eq!(e1.values, vec![7.0]);
        assert_eq!(e1.vectors[(0, 0)], 1.0);
    }

    #[test]
    fn repeated_eigenvalues() {
        let a = Matrix::identity(6).scaled(4.0);
        let e = sym_eig(&a);
        for &v in &e.values {
            assert!((v - 4.0).abs() < 1e-13);
        }
        assert!(orthogonality_error(&e.vectors) < 1e-12);
    }
}
