//! General (nonsymmetric) eigendecomposition.
//!
//! Eigenvalues come from the real Schur form ([`crate::schur`]);
//! eigenvectors from one step of inverse iteration with a complex LU solve
//! on a slightly shifted matrix — the textbook-robust route for the small
//! matrices DMD factorizes (the shift perturbation makes `A − λ̃I`
//! invertible while keeping the dominant solution direction aligned with
//! the true eigenvector).

use crate::cmatrix::{cvec_norm, CMatrix};
use crate::complex::Complex;
use crate::matrix::Matrix;
use crate::schur::{real_schur, schur_eigenvalues};

/// A general eigendecomposition: `values[i]`, `vectors` column `i` with
/// `A v_i ≈ λ_i v_i`. Complex conjugate pairs appear adjacently.
#[derive(Clone, Debug)]
pub struct GeneralEig {
    /// Eigenvalues.
    pub values: Vec<Complex>,
    /// Unit eigenvectors as columns.
    pub vectors: CMatrix,
    /// Residuals `‖A v_i − λ_i v_i‖₂` (diagnostic; tiny for non-defective
    /// well-separated spectra).
    pub residuals: Vec<f64>,
}

/// Number of inverse-iteration refinement steps.
const REFINE_STEPS: usize = 3;

/// Eigendecomposition of a square real matrix.
pub fn general_eig(a: &Matrix) -> GeneralEig {
    let n = a.rows();
    assert_eq!(n, a.cols(), "general_eig: matrix must be square");
    let schur = real_schur(a);
    let values = schur_eigenvalues(&schur.t);
    let ac = CMatrix::from_real(a);
    let scale = a.max_abs().max(f64::MIN_POSITIVE);

    let mut vectors = CMatrix::zeros(n, n);
    let mut residuals = Vec::with_capacity(n);
    for (j, &lambda) in values.iter().enumerate() {
        let v = inverse_iteration(&ac, lambda, scale, j);
        let av = ac.matvec(&v);
        let mut resid = 0.0f64;
        for i in 0..n {
            resid += (av[i] - lambda * v[i]).norm_sqr();
        }
        residuals.push(resid.sqrt());
        for i in 0..n {
            vectors[(i, j)] = v[i];
        }
    }
    GeneralEig { values, vectors, residuals }
}

fn inverse_iteration(ac: &CMatrix, lambda: Complex, scale: f64, seed: usize) -> Vec<Complex> {
    let n = ac.rows();
    // Deterministic pseudo-random start, different per eigenvalue index so
    // degenerate pairs don't collapse to the same vector.
    let mut v: Vec<Complex> = (0..n)
        .map(|i| {
            let t = (i * 37 + seed * 101 + 13) as f64;
            Complex::new((t * 0.734).sin() + 0.1, (t * 0.421).cos())
        })
        .collect();
    normalize(&mut v);

    // Shift slightly off the eigenvalue so the solve is well-posed; the
    // smaller the shift, the faster the convergence toward v(lambda).
    let mut eps = 1e-10 * scale;
    for _attempt in 0..6 {
        let shifted = shift(ac, lambda + Complex::real(eps));
        let mut ok = true;
        let mut w = v.clone();
        for _ in 0..REFINE_STEPS {
            match shifted.lu_solve(&w) {
                Some(next) => {
                    w = next;
                    normalize(&mut w);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            // Canonical phase: largest-magnitude entry made real-positive,
            // so conjugate-pair vectors come out as conjugates.
            canonical_phase(&mut w);
            return w;
        }
        eps *= 100.0;
    }
    // Singular at every shift (pathological); return the start vector.
    v
}

fn shift(ac: &CMatrix, lambda: Complex) -> CMatrix {
    let n = ac.rows();
    let mut s = ac.clone();
    for i in 0..n {
        s[(i, i)] -= lambda;
    }
    s
}

fn normalize(v: &mut [Complex]) {
    let norm = cvec_norm(v);
    if norm > 0.0 {
        for z in v.iter_mut() {
            *z = z.scale(1.0 / norm);
        }
    }
}

fn canonical_phase(v: &mut [Complex]) {
    let mut best = 0usize;
    let mut mag = 0.0f64;
    for (i, z) in v.iter().enumerate() {
        if z.abs() > mag {
            mag = z.abs();
            best = i;
        }
    }
    if mag > 0.0 {
        let phase = v[best].scale(1.0 / mag); // unit modulus
        let correction = phase.conj();
        for z in v.iter_mut() {
            *z *= correction;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gaussian_matrix, seeded_rng};

    fn check(a: &Matrix, tol: f64) -> GeneralEig {
        let e = general_eig(a);
        for (j, &r) in e.residuals.iter().enumerate() {
            assert!(
                r < tol * a.max_abs().max(1.0),
                "residual {r} for eigenvalue {:?}",
                e.values[j]
            );
        }
        e
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, -1.0, 0.5]);
        let e = check(&a, 1e-10);
        let mut re: Vec<f64> = e.values.iter().map(|z| z.re).collect();
        re.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((re[0] - -1.0).abs() < 1e-12);
        assert!((re[1] - 0.5).abs() < 1e-12);
        assert!((re[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_scaling_matrix() {
        // r*R(theta): eigenvalues r e^{±i theta}.
        let (r, th) = (0.9f64, 0.6f64);
        let a = Matrix::from_rows(&[
            vec![r * th.cos(), -r * th.sin()],
            vec![r * th.sin(), r * th.cos()],
        ]);
        let e = check(&a, 1e-9);
        for z in &e.values {
            assert!((z.abs() - r).abs() < 1e-10);
            assert!((z.arg().abs() - th).abs() < 1e-10);
        }
        // Eigenvectors of the conjugate pair are conjugates of each other
        // (up to phase; canonical phase makes it exact).
        let v0 = e.vectors.col(0);
        let v1 = e.vectors.col(1);
        for (a, b) in v0.iter().zip(&v1) {
            assert!((*a - b.conj()).abs() < 1e-8, "{a:?} vs conj {b:?}");
        }
    }

    #[test]
    fn random_matrices_small_residuals() {
        for seed in 0..5 {
            let a = gaussian_matrix(9, 9, &mut seeded_rng(seed));
            check(&a, 1e-7);
        }
    }

    #[test]
    fn eigenvectors_unit_norm() {
        let a = gaussian_matrix(6, 6, &mut seeded_rng(42));
        let e = general_eig(&a);
        for j in 0..6 {
            let v = e.vectors.col(j);
            assert!((cvec_norm(&v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn known_nonsymmetric_system() {
        // [[0, 1], [-2, -3]] has eigenvalues -1 and -2.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![-2.0, -3.0]]);
        let e = check(&a, 1e-10);
        let mut re: Vec<f64> = e.values.iter().map(|z| z.re).collect();
        re.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((re[0] - -2.0).abs() < 1e-10);
        assert!((re[1] - -1.0).abs() < 1e-10);
    }

    #[test]
    fn oscillator_eigenvalues_on_unit_circle() {
        // Companion-form one-step map of an undamped oscillator.
        let dt = 0.1f64;
        let w = 2.0f64; // natural frequency
                        // Exact discrete map for x'' = -w² x: [cos, sin/w; -w sin, cos].
        let a = Matrix::from_rows(&[
            vec![(w * dt).cos(), (w * dt).sin() / w],
            vec![-w * (w * dt).sin(), (w * dt).cos()],
        ]);
        let e = check(&a, 1e-9);
        for z in &e.values {
            assert!((z.abs() - 1.0).abs() < 1e-10, "|lambda| = {}", z.abs());
            // Discrete-time frequency: arg(lambda)/dt = ±w.
            assert!((z.arg().abs() / dt - w).abs() < 1e-9);
        }
    }
}
