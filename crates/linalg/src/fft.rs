//! Fast Fourier transform (iterative radix-2 Cooley–Tukey, plus a Bluestein
//! fallback for arbitrary lengths).
//!
//! Powers the SPOD module: Welch-segmented spectral estimation FFTs each
//! grid point's time series. Implemented from scratch on [`Complex`].

use crate::complex::Complex;

/// In-place forward FFT. Length must be a power of two.
pub fn fft_pow2(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft_pow2: length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// In-place inverse FFT (normalized by `1/n`). Length must be a power of two.
pub fn ifft_pow2(data: &mut [Complex]) {
    let n = data.len();
    for z in data.iter_mut() {
        *z = z.conj();
    }
    fft_pow2(data);
    let scale = 1.0 / n as f64;
    for z in data.iter_mut() {
        *z = z.conj().scale(scale);
    }
}

/// Forward FFT of arbitrary length via Bluestein's chirp-z transform
/// (falls through to the radix-2 path when the length is a power of two).
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut data = input.to_vec();
        fft_pow2(&mut data);
        return data;
    }
    // Bluestein: X_k = conj(w_k) * ( (x_j w_j) convolved with conj(w) )_k,
    // with w_j = e^{-i pi j^2 / n}, via power-of-two cyclic convolution.
    let m = (2 * n - 1).next_power_of_two();
    let chirp: Vec<Complex> = (0..n)
        .map(|j| {
            // j^2 mod 2n avoids precision loss for large j.
            let jj = (j * j) % (2 * n);
            Complex::from_polar(1.0, -std::f64::consts::PI * jj as f64 / n as f64)
        })
        .collect();
    let mut a = vec![Complex::ZERO; m];
    for j in 0..n {
        a[j] = input[j] * chirp[j];
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for j in 1..n {
        let c = chirp[j].conj();
        b[j] = c;
        b[m - j] = c;
    }
    fft_pow2(&mut a);
    fft_pow2(&mut b);
    for (x, y) in a.iter_mut().zip(&b) {
        *x *= *y;
    }
    ifft_pow2(&mut a);
    (0..n).map(|k| a[k] * chirp[k]).collect()
}

/// FFT of a real sequence; returns the full complex spectrum (length `n`).
pub fn rfft(input: &[f64]) -> Vec<Complex> {
    let data: Vec<Complex> = input.iter().map(|&x| Complex::real(x)).collect();
    fft(&data)
}

/// The FFT bin frequencies for sample spacing `dt` (cycles per unit time),
/// in standard FFT order (non-negative then negative frequencies).
pub fn fft_frequencies(n: usize, dt: f64) -> Vec<f64> {
    let df = 1.0 / (n as f64 * dt);
    (0..n)
        .map(|k| {
            let signed = if k <= (n - 1) / 2 { k as f64 } else { k as f64 - n as f64 };
            signed * df
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &x) in input.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc += x * Complex::from_polar(1.0, ang);
                }
                acc
            })
            .collect()
    }

    fn wave(n: usize) -> Vec<Complex> {
        (0..n).map(|j| Complex::new((j as f64 * 0.7).sin(), (j as f64 * 0.3).cos())).collect()
    }

    #[test]
    fn matches_naive_dft_pow2() {
        let x = wave(32);
        let fast = fft(&x);
        let slow = naive_dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-10, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn matches_naive_dft_arbitrary_lengths() {
        for n in [3usize, 5, 6, 7, 12, 15, 100] {
            let x = wave(n);
            let fast = fft(&x);
            let slow = naive_dft(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).abs() < 1e-9, "n={n}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn roundtrip_pow2() {
        let x = wave(64);
        let mut data = x.clone();
        fft_pow2(&mut data);
        ifft_pow2(&mut data);
        for (a, b) in data.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        let f = fft(&x);
        for z in f {
            assert!((z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|j| (2.0 * std::f64::consts::PI * k0 as f64 * j as f64 / n as f64).cos())
            .collect();
        let f = rfft(&x);
        // Energy splits between bins k0 and n-k0, each with magnitude n/2.
        assert!((f[k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((f[n - k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (k, z) in f.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(z.abs() < 1e-9, "leak at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn parseval_identity() {
        let x = wave(48); // non-power-of-two
        let f = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = f.iter().map(|z| z.norm_sqr()).sum::<f64>() / 48.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn frequencies_layout() {
        let f = fft_frequencies(8, 0.5); // df = 1/(8*0.5) = 0.25
        assert_eq!(f[0], 0.0);
        assert!((f[1] - 0.25).abs() < 1e-15);
        assert!((f[4] - -1.0).abs() < 1e-15); // Nyquist mapped negative
        assert!((f[7] - -0.25).abs() < 1e-15);
        // Odd length: symmetric around zero without a Nyquist bin.
        let g = fft_frequencies(5, 1.0);
        assert!((g[2] - 0.4).abs() < 1e-15);
        assert!((g[3] - -0.4).abs() < 1e-15);
    }

    #[test]
    fn empty_and_single() {
        assert!(fft(&[]).is_empty());
        let one = fft(&[Complex::new(2.5, -1.0)]);
        assert_eq!(one, vec![Complex::new(2.5, -1.0)]);
    }
}
