//! Matrix multiplication kernels.
//!
//! A cache-blocked, i-k-j ordered GEMM; transpose-aware variants avoid
//! materializing explicit transposes for the common `AᵀB` and `ABᵀ` patterns
//! that appear in the SVD drivers (Gram matrices, projections).

use crate::matrix::Matrix;

/// Cache block edge for the blocked kernels.
const BLOCK: usize = 64;

/// `C = A * B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions mismatch {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    // i-k-j loop order: the innermost loop streams rows of B and C, which is
    // the cache-friendly order for row-major data.
    let cd = c.as_mut_slice();
    let ad = a.as_slice();
    let bd = b.as_slice();
    for ib in (0..m).step_by(BLOCK) {
        for kb in (0..k).step_by(BLOCK) {
            for jb in (0..n).step_by(BLOCK) {
                let imax = (ib + BLOCK).min(m);
                let kmax = (kb + BLOCK).min(k);
                let jmax = (jb + BLOCK).min(n);
                for i in ib..imax {
                    for kk in kb..kmax {
                        let aik = ad[i * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &bd[kk * n + jb..kk * n + jmax];
                        let crow = &mut cd[i * n + jb..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
    c
}

/// `C = Aᵀ * B` without materializing `Aᵀ`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: row counts must match");
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    let cd = c.as_mut_slice();
    let ad = a.as_slice();
    let bd = b.as_slice();
    for kk in 0..k {
        let arow = &ad[kk * m..(kk + 1) * m];
        let brow = &bd[kk * n..(kk + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let crow = &mut cd[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aki * bv;
            }
        }
    }
    c
}

/// `C = A * Bᵀ` without materializing `Bᵀ`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: column counts must match");
    let (m, n) = (a.rows(), b.rows());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = b.row(j);
            let mut s = 0.0;
            for (av, bv) in arow.iter().zip(brow) {
                s += av * bv;
            }
            c[(i, j)] = s;
        }
    }
    c
}

/// `y = A * x`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
    (0..a.rows())
        .map(|i| a.row(i).iter().zip(x).map(|(av, xv)| av * xv).sum())
        .collect()
}

/// `y = Aᵀ * x`.
pub fn matvec_t(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows(), x.len(), "matvec_t: dimension mismatch");
    let mut y = vec![0.0; a.cols()];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        for (yv, av) in y.iter_mut().zip(a.row(i)) {
            *yv += av * xi;
        }
    }
    y
}

/// The Gram matrix `AᵀA` (symmetric; computed once and mirrored).
pub fn gram(a: &Matrix) -> Matrix {
    let n = a.cols();
    let mut g = Matrix::zeros(n, n);
    for kk in 0..a.rows() {
        let row = a.row(kk);
        for i in 0..n {
            let ri = row[i];
            if ri == 0.0 {
                continue;
            }
            for j in i..n {
                g[(i, j)] += ri * row[j];
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            g[(i, j)] = g[(j, i)];
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn test_mat(r: usize, c: usize, seed: f64) -> Matrix {
        Matrix::from_fn(r, c, |i, j| ((i * 31 + j * 17) as f64 * seed).sin())
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_matches_naive_rectangular() {
        let a = test_mat(37, 53, 0.7);
        let b = test_mat(53, 29, 1.3);
        let c = matmul(&a, &b);
        let d = naive(&a, &b);
        assert!((&c - &d).max_abs() < 1e-12);
    }

    #[test]
    fn matmul_crosses_block_boundaries() {
        let a = test_mat(130, 70, 0.3);
        let b = test_mat(70, 65, 0.9);
        assert!((&matmul(&a, &b) - &naive(&a, &b)).max_abs() < 1e-11);
    }

    #[test]
    fn matmul_identity() {
        let a = test_mat(20, 20, 0.5);
        let i = Matrix::identity(20);
        assert!((&matmul(&a, &i) - &a).max_abs() < 1e-15);
        assert!((&matmul(&i, &a) - &a).max_abs() < 1e-15);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = test_mat(40, 13, 0.2);
        let b = test_mat(40, 21, 0.4);
        let c = matmul_tn(&a, &b);
        let d = matmul(&a.transpose(), &b);
        assert!((&c - &d).max_abs() < 1e-12);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = test_mat(23, 40, 0.2);
        let b = test_mat(31, 40, 0.4);
        let c = matmul_nt(&a, &b);
        let d = matmul(&a, &b.transpose());
        assert!((&c - &d).max_abs() < 1e-12);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = test_mat(17, 9, 0.8);
        let x: Vec<f64> = (0..9).map(|i| (i as f64).cos()).collect();
        let y = matvec(&a, &x);
        let xm = Matrix::from_columns(std::slice::from_ref(&x));
        let ym = matmul(&a, &xm);
        for i in 0..17 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-13);
        }
    }

    #[test]
    fn matvec_t_matches() {
        let a = test_mat(17, 9, 0.8);
        let x: Vec<f64> = (0..17).map(|i| (i as f64).cos()).collect();
        let y = matvec_t(&a, &x);
        let expected = matvec(&a.transpose(), &x);
        for (yv, ev) in y.iter().zip(&expected) {
            assert!((yv - ev).abs() < 1e-13);
        }
    }

    #[test]
    fn gram_matches_tn() {
        let a = test_mat(50, 12, 0.6);
        let g = gram(&a);
        let g2 = matmul_tn(&a, &a);
        assert!((&g - &g2).max_abs() < 1e-12);
        // Symmetry.
        assert!((&g - &g.transpose()).max_abs() == 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        matmul(&a, &b);
    }
}
