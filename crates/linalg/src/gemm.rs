//! Matrix multiplication kernels.
//!
//! Two tiers share one public API:
//!
//! * [`reference`] — simple cache-blocked serial loops. These are the
//!   semantic ground truth: easy to audit, tested directly against naive
//!   triple loops, and used verbatim for problems too small to amortize
//!   packing and thread dispatch.
//! * [`packed`] — a BLIS-style packed-panel engine with an unrolled
//!   `MR x NR` register-tile micro-kernel, parallelized over row blocks of
//!   `C` by the persistent worker pool in [`crate::par`].
//!
//! The top-level functions ([`matmul`], [`matmul_tn`], [`matmul_nt`],
//! [`gram`], [`matvec`], [`matvec_t`]) pick a tier from the *problem size
//! only* — never from the thread count — so a given problem always takes
//! the same code path and, because the engine partitions output elements
//! (no split-K reductions), produces bitwise-identical results for every
//! value of `PSVD_NUM_THREADS`, including 1.
//!
//! Transpose-aware variants avoid materializing explicit transposes for
//! the `AᵀB` / `ABᵀ` patterns the SVD drivers hit constantly (Gram
//! matrices, projections); the packed engine absorbs transposition into
//! its panel packing, so both layouts run the same micro-kernel.

use crate::matrix::Matrix;
use crate::par;
use crate::view::{MatView, MatViewMut};

/// Flop count (`2mnk`) above which matrix-matrix products use the packed
/// parallel engine. Below it, packing overhead dominates and the serial
/// reference loops win.
const PAR_MIN_FLOPS: usize = 1 << 20;

/// Flop count (`2mn`) above which matrix-vector products are threaded.
const PAR_MIN_MV_FLOPS: usize = 1 << 18;

/// `C = A * B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions mismatch {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    if 2 * a.rows() * a.cols() * b.cols() >= PAR_MIN_FLOPS {
        packed::matmul(a, b)
    } else {
        reference::matmul(a, b)
    }
}

/// `C = Aᵀ * B` without materializing `Aᵀ`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: row counts must match");
    if 2 * a.cols() * a.rows() * b.cols() >= PAR_MIN_FLOPS {
        packed::matmul_tn(a, b)
    } else {
        reference::matmul_tn(a, b)
    }
}

/// `C = A * Bᵀ` without materializing `Bᵀ`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: column counts must match");
    if 2 * a.rows() * a.cols() * b.rows() >= PAR_MIN_FLOPS {
        packed::matmul_nt(a, b)
    } else {
        reference::matmul_nt(a, b)
    }
}

/// `y = A * x`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
    if 2 * a.rows() * a.cols() >= PAR_MIN_MV_FLOPS {
        packed::matvec(a, x)
    } else {
        reference::matvec(a, x)
    }
}

/// `y = Aᵀ * x`.
pub fn matvec_t(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows(), x.len(), "matvec_t: dimension mismatch");
    if 2 * a.rows() * a.cols() >= PAR_MIN_MV_FLOPS {
        packed::matvec_t(a, x)
    } else {
        reference::matvec_t(a, x)
    }
}

/// The Gram matrix `AᵀA` (symmetric; only the upper triangle is computed,
/// then mirrored, halving the flops of a general `AᵀB`).
pub fn gram(a: &Matrix) -> Matrix {
    let mut g = Matrix::zeros(a.cols(), a.cols());
    gram_view_dispatch(a.view(), &mut g);
    g
}

// --- View-consuming `_into` entry points ---------------------------------
//
// Same tier dispatch as the allocating functions above — a pure function
// of the problem *shape*, never of strides or thread count — so each
// `_into` call is bitwise identical to its allocating counterpart and
// stays bitwise deterministic across thread counts. Outputs are reshaped
// in place: when the destination buffer already has enough capacity, the
// call performs zero heap allocation. Input views borrow their matrices
// immutably while `c` is borrowed mutably, so input/output aliasing is
// rejected at compile time.

/// `C = A * B` written into `c`. Bitwise identical to [`matmul`].
pub fn matmul_into(a: MatView<'_>, b: MatView<'_>, c: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions mismatch {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    c.reshape_zeroed(a.rows(), b.cols());
    let ldc = b.cols();
    if 2 * a.rows() * a.cols() * b.cols() >= PAR_MIN_FLOPS {
        packed::gemm(a, b, c.as_mut_slice(), ldc);
    } else {
        reference::gemm_view(a, b, c.as_mut_slice(), ldc);
    }
}

/// `C = Aᵀ * B` written into `c` without materializing `Aᵀ`. Bitwise
/// identical to [`matmul_tn`].
pub fn matmul_tn_into(a: MatView<'_>, b: MatView<'_>, c: &mut Matrix) {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: row counts must match");
    let at = a.transposed();
    c.reshape_zeroed(at.rows(), b.cols());
    let ldc = b.cols();
    if 2 * at.rows() * at.cols() * b.cols() >= PAR_MIN_FLOPS {
        packed::gemm(at, b, c.as_mut_slice(), ldc);
    } else {
        reference::gemm_view(at, b, c.as_mut_slice(), ldc);
    }
}

/// `C = A * Bᵀ` written into `c` without materializing `Bᵀ`. Bitwise
/// identical to [`matmul_nt`].
pub fn matmul_nt_into(a: MatView<'_>, b: MatView<'_>, c: &mut Matrix) {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: column counts must match");
    let bt = b.transposed();
    c.reshape_zeroed(a.rows(), bt.cols());
    let ldc = bt.cols();
    if 2 * a.rows() * a.cols() * bt.cols() >= PAR_MIN_FLOPS {
        packed::gemm(a, bt, c.as_mut_slice(), ldc);
    } else {
        reference::gemm_view(a, bt, c.as_mut_slice(), ldc);
    }
}

/// `C += A * B` accumulated into a mutable strided view with unit column
/// stride (e.g. a [`Matrix::block_mut`] trailing-matrix region). This is
/// the update primitive of the blocked compact-WY factorizations: both
/// engines accumulate per output element in ascending `k`, so the tier
/// dispatch (a pure function of the problem shape) keeps results bitwise
/// deterministic across thread counts, exactly like [`matmul_into`].
pub fn matmul_acc_into(a: MatView<'_>, b: MatView<'_>, c: &mut MatViewMut<'_>) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_acc_into: inner dimensions mismatch {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        (c.rows(), c.cols()),
        (a.rows(), b.cols()),
        "matmul_acc_into: output shape mismatch"
    );
    assert_eq!(c.cs, 1, "matmul_acc_into: output must have unit column stride");
    let ldc = c.rs;
    if 2 * a.rows() * a.cols() * b.cols() >= PAR_MIN_FLOPS {
        packed::gemm(a, b, c.data, ldc);
    } else {
        reference::gemm_view(a, b, c.data, ldc);
    }
}

/// `G = AᵀA` written into `g`. Bitwise identical to [`gram`].
pub fn gram_into(a: MatView<'_>, g: &mut Matrix) {
    gram_view_dispatch(a, g);
}

fn gram_view_dispatch(a: MatView<'_>, g: &mut Matrix) {
    g.reshape_zeroed(a.cols(), a.cols());
    if a.rows() * a.cols() * a.cols() >= PAR_MIN_FLOPS {
        packed::gram_view(a, g.as_mut_slice());
    } else {
        reference::gram_view(a, g.as_mut_slice());
    }
}

pub mod reference {
    //! Serial reference kernels: the plainly-auditable implementations the
    //! packed engine is validated against. Inner loops are branch-free —
    //! no data-dependent zero tests — so they autovectorize cleanly and
    //! their flop sequence per output element is obvious from the source.

    use crate::matrix::Matrix;
    use crate::view::MatView;

    /// Cache block edge for the blocked kernels.
    const BLOCK: usize = 64;

    /// `C += op(A) * op(B)` over strided views, blocked i-k-j, written to
    /// `c` with row stride `ldc` (`ldc = n` for a dense output; larger for
    /// a trailing-matrix block of a wider buffer). Per output element the
    /// flops are the ascending-`k` sequence of [`matmul`] / [`matmul_tn`]
    /// / [`matmul_nt`] (which all accumulate each `C` element in ascending
    /// `k` from zero), so this single kernel is bitwise identical to every
    /// one of them — strides decide only where operands are *read* and
    /// *written*, never the op order.
    pub(crate) fn gemm_view(a: MatView<'_>, b: MatView<'_>, c: &mut [f64], ldc: usize) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        debug_assert_eq!(k, b.rows());
        debug_assert!(ldc >= n);
        debug_assert!(m == 0 || n == 0 || c.len() >= (m - 1) * ldc + n);
        for ib in (0..m).step_by(BLOCK) {
            for kb in (0..k).step_by(BLOCK) {
                for jb in (0..n).step_by(BLOCK) {
                    let imax = (ib + BLOCK).min(m);
                    let kmax = (kb + BLOCK).min(k);
                    let jmax = (jb + BLOCK).min(n);
                    for i in ib..imax {
                        for kk in kb..kmax {
                            let aik = a.at(i, kk);
                            let crow = &mut c[i * ldc + jb..i * ldc + jmax];
                            if b.cs == 1 {
                                let off = kk * b.rs;
                                let brow = &b.data[off + jb..off + jmax];
                                for (cv, bv) in crow.iter_mut().zip(brow) {
                                    *cv += aik * bv;
                                }
                            } else {
                                for (cv, j) in crow.iter_mut().zip(jb..jmax) {
                                    *cv += aik * b.at(kk, j);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// `G = AᵀA` of a strided view into `g` (length `n*n`): the rank-1
    /// upper-triangle sweep of [`gram`], generalized to views, with the
    /// identical ascending-`kk` accumulation order.
    pub(crate) fn gram_view(a: MatView<'_>, g: &mut [f64]) {
        let n = a.cols();
        debug_assert_eq!(g.len(), n * n);
        for kk in 0..a.rows() {
            if a.cs == 1 {
                let row = &a.data[kk * a.rs..kk * a.rs + n];
                for i in 0..n {
                    let ri = row[i];
                    let grow = &mut g[i * n + i..(i + 1) * n];
                    for (gv, rv) in grow.iter_mut().zip(&row[i..]) {
                        *gv += ri * rv;
                    }
                }
            } else {
                for i in 0..n {
                    let ri = a.at(kk, i);
                    let grow = &mut g[i * n + i..(i + 1) * n];
                    for (gv, j) in grow.iter_mut().zip(i..n) {
                        *gv += ri * a.at(kk, j);
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[i * n + j] = g[j * n + i];
            }
        }
    }

    /// `C = A * B`.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(
            a.cols(),
            b.rows(),
            "matmul: inner dimensions mismatch {}x{} * {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut c = Matrix::zeros(m, n);
        // i-k-j loop order: the innermost loop streams rows of B and C,
        // the cache-friendly order for row-major data.
        let cd = c.as_mut_slice();
        let ad = a.as_slice();
        let bd = b.as_slice();
        for ib in (0..m).step_by(BLOCK) {
            for kb in (0..k).step_by(BLOCK) {
                for jb in (0..n).step_by(BLOCK) {
                    let imax = (ib + BLOCK).min(m);
                    let kmax = (kb + BLOCK).min(k);
                    let jmax = (jb + BLOCK).min(n);
                    for i in ib..imax {
                        for kk in kb..kmax {
                            let aik = ad[i * k + kk];
                            let brow = &bd[kk * n + jb..kk * n + jmax];
                            let crow = &mut cd[i * n + jb..i * n + jmax];
                            for (cv, bv) in crow.iter_mut().zip(brow) {
                                *cv += aik * bv;
                            }
                        }
                    }
                }
            }
        }
        c
    }

    /// `C = Aᵀ * B` without materializing `Aᵀ`.
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "matmul_tn: row counts must match");
        let (k, m, n) = (a.rows(), a.cols(), b.cols());
        let mut c = Matrix::zeros(m, n);
        let cd = c.as_mut_slice();
        let ad = a.as_slice();
        let bd = b.as_slice();
        for kk in 0..k {
            let arow = &ad[kk * m..(kk + 1) * m];
            let brow = &bd[kk * n..(kk + 1) * n];
            for (i, &aki) in arow.iter().enumerate() {
                let crow = &mut cd[i * n..(i + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += aki * bv;
                }
            }
        }
        c
    }

    /// `C = A * Bᵀ` without materializing `Bᵀ`.
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_nt: column counts must match");
        let (m, n) = (a.rows(), b.rows());
        let mut c = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = a.row(i);
            for j in 0..n {
                let brow = b.row(j);
                let mut s = 0.0;
                for (av, bv) in arow.iter().zip(brow) {
                    s += av * bv;
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    /// `y = A * x`.
    pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
        assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
        (0..a.rows()).map(|i| a.row(i).iter().zip(x).map(|(av, xv)| av * xv).sum()).collect()
    }

    /// `y = Aᵀ * x`.
    pub fn matvec_t(a: &Matrix, x: &[f64]) -> Vec<f64> {
        assert_eq!(a.rows(), x.len(), "matvec_t: dimension mismatch");
        let mut y = vec![0.0; a.cols()];
        for (i, &xi) in x.iter().enumerate() {
            for (yv, av) in y.iter_mut().zip(a.row(i)) {
                *yv += av * xi;
            }
        }
        y
    }

    /// The Gram matrix `AᵀA`: rank-1 updates over the upper triangle only,
    /// mirrored at the end (half the flops of a general `AᵀB`).
    pub fn gram(a: &Matrix) -> Matrix {
        let n = a.cols();
        let mut g = Matrix::zeros(n, n);
        let gd = g.as_mut_slice();
        for kk in 0..a.rows() {
            let row = a.row(kk);
            for i in 0..n {
                let ri = row[i];
                let grow = &mut gd[i * n + i..(i + 1) * n];
                for (gv, rv) in grow.iter_mut().zip(&row[i..]) {
                    *gv += ri * rv;
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                gd[i * n + j] = gd[j * n + i];
            }
        }
        g
    }
}

pub mod packed {
    //! Packed-panel GEMM engine.
    //!
    //! The classic (BLIS-style) decomposition: the K dimension is split
    //! into panels of [`KC`]; per panel, the whole of `op(B)` is packed
    //! once into NR-wide column strips, and each thread packs its own
    //! [`MC`]`x`[`KC`] blocks of `op(A)` into MR-tall row strips. The
    //! innermost computation is an [`MR`]`x`[`NR`] register-tile
    //! micro-kernel written as branch-free slice loops that LLVM unrolls
    //! and vectorizes.
    //!
    //! ## Parallel decomposition and determinism
    //!
    //! Threads own disjoint, MR-aligned row ranges of `C`; nothing else is
    //! shared mutably. Every `C` element accumulates its K-panel partial
    //! sums in ascending panel order on whichever single thread owns it,
    //! so the floating-point op sequence per element is a function of the
    //! problem shape only — results are bitwise identical for any thread
    //! count. The K dimension is never split across threads.
    //!
    //! Transposition is free here: `op(A)`/`op(B)` are strided views
    //! resolved during packing, after which N/T/NT all run the same
    //! kernel.

    use super::par;
    use crate::matrix::Matrix;
    use crate::par::SendPtr;
    use crate::view::MatView;

    /// Micro-tile rows: `MR x NR = 4 x 8` keeps the f64 accumulator tile
    /// within the 16-register AVX2 budget with room for A/B operands.
    pub const MR: usize = 4;
    /// Micro-tile columns (one cache line of f64 per register row pair).
    pub const NR: usize = 8;
    /// K-panel depth: `KC * NR * 8` bytes of packed B strip stays in L1.
    const KC: usize = 256;
    /// Row-block height per A pack (multiple of `MR`; `MC * KC * 8` bytes
    /// of packed A targets L2).
    const MC: usize = 128;

    /// `C += op(A) * op(B)` forced through the packed engine (any size),
    /// written to `c` with row stride `ldc` (`ldc = n` for a dense
    /// output). `op(X)` is any strided [`MatView`] — normal, transposed or
    /// a sub-block; packing resolves the strides, after which every layout
    /// runs the same micro-kernel.
    pub(crate) fn gemm(a: MatView<'_>, b: MatView<'_>, c: &mut [f64], ldc: usize) {
        let (m, k, n) = (a.rows, a.cols, b.cols);
        debug_assert_eq!(k, b.rows);
        debug_assert!(ldc >= n);
        debug_assert!(m == 0 || n == 0 || c.len() >= (m - 1) * ldc + n);
        if m == 0 || n == 0 || k == 0 {
            return;
        }

        // --- Pack all of op(B), panel-major then NR-strip-major. The
        // strip for K-panel [kb, kb+kc) and column panel jp starts at
        // kb * npj * NR + jp * kc * NR and holds kc rows of NR values,
        // zero-padded past column n. Strips are disjoint per jp, so the
        // packing parallelizes over column panels.
        let npj = n.div_ceil(NR);
        let mut bpack = vec![0.0f64; k * npj * NR];
        {
            let bptr = SendPtr(bpack.as_mut_ptr());
            par::parallel_for(npj, 8, |jp0, jp1| {
                for jp in jp0..jp1 {
                    let jcount = NR.min(n - jp * NR);
                    let mut kb = 0;
                    while kb < k {
                        let kc = KC.min(k - kb);
                        let base = kb * npj * NR + jp * kc * NR;
                        // Identical strip contents either way; the loop
                        // order just keeps source reads on the
                        // unit-stride axis of op(B).
                        if b.cs == 1 {
                            for kk in 0..kc {
                                for jr in 0..jcount {
                                    let v = b.at(kb + kk, jp * NR + jr);
                                    // SAFETY: jp strips are disjoint and
                                    // this thread owns [jp0, jp1).
                                    unsafe { *bptr.get().add(base + kk * NR + jr) = v };
                                }
                            }
                        } else {
                            for jr in 0..jcount {
                                for kk in 0..kc {
                                    let v = b.at(kb + kk, jp * NR + jr);
                                    // SAFETY: as above.
                                    unsafe { *bptr.get().add(base + kk * NR + jr) = v };
                                }
                            }
                        }
                        kb += kc;
                    }
                }
            });
        }

        // --- Partition rows of C into MR-aligned contiguous ranges, one
        // per thread. The partition decides only *who* computes each
        // element, never the order of its flops.
        let strips = m.div_ceil(MR);
        let threads = par::num_threads().min(strips).max(1);
        let strips_per_thread = strips.div_ceil(threads);
        let used = strips.div_ceil(strips_per_thread);
        let cptr = SendPtr(c.as_mut_ptr());
        let bp = &bpack[..];
        par::run(used, &|tid: usize| {
            let r0 = tid * strips_per_thread * MR;
            let r1 = (r0 + strips_per_thread * MR).min(m);
            if r0 >= r1 {
                return;
            }
            thread_body(a, bp, cptr, n, ldc, npj, r0, r1);
        });
    }

    /// One thread's share: rows `[r0, r1)` of `C` (`r0` MR-aligned).
    #[allow(clippy::too_many_arguments)]
    fn thread_body(
        a: MatView<'_>,
        bpack: &[f64],
        cptr: SendPtr,
        n: usize,
        ldc: usize,
        npj: usize,
        r0: usize,
        r1: usize,
    ) {
        let k = a.cols;
        let mut apack = vec![0.0f64; MC * KC];
        let mut kb = 0;
        // K-panels ascending: this ordering is what fixes each C
        // element's accumulation sequence independent of the partition.
        while kb < k {
            let kc = KC.min(k - kb);
            let panel_base = kb * npj * NR;
            let mut mb = r0;
            while mb < r1 {
                let mc = MC.min(r1 - mb);
                let mstrips = mc.div_ceil(MR);
                // Pack this MC x kc block of op(A) into MR-tall strips,
                // zero-padding rows past r1 (only possible at the bottom
                // edge of the matrix, since r1 is MR-aligned elsewhere).
                // Strip contents are order-independent; read along the
                // unit-stride axis of op(A).
                for ip in 0..mstrips {
                    let dst = ip * kc * MR;
                    if a.cs == 1 {
                        for ir in 0..MR {
                            let i = mb + ip * MR + ir;
                            if i < r1 {
                                for kk in 0..kc {
                                    apack[dst + kk * MR + ir] = a.at(i, kb + kk);
                                }
                            } else {
                                for kk in 0..kc {
                                    apack[dst + kk * MR + ir] = 0.0;
                                }
                            }
                        }
                    } else {
                        let rows_here = MR.min(r1 - (mb + ip * MR));
                        for kk in 0..kc {
                            for ir in 0..rows_here {
                                apack[dst + kk * MR + ir] = a.at(mb + ip * MR + ir, kb + kk);
                            }
                            for ir in rows_here..MR {
                                apack[dst + kk * MR + ir] = 0.0;
                            }
                        }
                    }
                }
                for jp in 0..npj {
                    let bstrip = &bpack[panel_base + jp * kc * NR..panel_base + (jp + 1) * kc * NR];
                    let jcount = NR.min(n - jp * NR);
                    for ip in 0..mstrips {
                        let i0 = mb + ip * MR;
                        let astrip = &apack[ip * kc * MR..(ip + 1) * kc * MR];
                        let mut acc = [0.0f64; MR * NR];
                        micro_kernel(astrip, bstrip, &mut acc);
                        let rows_here = MR.min(r1 - i0);
                        for ir in 0..rows_here {
                            let i = i0 + ir;
                            for jr in 0..jcount {
                                let j = jp * NR + jr;
                                // SAFETY: row i belongs to this thread's
                                // disjoint range [r0, r1).
                                unsafe { *cptr.get().add(i * ldc + j) += acc[ir * NR + jr] };
                            }
                        }
                    }
                }
                mb += mc;
            }
            kb += kc;
        }
    }

    /// The `MR x NR` register-tile kernel: `acc += astrip * bstrip` over
    /// one K-panel. `astrip` is `kc` steps of MR values, `bstrip` `kc`
    /// steps of NR values; the fixed-trip inner loops unroll into a
    /// 4x8 accumulator tile that LLVM keeps in vector registers.
    #[inline]
    fn micro_kernel(astrip: &[f64], bstrip: &[f64], acc: &mut [f64; MR * NR]) {
        for (avals, bvals) in astrip.chunks_exact(MR).zip(bstrip.chunks_exact(NR)) {
            let (a0, a1, a2, a3) = (avals[0], avals[1], avals[2], avals[3]);
            for j in 0..NR {
                let bj = bvals[j];
                acc[j] += a0 * bj;
                acc[NR + j] += a1 * bj;
                acc[2 * NR + j] += a2 * bj;
                acc[3 * NR + j] += a3 * bj;
            }
        }
    }

    /// `C = A * B` through the packed engine regardless of size.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(
            a.cols(),
            b.rows(),
            "matmul: inner dimensions mismatch {}x{} * {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        let mut c = Matrix::zeros(a.rows(), b.cols());
        let ldc = c.cols();
        gemm(a.view(), b.view(), c.as_mut_slice(), ldc);
        c
    }

    /// `C = Aᵀ * B` through the packed engine regardless of size.
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "matmul_tn: row counts must match");
        let mut c = Matrix::zeros(a.cols(), b.cols());
        let ldc = c.cols();
        gemm(a.view().transposed(), b.view(), c.as_mut_slice(), ldc);
        c
    }

    /// `C = A * Bᵀ` through the packed engine regardless of size.
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_nt: column counts must match");
        let mut c = Matrix::zeros(a.rows(), b.rows());
        let ldc = c.cols();
        gemm(a.view(), b.view().transposed(), c.as_mut_slice(), ldc);
        c
    }

    /// `AᵀA`, threaded: upper triangle only, mirrored afterwards (~half
    /// the flops of `matmul_tn(a, a)`).
    ///
    /// Deliberately NOT the tile engine: the Gram matrices here are small
    /// squares of very tall inputs (`M >> N`), where the reference rank-1
    /// sweep already streams `A` once at unit stride with `G` cache
    /// resident — packing would re-copy `A` per K-panel for no compute
    /// win. Instead the rank-1 sweep itself is parallelized over row
    /// strips of `G` (strips sized so each carries an equal share of the
    /// triangle). Every `G` element keeps the reference kernel's exact
    /// ascending-`kk` accumulation order, so the result is bitwise equal
    /// to `reference::gram` at every thread count.
    pub fn gram(a: &Matrix) -> Matrix {
        let mut g = Matrix::zeros(a.cols(), a.cols());
        gram_view(a.view(), g.as_mut_slice());
        g
    }

    /// The view form of [`gram`]: same strip partition, same per-element
    /// ascending-`kk` accumulation order, writing into `g` (length
    /// `n*n`). Strided views take an indexed inner loop; the op sequence
    /// per element is unchanged, so results stay bitwise equal to
    /// `reference::gram` for any thread count and any strides.
    pub(crate) fn gram_view(a: MatView<'_>, g: &mut [f64]) {
        let n = a.cols;
        let rows = a.rows;
        debug_assert_eq!(g.len(), n * n);
        if n > 0 && rows > 0 {
            let gptr = SendPtr(g.as_mut_ptr());
            let threads = par::num_threads().min(n).max(1);
            // Row strip boundaries equalizing upper-triangle area: row i
            // owns n - i elements, so the strip ending at fraction t of
            // the area ends at row n * (1 - sqrt(1 - t)).
            let bound = |t: usize| -> usize {
                let frac = t as f64 / threads as f64;
                ((n as f64) * (1.0 - (1.0 - frac).sqrt())).round() as usize
            };
            par::run(threads, &|tid: usize| {
                let (i0, i1) = (bound(tid).min(n), bound(tid + 1).min(n));
                if i0 >= i1 {
                    return;
                }
                // SAFETY: row ranges [i0, i1) are disjoint across threads,
                // so these &mut subslices of G never overlap. Going
                // through a real slice (not per-element raw writes) keeps
                // the inner loop autovectorizable.
                let gs = unsafe {
                    std::slice::from_raw_parts_mut(gptr.get().add(i0 * n), (i1 - i0) * n)
                };
                for kk in 0..rows {
                    if a.cs == 1 {
                        let row = &a.data[kk * a.rs..kk * a.rs + n];
                        for i in i0..i1 {
                            let ri = row[i];
                            let grow = &mut gs[(i - i0) * n + i..(i - i0) * n + n];
                            for (gv, rv) in grow.iter_mut().zip(&row[i..]) {
                                *gv += ri * rv;
                            }
                        }
                    } else {
                        for i in i0..i1 {
                            let ri = a.at(kk, i);
                            let grow = &mut gs[(i - i0) * n + i..(i - i0) * n + n];
                            for (gv, j) in grow.iter_mut().zip(i..n) {
                                *gv += ri * a.at(kk, j);
                            }
                        }
                    }
                }
            });
        }
        for i in 0..n {
            for j in 0..i {
                g[i * n + j] = g[j * n + i];
            }
        }
    }

    /// `y = A * x`, rows partitioned across threads. Each `y[i]` is one
    /// serial dot product, so the result is identical to the reference
    /// kernel at any thread count.
    pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
        assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
        let m = a.rows();
        let mut y = vec![0.0f64; m];
        let yptr = SendPtr(y.as_mut_ptr());
        par::parallel_for(m, 64, |i0, i1| {
            for i in i0..i1 {
                let s: f64 = a.row(i).iter().zip(x).map(|(av, xv)| av * xv).sum();
                // SAFETY: rows [i0, i1) are this thread's disjoint range.
                unsafe { *yptr.get().add(i) = s };
            }
        });
        y
    }

    /// `y = Aᵀ * x`, output *columns* partitioned across threads; every
    /// thread sweeps all rows of its column slice in ascending row order —
    /// the exact accumulation order of the reference kernel — so no
    /// reduction is split and results match bitwise at any thread count.
    pub fn matvec_t(a: &Matrix, x: &[f64]) -> Vec<f64> {
        assert_eq!(a.rows(), x.len(), "matvec_t: dimension mismatch");
        let n = a.cols();
        let mut y = vec![0.0f64; n];
        let yptr = SendPtr(y.as_mut_ptr());
        par::parallel_for(n, 64, |j0, j1| {
            // SAFETY: columns [j0, j1) are this thread's disjoint range,
            // so these &mut subslices of y never overlap. A real slice
            // keeps the inner loop autovectorizable.
            let ys = unsafe { std::slice::from_raw_parts_mut(yptr.get().add(j0), j1 - j0) };
            for (i, &xi) in x.iter().enumerate() {
                let arow = &a.row(i)[j0..j1];
                for (yv, av) in ys.iter_mut().zip(arow) {
                    *yv += av * xi;
                }
            }
        });
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn test_mat(r: usize, c: usize, seed: f64) -> Matrix {
        Matrix::from_fn(r, c, |i, j| ((i * 31 + j * 17) as f64 * seed).sin())
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_matches_naive_rectangular() {
        let a = test_mat(37, 53, 0.7);
        let b = test_mat(53, 29, 1.3);
        let c = matmul(&a, &b);
        let d = naive(&a, &b);
        assert!((&c - &d).max_abs() < 1e-12);
    }

    #[test]
    fn matmul_crosses_block_boundaries() {
        let a = test_mat(130, 70, 0.3);
        let b = test_mat(70, 65, 0.9);
        assert!((&matmul(&a, &b) - &naive(&a, &b)).max_abs() < 1e-11);
    }

    #[test]
    fn matmul_identity() {
        let a = test_mat(20, 20, 0.5);
        let i = Matrix::identity(20);
        assert!((&matmul(&a, &i) - &a).max_abs() < 1e-15);
        assert!((&matmul(&i, &a) - &a).max_abs() < 1e-15);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = test_mat(40, 13, 0.2);
        let b = test_mat(40, 21, 0.4);
        let c = matmul_tn(&a, &b);
        let d = matmul(&a.transpose(), &b);
        assert!((&c - &d).max_abs() < 1e-12);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = test_mat(23, 40, 0.2);
        let b = test_mat(31, 40, 0.4);
        let c = matmul_nt(&a, &b);
        let d = matmul(&a, &b.transpose());
        assert!((&c - &d).max_abs() < 1e-12);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = test_mat(17, 9, 0.8);
        let x: Vec<f64> = (0..9).map(|i| (i as f64).cos()).collect();
        let y = matvec(&a, &x);
        let xm = Matrix::from_columns(std::slice::from_ref(&x));
        let ym = matmul(&a, &xm);
        for i in 0..17 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-13);
        }
    }

    #[test]
    fn matvec_t_matches() {
        let a = test_mat(17, 9, 0.8);
        let x: Vec<f64> = (0..17).map(|i| (i as f64).cos()).collect();
        let y = matvec_t(&a, &x);
        let expected = matvec(&a.transpose(), &x);
        for (yv, ev) in y.iter().zip(&expected) {
            assert!((yv - ev).abs() < 1e-13);
        }
    }

    #[test]
    fn gram_matches_tn() {
        let a = test_mat(50, 12, 0.6);
        let g = gram(&a);
        let g2 = matmul_tn(&a, &a);
        assert!((&g - &g2).max_abs() < 1e-12);
        // Symmetry.
        assert!((&g - &g.transpose()).max_abs() == 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        matmul(&a, &b);
    }

    // --- Packed engine vs reference ---------------------------------

    #[test]
    fn packed_matmul_matches_reference_odd_shapes() {
        // Shapes chosen to straddle MR/NR/KC/MC tile boundaries.
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (5, 9, 17), (129, 257, 65), (130, 300, 33)]
        {
            let a = test_mat(m, k, 0.37);
            let b = test_mat(k, n, 0.73);
            let diff = (&packed::matmul(&a, &b) - &reference::matmul(&a, &b)).max_abs();
            assert!(diff < 1e-11, "({m},{k},{n}) diverged by {diff}");
        }
    }

    #[test]
    fn packed_handles_degenerate_shapes() {
        // k = 0: the product is defined and identically zero.
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 6);
        assert_eq!(packed::matmul(&a, &b), Matrix::zeros(4, 6));
        // Single row / single column operands.
        let r = test_mat(1, 40, 0.5);
        let c = test_mat(40, 1, 0.9);
        assert!((&packed::matmul(&r, &c) - &reference::matmul(&r, &c)).max_abs() < 1e-12);
        assert!((&packed::matmul(&c, &r) - &reference::matmul(&c, &r)).max_abs() < 1e-12);
    }

    #[test]
    fn packed_tn_nt_match_reference() {
        let a = test_mat(70, 37, 0.21);
        let b = test_mat(70, 51, 0.43);
        assert!((&packed::matmul_tn(&a, &b) - &reference::matmul_tn(&a, &b)).max_abs() < 1e-11);
        let a = test_mat(37, 70, 0.21);
        let b = test_mat(51, 70, 0.43);
        assert!((&packed::matmul_nt(&a, &b) - &reference::matmul_nt(&a, &b)).max_abs() < 1e-11);
    }

    #[test]
    fn packed_gram_upper_triangle_and_mirror() {
        let a = test_mat(83, 29, 0.61);
        let g = packed::gram(&a);
        // The threaded gram keeps the reference accumulation order, so
        // agreement is exact, not approximate.
        assert_eq!(g, reference::gram(&a));
        assert!((&g - &reference::matmul_tn(&a, &a)).max_abs() < 1e-11);
        assert!((&g - &g.transpose()).max_abs() == 0.0);
    }

    #[test]
    fn packed_matvecs_bitwise_match_reference() {
        let a = test_mat(67, 45, 0.83);
        let x: Vec<f64> = (0..45).map(|i| (i as f64 * 0.17).cos()).collect();
        assert_eq!(packed::matvec(&a, &x), reference::matvec(&a, &x));
        let xt: Vec<f64> = (0..67).map(|i| (i as f64 * 0.11).sin()).collect();
        assert_eq!(packed::matvec_t(&a, &xt), reference::matvec_t(&a, &xt));
    }

    #[test]
    fn into_kernels_bitwise_match_allocating() {
        // Straddle the dispatch threshold: 90*97*93*2 < 2^20 < 137*95*171*2.
        for &(m, k, n) in &[(12, 9, 10), (90, 97, 93), (137, 95, 171)] {
            let a = test_mat(m, k, 0.37);
            let b = test_mat(k, n, 0.73);
            let bt = b.transpose();
            let mut c = Matrix::zeros(1, 1);
            matmul_into(a.view(), b.view(), &mut c);
            assert_eq!(c, matmul(&a, &b), "matmul_into ({m},{k},{n})");
            let mut ctn = Matrix::zeros(0, 0);
            let atall = test_mat(k, m, 0.51);
            matmul_tn_into(atall.view(), b.view(), &mut ctn);
            assert_eq!(ctn, matmul_tn(&atall, &b), "matmul_tn_into ({k},{m},{n})");
            let mut cnt = Matrix::zeros(0, 0);
            matmul_nt_into(a.view(), bt.view(), &mut cnt);
            assert_eq!(cnt, matmul_nt(&a, &bt), "matmul_nt_into ({m},{k},{n})");
            let mut g = Matrix::zeros(0, 0);
            gram_into(a.view(), &mut g);
            assert_eq!(g, gram(&a), "gram_into ({m},{k})");
        }
    }

    #[test]
    fn into_kernels_accept_strided_views() {
        let big = test_mat(60, 50, 0.41);
        // A strided interior block vs its materialized copy.
        let blk = big.block(7, 43, 5, 29);
        let cpy = big.submatrix(7, 43, 5, 29);
        let rhs = test_mat(24, 11, 0.77);
        let mut c_view = Matrix::zeros(0, 0);
        let mut c_copy = Matrix::zeros(0, 0);
        matmul_into(blk, rhs.view(), &mut c_view);
        matmul_into(cpy.view(), rhs.view(), &mut c_copy);
        assert_eq!(c_view, c_copy, "strided A block must not change bits");
        // Transposed view on the left of a plain product == matmul_tn.
        let mut c_t = Matrix::zeros(0, 0);
        matmul_into(big.view().transposed(), big.view(), &mut c_t);
        assert_eq!(c_t, matmul_tn(&big, &big));
        let mut g_blk = Matrix::zeros(0, 0);
        gram_into(blk, &mut g_blk);
        assert_eq!(g_blk, gram(&cpy), "gram of strided block");
    }

    #[test]
    #[should_panic(expected = "inner dimensions mismatch")]
    fn matmul_into_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        matmul_into(a.view(), b.view(), &mut Matrix::zeros(0, 0));
    }

    #[test]
    fn packed_bitwise_identical_across_thread_counts() {
        let a = test_mat(137, 95, 0.29);
        let b = test_mat(95, 71, 0.53);
        let baseline = {
            par::set_num_threads(1);
            packed::matmul(&a, &b)
        };
        for threads in [2, 3, 4, 8] {
            par::set_num_threads(threads);
            let c = packed::matmul(&a, &b);
            assert_eq!(c, baseline, "thread count {threads} changed bits");
        }
        par::set_num_threads(0);
    }
}
