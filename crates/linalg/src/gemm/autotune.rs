//! One-shot cache-blocking autotuner.
//!
//! Times a small grid of `MC`/`KC`/`NC` candidates — sized from the
//! detected L1d/L2 capacities — on a compute-bound square GEMM through
//! the real packed engine with the active micro-kernel, and installs the
//! fastest triple process-wide. It runs at most once per process
//! (results land in the same `OnceLock` the lazy default resolution
//! uses), triggered by `PSVD_GEMM_TUNE=1` at first GEMM or explicitly
//! via [`autotune`].
//!
//! With `PSVD_GEMM_TUNE=<path>` the winner is serialized to `<path>` as
//! a `key=value` profile stamped with the kernel name and tile shape;
//! later runs load it instead of re-timing, and silently re-tune (and
//! rewrite) if the file is missing, malformed, or was tuned for a
//! different kernel.
//!
//! Tuning never compromises determinism *within* a process — blocking is
//! immutable once resolved — but two processes tuned to different `KC`
//! values are distinct rounding universes. Runs that must be bitwise
//! reproducible across machines should pin a profile file or leave
//! tuning off.

use std::sync::OnceLock;
use std::time::Instant;

use super::blocking::{Blocking, BlockingSource};
use super::kernel::{self, MicroKernel};
use super::packed;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use std::mem::size_of;

/// One timed candidate.
#[derive(Debug, Clone, Copy)]
pub struct TuneSample {
    pub mc: usize,
    pub kc: usize,
    pub nc: usize,
    pub gflops: f64,
}

/// What [`autotune`] resolved: the installed blocking, the kernel it was
/// tuned for, how it was obtained, and (when timing actually ran this
/// process) the full candidate table.
#[derive(Debug, Clone)]
pub struct TuneReport {
    pub blocking: Blocking,
    pub kernel: &'static str,
    pub source: BlockingSource,
    /// Empty when the blocking came from defaults or a loaded profile.
    pub candidates: Vec<TuneSample>,
}

/// Candidate table from the most recent in-process tuning run, if any.
static LAST_SAMPLES: OnceLock<Vec<TuneSample>> = OnceLock::new();

/// Detected (L1d, L2) data-cache capacities in bytes, via sysfs;
/// conservative 32 KiB / 1 MiB fallbacks when unreadable (containers,
/// non-Linux).
pub(crate) fn detect_caches() -> (usize, usize) {
    fn read_kib(index: &str) -> Option<usize> {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/{index}");
        let ty = std::fs::read_to_string(format!("{base}/type")).ok()?;
        if ty.trim() == "Instruction" {
            return None;
        }
        let size = std::fs::read_to_string(format!("{base}/size")).ok()?;
        size.trim().strip_suffix('K')?.parse::<usize>().ok().map(|k| k * 1024)
    }
    fn level(index: &str) -> Option<usize> {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/{index}");
        std::fs::read_to_string(format!("{base}/level")).ok()?.trim().parse().ok()
    }
    let (mut l1, mut l2) = (0usize, 0usize);
    for i in 0..6 {
        let index = format!("index{i}");
        if let (Some(lv), Some(bytes)) = (level(&index), read_kib(&index)) {
            match lv {
                1 => l1 = l1.max(bytes),
                2 => l2 = l2.max(bytes),
                _ => {}
            }
        }
    }
    (if l1 == 0 { 32 * 1024 } else { l1 }, if l2 == 0 { 1024 * 1024 } else { l2 })
}

/// The candidate grid for a kernel: `KC` sized so an NR-wide B strip
/// plus an MR-tall A strip stay within L1, `MC` so the packed A block
/// fills a fraction of L2, plus neighbors of each — every candidate
/// validated through [`Blocking::try_new`].
pub(crate) fn candidate_grid<T: Scalar>(kern: &dyn MicroKernel<T>) -> Vec<Blocking> {
    let (l1, l2) = detect_caches();
    let (mr, nr) = (kern.mr(), kern.nr());
    // B strip (kc * nr) + A strip (kc * mr) + tile within L1 elements
    // of the concrete dtype: an f32 strip fits twice the depth of f64.
    let kc_l1 = (l1 / size_of::<T>() / (mr + nr)).max(64).next_power_of_two() / 2 * 2;
    // Packed A (mc * kc) targeting ~half of L2.
    let mc_l2 = |kc: usize| ((l2 / 2 / size_of::<T>() / kc.max(1)) / mr).max(1) * mr;
    let mut kcs = vec![kc_l1 / 2, kc_l1, kc_l1 * 2, super::blocking::default_kc::<T>()];
    kcs.sort_unstable();
    kcs.dedup();
    let mut out = Vec::new();
    for &kc in &kcs {
        let mc0 = mc_l2(kc);
        for mc in [mc0 / 2, mc0, mc0 * 2, 128] {
            for nc in [2048usize, 4096] {
                if let Ok(b) = Blocking::try_new(mc, kc, nc, kern) {
                    if !out.contains(&b) {
                        out.push(b);
                    }
                }
            }
        }
    }
    if out.is_empty() {
        out.push(Blocking::default_for(kern));
    }
    out
}

fn time_candidate<T: Scalar>(
    kern: &dyn MicroKernel<T>,
    blk: Blocking,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> f64 {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let flops = (2 * m * n * k) as f64;
    // One warm-up, then best of two timed reps (best-of filters scheduler
    // noise better than the mean for sub-100ms runs).
    let _ = packed::matmul_with_blocking(kern, blk, a, b);
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        let c = packed::matmul_with_blocking(kern, blk, a, b);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&c);
        best = best.min(dt);
    }
    flops / best / 1e9
}

/// Time the candidate grid and return the winner plus the full table.
/// Called through the blocking `OnceLock`, so at most once per process.
pub(crate) fn tune_now<T: Scalar>(kern: &dyn MicroKernel<T>) -> (Blocking, Vec<TuneSample>) {
    // Compute-bound but quick: ~448^3 keeps the whole sweep well under a
    // second per candidate pair at a few GFLOP/s.
    let dim = 448;
    let a =
        Matrix::<T>::from_fn(dim, dim, |i, j| T::from_f64(((i * 31 + j * 7) % 13) as f64 - 6.0));
    let b =
        Matrix::<T>::from_fn(dim, dim, |i, j| T::from_f64(((i * 17 + j * 11) % 9) as f64 - 4.0));
    let mut samples = Vec::new();
    let mut winner = (Blocking::default_for(kern), 0.0f64);
    for blk in candidate_grid(kern) {
        let gflops = time_candidate(kern, blk, &a, &b);
        samples.push(TuneSample { mc: blk.mc, kc: blk.kc, nc: blk.nc, gflops });
        if gflops > winner.1 {
            winner = (blk, gflops);
        }
    }
    let _ = LAST_SAMPLES.set(samples.clone());
    (winner.0, samples)
}

/// Serialize a tuned profile (`key=value`, one per line).
fn serialize_profile<T: Scalar>(kern: &dyn MicroKernel<T>, blk: Blocking) -> String {
    format!(
        "# psvd gemm tuning profile\ndtype={}\nkernel={}\nmr={}\nnr={}\nmc={}\nkc={}\nnc={}\n",
        T::NAME,
        kern.name(),
        kern.mr(),
        kern.nr(),
        blk.mc,
        blk.kc,
        blk.nc
    )
}

/// Parse a profile; `None` on any malformation or kernel/tile mismatch
/// (the caller re-tunes rather than trusting a stale file).
fn parse_profile<T: Scalar>(text: &str, kern: &dyn MicroKernel<T>) -> Option<Blocking> {
    let mut kv = std::collections::HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (k, v) = line.split_once('=')?;
        kv.insert(k.trim(), v.trim());
    }
    if *kv.get("dtype")? != T::NAME || *kv.get("kernel")? != kern.name() {
        return None;
    }
    let num = |key: &str| kv.get(key)?.parse::<usize>().ok();
    if num("mr")? != kern.mr() || num("nr")? != kern.nr() {
        return None;
    }
    Blocking::try_new(num("mc")?, num("kc")?, num("nc")?, kern).ok()
}

/// `PSVD_GEMM_TUNE=<path>` resolution: load a valid profile, else tune
/// and write the winner there (write failures are non-fatal — the tuned
/// blocking is still installed for this process).
pub(crate) fn load_or_tune<T: Scalar>(
    path: &str,
    kern: &dyn MicroKernel<T>,
) -> (Blocking, BlockingSource) {
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Some(blk) = parse_profile(&text, kern) {
            return (blk, BlockingSource::Profile);
        }
    }
    let (blk, _) = tune_now(kern);
    if let Err(e) = std::fs::write(path, serialize_profile(kern, blk)) {
        eprintln!("psvd: could not write gemm tuning profile to {path}: {e}");
    }
    (blk, BlockingSource::Tuned)
}

/// Resolve the process-wide blocking through the autotuner (regardless
/// of `PSVD_GEMM_TUNE`, though a `<path>` mode still prefers its
/// profile) and report what was installed. If blocking was already
/// resolved — by an earlier GEMM or a previous call — the existing
/// resolution is reported instead; the one-shot result is immutable, so
/// call this before the first large GEMM for tuning to take effect.
pub fn autotune() -> TuneReport {
    autotune_for::<f64>()
}

/// Dtype-specific [`autotune`]: resolves the process-wide blocking for
/// `T`'s kernel registry. Each dtype has its own one-shot resolution.
pub fn autotune_for<T: Scalar>() -> TuneReport {
    let ((blocking, source), _ran) = super::blocking::resolve_by_tuning::<T>();
    let candidates = match source {
        BlockingSource::Tuned => LAST_SAMPLES.get().cloned().unwrap_or_default(),
        _ => Vec::new(),
    };
    TuneReport { blocking, kernel: kernel::selected::<T>().name(), source, candidates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::kernel::ScalarKernel;

    #[test]
    fn detected_caches_are_plausible() {
        let (l1, l2) = detect_caches();
        assert!((4 * 1024..=1024 * 1024).contains(&l1), "L1d {l1} bytes");
        assert!(l2 >= l1, "L2 {l2} < L1 {l1}");
    }

    #[test]
    fn candidate_grid_is_valid_and_nonempty() {
        fn probe<T: Scalar>() {
            for kern in kernel::available::<T>() {
                let grid = candidate_grid(*kern);
                assert!(!grid.is_empty());
                for blk in grid {
                    assert!(Blocking::try_new(blk.mc, blk.kc, blk.nc, *kern).is_ok());
                }
            }
        }
        probe::<f64>();
        probe::<f32>();
    }

    #[test]
    fn profile_roundtrips_and_rejects_mismatches() {
        let k = ScalarKernel;
        let blk = Blocking::try_new::<f64>(64, 128, 2048, &k).unwrap();
        let text = serialize_profile::<f64>(&k, blk);
        assert_eq!(parse_profile::<f64>(&text, &k), Some(blk));
        // A profile tuned for one dtype never applies to the other.
        assert_eq!(parse_profile::<f32>(&text, &k), None);
        // Wrong kernel name.
        assert_eq!(parse_profile::<f64>(&text.replace("scalar", "fma"), &k), None);
        // Tampered tile shape.
        assert_eq!(parse_profile::<f64>(&text.replace("mr=4", "mr=8"), &k), None);
        // Malformed values.
        assert_eq!(parse_profile::<f64>(&text.replace("kc=128", "kc=lots"), &k), None);
        assert_eq!(parse_profile::<f64>("", &k), None);
        // Invalid blocking for the kernel is rejected by validation.
        assert_eq!(parse_profile::<f64>(&text.replace("mc=64", "mc=66"), &k), None);
    }
}
