//! Cache-blocking parameters (`MC` / `KC` / `NC`) and their process-wide
//! resolution.
//!
//! The packed engine walks `C` in `MC x NC` macro-tiles fed by `KC`-deep
//! K-panels. The parameters are validated against the active micro-kernel
//! ([`Blocking::try_new`]) — `MC` must be a multiple of its `mr` and `NC`
//! of its `nr` so packed strips never straddle a block boundary — and
//! resolved exactly once per process *per dtype* (the cells live in
//! [`Scalar::gemm_cells`]):
//!
//! 1. `PSVD_GEMM_TUNE` unset / `0` / `off` — the static defaults
//!    ([`Blocking::default_for`]). With the scalar kernel forced at f64,
//!    this is bit-for-bit the pre-SIMD engine.
//! 2. `PSVD_GEMM_TUNE=1` / `on` — the one-shot autotuner runs at first
//!    GEMM (or when [`crate::gemm::autotune`] is called explicitly) and
//!    its winner is installed for the process lifetime.
//! 3. `PSVD_GEMM_TUNE=<path>` — a serialized tuning profile is loaded
//!    from `<path>` if present and consistent with the active kernel and
//!    dtype; otherwise the autotuner runs and writes the winner there.
//!
//! Cache capacities are measured in **bytes**, so the defaults are keyed
//! by element size: `KC` holds a constant K-panel byte footprint
//! ([`DEFAULT_KC_BYTES`]), which lands on the historical 256 at f64 and
//! 512 at f32 — twice the reduction depth in the same L1 working set.
//!
//! Only `KC` changes numerical results (each `C` element accumulates one
//! rounded partial sum per K-panel), and only between processes resolved
//! to different values: within a process the resolved triple is
//! immutable, so the bitwise-determinism contract holds per (kernel,
//! blocking, thread-count, dtype) with blocking fixed at resolution
//! time. `MC` and `NC` only re-tile loops and never affect a single bit.

use crate::scalar::Scalar;

use super::kernel::{self, MicroKernel};

/// Default row-block height (multiple of every kernel's `mr`).
pub(crate) const DEFAULT_MC: usize = 128;
/// Default K-panel byte depth: `KC = DEFAULT_KC_BYTES / size_of::<T>()`.
/// At f64 this is the pre-SIMD engine's 256 (`KC` is the one parameter
/// that affects rounding, so that value is load-bearing for
/// scalar-kernel bitwise reproduction); at f32 it is 512.
pub(crate) const DEFAULT_KC_BYTES: usize = 2048;
/// Default column-chunk width. Wider than every shape the SVD drivers
/// produce, so by default the whole of `op(B)` is packed once per call —
/// exactly the pre-SIMD engine's behavior.
pub(crate) const DEFAULT_NC: usize = 4096;

/// Upper bound on the packed-A bytes per thread (16 MiB). Guards against
/// absurd autotune/profile values; the element cap follows the dtype.
const MAX_PACK_A_BYTES: usize = 1 << 24;

/// The default `KC` for dtype `T` (see [`DEFAULT_KC_BYTES`]).
pub(crate) fn default_kc<T: Scalar>() -> usize {
    DEFAULT_KC_BYTES / std::mem::size_of::<T>()
}

/// Upper bound on `mc * kc` in *elements* of `T`.
pub(crate) fn max_pack_a_elems<T: Scalar>() -> usize {
    MAX_PACK_A_BYTES / std::mem::size_of::<T>()
}

/// A validated `MC`/`KC`/`NC` cache-blocking triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocking {
    /// Row-block height per packed-A block (multiple of the kernel `mr`).
    pub mc: usize,
    /// K-panel depth.
    pub kc: usize,
    /// Column-chunk width per packed-B chunk (multiple of the kernel `nr`).
    pub nc: usize,
}

/// Rejected blocking parameters, with the constraint that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockingError {
    /// A parameter was zero.
    Zero(&'static str),
    /// `MC` is not a multiple of the kernel's `mr`.
    McMisaligned { mc: usize, mr: usize, kernel: &'static str },
    /// `NC` is not a multiple of the kernel's `nr`.
    NcMisaligned { nc: usize, nr: usize, kernel: &'static str },
    /// `mc * kc` exceeds the packed-A buffer cap (in elements of the
    /// dtype being validated).
    PackTooLarge { mc: usize, kc: usize, max_elems: usize },
}

impl std::fmt::Display for BlockingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockingError::Zero(which) => write!(f, "blocking parameter {which} must be nonzero"),
            BlockingError::McMisaligned { mc, mr, kernel } => {
                write!(f, "MC = {mc} is not a multiple of kernel {kernel:?} mr = {mr}")
            }
            BlockingError::NcMisaligned { nc, nr, kernel } => {
                write!(f, "NC = {nc} is not a multiple of kernel {kernel:?} nr = {nr}")
            }
            BlockingError::PackTooLarge { mc, kc, max_elems } => {
                write!(f, "MC x KC = {mc} x {kc} exceeds the packed-A cap of {max_elems} elements")
            }
        }
    }
}

impl std::error::Error for BlockingError {}

impl Blocking {
    /// Validate a blocking triple against a micro-kernel's tile shape
    /// (and the dtype's byte-based packed-A cap).
    pub fn try_new<T: Scalar>(
        mc: usize,
        kc: usize,
        nc: usize,
        kernel: &dyn MicroKernel<T>,
    ) -> Result<Self, BlockingError> {
        for (v, name) in [(mc, "MC"), (kc, "KC"), (nc, "NC")] {
            if v == 0 {
                return Err(BlockingError::Zero(name));
            }
        }
        if !mc.is_multiple_of(kernel.mr()) {
            return Err(BlockingError::McMisaligned { mc, mr: kernel.mr(), kernel: kernel.name() });
        }
        if !nc.is_multiple_of(kernel.nr()) {
            return Err(BlockingError::NcMisaligned { nc, nr: kernel.nr(), kernel: kernel.name() });
        }
        let max_elems = max_pack_a_elems::<T>();
        if mc.saturating_mul(kc) > max_elems {
            return Err(BlockingError::PackTooLarge { mc, kc, max_elems });
        }
        Ok(Blocking { mc, kc, nc })
    }

    /// The static defaults for a kernel: `MC` is [`DEFAULT_MC`] rounded
    /// down to the kernel's `mr` (exactly 128 for the scalar oracle, so
    /// the pre-SIMD engine's blocking is reproduced verbatim; `MC` never
    /// affects bits in any case), `KC` holds a constant byte footprint
    /// ([`default_kc`]), `NC` is the fixed default.
    pub fn default_for<T: Scalar>(kernel: &dyn MicroKernel<T>) -> Self {
        let mc = (DEFAULT_MC / kernel.mr()).max(1) * kernel.mr();
        Blocking::try_new(mc, default_kc::<T>(), DEFAULT_NC, kernel)
            .expect("static defaults must be valid for every shipped kernel")
    }
}

/// How the process-wide blocking was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingSource {
    /// Static defaults (tuning off).
    Default,
    /// The in-process autotuner picked it this run.
    Tuned,
    /// Loaded from a serialized profile (`PSVD_GEMM_TUNE=<path>`).
    Profile,
}

impl BlockingSource {
    /// Stable lowercase label for bench JSON / logs.
    pub fn label(self) -> &'static str {
        match self {
            BlockingSource::Default => "default",
            BlockingSource::Tuned => "tuned",
            BlockingSource::Profile => "profile",
        }
    }
}

/// What `PSVD_GEMM_TUNE` asked for, parsed once.
pub(crate) enum TuneMode {
    Off,
    InProcess,
    Profile(String),
}

pub(crate) fn tune_mode() -> &'static TuneMode {
    static MODE: std::sync::OnceLock<TuneMode> = std::sync::OnceLock::new();
    MODE.get_or_init(|| match std::env::var("PSVD_GEMM_TUNE") {
        Err(_) => TuneMode::Off,
        Ok(v) => {
            let t = v.trim();
            if t.is_empty() || t.eq_ignore_ascii_case("0") || t.eq_ignore_ascii_case("off") {
                TuneMode::Off
            } else if t.eq_ignore_ascii_case("1")
                || t.eq_ignore_ascii_case("on")
                || t.eq_ignore_ascii_case("true")
            {
                TuneMode::InProcess
            } else {
                TuneMode::Profile(t.to_string())
            }
        }
    })
}

/// The process-wide blocking for dtype `T`, resolving it on first use per
/// the module docs. Immutable once returned.
pub(crate) fn resolved<T: Scalar>() -> Blocking {
    resolved_with_source::<T>().0
}

pub(crate) fn resolved_with_source<T: Scalar>() -> (Blocking, BlockingSource) {
    *T::gemm_cells().blocking.get_or_init(|| {
        let kern = kernel::selected::<T>();
        match tune_mode() {
            TuneMode::Off => (Blocking::default_for(kern), BlockingSource::Default),
            TuneMode::InProcess => (super::autotune::tune_now(kern).0, BlockingSource::Tuned),
            TuneMode::Profile(path) => super::autotune::load_or_tune(path, kern),
        }
    })
}

/// Force resolution through the autotuner right now (ignoring an `Off`
/// tune mode), unless blocking has already been resolved for `T` — the
/// one-shot result is process-wide and immutable, so call this before
/// the first large GEMM to take effect. Returns the resolution and
/// whether this call performed it.
pub(crate) fn resolve_by_tuning<T: Scalar>() -> ((Blocking, BlockingSource), bool) {
    let cell = &T::gemm_cells().blocking;
    let already = cell.get().is_some();
    let out = *cell.get_or_init(|| {
        let kern = kernel::selected::<T>();
        match tune_mode() {
            TuneMode::Profile(path) => super::autotune::load_or_tune(path, kern),
            _ => (super::autotune::tune_now(kern).0, BlockingSource::Tuned),
        }
    });
    (out, !already)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::kernel::ScalarKernel;

    #[test]
    fn defaults_validate_for_every_kernel() {
        for kern in kernel::available::<f64>() {
            let b = Blocking::default_for(*kern);
            assert_eq!(b.mc % kern.mr(), 0, "{}: MC not mr-aligned", kern.name());
            assert!(b.mc <= DEFAULT_MC && b.mc + kern.mr() > DEFAULT_MC);
            assert_eq!((b.kc, b.nc), (256, DEFAULT_NC));
        }
        for kern in kernel::available::<f32>() {
            let b = Blocking::default_for(*kern);
            assert_eq!(b.mc % kern.mr(), 0, "{}: MC not mr-aligned", kern.name());
            assert_eq!(
                (b.kc, b.nc),
                (512, DEFAULT_NC),
                "f32 K-panels are twice as deep in the same byte budget"
            );
        }
        // The scalar oracle keeps the pre-SIMD engine's exact MC and KC.
        let b = Blocking::default_for::<f64>(&ScalarKernel);
        assert_eq!((b.mc, b.kc), (DEFAULT_MC, 256));
    }

    #[test]
    fn misaligned_mc_and_nc_are_rejected() {
        let k = ScalarKernel;
        assert_eq!(
            Blocking::try_new::<f64>(130, 256, 4096, &k),
            Err(BlockingError::McMisaligned { mc: 130, mr: 4, kernel: "scalar" })
        );
        assert_eq!(
            Blocking::try_new::<f64>(128, 256, 4100, &k),
            Err(BlockingError::NcMisaligned { nc: 4100, nr: 8, kernel: "scalar" })
        );
        assert_eq!(Blocking::try_new::<f64>(0, 256, 4096, &k), Err(BlockingError::Zero("MC")));
        assert!(matches!(
            Blocking::try_new::<f64>(1 << 12, 1 << 12, 4096, &k),
            Err(BlockingError::PackTooLarge { .. })
        ));
        let err = Blocking::try_new::<f64>(130, 256, 4096, &k).unwrap_err();
        assert!(err.to_string().contains("MC = 130"));
    }

    #[test]
    fn pack_cap_is_byte_based() {
        let k = ScalarKernel;
        // 1<<12 x 1<<10 elements: 32 MiB at f64 (rejected), 16 MiB at
        // f32 (the boundary — accepted).
        assert!(Blocking::try_new::<f64>(1 << 12, 1 << 10, 4096, &k).is_err());
        assert!(Blocking::try_new::<f32>(1 << 12, 1 << 10, 4096, &k).is_ok());
        assert_eq!(max_pack_a_elems::<f32>(), 2 * max_pack_a_elems::<f64>());
    }
}
