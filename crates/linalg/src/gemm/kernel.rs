//! Micro-kernel abstraction and runtime CPU dispatch.
//!
//! The packed engine's innermost computation is an `MR x NR` register-tile
//! update. This module defines the [`MicroKernel`] trait that tile lives
//! behind — generic over the sealed [`Scalar`] element type, `f64` by
//! default — the portable [`ScalarKernel`] (the bitwise determinism oracle
//! for *each* dtype — its floating-point op sequence is exactly the
//! pre-SIMD engine's), and the per-dtype process-wide selection logic:
//!
//! 1. `PSVD_GEMM_KERNEL=<name>` forces a kernel by name (`scalar`, and on
//!    x86_64 with the matching CPU features `avx2` / `fma`; the names are
//!    dtype-agnostic — at f32 they resolve to the double-width `_ps`
//!    variants); an unknown or unavailable name panics with the available
//!    list, so misconfigured tests fail loudly instead of silently
//!    measuring the wrong kernel.
//! 2. Otherwise the widest kernel the CPU supports is detected once at
//!    first use (`fma` > `avx2` > `scalar` on x86_64; `scalar` elsewhere).
//!
//! Selection happens once per process *per dtype* (the registries live in
//! [`Scalar::gemm_cells`] — Rust has no generic statics) and is immutable
//! afterwards, which is what keeps the per-(kernel, blocking,
//! thread-count, dtype) bitwise determinism contract meaningful: within a
//! process, every GEMM at a given dtype sees the same kernel. Tests and
//! benches that want a *different* kernel pass one explicitly via
//! [`crate::gemm::packed::matmul_with`] and friends instead of mutating
//! global state.
//!
//! ## Rounding classes
//!
//! Kernels whose per-element update is round(mul) then round(add) in
//! ascending `k` ([`MicroKernel::fused`] `== false`) are **bitwise
//! identical** to the scalar oracle at the same dtype — the AVX2 kernels
//! are pure-SIMD data parallelism, not a reassociation. Fused kernels
//! (`fma`) round once per multiply-add and therefore differ from the
//! oracle at the last ulp; they are still bitwise deterministic across
//! thread counts and shapes, just a distinct rounding class. Rounding
//! classes never mix across dtypes: an f32 kernel's results relate to the
//! f32 oracle, not to any f64 path.

use crate::scalar::Scalar;

/// Hard upper bound on micro-tile rows any kernel may declare. The engine
/// sizes its stack accumulator tile from these, so they are compile-time
/// constants rather than per-kernel queries.
pub const MAX_MR: usize = 8;
/// Hard upper bound on micro-tile columns any kernel may declare
/// (16 admits the double-width f32 SIMD tiles).
pub const MAX_NR: usize = 16;

/// One register-tile micro-kernel: `acc += A-strip * B-strip` over a
/// single K-panel, at element type `T`.
///
/// `astrip` holds `kc` steps of `mr()` values (packed column-major within
/// the strip: element `(ir, kk)` at `kk * mr + ir`), `bstrip` holds `kc`
/// steps of `nr()` values (`(kk, jr)` at `kk * nr + jr`), and `acc` is the
/// row-major `mr() x nr()` accumulator tile. Every implementation must
/// accumulate each `acc` element in ascending `kk` — that invariant (plus
/// the engine never splitting K across threads) is what makes results a
/// pure function of (kernel, blocking, shape, dtype), independent of
/// thread count.
pub trait MicroKernel<T: Scalar = f64>: Sync {
    /// Stable name used by `PSVD_GEMM_KERNEL`, test matrices and bench
    /// JSON.
    fn name(&self) -> &'static str;

    /// Micro-tile rows (`<=` [`MAX_MR`]; the engine's row partition and
    /// `MC` must be multiples of this).
    fn mr(&self) -> usize;

    /// Micro-tile columns (`<=` [`MAX_NR`]).
    fn nr(&self) -> usize;

    /// True when the kernel contracts multiply-add into a single rounding
    /// (FMA). Non-fused kernels are bitwise identical to [`ScalarKernel`]
    /// at the same dtype.
    fn fused(&self) -> bool {
        false
    }

    /// `acc += astrip * bstrip` over one K-panel of packed operands.
    /// `astrip.len() == kc * mr()`, `bstrip.len() == kc * nr()`,
    /// `acc.len() == mr() * nr()`.
    fn run(&self, astrip: &[T], bstrip: &[T], acc: &mut [T]);

    /// The same flop sequence as [`run`](MicroKernel::run), reading the A
    /// operand in place instead of from a packed strip: element
    /// `(ir, kk)` is `*ap.add(ir * ars + kk)`. This is the tall-skinny
    /// streaming path's entry — it skips A packing entirely for row-major
    /// operands. Must produce bitwise-identical results to `run` on the
    /// equivalent packed strip.
    ///
    /// # Safety
    ///
    /// `ap` must point to `mr()` full rows of at least `kc` readable
    /// elements at row stride `ars` (callers handle partial edge strips
    /// by packing instead).
    unsafe fn run_strided(&self, kc: usize, ap: *const T, ars: usize, bstrip: &[T], acc: &mut [T]);
}

/// The portable reference micro-kernel: a branch-free 4x8 tile whose
/// fixed-trip loops LLVM unrolls and autovectorizes, implemented for both
/// dtypes with the identical op sequence. Its per-element op sequence is
/// exactly the pre-SIMD packed engine's, which makes it the determinism
/// oracle every other kernel (of the same dtype) is validated against.
pub struct ScalarKernel;

/// Micro-tile rows of the scalar oracle.
pub const SCALAR_MR: usize = 4;
/// Micro-tile columns of the scalar oracle.
pub const SCALAR_NR: usize = 8;

impl<T: Scalar> MicroKernel<T> for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn mr(&self) -> usize {
        SCALAR_MR
    }

    fn nr(&self) -> usize {
        SCALAR_NR
    }

    fn run(&self, astrip: &[T], bstrip: &[T], acc: &mut [T]) {
        debug_assert_eq!(astrip.len() % SCALAR_MR, 0);
        debug_assert_eq!(bstrip.len() % SCALAR_NR, 0);
        // Fixed-size tile on the stack so LLVM keeps the accumulators in
        // vector registers across the K loop (a slice-typed accumulator
        // defeats that). The copies are exact, so the op sequence per
        // element is unchanged.
        let mut tile = [T::ZERO; SCALAR_MR * SCALAR_NR];
        tile.copy_from_slice(&acc[..SCALAR_MR * SCALAR_NR]);
        for (avals, bvals) in astrip.chunks_exact(SCALAR_MR).zip(bstrip.chunks_exact(SCALAR_NR)) {
            let (a0, a1, a2, a3) = (avals[0], avals[1], avals[2], avals[3]);
            for (j, &bj) in bvals.iter().enumerate() {
                tile[j] += a0 * bj;
                tile[SCALAR_NR + j] += a1 * bj;
                tile[2 * SCALAR_NR + j] += a2 * bj;
                tile[3 * SCALAR_NR + j] += a3 * bj;
            }
        }
        acc[..SCALAR_MR * SCALAR_NR].copy_from_slice(&tile);
    }

    unsafe fn run_strided(&self, kc: usize, ap: *const T, ars: usize, bstrip: &[T], acc: &mut [T]) {
        debug_assert!(bstrip.len() >= kc * SCALAR_NR);
        let mut tile = [T::ZERO; SCALAR_MR * SCALAR_NR];
        tile.copy_from_slice(&acc[..SCALAR_MR * SCALAR_NR]);
        for kk in 0..kc {
            let (a0, a1, a2, a3) =
                (*ap.add(kk), *ap.add(ars + kk), *ap.add(2 * ars + kk), *ap.add(3 * ars + kk));
            let bvals = &bstrip[kk * SCALAR_NR..(kk + 1) * SCALAR_NR];
            for (j, &bj) in bvals.iter().enumerate() {
                tile[j] += a0 * bj;
                tile[SCALAR_NR + j] += a1 * bj;
                tile[2 * SCALAR_NR + j] += a2 * bj;
                tile[3 * SCALAR_NR + j] += a3 * bj;
            }
        }
        acc[..SCALAR_MR * SCALAR_NR].copy_from_slice(&tile);
    }
}

static SCALAR: ScalarKernel = ScalarKernel;

/// Detect the f64 kernels this host can run (scalar first, widest last).
pub(crate) fn detect_f64() -> Vec<&'static dyn MicroKernel<f64>> {
    #[allow(unused_mut)]
    let mut list: Vec<&'static dyn MicroKernel<f64>> = vec![&SCALAR];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            list.push(&super::x86::AVX2);
            if std::arch::is_x86_feature_detected!("fma") {
                list.push(&super::x86::FMA);
            }
        }
    }
    list
}

/// Detect the f32 kernels this host can run (scalar first, widest last).
/// The SIMD variants carry the same `name()`s as their f64 siblings but
/// run 8-lane `_ps` tiles twice as wide.
pub(crate) fn detect_f32() -> Vec<&'static dyn MicroKernel<f32>> {
    #[allow(unused_mut)]
    let mut list: Vec<&'static dyn MicroKernel<f32>> = vec![&SCALAR];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            list.push(&super::x86::AVX2_F32);
            if std::arch::is_x86_feature_detected!("fma") {
                list.push(&super::x86::FMA_F32);
            }
        }
    }
    list
}

/// Every micro-kernel this process can run at dtype `T`, detection-ordered
/// from portable to widest (`scalar` first, preferred kernel last).
/// `scalar` is always present.
pub fn available<T: Scalar>() -> &'static [&'static dyn MicroKernel<T>] {
    T::gemm_cells().registry.get_or_init(T::detect_kernels).as_slice()
}

/// Look a kernel up by its stable name, if available on this host at `T`.
pub fn by_name<T: Scalar>(name: &str) -> Option<&'static dyn MicroKernel<T>> {
    available::<T>().iter().copied().find(|k| k.name() == name)
}

/// Resolve a kernel from an optional override string (the testable core
/// of [`selected`]): `None` picks the widest available kernel; `Some`
/// must name an available kernel exactly.
pub(crate) fn choose<T: Scalar>(over: Option<&str>) -> Result<&'static dyn MicroKernel<T>, String> {
    match over {
        None => Ok(*available::<T>().last().expect("scalar kernel always present")),
        Some(name) => {
            let name = name.trim();
            by_name::<T>(name).ok_or_else(|| {
                let names: Vec<&str> = available::<T>().iter().map(|k| k.name()).collect();
                format!(
                    "PSVD_GEMM_KERNEL={name:?} is not available on this host at {}; \
                     available kernels: {names:?}",
                    T::NAME
                )
            })
        }
    }
}

/// The process-wide micro-kernel for dtype `T`, resolved once at first
/// use from `PSVD_GEMM_KERNEL` or CPU-feature detection (see module docs).
pub fn selected<T: Scalar>() -> &'static dyn MicroKernel<T> {
    *T::gemm_cells().selected.get_or_init(|| {
        let over = std::env::var("PSVD_GEMM_KERNEL").ok().filter(|v| !v.trim().is_empty());
        choose::<T>(over.as_deref()).unwrap_or_else(|e| panic!("{e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available_and_first() {
        fn probe<T: Scalar>() {
            let list = available::<T>();
            assert!(!list.is_empty());
            assert_eq!(list[0].name(), "scalar");
            assert!(by_name::<T>("scalar").is_some());
        }
        probe::<f64>();
        probe::<f32>();
    }

    #[test]
    fn tile_bounds_hold_for_every_kernel() {
        fn probe<T: Scalar>() {
            for k in available::<T>() {
                assert!(k.mr() >= 1 && k.mr() <= MAX_MR, "{} mr out of range", k.name());
                assert!(k.nr() >= 1 && k.nr() <= MAX_NR, "{} nr out of range", k.name());
            }
        }
        probe::<f64>();
        probe::<f32>();
    }

    #[test]
    fn f32_simd_tiles_are_twice_as_wide() {
        for k64 in available::<f64>() {
            let k32 = by_name::<f32>(k64.name())
                .unwrap_or_else(|| panic!("{} missing at f32", k64.name()));
            assert_eq!(k32.fused(), k64.fused(), "{}: rounding class differs", k64.name());
            if k64.name() != "scalar" {
                assert_eq!(k32.nr(), 2 * k64.nr(), "{}: f32 nr must double", k64.name());
            }
        }
    }

    #[test]
    fn choose_rejects_unknown_names() {
        let err = choose::<f64>(Some("no-such-kernel")).err().expect("must be rejected");
        assert!(err.contains("no-such-kernel"), "error should name the bad kernel: {err}");
        assert!(err.contains("scalar"), "error should list available kernels: {err}");
        assert!(choose::<f32>(Some("no-such-kernel")).is_err());
    }

    #[test]
    fn choose_default_prefers_widest() {
        fn probe<T: Scalar>() {
            let k = choose::<T>(None).unwrap();
            assert_eq!(k.name(), available::<T>().last().unwrap().name());
        }
        probe::<f64>();
        probe::<f32>();
    }

    #[test]
    fn run_strided_bitwise_matches_run_packed() {
        fn probe<T: Scalar>() {
            for kern in available::<T>() {
                let (mr, nr) = (kern.mr(), kern.nr());
                let kc = 37;
                // A strip laid out as mr rows of a wider row-major buffer.
                let ars = kc + 5;
                let arows: Vec<T> = (0..mr * ars)
                    .map(|i| T::from_f64(((i * 13 % 97) as f64 * 0.31).sin()))
                    .collect();
                let bstrip: Vec<T> =
                    (0..kc * nr).map(|i| T::from_f64(((i * 7 % 89) as f64 * 0.17).cos())).collect();
                // Pack the same A values into the strip layout run() expects.
                let mut astrip = vec![T::ZERO; kc * mr];
                for kk in 0..kc {
                    for ir in 0..mr {
                        astrip[kk * mr + ir] = arows[ir * ars + kk];
                    }
                }
                let mut acc_packed = vec![T::ZERO; mr * nr];
                kern.run(&astrip, &bstrip, &mut acc_packed);
                let mut acc_strided = vec![T::ZERO; mr * nr];
                // SAFETY: arows holds mr rows of ars >= kc elements each.
                unsafe { kern.run_strided(kc, arows.as_ptr(), ars, &bstrip, &mut acc_strided) };
                assert_eq!(
                    acc_packed,
                    acc_strided,
                    "{} ({}): strided A changed bits",
                    kern.name(),
                    T::NAME
                );
            }
        }
        probe::<f64>();
        probe::<f32>();
    }

    #[test]
    fn non_fused_kernels_bitwise_match_scalar() {
        fn probe<T: Scalar>() {
            let kc = 41;
            for kern in available::<T>().iter().filter(|k| !k.fused()) {
                let (mr, nr) = (kern.mr(), kern.nr());
                let astrip: Vec<T> = (0..kc * mr)
                    .map(|i| T::from_f64(((i * 11 % 83) as f64 * 0.23).sin()))
                    .collect();
                let bstrip: Vec<T> =
                    (0..kc * nr).map(|i| T::from_f64(((i * 5 % 79) as f64 * 0.19).cos())).collect();
                let mut acc = vec![T::ZERO; mr * nr];
                kern.run(&astrip, &bstrip, &mut acc);
                // Re-run element-wise through the scalar oracle's op order:
                // each acc element is an independent ascending-k mul-then-add
                // chain, so tiles of different shapes still compare 1:1.
                let mut want = vec![T::ZERO; mr * nr];
                for kk in 0..kc {
                    for ir in 0..mr {
                        for jr in 0..nr {
                            want[ir * nr + jr] += astrip[kk * mr + ir] * bstrip[kk * nr + jr];
                        }
                    }
                }
                assert_eq!(
                    acc,
                    want,
                    "{} ({}): diverged from the scalar op order",
                    kern.name(),
                    T::NAME
                );
            }
            // And the oracle itself agrees with the element-wise chain.
            let scalar = by_name::<T>("scalar").unwrap();
            let mut acc = vec![T::ZERO; scalar.mr() * scalar.nr()];
            scalar.run(
                &vec![T::from_f64(1.5); kc * SCALAR_MR],
                &vec![T::from_f64(0.25); kc * SCALAR_NR],
                &mut acc,
            );
            assert!(acc.iter().all(|&v| v == T::from_f64(1.5 * 0.25 * kc as f64)));
        }
        probe::<f64>();
        probe::<f32>();
    }
}
