//! Micro-kernel abstraction and runtime CPU dispatch.
//!
//! The packed engine's innermost computation is an `MR x NR` register-tile
//! update. This module defines the [`MicroKernel`] trait that tile lives
//! behind, the portable [`ScalarKernel`] (the bitwise determinism oracle —
//! its floating-point op sequence is exactly the pre-SIMD engine's), and
//! the process-wide selection logic:
//!
//! 1. `PSVD_GEMM_KERNEL=<name>` forces a kernel by name (`scalar`, and on
//!    x86_64 with the matching CPU features `avx2` / `fma`); an unknown or
//!    unavailable name panics with the available list, so misconfigured
//!    tests fail loudly instead of silently measuring the wrong kernel.
//! 2. Otherwise the widest kernel the CPU supports is detected once at
//!    first use (`fma` > `avx2` > `scalar` on x86_64; `scalar` elsewhere).
//!
//! Selection happens once per process and is immutable afterwards, which
//! is what keeps the per-(kernel, blocking, thread-count) bitwise
//! determinism contract meaningful: within a process, every GEMM sees the
//! same kernel. Tests and benches that want a *different* kernel pass one
//! explicitly via [`crate::gemm::packed::matmul_with`] and friends instead
//! of mutating global state.
//!
//! ## Rounding classes
//!
//! Kernels whose per-element update is round(mul) then round(add) in
//! ascending `k` ([`MicroKernel::fused`] `== false`) are **bitwise
//! identical** to the scalar oracle — the AVX2 kernel is pure-SIMD data
//! parallelism, not a reassociation. Fused kernels (`fma`) round once per
//! multiply-add and therefore differ from the oracle at the last ulp;
//! they are still bitwise deterministic across thread counts and shapes,
//! just a distinct rounding class.

use std::sync::OnceLock;

/// Hard upper bound on micro-tile rows any kernel may declare. The engine
/// sizes its stack accumulator tile from these, so they are compile-time
/// constants rather than per-kernel queries.
pub const MAX_MR: usize = 8;
/// Hard upper bound on micro-tile columns any kernel may declare.
pub const MAX_NR: usize = 8;

/// One register-tile micro-kernel: `acc += A-strip * B-strip` over a
/// single K-panel.
///
/// `astrip` holds `kc` steps of `mr()` values (packed column-major within
/// the strip: element `(ir, kk)` at `kk * mr + ir`), `bstrip` holds `kc`
/// steps of `nr()` values (`(kk, jr)` at `kk * nr + jr`), and `acc` is the
/// row-major `mr() x nr()` accumulator tile. Every implementation must
/// accumulate each `acc` element in ascending `kk` — that invariant (plus
/// the engine never splitting K across threads) is what makes results a
/// pure function of (kernel, blocking, shape), independent of thread
/// count.
pub trait MicroKernel: Sync {
    /// Stable name used by `PSVD_GEMM_KERNEL`, test matrices and bench
    /// JSON.
    fn name(&self) -> &'static str;

    /// Micro-tile rows (`<=` [`MAX_MR`]; the engine's row partition and
    /// `MC` must be multiples of this).
    fn mr(&self) -> usize;

    /// Micro-tile columns (`<=` [`MAX_NR`]).
    fn nr(&self) -> usize;

    /// True when the kernel contracts multiply-add into a single rounding
    /// (FMA). Non-fused kernels are bitwise identical to [`ScalarKernel`].
    fn fused(&self) -> bool {
        false
    }

    /// `acc += astrip * bstrip` over one K-panel of packed operands.
    /// `astrip.len() == kc * mr()`, `bstrip.len() == kc * nr()`,
    /// `acc.len() == mr() * nr()`.
    fn run(&self, astrip: &[f64], bstrip: &[f64], acc: &mut [f64]);

    /// The same flop sequence as [`run`](MicroKernel::run), reading the A
    /// operand in place instead of from a packed strip: element
    /// `(ir, kk)` is `*ap.add(ir * ars + kk)`. This is the tall-skinny
    /// streaming path's entry — it skips A packing entirely for row-major
    /// operands. Must produce bitwise-identical results to `run` on the
    /// equivalent packed strip.
    ///
    /// # Safety
    ///
    /// `ap` must point to `mr()` full rows of at least `kc` readable
    /// elements at row stride `ars` (callers handle partial edge strips
    /// by packing instead).
    unsafe fn run_strided(
        &self,
        kc: usize,
        ap: *const f64,
        ars: usize,
        bstrip: &[f64],
        acc: &mut [f64],
    );
}

/// The portable reference micro-kernel: a branch-free 4x8 tile whose
/// fixed-trip loops LLVM unrolls and autovectorizes. Its per-element op
/// sequence is exactly the pre-SIMD packed engine's, which makes it the
/// determinism oracle every other kernel is validated against.
pub struct ScalarKernel;

/// Micro-tile rows of the scalar oracle.
pub const SCALAR_MR: usize = 4;
/// Micro-tile columns of the scalar oracle.
pub const SCALAR_NR: usize = 8;

impl MicroKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn mr(&self) -> usize {
        SCALAR_MR
    }

    fn nr(&self) -> usize {
        SCALAR_NR
    }

    fn run(&self, astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
        debug_assert_eq!(astrip.len() % SCALAR_MR, 0);
        debug_assert_eq!(bstrip.len() % SCALAR_NR, 0);
        // Fixed-size tile on the stack so LLVM keeps the accumulators in
        // vector registers across the K loop (a slice-typed accumulator
        // defeats that). The copies are exact, so the op sequence per
        // element is unchanged.
        let mut tile = [0.0f64; SCALAR_MR * SCALAR_NR];
        tile.copy_from_slice(&acc[..SCALAR_MR * SCALAR_NR]);
        for (avals, bvals) in astrip.chunks_exact(SCALAR_MR).zip(bstrip.chunks_exact(SCALAR_NR)) {
            let (a0, a1, a2, a3) = (avals[0], avals[1], avals[2], avals[3]);
            for (j, &bj) in bvals.iter().enumerate() {
                tile[j] += a0 * bj;
                tile[SCALAR_NR + j] += a1 * bj;
                tile[2 * SCALAR_NR + j] += a2 * bj;
                tile[3 * SCALAR_NR + j] += a3 * bj;
            }
        }
        acc[..SCALAR_MR * SCALAR_NR].copy_from_slice(&tile);
    }

    unsafe fn run_strided(
        &self,
        kc: usize,
        ap: *const f64,
        ars: usize,
        bstrip: &[f64],
        acc: &mut [f64],
    ) {
        debug_assert!(bstrip.len() >= kc * SCALAR_NR);
        let mut tile = [0.0f64; SCALAR_MR * SCALAR_NR];
        tile.copy_from_slice(&acc[..SCALAR_MR * SCALAR_NR]);
        for kk in 0..kc {
            let (a0, a1, a2, a3) =
                (*ap.add(kk), *ap.add(ars + kk), *ap.add(2 * ars + kk), *ap.add(3 * ars + kk));
            let bvals = &bstrip[kk * SCALAR_NR..(kk + 1) * SCALAR_NR];
            for (j, &bj) in bvals.iter().enumerate() {
                tile[j] += a0 * bj;
                tile[SCALAR_NR + j] += a1 * bj;
                tile[2 * SCALAR_NR + j] += a2 * bj;
                tile[3 * SCALAR_NR + j] += a3 * bj;
            }
        }
        acc[..SCALAR_MR * SCALAR_NR].copy_from_slice(&tile);
    }
}

static SCALAR: ScalarKernel = ScalarKernel;

/// Every micro-kernel this process can run, detection-ordered from
/// portable to widest (`scalar` first, preferred kernel last). `scalar`
/// is always present.
pub fn available() -> &'static [&'static dyn MicroKernel] {
    static AVAILABLE: OnceLock<Vec<&'static dyn MicroKernel>> = OnceLock::new();
    AVAILABLE.get_or_init(|| {
        #[allow(unused_mut)]
        let mut list: Vec<&'static dyn MicroKernel> = vec![&SCALAR];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                list.push(&super::x86::AVX2);
                if std::arch::is_x86_feature_detected!("fma") {
                    list.push(&super::x86::FMA);
                }
            }
        }
        list
    })
}

/// Look a kernel up by its stable name, if available on this host.
pub fn by_name(name: &str) -> Option<&'static dyn MicroKernel> {
    available().iter().copied().find(|k| k.name() == name)
}

/// Resolve a kernel from an optional override string (the testable core
/// of [`selected`]): `None` picks the widest available kernel; `Some`
/// must name an available kernel exactly.
pub(crate) fn choose(over: Option<&str>) -> Result<&'static dyn MicroKernel, String> {
    match over {
        None => Ok(*available().last().expect("scalar kernel always present")),
        Some(name) => {
            let name = name.trim();
            by_name(name).ok_or_else(|| {
                let names: Vec<&str> = available().iter().map(|k| k.name()).collect();
                format!(
                    "PSVD_GEMM_KERNEL={name:?} is not available on this host; \
                     available kernels: {names:?}"
                )
            })
        }
    }
}

/// The process-wide micro-kernel, resolved once at first use from
/// `PSVD_GEMM_KERNEL` or CPU-feature detection (see module docs).
pub fn selected() -> &'static dyn MicroKernel {
    static SELECTED: OnceLock<&'static dyn MicroKernel> = OnceLock::new();
    *SELECTED.get_or_init(|| {
        let over = std::env::var("PSVD_GEMM_KERNEL").ok().filter(|v| !v.trim().is_empty());
        choose(over.as_deref()).unwrap_or_else(|e| panic!("{e}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available_and_first() {
        let list = available();
        assert!(!list.is_empty());
        assert_eq!(list[0].name(), "scalar");
        assert!(by_name("scalar").is_some());
    }

    #[test]
    fn tile_bounds_hold_for_every_kernel() {
        for k in available() {
            assert!(k.mr() >= 1 && k.mr() <= MAX_MR, "{} mr out of range", k.name());
            assert!(k.nr() >= 1 && k.nr() <= MAX_NR, "{} nr out of range", k.name());
        }
    }

    #[test]
    fn choose_rejects_unknown_names() {
        let err = choose(Some("no-such-kernel")).err().expect("must be rejected");
        assert!(err.contains("no-such-kernel"), "error should name the bad kernel: {err}");
        assert!(err.contains("scalar"), "error should list available kernels: {err}");
    }

    #[test]
    fn choose_default_prefers_widest() {
        let k = choose(None).unwrap();
        assert_eq!(k.name(), available().last().unwrap().name());
    }

    #[test]
    fn run_strided_bitwise_matches_run_packed() {
        for kern in available() {
            let (mr, nr) = (kern.mr(), kern.nr());
            let kc = 37;
            // A strip laid out as mr rows of a wider row-major buffer.
            let ars = kc + 5;
            let arows: Vec<f64> =
                (0..mr * ars).map(|i| ((i * 13 % 97) as f64 * 0.31).sin()).collect();
            let bstrip: Vec<f64> =
                (0..kc * nr).map(|i| ((i * 7 % 89) as f64 * 0.17).cos()).collect();
            // Pack the same A values into the strip layout run() expects.
            let mut astrip = vec![0.0; kc * mr];
            for kk in 0..kc {
                for ir in 0..mr {
                    astrip[kk * mr + ir] = arows[ir * ars + kk];
                }
            }
            let mut acc_packed = vec![0.0; mr * nr];
            kern.run(&astrip, &bstrip, &mut acc_packed);
            let mut acc_strided = vec![0.0; mr * nr];
            // SAFETY: arows holds mr rows of ars >= kc elements each.
            unsafe { kern.run_strided(kc, arows.as_ptr(), ars, &bstrip, &mut acc_strided) };
            assert_eq!(acc_packed, acc_strided, "{}: strided A changed bits", kern.name());
        }
    }

    #[test]
    fn non_fused_kernels_bitwise_match_scalar() {
        let scalar = by_name("scalar").unwrap();
        let kc = 41;
        for kern in available().iter().filter(|k| !k.fused()) {
            let (mr, nr) = (kern.mr(), kern.nr());
            let astrip: Vec<f64> =
                (0..kc * mr).map(|i| ((i * 11 % 83) as f64 * 0.23).sin()).collect();
            let bstrip: Vec<f64> =
                (0..kc * nr).map(|i| ((i * 5 % 79) as f64 * 0.19).cos()).collect();
            let mut acc = vec![0.0; mr * nr];
            kern.run(&astrip, &bstrip, &mut acc);
            // Re-run element-wise through the scalar oracle's op order:
            // each acc element is an independent ascending-k mul-then-add
            // chain, so tiles of different shapes still compare 1:1.
            let mut want = vec![0.0; mr * nr];
            for kk in 0..kc {
                for ir in 0..mr {
                    for jr in 0..nr {
                        want[ir * nr + jr] += astrip[kk * mr + ir] * bstrip[kk * nr + jr];
                    }
                }
            }
            assert_eq!(acc, want, "{}: diverged from the scalar op order", kern.name());
        }
        // And the oracle itself agrees with the element-wise chain.
        let mut acc = vec![0.0; scalar.mr() * scalar.nr()];
        scalar.run(&vec![1.5; kc * 4], &vec![0.25; kc * 8], &mut acc);
        assert!(acc.iter().all(|&v| v == 1.5 * 0.25 * kc as f64));
    }
}
