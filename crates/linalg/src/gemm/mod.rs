//! Matrix multiplication kernels.
//!
//! Two tiers share one public API:
//!
//! * [`reference`] — simple cache-blocked serial loops. These are the
//!   semantic ground truth: easy to audit, tested directly against naive
//!   triple loops, and used verbatim for problems too small to amortize
//!   packing and thread dispatch.
//! * [`packed`] — a BLIS-style packed-panel engine whose inner `MR x NR`
//!   register tile is a [`kernels::MicroKernel`] selected once per
//!   process by runtime CPU-feature detection (explicit AVX2/FMA
//!   `std::arch` kernels on x86_64, a portable scalar oracle everywhere;
//!   override with `PSVD_GEMM_KERNEL`), parallelized over row blocks of
//!   `C` by the persistent worker pool in [`crate::par`]. Cache blocking
//!   (`MC`/`KC`/`NC`) comes from validated defaults or the one-shot
//!   [`autotune`]r (`PSVD_GEMM_TUNE`), and shapes with `m >> n, k` take
//!   a tall-skinny streaming path that skips A-packing entirely.
//!
//! The top-level functions ([`matmul`], [`matmul_tn`], [`matmul_nt`],
//! [`gram`], [`matvec`], [`matvec_t`]) pick a tier from the *problem size
//! only* — never from the thread count — so a given problem always takes
//! the same code path and, because the engine partitions output elements
//! (no split-K reductions), produces bitwise-identical results for every
//! value of `PSVD_NUM_THREADS`, including 1. The full determinism
//! contract is per (kernel, blocking, thread-count): with the kernel and
//! blocking fixed — and both are immutable once resolved for a process —
//! any thread count gives the same bits, and `PSVD_GEMM_KERNEL=scalar`
//! with default blocking reproduces the pre-SIMD engine bit-for-bit.
//!
//! Transpose-aware variants avoid materializing explicit transposes for
//! the `AᵀB` / `ABᵀ` patterns the SVD drivers hit constantly (Gram
//! matrices, projections); the packed engine absorbs transposition into
//! its panel packing, so both layouts run the same micro-kernel.

pub(crate) mod blocking;
pub(crate) mod kernel;
mod pack;
mod tall_skinny;
#[cfg(target_arch = "x86_64")]
mod x86;

pub mod autotune;
pub mod packed;
pub mod reference;

pub use autotune::{autotune, autotune_for, TuneReport, TuneSample};
pub use blocking::{Blocking, BlockingError, BlockingSource};
pub use pack::{strip_layout, PackLayoutError};

/// Micro-kernel introspection: the [`MicroKernel`](kernels::MicroKernel)
/// trait, the host's available kernel list, name lookup, and the
/// process-wide selection. Tests and benches drive specific kernels
/// through [`packed::matmul_with`] and friends; nothing here is mutable.
pub mod kernels {
    pub use super::kernel::{available, by_name, selected, MicroKernel, ScalarKernel};
    pub use super::kernel::{MAX_MR, MAX_NR, SCALAR_MR, SCALAR_NR};
}

/// The process-wide cache blocking and how it was obtained (resolving it
/// on first use — see [`autotune`] and the `PSVD_GEMM_TUNE` modes).
/// Each element dtype resolves its own blocking; this reports `f64`'s.
pub fn current_blocking() -> (Blocking, BlockingSource) {
    blocking::resolved_with_source::<f64>()
}

/// [`current_blocking`] for a specific element dtype.
pub fn current_blocking_for<T: Scalar>() -> (Blocking, BlockingSource) {
    blocking::resolved_with_source::<T>()
}

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::view::{MatView, MatViewMut};

/// Flop count (`2mnk`) above which matrix-matrix products use the packed
/// parallel engine. Below it, packing overhead dominates and the serial
/// reference loops win.
const PAR_MIN_FLOPS: usize = 1 << 20;

/// Flop count (`2mn`) above which matrix-vector products are threaded.
const PAR_MIN_MV_FLOPS: usize = 1 << 18;

/// `C = A * B`.
pub fn matmul<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions mismatch {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    if 2 * a.rows() * a.cols() * b.cols() >= PAR_MIN_FLOPS {
        packed::matmul(a, b)
    } else {
        reference::matmul(a, b)
    }
}

/// `C = Aᵀ * B` without materializing `Aᵀ`.
pub fn matmul_tn<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: row counts must match");
    if 2 * a.cols() * a.rows() * b.cols() >= PAR_MIN_FLOPS {
        packed::matmul_tn(a, b)
    } else {
        reference::matmul_tn(a, b)
    }
}

/// `C = A * Bᵀ` without materializing `Bᵀ`.
pub fn matmul_nt<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: column counts must match");
    if 2 * a.rows() * a.cols() * b.rows() >= PAR_MIN_FLOPS {
        packed::matmul_nt(a, b)
    } else {
        reference::matmul_nt(a, b)
    }
}

/// `y = A * x`.
pub fn matvec<T: Scalar>(a: &Matrix<T>, x: &[T]) -> Vec<T> {
    assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
    if 2 * a.rows() * a.cols() >= PAR_MIN_MV_FLOPS {
        packed::matvec(a, x)
    } else {
        reference::matvec(a, x)
    }
}

/// `y = Aᵀ * x`.
pub fn matvec_t<T: Scalar>(a: &Matrix<T>, x: &[T]) -> Vec<T> {
    assert_eq!(a.rows(), x.len(), "matvec_t: dimension mismatch");
    if 2 * a.rows() * a.cols() >= PAR_MIN_MV_FLOPS {
        packed::matvec_t(a, x)
    } else {
        reference::matvec_t(a, x)
    }
}

/// The Gram matrix `AᵀA` (symmetric; only the upper triangle is computed,
/// then mirrored, halving the flops of a general `AᵀB`).
pub fn gram<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    let mut g = Matrix::zeros(a.cols(), a.cols());
    gram_view_dispatch(a.view(), &mut g);
    g
}

// --- View-consuming `_into` entry points ---------------------------------
//
// Same tier dispatch as the allocating functions above — a pure function
// of the problem *shape*, never of strides or thread count — so each
// `_into` call is bitwise identical to its allocating counterpart and
// stays bitwise deterministic across thread counts. Outputs are reshaped
// in place: when the destination buffer already has enough capacity, the
// call performs zero heap allocation. Input views borrow their matrices
// immutably while `c` is borrowed mutably, so input/output aliasing is
// rejected at compile time.

/// `C = A * B` written into `c`. Bitwise identical to [`matmul`].
pub fn matmul_into<T: Scalar>(a: MatView<'_, T>, b: MatView<'_, T>, c: &mut Matrix<T>) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions mismatch {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    c.reshape_zeroed(a.rows(), b.cols());
    let ldc = b.cols();
    if 2 * a.rows() * a.cols() * b.cols() >= PAR_MIN_FLOPS {
        packed::gemm(a, b, c.as_mut_slice(), ldc);
    } else {
        reference::gemm_view(a, b, c.as_mut_slice(), ldc);
    }
}

/// `C = Aᵀ * B` written into `c` without materializing `Aᵀ`. Bitwise
/// identical to [`matmul_tn`].
pub fn matmul_tn_into<T: Scalar>(a: MatView<'_, T>, b: MatView<'_, T>, c: &mut Matrix<T>) {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: row counts must match");
    let at = a.transposed();
    c.reshape_zeroed(at.rows(), b.cols());
    let ldc = b.cols();
    if 2 * at.rows() * at.cols() * b.cols() >= PAR_MIN_FLOPS {
        packed::gemm(at, b, c.as_mut_slice(), ldc);
    } else {
        reference::gemm_view(at, b, c.as_mut_slice(), ldc);
    }
}

/// `C = A * Bᵀ` written into `c` without materializing `Bᵀ`. Bitwise
/// identical to [`matmul_nt`].
pub fn matmul_nt_into<T: Scalar>(a: MatView<'_, T>, b: MatView<'_, T>, c: &mut Matrix<T>) {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: column counts must match");
    let bt = b.transposed();
    c.reshape_zeroed(a.rows(), bt.cols());
    let ldc = bt.cols();
    if 2 * a.rows() * a.cols() * bt.cols() >= PAR_MIN_FLOPS {
        packed::gemm(a, bt, c.as_mut_slice(), ldc);
    } else {
        reference::gemm_view(a, bt, c.as_mut_slice(), ldc);
    }
}

/// `C += A * B` accumulated into a mutable strided view with unit column
/// stride (e.g. a [`Matrix::block_mut`] trailing-matrix region). This is
/// the update primitive of the blocked compact-WY factorizations: both
/// engines accumulate per output element in ascending `k`, so the tier
/// dispatch (a pure function of the problem shape) keeps results bitwise
/// deterministic across thread counts, exactly like [`matmul_into`].
pub fn matmul_acc_into<T: Scalar>(a: MatView<'_, T>, b: MatView<'_, T>, c: &mut MatViewMut<'_, T>) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_acc_into: inner dimensions mismatch {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        (c.rows(), c.cols()),
        (a.rows(), b.cols()),
        "matmul_acc_into: output shape mismatch"
    );
    assert_eq!(c.cs, 1, "matmul_acc_into: output must have unit column stride");
    let ldc = c.rs;
    if 2 * a.rows() * a.cols() * b.cols() >= PAR_MIN_FLOPS {
        packed::gemm(a, b, c.data, ldc);
    } else {
        reference::gemm_view(a, b, c.data, ldc);
    }
}

/// `G = AᵀA` written into `g`. Bitwise identical to [`gram`].
pub fn gram_into<T: Scalar>(a: MatView<'_, T>, g: &mut Matrix<T>) {
    gram_view_dispatch(a, g);
}

fn gram_view_dispatch<T: Scalar>(a: MatView<'_, T>, g: &mut Matrix<T>) {
    g.reshape_zeroed(a.cols(), a.cols());
    if a.rows() * a.cols() * a.cols() >= PAR_MIN_FLOPS {
        packed::gram_view(a, g.as_mut_slice());
    } else {
        reference::gram_view(a, g.as_mut_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn test_mat(r: usize, c: usize, seed: f64) -> Matrix {
        Matrix::from_fn(r, c, |i, j| ((i * 31 + j * 17) as f64 * seed).sin())
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_matches_naive_rectangular() {
        let a = test_mat(37, 53, 0.7);
        let b = test_mat(53, 29, 1.3);
        let c = matmul(&a, &b);
        let d = naive(&a, &b);
        assert!((&c - &d).max_abs() < 1e-12);
    }

    #[test]
    fn matmul_crosses_block_boundaries() {
        let a = test_mat(130, 70, 0.3);
        let b = test_mat(70, 65, 0.9);
        assert!((&matmul(&a, &b) - &naive(&a, &b)).max_abs() < 1e-11);
    }

    #[test]
    fn matmul_identity() {
        let a = test_mat(20, 20, 0.5);
        let i = Matrix::identity(20);
        assert!((&matmul(&a, &i) - &a).max_abs() < 1e-15);
        assert!((&matmul(&i, &a) - &a).max_abs() < 1e-15);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = test_mat(40, 13, 0.2);
        let b = test_mat(40, 21, 0.4);
        let c = matmul_tn(&a, &b);
        let d = matmul(&a.transpose(), &b);
        assert!((&c - &d).max_abs() < 1e-12);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = test_mat(23, 40, 0.2);
        let b = test_mat(31, 40, 0.4);
        let c = matmul_nt(&a, &b);
        let d = matmul(&a, &b.transpose());
        assert!((&c - &d).max_abs() < 1e-12);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = test_mat(17, 9, 0.8);
        let x: Vec<f64> = (0..9).map(|i| (i as f64).cos()).collect();
        let y = matvec(&a, &x);
        let xm = Matrix::from_columns(std::slice::from_ref(&x));
        let ym = matmul(&a, &xm);
        for i in 0..17 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-13);
        }
    }

    #[test]
    fn matvec_t_matches() {
        let a = test_mat(17, 9, 0.8);
        let x: Vec<f64> = (0..17).map(|i| (i as f64).cos()).collect();
        let y = matvec_t(&a, &x);
        let expected = matvec(&a.transpose(), &x);
        for (yv, ev) in y.iter().zip(&expected) {
            assert!((yv - ev).abs() < 1e-13);
        }
    }

    #[test]
    fn gram_matches_tn() {
        let a = test_mat(50, 12, 0.6);
        let g = gram(&a);
        let g2 = matmul_tn(&a, &a);
        assert!((&g - &g2).max_abs() < 1e-12);
        // Symmetry.
        assert!((&g - &g.transpose()).max_abs() == 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        matmul(&a, &b);
    }

    // --- Packed engine vs reference ---------------------------------

    #[test]
    fn packed_matmul_matches_reference_odd_shapes() {
        // Shapes chosen to straddle MR/NR/KC/MC tile boundaries.
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (5, 9, 17), (129, 257, 65), (130, 300, 33)]
        {
            let a = test_mat(m, k, 0.37);
            let b = test_mat(k, n, 0.73);
            let diff = (&packed::matmul(&a, &b) - &reference::matmul(&a, &b)).max_abs();
            assert!(diff < 1e-11, "({m},{k},{n}) diverged by {diff}");
        }
    }

    #[test]
    fn packed_handles_degenerate_shapes() {
        // k = 0: the product is defined and identically zero.
        let a = Matrix::<f64>::zeros(4, 0);
        let b = Matrix::zeros(0, 6);
        assert_eq!(packed::matmul(&a, &b), Matrix::zeros(4, 6));
        // Single row / single column operands.
        let r = test_mat(1, 40, 0.5);
        let c = test_mat(40, 1, 0.9);
        assert!((&packed::matmul(&r, &c) - &reference::matmul(&r, &c)).max_abs() < 1e-12);
        assert!((&packed::matmul(&c, &r) - &reference::matmul(&c, &r)).max_abs() < 1e-12);
    }

    #[test]
    fn packed_tn_nt_match_reference() {
        let a = test_mat(70, 37, 0.21);
        let b = test_mat(70, 51, 0.43);
        assert!((&packed::matmul_tn(&a, &b) - &reference::matmul_tn(&a, &b)).max_abs() < 1e-11);
        let a = test_mat(37, 70, 0.21);
        let b = test_mat(51, 70, 0.43);
        assert!((&packed::matmul_nt(&a, &b) - &reference::matmul_nt(&a, &b)).max_abs() < 1e-11);
    }

    #[test]
    fn packed_gram_upper_triangle_and_mirror() {
        let a = test_mat(83, 29, 0.61);
        let g = packed::gram(&a);
        // The threaded gram keeps the reference accumulation order, so
        // agreement is exact, not approximate.
        assert_eq!(g, reference::gram(&a));
        assert!((&g - &reference::matmul_tn(&a, &a)).max_abs() < 1e-11);
        assert!((&g - &g.transpose()).max_abs() == 0.0);
    }

    #[test]
    fn packed_matvecs_bitwise_match_reference() {
        let a = test_mat(67, 45, 0.83);
        let x: Vec<f64> = (0..45).map(|i| (i as f64 * 0.17).cos()).collect();
        assert_eq!(packed::matvec(&a, &x), reference::matvec(&a, &x));
        let xt: Vec<f64> = (0..67).map(|i| (i as f64 * 0.11).sin()).collect();
        assert_eq!(packed::matvec_t(&a, &xt), reference::matvec_t(&a, &xt));
    }

    #[test]
    fn into_kernels_bitwise_match_allocating() {
        // Straddle the dispatch threshold: 90*97*93*2 < 2^20 < 137*95*171*2.
        for &(m, k, n) in &[(12, 9, 10), (90, 97, 93), (137, 95, 171)] {
            let a = test_mat(m, k, 0.37);
            let b = test_mat(k, n, 0.73);
            let bt = b.transpose();
            let mut c = Matrix::zeros(1, 1);
            matmul_into(a.view(), b.view(), &mut c);
            assert_eq!(c, matmul(&a, &b), "matmul_into ({m},{k},{n})");
            let mut ctn = Matrix::zeros(0, 0);
            let atall = test_mat(k, m, 0.51);
            matmul_tn_into(atall.view(), b.view(), &mut ctn);
            assert_eq!(ctn, matmul_tn(&atall, &b), "matmul_tn_into ({k},{m},{n})");
            let mut cnt = Matrix::zeros(0, 0);
            matmul_nt_into(a.view(), bt.view(), &mut cnt);
            assert_eq!(cnt, matmul_nt(&a, &bt), "matmul_nt_into ({m},{k},{n})");
            let mut g = Matrix::zeros(0, 0);
            gram_into(a.view(), &mut g);
            assert_eq!(g, gram(&a), "gram_into ({m},{k})");
        }
    }

    #[test]
    fn into_kernels_accept_strided_views() {
        let big = test_mat(60, 50, 0.41);
        // A strided interior block vs its materialized copy.
        let blk = big.block(7, 43, 5, 29);
        let cpy = big.submatrix(7, 43, 5, 29);
        let rhs = test_mat(24, 11, 0.77);
        let mut c_view = Matrix::zeros(0, 0);
        let mut c_copy = Matrix::zeros(0, 0);
        matmul_into(blk, rhs.view(), &mut c_view);
        matmul_into(cpy.view(), rhs.view(), &mut c_copy);
        assert_eq!(c_view, c_copy, "strided A block must not change bits");
        // Transposed view on the left of a plain product == matmul_tn.
        let mut c_t = Matrix::zeros(0, 0);
        matmul_into(big.view().transposed(), big.view(), &mut c_t);
        assert_eq!(c_t, matmul_tn(&big, &big));
        let mut g_blk = Matrix::zeros(0, 0);
        gram_into(blk, &mut g_blk);
        assert_eq!(g_blk, gram(&cpy), "gram of strided block");
    }

    #[test]
    #[should_panic(expected = "inner dimensions mismatch")]
    fn matmul_into_dim_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        matmul_into(a.view(), b.view(), &mut Matrix::zeros(0, 0));
    }

    #[test]
    fn packed_bitwise_identical_across_thread_counts() {
        let a = test_mat(137, 95, 0.29);
        let b = test_mat(95, 71, 0.53);
        let baseline = {
            par::set_num_threads(1);
            packed::matmul(&a, &b)
        };
        for threads in [2, 3, 4, 8] {
            par::set_num_threads(threads);
            let c = packed::matmul(&a, &b);
            assert_eq!(c, baseline, "thread count {threads} changed bits");
        }
        par::set_num_threads(0);
    }

    // --- Kernel family invariants ------------------------------------

    /// The per-element op-order oracle of the packed engine: each `C`
    /// element is a sum over ascending `KC`-deep K-panels, every panel's
    /// partial accumulated from zero in ascending `k` with separate
    /// mul/add roundings, then added to `C` once. This is the pre-SIMD
    /// engine's exact flop sequence, written independently of the tile
    /// machinery — if a kernel, a path, or a refactor moves one bit,
    /// comparison with this oracle catches it.
    fn panel_oracle(a: &Matrix, b: &Matrix, kc: usize) -> Matrix {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut c = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut tot = 0.0f64;
                let mut kb = 0;
                while kb < k {
                    let kmax = (kb + kc).min(k);
                    let mut p = 0.0f64;
                    for kk in kb..kmax {
                        p += a[(i, kk)] * b[(kk, j)];
                    }
                    tot += p;
                    kb = kmax;
                }
                c[(i, j)] = tot;
            }
        }
        c
    }

    #[test]
    fn non_fused_kernels_bitwise_match_panel_oracle() {
        // Shapes straddling MR/NR strips and the KC panel boundary.
        for &(m, k, n) in &[(13, 300, 21), (64, 256, 64), (65, 257, 9)] {
            let a = test_mat(m, k, 0.33);
            let b = test_mat(k, n, 0.71);
            let want = panel_oracle(&a, &b, blocking::default_kc::<f64>());
            for kern in kernels::available::<f64>().iter().filter(|kern| !kern.fused()) {
                let got = packed::matmul_with(*kern, &a, &b);
                assert_eq!(got, want, "{} ({m},{k},{n}) moved bits off the oracle", kern.name());
            }
        }
    }

    #[test]
    fn fused_kernels_stay_within_tolerance_of_oracle() {
        let (m, k, n) = (65, 300, 33);
        let a = test_mat(m, k, 0.27);
        let b = test_mat(k, n, 0.81);
        let want = panel_oracle(&a, &b, blocking::default_kc::<f64>());
        for kern in kernels::available::<f64>().iter().filter(|kern| kern.fused()) {
            let got = packed::matmul_with(*kern, &a, &b);
            let diff = (&got - &want).max_abs();
            assert!(diff < 1e-12, "{} diverged by {diff}", kern.name());
        }
    }

    /// The same per-element op-order oracle at f32: non-fused f32
    /// kernels must land on identical bits, panel depth and all.
    fn panel_oracle_f32(a: &Matrix<f32>, b: &Matrix<f32>, kc: usize) -> Matrix<f32> {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut c = Matrix::<f32>::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut tot = 0.0f32;
                let mut kb = 0;
                while kb < k {
                    let kmax = (kb + kc).min(k);
                    let mut p = 0.0f32;
                    for kk in kb..kmax {
                        p += a[(i, kk)] * b[(kk, j)];
                    }
                    tot += p;
                    kb = kmax;
                }
                c[(i, j)] = tot;
            }
        }
        c
    }

    #[test]
    fn f32_non_fused_kernels_bitwise_match_panel_oracle() {
        for &(m, k, n) in &[(13, 600, 21), (65, 513, 9)] {
            let a = Matrix::<f32>::from_fn(m, k, |i, j| ((i * 31 + j * 17) as f32 * 0.33).sin());
            let b = Matrix::<f32>::from_fn(k, n, |i, j| ((i * 31 + j * 17) as f32 * 0.71).sin());
            let want = panel_oracle_f32(&a, &b, blocking::default_kc::<f32>());
            for kern in kernels::available::<f32>().iter().filter(|kern| !kern.fused()) {
                let got = packed::matmul_with(*kern, &a, &b);
                assert_eq!(
                    got,
                    want,
                    "{} f32 ({m},{k},{n}) moved bits off the oracle",
                    kern.name()
                );
            }
        }
    }

    #[test]
    fn f32_matmul_dispatch_matches_reference() {
        let a = Matrix::<f32>::from_fn(137, 95, |i, j| ((i * 7 + j * 3) as f32 * 0.29).sin());
        let b = Matrix::<f32>::from_fn(95, 71, |i, j| ((i * 5 + j * 11) as f32 * 0.53).sin());
        let big = matmul(&a, &b);
        let small = reference::matmul(&a, &b);
        let mut worst = 0.0f32;
        for i in 0..137 {
            for j in 0..71 {
                worst = worst.max((big[(i, j)] - small[(i, j)]).abs());
            }
        }
        assert!(worst < 1e-3, "f32 packed vs reference diverged by {worst}");
    }

    #[test]
    fn tall_skinny_path_bitwise_matches_full_blocked() {
        // A shape the heuristic routes to the streaming path, plus edge
        // rows (2043 % mr != 0 for every kernel) and a strided operand.
        let a = test_mat(2043, 48, 0.19);
        let b = test_mat(48, 32, 0.57);
        for kern in kernels::available::<f64>() {
            let blk = Blocking::default_for(*kern);
            assert!(tall_skinny::applies(*kern, a.rows(), a.cols(), b.cols()));
            let mut c_ts = Matrix::zeros(a.rows(), b.cols());
            let ldc = c_ts.cols();
            tall_skinny::gemm(*kern, blk.kc, a.view(), b.view(), c_ts.as_mut_slice(), ldc);
            let mut c_full = Matrix::zeros(a.rows(), b.cols());
            packed::full_blocked(*kern, blk, a.view(), b.view(), c_full.as_mut_slice(), ldc);
            assert_eq!(c_ts, c_full, "{}: paths disagree", kern.name());
            // Strided A (transposed view of a wide matrix) takes the
            // packing fallback per strip; still identical.
            let wide = test_mat(48, 2043, 0.23);
            let mut c_str = Matrix::zeros(a.rows(), b.cols());
            tall_skinny::gemm(
                *kern,
                blk.kc,
                wide.view().transposed(),
                b.view(),
                c_str.as_mut_slice(),
                ldc,
            );
            let mut c_str_full = Matrix::zeros(a.rows(), b.cols());
            packed::full_blocked(
                *kern,
                blk,
                wide.view().transposed(),
                b.view(),
                c_str_full.as_mut_slice(),
                ldc,
            );
            assert_eq!(c_str, c_str_full, "{}: strided paths disagree", kern.name());
        }
    }

    #[test]
    fn tall_skinny_heuristic_catches_tsqr_shapes_only() {
        for kern in kernels::available::<f64>() {
            // The regression shape from the bench suite.
            assert!(tall_skinny::applies(*kern, 65536, 64, 64));
            // TSQR panel products.
            assert!(tall_skinny::applies(*kern, 16384, 32, 32));
            // Square and near-square stay on the full blocked path.
            assert!(!tall_skinny::applies(*kern, 1024, 1024, 1024));
            assert!(!tall_skinny::applies(*kern, 512, 96, 512));
        }
    }

    #[test]
    fn per_kernel_results_are_thread_count_invariant() {
        // A tall-skinny shape so the streaming path's partition is also
        // exercised, for every kernel on the host.
        let a = test_mat(2048, 48, 0.29);
        let b = test_mat(48, 32, 0.53);
        for kern in kernels::available::<f64>() {
            par::set_num_threads(1);
            let baseline = packed::matmul_with(*kern, &a, &b);
            for threads in [2, 3, 8] {
                par::set_num_threads(threads);
                let c = packed::matmul_with(*kern, &a, &b);
                assert_eq!(c, baseline, "{} x {threads} threads changed bits", kern.name());
            }
            par::set_num_threads(0);
        }
    }
}
