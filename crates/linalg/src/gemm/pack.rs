//! Panel-packing routines with always-checked tile-layout invariants.
//!
//! Both engines pack operands into micro-kernel strips: `op(B)` into
//! NR-wide column strips (`(kk, jr)` at `kk * nr + jr`), `op(A)` into
//! MR-tall row strips (`(ir, kk)` at `kk * mr + ir`), zero-padded past
//! the matrix edge so the kernel never branches on partial tiles.
//!
//! The strip-geometry invariant — destination length exactly `depth x
//! tile` — used to be a `debug_assert!`; with blocking parameters now
//! coming from an autotuner (and, via `PSVD_GEMM_TUNE=<path>`, from a
//! file on disk) it is promoted to a **checked error** that runs in
//! release builds too: a mis-sized `MC`/`KC` maps to a strip slice of the
//! wrong length, and silently reading a stale panel tail would corrupt
//! results far from the cause. [`strip_layout`] returns the structured
//! error; the packing routines turn it into an immediate panic with the
//! full geometry in the message.

use crate::scalar::Scalar;
use crate::view::MatView;

/// A packed-buffer strip whose length disagrees with its tile geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackLayoutError {
    /// What was being packed (`"A"` or `"B"`).
    pub operand: &'static str,
    /// K-panel depth of the strip.
    pub depth: usize,
    /// Tile edge (`mr` for A strips, `nr` for B strips).
    pub tile: usize,
    /// Actual destination-slice length.
    pub len: usize,
}

impl std::fmt::Display for PackLayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "packed-buffer tile misalignment: {} strip of depth {} x tile {} needs exactly {} \
             elements, destination has {} — blocking parameters (MC/KC/NC) are inconsistent \
             with the kernel tile",
            self.operand,
            self.depth,
            self.tile,
            self.depth * self.tile,
            self.len
        )
    }
}

impl std::error::Error for PackLayoutError {}

/// Check that a strip destination of `len` elements exactly holds `depth`
/// steps of a `tile`-wide micro-tile edge.
pub fn strip_layout(
    operand: &'static str,
    depth: usize,
    tile: usize,
    len: usize,
) -> Result<(), PackLayoutError> {
    if len == depth * tile && tile > 0 {
        Ok(())
    } else {
        Err(PackLayoutError { operand, depth, tile, len })
    }
}

/// Pack one NR-wide strip of `op(B)`: rows `[kb, kb + kc)`, columns
/// `[j0, j0 + nr)` clipped to the view edge and zero-padded, into `dst`
/// laid out `(kk, jr) -> kk * nr + jr`. `dst.len()` must be exactly
/// `kc * nr` (checked, release builds included).
pub(crate) fn pack_b_strip<T: Scalar>(
    b: MatView<'_, T>,
    kb: usize,
    kc: usize,
    j0: usize,
    nr: usize,
    dst: &mut [T],
) {
    strip_layout("B", kc, nr, dst.len()).unwrap_or_else(|e| panic!("{e}"));
    let jcount = nr.min(b.cols.saturating_sub(j0));
    // Identical strip contents either way; the loop order just keeps
    // source reads on the unit-stride axis of op(B).
    if b.cs == 1 {
        for kk in 0..kc {
            let row = &mut dst[kk * nr..(kk + 1) * nr];
            let src = (kb + kk) * b.rs + j0;
            row[..jcount].copy_from_slice(&b.data[src..src + jcount]);
            row[jcount..].fill(T::ZERO);
        }
    } else {
        for jr in 0..jcount {
            for kk in 0..kc {
                dst[kk * nr + jr] = b.at(kb + kk, j0 + jr);
            }
        }
        for jr in jcount..nr {
            for kk in 0..kc {
                dst[kk * nr + jr] = T::ZERO;
            }
        }
    }
}

/// Pack one MR-tall strip of `op(A)`: rows `[i0, i0 + rows)` (the caller
/// clips `rows <= mr` at partition/matrix edges; missing rows are
/// zero-padded), columns `[kb, kb + kc)`, into `dst` laid out
/// `(ir, kk) -> kk * mr + ir`. `dst.len()` must be exactly `kc * mr`
/// (checked, release builds included).
pub(crate) fn pack_a_strip<T: Scalar>(
    a: MatView<'_, T>,
    i0: usize,
    rows: usize,
    kb: usize,
    kc: usize,
    mr: usize,
    dst: &mut [T],
) {
    strip_layout("A", kc, mr, dst.len()).unwrap_or_else(|e| panic!("{e}"));
    debug_assert!(rows <= mr);
    // Strip contents are order-independent; read along the unit-stride
    // axis of op(A).
    if a.cs == 1 {
        for ir in 0..rows {
            let src = (i0 + ir) * a.rs + kb;
            let row = &a.data[src..src + kc];
            for (kk, &v) in row.iter().enumerate() {
                dst[kk * mr + ir] = v;
            }
        }
        for ir in rows..mr {
            for kk in 0..kc {
                dst[kk * mr + ir] = T::ZERO;
            }
        }
    } else {
        for kk in 0..kc {
            let step = &mut dst[kk * mr..(kk + 1) * mr];
            for (ir, out) in step.iter_mut().take(rows).enumerate() {
                *out = a.at(i0 + ir, kb + kk);
            }
            step[rows..].fill(T::ZERO);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn sample(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| (i * 100 + j) as f64)
    }

    #[test]
    fn strip_layout_accepts_exact_and_rejects_everything_else() {
        assert!(strip_layout("A", 16, 4, 64).is_ok());
        let err = strip_layout("A", 16, 4, 60).unwrap_err();
        assert_eq!(err, PackLayoutError { operand: "A", depth: 16, tile: 4, len: 60 });
        assert!(err.to_string().contains("needs exactly 64"));
        // Oversized buffers are just as wrong: a stale tail would be read.
        assert!(strip_layout("B", 16, 8, 136).is_err());
        assert!(strip_layout("B", 16, 0, 0).is_err(), "zero tile is never valid");
    }

    #[test]
    #[should_panic(expected = "packed-buffer tile misalignment")]
    fn pack_b_strip_panics_on_missized_buffer() {
        let b = sample(8, 8);
        let mut dst = vec![0.0; 4 * 8 - 1];
        pack_b_strip(b.view(), 0, 4, 0, 8, &mut dst);
    }

    #[test]
    #[should_panic(expected = "packed-buffer tile misalignment")]
    fn pack_a_strip_panics_on_missized_buffer() {
        let a = sample(8, 8);
        let mut dst = vec![0.0; 4 * 4 + 4];
        pack_a_strip(a.view(), 0, 4, 0, 4, 4, &mut dst);
    }

    #[test]
    fn pack_b_strip_zero_pads_past_edge() {
        let b = sample(4, 5);
        let mut dst = vec![9.0; 4 * 8];
        pack_b_strip(b.view(), 0, 4, 0, 8, &mut dst);
        for kk in 0..4 {
            for jr in 0..8 {
                let want = if jr < 5 { b[(kk, jr)] } else { 0.0 };
                assert_eq!(dst[kk * 8 + jr], want, "(kk={kk}, jr={jr})");
            }
        }
        // Strided (transposed) views pack the same contents.
        let bt = b.transpose();
        let mut dst_t = vec![9.0; 4 * 8];
        pack_b_strip(bt.view().transposed(), 0, 4, 0, 8, &mut dst_t);
        assert_eq!(dst, dst_t);
    }

    #[test]
    fn pack_a_strip_zero_pads_missing_rows() {
        let a = sample(3, 6);
        let mut dst = vec![9.0; 6 * 4];
        pack_a_strip(a.view(), 0, 3, 0, 6, 4, &mut dst);
        for kk in 0..6 {
            for ir in 0..4 {
                let want = if ir < 3 { a[(ir, kk)] } else { 0.0 };
                assert_eq!(dst[kk * 4 + ir], want, "(ir={ir}, kk={kk})");
            }
        }
        let at = a.transpose();
        let mut dst_t = vec![9.0; 6 * 4];
        pack_a_strip(at.view().transposed(), 0, 3, 0, 6, 4, &mut dst_t);
        assert_eq!(dst, dst_t);
    }
}
