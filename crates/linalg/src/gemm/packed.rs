//! Packed-panel GEMM engine.
//!
//! The classic (BLIS-style) decomposition: columns of `C` are walked in
//! `NC`-wide chunks; per chunk the matching columns of `op(B)` are packed
//! once into NR-wide strips (all K-panels), and each thread packs its own
//! `MC x KC` blocks of `op(A)` into MR-tall row strips. The innermost
//! computation is an `MR x NR` register-tile [`MicroKernel`] selected at
//! process startup by CPU-feature detection (see [`super::kernel`]):
//! explicitly vectorized AVX2/FMA tiles on x86_64, with the portable
//! scalar tile as the determinism oracle. `MC`/`KC`/`NC` come from the
//! process-wide [`super::blocking`] resolution (defaults or the one-shot
//! autotuner).
//!
//! Shapes where packing overhead dominates compute — `m >> n, k`, the
//! tall-skinny products TSQR and the randomized range finder feed this
//! engine — skip the full blocked path for [`super::tall_skinny`], which
//! packs the (tiny) `op(B)` once and streams `op(A)` row-panels straight
//! through the kernel. The two paths are bitwise identical per (kernel,
//! `KC`), so the dispatch heuristic is a pure speed decision.
//!
//! ## Parallel decomposition and determinism
//!
//! Threads own disjoint row ranges of `C` aligned to the selected
//! kernel's `mr` ([`par::strip_partition`]); nothing else is shared
//! mutably. Every `C` element accumulates its K-panel partial sums in
//! ascending panel order on whichever single thread owns it, so the
//! floating-point op sequence per element is a function of (kernel,
//! blocking, problem shape) only — results are bitwise identical for any
//! thread count. The K dimension is never split across threads.
//!
//! Transposition is free here: `op(A)`/`op(B)` are strided views
//! resolved during packing, after which N/T/NT all run the same kernel.

use super::blocking::{self, Blocking};
use super::kernel::{self, MicroKernel, MAX_MR, MAX_NR};
use super::pack::{pack_a_strip, pack_b_strip};
use super::tall_skinny;
use crate::matrix::Matrix;
use crate::par::{self, SendPtr};
use crate::scalar::Scalar;
use crate::view::MatView;

/// `C += op(A) * op(B)` through the engine with the process-selected
/// kernel and blocking (any size), written to `c` with row stride `ldc`
/// (`ldc = n` for a dense output). `op(X)` is any strided [`MatView`] —
/// normal, transposed or a sub-block; packing resolves the strides, after
/// which every layout runs the same micro-kernel.
pub(crate) fn gemm<T: Scalar>(a: MatView<'_, T>, b: MatView<'_, T>, c: &mut [T], ldc: usize) {
    gemm_with(kernel::selected::<T>(), blocking::resolved::<T>(), a, b, c, ldc)
}

/// [`gemm`] with the kernel and blocking pinned explicitly — the entry
/// the autotuner times candidates through and the kernel-matrix tests
/// drive every available kernel through.
pub(crate) fn gemm_with<T: Scalar>(
    kern: &dyn MicroKernel<T>,
    blk: Blocking,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    c: &mut [T],
    ldc: usize,
) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    debug_assert_eq!(k, b.rows);
    debug_assert!(ldc >= n);
    debug_assert!(m == 0 || n == 0 || c.len() >= (m - 1) * ldc + n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if tall_skinny::applies(kern, m, k, n) {
        tall_skinny::gemm(kern, blk.kc, a, b, c, ldc);
    } else {
        full_blocked(kern, blk, a, b, c, ldc);
    }
}

/// The full `MC`/`KC`/`NC` blocked path (bitwise identical to the
/// tall-skinny path at the same kernel and `KC`; exposed separately so
/// tests can pin both paths on one shape).
pub(crate) fn full_blocked<T: Scalar>(
    kern: &dyn MicroKernel<T>,
    blk: Blocking,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    c: &mut [T],
    ldc: usize,
) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let (mr, nr) = (kern.mr(), kern.nr());
    // Row strips assume they never straddle an MC block edge, and packed-B
    // chunks that NC is strip-aligned; a blocking tuned for a different
    // kernel's tile would silently double-count rows.
    assert_eq!(blk.mc % mr, 0, "MC = {} not aligned to kernel {:?} mr = {mr}", blk.mc, kern.name());
    assert_eq!(blk.nc % nr, 0, "NC = {} not aligned to kernel {:?} nr = {nr}", blk.nc, kern.name());
    let mut jc = 0;
    while jc < n {
        let ncw = blk.nc.min(n - jc);
        // --- Pack op(B) columns [jc, jc + ncw), panel-major then
        // NR-strip-major. The strip for K-panel [kb, kb + kc) and column
        // panel jp starts at kb * npj * nr + jp * kc * nr and holds kc
        // steps of nr values, zero-padded past column n. Strips are
        // disjoint per jp, so the packing parallelizes over column
        // panels.
        let npj = ncw.div_ceil(nr);
        let mut bpack = vec![T::ZERO; k * npj * nr];
        {
            let bptr = SendPtr(bpack.as_mut_ptr());
            par::parallel_for(npj, 8, |jp0, jp1| {
                for jp in jp0..jp1 {
                    let mut kb = 0;
                    while kb < k {
                        let kc = blk.kc.min(k - kb);
                        let base = kb * npj * nr + jp * kc * nr;
                        // SAFETY: jp strips are disjoint and this thread
                        // owns [jp0, jp1).
                        let dst = unsafe {
                            std::slice::from_raw_parts_mut(bptr.get().add(base), kc * nr)
                        };
                        pack_b_strip(b, kb, kc, jc + jp * nr, nr, dst);
                        kb += kc;
                    }
                }
            });
        }

        // --- Partition rows of C into mr-aligned contiguous ranges, one
        // per thread. The partition decides only *who* computes each
        // element, never the order of its flops.
        let (used, per) = par::strip_partition(m.div_ceil(mr));
        let cptr = SendPtr(c.as_mut_ptr());
        let bp = &bpack[..];
        par::run(used, &|tid: usize| {
            let r0 = tid * per * mr;
            let r1 = (r0 + per * mr).min(m);
            if r0 >= r1 {
                return;
            }
            thread_body(kern, blk, a, bp, cptr, jc, ncw, ldc, npj, r0, r1);
        });
        jc += ncw;
    }
}

/// One thread's share of a column chunk: rows `[r0, r1)` of `C` (`r0`
/// mr-aligned), columns `[jc, jc + ncw)`.
#[allow(clippy::too_many_arguments)]
fn thread_body<T: Scalar>(
    kern: &dyn MicroKernel<T>,
    blk: Blocking,
    a: MatView<'_, T>,
    bpack: &[T],
    cptr: SendPtr<T>,
    jc: usize,
    ncw: usize,
    ldc: usize,
    npj: usize,
    r0: usize,
    r1: usize,
) {
    let (mr, nr) = (kern.mr(), kern.nr());
    let k = a.cols;
    let mut apack = vec![T::ZERO; blk.mc * blk.kc];
    let mut acc_buf = [T::ZERO; MAX_MR * MAX_NR];
    let acc = &mut acc_buf[..mr * nr];
    let mut kb = 0;
    // K-panels ascending: this ordering is what fixes each C element's
    // accumulation sequence independent of the partition.
    while kb < k {
        let kc = blk.kc.min(k - kb);
        let panel_base = kb * npj * nr;
        let mut mb = r0;
        while mb < r1 {
            let mc = blk.mc.min(r1 - mb);
            let mstrips = mc.div_ceil(mr);
            // Pack this MC x kc block of op(A) into mr-tall strips,
            // zero-padding rows past r1 (only possible at the bottom edge
            // of the matrix, since r1 is mr-aligned elsewhere).
            for ip in 0..mstrips {
                let i0 = mb + ip * mr;
                let rows_here = mr.min(r1 - i0);
                pack_a_strip(
                    a,
                    i0,
                    rows_here,
                    kb,
                    kc,
                    mr,
                    &mut apack[ip * kc * mr..(ip + 1) * kc * mr],
                );
            }
            for jp in 0..npj {
                let bstrip = &bpack[panel_base + jp * kc * nr..panel_base + (jp + 1) * kc * nr];
                let jcount = nr.min(ncw - jp * nr);
                for ip in 0..mstrips {
                    let i0 = mb + ip * mr;
                    acc.fill(T::ZERO);
                    kern.run(&apack[ip * kc * mr..(ip + 1) * kc * mr], bstrip, acc);
                    let rows_here = mr.min(r1 - i0);
                    // SAFETY: rows [r0, r1) belong to this thread's
                    // disjoint range.
                    unsafe { writeback(cptr, acc, nr, i0, rows_here, jc + jp * nr, jcount, ldc) };
                }
            }
            mb += mc;
        }
        kb += kc;
    }
}

/// Scatter one accumulator tile into `C`: rows `[i0, i0 + rows)`, columns
/// `[j0, j0 + jcount)`, accumulating (`+=`).
///
/// # Safety
///
/// The caller must own rows `[i0, i0 + rows)` of the `C` buffer behind
/// `cptr` exclusively (the engines partition rows disjointly across
/// threads) and `acc` must hold at least `rows * nr` elements.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) unsafe fn writeback<T: Scalar>(
    cptr: SendPtr<T>,
    acc: &[T],
    nr: usize,
    i0: usize,
    rows: usize,
    j0: usize,
    jcount: usize,
    ldc: usize,
) {
    for ir in 0..rows {
        let src = &acc[ir * nr..ir * nr + jcount];
        let dst = cptr.get().add((i0 + ir) * ldc + j0);
        for (jr, &v) in src.iter().enumerate() {
            *dst.add(jr) += v;
        }
    }
}

/// `C = A * B` through the packed engine regardless of size.
pub fn matmul<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    matmul_with(kernel::selected::<T>(), a, b)
}

/// `C = Aᵀ * B` through the packed engine regardless of size.
pub fn matmul_tn<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    matmul_tn_with(kernel::selected::<T>(), a, b)
}

/// `C = A * Bᵀ` through the packed engine regardless of size.
pub fn matmul_nt<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    matmul_nt_with(kernel::selected::<T>(), a, b)
}

/// [`matmul`] with the micro-kernel pinned explicitly. This is the
/// kernel-matrix entry for tests and benches: no global state is touched,
/// so different kernels can be compared concurrently. The process-wide
/// blocking is used when it is aligned to this kernel's tile (always true
/// for the selected kernel); otherwise the kernel's own defaults — `MC`
/// must be a multiple of the kernel `mr`, and a blocking resolved for a
/// different tile shape need not be.
pub fn matmul_with<T: Scalar>(
    kern: &dyn MicroKernel<T>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    matmul_with_blocking(kern, blocking_for(kern), a, b)
}

/// The process blocking when compatible with `kern`'s tile, else the
/// kernel's defaults.
fn blocking_for<T: Scalar>(kern: &dyn MicroKernel<T>) -> Blocking {
    let blk = blocking::resolved::<T>();
    if blk.mc.is_multiple_of(kern.mr()) && blk.nc.is_multiple_of(kern.nr()) {
        blk
    } else {
        Blocking::default_for(kern)
    }
}

/// [`matmul`] with both the micro-kernel and the blocking pinned.
pub fn matmul_with_blocking<T: Scalar>(
    kern: &dyn MicroKernel<T>,
    blk: Blocking,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions mismatch {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut c = Matrix::zeros(a.rows(), b.cols());
    let ldc = c.cols();
    gemm_with(kern, blk, a.view(), b.view(), c.as_mut_slice(), ldc);
    c
}

/// [`matmul_tn`] with the micro-kernel pinned explicitly.
pub fn matmul_tn_with<T: Scalar>(
    kern: &dyn MicroKernel<T>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: row counts must match");
    let mut c = Matrix::zeros(a.cols(), b.cols());
    let ldc = c.cols();
    gemm_with(kern, blocking_for(kern), a.view().transposed(), b.view(), c.as_mut_slice(), ldc);
    c
}

/// [`matmul_nt`] with the micro-kernel pinned explicitly.
pub fn matmul_nt_with<T: Scalar>(
    kern: &dyn MicroKernel<T>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: column counts must match");
    let mut c = Matrix::zeros(a.rows(), b.rows());
    let ldc = c.cols();
    gemm_with(kern, blocking_for(kern), a.view(), b.view().transposed(), c.as_mut_slice(), ldc);
    c
}

/// `AᵀA`, threaded: upper triangle only, mirrored afterwards (~half
/// the flops of `matmul_tn(a, a)`).
///
/// Deliberately NOT the tile engine: the Gram matrices here are small
/// squares of very tall inputs (`M >> N`), where the reference rank-1
/// sweep already streams `A` once at unit stride with `G` cache
/// resident — packing would re-copy `A` per K-panel for no compute
/// win. Instead the rank-1 sweep itself is parallelized over row
/// strips of `G` (strips sized so each carries an equal share of the
/// triangle). Every `G` element keeps the reference kernel's exact
/// ascending-`kk` accumulation order, so the result is bitwise equal
/// to `reference::gram` at every thread count — and independent of the
/// selected micro-kernel, which this path never touches.
pub fn gram<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    let mut g = Matrix::zeros(a.cols(), a.cols());
    gram_view(a.view(), g.as_mut_slice());
    g
}

/// The view form of [`gram`]: same strip partition, same per-element
/// ascending-`kk` accumulation order, writing into `g` (length
/// `n*n`). Strided views take an indexed inner loop; the op sequence
/// per element is unchanged, so results stay bitwise equal to
/// `reference::gram` for any thread count and any strides.
pub(crate) fn gram_view<T: Scalar>(a: MatView<'_, T>, g: &mut [T]) {
    let n = a.cols;
    let rows = a.rows;
    debug_assert_eq!(g.len(), n * n);
    if n > 0 && rows > 0 {
        let gptr = SendPtr(g.as_mut_ptr());
        let threads = par::num_threads().min(n).max(1);
        // Row strip boundaries equalizing upper-triangle area: row i
        // owns n - i elements, so the strip ending at fraction t of
        // the area ends at row n * (1 - sqrt(1 - t)).
        let bound = |t: usize| -> usize {
            let frac = t as f64 / threads as f64;
            ((n as f64) * (1.0 - (1.0 - frac).sqrt())).round() as usize
        };
        par::run(threads, &|tid: usize| {
            let (i0, i1) = (bound(tid).min(n), bound(tid + 1).min(n));
            if i0 >= i1 {
                return;
            }
            // SAFETY: row ranges [i0, i1) are disjoint across threads,
            // so these &mut subslices of G never overlap. Going
            // through a real slice (not per-element raw writes) keeps
            // the inner loop autovectorizable.
            let gs =
                unsafe { std::slice::from_raw_parts_mut(gptr.get().add(i0 * n), (i1 - i0) * n) };
            for kk in 0..rows {
                if a.cs == 1 {
                    let row = &a.data[kk * a.rs..kk * a.rs + n];
                    for i in i0..i1 {
                        let ri = row[i];
                        let grow = &mut gs[(i - i0) * n + i..(i - i0) * n + n];
                        for (gv, rv) in grow.iter_mut().zip(&row[i..]) {
                            *gv += ri * *rv;
                        }
                    }
                } else {
                    for i in i0..i1 {
                        let ri = a.at(kk, i);
                        let grow = &mut gs[(i - i0) * n + i..(i - i0) * n + n];
                        for (gv, j) in grow.iter_mut().zip(i..n) {
                            *gv += ri * a.at(kk, j);
                        }
                    }
                }
            }
        });
    }
    for i in 0..n {
        for j in 0..i {
            g[i * n + j] = g[j * n + i];
        }
    }
}

/// `y = A * x`, rows partitioned across threads. Each `y[i]` is one
/// serial dot product, so the result is identical to the reference
/// kernel at any thread count.
pub fn matvec<T: Scalar>(a: &Matrix<T>, x: &[T]) -> Vec<T> {
    assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
    let m = a.rows();
    let mut y = vec![T::ZERO; m];
    let yptr = SendPtr(y.as_mut_ptr());
    par::parallel_for(m, 64, |i0, i1| {
        for i in i0..i1 {
            let s: T = a.row(i).iter().zip(x).map(|(av, xv)| *av * *xv).sum();
            // SAFETY: rows [i0, i1) are this thread's disjoint range.
            unsafe { *yptr.get().add(i) = s };
        }
    });
    y
}

/// `y = Aᵀ * x`, output *columns* partitioned across threads; every
/// thread sweeps all rows of its column slice in ascending row order —
/// the exact accumulation order of the reference kernel — so no
/// reduction is split and results match bitwise at any thread count.
pub fn matvec_t<T: Scalar>(a: &Matrix<T>, x: &[T]) -> Vec<T> {
    assert_eq!(a.rows(), x.len(), "matvec_t: dimension mismatch");
    let n = a.cols();
    let mut y = vec![T::ZERO; n];
    let yptr = SendPtr(y.as_mut_ptr());
    par::parallel_for(n, 64, |j0, j1| {
        // SAFETY: columns [j0, j1) are this thread's disjoint range,
        // so these &mut subslices of y never overlap. A real slice
        // keeps the inner loop autovectorizable.
        let ys = unsafe { std::slice::from_raw_parts_mut(yptr.get().add(j0), j1 - j0) };
        for (i, &xi) in x.iter().enumerate() {
            let arow = &a.row(i)[j0..j1];
            for (yv, av) in ys.iter_mut().zip(arow) {
                *yv += *av * xi;
            }
        }
    });
    y
}
