//! Serial reference kernels: the plainly-auditable implementations the
//! packed engine is validated against. Inner loops are branch-free —
//! no data-dependent zero tests — so they autovectorize cleanly and
//! their flop sequence per output element is obvious from the source.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::view::MatView;

/// Cache block edge for the blocked kernels.
const BLOCK: usize = 64;

/// `C += op(A) * op(B)` over strided views, blocked i-k-j, written to
/// `c` with row stride `ldc` (`ldc = n` for a dense output; larger for
/// a trailing-matrix block of a wider buffer). Per output element the
/// flops are the ascending-`k` sequence of [`matmul`] / [`matmul_tn`]
/// / [`matmul_nt`] (which all accumulate each `C` element in ascending
/// `k` from zero), so this single kernel is bitwise identical to every
/// one of them — strides decide only where operands are *read* and
/// *written*, never the op order.
pub(crate) fn gemm_view<T: Scalar>(a: MatView<'_, T>, b: MatView<'_, T>, c: &mut [T], ldc: usize) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    debug_assert_eq!(k, b.rows());
    debug_assert!(ldc >= n);
    debug_assert!(m == 0 || n == 0 || c.len() >= (m - 1) * ldc + n);
    for ib in (0..m).step_by(BLOCK) {
        for kb in (0..k).step_by(BLOCK) {
            for jb in (0..n).step_by(BLOCK) {
                let imax = (ib + BLOCK).min(m);
                let kmax = (kb + BLOCK).min(k);
                let jmax = (jb + BLOCK).min(n);
                for i in ib..imax {
                    for kk in kb..kmax {
                        let aik = a.at(i, kk);
                        let crow = &mut c[i * ldc + jb..i * ldc + jmax];
                        if b.cs == 1 {
                            let off = kk * b.rs;
                            let brow = &b.data[off + jb..off + jmax];
                            for (cv, bv) in crow.iter_mut().zip(brow) {
                                *cv += aik * *bv;
                            }
                        } else {
                            for (cv, j) in crow.iter_mut().zip(jb..jmax) {
                                *cv += aik * b.at(kk, j);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `G = AᵀA` of a strided view into `g` (length `n*n`): the rank-1
/// upper-triangle sweep of [`gram`], generalized to views, with the
/// identical ascending-`kk` accumulation order.
pub(crate) fn gram_view<T: Scalar>(a: MatView<'_, T>, g: &mut [T]) {
    let n = a.cols();
    debug_assert_eq!(g.len(), n * n);
    for kk in 0..a.rows() {
        if a.cs == 1 {
            let row = &a.data[kk * a.rs..kk * a.rs + n];
            for i in 0..n {
                let ri = row[i];
                let grow = &mut g[i * n + i..(i + 1) * n];
                for (gv, rv) in grow.iter_mut().zip(&row[i..]) {
                    *gv += ri * *rv;
                }
            }
        } else {
            for i in 0..n {
                let ri = a.at(kk, i);
                let grow = &mut g[i * n + i..(i + 1) * n];
                for (gv, j) in grow.iter_mut().zip(i..n) {
                    *gv += ri * a.at(kk, j);
                }
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            g[i * n + j] = g[j * n + i];
        }
    }
}

/// `C = A * B`.
pub fn matmul<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions mismatch {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    // i-k-j loop order: the innermost loop streams rows of B and C,
    // the cache-friendly order for row-major data.
    let cd = c.as_mut_slice();
    let ad = a.as_slice();
    let bd = b.as_slice();
    for ib in (0..m).step_by(BLOCK) {
        for kb in (0..k).step_by(BLOCK) {
            for jb in (0..n).step_by(BLOCK) {
                let imax = (ib + BLOCK).min(m);
                let kmax = (kb + BLOCK).min(k);
                let jmax = (jb + BLOCK).min(n);
                for i in ib..imax {
                    for kk in kb..kmax {
                        let aik = ad[i * k + kk];
                        let brow = &bd[kk * n + jb..kk * n + jmax];
                        let crow = &mut cd[i * n + jb..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * *bv;
                        }
                    }
                }
            }
        }
    }
    c
}

/// `C = Aᵀ * B` without materializing `Aᵀ`.
pub fn matmul_tn<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: row counts must match");
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    let cd = c.as_mut_slice();
    let ad = a.as_slice();
    let bd = b.as_slice();
    for kk in 0..k {
        let arow = &ad[kk * m..(kk + 1) * m];
        let brow = &bd[kk * n..(kk + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            let crow = &mut cd[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aki * *bv;
            }
        }
    }
    c
}

/// `C = A * Bᵀ` without materializing `Bᵀ`.
pub fn matmul_nt<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: column counts must match");
    let (m, n) = (a.rows(), b.rows());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = b.row(j);
            let mut s = T::ZERO;
            for (av, bv) in arow.iter().zip(brow) {
                s += *av * *bv;
            }
            c[(i, j)] = s;
        }
    }
    c
}

/// `y = A * x`.
pub fn matvec<T: Scalar>(a: &Matrix<T>, x: &[T]) -> Vec<T> {
    assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
    (0..a.rows()).map(|i| a.row(i).iter().zip(x).map(|(av, xv)| *av * *xv).sum()).collect()
}

/// `y = Aᵀ * x`.
pub fn matvec_t<T: Scalar>(a: &Matrix<T>, x: &[T]) -> Vec<T> {
    assert_eq!(a.rows(), x.len(), "matvec_t: dimension mismatch");
    let mut y = vec![T::ZERO; a.cols()];
    for (i, &xi) in x.iter().enumerate() {
        for (yv, av) in y.iter_mut().zip(a.row(i)) {
            *yv += *av * xi;
        }
    }
    y
}

/// The Gram matrix `AᵀA`: rank-1 updates over the upper triangle only,
/// mirrored at the end (half the flops of a general `AᵀB`).
pub fn gram<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    let n = a.cols();
    let mut g = Matrix::zeros(n, n);
    let gd = g.as_mut_slice();
    for kk in 0..a.rows() {
        let row = a.row(kk);
        for i in 0..n {
            let ri = row[i];
            let grow = &mut gd[i * n + i..(i + 1) * n];
            for (gv, rv) in grow.iter_mut().zip(&row[i..]) {
                *gv += ri * *rv;
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            gd[i * n + j] = gd[j * n + i];
        }
    }
    g
}
