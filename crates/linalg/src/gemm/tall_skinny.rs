//! The tall-skinny GEMM path: `m >> n, k`, where the full blocked engine
//! loses to plain loops on memory traffic alone.
//!
//! For these shapes — every TSQR panel product and randomized-range
//! update in the SVD drivers has `n, k <= ~128` and `m` in the tens of
//! thousands — `op(B)` fits comfortably in L1/L2, so the MC x KC A-packing
//! of the full path is pure overhead: it reads and writes all of `op(A)`
//! once per K-panel before the kernel reads it *again*, on a problem
//! whose arithmetic intensity is too low to hide even one extra pass.
//! This path instead packs the tiny `op(B)` once and streams `op(A)`
//! row-panels straight through the micro-kernel's strided entry
//! ([`MicroKernel::run_strided`]), which broadcasts directly from the
//! row-major operand — `op(A)` is read exactly once, `C` written exactly
//! once.
//!
//! Strided or edge row-strips (`a.cs != 1`, or fewer than `mr` rows) fall
//! back to packing that one strip into a small per-thread buffer and
//! calling the ordinary [`MicroKernel::run`] — the packed strip holds the
//! same values the broadcast would read, so both entries produce
//! identical bits.
//!
//! The K loop walks the same ascending `KC`-deep panels as the full
//! blocked path, with the accumulator zeroed per panel and flushed once
//! per panel, so for a fixed (kernel, `KC`) each `C` element sees the
//! exact flop sequence of the full path: the dispatch heuristic
//! ([`applies`]) is a pure speed decision, free to change between
//! releases without moving a bit.

use super::kernel::{MicroKernel, MAX_MR, MAX_NR};
use super::pack::{pack_a_strip, pack_b_strip};
use super::packed::writeback;
use crate::par::{self, SendPtr};
use crate::scalar::Scalar;
use crate::view::MatView;

/// Should `m x k * k x n` take the tall-skinny path? True when the packed
/// `op(B)` panel set stays cache-resident (small `n` and `k * n`) and `m`
/// dominates enough that the full path's extra pass over `op(A)` is the
/// cost that matters.
pub(crate) fn applies<T: Scalar>(kern: &dyn MicroKernel<T>, m: usize, k: usize, n: usize) -> bool {
    let nr = kern.nr();
    // n small enough that B strips stay few; k*n bounded so all packed
    // panels of B sit in L2 (~256 KiB of f64); m at least an order of
    // magnitude past the wide dimensions.
    n <= 16 * nr && k * n <= 32 * 1024 && m >= 8 * k.max(n).max(64)
}

/// `C += op(A) * op(B)` for tall-skinny shapes, with the accumulation
/// order of the full blocked path at panel depth `kc_max`.
pub(crate) fn gemm<T: Scalar>(
    kern: &dyn MicroKernel<T>,
    kc_max: usize,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    c: &mut [T],
    ldc: usize,
) {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let (mr, nr) = (kern.mr(), kern.nr());
    // Pack all of op(B) serially — it is tiny here — into the same
    // panel-major strip layout the full path uses.
    let npj = n.div_ceil(nr);
    let mut bpack = vec![T::ZERO; k * npj * nr];
    {
        let mut kb = 0;
        while kb < k {
            let kc = kc_max.min(k - kb);
            for jp in 0..npj {
                let base = kb * npj * nr + jp * kc * nr;
                pack_b_strip(b, kb, kc, jp * nr, nr, &mut bpack[base..base + kc * nr]);
            }
            kb += kc;
        }
    }

    let (used, per) = par::strip_partition(m.div_ceil(mr));
    let cptr = SendPtr(c.as_mut_ptr());
    let bp = &bpack[..];
    par::run(used, &|tid: usize| {
        let r0 = tid * per * mr;
        let r1 = (r0 + per * mr).min(m);
        if r0 >= r1 {
            return;
        }
        let mut acc_buf = [T::ZERO; MAX_MR * MAX_NR];
        let acc = &mut acc_buf[..mr * nr];
        // Lazily sized: only edge/strided strips ever pack.
        let mut apack: Vec<T> = Vec::new();
        let mut i0 = r0;
        while i0 < r1 {
            let rows_here = mr.min(r1 - i0);
            let direct = rows_here == mr && a.cs == 1;
            let mut kb = 0;
            while kb < k {
                let kc = kc_max.min(k - kb);
                let panel_base = kb * npj * nr;
                if !direct {
                    apack.resize(kc * mr, T::ZERO);
                    pack_a_strip(a, i0, rows_here, kb, kc, mr, &mut apack[..kc * mr]);
                }
                for jp in 0..npj {
                    let bstrip = &bp[panel_base + jp * kc * nr..panel_base + (jp + 1) * kc * nr];
                    acc.fill(T::ZERO);
                    if direct {
                        // SAFETY: rows [i0, i0 + mr) x cols [kb, kb + kc)
                        // are in-bounds of the row-major `a`, and the
                        // selected kernel's features were detected at
                        // startup.
                        unsafe {
                            kern.run_strided(
                                kc,
                                a.data.as_ptr().add(i0 * a.rs + kb),
                                a.rs,
                                bstrip,
                                acc,
                            )
                        };
                    } else {
                        kern.run(&apack[..kc * mr], bstrip, acc);
                    }
                    let jcount = nr.min(n - jp * nr);
                    // SAFETY: rows [r0, r1) belong to this thread's
                    // disjoint range.
                    unsafe { writeback(cptr, acc, nr, i0, rows_here, jp * nr, jcount, ldc) };
                }
                kb += kc;
            }
            i0 += mr;
        }
    });
}
