//! Explicitly vectorized x86_64 micro-kernels (`std::arch` intrinsics).
//!
//! Two kernels behind [`MicroKernel`]:
//!
//! * [`AVX2`] — a 4x8 tile of `_mm256_mul_pd` + `_mm256_add_pd`. Pure data
//!   parallelism over the scalar oracle's op sequence (same two roundings
//!   per update, same ascending-k order), so its results are **bitwise
//!   identical** to the scalar kernel — useful both as a faster drop-in
//!   where FMA is absent and as evidence that vectorization itself never
//!   moves a bit.
//! * [`FMA`] — a 6x8 tile of `_mm256_fmadd_pd`: 12 ymm accumulators plus
//!   the two B vectors and one rotating A broadcast exactly fill the
//!   16-register budget with nothing spilled (the classic Haswell DGEMM
//!   shape); the single-rounded fused update doubles peak flops but is a
//!   distinct rounding class (`fused() == true`), last-ulp different from
//!   the oracle.
//!
//! Both kernels implement the strided-A entry by broadcasting straight
//! from the row-major operand, which is what lets the tall-skinny path
//! skip A packing without changing a bit: broadcast-from-memory reads the
//! same values the packed strip would hold, and the flop order is
//! unchanged.
//!
//! # Safety
//!
//! The statics below are only ever handed out by `kernel::available()`
//! after `is_x86_feature_detected!` confirms the matching CPU features,
//! so the `unsafe` trait-method bodies' only obligation is the documented
//! slice/pointer geometry.

use std::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd,
    _mm256_storeu_pd,
};

use super::kernel::MicroKernel;

/// The 4x8 AVX2 multiply-add kernel (bitwise equal to `scalar`).
pub(crate) static AVX2: Avx2Kernel = Avx2Kernel;
/// The 6x8 FMA kernel (fused rounding class).
pub(crate) static FMA: FmaKernel = FmaKernel;

pub(crate) struct Avx2Kernel;

const AVX2_MR: usize = 4;
const AVX2_NR: usize = 8;

impl MicroKernel for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn mr(&self) -> usize {
        AVX2_MR
    }

    fn nr(&self) -> usize {
        AVX2_NR
    }

    fn run(&self, astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
        // SAFETY: only reachable once AVX2 detection has passed (see
        // module docs); slice geometry is the trait contract.
        unsafe { avx2_4x8(astrip, bstrip, acc) }
    }

    unsafe fn run_strided(
        &self,
        kc: usize,
        ap: *const f64,
        ars: usize,
        bstrip: &[f64],
        acc: &mut [f64],
    ) {
        // SAFETY: feature detection as above; pointer geometry is the
        // caller's contract.
        unsafe { avx2_4x8_strided(kc, ap, ars, bstrip, acc) }
    }
}

pub(crate) struct FmaKernel;

const FMA_MR: usize = 6;
const FMA_NR: usize = 8;

impl MicroKernel for FmaKernel {
    fn name(&self) -> &'static str {
        "fma"
    }

    fn mr(&self) -> usize {
        FMA_MR
    }

    fn nr(&self) -> usize {
        FMA_NR
    }

    fn fused(&self) -> bool {
        true
    }

    fn run(&self, astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
        // SAFETY: only reachable once AVX2+FMA detection has passed.
        unsafe { fma_6x8(astrip, bstrip, acc) }
    }

    unsafe fn run_strided(
        &self,
        kc: usize,
        ap: *const f64,
        ars: usize,
        bstrip: &[f64],
        acc: &mut [f64],
    ) {
        // SAFETY: feature detection as above; pointer geometry is the
        // caller's contract.
        unsafe { fma_6x8_strided(kc, ap, ars, bstrip, acc) }
    }
}

/// Load / store helpers for an `ROWS x 8` accumulator tile held as
/// `[[__m256d; 2]; ROWS]`.
#[inline]
unsafe fn load_tile<const ROWS: usize>(acc: &[f64]) -> [[__m256d; 2]; ROWS] {
    debug_assert!(acc.len() >= ROWS * 8);
    let mut c = [[_mm256_set1_pd(0.0); 2]; ROWS];
    for (ir, row) in c.iter_mut().enumerate() {
        row[0] = _mm256_loadu_pd(acc.as_ptr().add(ir * 8));
        row[1] = _mm256_loadu_pd(acc.as_ptr().add(ir * 8 + 4));
    }
    c
}

#[inline]
unsafe fn store_tile<const ROWS: usize>(c: &[[__m256d; 2]; ROWS], acc: &mut [f64]) {
    for (ir, row) in c.iter().enumerate() {
        _mm256_storeu_pd(acc.as_mut_ptr().add(ir * 8), row[0]);
        _mm256_storeu_pd(acc.as_mut_ptr().add(ir * 8 + 4), row[1]);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn avx2_4x8(astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
    let mut c = load_tile::<AVX2_MR>(acc);
    for (avals, bvals) in astrip.chunks_exact(AVX2_MR).zip(bstrip.chunks_exact(AVX2_NR)) {
        let b0 = _mm256_loadu_pd(bvals.as_ptr());
        let b1 = _mm256_loadu_pd(bvals.as_ptr().add(4));
        for (ir, row) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_pd(avals[ir]);
            row[0] = _mm256_add_pd(row[0], _mm256_mul_pd(ai, b0));
            row[1] = _mm256_add_pd(row[1], _mm256_mul_pd(ai, b1));
        }
    }
    store_tile(&c, acc);
}

#[target_feature(enable = "avx2")]
unsafe fn avx2_4x8_strided(kc: usize, ap: *const f64, ars: usize, bstrip: &[f64], acc: &mut [f64]) {
    debug_assert!(bstrip.len() >= kc * AVX2_NR);
    let mut c = load_tile::<AVX2_MR>(acc);
    for kk in 0..kc {
        let b0 = _mm256_loadu_pd(bstrip.as_ptr().add(kk * AVX2_NR));
        let b1 = _mm256_loadu_pd(bstrip.as_ptr().add(kk * AVX2_NR + 4));
        for (ir, row) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_pd(*ap.add(ir * ars + kk));
            row[0] = _mm256_add_pd(row[0], _mm256_mul_pd(ai, b0));
            row[1] = _mm256_add_pd(row[1], _mm256_mul_pd(ai, b1));
        }
    }
    store_tile(&c, acc);
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fma_6x8(astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
    let mut c = load_tile::<FMA_MR>(acc);
    for (avals, bvals) in astrip.chunks_exact(FMA_MR).zip(bstrip.chunks_exact(FMA_NR)) {
        let b0 = _mm256_loadu_pd(bvals.as_ptr());
        let b1 = _mm256_loadu_pd(bvals.as_ptr().add(4));
        for (ir, row) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_pd(avals[ir]);
            row[0] = _mm256_fmadd_pd(ai, b0, row[0]);
            row[1] = _mm256_fmadd_pd(ai, b1, row[1]);
        }
    }
    store_tile(&c, acc);
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fma_6x8_strided(kc: usize, ap: *const f64, ars: usize, bstrip: &[f64], acc: &mut [f64]) {
    debug_assert!(bstrip.len() >= kc * FMA_NR);
    let mut c = load_tile::<FMA_MR>(acc);
    for kk in 0..kc {
        let b0 = _mm256_loadu_pd(bstrip.as_ptr().add(kk * FMA_NR));
        let b1 = _mm256_loadu_pd(bstrip.as_ptr().add(kk * FMA_NR + 4));
        for (ir, row) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_pd(*ap.add(ir * ars + kk));
            row[0] = _mm256_fmadd_pd(ai, b0, row[0]);
            row[1] = _mm256_fmadd_pd(ai, b1, row[1]);
        }
    }
    store_tile(&c, acc);
}
