//! Explicitly vectorized x86_64 micro-kernels (`std::arch` intrinsics).
//!
//! Four kernels behind [`MicroKernel`], two per dtype:
//!
//! * [`AVX2`] (f64) — a 4x8 tile of `_mm256_mul_pd` + `_mm256_add_pd`.
//!   Pure data parallelism over the scalar oracle's op sequence (same two
//!   roundings per update, same ascending-k order), so its results are
//!   **bitwise identical** to the scalar kernel — useful both as a faster
//!   drop-in where FMA is absent and as evidence that vectorization
//!   itself never moves a bit.
//! * [`FMA`] (f64) — a 6x8 tile of `_mm256_fmadd_pd`: 12 ymm accumulators
//!   plus the two B vectors and one rotating A broadcast exactly fill the
//!   16-register budget with nothing spilled (the classic Haswell DGEMM
//!   shape); the single-rounded fused update doubles peak flops but is a
//!   distinct rounding class (`fused() == true`), last-ulp different from
//!   the oracle.
//! * [`AVX2_F32`] / [`FMA_F32`] — the same two tile shapes at f32 with
//!   the column dimension doubled (4x16 and 6x16): a 256-bit ymm holds 8
//!   single-precision lanes instead of 4, so the same 12-accumulator
//!   register budget covers twice the tile area and twice the flops per
//!   cycle. Same rounding-class split: the f32 AVX2 kernel is bitwise
//!   identical to the f32 scalar oracle, the f32 FMA kernel is fused.
//!
//! All kernels implement the strided-A entry by broadcasting straight
//! from the row-major operand, which is what lets the tall-skinny path
//! skip A packing without changing a bit: broadcast-from-memory reads the
//! same values the packed strip would hold, and the flop order is
//! unchanged.
//!
//! # Safety
//!
//! The statics below are only ever handed out by `kernel::available()`
//! after `is_x86_feature_detected!` confirms the matching CPU features,
//! so the `unsafe` trait-method bodies' only obligation is the documented
//! slice/pointer geometry.

use std::arch::x86_64::{
    __m256, __m256d, _mm256_add_pd, _mm256_add_ps, _mm256_fmadd_pd, _mm256_fmadd_ps,
    _mm256_loadu_pd, _mm256_loadu_ps, _mm256_mul_pd, _mm256_mul_ps, _mm256_set1_pd, _mm256_set1_ps,
    _mm256_storeu_pd, _mm256_storeu_ps,
};

use super::kernel::MicroKernel;

/// The 4x8 AVX2 f64 multiply-add kernel (bitwise equal to `scalar`).
pub(crate) static AVX2: Avx2Kernel = Avx2Kernel;
/// The 6x8 FMA f64 kernel (fused rounding class).
pub(crate) static FMA: FmaKernel = FmaKernel;
/// The 4x16 AVX2 f32 multiply-add kernel (bitwise equal to the f32
/// `scalar` oracle).
pub(crate) static AVX2_F32: Avx2KernelF32 = Avx2KernelF32;
/// The 6x16 FMA f32 kernel (fused rounding class).
pub(crate) static FMA_F32: FmaKernelF32 = FmaKernelF32;

pub(crate) struct Avx2Kernel;

const AVX2_MR: usize = 4;
const AVX2_NR: usize = 8;

impl MicroKernel<f64> for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn mr(&self) -> usize {
        AVX2_MR
    }

    fn nr(&self) -> usize {
        AVX2_NR
    }

    fn run(&self, astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
        // SAFETY: only reachable once AVX2 detection has passed (see
        // module docs); slice geometry is the trait contract.
        unsafe { avx2_4x8(astrip, bstrip, acc) }
    }

    unsafe fn run_strided(
        &self,
        kc: usize,
        ap: *const f64,
        ars: usize,
        bstrip: &[f64],
        acc: &mut [f64],
    ) {
        // SAFETY: feature detection as above; pointer geometry is the
        // caller's contract.
        unsafe { avx2_4x8_strided(kc, ap, ars, bstrip, acc) }
    }
}

pub(crate) struct FmaKernel;

const FMA_MR: usize = 6;
const FMA_NR: usize = 8;

impl MicroKernel<f64> for FmaKernel {
    fn name(&self) -> &'static str {
        "fma"
    }

    fn mr(&self) -> usize {
        FMA_MR
    }

    fn nr(&self) -> usize {
        FMA_NR
    }

    fn fused(&self) -> bool {
        true
    }

    fn run(&self, astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
        // SAFETY: only reachable once AVX2+FMA detection has passed.
        unsafe { fma_6x8(astrip, bstrip, acc) }
    }

    unsafe fn run_strided(
        &self,
        kc: usize,
        ap: *const f64,
        ars: usize,
        bstrip: &[f64],
        acc: &mut [f64],
    ) {
        // SAFETY: feature detection as above; pointer geometry is the
        // caller's contract.
        unsafe { fma_6x8_strided(kc, ap, ars, bstrip, acc) }
    }
}

pub(crate) struct Avx2KernelF32;

const AVX2_F32_MR: usize = 4;
const AVX2_F32_NR: usize = 16;

impl MicroKernel<f32> for Avx2KernelF32 {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn mr(&self) -> usize {
        AVX2_F32_MR
    }

    fn nr(&self) -> usize {
        AVX2_F32_NR
    }

    fn run(&self, astrip: &[f32], bstrip: &[f32], acc: &mut [f32]) {
        // SAFETY: only reachable once AVX2 detection has passed.
        unsafe { avx2_4x16(astrip, bstrip, acc) }
    }

    unsafe fn run_strided(
        &self,
        kc: usize,
        ap: *const f32,
        ars: usize,
        bstrip: &[f32],
        acc: &mut [f32],
    ) {
        // SAFETY: feature detection as above; pointer geometry is the
        // caller's contract.
        unsafe { avx2_4x16_strided(kc, ap, ars, bstrip, acc) }
    }
}

pub(crate) struct FmaKernelF32;

const FMA_F32_MR: usize = 6;
const FMA_F32_NR: usize = 16;

impl MicroKernel<f32> for FmaKernelF32 {
    fn name(&self) -> &'static str {
        "fma"
    }

    fn mr(&self) -> usize {
        FMA_F32_MR
    }

    fn nr(&self) -> usize {
        FMA_F32_NR
    }

    fn fused(&self) -> bool {
        true
    }

    fn run(&self, astrip: &[f32], bstrip: &[f32], acc: &mut [f32]) {
        // SAFETY: only reachable once AVX2+FMA detection has passed.
        unsafe { fma_6x16(astrip, bstrip, acc) }
    }

    unsafe fn run_strided(
        &self,
        kc: usize,
        ap: *const f32,
        ars: usize,
        bstrip: &[f32],
        acc: &mut [f32],
    ) {
        // SAFETY: feature detection as above; pointer geometry is the
        // caller's contract.
        unsafe { fma_6x16_strided(kc, ap, ars, bstrip, acc) }
    }
}

/// Load / store helpers for an `ROWS x 8` f64 accumulator tile held as
/// `[[__m256d; 2]; ROWS]`.
#[inline]
unsafe fn load_tile<const ROWS: usize>(acc: &[f64]) -> [[__m256d; 2]; ROWS] {
    debug_assert!(acc.len() >= ROWS * 8);
    let mut c = [[_mm256_set1_pd(0.0); 2]; ROWS];
    for (ir, row) in c.iter_mut().enumerate() {
        row[0] = _mm256_loadu_pd(acc.as_ptr().add(ir * 8));
        row[1] = _mm256_loadu_pd(acc.as_ptr().add(ir * 8 + 4));
    }
    c
}

#[inline]
unsafe fn store_tile<const ROWS: usize>(c: &[[__m256d; 2]; ROWS], acc: &mut [f64]) {
    for (ir, row) in c.iter().enumerate() {
        _mm256_storeu_pd(acc.as_mut_ptr().add(ir * 8), row[0]);
        _mm256_storeu_pd(acc.as_mut_ptr().add(ir * 8 + 4), row[1]);
    }
}

/// Load / store helpers for an `ROWS x 16` f32 accumulator tile held as
/// `[[__m256; 2]; ROWS]` — same two-vector shape as the f64 tile, twice
/// the lanes.
#[inline]
unsafe fn load_tile_f32<const ROWS: usize>(acc: &[f32]) -> [[__m256; 2]; ROWS] {
    debug_assert!(acc.len() >= ROWS * 16);
    let mut c = [[_mm256_set1_ps(0.0); 2]; ROWS];
    for (ir, row) in c.iter_mut().enumerate() {
        row[0] = _mm256_loadu_ps(acc.as_ptr().add(ir * 16));
        row[1] = _mm256_loadu_ps(acc.as_ptr().add(ir * 16 + 8));
    }
    c
}

#[inline]
unsafe fn store_tile_f32<const ROWS: usize>(c: &[[__m256; 2]; ROWS], acc: &mut [f32]) {
    for (ir, row) in c.iter().enumerate() {
        _mm256_storeu_ps(acc.as_mut_ptr().add(ir * 16), row[0]);
        _mm256_storeu_ps(acc.as_mut_ptr().add(ir * 16 + 8), row[1]);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn avx2_4x8(astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
    let mut c = load_tile::<AVX2_MR>(acc);
    for (avals, bvals) in astrip.chunks_exact(AVX2_MR).zip(bstrip.chunks_exact(AVX2_NR)) {
        let b0 = _mm256_loadu_pd(bvals.as_ptr());
        let b1 = _mm256_loadu_pd(bvals.as_ptr().add(4));
        for (ir, row) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_pd(avals[ir]);
            row[0] = _mm256_add_pd(row[0], _mm256_mul_pd(ai, b0));
            row[1] = _mm256_add_pd(row[1], _mm256_mul_pd(ai, b1));
        }
    }
    store_tile(&c, acc);
}

#[target_feature(enable = "avx2")]
unsafe fn avx2_4x8_strided(kc: usize, ap: *const f64, ars: usize, bstrip: &[f64], acc: &mut [f64]) {
    debug_assert!(bstrip.len() >= kc * AVX2_NR);
    let mut c = load_tile::<AVX2_MR>(acc);
    for kk in 0..kc {
        let b0 = _mm256_loadu_pd(bstrip.as_ptr().add(kk * AVX2_NR));
        let b1 = _mm256_loadu_pd(bstrip.as_ptr().add(kk * AVX2_NR + 4));
        for (ir, row) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_pd(*ap.add(ir * ars + kk));
            row[0] = _mm256_add_pd(row[0], _mm256_mul_pd(ai, b0));
            row[1] = _mm256_add_pd(row[1], _mm256_mul_pd(ai, b1));
        }
    }
    store_tile(&c, acc);
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fma_6x8(astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
    let mut c = load_tile::<FMA_MR>(acc);
    for (avals, bvals) in astrip.chunks_exact(FMA_MR).zip(bstrip.chunks_exact(FMA_NR)) {
        let b0 = _mm256_loadu_pd(bvals.as_ptr());
        let b1 = _mm256_loadu_pd(bvals.as_ptr().add(4));
        for (ir, row) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_pd(avals[ir]);
            row[0] = _mm256_fmadd_pd(ai, b0, row[0]);
            row[1] = _mm256_fmadd_pd(ai, b1, row[1]);
        }
    }
    store_tile(&c, acc);
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fma_6x8_strided(kc: usize, ap: *const f64, ars: usize, bstrip: &[f64], acc: &mut [f64]) {
    debug_assert!(bstrip.len() >= kc * FMA_NR);
    let mut c = load_tile::<FMA_MR>(acc);
    for kk in 0..kc {
        let b0 = _mm256_loadu_pd(bstrip.as_ptr().add(kk * FMA_NR));
        let b1 = _mm256_loadu_pd(bstrip.as_ptr().add(kk * FMA_NR + 4));
        for (ir, row) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_pd(*ap.add(ir * ars + kk));
            row[0] = _mm256_fmadd_pd(ai, b0, row[0]);
            row[1] = _mm256_fmadd_pd(ai, b1, row[1]);
        }
    }
    store_tile(&c, acc);
}

#[target_feature(enable = "avx2")]
unsafe fn avx2_4x16(astrip: &[f32], bstrip: &[f32], acc: &mut [f32]) {
    let mut c = load_tile_f32::<AVX2_F32_MR>(acc);
    for (avals, bvals) in astrip.chunks_exact(AVX2_F32_MR).zip(bstrip.chunks_exact(AVX2_F32_NR)) {
        let b0 = _mm256_loadu_ps(bvals.as_ptr());
        let b1 = _mm256_loadu_ps(bvals.as_ptr().add(8));
        for (ir, row) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_ps(avals[ir]);
            row[0] = _mm256_add_ps(row[0], _mm256_mul_ps(ai, b0));
            row[1] = _mm256_add_ps(row[1], _mm256_mul_ps(ai, b1));
        }
    }
    store_tile_f32(&c, acc);
}

#[target_feature(enable = "avx2")]
unsafe fn avx2_4x16_strided(
    kc: usize,
    ap: *const f32,
    ars: usize,
    bstrip: &[f32],
    acc: &mut [f32],
) {
    debug_assert!(bstrip.len() >= kc * AVX2_F32_NR);
    let mut c = load_tile_f32::<AVX2_F32_MR>(acc);
    for kk in 0..kc {
        let b0 = _mm256_loadu_ps(bstrip.as_ptr().add(kk * AVX2_F32_NR));
        let b1 = _mm256_loadu_ps(bstrip.as_ptr().add(kk * AVX2_F32_NR + 8));
        for (ir, row) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_ps(*ap.add(ir * ars + kk));
            row[0] = _mm256_add_ps(row[0], _mm256_mul_ps(ai, b0));
            row[1] = _mm256_add_ps(row[1], _mm256_mul_ps(ai, b1));
        }
    }
    store_tile_f32(&c, acc);
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fma_6x16(astrip: &[f32], bstrip: &[f32], acc: &mut [f32]) {
    let mut c = load_tile_f32::<FMA_F32_MR>(acc);
    for (avals, bvals) in astrip.chunks_exact(FMA_F32_MR).zip(bstrip.chunks_exact(FMA_F32_NR)) {
        let b0 = _mm256_loadu_ps(bvals.as_ptr());
        let b1 = _mm256_loadu_ps(bvals.as_ptr().add(8));
        for (ir, row) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_ps(avals[ir]);
            row[0] = _mm256_fmadd_ps(ai, b0, row[0]);
            row[1] = _mm256_fmadd_ps(ai, b1, row[1]);
        }
    }
    store_tile_f32(&c, acc);
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fma_6x16_strided(kc: usize, ap: *const f32, ars: usize, bstrip: &[f32], acc: &mut [f32]) {
    debug_assert!(bstrip.len() >= kc * FMA_F32_NR);
    let mut c = load_tile_f32::<FMA_F32_MR>(acc);
    for kk in 0..kc {
        let b0 = _mm256_loadu_ps(bstrip.as_ptr().add(kk * FMA_F32_NR));
        let b1 = _mm256_loadu_ps(bstrip.as_ptr().add(kk * FMA_F32_NR + 8));
        for (ir, row) in c.iter_mut().enumerate() {
            let ai = _mm256_set1_ps(*ap.add(ir * ars + kk));
            row[0] = _mm256_fmadd_ps(ai, b0, row[0]);
            row[1] = _mm256_fmadd_ps(ai, b1, row[1]);
        }
    }
    store_tile_f32(&c, acc);
}
