//! Householder reduction to upper Hessenberg form: `A = Q H Qᵀ`.
//!
//! First stage of the nonsymmetric eigensolver ([`crate::schur`]): the
//! Francis QR iteration requires Hessenberg structure to run in `O(n²)`
//! per step.

use crate::matrix::Matrix;

/// Hessenberg factorization `a = q * h * qᵀ` with orthogonal `q` and
/// upper-Hessenberg `h` (zero below the first subdiagonal).
#[derive(Clone, Debug)]
pub struct HessenbergFactors {
    /// Orthogonal similarity transform.
    pub q: Matrix,
    /// Upper Hessenberg matrix.
    pub h: Matrix,
}

/// Reduce a square matrix to upper Hessenberg form.
pub fn hessenberg(a: &Matrix) -> HessenbergFactors {
    let n = a.rows();
    assert_eq!(n, a.cols(), "hessenberg: matrix must be square");
    let mut h = a.clone();
    let mut vs: Vec<Vec<f64>> = Vec::new();

    for k in 0..n.saturating_sub(2) {
        // Householder annihilating h[k+2.., k].
        let mut v: Vec<f64> = (k + 1..n).map(|i| h[(i, k)]).collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            vs.push(Vec::new());
            continue;
        }
        let alpha = if v[0] >= 0.0 { -norm } else { norm };
        v[0] -= alpha;
        let vn2: f64 = v.iter().map(|x| x * x).sum();
        if vn2 == 0.0 {
            vs.push(Vec::new());
            continue;
        }
        // H ← P H (rows k+1..n), all columns.
        for j in 0..n {
            let mut dot = 0.0;
            for (idx, vi) in v.iter().enumerate() {
                dot += vi * h[(k + 1 + idx, j)];
            }
            let s = 2.0 * dot / vn2;
            for (idx, vi) in v.iter().enumerate() {
                h[(k + 1 + idx, j)] -= s * vi;
            }
        }
        // H ← H P (columns k+1..n), all rows.
        for i in 0..n {
            let mut dot = 0.0;
            for (idx, vi) in v.iter().enumerate() {
                dot += vi * h[(i, k + 1 + idx)];
            }
            let s = 2.0 * dot / vn2;
            for (idx, vi) in v.iter().enumerate() {
                h[(i, k + 1 + idx)] -= s * vi;
            }
        }
        // Clean the annihilated entries.
        h[(k + 1, k)] = alpha;
        for i in k + 2..n {
            h[(i, k)] = 0.0;
        }
        vs.push(v);
    }

    // Accumulate Q by applying the reflectors (in reverse) to the identity.
    let mut q = Matrix::identity(n);
    for k in (0..vs.len()).rev() {
        let v = &vs[k];
        if v.is_empty() {
            continue;
        }
        let vn2: f64 = v.iter().map(|x| x * x).sum();
        for j in 0..n {
            let mut dot = 0.0;
            for (idx, vi) in v.iter().enumerate() {
                dot += vi * q[(k + 1 + idx, j)];
            }
            let s = 2.0 * dot / vn2;
            for (idx, vi) in v.iter().enumerate() {
                q[(k + 1 + idx, j)] -= s * vi;
            }
        }
    }

    HessenbergFactors { q, h }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::orthogonality_error;
    use crate::random::{gaussian_matrix, seeded_rng};

    #[test]
    fn reconstructs_and_q_orthogonal() {
        let a = gaussian_matrix(12, 12, &mut seeded_rng(1));
        let f = hessenberg(&a);
        assert!(orthogonality_error(&f.q) < 1e-12);
        let rec = matmul(&matmul(&f.q, &f.h), &f.q.transpose());
        assert!((&rec - &a).max_abs() < 1e-11);
    }

    #[test]
    fn h_is_hessenberg() {
        let a = gaussian_matrix(10, 10, &mut seeded_rng(2));
        let f = hessenberg(&a);
        for i in 2..10 {
            for j in 0..i - 1 {
                assert_eq!(f.h[(i, j)], 0.0, "nonzero below subdiagonal at ({i},{j})");
            }
        }
    }

    #[test]
    fn already_hessenberg_unchanged_in_structure() {
        let mut a = gaussian_matrix(6, 6, &mut seeded_rng(3));
        for i in 2..6 {
            for j in 0..i - 1 {
                a[(i, j)] = 0.0;
            }
        }
        let f = hessenberg(&a);
        let rec = matmul(&matmul(&f.q, &f.h), &f.q.transpose());
        assert!((&rec - &a).max_abs() < 1e-12);
    }

    #[test]
    fn small_sizes() {
        for n in [1usize, 2, 3] {
            let a = gaussian_matrix(n, n, &mut seeded_rng(n as u64));
            let f = hessenberg(&a);
            let rec = matmul(&matmul(&f.q, &f.h), &f.q.transpose());
            assert!((&rec - &a).max_abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn preserves_eigen_trace() {
        // Similarity preserves the trace.
        let a = gaussian_matrix(9, 9, &mut seeded_rng(5));
        let f = hessenberg(&a);
        let tr_a: f64 = (0..9).map(|i| a[(i, i)]).sum();
        let tr_h: f64 = (0..9).map(|i| f.h[(i, i)]).sum();
        assert!((tr_a - tr_h).abs() < 1e-11);
    }
}
