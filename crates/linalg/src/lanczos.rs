//! Golub–Kahan–Lanczos bidiagonalization SVD.
//!
//! A classic *iterative* route to the leading singular triplets, included as
//! a baseline comparator for the paper's streaming/randomized approach: it
//! touches `A` only through `A·v` and `Aᵀ·u` products, builds a small upper
//! bidiagonal matrix, and reads the leading triplets off its SVD. Full
//! reorthogonalization keeps the Krylov bases orthonormal (at `O(m·k²)`
//! extra cost), which is the standard cure for Lanczos' loss of
//! orthogonality in floating point.

use crate::matrix::Matrix;
use crate::norms::{vec_dot, vec_norm};
use crate::random::StandardNormal;
use crate::svd::golub_kahan::bidiagonal_svd;
use crate::svd::Svd;
use rand::distributions::Distribution;

/// Configuration for the Lanczos SVD.
#[derive(Clone, Copy, Debug)]
pub struct LanczosConfig {
    /// Number of leading triplets wanted.
    pub rank: usize,
    /// Krylov steps beyond `rank` (accuracy buffer, like oversampling).
    pub extra_steps: usize,
}

impl LanczosConfig {
    /// Default: 8 extra steps.
    pub fn new(rank: usize) -> Self {
        Self { rank, extra_steps: 8 }
    }

    /// Builder: extra Krylov steps.
    pub fn with_extra_steps(mut self, extra: usize) -> Self {
        self.extra_steps = extra;
        self
    }
}

/// Leading-`k` SVD via Golub–Kahan–Lanczos bidiagonalization with full
/// reorthogonalization. `rng` seeds the start vector.
pub fn lanczos_svd<R: rand::Rng>(a: &Matrix, cfg: &LanczosConfig, rng: &mut R) -> Svd {
    let (m, n) = a.shape();
    let p = m.min(n);
    let steps = (cfg.rank + cfg.extra_steps).min(p);
    if steps == 0 || cfg.rank == 0 {
        return Svd { u: Matrix::zeros(m, 0), s: Vec::new(), vt: Matrix::zeros(0, n) };
    }

    let normal = StandardNormal;
    // Krylov bases as column lists.
    let mut us: Vec<Vec<f64>> = Vec::with_capacity(steps);
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(steps);
    let mut alphas: Vec<f64> = Vec::with_capacity(steps);
    let mut betas: Vec<f64> = Vec::with_capacity(steps.saturating_sub(1));

    // Unit random start vector in R^n.
    let mut v: Vec<f64> = (0..n).map(|_| normal.sample(rng)).collect();
    let nv = vec_norm(&v).max(f64::MIN_POSITIVE);
    for x in &mut v {
        *x /= nv;
    }
    vs.push(v);

    // u_1 = A v_1 / alpha_1.
    let mut u = crate::gemm::matvec(a, &vs[0]);
    let alpha = vec_norm(&u);
    if alpha == 0.0 {
        // A v = 0 for a random v: A is (numerically) zero.
        return Svd {
            u: Matrix::zeros(m, cfg.rank.min(p)),
            s: vec![0.0; cfg.rank.min(p)],
            vt: Matrix::zeros(cfg.rank.min(p), n),
        };
    }
    for x in &mut u {
        *x /= alpha;
    }
    alphas.push(alpha);
    us.push(u);

    for j in 0..steps - 1 {
        // w = Aᵀ u_j − alpha_j v_j, reorthogonalized against all v's.
        let mut w = crate::gemm::matvec_t(a, &us[j]);
        for (i, vi) in vs.iter().enumerate() {
            let coef = if i == j { alphas[j] } else { 0.0 };
            let h = vec_dot(&w, vi) - coef;
            let _ = h; // explicit below
        }
        // Subtract alpha_j v_j then do two reorthogonalization passes.
        for (x, vj) in w.iter_mut().zip(&vs[j]) {
            *x -= alphas[j] * vj;
        }
        for _ in 0..2 {
            for vi in &vs {
                let h = vec_dot(&w, vi);
                for (x, y) in w.iter_mut().zip(vi) {
                    *x -= h * y;
                }
            }
        }
        let beta = vec_norm(&w);
        if beta <= f64::EPSILON * alphas[0] {
            break; // invariant subspace found
        }
        for x in &mut w {
            *x /= beta;
        }
        betas.push(beta);
        vs.push(w);

        // u_{j+1} = A v_{j+1} − beta_j u_j, reorthogonalized against all u's.
        let mut z = crate::gemm::matvec(a, &vs[j + 1]);
        for (x, uj) in z.iter_mut().zip(&us[j]) {
            *x -= beta * uj;
        }
        for _ in 0..2 {
            for ui in &us {
                let h = vec_dot(&z, ui);
                for (x, y) in z.iter_mut().zip(ui) {
                    *x -= h * y;
                }
            }
        }
        let alpha = vec_norm(&z);
        if alpha <= f64::EPSILON * alphas[0] {
            break;
        }
        for x in &mut z {
            *x /= alpha;
        }
        alphas.push(alpha);
        us.push(z);
    }

    // SVD of the small upper bidiagonal (alphas on the diagonal, betas on
    // the superdiagonal), rotations accumulated from identity.
    let kk = alphas.len();
    let d = alphas.clone();
    let e = betas[..kk.saturating_sub(1)].to_vec();
    let small = bidiagonal_svd(d, e, Matrix::identity(kk), Matrix::identity(kk));

    // Lift: U = U_krylov * P, V = V_krylov * Q.
    let u_krylov = Matrix::from_columns(&us);
    let v_krylov = Matrix::from_columns(&vs[..kk]);
    let k_out = cfg.rank.min(kk);
    let u_full = crate::gemm::matmul(&u_krylov, &small.u);
    let v_full = crate::gemm::matmul(&v_krylov, &small.vt.transpose());
    Svd {
        u: u_full.first_columns(k_out),
        s: small.s[..k_out].to_vec(),
        vt: v_full.first_columns(k_out).transpose(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::orthogonality_error;
    use crate::random::{matrix_with_spectrum, seeded_rng};
    use crate::svd::svd;
    use crate::validate::max_principal_angle;

    #[test]
    fn recovers_leading_triplets() {
        let mut rng = seeded_rng(1);
        let spec: Vec<f64> = (0..20).map(|i| 6.0 * 0.7f64.powi(i)).collect();
        let a = matrix_with_spectrum(80, 30, &spec, &mut rng);
        let f = lanczos_svd(&a, &LanczosConfig::new(5), &mut rng);
        let reference = svd(&a);
        for (got, want) in f.s.iter().zip(&reference.s) {
            assert!((got - want).abs() / want < 1e-6, "sigma {got} vs {want}");
        }
        assert!(
            max_principal_angle(&reference.u.first_columns(5), &f.u) < 1e-4,
            "leading subspace must match"
        );
    }

    #[test]
    fn exact_on_low_rank() {
        let mut rng = seeded_rng(2);
        let a = matrix_with_spectrum(50, 20, &[4.0, 2.0, 1.0], &mut rng);
        let f = lanczos_svd(&a, &LanczosConfig::new(3), &mut rng);
        assert!((f.s[0] - 4.0).abs() < 1e-8);
        assert!((f.s[1] - 2.0).abs() < 1e-8);
        assert!((f.s[2] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn bases_orthonormal() {
        let mut rng = seeded_rng(3);
        let spec: Vec<f64> = (0..15).map(|i| 3.0 / (1.0 + i as f64)).collect();
        let a = matrix_with_spectrum(60, 25, &spec, &mut rng);
        let f = lanczos_svd(&a, &LanczosConfig::new(6), &mut rng);
        assert!(orthogonality_error(&f.u) < 1e-9);
        assert!(orthogonality_error(&f.vt.transpose()) < 1e-9);
    }

    #[test]
    fn early_breakdown_on_exact_rank() {
        // Rank-2 matrix: Krylov space exhausts after 2 steps, the solver
        // must stop gracefully and still return `rank` values (padded by
        // whatever converged).
        let mut rng = seeded_rng(4);
        let a = matrix_with_spectrum(30, 10, &[5.0, 1.0], &mut rng);
        let f = lanczos_svd(&a, &LanczosConfig::new(4), &mut rng);
        assert!((f.s[0] - 5.0).abs() < 1e-8);
        assert!((f.s[1] - 1.0).abs() < 1e-8);
        // Trailing values, if any, are numerically zero.
        for &x in &f.s[2..] {
            assert!(x < 1e-8);
        }
    }

    #[test]
    fn zero_matrix() {
        let mut rng = seeded_rng(5);
        let f = lanczos_svd(&Matrix::zeros(10, 4), &LanczosConfig::new(2), &mut rng);
        assert!(f.s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn wide_matrix_supported() {
        let mut rng = seeded_rng(6);
        let a = matrix_with_spectrum(12, 40, &[3.0, 2.0, 0.5], &mut rng);
        let f = lanczos_svd(&a, &LanczosConfig::new(3), &mut rng);
        assert!((f.s[0] - 3.0).abs() < 1e-8, "{:?}", f.s);
        assert_eq!(f.u.shape(), (12, 3));
        assert_eq!(f.vt.shape(), (3, 40));
    }

    #[test]
    fn rank_zero_request() {
        let mut rng = seeded_rng(7);
        let a = Matrix::identity(4);
        let f = lanczos_svd(&a, &LanczosConfig { rank: 0, extra_steps: 2 }, &mut rng);
        assert!(f.s.is_empty());
    }
}
