//! # psvd-linalg
//!
//! Dense linear-algebra substrate for the PyParSVD reproduction: a row-major
//! [`Matrix`], blocked GEMM kernels, Householder QR, two SVD kernels
//! (Golub–Kahan and one-sided Jacobi), a symmetric Jacobi eigensolver, the
//! method of snapshots, and randomized range-finder / SVD routines.
//!
//! Everything is implemented from scratch (no BLAS/LAPACK), sized for the
//! regime the paper targets: data matrices that are very tall (`M >> N`)
//! whose *small* core factorizations (`N x N`-ish) happen over and over.
//!
//! ```
//! use psvd_linalg::{Matrix, svd::svd};
//!
//! let a = Matrix::from_fn(30, 5, |i, j| ((i + j) as f64 * 0.3).sin());
//! let f = svd(&a);
//! assert!(f.reconstruction_error(&a) < 1e-10);
//! assert!(f.s.windows(2).all(|w| w[0] >= w[1]));
//! ```

pub mod cholesky;
pub mod cmatrix;
pub mod complex;
pub mod eig;
pub mod eig_general;
pub mod fft;
pub mod gemm;
pub mod hessenberg;
pub mod lanczos;
pub mod lu;
pub mod matrix;
pub mod norms;
pub mod par;
pub mod pinv;
pub mod qr;
pub mod random;
pub mod randomized;
pub mod rot;
pub mod scalar;
pub mod schur;
pub mod snapshots;
pub mod svd;
pub mod validate;
pub mod view;
pub mod workspace;
pub mod wy;

pub use gemm::{gram_into, matmul_acc_into, matmul_into, matmul_nt_into, matmul_tn_into};
pub use lanczos::{lanczos_svd, LanczosConfig};
pub use matrix::{alloc_stats, Matrix};
pub use pinv::{lstsq, pseudoinverse};
pub use qr::{qr_block, qr_thin_into, set_qr_block, thin_qr, QrFactors};
pub use randomized::{low_rank_svd, randomized_svd, RandomizedConfig};
pub use rot::{rot_block, set_rot_block, RotAccumulator, RotStats};
pub use scalar::Scalar;
pub use snapshots::generate_right_vectors;
pub use svd::{convergence_stats, svd, svd_with, truncated_svd, Svd, SvdInfo, SvdMethod};
pub use view::{MatView, MatViewMut};
pub use workspace::{Workspace, WorkspaceStats};
