//! LU factorization with partial pivoting: `P A = L U`.
//!
//! Completes the dense substrate with the standard direct solver —
//! determinants, linear solves, and inverses for the small square systems
//! that appear around the SVD drivers (e.g. amplitude fitting).

use crate::matrix::Matrix;

/// An LU factorization with row pivoting.
#[derive(Clone, Debug)]
pub struct LuFactors {
    /// Packed factors: `U` on and above the diagonal, unit-`L` multipliers
    /// below.
    lu: Matrix,
    /// Row permutation: row `i` of the factors came from `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1` or `-1`), for the determinant.
    sign: f64,
}

/// Factor a square matrix; returns `None` when exactly singular at some
/// pivot (no nonzero pivot available).
pub fn lu(a: &Matrix) -> Option<LuFactors> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "lu: matrix must be square");
    let mut m = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    for k in 0..n {
        // Partial pivoting.
        let mut p = k;
        let mut best = m[(k, k)].abs();
        for i in k + 1..n {
            if m[(i, k)].abs() > best {
                best = m[(i, k)].abs();
                p = i;
            }
        }
        if best == 0.0 {
            return None;
        }
        if p != k {
            for j in 0..n {
                let tmp = m[(k, j)];
                m[(k, j)] = m[(p, j)];
                m[(p, j)] = tmp;
            }
            perm.swap(k, p);
            sign = -sign;
        }
        let pivot = m[(k, k)];
        for i in k + 1..n {
            let factor = m[(i, k)] / pivot;
            m[(i, k)] = factor; // store the multiplier in L's slot
            if factor != 0.0 {
                for j in k + 1..n {
                    let v = factor * m[(k, j)];
                    m[(i, j)] -= v;
                }
            }
        }
    }
    Some(LuFactors { lu: m, perm, sign })
}

impl LuFactors {
    /// Dimension.
    pub fn n(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`.
    // Triangular substitution is clearest with explicit index ranges.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(b.len(), n, "solve: rhs length mismatch");
        // Apply the permutation, then forward/back substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        x
    }

    /// Solve for multiple right-hand sides (columns of `b`).
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.n(), "solve_matrix: row count mismatch");
        let cols: Vec<Vec<f64>> = (0..b.cols()).map(|j| self.solve(&b.col(j))).collect();
        Matrix::from_columns(&cols)
    }

    /// Determinant of `A`.
    pub fn determinant(&self) -> f64 {
        self.sign * (0..self.n()).map(|i| self.lu[(i, i)]).product::<f64>()
    }

    /// Inverse of `A`.
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.n()))
    }
}

/// Convenience: solve `A x = b` in one call (`None` if singular).
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    lu(a).map(|f| f.solve(b))
}

/// Determinant (`0.0` for exactly singular input).
pub fn determinant(a: &Matrix) -> f64 {
    lu(a).map_or(0.0, |f| f.determinant())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matvec};
    use crate::random::{gaussian_matrix, seeded_rng};

    #[test]
    fn solve_roundtrip() {
        let a = gaussian_matrix(10, 10, &mut seeded_rng(1));
        let x_true: Vec<f64> = (0..10).map(|i| (i as f64 * 0.4).sin()).collect();
        let b = matvec(&a, &x_true);
        let x = solve(&a, &b).expect("nonsingular");
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn inverse_is_inverse() {
        let a = gaussian_matrix(8, 8, &mut seeded_rng(2));
        let inv = lu(&a).unwrap().inverse();
        let eye = matmul(&a, &inv);
        assert!((&eye - &Matrix::identity(8)).max_abs() < 1e-9);
    }

    #[test]
    fn determinant_known_values() {
        assert!((determinant(&Matrix::identity(5)) - 1.0).abs() < 1e-14);
        let d = Matrix::from_diag(&[2.0, 3.0, -4.0]);
        assert!((determinant(&d) - -24.0).abs() < 1e-12);
        // Swapping two rows flips the sign.
        let mut swapped = Matrix::from_diag(&[2.0, 3.0, -4.0]);
        for j in 0..3 {
            let tmp = swapped[(0, j)];
            swapped[(0, j)] = swapped[(1, j)];
            swapped[(1, j)] = tmp;
        }
        assert!((determinant(&swapped) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_matches_svd_magnitude() {
        let a = gaussian_matrix(7, 7, &mut seeded_rng(3));
        let det = determinant(&a).abs();
        let prod: f64 = crate::svd::svd(&a).s.iter().product();
        assert!((det - prod).abs() < 1e-8 * prod.max(1.0));
    }

    #[test]
    fn singular_detected() {
        let mut a = gaussian_matrix(5, 5, &mut seeded_rng(4));
        // Make row 3 a copy of row 1 -> exactly singular after elimination?
        // (Floating-point elimination of duplicates hits a zero pivot.)
        for j in 0..5 {
            let v = a[(1, j)];
            a[(3, j)] = v;
        }
        match lu(&a) {
            None => {}
            // Round-off can leave a tiny pivot instead of exact zero; the
            // determinant must then be negligible.
            Some(f) => assert!(f.determinant().abs() < 1e-10),
        }
        assert!(solve(&Matrix::zeros(3, 3), &[1.0; 3]).is_none());
    }

    #[test]
    fn multi_rhs_solve() {
        let a = gaussian_matrix(6, 6, &mut seeded_rng(5));
        let b = gaussian_matrix(6, 3, &mut seeded_rng(6));
        let x = lu(&a).unwrap().solve_matrix(&b);
        assert!((&matmul(&a, &x) - &b).max_abs() < 1e-9);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
        assert!((determinant(&a) - -1.0).abs() < 1e-14);
    }
}
