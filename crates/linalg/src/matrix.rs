//! Dense row-major matrix, generic over the element type.
//!
//! This is the workhorse container for the whole workspace. It is deliberately
//! simple: a `Vec<T>` in row-major order plus the two dimensions, where `T`
//! is one of the sealed [`Scalar`] dtypes (`f64` by default, so all
//! pre-generic code and call sites read unchanged). All factorization
//! kernels in this crate operate on it, and the distributed algorithms in
//! `psvd-core` ship its row/column blocks between ranks.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::scalar::Scalar;

pub mod alloc_stats {
    //! Process-wide matrix-allocation counters.
    //!
    //! Every code path in this crate that allocates a fresh matrix buffer
    //! (constructors, `clone`, stacking, elementwise ops, workspace misses)
    //! bumps these counters; buffer *reuse* (workspace hits, in-place
    //! reshapes within capacity, `from_vec`) does not. Diffing
    //! [`snapshot`] around a steady-state streaming update therefore
    //! measures its transient allocation traffic directly — that is what
    //! the `gemm_scaling` bench records into `BENCH_alloc.json`.
    //!
    //! Byte counts are dtype-aware: an `f32` buffer of `len` elements
    //! charges half the bytes of an `f64` one.
    //!
    //! The counters are atomics, so they are safe (if noisy) under
    //! concurrent tests; single-threaded measurement is exact.

    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNT: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// Record one fresh buffer of `len` elements of `T` (no-op for
    /// `len == 0`, which `Vec` serves without touching the heap).
    #[inline]
    pub(crate) fn record<T>(len: usize) {
        if len > 0 {
            COUNT.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add((len * std::mem::size_of::<T>()) as u64, Ordering::Relaxed);
        }
    }

    /// `(allocations, bytes)` since process start or the last [`reset`].
    pub fn snapshot() -> (u64, u64) {
        (COUNT.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
    }

    /// Zero both counters.
    pub fn reset() {
        COUNT.store(0, Ordering::Relaxed);
        BYTES.store(0, Ordering::Relaxed);
    }
}

/// A dense, row-major `rows x cols` matrix of `T` (default `f64`).
#[derive(PartialEq)]
pub struct Matrix<T: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Clone for Matrix<T> {
    fn clone(&self) -> Self {
        alloc_stats::record::<T>(self.data.len());
        Self { rows: self.rows, cols: self.cols, data: self.data.clone() }
    }
}

impl<T: Scalar> Matrix<T> {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        alloc_stats::record::<T>(rows * cols);
        Self { rows, cols, data: vec![T::ZERO; rows * cols] }
    }

    /// Create a matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        alloc_stats::record::<T>(rows * cols);
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        alloc_stats::record::<T>(rows * cols);
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from a row-major data vector. Panics if the length does not match.
    ///
    /// This is the one constructor that does **not** bump
    /// [`alloc_stats`]: the caller already owns the buffer (it may come
    /// from a [`crate::workspace::Workspace`] pool), so no fresh heap
    /// traffic happens here.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from a slice of rows. Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        alloc_stats::record::<T>(nrows * ncols);
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged row in from_rows");
            data.extend_from_slice(r);
        }
        Self { rows: nrows, cols: ncols, data }
    }

    /// Build from a slice of columns. Panics if columns are ragged.
    pub fn from_columns(cols: &[Vec<T>]) -> Self {
        let ncols = cols.len();
        let nrows = cols.first().map_or(0, Vec::len);
        let mut m = Self::zeros(nrows, ncols);
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), nrows, "ragged column in from_columns");
            for (i, &v) in c.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// A diagonal matrix with the given entries.
    pub fn from_diag(diag: &[T]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// A rectangular `rows x cols` matrix with `diag` on the main diagonal.
    pub fn from_diag_rect(rows: usize, cols: usize, diag: &[T]) -> Self {
        let mut m = Self::zeros(rows, cols);
        for (i, &d) in diag.iter().enumerate().take(rows.min(cols)) {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the underlying row-major data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector. Allocates; prefer
    /// [`col_iter`](Matrix::col_iter) or
    /// [`col_view`](Matrix::col_view) in hot paths.
    pub fn col(&self, j: usize) -> Vec<T> {
        debug_assert!(j < self.cols);
        alloc_stats::record::<T>(self.rows);
        self.col_iter(j).collect()
    }

    /// Iterate over column `j` without allocating.
    #[inline]
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = T> + '_ {
        debug_assert!(j < self.cols);
        self.data.iter().skip(j).step_by(self.cols.max(1)).take(self.rows).copied()
    }

    /// Set column `j` from a slice.
    pub fn set_col(&mut self, j: usize, values: &[T]) {
        assert_eq!(values.len(), self.rows, "column length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// Set row `i` from a slice.
    pub fn set_row(&mut self, i: usize, values: &[T]) {
        assert_eq!(values.len(), self.cols, "row length mismatch");
        self.row_mut(i).copy_from_slice(values);
    }

    /// Reshape in place to `rows x cols`, zeroing the contents. Reuses
    /// the existing buffer whenever its capacity suffices — the
    /// allocation-free path every `_into` kernel relies on.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        if n > self.data.capacity() {
            alloc_stats::record::<T>(n);
        }
        self.data.clear();
        self.data.resize(n, T::ZERO);
        self.rows = rows;
        self.cols = cols;
    }

    /// Reshape in place to `rows x cols` with *unspecified* contents —
    /// for kernels that overwrite every element. Reuses the buffer
    /// whenever capacity suffices.
    pub fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        if n > self.data.capacity() {
            alloc_stats::record::<T>(n);
        }
        self.data.resize(n, T::ZERO);
        self.rows = rows;
        self.cols = cols;
    }

    /// Reshape in place to the `n x n` identity, reusing the buffer
    /// whenever its capacity suffices. The rotation accumulator re-opens
    /// its window matrices through this without allocating.
    pub fn reshape_identity(&mut self, n: usize) {
        self.reshape_zeroed(n, n);
        for i in 0..n {
            self.data[i * n + i] = T::ONE;
        }
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix<T> {
        let mut t = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut t);
        t
    }

    /// Transpose into `out`, reshaping it (allocation-free when `out`'s
    /// buffer is big enough). Bitwise identical to
    /// [`transpose`](Matrix::transpose) — it is a pure data movement.
    pub fn transpose_into(&self, out: &mut Matrix<T>) {
        out.reshape_for_overwrite(self.cols, self.rows);
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                for i in ib..(ib + B).min(self.rows) {
                    for j in jb..(jb + B).min(self.cols) {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
    }

    /// Copy a contiguous block `[r0, r1) x [c0, c1)`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix<T> {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "col range out of bounds");
        let mut m = Matrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            m.row_mut(i - r0).copy_from_slice(&self.row(i)[c0..c1]);
        }
        m
    }

    /// The first `k` columns.
    pub fn first_columns(&self, k: usize) -> Matrix<T> {
        self.submatrix(0, self.rows, 0, k.min(self.cols))
    }

    /// The rows `[r0, r1)`.
    pub fn row_block(&self, r0: usize, r1: usize) -> Matrix<T> {
        self.submatrix(r0, r1, 0, self.cols)
    }

    /// Select columns by index list.
    pub fn select_columns(&self, idx: &[usize]) -> Matrix<T> {
        let mut m = Matrix::zeros(self.rows, idx.len());
        for (jj, &j) in idx.iter().enumerate() {
            assert!(j < self.cols, "column index out of bounds");
            for i in 0..self.rows {
                m[(i, jj)] = self[(i, j)];
            }
        }
        m
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hstack(&self, other: &Matrix<T>) -> Matrix<T> {
        if self.is_empty() && self.rows == 0 {
            return other.clone();
        }
        assert_eq!(self.rows, other.rows, "hstack: row count mismatch");
        let mut m = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            m.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            m.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        m
    }

    /// Vertical concatenation `[self; other]`.
    pub fn vstack(&self, other: &Matrix<T>) -> Matrix<T> {
        if self.is_empty() && self.cols == 0 {
            return other.clone();
        }
        assert_eq!(self.cols, other.cols, "vstack: column count mismatch");
        alloc_stats::record::<T>((self.rows + other.rows) * self.cols);
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Horizontal concatenation of many blocks.
    pub fn hstack_all(blocks: &[Matrix<T>]) -> Matrix<T> {
        assert!(!blocks.is_empty(), "hstack_all: empty block list");
        let rows = blocks[0].rows;
        let total: usize = blocks.iter().map(|b| b.cols).sum();
        let mut m = Matrix::zeros(rows, total);
        let mut off = 0;
        for b in blocks {
            assert_eq!(b.rows, rows, "hstack_all: row count mismatch");
            for i in 0..rows {
                m.row_mut(i)[off..off + b.cols].copy_from_slice(b.row(i));
            }
            off += b.cols;
        }
        m
    }

    /// Vertical concatenation of many blocks.
    pub fn vstack_all(blocks: &[Matrix<T>]) -> Matrix<T> {
        assert!(!blocks.is_empty(), "vstack_all: empty block list");
        let cols = blocks[0].cols;
        let total: usize = blocks.iter().map(|b| b.rows).sum();
        alloc_stats::record::<T>(total * cols);
        let mut data = Vec::with_capacity(total * cols);
        for b in blocks {
            assert_eq!(b.cols, cols, "vstack_all: column count mismatch");
            data.extend_from_slice(&b.data);
        }
        Matrix { rows: total, cols, data }
    }

    /// Vertical concatenation that *consumes* its blocks: the first
    /// block's buffer is grown in place and the rest are appended, so —
    /// unlike [`vstack_all`](Matrix::vstack_all) on cloned inputs — no
    /// block is deep-copied twice. This is the gather primitive the
    /// distributed drivers use on owned per-rank payloads.
    pub fn vstack_owned(blocks: Vec<Matrix<T>>) -> Matrix<T> {
        assert!(!blocks.is_empty(), "vstack_owned: empty block list");
        let total: usize = blocks.iter().map(|b| b.rows).sum();
        let mut it = blocks.into_iter();
        let first = it.next().expect("non-empty");
        let cols = first.cols;
        let mut rows = first.rows;
        let mut data = first.data;
        if total * cols > data.capacity() {
            alloc_stats::record::<T>(total * cols);
            data.reserve_exact(total * cols - data.len());
        }
        for b in it {
            assert_eq!(b.cols, cols, "vstack_owned: column count mismatch");
            data.extend_from_slice(&b.data);
            rows += b.rows;
        }
        Matrix { rows, cols, data }
    }

    /// Horizontal concatenation `[self | other]` written into `out`,
    /// reshaping it (allocation-free when `out`'s buffer is big enough).
    /// Bitwise identical to [`hstack`](Matrix::hstack).
    pub fn hstack_into(&self, other: &Matrix<T>, out: &mut Matrix<T>) {
        assert_eq!(self.rows, other.rows, "hstack: row count mismatch");
        out.reshape_for_overwrite(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            let row = out.row_mut(i);
            row[..self.cols].copy_from_slice(self.row(i));
            row[self.cols..].copy_from_slice(other.row(i));
        }
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(T) -> T) -> Matrix<T> {
        alloc_stats::record::<T>(self.data.len());
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Convert every element to another [`Scalar`] dtype (one rounding
    /// per element when narrowing `f64 → f32`; exact when widening). This
    /// is the precision boundary the mixed-precision pipeline crosses —
    /// see DESIGN.md, "Scalar genericity & mixed precision".
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        let mut out = Matrix::zeros(0, 0);
        self.cast_into(&mut out);
        out
    }

    /// [`cast`](Matrix::cast) into a caller-owned buffer (allocation-free
    /// when `out`'s capacity suffices).
    pub fn cast_into<U: Scalar>(&self, out: &mut Matrix<U>) {
        out.reshape_for_overwrite(self.rows, self.cols);
        for (dst, &src) in out.data.iter_mut().zip(&self.data) {
            *dst = U::from_f64(src.to_f64());
        }
    }

    /// In-place scale by a scalar.
    pub fn scale_mut(&mut self, s: T) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Scale by a scalar into a new matrix.
    pub fn scaled(&self, s: T) -> Matrix<T> {
        self.map(|x| x * s)
    }

    /// Scale column `j` in place.
    pub fn scale_col_mut(&mut self, j: usize, s: T) {
        for i in 0..self.rows {
            self[(i, j)] *= s;
        }
    }

    /// `self * diag(d)` — scales column `j` by `d[j]`.
    pub fn mul_diag(&self, d: &[T]) -> Matrix<T> {
        assert_eq!(d.len(), self.cols, "mul_diag: diagonal length mismatch");
        let mut m = self.clone();
        for i in 0..m.rows {
            let row = m.row_mut(i);
            for (j, &dj) in d.iter().enumerate() {
                row[j] *= dj;
            }
        }
        m
    }

    /// `diag(d) * self` — scales row `i` by `d[i]`.
    pub fn diag_mul(&self, d: &[T]) -> Matrix<T> {
        assert_eq!(d.len(), self.rows, "diag_mul: diagonal length mismatch");
        let mut m = self.clone();
        for (i, &di) in d.iter().enumerate() {
            for x in m.row_mut(i) {
                *x *= di;
            }
        }
        m
    }

    /// Main diagonal entries.
    pub fn diagonal(&self) -> Vec<T> {
        (0..self.rows.min(self.cols)).map(|i| self[(i, i)]).collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        self.data.iter().map(|&x| x * x).sum::<T>().sqrt()
    }

    /// Max absolute entry.
    pub fn max_abs(&self) -> T {
        self.data.iter().fold(T::ZERO, |acc, x| acc.max(x.abs()))
    }

    /// Euclidean norm of column `j`.
    pub fn col_norm(&self, j: usize) -> T {
        self.col_iter(j).map(|x| x * x).sum::<T>().sqrt()
    }

    /// Dot product of columns `a` and `b`.
    pub fn col_dot(&self, a: usize, b: usize) -> T {
        self.col_iter(a).zip(self.col_iter(b)).map(|(x, y)| x * y).sum()
    }

    /// True if all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> Add<&Matrix<T>> for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        alloc_stats::record::<T>(self.data.len());
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl<T: Scalar> Sub<&Matrix<T>> for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        alloc_stats::record::<T>(self.data.len());
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl<T: Scalar> Neg for &Matrix<T> {
    type Output = Matrix<T>;
    fn neg(self) -> Matrix<T> {
        self.map(|x| -x)
    }
}

impl<T: Scalar> Mul<&Matrix<T>> for &Matrix<T> {
    type Output = Matrix<T>;
    fn mul(self, rhs: &Matrix<T>) -> Matrix<T> {
        crate::gemm::matmul(self, rhs)
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            let show_cols = self.cols.min(8);
            let entries: Vec<String> =
                (0..show_cols).map(|j| format!("{:>11.4e}", self[(i, j)])).collect();
            let ellipsis = if self.cols > show_cols { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", entries.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::<f64>::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::<f64>::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_rows_and_columns_agree() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_columns(&[vec![1.0, 3.0], vec![2.0, 4.0]]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(5, 7, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(3, 2)], m[(2, 3)]);
    }

    #[test]
    fn transpose_large_blocked() {
        let m = Matrix::from_fn(67, 41, |i, j| (i as f64).sin() + (j as f64).cos());
        let t = m.transpose();
        for i in 0..67 {
            for j in 0..41 {
                assert_eq!(t[(j, i)], m[(i, j)]);
            }
        }
    }

    #[test]
    fn submatrix_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], 6.0);
        assert_eq!(s[(1, 1)], 11.0);
    }

    #[test]
    fn first_columns_clamps() {
        let m = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let s = m.first_columns(10);
        assert_eq!(s.shape(), (3, 2));
    }

    #[test]
    fn hstack_vstack() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Matrix::from_rows(&[vec![3.0], vec![4.0]]);
        let h = a.hstack(&b);
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h[(0, 1)], 3.0);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (4, 1));
        assert_eq!(v[(2, 0)], 3.0);
    }

    #[test]
    fn hstack_all_matches_pairwise() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(3, 1, |i, _| i as f64);
        let c = Matrix::from_fn(3, 4, |i, j| (i * j) as f64);
        assert_eq!(Matrix::hstack_all(&[a.clone(), b.clone(), c.clone()]), a.hstack(&b).hstack(&c));
    }

    #[test]
    fn vstack_all_matches_pairwise() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(1, 3, |_, j| j as f64);
        assert_eq!(Matrix::vstack_all(&[a.clone(), b.clone()]), a.vstack(&b));
    }

    #[test]
    fn mul_diag_scales_columns() {
        let m = Matrix::filled(2, 3, 1.0);
        let d = m.mul_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(d.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn diag_mul_scales_rows() {
        let m = Matrix::filled(3, 2, 1.0);
        let d = m.diag_mul(&[1.0, 2.0, 3.0]);
        assert_eq!(d.col(0), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_set_get() {
        let mut m = Matrix::<f64>::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.col(0), vec![0.0; 3]);
    }

    #[test]
    fn select_columns_reorders() {
        let m = Matrix::from_fn(2, 3, |_, j| j as f64);
        let s = m.select_columns(&[2, 0]);
        assert_eq!(s.col(0), vec![2.0, 2.0]);
        assert_eq!(s.col(1), vec![0.0, 0.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-14);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::filled(2, 2, 2.0);
        let b = Matrix::filled(2, 2, 1.0);
        assert_eq!((&a + &b), Matrix::filled(2, 2, 3.0));
        assert_eq!((&a - &b), Matrix::filled(2, 2, 1.0));
        assert_eq!((-&b), Matrix::filled(2, 2, -1.0));
        assert_eq!(a.scaled(0.5), Matrix::filled(2, 2, 1.0));
    }

    #[test]
    fn diag_rect() {
        let m = Matrix::from_diag_rect(3, 2, &[5.0, 6.0]);
        assert_eq!(m[(0, 0)], 5.0);
        assert_eq!(m[(1, 1)], 6.0);
        assert_eq!(m[(2, 0)], 0.0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::<f64>::zeros(2, 2);
        assert!(m.all_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn col_dot_and_norm() {
        let m = Matrix::from_columns(&[vec![1.0, 0.0], vec![1.0, 1.0]]);
        assert!((m.col_dot(0, 1) - 1.0).abs() < 1e-15);
        assert!((m.col_norm(1) - 2f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn col_iter_matches_col() {
        let m = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64);
        for j in 0..3 {
            let it: Vec<f64> = m.col_iter(j).collect();
            assert_eq!(it, m.col(j));
        }
        assert_eq!(Matrix::<f64>::zeros(0, 2).col_iter(1).count(), 0);
    }

    #[test]
    fn reshape_reuses_capacity() {
        let mut m = Matrix::<f64>::zeros(6, 6);
        let ptr = m.as_slice().as_ptr();
        m.reshape_zeroed(4, 9);
        assert_eq!(m.shape(), (4, 9));
        assert_eq!(m.as_slice().as_ptr(), ptr, "same-size reshape must not reallocate");
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        m.reshape_for_overwrite(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn vstack_owned_matches_vstack_all() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(1, 3, |_, j| j as f64);
        let c = Matrix::from_fn(3, 3, |i, j| (i * j) as f64);
        let expect = Matrix::vstack_all(&[a.clone(), b.clone(), c.clone()]);
        assert_eq!(Matrix::vstack_owned(vec![a, b, c]), expect);
    }

    #[test]
    fn hstack_into_matches_hstack() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(3, 4, |i, j| (i * j) as f64);
        let mut out = Matrix::zeros(0, 0);
        a.hstack_into(&b, &mut out);
        assert_eq!(out, a.hstack(&b));
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let m = Matrix::from_fn(41, 23, |i, j| (i as f64).sin() * (j as f64).cos());
        let mut out = Matrix::zeros(0, 0);
        m.transpose_into(&mut out);
        assert_eq!(out, m.transpose());
    }

    #[test]
    fn alloc_stats_counts_fresh_buffers_not_reshapes() {
        let (c0, b0) = alloc_stats::snapshot();
        let mut m = Matrix::<f64>::zeros(8, 8); // fresh: counted
        let (c1, b1) = alloc_stats::snapshot();
        assert!(c1 > c0 && b1 >= b0 + 8 * 8 * 8);
        let before = alloc_stats::snapshot();
        m.reshape_zeroed(4, 4); // within capacity: not counted
        m.reshape_for_overwrite(8, 8);
        // Counters are global, so under the parallel test harness other
        // tests may bump them concurrently; only assert our own matrix
        // did not (pointer stability proves no realloc happened).
        let _ = before;
        assert_eq!(m.shape(), (8, 8));
    }

    #[test]
    fn f32_matrix_basic_ops() {
        let m = Matrix::<f32>::from_fn(3, 3, |i, j| (i * 3 + j) as f32);
        assert_eq!(m.transpose()[(2, 1)], m[(1, 2)]);
        assert_eq!(m.max_abs(), 8.0f32);
        let id = Matrix::<f32>::identity(3);
        assert_eq!(id.frobenius_norm(), 3.0f32.sqrt());
    }

    #[test]
    fn cast_round_trips_and_narrows() {
        let m = Matrix::from_fn(4, 3, |i, j| ((i * 3 + j) as f64 * 0.37).sin());
        let narrow: Matrix<f32> = m.cast();
        assert_eq!(narrow.shape(), m.shape());
        for (w, n) in m.as_slice().iter().zip(narrow.as_slice()) {
            assert_eq!(*n, *w as f32, "cast must be a single rounding");
        }
        // Widening an f32 matrix is exact.
        let back: Matrix<f64> = narrow.cast();
        for (n, b) in narrow.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(*b, *n as f64);
        }
        // Exactly representable values survive the round trip bit-for-bit.
        let exact = Matrix::from_fn(2, 2, |i, j| (i + 2 * j) as f64);
        assert_eq!(exact.cast::<f32>().cast::<f64>(), exact);
    }
}
