//! Norms and orthogonality diagnostics.

use crate::gemm::{gram, matvec, matvec_t};
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// `‖QᵀQ − I‖_max`: how far the columns of `q` are from orthonormal.
pub fn orthogonality_error<T: Scalar>(q: &Matrix<T>) -> f64 {
    // gram computes only the upper triangle and mirrors it — half the
    // flops of the general matmul_tn(q, q) this used to call.
    let g = gram(q);
    let mut err: f64 = 0.0;
    for i in 0..g.rows() {
        for j in 0..g.cols() {
            let target = if i == j { T::ONE } else { T::ZERO };
            err = err.max((g[(i, j)] - target).abs().to_f64());
        }
    }
    err
}

/// Power-iteration estimate of the spectral norm `‖A‖_2`.
///
/// Deterministic start vector (all ones, normalized); `iters` rounds of
/// `x ← AᵀA x` normalization. Good to a few digits for diagnostics.
pub fn spectral_norm_estimate<T: Scalar>(a: &Matrix<T>, iters: usize) -> f64 {
    if a.rows() == 0 || a.cols() == 0 {
        return 0.0;
    }
    let n = a.cols();
    let mut x = vec![T::from_f64(1.0 / (n as f64).sqrt()); n];
    let mut sigma = T::ZERO;
    for _ in 0..iters {
        let y = matvec(a, &x);
        let z = matvec_t(a, &y);
        let norm = z.iter().map(|v| *v * *v).sum::<T>().sqrt();
        if norm == T::ZERO {
            return 0.0;
        }
        for (xi, zi) in x.iter_mut().zip(&z) {
            *xi = *zi / norm;
        }
        sigma = norm.sqrt();
    }
    sigma.to_f64()
}

/// Relative Frobenius distance `‖A − B‖_F / max(1, ‖A‖_F)`.
pub fn relative_error<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> f64 {
    (a - b).frobenius_norm().to_f64() / a.frobenius_norm().to_f64().max(1.0)
}

/// Euclidean norm of a vector.
pub fn vec_norm<T: Scalar>(v: &[T]) -> T {
    v.iter().map(|x| *x * *x).sum::<T>().sqrt()
}

/// Dot product of two equal-length vectors.
pub fn vec_dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| *x * *y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::thin_qr;

    #[test]
    fn orthogonality_of_identity() {
        assert_eq!(orthogonality_error(&Matrix::<f64>::identity(5)), 0.0);
    }

    #[test]
    fn orthogonality_detects_skew() {
        let m = Matrix::from_columns(&[vec![1.0, 0.0], vec![1.0, 1.0]]);
        assert!(orthogonality_error(&m) > 0.5);
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let a = Matrix::from_diag(&[3.0, 1.0, 0.5]);
        let est = spectral_norm_estimate(&a, 50);
        assert!((est - 3.0).abs() < 1e-8, "estimate {est}");
    }

    #[test]
    fn spectral_norm_orthogonal_is_one() {
        let a = Matrix::from_fn(30, 5, |i, j| ((i + 2 * j) as f64).sin());
        let q = thin_qr(&a).q;
        let est = spectral_norm_estimate(&q, 50);
        assert!((est - 1.0).abs() < 1e-6, "estimate {est}");
    }

    #[test]
    fn spectral_norm_zero_matrix() {
        assert_eq!(spectral_norm_estimate(&Matrix::<f64>::zeros(4, 3), 10), 0.0);
    }

    #[test]
    fn relative_error_zero_for_equal() {
        let a = Matrix::filled(3, 3, 2.0);
        assert_eq!(relative_error(&a, &a), 0.0);
    }

    #[test]
    fn vec_helpers() {
        assert!((vec_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert!((vec_dot(&[1.0, 2.0], &[3.0, 4.0]) - 11.0).abs() < 1e-15);
    }
}
