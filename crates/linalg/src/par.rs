//! Worker-pool threading substrate for the dense kernels.
//!
//! A small persistent pool of `std::thread` workers fed over crossbeam
//! channels. The pool is process-global and lazily grown; kernels submit a
//! *data-parallel region* (a closure run once per participating thread) and
//! the calling thread always participates as thread 0, so a pool of `T`
//! effective threads uses `T - 1` workers.
//!
//! ## Thread-count policy
//!
//! Effective thread count resolves in priority order:
//!
//! 1. [`set_num_threads`] (programmatic, wins over everything);
//! 2. the `PSVD_NUM_THREADS` environment variable, read once per process;
//! 3. `available_parallelism() / comm_ranks()` — when the in-process
//!    "MPI" world of `psvd-comm` is running SPMD rank threads, each rank
//!    gets an equal share of the machine so GEMM workers and rank threads
//!    do not oversubscribe (`psvd_comm::World::run` registers its size via
//!    [`set_comm_ranks`]).
//!
//! ## Determinism
//!
//! The pool only ever partitions *output elements* across threads; no
//! kernel in this crate splits a reduction (K) dimension. Each output
//! element is therefore produced by exactly one thread executing exactly
//! the serial instruction sequence, which makes every kernel built on this
//! module bitwise identical for any thread count, including 1.
//!
//! ## Nesting
//!
//! Regions do not nest: a worker thread that reaches another parallel
//! region runs it inline (serially), as does any thread that finds the
//! pool busy. This keeps the pool deadlock-free when several `ThreadComm`
//! ranks issue GEMMs concurrently, at the cost of serializing the losers —
//! which is the right trade: the machine is already saturated.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use crossbeam::channel::{unbounded, Sender};

/// Explicit thread-count override: 0 = unset (fall through to env/auto).
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Number of in-process communicator ranks currently running (>= 1).
static COMM_RANKS: AtomicUsize = AtomicUsize::new(1);

/// `PSVD_NUM_THREADS`, parsed once per process. `None` when unset/invalid.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PSVD_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n| n > 0)
    })
}

/// Logical CPUs visible to this process.
fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Set the kernel thread count programmatically (`0` reverts to automatic
/// selection). Takes precedence over `PSVD_NUM_THREADS`.
pub fn set_num_threads(n: usize) {
    CONFIGURED.store(n, Ordering::Relaxed);
}

/// Register how many communicator rank threads are live, so automatic
/// thread selection hands each rank an equal slice of the machine.
/// `psvd-comm`'s `World::run` calls this; `n = 1` restores the default.
pub fn set_comm_ranks(n: usize) {
    COMM_RANKS.store(n.max(1), Ordering::Relaxed);
}

/// Currently registered communicator rank count.
pub fn comm_ranks() -> usize {
    COMM_RANKS.load(Ordering::Relaxed).max(1)
}

/// The effective thread count a kernel launched right now would use.
pub fn num_threads() -> usize {
    let explicit = CONFIGURED.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    (hardware_threads() / comm_ranks()).max(1)
}

/// A parallel region: type-erased pointer to the per-thread closure, valid
/// strictly for the duration of one [`run`] call (the latch guarantees the
/// borrow outlives every worker's use).
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    tid: usize,
    latch: *const Latch,
}

// SAFETY: the closure is Sync and `run` blocks on the latch until every
// worker has dropped its use of both pointers.
unsafe impl Send for Job {}

/// Countdown latch with a panic flag.
struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        *left -= 1;
        if *left == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        while *left > 0 {
            left = self.all_done.wait(left).expect("latch poisoned");
        }
    }
}

thread_local! {
    /// True on pool worker threads (nested regions run inline there).
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The worker side: block for jobs forever.
fn worker_loop(rx: crossbeam::channel::Receiver<Job>) {
    IS_POOL_WORKER.with(|w| w.set(true));
    while let Ok(job) = rx.recv() {
        // SAFETY: `run` keeps both referents alive until the latch opens.
        let (task, latch) = unsafe { (&*job.task, &*job.latch) };
        if catch_unwind(AssertUnwindSafe(|| task(job.tid))).is_err() {
            latch.panicked.store(true, Ordering::Release);
        }
        latch.count_down();
    }
}

/// The persistent pool: sender handles to each live worker. Guarded by a
/// mutex because a dispatch owns the workers end to end; contenders run
/// their regions inline instead of queueing (see module docs).
struct Pool {
    workers: Vec<Sender<Job>>,
}

impl Pool {
    fn ensure_workers(&mut self, wanted: usize) {
        while self.workers.len() < wanted {
            let (tx, rx) = unbounded();
            let index = self.workers.len();
            std::thread::Builder::new()
                .name(format!("psvd-gemm-{index}"))
                .spawn(move || worker_loop(rx))
                .expect("spawn GEMM worker");
            self.workers.push(tx);
        }
    }
}

fn pool() -> &'static Mutex<Pool> {
    static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Pool { workers: Vec::new() }))
}

/// Execute `task(tid)` for `tid in 0..threads`, caller participating as
/// thread 0. Falls back to an inline serial sweep when `threads <= 1`,
/// when called from a pool worker (no nesting), or when another region
/// holds the pool. The *work partition must depend only on `threads` as
/// passed*, never on which of these paths executes — every kernel above
/// partitions output ranges, so results are identical either way.
pub(crate) fn run(threads: usize, task: &(dyn Fn(usize) + Sync)) {
    let inline = |n: usize| {
        for tid in 0..n {
            task(tid);
        }
    };
    if threads <= 1 || IS_POOL_WORKER.with(Cell::get) {
        inline(threads.max(1));
        return;
    }
    // Non-blocking acquire: a busy pool means some other kernel is mid-
    // flight; running inline is always correct (see determinism note).
    let Ok(mut guard) = pool().try_lock() else {
        inline(threads);
        return;
    };
    guard.ensure_workers(threads - 1);
    let latch = Latch::new(threads - 1);
    // Erase the borrow lifetimes; `latch.wait()` below upholds the
    // contract documented on `Job`.
    let task_ptr: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync), _>(task) };
    for (w, tx) in guard.workers.iter().take(threads - 1).enumerate() {
        tx.send(Job { task: task_ptr, tid: w + 1, latch: &latch }).expect("GEMM worker hung up");
    }
    // Caller is thread 0; catch panics so the latch is always awaited and
    // no worker can outlive the borrows.
    let own = catch_unwind(AssertUnwindSafe(|| task(0)));
    latch.wait();
    drop(guard);
    if own.is_err() || latch.panicked.load(Ordering::Acquire) {
        match own {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => panic!("parallel kernel worker panicked"),
        }
    }
}

/// Split `[0, items)` into one contiguous chunk per thread and run
/// `body(start, end)` on each in parallel. Chunks are sized by
/// `ceil(items / threads)` so the partition depends only on the inputs —
/// part of the bitwise-determinism contract. Runs serially (one chunk)
/// when `items < 2 * grain` or only one thread is effective.
pub fn parallel_for(items: usize, grain: usize, body: impl Fn(usize, usize) + Sync) {
    if items == 0 {
        return;
    }
    let threads = num_threads().min(items.div_ceil(grain.max(1))).max(1);
    if threads == 1 || items < 2 * grain.max(1) {
        body(0, items);
        return;
    }
    let chunk = items.div_ceil(threads);
    run(threads, &|tid: usize| {
        let start = tid * chunk;
        if start < items {
            body(start, (start + chunk).min(items));
        }
    });
}

/// Partition `strips` row strips into equal contiguous shares, one per
/// effective thread: returns `(used, per)` where thread `tid < used` owns
/// strips `[tid * per, (tid + 1) * per)`. The GEMM engines size their
/// strips from the *selected micro-kernel's* `mr` (tile heights follow
/// the kernel, not a fixed constant), so the partition — like the rest
/// of the determinism contract — depends only on (shape, kernel, thread
/// count), and threads always receive whole, `mr`-aligned strips.
pub fn strip_partition(strips: usize) -> (usize, usize) {
    let threads = num_threads().min(strips).max(1);
    let per = strips.div_ceil(threads);
    (strips.div_ceil(per.max(1)), per)
}

/// Shared-mutable pointer token for kernels whose threads write disjoint
/// index sets of one buffer. The *caller* is responsible for disjointness.
pub(crate) struct SendPtr<T>(pub *mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: see the type docs — every user partitions indices disjointly.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The raw pointer (add your own offset; stay inside your partition).
    #[inline]
    pub fn get(self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_executes_every_tid_once() {
        let hits = AtomicU64::new(0);
        run(4, &|tid| {
            hits.fetch_add(1 << (8 * tid), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0x01_01_01_01);
    }

    #[test]
    fn parallel_for_covers_range_exactly_once() {
        let n = 1003;
        let flags: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        set_num_threads(4);
        parallel_for(n, 1, |a, b| {
            for f in &flags[a..b] {
                f.fetch_add(1, Ordering::Relaxed);
            }
        });
        set_num_threads(0);
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_regions_run_inline() {
        let hits = AtomicUsize::new(0);
        run(3, &|_outer| {
            run(2, &|_inner| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(2, &|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn thread_count_resolution_order() {
        // comm-rank division only applies in the automatic regime.
        set_num_threads(6);
        set_comm_ranks(2);
        assert_eq!(num_threads(), 6);
        set_num_threads(0);
        // In auto mode the count is hardware/comm_ranks but never 0.
        assert!(num_threads() >= 1);
        set_comm_ranks(1);
    }
}
