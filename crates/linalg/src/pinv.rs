//! Pseudoinverse and least squares via the SVD.
//!
//! Section 2 of the paper motivates the SVD through exactly these
//! applications: `A⁺ = V Σ⁺ Uᵀ` (reciprocating the nonzero singular values)
//! and the minimum-norm least-squares solution `x = A⁺ b`. Both use the
//! thin SVD from this crate with a relative rank cutoff.

use crate::gemm::{matmul, matvec, matvec_t};
use crate::matrix::Matrix;
use crate::svd::{svd, Svd};

/// Default relative cutoff: singular values below `rcond * s_max` are
/// treated as zero (NumPy's `pinv` uses a similar machine-epsilon-scaled
/// default).
pub fn default_rcond(rows: usize, cols: usize) -> f64 {
    rows.max(cols) as f64 * f64::EPSILON
}

/// Moore–Penrose pseudoinverse with relative cutoff `rcond`.
pub fn pseudoinverse_with(a: &Matrix, rcond: f64) -> Matrix {
    let f = svd(a);
    pseudoinverse_from_svd(&f, rcond, a.shape())
}

/// Moore–Penrose pseudoinverse with the default cutoff.
pub fn pseudoinverse(a: &Matrix) -> Matrix {
    pseudoinverse_with(a, default_rcond(a.rows(), a.cols()))
}

fn pseudoinverse_from_svd(f: &Svd, rcond: f64, shape: (usize, usize)) -> Matrix {
    let (_m, _n) = shape;
    let smax = f.s.first().copied().unwrap_or(0.0);
    let cutoff = rcond * smax;
    let inv_s: Vec<f64> = f.s.iter().map(|&x| if x > cutoff { 1.0 / x } else { 0.0 }).collect();
    // A+ = V Σ⁺ Uᵀ = (Vᵀ)ᵀ diag(inv_s) Uᵀ.
    matmul(&f.vt.transpose().mul_diag(&inv_s), &f.u.transpose())
}

/// Minimum-norm least-squares solution of `A x ≈ b` and its residual norm.
pub struct LstsqSolution {
    /// The minimum-norm minimizer.
    pub x: Vec<f64>,
    /// `‖A x − b‖₂`.
    pub residual_norm: f64,
    /// Effective rank used (singular values above the cutoff).
    pub rank: usize,
}

/// Solve `min ‖A x − b‖₂` (minimum-norm solution for rank-deficient `A`).
pub fn lstsq(a: &Matrix, b: &[f64]) -> LstsqSolution {
    lstsq_with(a, b, default_rcond(a.rows(), a.cols()))
}

/// As [`lstsq`] with an explicit relative cutoff.
pub fn lstsq_with(a: &Matrix, b: &[f64], rcond: f64) -> LstsqSolution {
    assert_eq!(a.rows(), b.len(), "lstsq: rhs length must match rows");
    let f = svd(a);
    let smax = f.s.first().copied().unwrap_or(0.0);
    let cutoff = rcond * smax;
    // x = V Σ⁺ Uᵀ b, built vector-wise to avoid forming A⁺.
    let utb = matvec_t(&f.u, b);
    let mut rank = 0;
    let scaled: Vec<f64> =
        f.s.iter()
            .zip(&utb)
            .map(|(&s, &c)| {
                if s > cutoff {
                    rank += 1;
                    c / s
                } else {
                    0.0
                }
            })
            .collect();
    let x = matvec_t(&f.vt, &scaled);
    let ax = matvec(a, &x);
    let residual_norm = ax.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
    LstsqSolution { x, residual_norm, rank }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gaussian_matrix, matrix_with_spectrum, seeded_rng};

    fn penrose_conditions(a: &Matrix, p: &Matrix, tol: f64) {
        // The four Moore–Penrose conditions.
        let apa = matmul(&matmul(a, p), a);
        assert!((&apa - a).max_abs() < tol, "A A+ A = A violated");
        let pap = matmul(&matmul(p, a), p);
        assert!((&pap - p).max_abs() < tol, "A+ A A+ = A+ violated");
        let ap = matmul(a, p);
        assert!((&ap - &ap.transpose()).max_abs() < tol, "(A A+)ᵀ = A A+ violated");
        let pa = matmul(p, a);
        assert!((&pa - &pa.transpose()).max_abs() < tol, "(A+ A)ᵀ = A+ A violated");
    }

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let mut rng = seeded_rng(1);
        let a = gaussian_matrix(6, 6, &mut rng);
        let p = pseudoinverse(&a);
        let eye = matmul(&a, &p);
        assert!((&eye - &Matrix::identity(6)).max_abs() < 1e-9);
    }

    #[test]
    fn penrose_conditions_tall() {
        let mut rng = seeded_rng(2);
        let a = gaussian_matrix(15, 6, &mut rng);
        penrose_conditions(&a, &pseudoinverse(&a), 1e-9);
    }

    #[test]
    fn penrose_conditions_wide() {
        let mut rng = seeded_rng(3);
        let a = gaussian_matrix(5, 12, &mut rng);
        penrose_conditions(&a, &pseudoinverse(&a), 1e-9);
    }

    #[test]
    fn penrose_conditions_rank_deficient() {
        let mut rng = seeded_rng(4);
        let a = matrix_with_spectrum(12, 8, &[3.0, 1.0], &mut rng); // rank 2
        penrose_conditions(&a, &pseudoinverse(&a), 1e-9);
    }

    #[test]
    fn pinv_of_diag() {
        let a = Matrix::from_diag_rect(3, 2, &[2.0, 0.0]);
        let p = pseudoinverse(&a);
        assert_eq!(p.shape(), (2, 3));
        assert!((p[(0, 0)] - 0.5).abs() < 1e-14);
        assert!(p[(1, 1)].abs() < 1e-14, "zero singular value must not be reciprocated");
    }

    #[test]
    fn lstsq_overdetermined_matches_normal_equations() {
        let mut rng = seeded_rng(5);
        let a = gaussian_matrix(20, 4, &mut rng);
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).sin()).collect();
        let sol = lstsq(&a, &b);
        assert_eq!(sol.rank, 4);
        // Residual must be orthogonal to the column space: Aᵀ(Ax - b) = 0.
        let ax = matvec(&a, &sol.x);
        let r: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let atr = matvec_t(&a, &r);
        for v in atr {
            assert!(v.abs() < 1e-10, "normal equations violated: {v}");
        }
    }

    #[test]
    fn lstsq_exact_system() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![0.0, 0.0]]);
        let b = vec![3.0, 4.0, 0.0];
        let sol = lstsq(&a, &b);
        assert!((sol.x[0] - 3.0).abs() < 1e-12);
        assert!((sol.x[1] - 2.0).abs() < 1e-12);
        assert!(sol.residual_norm < 1e-12);
    }

    #[test]
    fn lstsq_minimum_norm_for_underdetermined() {
        // x + y = 2 has many solutions; minimum-norm is (1, 1).
        let a = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let sol = lstsq(&a, &[2.0]);
        assert!((sol.x[0] - 1.0).abs() < 1e-12);
        assert!((sol.x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_reports_rank() {
        let mut rng = seeded_rng(6);
        let a = matrix_with_spectrum(10, 5, &[4.0, 2.0, 1.0], &mut rng);
        let b = vec![1.0; 10];
        let sol = lstsq(&a, &b);
        assert_eq!(sol.rank, 3);
    }

    #[test]
    fn pinv_zero_matrix() {
        let p = pseudoinverse(&Matrix::zeros(4, 3));
        assert_eq!(p.shape(), (3, 4));
        assert_eq!(p.max_abs(), 0.0);
    }
}
