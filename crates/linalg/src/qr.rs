//! Householder QR decomposition.
//!
//! The thin QR (`A = Q R`, `Q ∈ R^{m×p}`, `R ∈ R^{p×n}`, `p = min(m, n)`) is
//! the backbone of both the Levy–Lindenbaum streaming update (step 1 of
//! Algorithm 1 in the paper) and the TSQR tall-skinny factorization used by
//! the parallel driver.
//!
//! Factors are canonicalized to a non-negative `R` diagonal, which makes the
//! decomposition unique for full-rank input. The paper's Listing 4 flips the
//! sign of `qglobal`/`rfinal` ("trick for consistency"); canonicalization is
//! the principled version of that trick and is what keeps local and global
//! TSQR stages consistent across ranks.

use crate::gemm::{gram_into, matmul};
use crate::matrix::Matrix;
use crate::par;
use crate::scalar::Scalar;
use crate::view::MatView;
use crate::workspace::Workspace;
use crate::wy;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Below this many flops (`4 · v.len() · columns`) a reflector sweep runs
/// on the calling thread: the p×p root factorization of TSQR and the short
/// panel columns of the blocked path would otherwise spend more time in
/// thread-pool handoff than in arithmetic. The serial path executes the
/// identical per-column instruction sequence, so the cutoff never changes
/// bits — only where they are computed.
const REFLECTOR_PAR_MIN_FLOPS: usize = 1 << 15;

/// Apply `H = I - 2 v vᵀ / vnorm2` to rows `[k, k + v.len())` of columns
/// `[j0, j1)` of the row-major buffer `data` (row stride `ld`).
///
/// Columns are independent, so the sweep is partitioned across the kernel
/// thread pool; each column's dot/update runs the exact serial instruction
/// sequence, keeping the factorization bitwise identical at any thread
/// count. Small sweeps (see [`REFLECTOR_PAR_MIN_FLOPS`]) skip the pool
/// entirely.
pub(crate) fn apply_reflector<T: Scalar>(
    data: &mut [T],
    ld: usize,
    k: usize,
    j0: usize,
    j1: usize,
    v: &[T],
    vnorm2: T,
) {
    let cols = j1 - j0;
    let two = T::from_f64(2.0);
    let ptr = par::SendPtr(data.as_mut_ptr());
    let body = |c0: usize, c1: usize| {
        for j in j0 + c0..j0 + c1 {
            let mut dot = T::ZERO;
            for (idx, vi) in v.iter().enumerate() {
                // SAFETY: each column j belongs to exactly one chunk.
                dot += *vi * unsafe { *ptr.get().add((k + idx) * ld + j) };
            }
            let s = two * dot / vnorm2;
            for (idx, vi) in v.iter().enumerate() {
                // SAFETY: as above; writes stay within this chunk's columns.
                unsafe { *ptr.get().add((k + idx) * ld + j) -= s * *vi };
            }
        }
    };
    if 4 * v.len() * cols < REFLECTOR_PAR_MIN_FLOPS {
        body(0, cols);
    } else {
        par::parallel_for(cols, 16, body);
    }
}

/// Apply `H = I - 2 w wᵀ / wnorm2` from the right to rows `[r0, r1)` of
/// the row-major buffer `data` (row stride `ld`), acting on the column
/// window `[c0, c0 + w.len())`. Rows are independent, so the sweep is
/// partitioned across rows — each row touches a contiguous slice, and the
/// per-row op sequence is fixed, keeping results bitwise identical at any
/// thread count. Used by the Golub–Kahan bidiagonalization's right
/// reflectors.
pub(crate) fn apply_reflector_right<T: Scalar>(
    data: &mut [T],
    ld: usize,
    r0: usize,
    r1: usize,
    c0: usize,
    w: &[T],
    wnorm2: T,
) {
    let rows = r1 - r0;
    let two = T::from_f64(2.0);
    let ptr = par::SendPtr(data.as_mut_ptr());
    let body = |i0: usize, i1: usize| {
        for i in r0 + i0..r0 + i1 {
            // SAFETY: each row i belongs to exactly one chunk; the window
            // [i*ld + c0, i*ld + c0 + w.len()) stays within that row.
            let row =
                unsafe { std::slice::from_raw_parts_mut(ptr.get().add(i * ld + c0), w.len()) };
            let mut dot = T::ZERO;
            for (wi, ri) in w.iter().zip(row.iter()) {
                dot += *wi * *ri;
            }
            let s = two * dot / wnorm2;
            for (wi, ri) in w.iter().zip(row.iter_mut()) {
                *ri -= s * *wi;
            }
        }
    };
    if 4 * w.len() * rows < REFLECTOR_PAR_MIN_FLOPS {
        body(0, rows);
    } else {
        par::parallel_for(rows, 16, body);
    }
}

/// Process-wide programmatic override of the QR/bidiagonalization panel
/// width (`0` = resolve from the `PSVD_QR_BLOCK` env var, then the shape
/// heuristic). Takes precedence over the environment so tests and benches
/// can switch block sizes without re-execing.
static QR_BLOCK: AtomicUsize = AtomicUsize::new(0);

/// Set the compact-WY panel width for all subsequent factorizations.
/// `nb = 1` forces the unblocked reference path; `0` restores automatic
/// resolution (env var, then shape heuristic). The effective width is
/// always clamped to `min(m, n)` per call.
///
/// Note that unlike the thread count, the panel width changes the
/// floating-point result (within contract tolerances): callers comparing
/// runs bitwise must pin `nb`.
pub fn set_qr_block(nb: usize) {
    QR_BLOCK.store(nb, Ordering::Relaxed);
}

/// `PSVD_QR_BLOCK`, read once per process (consistent with how the kernel
/// thread count is resolved in [`crate::par`]).
fn env_qr_block() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PSVD_QR_BLOCK").ok().and_then(|s| s.trim().parse().ok()).filter(|&n| n > 0)
    })
}

/// Shape-based default panel width. Small factorizations stay on the
/// unblocked path (panel assembly + T recurrence overhead beats the GEMM
/// gain below ~48 columns); medium and large ones use panels sized so the
/// `(Y, T)` pair stays cache-resident while the trailing GEMM runs at full
/// packed-kernel throughput. A pure function of shape, so the dispatch
/// decision — like everything downstream of it — is independent of the
/// thread count.
fn auto_qr_block(p: usize) -> usize {
    if p < 48 {
        1
    } else if p < 128 {
        16
    } else {
        32
    }
}

/// The panel width an `m x n` factorization will actually use, after the
/// programmatic override, `PSVD_QR_BLOCK`, the shape heuristic, and the
/// `min(m, n)` clamp. Exposed so benches and tests can report / pin it.
pub fn qr_block(m: usize, n: usize) -> usize {
    let p = m.min(n).max(1);
    let cfg = QR_BLOCK.load(Ordering::Relaxed);
    let nb = if cfg > 0 { cfg } else { env_qr_block().unwrap_or_else(|| auto_qr_block(p)) };
    nb.min(p)
}

/// The result of a QR factorization: `a = q * r`.
#[derive(Clone, Debug)]
pub struct QrFactors<T: Scalar = f64> {
    /// Orthonormal factor, `m x p` with `p = min(m, n)`.
    pub q: Matrix<T>,
    /// Upper-triangular (trapezoidal if `m < n`) factor, `p x n`.
    pub r: Matrix<T>,
}

/// Thin Householder QR with canonical (non-negative) `R` diagonal.
pub fn thin_qr<T: Scalar>(a: &Matrix<T>) -> QrFactors<T> {
    let mut ws = Workspace::new();
    let mut q = Matrix::zeros(0, 0);
    let mut r = Matrix::zeros(0, 0);
    qr_thin_into(a.view(), &mut q, &mut r, &mut ws);
    QrFactors { q, r }
}

/// Thin Householder QR of a view with canonical (non-negative) `R`
/// diagonal, writing the factors into `q` / `r` and drawing every
/// temporary from `ws`. With warm buffers the call performs zero heap
/// allocation. Bitwise identical to [`thin_qr`].
pub fn qr_thin_into<T: Scalar>(
    a: MatView<'_, T>,
    q: &mut Matrix<T>,
    r: &mut Matrix<T>,
    ws: &mut Workspace,
) {
    let (m, n) = a.shape();
    let nb = qr_block(m, n);
    if nb <= 1 {
        householder_into(a, q, r, ws);
    } else {
        householder_blocked_into(a, q, r, nb, ws);
    }
    canonicalize_qr(q, r);
}

/// Thin Householder QR without sign canonicalization.
pub fn householder_qr<T: Scalar>(a: &Matrix<T>) -> QrFactors<T> {
    let mut ws = Workspace::new();
    let mut q = Matrix::zeros(0, 0);
    let mut r = Matrix::zeros(0, 0);
    householder_into(a.view(), &mut q, &mut r, &mut ws);
    QrFactors { q, r }
}

/// The factorization core: identical arithmetic (hence identical bits) to
/// the historical allocating implementation, but every temporary — the
/// working copy of `A`, the Householder vectors, and their stored norms —
/// comes from `ws`, and the factors land in caller-owned buffers.
fn householder_into<T: Scalar>(
    a: MatView<'_, T>,
    q: &mut Matrix<T>,
    r_out: &mut Matrix<T>,
    ws: &mut Workspace,
) {
    let (m, n) = a.shape();
    let p = m.min(n);
    let mut work = ws.take(m, n);
    for i in 0..m {
        let row = work.row_mut(i);
        if a.cs == 1 {
            row.copy_from_slice(&a.data[i * a.rs..i * a.rs + n]);
        } else {
            for (j, x) in row.iter_mut().enumerate() {
                *x = a.at(i, j);
            }
        }
    }
    // Householder vectors: row k of `vs` holds v_k in its first m - k
    // entries; `vn` holds each ‖v_k‖² (0.0 marks an identity reflector).
    let mut vs = ws.take(p, m);
    let mut vn = ws.take(1, p);

    for k in 0..p {
        // Build the reflector annihilating R[k+1.., k].
        let vlen = m - k;
        {
            let vrow = &mut vs.row_mut(k)[..vlen];
            for (idx, vv) in vrow.iter_mut().enumerate() {
                *vv = work[(k + idx, k)];
            }
        }
        let alpha = {
            let v = &vs.row(k)[..vlen];
            let norm = v.iter().map(|x| *x * *x).sum::<T>().sqrt();
            if v[0] >= T::ZERO {
                -norm
            } else {
                norm
            }
        };
        if alpha == T::ZERO {
            // Column already zero below (and at) the diagonal: identity reflector.
            continue;
        }
        vs[(k, 0)] -= alpha;
        let vnorm2: T = vs.row(k)[..vlen].iter().map(|x| *x * *x).sum();
        if vnorm2 == T::ZERO {
            continue;
        }
        vn[(0, k)] = vnorm2;
        // Apply H = I - 2 v vᵀ / (vᵀv) to R[k.., k..], columns in parallel.
        apply_reflector(work.as_mut_slice(), n, k, k, n, &vs.row(k)[..vlen], vnorm2);
        // Clean the annihilated entries exactly.
        work[(k, k)] = alpha;
        for i in k + 1..m {
            work[(i, k)] = T::ZERO;
        }
    }

    // Form thin Q by applying the reflectors (in reverse) to the first p
    // columns of the identity.
    q.reshape_zeroed(m, p);
    for i in 0..p {
        q[(i, i)] = T::ONE;
    }
    for k in (0..p).rev() {
        let vnorm2 = vn[(0, k)];
        if vnorm2 == T::ZERO {
            continue;
        }
        apply_reflector(q.as_mut_slice(), p, k, 0, p, &vs.row(k)[..m - k], vnorm2);
    }

    r_out.reshape_for_overwrite(p, n);
    for i in 0..p {
        r_out.row_mut(i).copy_from_slice(work.row(i));
    }
    ws.give(work);
    ws.give(vs);
    ws.give(vn);
}

/// The blocked compact-WY factorization core: panels of `nb` columns are
/// reduced with the scalar reflector kernel (level 2, but only `nb`
/// columns wide), then the panel's reflectors are accumulated into
/// `(Y, T)` form and the entire trailing matrix is updated with
/// `C ← (I − Y Tᵀ Yᵀ) C` — two packed-GEMM calls instead of `nb`
/// full-width rank-1 sweeps. Thin Q forms the same way in reverse panel
/// order via [`wy::accumulate_reverse`].
///
/// Reflector construction is column-for-column identical to
/// [`householder_into`]; only the order in which trailing columns absorb
/// the reflectors differs, so the factors agree with the unblocked
/// reference to rounding (≪ 1e-12 relative) and are bitwise reproducible
/// across thread counts at a fixed `nb`.
fn householder_blocked_into<T: Scalar>(
    a: MatView<'_, T>,
    q: &mut Matrix<T>,
    r_out: &mut Matrix<T>,
    nb: usize,
    ws: &mut Workspace,
) {
    let (m, n) = a.shape();
    let p = m.min(n);
    debug_assert!(nb >= 2, "nb <= 1 routes to householder_into");
    let mut work = ws.take(m, n);
    for i in 0..m {
        let row = work.row_mut(i);
        if a.cs == 1 {
            row.copy_from_slice(&a.data[i * a.rs..i * a.rs + n]);
        } else {
            for (j, x) in row.iter_mut().enumerate() {
                *x = a.at(i, j);
            }
        }
    }
    // Same reflector layout as the unblocked path: row k of `vs` holds v_k
    // in its first m - k entries, `vn` each ‖v_k‖² (0.0 = identity).
    let mut vs = ws.take(p, m);
    let mut vn = ws.take(1, p);

    let mut y = ws.take(m, nb);
    let mut s = ws.take(nb, nb);
    let mut t = ws.take(nb, nb);
    let mut taus = ws.take(1, nb);

    let mut k0 = 0;
    while k0 < p {
        let nbk = nb.min(p - k0);
        // Panel reduction: reflectors k0 .. k0+nbk, applied only within
        // the panel's columns.
        for j in 0..nbk {
            let k = k0 + j;
            let vlen = m - k;
            {
                let vrow = &mut vs.row_mut(k)[..vlen];
                for (idx, vv) in vrow.iter_mut().enumerate() {
                    *vv = work[(k + idx, k)];
                }
            }
            let alpha = {
                let v = &vs.row(k)[..vlen];
                let norm = v.iter().map(|x| *x * *x).sum::<T>().sqrt();
                if v[0] >= T::ZERO {
                    -norm
                } else {
                    norm
                }
            };
            if alpha == T::ZERO {
                continue;
            }
            vs[(k, 0)] -= alpha;
            let vnorm2: T = vs.row(k)[..vlen].iter().map(|x| *x * *x).sum();
            if vnorm2 == T::ZERO {
                continue;
            }
            vn[(0, k)] = vnorm2;
            apply_reflector(work.as_mut_slice(), n, k, k, k0 + nbk, &vs.row(k)[..vlen], vnorm2);
            work[(k, k)] = alpha;
            for i in k + 1..m {
                work[(i, k)] = T::ZERO;
            }
        }
        // Trailing update through the packed GEMM engine.
        if k0 + nbk < n {
            wy::panel_y(&vs, vn.row(0), k0, nbk, m - k0, &mut y, &mut taus.row_mut(0)[..nbk]);
            gram_into(y.view(), &mut s);
            wy::build_t(&s, &taus.row(0)[..nbk], &mut t);
            t.scale_mut(-T::ONE);
            wy::apply_block_left(&y, &t, true, work.block_mut(k0, m, k0 + nbk, n), ws);
        }
        k0 += nbk;
    }
    ws.give(y);
    ws.give(s);
    ws.give(t);
    ws.give(taus);

    // Thin Q: reverse compact-WY accumulation over the same reflectors.
    q.reshape_zeroed(m, p);
    for i in 0..p {
        q[(i, i)] = T::ONE;
    }
    wy::accumulate_reverse(&vs, vn.row(0), p, 0, nb, q, ws);

    r_out.reshape_for_overwrite(p, n);
    for i in 0..p {
        r_out.row_mut(i).copy_from_slice(work.row(i));
    }
    ws.give(work);
    ws.give(vs);
    ws.give(vn);
}

/// Flip signs so that `diag(R) >= 0`, adjusting `Q` columns to keep `QR`
/// unchanged.
pub fn canonicalize<T: Scalar>(f: &mut QrFactors<T>) {
    canonicalize_qr(&mut f.q, &mut f.r);
}

/// [`canonicalize`] on loose factors (the `_into` pipelines keep `q` and
/// `r` in separate caller-owned buffers).
pub fn canonicalize_qr<T: Scalar>(q: &mut Matrix<T>, r: &mut Matrix<T>) {
    let p = r.rows();
    for k in 0..p.min(r.cols()) {
        if r[(k, k)] < T::ZERO {
            for j in 0..r.cols() {
                r[(k, j)] = -r[(k, j)];
            }
            for i in 0..q.rows() {
                q[(i, k)] = -q[(i, k)];
            }
        }
    }
}

/// Gram–Schmidt QR with re-orthogonalization (MGS2). Slightly different
/// rounding behaviour than Householder, which makes it a useful independent
/// cross-check in tests; the double pass keeps `Q` orthonormal to machine
/// precision ("twice is enough").
pub fn mgs_qr<T: Scalar>(a: &Matrix<T>) -> QrFactors<T> {
    let mut ws = Workspace::new();
    mgs_qr_with(a, &mut ws)
}

/// [`mgs_qr`] drawing its wide-matrix tail temporary from a caller-owned
/// workspace, so repeated factorizations of same-shaped inputs allocate
/// only the returned factors.
pub fn mgs_qr_with<T: Scalar>(a: &Matrix<T>, ws: &mut Workspace) -> QrFactors<T> {
    let (m, n) = a.shape();
    let p = m.min(n);
    let mut q = Matrix::zeros(m, p);
    let mut r = Matrix::zeros(p, n);
    // One reusable column buffer for all p iterations (col_iter avoids
    // the per-column Vec that Matrix::col would allocate).
    let mut v: Vec<T> = Vec::with_capacity(m);
    for j in 0..p {
        v.clear();
        v.extend(a.col_iter(j));
        for _pass in 0..2 {
            for i in 0..j {
                let mut h = T::ZERO;
                for (row, vv) in v.iter().enumerate() {
                    h += q[(row, i)] * *vv;
                }
                r[(i, j)] += h;
                for (row, vv) in v.iter_mut().enumerate() {
                    *vv -= h * q[(row, i)];
                }
            }
        }
        let norm = v.iter().map(|x| *x * *x).sum::<T>().sqrt();
        r[(j, j)] = norm;
        if norm > T::ZERO {
            for vv in &mut v {
                *vv /= norm;
            }
        }
        q.set_col(j, &v);
    }
    if n > p {
        // For wide matrices (m < n) the trailing block of R is QᵀA; exact
        // because the square orthonormal Q spans all of R^m. The tail is a
        // zero-copy view and the product lands in a workspace buffer.
        let mut qt_tail = ws.take(p, n - p);
        crate::gemm::matmul_tn_into(q.view(), a.block(0, m, p, n), &mut qt_tail);
        for i in 0..p {
            for j in 0..n - p {
                r[(i, p + j)] = qt_tail[(i, j)];
            }
        }
        ws.give(qt_tail);
    }
    let mut f = QrFactors { q, r };
    canonicalize(&mut f);
    f
}

/// Reconstruction error `‖A − QR‖_F / max(1, ‖A‖_F)`.
pub fn reconstruction_error<T: Scalar>(a: &Matrix<T>, f: &QrFactors<T>) -> f64 {
    let qr = matmul(&f.q, &f.r);
    (a - &qr).frobenius_norm().to_f64() / a.frobenius_norm().to_f64().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::orthogonality_error;

    fn test_mat(r: usize, c: usize, seed: f64) -> Matrix {
        Matrix::from_fn(r, c, |i, j| ((i * 37 + j * 11) as f64 * seed).sin() + 0.1)
    }

    #[test]
    fn qr_reconstructs_tall() {
        let a = test_mat(60, 12, 0.7);
        let f = thin_qr(&a);
        assert_eq!(f.q.shape(), (60, 12));
        assert_eq!(f.r.shape(), (12, 12));
        assert!(reconstruction_error(&a, &f) < 1e-13);
    }

    #[test]
    fn qr_reconstructs_square() {
        let a = test_mat(20, 20, 0.3);
        let f = thin_qr(&a);
        assert!(reconstruction_error(&a, &f) < 1e-13);
    }

    #[test]
    fn qr_reconstructs_wide() {
        let a = test_mat(8, 25, 0.5);
        let f = thin_qr(&a);
        assert_eq!(f.q.shape(), (8, 8));
        assert_eq!(f.r.shape(), (8, 25));
        assert!(reconstruction_error(&a, &f) < 1e-13);
    }

    #[test]
    fn q_is_orthonormal() {
        let a = test_mat(100, 15, 0.9);
        let f = thin_qr(&a);
        assert!(orthogonality_error(&f.q) < 1e-13);
    }

    #[test]
    fn r_is_upper_triangular_with_nonneg_diag() {
        let a = test_mat(40, 10, 1.1);
        let f = thin_qr(&a);
        for i in 0..10 {
            assert!(f.r[(i, i)] >= 0.0, "negative diagonal at {i}");
            for j in 0..i {
                assert_eq!(f.r[(i, j)], 0.0, "nonzero below diagonal at ({i},{j})");
            }
        }
    }

    #[test]
    fn canonical_qr_is_unique() {
        // Two different algorithms computing QR of the same well-conditioned
        // matrix should agree after canonicalization: Householder vs MGS.
        // (A Gaussian matrix is full-rank and well-conditioned w.h.p.;
        // structured sin-grids can be numerically rank-deficient, which makes
        // trailing Q columns non-unique.)
        let a = crate::random::gaussian_matrix(30, 8, &mut crate::random::seeded_rng(99));
        let f1 = thin_qr(&a);
        let f2 = mgs_qr(&a);
        assert!((&f1.r - &f2.r).max_abs() < 1e-10);
        assert!((&f1.q - &f2.q).max_abs() < 1e-10);
    }

    #[test]
    fn mgs_reconstructs_wide() {
        let a = test_mat(6, 14, 0.8);
        let f = mgs_qr(&a);
        assert!(reconstruction_error(&a, &f) < 1e-12);
    }

    #[test]
    fn qr_handles_rank_deficient() {
        // Two identical columns: rank < n. QR must still reconstruct.
        let c: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let a = Matrix::from_columns(&[c.clone(), c.clone(), (0..30).map(|i| i as f64).collect()]);
        let f = thin_qr(&a);
        assert!(reconstruction_error(&a, &f) < 1e-12);
    }

    #[test]
    fn qr_of_zero_matrix() {
        let a = Matrix::<f64>::zeros(10, 3);
        let f = thin_qr(&a);
        assert!(reconstruction_error(&a, &f) < 1e-15);
        assert_eq!(f.r, Matrix::zeros(3, 3));
    }

    #[test]
    fn qr_thin_into_bitwise_matches_thin_qr() {
        let a = test_mat(45, 13, 0.37);
        let f = thin_qr(&a);
        let mut ws = Workspace::new();
        let mut q = Matrix::zeros(0, 0);
        let mut r = Matrix::zeros(0, 0);
        qr_thin_into(a.view(), &mut q, &mut r, &mut ws);
        assert_eq!(q, f.q);
        assert_eq!(r, f.r);
        // A strided block view factors exactly like its materialized copy.
        let blk = a.block(3, 40, 2, 11);
        let cpy = a.submatrix(3, 40, 2, 11);
        qr_thin_into(blk, &mut q, &mut r, &mut ws);
        let fb = thin_qr(&cpy);
        assert_eq!(q, fb.q);
        assert_eq!(r, fb.r);
    }

    #[test]
    fn qr_thin_into_reuses_workspace() {
        let a = test_mat(30, 6, 0.9);
        let mut ws = Workspace::new();
        let mut q = Matrix::zeros(0, 0);
        let mut r = Matrix::zeros(0, 0);
        qr_thin_into(a.view(), &mut q, &mut r, &mut ws);
        ws.reset_stats();
        for _ in 0..5 {
            qr_thin_into(a.view(), &mut q, &mut r, &mut ws);
        }
        let s = ws.stats();
        assert_eq!(s.misses, 0, "warm workspace must serve every take");
        assert_eq!(s.fresh_bytes, 0);
        assert!(s.takes > 0);
    }

    #[test]
    fn qr_single_column() {
        let a = Matrix::from_columns(&[vec![3.0, 4.0]]);
        let f = thin_qr(&a);
        assert!((f.r[(0, 0)] - 5.0).abs() < 1e-14);
        assert!((f.q[(0, 0)] - 0.6).abs() < 1e-14);
        assert!((f.q[(1, 0)] - 0.8).abs() < 1e-14);
    }
}
