//! Random matrix generation (Gaussian test matrices for the randomized
//! range finder, plus reproducible test fixtures).

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A standard-normal sampler without external statistics crates:
/// Marsaglia polar method over `rand`'s uniform source.
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

/// An `rows x cols` matrix with iid standard Gaussian entries from `rng`.
pub fn gaussian_matrix<R: rand::Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let dist = StandardNormal;
    Matrix::from_fn(rows, cols, |_, _| dist.sample(rng))
}

/// Overwrite `m` with iid standard Gaussians, drawing in the same
/// row-major order as [`gaussian_matrix`] — so, given the same RNG state
/// and shape, the result is bitwise identical, just without the fresh
/// allocation. This is what lets the workspace-fed randomized range
/// finder reuse its sketch buffer without changing any output bit.
///
/// Generic over the element type: samples are always drawn from the f64
/// stream and narrowed per element, so an f32 sketch consumes exactly the
/// RNG state of its f64 counterpart and equals it rounded — the property
/// the mixed-precision conformance tests pin.
pub fn fill_gaussian<T: Scalar, R: rand::Rng>(m: &mut Matrix<T>, rng: &mut R) {
    let dist = StandardNormal;
    for x in m.as_mut_slice() {
        *x = T::from_f64(dist.sample(rng));
    }
}

/// A seeded RNG for reproducible randomized algorithms.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random matrix with prescribed singular values: `A = U diag(s) Vᵀ` with
/// Haar-ish orthogonal factors obtained by QR of Gaussian matrices. Used by
/// tests and benchmarks to control spectra exactly.
pub fn matrix_with_spectrum<R: rand::Rng>(
    rows: usize,
    cols: usize,
    spectrum: &[f64],
    rng: &mut R,
) -> Matrix {
    let p = rows.min(cols);
    assert!(spectrum.len() <= p, "spectrum longer than min dimension");
    let mut s = vec![0.0; p];
    s[..spectrum.len()].copy_from_slice(spectrum);
    let u = crate::qr::thin_qr(&gaussian_matrix(rows, p, rng)).q;
    let v = crate::qr::thin_qr(&gaussian_matrix(cols, p, rng)).q;
    crate::gemm::matmul(&u.mul_diag(&s), &v.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments() {
        let mut rng = seeded_rng(7);
        let m = gaussian_matrix(200, 50, &mut rng);
        let n = (m.rows() * m.cols()) as f64;
        let mean: f64 = m.as_slice().iter().sum::<f64>() / n;
        let var: f64 = m.as_slice().iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn seeded_is_reproducible() {
        let a = gaussian_matrix(5, 5, &mut seeded_rng(42));
        let b = gaussian_matrix(5, 5, &mut seeded_rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = gaussian_matrix(5, 5, &mut seeded_rng(1));
        let b = gaussian_matrix(5, 5, &mut seeded_rng(2));
        assert_ne!(a, b);
    }

    #[test]
    fn spectrum_is_realized() {
        let mut rng = seeded_rng(3);
        let spec = [5.0, 2.0, 1.0, 0.1];
        let a = matrix_with_spectrum(40, 12, &spec, &mut rng);
        let f = crate::svd::svd(&a);
        for (got, want) in f.s.iter().zip(&spec) {
            assert!((got - want).abs() < 1e-10, "sigma {got} vs {want}");
        }
        assert!(f.s[4] < 1e-10);
    }
}
