//! Randomized linear algebra (Section 3.3 of the paper).
//!
//! The randomized range finder draws a Gaussian test matrix `Ω`, forms the
//! sketch `Y = AΩ`, optionally runs re-orthogonalized power iterations, and
//! QR-factorizes the sketch into an approximate range basis `Q` with
//! `A ≈ Q Qᵀ A`. The randomized SVD then factorizes the small projected
//! matrix `Ã = Qᵀ A` and lifts its left factor: `U = Q Ũ` (Eqs. 7–11).
//!
//! The sketch `AΩ`, the power-iteration products and the projection `QᵀA`
//! are exactly the tall-times-skinny GEMMs the packed parallel engine in
//! [`crate::gemm`] is blocked for; they thread automatically above the
//! size threshold with bitwise-deterministic output.

use crate::gemm::{matmul, matmul_into, matmul_tn, matmul_tn_into};
use crate::matrix::Matrix;
use crate::qr::{qr_thin_into, thin_qr};
use crate::random::fill_gaussian;
use crate::scalar::Scalar;
use crate::svd::{svd, Svd};
use crate::workspace::Workspace;

/// Parameters for the randomized range finder.
#[derive(Clone, Copy, Debug)]
pub struct RandomizedConfig {
    /// Target rank `r`.
    pub rank: usize,
    /// Oversampling `p` (extra sketch columns beyond `rank`).
    pub oversampling: usize,
    /// Number of power iterations `q` (each re-orthogonalized).
    pub power_iterations: usize,
}

impl RandomizedConfig {
    /// A sensible default matching the paper's usage: the paper samples a
    /// fresh Gaussian `Q` per call with no explicit oversampling discussion;
    /// we default to the standard `p = 10`, `q = 1`.
    pub fn new(rank: usize) -> Self {
        Self { rank, oversampling: 10, power_iterations: 1 }
    }

    /// Builder: set the oversampling.
    pub fn with_oversampling(mut self, p: usize) -> Self {
        self.oversampling = p;
        self
    }

    /// Builder: set the power-iteration count.
    pub fn with_power_iterations(mut self, q: usize) -> Self {
        self.power_iterations = q;
        self
    }

    /// Sketch width `rank + oversampling`, clamped to the matrix's width.
    pub fn sketch_width(&self, ncols: usize) -> usize {
        (self.rank + self.oversampling).min(ncols)
    }
}

/// Compute an orthonormal approximate range basis `Q` (`m x l`) such that
/// `A ≈ Q Qᵀ A`, where `l = min(rank + oversampling, n)`.
pub fn randomized_range_finder<T: Scalar, R: rand::Rng>(
    a: &Matrix<T>,
    cfg: &RandomizedConfig,
    rng: &mut R,
) -> Matrix<T> {
    let mut ws = Workspace::new();
    let mut q = Matrix::zeros(0, 0);
    randomized_range_finder_into(a, cfg, rng, &mut q, &mut ws);
    q
}

/// Workspace-fed form of [`randomized_range_finder`]: the Gaussian
/// sketch, its products and the QR scratch all come from `ws`, and the
/// basis lands in `q`. With warm buffers a call allocates nothing.
/// Bitwise identical to the allocating version for the same RNG state —
/// the sketch is drawn in the identical row-major order.
pub fn randomized_range_finder_into<T: Scalar, R: rand::Rng>(
    a: &Matrix<T>,
    cfg: &RandomizedConfig,
    rng: &mut R,
    q: &mut Matrix<T>,
    ws: &mut Workspace,
) {
    let (m, n) = a.shape();
    let l = cfg.sketch_width(n);
    if l == 0 {
        q.reshape_zeroed(m, 0);
        return;
    }
    let mut omega = ws.take(n, l);
    fill_gaussian(&mut omega, rng);
    let mut y = ws.take(m, l);
    let mut rwork = ws.take(l, l);
    matmul_into(a.view(), omega.view(), &mut y);
    // Tall sketches ride the blocked compact-WY QR (see DESIGN.md), so
    // range finding is packed-GEMM work end to end.
    qr_thin_into(y.view(), q, &mut rwork, ws);
    if cfg.power_iterations > 0 {
        let mut z = ws.take(n, l);
        for _ in 0..cfg.power_iterations {
            // Re-orthogonalize between the two halves of each power step to
            // avoid losing the small-singular-value directions to round-off.
            matmul_tn_into(a.view(), q.view(), &mut y);
            qr_thin_into(y.view(), &mut z, &mut rwork, ws);
            matmul_into(a.view(), z.view(), &mut y);
            qr_thin_into(y.view(), q, &mut rwork, ws);
        }
        ws.give(z);
    }
    ws.give(omega);
    ws.give(y);
    ws.give(rwork);
}

/// Randomized truncated SVD of `a`, keeping `cfg.rank` triplets.
pub fn randomized_svd<T: Scalar, R: rand::Rng>(
    a: &Matrix<T>,
    cfg: &RandomizedConfig,
    rng: &mut R,
) -> Svd<T> {
    let q = randomized_range_finder(a, cfg, rng);
    if q.cols() == 0 {
        return Svd {
            u: Matrix::zeros(a.rows(), 0),
            s: Vec::new(),
            vt: Matrix::zeros(0, a.cols()),
        };
    }
    let small = matmul_tn(&q, a); // l x n
    let f = svd(&small);
    let u = matmul(&q, &f.u);
    Svd { u, s: f.s, vt: f.vt }.truncated(cfg.rank)
}

/// The paper's `low_rank_svd(A, K)` helper: returns `(U_K, s_K)` only — the
/// parallel driver never needs the right factor of the randomized path.
pub fn low_rank_svd<T: Scalar, R: rand::Rng>(
    a: &Matrix<T>,
    k: usize,
    rng: &mut R,
) -> (Matrix<T>, Vec<T>) {
    let f = randomized_svd(a, &RandomizedConfig::new(k), rng);
    (f.u, f.s)
}

/// Mixed-precision randomized SVD: the memory-bound half of the algorithm
/// — Gaussian sketch, `AΩ` products, power iterations and the range-basis
/// QR — runs in f32 (half the bytes through the GEMM engine), then the
/// basis is promoted to f64 and re-orthogonalized by a second thin QR
/// before the projection `Ã = QᵀA` and the small dense SVD, which run at
/// full precision. The promoted-QR step is what recovers f64-level
/// orthogonality (`‖QᵀQ − I‖ ~ 1e-15`) from an f32 basis; the subspace it
/// spans is still the f32 sketch's, so singular values agree with the f64
/// oracle to ~`ε_f32 · σ₁` (the conformance suite pins 1e-5 relative).
pub fn mixed_randomized_svd<R: rand::Rng>(
    a: &Matrix<f64>,
    cfg: &RandomizedConfig,
    rng: &mut R,
) -> Svd<f64> {
    let a32: Matrix<f32> = a.cast();
    let q32 = randomized_range_finder(&a32, cfg, rng);
    if q32.cols() == 0 {
        return Svd {
            u: Matrix::zeros(a.rows(), 0),
            s: Vec::new(),
            vt: Matrix::zeros(0, a.cols()),
        };
    }
    // Promote and re-orthogonalize: QR of the widened basis spans the same
    // subspace but is orthonormal at f64 working precision.
    let q = thin_qr(&q32.cast::<f64>()).q;
    let small = matmul_tn(&q, a); // l x n, full precision
    let f = svd(&small);
    let u = matmul(&q, &f.u);
    Svd { u, s: f.s, vt: f.vt }.truncated(cfg.rank)
}

/// Mixed-precision counterpart of [`low_rank_svd`]: `(U_K, s_K)` with the
/// range finding in f32 and the factors finished in f64.
pub fn mixed_low_rank_svd<R: rand::Rng>(
    a: &Matrix<f64>,
    k: usize,
    rng: &mut R,
) -> (Matrix<f64>, Vec<f64>) {
    let f = mixed_randomized_svd(a, &RandomizedConfig::new(k), rng);
    (f.u, f.s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::orthogonality_error;
    use crate::random::{matrix_with_spectrum, seeded_rng};

    #[test]
    fn range_finder_captures_range() {
        let mut rng = seeded_rng(11);
        let spec = [10.0, 5.0, 2.0, 1.0, 0.5];
        let a = matrix_with_spectrum(60, 20, &spec, &mut rng);
        let q = randomized_range_finder(&a, &RandomizedConfig::new(5), &mut rng);
        assert!(orthogonality_error(&q) < 1e-12);
        // A ≈ Q Qᵀ A since A is exactly rank 5 and l = 15 ≥ 5.
        let proj = matmul(&q, &matmul_tn(&q, &a));
        assert!((&a - &proj).frobenius_norm() / a.frobenius_norm() < 1e-10);
    }

    #[test]
    fn randomized_svd_exact_on_low_rank() {
        let mut rng = seeded_rng(5);
        let spec = [8.0, 4.0, 2.0];
        let a = matrix_with_spectrum(80, 30, &spec, &mut rng);
        let f = randomized_svd(&a, &RandomizedConfig::new(3), &mut rng);
        assert_eq!(f.s.len(), 3);
        for (got, want) in f.s.iter().zip(&spec) {
            assert!((got - want).abs() < 1e-9, "sigma {got} vs {want}");
        }
        assert!(f.reconstruction_error(&a) < 1e-9);
    }

    #[test]
    fn randomized_svd_decaying_spectrum_close() {
        let mut rng = seeded_rng(17);
        let spec: Vec<f64> = (0..20).map(|i| 0.5f64.powi(i)).collect();
        let a = matrix_with_spectrum(100, 40, &spec, &mut rng);
        let k = 5;
        let f = randomized_svd(&a, &RandomizedConfig::new(k).with_power_iterations(2), &mut rng);
        for (got, want) in f.s.iter().zip(&spec[..k]) {
            assert!((got - want).abs() / want < 1e-3, "sigma {got} vs {want}");
        }
    }

    #[test]
    fn power_iterations_improve_flat_spectrum() {
        let mut rng = seeded_rng(23);
        let spec: Vec<f64> = (0..30).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let a = matrix_with_spectrum(120, 30, &spec, &mut rng);
        let k = 5;
        let err = |q: usize, rng: &mut rand::rngs::StdRng| {
            let cfg = RandomizedConfig::new(k).with_oversampling(2).with_power_iterations(q);
            let f = randomized_svd(&a, &cfg, rng);
            (&a - &f.reconstruct()).frobenius_norm()
        };
        let e0 = err(0, &mut seeded_rng(1));
        let e3 = err(3, &mut seeded_rng(1));
        let best = {
            let f = svd(&a).truncated(k);
            (&a - &f.reconstruct()).frobenius_norm()
        };
        assert!(e3 <= e0 + 1e-12, "power iterations should not hurt: {e0} -> {e3}");
        assert!(e3 < 1.05 * best, "q=3 should be near-optimal: {e3} vs {best}");
    }

    #[test]
    fn range_finder_into_bitwise_matches_allocating() {
        let mut rng = seeded_rng(31);
        let a = matrix_with_spectrum(50, 18, &[6.0, 3.0, 1.0, 0.2], &mut rng);
        let cfg = RandomizedConfig::new(4).with_power_iterations(2);
        let base = randomized_range_finder(&a, &cfg, &mut seeded_rng(7));
        let mut ws = crate::workspace::Workspace::new();
        let mut q = Matrix::zeros(0, 0);
        randomized_range_finder_into(&a, &cfg, &mut seeded_rng(7), &mut q, &mut ws);
        assert_eq!(q, base, "workspace-fed range finder changed bits");
        // Warm repeat: same result, zero workspace misses.
        ws.reset_stats();
        randomized_range_finder_into(&a, &cfg, &mut seeded_rng(7), &mut q, &mut ws);
        assert_eq!(q, base);
        assert_eq!(ws.stats().misses, 0);
    }

    #[test]
    fn sketch_width_clamps_to_matrix() {
        let cfg = RandomizedConfig::new(50).with_oversampling(10);
        assert_eq!(cfg.sketch_width(20), 20);
        assert_eq!(cfg.sketch_width(100), 60);
    }

    #[test]
    fn low_rank_svd_shapes() {
        let mut rng = seeded_rng(2);
        let a = matrix_with_spectrum(40, 15, &[3.0, 1.0], &mut rng);
        let (u, s) = low_rank_svd(&a, 4, &mut rng);
        assert_eq!(u.shape(), (40, 4));
        assert_eq!(s.len(), 4);
        assert!(orthogonality_error(&u.first_columns(2)) < 1e-10);
    }

    #[test]
    fn zero_rank_request() {
        let mut rng = seeded_rng(9);
        let a = matrix_with_spectrum(10, 5, &[1.0], &mut rng);
        let cfg = RandomizedConfig { rank: 0, oversampling: 0, power_iterations: 0 };
        let f = randomized_svd(&a, &cfg, &mut rng);
        assert!(f.s.is_empty());
    }
}
