//! Windowed accumulation of Givens rotation sequences.
//!
//! The bidiagonal QR iteration and the one-sided Jacobi sweep both emit
//! long streams of plane rotations that must be multiplied into the tall
//! orthogonal factors `U` and `V`. Applied one at a time ([`rotate_cols`]),
//! each rotation reads and writes two full columns of a row-major matrix —
//! a strided, memory-bound level-1 update, `O(m)` cache lines for `O(m)`
//! flops. A [`RotAccumulator`] instead multiplies the rotations into a
//! small dense orthogonal *window* matrix `G` (covering the contiguous
//! column range the rotations touch) and applies the whole window to the
//! target in one level-3 product,
//!
//! ```text
//! X[:, lo..lo+w]  ←  X[:, lo..lo+w] · G[..w, ..w]
//! ```
//!
//! through the packed GEMM engine ([`crate::gemm::matmul_into`]) with
//! workspace-arena scratch — the same `dlasr`-style sequence-application
//! idea LAPACK uses for its bidiagonal stage, taken one step further into
//! a genuinely level-3 update.
//!
//! ## Windowing
//!
//! The window slides: a rotation on columns `(j, k)` that no longer fits
//! the open window flushes it and opens a fresh one at `min(j, k)`. Pairs
//! wider than the window capacity are applied directly (after a flush, so
//! ordering is preserved) — that keeps the accumulator correct for the
//! non-adjacent pairs of the deflation chases without any special cases at
//! the call sites. Consecutive QR steps over the same unreduced block
//! reuse the same window alignment, so their rotations pile into one `G`
//! across sweeps and the flush cost amortizes.
//!
//! ## Dispatch and determinism
//!
//! The window capacity is resolved per factor from [`rot_block`]: a
//! programmatic [`set_rot_block`] override, then the `PSVD_ROT_BLOCK`
//! environment variable, then a shape heuristic (small factors stay on the
//! direct path — capacity 1 — which is the bitwise reference the
//! accumulated path is contract-tested against, to ≤1e-12). Everything in
//! the accumulation itself is serial; the flush runs on the packed GEMM
//! engine, which partitions output rows and is bitwise deterministic
//! across thread counts — so at a fixed block size, results are identical
//! for every `PSVD_NUM_THREADS`.

use crate::gemm::matmul_into;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::workspace::Workspace;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Rotate columns `j` and `k` of `m`: `col_j ← c*col_j + s*col_k`,
/// `col_k ← -s*col_j + c*col_k`. The direct level-1 reference that the
/// accumulated window path reproduces to ≤1e-12.
#[inline]
pub fn rotate_cols<T: Scalar>(m: &mut Matrix<T>, j: usize, k: usize, c: T, s: T) {
    for i in 0..m.rows() {
        let a = m[(i, j)];
        let b = m[(i, k)];
        m[(i, j)] = c * a + s * b;
        m[(i, k)] = -s * a + c * b;
    }
}

/// Process-wide programmatic override of the rotation window capacity
/// (`0` = resolve from the `PSVD_ROT_BLOCK` env var, then the shape
/// heuristic). `nb <= 1` forces the direct per-rotation reference path.
static ROT_BLOCK: AtomicUsize = AtomicUsize::new(0);

/// Set the rotation-accumulation window capacity for all subsequent SVD
/// iterations. `nb = 1` forces the direct per-rotation reference path;
/// `0` restores automatic resolution (env var, then shape heuristic).
///
/// Like the QR panel width — and unlike the thread count — the window
/// capacity changes rounding (within the ≤1e-12 contract): callers
/// comparing runs bitwise must pin `nb`.
pub fn set_rot_block(nb: usize) {
    ROT_BLOCK.store(nb, Ordering::Relaxed);
}

/// `PSVD_ROT_BLOCK`, read once per process (consistent with
/// `PSVD_QR_BLOCK` / `PSVD_NUM_THREADS` resolution).
fn env_rot_block() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PSVD_ROT_BLOCK").ok().and_then(|s| s.trim().parse().ok()).filter(|&n| n > 0)
    })
}

/// Shape-based default window capacity for a `rows x cols` factor.
/// Short factors stay on the direct path: the window bookkeeping and the
/// flush GEMM only pay off once each avoided column sweep is long enough
/// to be memory-bound. Tall factors take the full column width (capped so
/// the window stays cache-resident): a full-width window never has to
/// flush mid-iteration, so the rotations of *every* sweep pile into one
/// small `G` and the target is touched exactly once at the end. A pure
/// function of shape, so the dispatch decision is independent of the
/// thread count.
fn auto_rot_block(rows: usize, cols: usize) -> usize {
    if rows < 128 || cols < 8 {
        1
    } else {
        cols.min(512)
    }
}

/// The rotation window capacity a `rows x cols` factor will use, after
/// the programmatic override, `PSVD_ROT_BLOCK`, and the shape heuristic
/// (clamped to the column count — a wider window buys nothing). Exposed
/// so benches and tests can report / pin it.
pub fn rot_block(rows: usize, cols: usize) -> usize {
    let cfg = ROT_BLOCK.load(Ordering::Relaxed);
    let nb =
        if cfg > 0 { cfg } else { env_rot_block().unwrap_or_else(|| auto_rot_block(rows, cols)) };
    nb.min(cols.max(1))
}

/// Observability counters for one [`RotAccumulator`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RotStats {
    /// Rotations multiplied into a window matrix.
    pub recorded: u64,
    /// Rotations applied directly (capacity 1, or pair wider than the
    /// window).
    pub direct: u64,
    /// Window flushes (level-3 applications).
    pub flushes: u64,
}

/// Records a sequence of column rotations against one target matrix and
/// applies them in level-3 windows.
///
/// The accumulator is tied to a single target per sequence: every
/// [`rotate`](RotAccumulator::rotate) and the final
/// [`flush`](RotAccumulator::flush) must pass the same matrix, in program
/// order. With capacity `<= 1` it degenerates to [`rotate_cols`] exactly.
pub struct RotAccumulator<T: Scalar = f64> {
    /// Window matrix, `cap x cap`, identity-initialized when opened; only
    /// the leading `width x width` block ever deviates from identity.
    g: Matrix<T>,
    /// Global column index of the open window's first column.
    lo: usize,
    /// Columns of the window in active use.
    width: usize,
    /// Window capacity (`<= 1` = direct passthrough).
    cap: usize,
    open: bool,
    stats: RotStats,
}

impl<T: Scalar> RotAccumulator<T> {
    /// A closed accumulator with the given window capacity.
    pub fn new(cap: usize) -> Self {
        Self {
            g: Matrix::zeros(0, 0),
            lo: 0,
            width: 0,
            cap,
            open: false,
            stats: RotStats::default(),
        }
    }

    /// True when every rotation goes straight to the target (capacity 1).
    pub fn is_direct(&self) -> bool {
        self.cap <= 1
    }

    /// The window capacity this accumulator was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Counters since construction.
    pub fn stats(&self) -> RotStats {
        self.stats
    }

    /// Record `col_j ← c*col_j + s*col_k`, `col_k ← -s*col_j + c*col_k`
    /// against `target`. Equivalent to `rotate_cols(target, j, k, c, s)`
    /// once flushed, to ≤1e-12 (exactly, on the direct path).
    pub fn rotate(
        &mut self,
        target: &mut Matrix<T>,
        j: usize,
        k: usize,
        c: T,
        s: T,
        ws: &mut Workspace,
    ) {
        if self.cap <= 1 {
            rotate_cols(target, j, k, c, s);
            self.stats.direct += 1;
            return;
        }
        let a = j.min(k);
        let b = j.max(k);
        if !self.open || a < self.lo || b >= self.lo + self.cap {
            self.flush(target, ws);
            if b - a + 1 > self.cap {
                // Pair wider than the window: apply in place. The flush
                // above keeps the sequence order intact.
                rotate_cols(target, j, k, c, s);
                self.stats.direct += 1;
                return;
            }
            self.g.reshape_identity(self.cap);
            // A window covering every column never needs to slide; anchor
            // it at 0 so it survives the whole rotation sequence.
            self.lo = if self.cap >= target.cols() { 0 } else { a };
            self.width = 0;
            self.open = true;
        }
        let w = self.width.max(b - self.lo + 1);
        self.width = w;
        // The rotation post-multiplies the window: G ← G·R, which is the
        // column rotation applied to G itself. Rows past `width` are still
        // identity with zeros in all columns below `width`, so restricting
        // the sweep to the leading `width` rows loses nothing.
        let (gj, gk) = (j - self.lo, k - self.lo);
        for i in 0..w {
            let x = self.g[(i, gj)];
            let y = self.g[(i, gk)];
            self.g[(i, gj)] = c * x + s * y;
            self.g[(i, gk)] = -s * x + c * y;
        }
        self.stats.recorded += 1;
    }

    /// Apply the open window (if any) to `target` in one level-3 product
    /// and close it. Must be called before the caller reads the target's
    /// rotated columns.
    pub fn flush(&mut self, target: &mut Matrix<T>, ws: &mut Workspace) {
        if !self.open {
            return;
        }
        self.open = false;
        let rows = target.rows();
        let w = self.width;
        if w == 0 || rows == 0 {
            return;
        }
        let mut tmp = ws.take(rows, w);
        matmul_into(
            target.block(0, rows, self.lo, self.lo + w),
            self.g.block(0, w, 0, w),
            &mut tmp,
        );
        target.block_mut(0, rows, self.lo, self.lo + w).copy_from(tmp.view());
        ws.give(tmp);
        self.stats.flushes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gaussian_matrix, seeded_rng};

    /// A deterministic pseudo-random rotation stream over `n` columns:
    /// a mix of adjacent QR-style pairs and wider chase-style pairs.
    fn rotation_stream(n: usize, count: usize) -> Vec<(usize, usize, f64, f64)> {
        (0..count)
            .map(|t| {
                let a = (t * 7 + t / 3) % (n - 1);
                let b = if t % 5 == 0 { (a + 2 + t % 11).min(n - 1) } else { a + 1 };
                let theta = (t as f64 * 0.37).sin() * 2.0;
                (a, b.max(a + 1), theta.cos(), theta.sin())
            })
            .collect()
    }

    fn check_stream(rows: usize, n: usize, cap: usize, count: usize) {
        let base = gaussian_matrix(rows, n, &mut seeded_rng(7));
        let mut direct = base.clone();
        for &(j, k, c, s) in &rotation_stream(n, count) {
            rotate_cols(&mut direct, j, k, c, s);
        }
        let mut acc = RotAccumulator::new(cap);
        let mut ws = Workspace::new();
        let mut windowed = base.clone();
        for &(j, k, c, s) in &rotation_stream(n, count) {
            acc.rotate(&mut windowed, j, k, c, s, &mut ws);
        }
        acc.flush(&mut windowed, &mut ws);
        let scale = direct.max_abs().max(1.0);
        assert!(
            (&windowed - &direct).max_abs() < 1e-12 * scale,
            "cap {cap} diverged from direct reference"
        );
    }

    #[test]
    fn window_matches_direct_across_capacities() {
        for cap in [1, 2, 3, 8, 16, 64] {
            check_stream(40, 12, cap, 150);
        }
    }

    #[test]
    fn full_width_window_matches_direct() {
        check_stream(64, 9, 9, 300);
    }

    #[test]
    fn wide_pairs_fall_back_to_direct() {
        let mut acc = RotAccumulator::new(4);
        let mut ws = Workspace::new();
        let mut m = gaussian_matrix(20, 10, &mut seeded_rng(3));
        let want = {
            let mut d = m.clone();
            rotate_cols(&mut d, 0, 9, 0.6, 0.8);
            d
        };
        acc.rotate(&mut m, 0, 9, 0.6, 0.8, &mut ws);
        acc.flush(&mut m, &mut ws);
        assert_eq!(m, want, "span > cap must apply the exact direct update");
        assert_eq!(acc.stats().direct, 1);
        assert_eq!(acc.stats().recorded, 0);
    }

    #[test]
    fn direct_capacity_is_bitwise_passthrough() {
        let mut acc = RotAccumulator::new(1);
        let mut ws = Workspace::new();
        let mut m = gaussian_matrix(15, 6, &mut seeded_rng(5));
        let mut want = m.clone();
        for &(j, k, c, s) in &rotation_stream(6, 40) {
            rotate_cols(&mut want, j, k, c, s);
            acc.rotate(&mut m, j, k, c, s, &mut ws);
        }
        acc.flush(&mut m, &mut ws);
        assert_eq!(m, want);
        assert!(acc.is_direct());
        assert_eq!(acc.stats().flushes, 0);
    }

    #[test]
    fn flush_reuses_workspace_buffers() {
        let mut acc = RotAccumulator::new(8);
        let mut ws = Workspace::new();
        let mut m = gaussian_matrix(40, 16, &mut seeded_rng(11));
        let stream = rotation_stream(16, 200);
        for &(j, k, c, s) in &stream {
            acc.rotate(&mut m, j, k, c, s, &mut ws);
        }
        acc.flush(&mut m, &mut ws);
        ws.reset_stats();
        for &(j, k, c, s) in &stream {
            acc.rotate(&mut m, j, k, c, s, &mut ws);
        }
        acc.flush(&mut m, &mut ws);
        let s = ws.stats();
        assert!(s.takes > 0, "windows must draw scratch from the workspace");
        assert_eq!(s.misses, 0, "steady-state windows must reuse pooled buffers");
    }

    #[test]
    fn rot_block_respects_override_and_heuristic() {
        set_rot_block(0);
        assert_eq!(rot_block(16, 256), 1, "small factors stay direct");
        assert_eq!(rot_block(4096, 256), 256, "tall factors take full width");
        assert_eq!(rot_block(4096, 2048), 512, "window stays cache-resident");
        set_rot_block(5);
        assert_eq!(rot_block(4096, 256), 5);
        assert_eq!(rot_block(16, 256), 5);
        assert_eq!(rot_block(4096, 3), 3, "clamped to the column count");
        set_rot_block(0);
    }
}
