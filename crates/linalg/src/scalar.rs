//! The sealed element-type abstraction behind every dense kernel.
//!
//! [`Scalar`] is implemented for exactly `f64` and `f32` (the trait is
//! sealed — downstream crates can consume the generic APIs but cannot add
//! element types, which is what lets the SIMD kernel registries, blocking
//! resolution and workspace pools enumerate the dtypes statically).
//!
//! Each impl carries:
//!
//! - the IEEE constants the factorization stack needs (`EPSILON`,
//!   `MIN_POSITIVE`, ∞) at its own precision,
//! - the 256-bit SIMD lane mapping (`SIMD_LANES`: 4 for `f64`, 8 for
//!   `f32`) that the AVX2/FMA micro-kernels key their tile widths on,
//! - the per-dtype process-wide cells (kernel registry, selected kernel,
//!   resolved blocking) — Rust has no generic statics, so each dtype hosts
//!   its own `OnceLock`s behind trait hooks, and
//! - the workspace pool hook that lets one [`crate::workspace::Workspace`]
//!   arena serve both precisions with honest byte-based accounting.
//!
//! Determinism contract per dtype: every numeric method here lowers to the
//! corresponding `std` float intrinsic on the concrete type, so code
//! monomorphized at `f64` executes exactly the instruction stream the
//! pre-generic (f64-only) code did — all f64 results are bitwise
//! unchanged by this refactor.

use std::sync::OnceLock;

use crate::gemm::blocking::{Blocking, BlockingSource};
use crate::gemm::kernel::MicroKernel;

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// The per-dtype process-wide GEMM resolution state (see module docs).
#[doc(hidden)]
pub struct GemmCells<T: Scalar> {
    /// Kernels available on this CPU for this dtype (scalar first).
    pub registry: OnceLock<Vec<&'static dyn MicroKernel<T>>>,
    /// The kernel resolved from `PSVD_GEMM_KERNEL` / CPU detection.
    pub selected: OnceLock<&'static dyn MicroKernel<T>>,
    /// The resolved cache-blocking triple and where it came from.
    pub blocking: OnceLock<(Blocking, BlockingSource)>,
}

impl<T: Scalar> GemmCells<T> {
    pub const fn new() -> Self {
        Self { registry: OnceLock::new(), selected: OnceLock::new(), blocking: OnceLock::new() }
    }
}

impl<T: Scalar> Default for GemmCells<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A dense element type: `f64` or `f32`. Sealed.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Send
    + Sync
    + Default
    + PartialEq
    + PartialOrd
    + std::fmt::Debug
    + std::fmt::Display
    + std::fmt::LowerExp
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + std::ops::MulAssign
    + std::ops::DivAssign
    + std::iter::Sum<Self>
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon at this precision.
    const EPSILON: Self;
    /// Smallest positive normal (the safe-min guard in deflation tests).
    const MIN_POSITIVE: Self;
    /// Positive infinity.
    const INFINITY: Self;
    /// Lanes per 256-bit SIMD vector (4 for `f64`, 8 for `f32`).
    const SIMD_LANES: usize;
    /// Stable lowercase dtype label for profiles / bench JSON ("f64", "f32").
    const NAME: &'static str;

    /// Nearest representable value to `x` (exact for f64; one rounding
    /// for f32 — used for tolerances and config-derived factors).
    fn from_f64(x: f64) -> Self;
    /// Widen to f64 (exact for both dtypes).
    fn to_f64(self) -> f64;

    /// Append this value's little-endian byte representation to `out`
    /// (`size_of::<Self>()` bytes — the on-disk element encoding of the
    /// `ncsim` container and any other byte-exact serialization).
    fn put_le_bytes(self, out: &mut Vec<u8>);
    /// Rebuild a value from the first `size_of::<Self>()` bytes of `src`
    /// (little-endian). Exact inverse of [`Scalar::put_le_bytes`] for
    /// every bit pattern, NaNs included.
    fn get_le_bytes(src: &[u8]) -> Self;

    fn abs(self) -> Self;
    fn sqrt(self) -> Self;
    fn hypot(self, other: Self) -> Self;
    fn max(self, other: Self) -> Self;
    fn min(self, other: Self) -> Self;
    fn signum(self) -> Self;
    fn powi(self, n: i32) -> Self;
    fn ln(self) -> Self;
    fn is_finite(self) -> bool;

    /// This dtype's process-wide GEMM resolution cells.
    #[doc(hidden)]
    fn gemm_cells() -> &'static GemmCells<Self>;

    /// The kernels this build/CPU can run at this dtype, scalar oracle
    /// first, fastest last (mirrors the f64-only detection order).
    #[doc(hidden)]
    fn detect_kernels() -> Vec<&'static dyn MicroKernel<Self>>;

    /// This dtype's free-list inside the shared workspace arena.
    #[doc(hidden)]
    fn workspace_pool(ws: &mut crate::workspace::Workspace) -> &mut Vec<Vec<Self>>;
}

macro_rules! scalar_common {
    () => {
        #[inline(always)]
        fn abs(self) -> Self {
            self.abs()
        }
        #[inline(always)]
        fn sqrt(self) -> Self {
            self.sqrt()
        }
        #[inline(always)]
        fn hypot(self, other: Self) -> Self {
            self.hypot(other)
        }
        #[inline(always)]
        fn max(self, other: Self) -> Self {
            self.max(other)
        }
        #[inline(always)]
        fn min(self, other: Self) -> Self {
            self.min(other)
        }
        #[inline(always)]
        fn signum(self) -> Self {
            self.signum()
        }
        #[inline(always)]
        fn powi(self, n: i32) -> Self {
            self.powi(n)
        }
        #[inline(always)]
        fn ln(self) -> Self {
            self.ln()
        }
        #[inline(always)]
        fn is_finite(self) -> bool {
            self.is_finite()
        }
    };
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const MIN_POSITIVE: Self = f64::MIN_POSITIVE;
    const INFINITY: Self = f64::INFINITY;
    const SIMD_LANES: usize = 4;
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn put_le_bytes(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline(always)]
    fn get_le_bytes(src: &[u8]) -> Self {
        f64::from_le_bytes(src[..8].try_into().expect("8 bytes for f64"))
    }

    scalar_common!();

    fn gemm_cells() -> &'static GemmCells<Self> {
        static CELLS: GemmCells<f64> = GemmCells::new();
        &CELLS
    }

    fn detect_kernels() -> Vec<&'static dyn MicroKernel<Self>> {
        crate::gemm::kernel::detect_f64()
    }

    fn workspace_pool(ws: &mut crate::workspace::Workspace) -> &mut Vec<Vec<Self>> {
        ws.pool_f64()
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const MIN_POSITIVE: Self = f32::MIN_POSITIVE;
    const INFINITY: Self = f32::INFINITY;
    const SIMD_LANES: usize = 8;
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn put_le_bytes(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline(always)]
    fn get_le_bytes(src: &[u8]) -> Self {
        f32::from_le_bytes(src[..4].try_into().expect("4 bytes for f32"))
    }

    scalar_common!();

    fn gemm_cells() -> &'static GemmCells<Self> {
        static CELLS: GemmCells<f32> = GemmCells::new();
        &CELLS
    }

    fn detect_kernels() -> Vec<&'static dyn MicroKernel<Self>> {
        crate::gemm::kernel::detect_f32()
    }

    fn workspace_pool(ws: &mut crate::workspace::Workspace) -> &mut Vec<Vec<Self>> {
        ws.pool_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_std() {
        assert_eq!(<f64 as Scalar>::EPSILON, f64::EPSILON);
        assert_eq!(<f32 as Scalar>::EPSILON, f32::EPSILON);
        assert_eq!(<f64 as Scalar>::MIN_POSITIVE, f64::MIN_POSITIVE);
        assert_eq!(<f32 as Scalar>::SIMD_LANES, 2 * <f64 as Scalar>::SIMD_LANES);
        assert_eq!(<f64 as Scalar>::NAME, "f64");
        assert_eq!(<f32 as Scalar>::NAME, "f32");
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(<f64 as Scalar>::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(<f32 as Scalar>::from_f64(1.5).to_f64(), 1.5);
        // f32 narrows: one rounding, then exact widening.
        let x = 0.1f64;
        assert_eq!(<f32 as Scalar>::from_f64(x), 0.1f32);
        assert_eq!(<f32 as Scalar>::from_f64(x).to_f64(), 0.1f32 as f64);
    }

    #[test]
    fn le_bytes_round_trip_bit_patterns() {
        fn probe<T: Scalar>(values: &[f64]) {
            for &v in values {
                let x = T::from_f64(v);
                let mut buf = Vec::new();
                x.put_le_bytes(&mut buf);
                assert_eq!(buf.len(), std::mem::size_of::<T>());
                let back = T::get_le_bytes(&buf);
                // Bitwise round trip, including signed zero.
                assert_eq!(back.to_f64().to_bits(), x.to_f64().to_bits());
            }
        }
        let vals = [0.0, -0.0, 1.5, -7.25e-3, 1e300, f64::MIN_POSITIVE];
        probe::<f64>(&vals);
        probe::<f32>(&vals[..4]);
    }

    #[test]
    fn math_lowers_to_std() {
        fn probe<T: Scalar>() {
            let three = T::from_f64(3.0);
            let four = T::from_f64(4.0);
            assert_eq!(three.hypot(four), T::from_f64(5.0));
            assert_eq!((-three).abs(), three);
            assert_eq!(four.sqrt(), T::from_f64(2.0));
            assert_eq!((-four).signum(), -T::ONE);
            assert_eq!(three.max(four), four);
            assert_eq!(three.min(four), three);
            assert!(three.is_finite());
            assert!(!T::INFINITY.is_finite());
        }
        probe::<f64>();
        probe::<f32>();
    }
}
