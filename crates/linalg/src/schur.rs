//! Real Schur decomposition via the Francis implicit double-shift QR
//! iteration: `A = Q T Qᵀ` with `Q` orthogonal and `T` quasi-upper
//! triangular (1×1 blocks for real eigenvalues, 2×2 blocks for complex
//! pairs).
//!
//! Completes the nonsymmetric eigen stack ([`crate::hessenberg`] →
//! here → [`crate::eig_general`]) that DMD builds on.

use crate::complex::Complex;
use crate::hessenberg::hessenberg;
use crate::matrix::Matrix;

/// The real Schur factorization `a = q * t * qᵀ`.
#[derive(Clone, Debug)]
pub struct SchurFactors {
    /// Orthogonal Schur vectors.
    pub q: Matrix,
    /// Quasi-upper-triangular Schur form.
    pub t: Matrix,
}

/// 3-element Householder reflector annihilating `y` and `z` of `(x, y, z)`.
/// Returns `(v0, v1, v2, 2/vᵀv)` or `None` when nothing to do.
fn householder3(x: f64, y: f64, z: f64) -> Option<(f64, f64, f64, f64)> {
    let norm = (x * x + y * y + z * z).sqrt();
    if norm == 0.0 || (y == 0.0 && z == 0.0) {
        return None;
    }
    let alpha = if x >= 0.0 { -norm } else { norm };
    let v0 = x - alpha;
    let vn2 = v0 * v0 + y * y + z * z;
    if vn2 == 0.0 {
        return None;
    }
    Some((v0, y, z, 2.0 / vn2))
}

/// One Francis double-shift bulge chase on the active block `[low..=high]`.
/// `exceptional` substitutes ad-hoc shifts to break rare convergence cycles.
fn francis_step(t: &mut Matrix, q: &mut Matrix, low: usize, high: usize, exceptional: bool) {
    let n = t.rows();
    // Shift polynomial coefficients from the trailing 2x2 (trace s, det d).
    let (s, d) = if exceptional {
        let ex =
            t[(high, high - 1)].abs() + if high >= 2 { t[(high - 1, high - 2)].abs() } else { 0.0 };
        (1.5 * ex, ex * ex)
    } else {
        let a = t[(high - 1, high - 1)];
        let b = t[(high - 1, high)];
        let c = t[(high, high - 1)];
        let dd = t[(high, high)];
        (a + dd, a * dd - b * c)
    };

    // First column of (H - aI)(H - bI) restricted to the block.
    let h00 = t[(low, low)];
    let h10 = t[(low + 1, low)];
    let mut x = h00 * h00 + t[(low, low + 1)] * h10 - s * h00 + d;
    let mut y = h10 * (h00 + t[(low + 1, low + 1)] - s);
    let mut z = if low + 2 <= high { h10 * t[(low + 2, low + 1)] } else { 0.0 };

    for k in low..high - 1 {
        let Some((v0, v1, v2, beta)) = householder3(x, y, z) else {
            // Nothing to annihilate; advance the chase window.
            x = t[(k + 1, k)];
            y = t[(k + 2, k)];
            z = if k + 3 <= high { t[(k + 3, k)] } else { 0.0 };
            continue;
        };
        let rows = [k, k + 1, k + 2];
        // Left multiplication: rows k..k+2, columns from the chase front.
        let c0 = if k > low { k - 1 } else { low };
        for j in c0..n {
            let dot = v0 * t[(rows[0], j)] + v1 * t[(rows[1], j)] + v2 * t[(rows[2], j)];
            let sfac = beta * dot;
            t[(rows[0], j)] -= sfac * v0;
            t[(rows[1], j)] -= sfac * v1;
            t[(rows[2], j)] -= sfac * v2;
        }
        // Right multiplication: columns k..k+2, rows up to the bulge tip.
        let rmax = (k + 3).min(high);
        for i in 0..=rmax {
            let dot = v0 * t[(i, rows[0])] + v1 * t[(i, rows[1])] + v2 * t[(i, rows[2])];
            let sfac = beta * dot;
            t[(i, rows[0])] -= sfac * v0;
            t[(i, rows[1])] -= sfac * v1;
            t[(i, rows[2])] -= sfac * v2;
        }
        // Accumulate into the Schur vectors.
        for i in 0..n {
            let dot = v0 * q[(i, rows[0])] + v1 * q[(i, rows[1])] + v2 * q[(i, rows[2])];
            let sfac = beta * dot;
            q[(i, rows[0])] -= sfac * v0;
            q[(i, rows[1])] -= sfac * v1;
            q[(i, rows[2])] -= sfac * v2;
        }
        x = t[(k + 1, k)];
        y = t[(k + 2, k)];
        z = if k + 3 <= high { t[(k + 3, k)] } else { 0.0 };
    }

    // Final 2-element reflector on (x, y) acting on rows/cols high-1, high.
    let norm = x.hypot(y);
    if norm > 0.0 && y != 0.0 {
        let alpha = if x >= 0.0 { -norm } else { norm };
        let v0 = x - alpha;
        let v1 = y;
        let vn2 = v0 * v0 + v1 * v1;
        if vn2 > 0.0 {
            let beta = 2.0 / vn2;
            let (r0, r1) = (high - 1, high);
            let c0 = if high - 1 > low { high - 2 } else { low };
            for j in c0..n {
                let dot = v0 * t[(r0, j)] + v1 * t[(r1, j)];
                let sfac = beta * dot;
                t[(r0, j)] -= sfac * v0;
                t[(r1, j)] -= sfac * v1;
            }
            for i in 0..=high {
                let dot = v0 * t[(i, r0)] + v1 * t[(i, r1)];
                let sfac = beta * dot;
                t[(i, r0)] -= sfac * v0;
                t[(i, r1)] -= sfac * v1;
            }
            for i in 0..n {
                let dot = v0 * q[(i, r0)] + v1 * q[(i, r1)];
                let sfac = beta * dot;
                q[(i, r0)] -= sfac * v0;
                q[(i, r1)] -= sfac * v1;
            }
        }
    }

    // The chase restores Hessenberg structure up to round-off; clean the
    // sub-subdiagonal fill inside the block.
    for i in low + 2..=high {
        for j in low..i - 1 {
            t[(i, j)] = 0.0;
        }
    }
}

/// Real Schur decomposition of a square matrix.
pub fn real_schur(a: &Matrix) -> SchurFactors {
    let n = a.rows();
    assert_eq!(n, a.cols(), "real_schur: matrix must be square");
    let hf = hessenberg(a);
    let mut t = hf.h;
    let mut q = hf.q;
    if n <= 1 {
        return SchurFactors { q, t };
    }

    let eps = f64::EPSILON;
    let mut high = n - 1;
    let mut block_iters = 0usize;
    let max_total = 60 * n * n + 200;
    let mut total_iters = 0usize;

    loop {
        // Deflate negligible subdiagonals in the active region.
        for i in 1..=high {
            let scale = t[(i - 1, i - 1)].abs() + t[(i, i)].abs();
            if t[(i, i - 1)].abs() <= eps * scale.max(f64::MIN_POSITIVE) {
                t[(i, i - 1)] = 0.0;
            }
        }
        // Shrink from the bottom: converged 1x1 or 2x2 blocks.
        if t[(high, high - 1)] == 0.0 {
            if high == 1 {
                break;
            }
            high -= 1;
            block_iters = 0;
            continue;
        }
        if high >= 2 && t[(high - 1, high - 2)] == 0.0 {
            // Bottom 2x2 with complex (or tough real) eigenvalues: deflate
            // if its eigenvalues are complex; otherwise keep iterating to
            // split it. Complex pairs are final in REAL Schur form.
            let a11 = t[(high - 1, high - 1)];
            let a12 = t[(high - 1, high)];
            let a21 = t[(high, high - 1)];
            let a22 = t[(high, high)];
            let disc = (a11 - a22) * (a11 - a22) / 4.0 + a12 * a21;
            if disc < 0.0 {
                if high == 2 {
                    // Standardization of the final 2x2 is unnecessary for
                    // eigenvalue extraction.
                }
                if high < 3 {
                    break;
                }
                high -= 2;
                block_iters = 0;
                continue;
            }
            // Real eigenvalues in a 2x2: a single Givens splits it.
            split_real_2x2(&mut t, &mut q, high - 1);
            continue;
        }
        if high == 1 {
            // 2x2 total: same treatment as above.
            let a11 = t[(0, 0)];
            let a12 = t[(0, 1)];
            let a21 = t[(1, 0)];
            let a22 = t[(1, 1)];
            let disc = (a11 - a22) * (a11 - a22) / 4.0 + a12 * a21;
            if disc < 0.0 {
                break;
            }
            split_real_2x2(&mut t, &mut q, 0);
            if t[(1, 0)] == 0.0 {
                break;
            }
            continue;
        }

        // Active block start.
        let mut low = high;
        while low > 0 && t[(low, low - 1)] != 0.0 {
            low -= 1;
        }
        if high - low == 1 {
            // Unreduced 2x2 inside: handled by the bottom logic next pass.
        }

        total_iters += 1;
        block_iters += 1;
        if total_iters > max_total {
            debug_assert!(false, "Schur iteration failed to converge");
            break;
        }
        let exceptional = block_iters % 11 == 10;
        francis_step(&mut t, &mut q, low, high, exceptional);
    }

    SchurFactors { q, t }
}

/// Rotate a 2x2 diagonal block with real eigenvalues into upper-triangular
/// form (zeroing `t[b+1, b]`) with a Givens similarity.
fn split_real_2x2(t: &mut Matrix, q: &mut Matrix, b: usize) {
    let n = t.rows();
    let a11 = t[(b, b)];
    let a12 = t[(b, b + 1)];
    let a21 = t[(b + 1, b)];
    let a22 = t[(b + 1, b + 1)];
    let half = (a11 - a22) / 2.0;
    let disc = half * half + a12 * a21;
    debug_assert!(disc >= 0.0, "split_real_2x2 called on a complex block");
    // Eigenvalue closer to a22 for stability.
    let sq = disc.sqrt();
    let lambda = if half >= 0.0 {
        a22 - a12 * a21 / (half + sq).max(f64::MIN_POSITIVE)
    } else {
        a22 + a12 * a21 / (sq - half).max(f64::MIN_POSITIVE)
    };
    // Null vector of [a11-l, a12; a21, a22-l]: rotate (a11 - lambda, a21).
    let (c, s) = {
        let x = a11 - lambda;
        let r = x.hypot(a21);
        if r == 0.0 {
            (1.0, 0.0)
        } else {
            (x / r, a21 / r)
        }
    };
    // Similarity G(b, b+1, c, s): T <- Gᵀ T G, Q <- Q G where the rotation
    // sends the eigenvector (x, a21) to e1... apply as column+row rotation.
    for j in 0..n {
        let x0 = t[(b, j)];
        let x1 = t[(b + 1, j)];
        t[(b, j)] = c * x0 + s * x1;
        t[(b + 1, j)] = -s * x0 + c * x1;
    }
    for i in 0..n {
        let x0 = t[(i, b)];
        let x1 = t[(i, b + 1)];
        t[(i, b)] = c * x0 + s * x1;
        t[(i, b + 1)] = -s * x0 + c * x1;
    }
    for i in 0..q.rows() {
        let x0 = q[(i, b)];
        let x1 = q[(i, b + 1)];
        q[(i, b)] = c * x0 + s * x1;
        q[(i, b + 1)] = -s * x0 + c * x1;
    }
    // The rotation may leave round-off in the (b+1, b) slot; the deflation
    // scan in the main loop will zero it if negligible. Help it along when
    // it is clearly converged.
    let scale = t[(b, b)].abs() + t[(b + 1, b + 1)].abs();
    if t[(b + 1, b)].abs() <= f64::EPSILON * 8.0 * scale.max(f64::MIN_POSITIVE) {
        t[(b + 1, b)] = 0.0;
    }
}

/// Eigenvalues read off a real Schur form's diagonal blocks.
pub fn schur_eigenvalues(t: &Matrix) -> Vec<Complex> {
    let n = t.rows();
    let mut out = Vec::with_capacity(n);
    let mut i = 0;
    while i < n {
        if i + 1 < n && t[(i + 1, i)] != 0.0 {
            let a = t[(i, i)];
            let b = t[(i, i + 1)];
            let c = t[(i + 1, i)];
            let d = t[(i + 1, i + 1)];
            let mean = (a + d) / 2.0;
            let disc = (a - d) * (a - d) / 4.0 + b * c;
            if disc >= 0.0 {
                let sq = disc.sqrt();
                out.push(Complex::real(mean + sq));
                out.push(Complex::real(mean - sq));
            } else {
                let sq = (-disc).sqrt();
                out.push(Complex::new(mean, sq));
                out.push(Complex::new(mean, -sq));
            }
            i += 2;
        } else {
            out.push(Complex::real(t[(i, i)]));
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::orthogonality_error;
    use crate::random::{gaussian_matrix, seeded_rng};

    fn check_schur(a: &Matrix, tol: f64) -> SchurFactors {
        let f = real_schur(a);
        assert!(orthogonality_error(&f.q) < 1e-10, "Q not orthogonal");
        let rec = matmul(&matmul(&f.q, &f.t), &f.q.transpose());
        assert!(
            (&rec - a).max_abs() < tol * a.max_abs().max(1.0),
            "A != Q T Qᵀ (err {})",
            (&rec - a).max_abs()
        );
        // Quasi-triangular: no two consecutive subdiagonals, zeros below.
        let n = a.rows();
        for i in 0..n {
            for j in 0..i.saturating_sub(1) {
                assert_eq!(f.t[(i, j)], 0.0, "junk below subdiagonal at ({i},{j})");
            }
        }
        for i in 2..n {
            assert!(
                f.t[(i, i - 1)] == 0.0 || f.t[(i - 1, i - 2)] == 0.0,
                "consecutive subdiagonal entries at {i}"
            );
        }
        f
    }

    fn sorted_by_re_im(mut v: Vec<Complex>) -> Vec<Complex> {
        v.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap().then(a.im.partial_cmp(&b.im).unwrap()));
        v
    }

    #[test]
    fn random_matrices_factor() {
        for (n, seed) in [(2usize, 1u64), (3, 2), (5, 3), (8, 4), (12, 5), (20, 6)] {
            let a = gaussian_matrix(n, n, &mut seeded_rng(seed));
            check_schur(&a, 1e-9);
        }
    }

    #[test]
    fn rotation_matrix_complex_pair() {
        let th = 0.7f64;
        let a = Matrix::from_rows(&[vec![th.cos(), -th.sin()], vec![th.sin(), th.cos()]]);
        let f = check_schur(&a, 1e-12);
        let ev = schur_eigenvalues(&f.t);
        assert_eq!(ev.len(), 2);
        assert!((ev[0].abs() - 1.0).abs() < 1e-12);
        assert!((ev[0].arg().abs() - th).abs() < 1e-12, "eigenvalue angle {}", ev[0].arg());
        assert!((ev[0] - ev[1].conj()).abs() < 1e-12);
    }

    #[test]
    fn companion_matrix_known_roots() {
        // Companion of (x-1)(x-2)(x-3) = x³ - 6x² + 11x - 6.
        let a =
            Matrix::from_rows(&[vec![6.0, -11.0, 6.0], vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]);
        let f = check_schur(&a, 1e-10);
        let ev = sorted_by_re_im(schur_eigenvalues(&f.t));
        for (got, want) in ev.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((got.re - want).abs() < 1e-9, "{got:?} vs {want}");
            assert!(got.im.abs() < 1e-9);
        }
    }

    #[test]
    fn symmetric_matches_jacobi_eigensolver() {
        let g = crate::gemm::gram(&gaussian_matrix(12, 6, &mut seeded_rng(7)));
        let f = check_schur(&g, 1e-9);
        let mut schur_ev: Vec<f64> = schur_eigenvalues(&f.t).iter().map(|z| z.re).collect();
        schur_ev.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let jac = crate::eig::sym_eig(&g);
        for (a, b) in schur_ev.iter().zip(&jac.values) {
            assert!((a - b).abs() < 1e-8 * jac.values[0].max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn trace_preserved_by_eigenvalues() {
        let a = gaussian_matrix(10, 10, &mut seeded_rng(8));
        let f = real_schur(&a);
        let ev = schur_eigenvalues(&f.t);
        let sum_re: f64 = ev.iter().map(|z| z.re).sum();
        let sum_im: f64 = ev.iter().map(|z| z.im).sum();
        let tr: f64 = (0..10).map(|i| a[(i, i)]).sum();
        assert!((sum_re - tr).abs() < 1e-9, "trace {tr} vs eigensum {sum_re}");
        assert!(sum_im.abs() < 1e-9, "imaginary parts must cancel");
    }

    #[test]
    fn defective_jordan_block() {
        // [[2, 1], [0, 2]] — defective; Schur form is itself.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 2.0]]);
        let f = check_schur(&a, 1e-12);
        let ev = schur_eigenvalues(&f.t);
        for z in ev {
            assert!((z.re - 2.0).abs() < 1e-10 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn permutation_matrix_roots_of_unity() {
        // 4-cycle permutation: eigenvalues are the 4th roots of unity.
        let mut a = Matrix::zeros(4, 4);
        a[(0, 1)] = 1.0;
        a[(1, 2)] = 1.0;
        a[(2, 3)] = 1.0;
        a[(3, 0)] = 1.0;
        let f = check_schur(&a, 1e-10);
        let ev = schur_eigenvalues(&f.t);
        for z in &ev {
            assert!((z.abs() - 1.0).abs() < 1e-9, "|lambda| = {} for {z:?}", z.abs());
        }
        let n_real: usize = ev.iter().filter(|z| z.im.abs() < 1e-9).count();
        assert_eq!(n_real, 2, "two real roots (1, -1) expected: {ev:?}");
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_vec(1, 1, vec![-3.5]);
        let f = real_schur(&a);
        assert_eq!(f.t[(0, 0)], -3.5);
        assert_eq!(schur_eigenvalues(&f.t)[0], Complex::real(-3.5));
    }

    #[test]
    fn upper_triangular_input_fast_path() {
        let a =
            Matrix::from_rows(&[vec![1.0, 5.0, 2.0], vec![0.0, 4.0, -1.0], vec![0.0, 0.0, -2.0]]);
        let f = check_schur(&a, 1e-12);
        let ev = sorted_by_re_im(schur_eigenvalues(&f.t));
        let want = [-2.0, 1.0, 4.0];
        for (got, want) in ev.iter().zip(&want) {
            assert!((got.re - want).abs() < 1e-10);
        }
    }
}
